// Laser-driven carrier excitation at finite temperature — the paper's
// motivating workload (nonlinear optical excitation, Fig. 7/8 setup):
// a silicon cell at 8000 K under a 380 nm Gaussian pulse, propagated with
// PT-IM-ACE; writes a CSV time series of field, dipole, energy and
// occupation-matrix diagnostics to laser_excitation.csv.
//
// Uses the lazy laser attach (set_laser(params) with no horizon: run()
// places the envelope against ITS trajectory length) and the measurement
// framework — every CSV column is a registered probe, including custom
// lambdas for the sigma diagnostics, sampled once per step by run().

#include <cstdio>

#include "core/simulation.hpp"
#include "td/observables.hpp"

using namespace ptim;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 12;

  core::SystemSpec spec;
  spec.ecut = 2.0;
  spec.temperature_k = 8000.0;
  spec.extra_states_per_atom = 1.0;  // paper's accuracy-test setting
  spec.scf.tol_rho = 1e-6;
  core::Simulation sim(spec);
  sim.prepare_ground_state();

  td::LaserParams lp;
  lp.e0 = 0.02;
  lp.wavelength_nm = 380.0;
  sim.set_laser(lp);  // envelope placed by run() against cfg's horizon

  core::RunConfig cfg;
  cfg.steps = steps;
  cfg.dt = 2.0;
  cfg.variant = td::PtImVariant::kAce;

  core::MeasurementSet m;
  m.add("efield", [&sim](const core::MeasureContext& c) {
    return sim.laser()->efield(c.time);
  });
  m.add("Ax", [&sim](const core::MeasureContext& c) {
    return sim.laser()->vector_potential(c.time)[0];
  });
  m.add("dipole_x", sim.dipole_probe({1.0, 0.0, 0.0}));
  m.add("energy", sim.energy_probe(), /*needs_phi=*/true);
  m.add("sigma_trace", core::probes::sigma_trace());
  m.add("sigma_02_re", [](const core::MeasureContext& c) {
    return std::real((*c.sigma)(0, 2));
  });
  m.add("sigma_02_im", [](const core::MeasureContext& c) {
    return std::imag((*c.sigma)(0, 2));
  });
  m.add("idempotency", [](const core::MeasureContext& c) {
    return td::sigma_idempotency_defect(*c.sigma);
  });
  // t = 0 row, sampled through the same probes as the run. resolve_laser
  // first: the efield probe reads the pulse before run() would place it.
  sim.resolve_laser(cfg.horizon(0.0));
  sim.measure(m, sim.initial_state(), -1);

  std::printf("propagating %d PT-IM-ACE steps of %.1f as at 8000 K...\n",
              steps, cfg.dt * units::au_time_as);
  const auto r = sim.run(cfg, std::move(m));
  for (int i = 0; i < steps; ++i) {
    const auto& st = r.steps[static_cast<size_t>(i)];
    std::printf("  step %2d  t=%6.3f fs  scf=%2d  Vx=%d  residual=%.1e\n",
                i + 1, cfg.dt * (i + 1) * units::au_time_fs,
                st.scf_iterations, st.exchange_applications, st.residual);
  }

  std::FILE* csv = std::fopen("laser_excitation.csv", "w");
  std::fprintf(csv,
               "t_fs,efield,Ax,dipole_x,energy,sigma_trace,"
               "sigma_offdiag_02_re,sigma_offdiag_02_im,idempotency\n");
  const auto& mm = r.measurements;
  for (size_t k = 0; k < mm.series("dipole_x").size(); ++k) {
    const real_t t = static_cast<real_t>(k) * cfg.dt;  // row 0 is t = 0
    std::fprintf(csv, "%.6f,%.8e,%.8e,%.8e,%.10f,%.8f,%.8e,%.8e,%.6f\n",
                 t * units::au_time_fs, mm.series("efield")[k],
                 mm.series("Ax")[k], mm.series("dipole_x")[k],
                 mm.series("energy")[k], mm.series("sigma_trace")[k],
                 mm.series("sigma_02_re")[k], mm.series("sigma_02_im")[k],
                 mm.series("idempotency")[k]);
  }
  std::fclose(csv);
  std::printf("wrote laser_excitation.csv (energy drift over the pulse: "
              "%.3e Ha)\n",
              mm.stats("energy").max - mm.stats("energy").min);
  return 0;
}
