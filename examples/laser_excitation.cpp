// Laser-driven carrier excitation at finite temperature — the paper's
// motivating workload (nonlinear optical excitation, Fig. 7/8 setup):
// a silicon cell at 8000 K under a 380 nm Gaussian pulse, propagated with
// PT-IM-ACE; writes a CSV time series of field, dipole, energy and
// occupation-matrix diagnostics to laser_excitation.csv.

#include <cstdio>

#include "core/simulation.hpp"
#include "td/observables.hpp"

using namespace ptim;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 12;

  core::SystemSpec spec;
  spec.ecut = 2.0;
  spec.temperature_k = 8000.0;
  spec.extra_states_per_atom = 1.0;  // paper's accuracy-test setting
  spec.scf.tol_rho = 1e-6;
  core::Simulation sim(spec);
  sim.prepare_ground_state();

  const real_t dt = 2.0;
  td::LaserParams lp;
  lp.e0 = 0.02;
  lp.wavelength_nm = 380.0;
  const auto* laser = sim.set_laser(lp, dt * steps);

  td::PtImOptions opt;
  opt.dt = dt;
  opt.variant = td::PtImVariant::kAce;
  auto prop = sim.make_ptim(opt);
  auto state = sim.initial_state();

  std::FILE* csv = std::fopen("laser_excitation.csv", "w");
  std::fprintf(csv,
               "t_fs,efield,Ax,dipole_x,energy,sigma_trace,"
               "sigma_offdiag_02_re,sigma_offdiag_02_im,idempotency\n");
  auto record = [&] {
    std::fprintf(csv, "%.6f,%.8e,%.8e,%.8e,%.10f,%.8f,%.8e,%.8e,%.6f\n",
                 state.time * units::au_time_fs, laser->efield(state.time),
                 laser->vector_potential(state.time)[0], sim.dipole_x(state),
                 sim.energy(state).total(), td::sigma_trace(state.sigma),
                 std::real(state.sigma(0, 2)), std::imag(state.sigma(0, 2)),
                 td::sigma_idempotency_defect(state.sigma));
  };
  record();

  std::printf("propagating %d PT-IM-ACE steps of %.1f as at 8000 K...\n",
              steps, dt * units::au_time_as);
  for (int i = 0; i < steps; ++i) {
    const auto stats = prop->step(state);
    record();
    std::printf("  step %2d  t=%6.3f fs  scf=%2d  Vx=%d  residual=%.1e\n",
                i + 1, state.time * units::au_time_fs, stats.scf_iterations,
                stats.exchange_applications, stats.residual);
  }
  std::fclose(csv);
  std::printf("wrote laser_excitation.csv\n");
  return 0;
}
