// Crash-safe ensemble campaign end to end: submit delta-kick jobs to a
// persistent core::EnsembleCampaign, simulate a hard kill mid-flight, then
// reopen the SAME campaign directory in a "fresh process" and watch run()
// resume every in-flight job from its latest valid checkpoint. The resumed
// dipole series and final states are exactly what an uninterrupted run
// produces (tests/test_campaign.cpp pins this bitwise against the golden
// fixture) — here the two endpoints are compared directly.
//
//   ./campaign_restart [steps] [kill_step]

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/simulation.hpp"
#include "io/job_queue.hpp"

using namespace ptim;

namespace {

void remove_tree(const std::string& path) {
  for (const std::string& name : io::list_dir(path))
    remove_tree(path + "/" + name);
  ::rmdir(path.c_str());
  std::remove(path.c_str());
}

void show_queue(const core::EnsembleCampaign& camp, const char* when) {
  std::printf("%s:\n", when);
  for (const io::JobRecord& r : camp.poll())
    std::printf("  job %d %-8s %-8s steps_done=%llu %s\n", r.id,
                r.spec.name.c_str(), io::job_state_name(r.status.state),
                static_cast<unsigned long long>(r.status.steps_done),
                r.status.error.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 8;
  const uint64_t kill_step =
      argc > 2 ? static_cast<uint64_t>(std::atoi(argv[2]))
               : static_cast<uint64_t>(steps / 2 + 1);

  core::SystemSpec spec;
  spec.ecut = 2.0;
  spec.temperature_k = 8000.0;
  spec.scf.tol_rho = 1e-6;
  core::Simulation sim(spec);
  sim.prepare_ground_state();

  core::RunConfig cfg;
  cfg.steps = steps;
  cfg.dt = 1.0;
  cfg.variant = td::PtImVariant::kAce;
  cfg.checkpoint_every = 2;  // auto-checkpoint cadence (plus the final step)

  const std::string dir = "campaign_restart_demo";
  remove_tree(dir);

  const auto submit_jobs = [](core::EnsembleCampaign& camp) {
    for (int k = 1; k <= 3; ++k) {
      core::CampaignJob job;
      job.name = "kick_" + std::to_string(k);
      job.kick = {1e-3 * k, 0.0, 0.0};
      camp.submit(job);
    }
  };
  const auto probes = [&sim] {
    core::MeasurementSet m;
    m.add("dipole_x", sim.dipole_probe({1.0, 0.0, 0.0}));
    return m;
  };

  // --- phase 1: launch, then "crash" --------------------------------------
  // The fault hook stands in for SIGKILL / node failure: it fires after a
  // committed step, exactly where a real process can die. Everything the
  // campaign needs to continue is already on disk at that point.
  std::printf("phase 1: %d steps/job, killing job 0 after step %llu\n\n",
              steps, static_cast<unsigned long long>(kill_step));
  {
    core::CampaignOptions opt;
    opt.dir = dir;
    opt.fault_hook = [kill_step](int id, uint64_t done) {
      if (id == 0 && done == kill_step)
        throw core::CampaignKill("simulated node failure");
    };
    core::EnsembleCampaign camp(sim, cfg, opt);
    camp.set_measurements(probes());
    submit_jobs(camp);
    show_queue(camp, "submitted");
    try {
      camp.run();
    } catch (const core::CampaignKill& e) {
      std::printf("\n*** campaign killed: %s ***\n\n", e.what());
    }
    show_queue(camp, "state left on disk after the crash");
  }

  // --- phase 2: a fresh process reopens the directory ---------------------
  // A new campaign over the same dir sees the persisted queue; run()
  // resumes the interrupted job from its newest VALID checkpoint and picks
  // up every job the dead process never reached.
  std::printf("\nphase 2: reopening '%s' and resuming\n\n", dir.c_str());
  core::CampaignOptions opt;
  opt.dir = dir;
  core::EnsembleCampaign camp(sim, cfg, opt);
  camp.set_measurements(probes());
  std::printf("runnable jobs found on disk: %zu\n", camp.pending());
  camp.run();
  show_queue(camp, "after resume");

  // --- compare against an uninterrupted campaign --------------------------
  const std::string ref_dir = "campaign_restart_ref";
  remove_tree(ref_dir);
  core::CampaignOptions ref_opt;
  ref_opt.dir = ref_dir;
  core::EnsembleCampaign ref(sim, cfg, ref_opt);
  ref.set_measurements(probes());
  submit_jobs(ref);
  ref.run();

  const auto resumed = camp.collect();
  const auto uninterrupted = ref.collect();
  std::printf("\n%-8s %12s %16s %s\n", "job", "steps", "final dipole_x",
              "matches uninterrupted?");
  for (size_t i = 0; i < resumed.size(); ++i) {
    const auto& series = resumed[i].measurements.series("dipole_x");
    const bool same =
        std::memcmp(resumed[i].final_state.phi.data(),
                    uninterrupted[i].final_state.phi.data(),
                    resumed[i].final_state.phi.size() * sizeof(cplx)) == 0;
    std::printf("%-8s %12llu %16.9e %s\n", resumed[i].name.c_str(),
                static_cast<unsigned long long>(resumed[i].steps_done),
                series.back(), same ? "bitwise" : "DIVERGED");
  }

  remove_tree(dir);
  remove_tree(ref_dir);
  return 0;
}
