// Optical absorption from real-time propagation — the classic rt-TDDFT
// application cited in the paper's introduction: apply a weak delta-kick
// (sudden uniform vector-potential boost), record the dipole, and Fourier
// transform to obtain the absorption strength function.
//
// Demonstrates that the propagator works with *any* initial perturbation,
// not only the Gaussian pulse, and exercises the velocity-gauge coupling.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/simulation.hpp"
#include "td/observables.hpp"

using namespace ptim;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 48;

  core::SystemSpec spec;
  spec.ecut = 2.0;
  spec.temperature_k = 0.0;  // pure states: sharp spectral lines
  spec.scf.tol_rho = 1e-7;
  core::Simulation sim(spec);
  sim.prepare_ground_state();

  // Delta kick: constant A0 along x for t > 0 (velocity gauge).
  const real_t kick = 2e-3;
  sim.hamiltonian().set_vector_potential({kick, 0.0, 0.0});

  td::PtImOptions opt;
  opt.dt = 1.5;
  opt.variant = td::PtImVariant::kAce;
  auto prop = sim.make_ptim(opt);  // no laser: A stays at the kick value
  auto state = sim.initial_state();

  std::vector<real_t> t, d;
  const real_t d0 = sim.dipole_x(state);
  for (int i = 0; i < steps; ++i) {
    prop->step(state);
    // make_ptim without a laser leaves A untouched — re-assert the kick
    // in case a propagator variant reset it.
    t.push_back(state.time);
    d.push_back(sim.dipole_x(state) - d0);
  }

  // Discrete Fourier transform of the dipole response with a Hann window.
  std::printf("# absorption strength S(w) ~ w * Im[ d(w) ] / kick\n");
  std::printf("%12s %12s %14s\n", "omega (Ha)", "omega (eV)", "S(w) (arb)");
  const real_t t_max = t.back();
  for (real_t w = 0.05; w <= 1.2; w += 0.025) {
    cplx dw = 0.0;
    for (size_t i = 0; i < t.size(); ++i) {
      const real_t window = 0.5 * (1.0 + std::cos(kPi * t[i] / t_max));
      dw += d[i] * window * std::exp(cplx(0.0, w * t[i])) * opt.dt;
    }
    const real_t s = w * std::imag(dw) / kick;
    std::printf("%12.4f %12.4f %14.6e\n", w, w * units::hartree_in_ev, s);
  }
  std::printf("# peaks mark dipole-allowed transitions of the cell\n");
  return 0;
}
