// Optical absorption from real-time propagation — the classic rt-TDDFT
// application cited in the paper's introduction: apply a weak delta-kick
// (sudden uniform vector-potential boost), record the dipole, and Fourier
// transform to obtain the absorption strength function.
//
// Written against the RunConfig + measurement API: the kick goes on the
// Hamiltonian, the dipole is a registered probe, and Simulation::run
// drives the trajectory (see examples/ensemble_spectra.cpp for the
// many-kick batched version of this workload).

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/simulation.hpp"
#include "td/observables.hpp"

using namespace ptim;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 48;

  core::SystemSpec spec;
  spec.ecut = 2.0;
  spec.temperature_k = 0.0;  // pure states: sharp spectral lines
  spec.scf.tol_rho = 1e-7;
  core::Simulation sim(spec);
  sim.prepare_ground_state();

  // Delta kick: constant A0 along x for t > 0 (velocity gauge).
  const real_t kick = 2e-3;
  sim.hamiltonian().set_vector_potential({kick, 0.0, 0.0});

  core::RunConfig cfg;
  cfg.steps = steps;
  cfg.dt = 1.5;
  cfg.variant = td::PtImVariant::kAce;

  core::MeasurementSet m;
  m.add("dipole_x", sim.dipole_probe({1.0, 0.0, 0.0}));
  // The t = 0 reference point, sampled with the same probe as the run.
  const td::TdState s0 = sim.initial_state();
  sim.measure(m, s0, -1);

  const auto r = sim.run(cfg, std::move(m));
  const std::vector<real_t>& d = r.measurements.series("dipole_x");
  const real_t d0 = d.front();

  // Discrete Fourier transform of the dipole response with a Hann window.
  std::printf("# absorption strength S(w) ~ w * Im[ d(w) ] / kick\n");
  std::printf("%12s %12s %14s\n", "omega (Ha)", "omega (eV)", "S(w) (arb)");
  const real_t t_max = r.final_state.time;
  for (real_t w = 0.05; w <= 1.2; w += 0.025) {
    cplx dw = 0.0;
    for (size_t i = 1; i < d.size(); ++i) {
      const real_t t = static_cast<real_t>(i) * cfg.dt;
      const real_t window = 0.5 * (1.0 + std::cos(kPi * t / t_max));
      dw += (d[i] - d0) * window * std::exp(cplx(0.0, w * t)) * cfg.dt;
    }
    const real_t s = w * std::imag(dw) / kick;
    std::printf("%12.4f %12.4f %14.6e\n", w, w * units::hartree_in_ev, s);
  }
  std::printf("# peaks mark dipole-allowed transitions of the cell\n");
  return 0;
}
