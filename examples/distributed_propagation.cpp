// Band-parallel PT-IM propagation through the public API — the paper's
// production configuration in miniature:
//
//   1. build an 8-atom silicon cell and its finite-temperature hybrid
//      ground state,
//   2. propagate the same PT-IM-ACE trajectory serially and band-parallel
//      over 4 in-process ptmpi ranks (2 ranks per "node"), once per
//      exchange circulation pattern,
//   3. verify the trajectories coincide and print the measured per-op
//      communication table — the small-scale analogue of Table I.
//
// Runtime: a couple of minutes on a laptop core (reduced cutoff).

#include <cmath>
#include <cstdio>

#include "core/simulation.hpp"
#include "td/observables.hpp"

using namespace ptim;

int main() {
  core::SystemSpec spec;
  spec.nx = spec.ny = spec.nz = 1;   // 8 Si atoms
  spec.ecut = 2.0;                    // Hartree (paper: 10; demo: reduced)
  spec.temperature_k = 8000.0;        // the paper's finite-T setting
  spec.scf.tol_rho = 1e-6;
  spec.scf.max_outer_ace = 4;

  core::Simulation sim(spec);
  std::printf("silicon cell: %zu atoms, %zu orbitals, %zu plane waves\n",
              sim.natoms(), sim.nbands(), sim.sphere().npw());
  sim.prepare_ground_state();

  td::PtImOptions opt;
  opt.dt = 2.0;  // ~48 attoseconds
  opt.variant = td::PtImVariant::kAce;
  const int steps = 3;

  // Serial reference.
  auto prop = sim.make_ptim(opt);
  auto state = sim.initial_state();
  std::vector<real_t> dip_serial;
  for (int i = 0; i < steps; ++i) {
    prop->step(state);
    dip_serial.push_back(sim.dipole_x(state));
  }
  std::printf("serial:      dipole_x per step:");
  for (const real_t d : dip_serial) std::printf(" %12.6e", d);
  std::printf("\n\n");

  // Band-parallel runs: 4 ranks (2 per node), one per circulation pattern.
  for (const auto pattern :
       {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
        dist::ExchangePattern::kAsyncRing}) {
    core::Simulation::DistRunOptions dopt;
    dopt.nranks = 4;
    dopt.ranks_per_node = 2;
    dopt.steps = steps;
    dopt.ptim = opt;
    dopt.band.pattern = pattern;
    dopt.band.overlap_shm = true;  // Fig. 6 node-shared overlap staging
    const auto res = sim.propagate_distributed(dopt);

    real_t max_diff = 0.0;
    for (int i = 0; i < steps; ++i)
      max_diff = std::max(max_diff,
                          std::abs(res.dipole[static_cast<size_t>(i)] -
                                   dip_serial[static_cast<size_t>(i)]));
    std::printf("%-10s: max |dipole - serial| = %.2e  (sigma trace %.8f)\n",
                dist::pattern_name(pattern), max_diff,
                td::sigma_trace(res.final_state.sigma));

    std::printf("  rank-0 comm:");
    for (const auto& [op, st] : res.comm[0].ops)
      std::printf("  %s %lldB/%.1fms", op.c_str(), st.bytes,
                  st.seconds * 1e3);
    std::printf("\n");
  }
  std::printf("\nAll three patterns reproduce the serial trajectory; the "
              "ring variants move the\nexchange bytes out of Bcast into "
              "Sendrecv (sync) or Isend/Irecv+Wait (async).\n");
  return 0;
}
