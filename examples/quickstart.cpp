// Quickstart: the smallest end-to-end PT-IM run through the public API.
//
//   1. build an 8-atom silicon cell (one conventional diamond-cubic cell),
//   2. solve the finite-temperature hybrid-functional ground state,
//   3. propagate a few 50-as PT-IM-ACE steps under a 380 nm laser —
//      with the exact-exchange hot path in FP32 (the precision policy:
//      pair FFTs and ring payloads narrow, the trajectory stays FP64),
//   4. print dipole and energy.
//
// Runtime: a couple of minutes on a laptop core (reduced cutoff).

#include <cstdio>

#include "core/simulation.hpp"
#include "td/observables.hpp"

using namespace ptim;

int main() {
  core::SystemSpec spec;
  spec.nx = spec.ny = spec.nz = 1;    // 8 Si atoms
  spec.ecut = 2.5;                     // Hartree (paper: 10; demo: reduced)
  spec.temperature_k = 8000.0;         // the paper's finite-T setting
  spec.extra_states_per_atom = 0.5;    // N = 2*natom + natom/2 orbitals
  spec.scf.tol_rho = 1e-6;
  spec.scf.max_outer_ace = 4;

  core::Simulation sim(spec);
  std::printf("silicon cell: %zu atoms, %zu orbitals, %zu plane waves\n",
              sim.natoms(), sim.nbands(), sim.sphere().npw());

  const auto& gs = sim.prepare_ground_state();
  std::printf("ground state: E = %.6f Ha (fock %.6f), mu = %.4f Ha, "
              "%d SCF / %d ACE-outer iterations\n",
              gs.energy.total(), gs.energy.fock, gs.mu, gs.scf_iterations,
              gs.outer_iterations);
  std::printf("occupations:");
  for (const real_t f : gs.occ) std::printf(" %.3f", f);
  std::printf("\n\n");

  const real_t dt = 2.0;  // ~48 attoseconds
  const int steps = 5;
  td::LaserParams laser;
  laser.e0 = 0.01;
  laser.wavelength_nm = 380.0;
  sim.set_laser(laser, dt * steps);

  td::PtImOptions opt;
  opt.dt = dt;
  opt.variant = td::PtImVariant::kAce;
  // Run the exchange pipeline in single precision: ~2x on the bandwidth
  // bound pair FFTs with error far below the PT-IM tolerance. Drop this
  // line (or pass Precision::kDouble) for the all-FP64 reference.
  opt.exchange_precision = Precision::kSingle;
  auto prop = sim.make_ptim(opt);
  std::printf("exchange pipeline precision: %s\n\n",
              precision_name(sim.exchange_precision()));

  auto state = sim.initial_state();
  std::printf("%10s %14s %14s %8s %8s\n", "t (as)", "dipole_x (au)",
              "energy (Ha)", "scf", "Vx");
  std::printf("%10.1f %14.6e %14.8f %8s %8s\n", 0.0, sim.dipole_x(state),
              sim.energy(state).total(), "-", "-");
  for (int i = 0; i < steps; ++i) {
    const auto stats = prop->step(state);
    std::printf("%10.1f %14.6e %14.8f %8d %8d\n",
                state.time * units::au_time_as, sim.dipole_x(state),
                sim.energy(state).total(), stats.scf_iterations,
                stats.exchange_applications);
  }
  std::printf("\ndone — sigma trace %.8f (conserved electron count / 2)\n",
              td::sigma_trace(state.sigma));
  return 0;
}
