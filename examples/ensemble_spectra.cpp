// Batched absorption spectra — the ensemble serving layer end to end: one
// ground state, N delta-kick trajectories (three polarizations x kick
// strengths) submitted to core::EnsembleDriver and propagated in lockstep,
// their ACE builds sharing packed exchange FFTs. Each job's dipole series
// (bitwise identical to an independent run of that kick) is Fourier
// transformed into an absorption strength function; checkpointing the
// strongest kick's endpoint shows how a job hands off to a resume.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/ensemble.hpp"
#include "core/simulation.hpp"
#include "io/checkpoint.hpp"

using namespace ptim;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 24;

  core::SystemSpec spec;
  spec.ecut = 2.0;
  spec.temperature_k = 0.0;
  spec.scf.tol_rho = 1e-7;
  core::Simulation sim(spec);
  sim.prepare_ground_state();

  core::RunConfig cfg;
  cfg.steps = steps;
  cfg.dt = 1.5;
  cfg.variant = td::PtImVariant::kAce;

  const grid::Vec3 axes[3] = {{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0},
                              {0.0, 0.0, 1.0}};
  const char* axis_name[3] = {"x", "y", "z"};
  const real_t kicks[2] = {1e-3, 2e-3};

  core::EnsembleDriver ens(sim, cfg);
  core::MeasurementSet proto;
  for (int a = 0; a < 3; ++a)
    proto.add(std::string("dipole_") + axis_name[a], sim.dipole_probe(axes[a]));
  ens.set_measurements(std::move(proto));
  std::vector<real_t> job_kick;
  std::vector<int> job_axis;
  for (const real_t k : kicks)
    for (int a = 0; a < 3; ++a) {
      core::EnsembleJob job;
      job.name = std::string("kick_") + axis_name[a] + "_" +
                 std::to_string(k);
      job.kick = {k * axes[a][0], k * axes[a][1], k * axes[a][2]};
      ens.submit(std::move(job));
      job_kick.push_back(k);
      job_axis.push_back(a);
    }

  std::printf("propagating %zu trajectories x %d steps in one batch...\n",
              ens.pending(), steps);
  const auto results = ens.run_all();

  // Hann-windowed spectrum per job, response measured along its own kick.
  std::printf("\n# S(w) per job (arb. units)\n%12s", "omega (Ha)");
  for (const auto& r : results) std::printf(" %14s", r.name.c_str());
  std::printf("\n");
  const real_t t_max = static_cast<real_t>(steps) * cfg.dt;
  for (real_t w = 0.1; w <= 1.0; w += 0.05) {
    std::printf("%12.4f", w);
    for (size_t j = 0; j < results.size(); ++j) {
      const auto& d = results[j].measurements.series(
          std::string("dipole_") + axis_name[job_axis[j]]);
      cplx dw = 0.0;
      for (size_t i = 0; i < d.size(); ++i) {
        const real_t t = static_cast<real_t>(i + 1) * cfg.dt;
        const real_t window = 0.5 * (1.0 + std::cos(kPi * t / t_max));
        dw += (d[i] - d.front()) * window * std::exp(cplx(0.0, w * t)) *
              cfg.dt;
      }
      std::printf(" %14.6e", w * std::imag(dw) / job_kick[j]);
    }
    std::printf("\n");
  }

  // Hand the last trajectory off to a future resume: a checkpoint bound to
  // this configuration (io + RunConfig docs describe the format).
  io::Checkpoint ckpt =
      sim.checkpoint(cfg, results.back().final_state,
                     static_cast<uint64_t>(steps));
  io::save_checkpoint("ensemble_last.ckpt", ckpt);
  std::printf("\ncheckpointed '%s' after %d steps to ensemble_last.ckpt "
              "(config hash %llx)\n",
              results.back().name.c_str(), steps,
              static_cast<unsigned long long>(ckpt.config_hash));
  return 0;
}
