// Scaling explorer: interactive front-end to the performance model.
//
//   scaling_explorer [atoms] [nodes] [arm|gpu]
//
// Prints the predicted per-step cost breakdown for every PT-IM variant at
// the requested scale — the tool a user would reach for before requesting
// an allocation, and the generator behind Figs. 9-11 / Table I.

#include <cstdio>
#include <cstring>

#include "netsim/model.hpp"

using namespace ptim;
using namespace ptim::netsim;

int main(int argc, char** argv) {
  const size_t atoms = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 1536;
  const size_t nodes = argc > 2 ? static_cast<size_t>(std::atol(argv[2])) : 96;
  const bool arm = argc > 3 && std::strcmp(argv[3], "arm") == 0;
  const Platform plat = arm ? Platform::fugaku_arm() : Platform::gpu_a100();

  const SystemSize sys = SystemSize::silicon(atoms);
  std::printf("platform: %s\n", plat.name.c_str());
  std::printf("system:   %zu Si atoms, N = %zu orbitals, Ng = %zu "
              "(wavefunction grid)\n",
              sys.natoms, sys.norbitals, sys.ng_wfc);
  std::printf("layout:   %zu nodes x %d ranks, ~%zu bands per rank\n\n",
              nodes, plat.ranks_per_node,
              sys.norbitals / (nodes * static_cast<size_t>(plat.ranks_per_node)) + 1);

  std::printf("%-7s %10s | %9s %9s %8s %8s %9s %7s | %9s %7s\n", "variant",
              "step (s)", "exchange", "ace-gemm", "density", "local-H",
              "subspace", "mixing", "comm (s)", "ratio");
  for (const Variant v : {Variant::kBaseline, Variant::kDiag, Variant::kAce,
                          Variant::kRing, Variant::kAsyncRing}) {
    const StepCost c = predict_step(plat, sys, nodes, v);
    std::printf("%-7s %10.2f | %9.2f %9.2f %8.2f %8.2f %9.2f %7.2f |"
                " %9.2f %6.1f%%\n",
                variant_name(v), c.total(), c.compute.exchange,
                c.compute.ace_gemm, c.compute.density, c.compute.local_h,
                c.compute.subspace, c.compute.mixing, c.comm.total(),
                100.0 * c.comm_ratio());
  }

  std::printf("\ncomm detail (Async variant):\n");
  const StepCost c = predict_step(plat, sys, nodes, Variant::kAsyncRing);
  std::printf("  Alltoallv %.2f  Wait %.2f  Allgatherv %.2f  Allreduce %.2f\n",
              c.comm.alltoallv, c.comm.wait, c.comm.allgatherv,
              c.comm.allreduce);
  std::printf("\nusage: scaling_explorer [atoms] [nodes] [arm|gpu]\n");
  return 0;
}
