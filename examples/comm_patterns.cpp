// Communication-pattern walkthrough (paper Fig. 5 + Fig. 6): runs the
// distributed Fock exchange with Bcast / Ring / Async-Ring orbital
// circulation over in-process thread ranks, verifies all three agree with
// the serial operator, and prints the per-op traffic each pattern
// generates — the observable behind Table I.

#include <algorithm>
#include <cstdio>

#include "backend/backend.hpp"
#include "dist/exchange_dist.hpp"
#include "dist/transpose.hpp"
#include "gs/scf.hpp"
#include "la/blas.hpp"

using namespace ptim;

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;

  // Small silicon-like system shared by all ranks.
  const real_t box = 8.0;
  grid::Lattice lattice = grid::Lattice::cubic(box);
  pseudo::AtomList atoms;
  atoms.species = pseudo::Species::silicon_ah();
  atoms.positions = {{0.8, 1.2, 1.6}, {4.8, 4.4, 5.2}};
  grid::GSphere sphere(lattice, 3.0);
  grid::FftGrid wfc(lattice, sphere.suggest_dims(1));
  grid::FftGrid den(lattice, sphere.suggest_dims(2));
  ham::Hamiltonian h(lattice, atoms, sphere, wfc, den, {});

  gs::ScfOptions scf;
  scf.nbands = 8;
  scf.nelec = 8.0;
  scf.temperature_k = 8000.0;
  const auto gs = gs::ground_state(h, scf);
  std::printf("system: %zu plane waves, %zu orbitals, %d thread ranks\n",
              sphere.npw(), gs.phi.cols(), ranks);

  pw::SphereGridMap map(sphere, wfc);
  ham::ExchangeOperator xop(map, {});
  la::MatC serial(gs.phi.rows(), gs.phi.cols());
  xop.apply_diag(gs.phi, gs.occ, gs.phi, serial);

  for (const auto pat :
       {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
        dist::ExchangePattern::kAsyncRing}) {
    const dist::BlockLayout bands(gs.phi.cols(), ranks);
    std::vector<la::MatC> blocks(static_cast<size_t>(ranks));
    ptmpi::run_ranks(ranks, 2, [&](ptmpi::Comm& c) {
      blocks[static_cast<size_t>(c.rank())] = dist::exchange_apply_distributed(
          c, xop, gs.phi, gs.occ, gs.phi, pat);
    });

    // Verify against the serial operator.
    real_t max_err = 0.0;
    for (int r = 0; r < ranks; ++r)
      for (size_t b = 0; b < bands.count(r); ++b)
        for (size_t i = 0; i < gs.phi.rows(); ++i)
          max_err = std::max(max_err,
                             std::abs(blocks[static_cast<size_t>(r)](i, b) -
                                      serial(i, bands.offset(r) + b)));

    std::printf("\npattern %-9s  max |err vs serial| = %.2e\n",
                dist::pattern_name(pat), max_err);
    std::printf("  %-12s %8s %14s\n", "MPI op", "calls", "bytes (rank 0)");
    for (const auto& [op, st] : ptmpi::last_run_stats()[0].ops)
      std::printf("  %-12s %8ld %14lld\n", op.c_str(), st.calls, st.bytes);
  }

  // Execution backends: the same ring, serialized vs stream-pipelined.
  // kSync is the legacy host loop; kHostSerial runs the stream pipeline
  // inline (the deterministic reference); kHostAsync double-buffers slabs
  // with the transfer on a comm stream so it overlaps the previous slab's
  // compute — the paper's GPU scheme modeled on CPU. All three match the
  // serial operator bit-for-bit on every rank.
  std::printf("\nexecution backends on the async ring (all bit-identical):\n");
  for (const auto kind : {backend::Kind::kSync, backend::Kind::kHostSerial,
                          backend::Kind::kHostAsync}) {
    ham::ExchangeOptions xopt;
    xopt.backend = kind;
    ham::ExchangeOperator bxop(map, xopt);
    const dist::BlockLayout bands(gs.phi.cols(), ranks);
    std::vector<real_t> errs(static_cast<size_t>(ranks), 0.0);
    ptmpi::run_ranks(ranks, 2, [&](ptmpi::Comm& c) {
      const la::MatC blk = dist::exchange_apply_distributed(
          c, bxop, gs.phi, gs.occ, gs.phi, dist::ExchangePattern::kAsyncRing);
      real_t err = 0.0;
      for (size_t b = 0; b < bands.count(c.rank()); ++b)
        for (size_t i = 0; i < gs.phi.rows(); ++i)
          err = std::max(err, std::abs(blk(i, b) -
                                       serial(i, bands.offset(c.rank()) + b)));
      errs[static_cast<size_t>(c.rank())] = err;
    });
    const real_t max_err = *std::max_element(errs.begin(), errs.end());
    std::printf("  backend=%-7s max |err vs serial| = %.2e\n",
                backend::kind_name(kind), max_err);
  }

  // Fig. 6: the SHM-backed overlap reduction.
  std::printf("\nFig. 6 demo: distributed overlap S = Phi^H Phi with and "
              "without node-shared memory\n");
  const dist::BlockLayout rows(gs.phi.rows(), ranks);
  for (const bool shm : {false, true}) {
    la::MatC result;
    ptmpi::run_ranks(ranks, 2, [&](ptmpi::Comm& c) {
      la::MatC mine(rows.count(c.rank()), gs.phi.cols());
      for (size_t j = 0; j < gs.phi.cols(); ++j)
        for (size_t i = 0; i < rows.count(c.rank()); ++i)
          mine(i, j) = gs.phi(rows.offset(c.rank()) + i, j);
      la::MatC s = dist::overlap_distributed(c, mine, mine, shm);
      if (c.rank() == 0) result = std::move(s);
    });
    real_t defect = 0.0;  // ground-state orbitals are orthonormal
    for (size_t j = 0; j < result.cols(); ++j)
      for (size_t i = 0; i < result.rows(); ++i)
        defect = std::max(defect, std::abs(result(i, j) -
                                           (i == j ? cplx(1.0) : cplx(0.0))));
    std::printf("  use_shm=%d: ||S - I||_max = %.2e, allreduce calls = %ld\n",
                shm, defect,
                ptmpi::last_run_stats()[0].ops.at("Allreduce").calls);
  }
  return 0;
}
