#pragma once
// Persistent on-disk job queue — the durability substrate of ensemble
// campaigns (core::EnsembleCampaign). Every queue mutation is crash-safe:
// records are text files rewritten through the same tmp + rename protocol
// as binary checkpoints, so a process kill at any instant leaves every
// record either in its old complete form or its new complete form.
//
// On-disk layout (all under one campaign directory):
//   <dir>/job_<id>.spec    immutable job spec, written once at submit
//   <dir>/job_<id>.status  mutable status record, atomically rewritten
//   <dir>/job_<id>/        per-job checkpoint directory
//                          (ckpt_<step>.ckpt, io::Checkpoint format v2)
//
// Record files are line-oriented `key value...` text; floating-point
// fields are printed with %.17g, which round-trips IEEE-754 doubles
// exactly — the queue never perturbs a trajectory-determining number.
//
// Thread-safety contract: submit() and reload() are single-threaded
// (campaign setup); update_status() may be called concurrently for
// DIFFERENT job ids (each worker group leader owns exactly one job's
// status at a time), never for the same id.

#include <cstdint>
#include <string>
#include <vector>

#include "grid/lattice.hpp"
#include "td/laser.hpp"

namespace ptim::io {

enum class JobState { kPending, kRunning, kDone, kFailed };

const char* job_state_name(JobState s);

// Everything needed to (re)launch a job EXCEPT its quantum state — the
// state lives in the job's checkpoint chain (ckpt_0 is written at submit,
// so a freshly restarted process can resume any job from disk alone).
struct JobSpec {
  std::string name;          // no newlines; shown in poll() output
  int steps = 0;             // total trajectory steps
  double t_horizon = 0.0;    // resolved laser-envelope horizon (a.u.)
  grid::Vec3 kick{0.0, 0.0, 0.0};  // delta-kick A(0) (also in ckpt_0)
  bool has_laser = false;
  td::LaserParams laser;
  uint64_t config_hash = 0;  // binds the job's checkpoints to its physics
};

struct JobStatus {
  JobState state = JobState::kPending;
  uint64_t steps_done = 0;  // last status-file update (checkpoints are the
                            // authoritative resume point)
  std::string error;        // kFailed diagnostic (single line)
};

struct JobRecord {
  int id = -1;
  JobSpec spec;
  JobStatus status;
};

class JobQueue {
 public:
  // Open (creating the directory if needed) and load every record found
  // on disk — the restart path: a queue reopened after a kill sees all
  // previously submitted jobs with their last persisted status.
  explicit JobQueue(std::string dir);

  // Persist a new record (spec + pending status); returns its id.
  int submit(const JobSpec& spec);

  // Atomically rewrite job `id`'s status file (and the in-memory record).
  void update_status(int id, const JobStatus& status);

  // Re-read every record from disk (e.g. to observe another process).
  void reload();

  size_t size() const { return records_.size(); }
  const std::vector<JobRecord>& records() const { return records_; }
  const JobRecord& record(int id) const;

  const std::string& dir() const { return dir_; }
  // The job's checkpoint directory <dir>/job_<id> (created on demand).
  std::string job_dir(int id) const;

 private:
  std::string spec_path(int id) const;
  std::string status_path(int id) const;

  std::string dir_;
  std::vector<JobRecord> records_;  // sorted by id; ids are dense from 0
};

// --- crash-safe text + small POSIX fs helpers (shared with campaign) ----

// Write `text` to `path` via `<path>.tmp` + fsync + rename: readers never
// observe a partial file. Throws ptim::Error on any failure.
void atomic_write_text(const std::string& path, const std::string& text);

// Create a directory (parents not created); ok if it already exists.
void make_dir(const std::string& path);

// Names of regular files/dirs in `path` (no "." / ".."), sorted.
// Empty if the directory does not exist.
std::vector<std::string> list_dir(const std::string& path);

bool file_exists(const std::string& path);

}  // namespace ptim::io
