#include "io/job_queue.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace ptim::io {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);  // exact IEEE-754 roundtrip
  return buf;
}

// Split one record line into (key, rest-of-line).
bool split_line(const std::string& line, std::string* key,
                std::string* value) {
  const size_t sp = line.find(' ');
  if (line.empty()) return false;
  if (sp == std::string::npos) {
    *key = line;
    value->clear();
  } else {
    *key = line.substr(0, sp);
    *value = line.substr(sp + 1);
  }
  return true;
}

double parse_double(const std::string& s, const std::string& path) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  PTIM_CHECK_MSG(end != s.c_str(), "job record: bad number '" << s << "' in "
                                                              << path);
  return v;
}

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kPending: return "pending";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

namespace {

JobState parse_state(const std::string& s, const std::string& path) {
  if (s == "pending") return JobState::kPending;
  if (s == "running") return JobState::kRunning;
  if (s == "done") return JobState::kDone;
  if (s == "failed") return JobState::kFailed;
  PTIM_CHECK_MSG(false, "job record: unknown state '" << s << "' in "
                                                      << path);
  std::abort();  // unreachable: PTIM_CHECK_MSG throws
}

std::string serialize_spec(const JobSpec& s) {
  PTIM_CHECK_MSG(s.name.find('\n') == std::string::npos,
                 "job name must be a single line: " << s.name);
  std::ostringstream out;
  out << "name " << s.name << "\n";
  out << "steps " << s.steps << "\n";
  out << "t_horizon " << fmt_double(s.t_horizon) << "\n";
  out << "kick " << fmt_double(s.kick[0]) << " " << fmt_double(s.kick[1])
      << " " << fmt_double(s.kick[2]) << "\n";
  out << "laser " << (s.has_laser ? 1 : 0);
  if (s.has_laser) {
    out << " " << fmt_double(s.laser.e0) << " "
        << fmt_double(s.laser.wavelength_nm) << " "
        << fmt_double(s.laser.t_center) << " " << fmt_double(s.laser.t_width)
        << " " << fmt_double(s.laser.polarization[0]) << " "
        << fmt_double(s.laser.polarization[1]) << " "
        << fmt_double(s.laser.polarization[2]);
  }
  out << "\n";
  out << "config_hash " << s.config_hash << "\n";
  return out.str();
}

JobSpec parse_spec(const std::string& path) {
  std::ifstream in(path);
  PTIM_CHECK_MSG(in.good(), "job spec missing: " << path);
  JobSpec s;
  std::string line, key, value;
  while (std::getline(in, line)) {
    if (!split_line(line, &key, &value)) continue;
    if (key == "name") {
      s.name = value;
    } else if (key == "steps") {
      s.steps = static_cast<int>(parse_double(value, path));
    } else if (key == "t_horizon") {
      s.t_horizon = parse_double(value, path);
    } else if (key == "kick") {
      std::istringstream v(value);
      std::string a, b, c;
      v >> a >> b >> c;
      s.kick = {parse_double(a, path), parse_double(b, path),
                parse_double(c, path)};
    } else if (key == "laser") {
      std::istringstream v(value);
      int has = 0;
      v >> has;
      s.has_laser = has != 0;
      if (s.has_laser) {
        std::string f[7];
        for (auto& x : f) v >> x;
        s.laser.e0 = parse_double(f[0], path);
        s.laser.wavelength_nm = parse_double(f[1], path);
        s.laser.t_center = parse_double(f[2], path);
        s.laser.t_width = parse_double(f[3], path);
        s.laser.polarization = {parse_double(f[4], path),
                                parse_double(f[5], path),
                                parse_double(f[6], path)};
      }
    } else if (key == "config_hash") {
      s.config_hash = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      PTIM_CHECK_MSG(false, "job spec: unknown key '" << key << "' in "
                                                      << path);
    }
  }
  return s;
}

std::string serialize_status(const JobStatus& st) {
  PTIM_CHECK_MSG(st.error.find('\n') == std::string::npos,
                 "job error message must be a single line");
  std::ostringstream out;
  out << "state " << job_state_name(st.state) << "\n";
  out << "steps_done " << st.steps_done << "\n";
  if (!st.error.empty()) out << "error " << st.error << "\n";
  return out.str();
}

JobStatus parse_status(const std::string& path) {
  std::ifstream in(path);
  PTIM_CHECK_MSG(in.good(), "job status missing: " << path);
  JobStatus st;
  std::string line, key, value;
  while (std::getline(in, line)) {
    if (!split_line(line, &key, &value)) continue;
    if (key == "state") {
      st.state = parse_state(value, path);
    } else if (key == "steps_done") {
      st.steps_done = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "error") {
      st.error = value;
    } else {
      PTIM_CHECK_MSG(false, "job status: unknown key '" << key << "' in "
                                                        << path);
    }
  }
  return st;
}

}  // namespace

// ------------------------------------------------------------- helpers --

void atomic_write_text(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  try {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    PTIM_CHECK_MSG(f != nullptr, "cannot open record for writing: " << tmp);
    bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    ok = ok && std::fflush(f) == 0;
    ok = ok && ::fsync(::fileno(f)) == 0;
    const bool closed = std::fclose(f) == 0;
    PTIM_CHECK_MSG(ok && closed, "record write failed: " << tmp);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    PTIM_CHECK_MSG(false, "record rename failed: " << tmp << " -> " << path);
  }
}

void make_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) return;
  PTIM_CHECK_MSG(false, "cannot create directory: " << path << " ("
                                                    << std::strerror(errno)
                                                    << ")");
}

std::vector<std::string> list_dir(const std::string& path) {
  std::vector<std::string> out;
  DIR* d = ::opendir(path.c_str());
  if (!d) return out;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") out.push_back(name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

// ------------------------------------------------------------ JobQueue --

JobQueue::JobQueue(std::string dir) : dir_(std::move(dir)) {
  PTIM_CHECK_MSG(!dir_.empty(), "JobQueue: empty directory");
  make_dir(dir_);
  reload();
}

void JobQueue::reload() {
  records_.clear();
  std::vector<int> ids;
  for (const std::string& name : list_dir(dir_)) {
    // job_<id>.spec identifies a record; the id is the digits between.
    if (name.rfind("job_", 0) != 0) continue;
    const size_t dot = name.rfind(".spec");
    if (dot == std::string::npos || dot + 5 != name.size()) continue;
    const std::string digits = name.substr(4, dot - 4);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    ids.push_back(std::atoi(digits.c_str()));
  }
  std::sort(ids.begin(), ids.end());
  for (size_t i = 0; i < ids.size(); ++i) {
    const int id = ids[i];
    PTIM_CHECK_MSG(id == static_cast<int>(i),
                   "job queue corrupt: non-contiguous job ids in " << dir_);
    JobRecord r;
    r.id = id;
    r.spec = parse_spec(spec_path(id));
    // A spec without a status file is a submit torn between the two
    // writes — treat as freshly pending (the spec write lands first).
    r.status = file_exists(status_path(id)) ? parse_status(status_path(id))
                                            : JobStatus{};
    records_.push_back(std::move(r));
  }
}

int JobQueue::submit(const JobSpec& spec) {
  const int id = static_cast<int>(records_.size());
  JobRecord r;
  r.id = id;
  r.spec = spec;
  // Spec first, then status: reload() treats a lone spec as pending, so a
  // kill between the two writes still yields a runnable record.
  atomic_write_text(spec_path(id), serialize_spec(spec));
  atomic_write_text(status_path(id), serialize_status(r.status));
  make_dir(job_dir(id));
  records_.push_back(std::move(r));
  return id;
}

void JobQueue::update_status(int id, const JobStatus& status) {
  atomic_write_text(status_path(id), serialize_status(status));
  records_[static_cast<size_t>(id)].status = status;
}

const JobRecord& JobQueue::record(int id) const {
  PTIM_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < records_.size(),
                 "no such job id: " << id);
  return records_[static_cast<size_t>(id)];
}

std::string JobQueue::job_dir(int id) const {
  return dir_ + "/job_" + std::to_string(id);
}

std::string JobQueue::spec_path(int id) const {
  return dir_ + "/job_" + std::to_string(id) + ".spec";
}

std::string JobQueue::status_path(int id) const {
  return dir_ + "/job_" + std::to_string(id) + ".status";
}

}  // namespace ptim::io
