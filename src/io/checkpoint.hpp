#pragma once
// Versioned binary checkpoint/restart of the full propagation state — the
// serving-layer primitive that lets a trajectory be split at any step and
// resumed bit-exactly (the io regression suite replays the committed golden
// fixture across a mid-trajectory save/load for serial, band-parallel and
// 2-D grid runs), and the durability primitive ensemble campaigns lean on:
// saves are crash-safe (written to `<path>.tmp`, fsynced, then atomically
// renamed over the target), so a kill at ANY instant leaves either the old
// complete file or the new complete file at `path` — never a torn one.
//
// File layout, format v2 (fixed-width fields):
//   magic     8 bytes  "PTIMCKPT"
//   version   u32      kCheckpointVersion (2)
//   endian    u32      kEndianSentinel = 0x01020304, written in the
//                      producer's native byte order; a consumer on the
//                      opposite endianness reads 0x04030201 and fails with
//                      a byte-order diagnostic instead of a misleading
//                      checksum error deep in the payload
//   config    u64      RNG-free hash of the producing run configuration
//                      (core::RunConfig::physics_hash chained with the
//                      system dimensions); 0 = unchecked
//   step      u64      trajectory step index of the stored state
//   time      f64      state.time (a.u.)
//   avec      3 x f64  Hamiltonian vector potential A(t) — carries the
//                      laser phase / delta-kick between run segments
//   npw, nb   u64 x 2  Phi is npw x nb, sigma nb x nb
//   phi       npw*nb complex<f64>, column-major
//   sigma     nb*nb  complex<f64>, column-major
//   meta_len  u64      campaign metadata blob length (0 = none)
//   meta      meta_len opaque bytes — reserved for the campaign layer
//                      (core::EnsembleCampaign stores the job's measurement
//                      series + horizon anchor here, so one atomic file
//                      carries everything a resume needs)
//   checksum  u64      FNV-1a over every preceding byte after the magic
//   (EOF — any trailing bytes after the checksum are rejected)
//
// Format v1 (no endian sentinel, no metadata block) is still READ for
// migration; see the README's checkpoint-format notes. New files are
// always written as v2.
//
// Loading validates magic, version, byte order, payload completeness, the
// checksum and exact file length, and reports each failure as a descriptive
// ptim::Error (never UB on a corrupt or old-version file). The payload is
// written/read as raw IEEE-754 doubles, so save -> load is bitwise
// lossless.

#include <cstdint>
#include <string>
#include <vector>

#include "grid/lattice.hpp"
#include "td/state.hpp"

namespace ptim::io {

inline constexpr uint32_t kCheckpointVersion = 2;
// Byte-order sentinel stored in every v2 header. On an opposite-endianness
// reader the bytes deserialize to 0x04030201, which load_checkpoint turns
// into an explicit byte-order error.
inline constexpr uint32_t kEndianSentinel = 0x01020304u;
inline constexpr uint32_t kEndianSentinelSwapped = 0x04030201u;

// FNV-1a, the checkpoint family's hash for both the header checksum and the
// RNG-free config hashes (core::RunConfig chains field bytes through it).
inline constexpr uint64_t kFnvOffset = 1469598103934665603ull;
inline uint64_t fnv1a(const void* data, size_t nbytes,
                      uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < nbytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct Checkpoint {
  td::TdState state;
  uint64_t step_index = 0;   // steps completed when the state was saved
  uint64_t config_hash = 0;  // 0 = no configuration binding
  grid::Vec3 avec{0.0, 0.0, 0.0};
  // Opaque campaign metadata, checksummed with the rest of the file. Empty
  // for plain Simulation-level checkpoints; core::EnsembleCampaign stores
  // the per-job measurement series + horizon anchor here.
  std::vector<uint8_t> campaign_meta;
};

// Write `c` to `path` (overwrites). Crash-safe: the bytes land in
// `<path>.tmp` first and are renamed over `path` only after the checksum,
// flush, fsync and close ALL succeeded — so a crash or close-time I/O error
// (full disk, NFS) can never leave a torn file where resume looks for a
// good one. Throws ptim::Error on any failure (the partial .tmp is
// removed).
void save_checkpoint(const std::string& path, const Checkpoint& c);

// Read a checkpoint back (format v2, plus v1 for migration). expected_config_hash != 0
// additionally demands that the stored hash matches (a resume under a
// different RunConfig or SystemSpec is a descriptive error, not a silently
// wrong trajectory).
Checkpoint load_checkpoint(const std::string& path,
                           uint64_t expected_config_hash = 0);

}  // namespace ptim::io
