#pragma once
// Versioned binary checkpoint/restart of the full propagation state — the
// serving-layer primitive that lets a trajectory be split at any step and
// resumed bit-exactly (the io regression suite replays the committed golden
// fixture across a mid-trajectory save/load for serial, band-parallel and
// 2-D grid runs).
//
// File layout (native little-endian, fixed-width fields):
//   magic     8 bytes  "PTIMCKPT"
//   version   u32      kCheckpointVersion
//   config    u64      RNG-free hash of the producing run configuration
//                      (core::RunConfig::physics_hash chained with the
//                      system dimensions); 0 = unchecked
//   step      u64      trajectory step index of the stored state
//   time      f64      state.time (a.u.)
//   avec      3 x f64  Hamiltonian vector potential A(t) — carries the
//                      laser phase / delta-kick between run segments
//   npw, nb   u64 x 2  Phi is npw x nb, sigma nb x nb
//   phi       npw*nb complex<f64>, column-major
//   sigma     nb*nb  complex<f64>, column-major
//   checksum  u64      FNV-1a over every preceding byte after the magic
//
// Loading validates magic, version, payload completeness and the checksum
// and reports each failure as a descriptive ptim::Error (never UB on a
// corrupt or old-version file). The payload is written/read as raw IEEE-754
// doubles, so save -> load is bitwise lossless.

#include <cstdint>
#include <string>

#include "grid/lattice.hpp"
#include "td/state.hpp"

namespace ptim::io {

inline constexpr uint32_t kCheckpointVersion = 1;

// FNV-1a, the checkpoint family's hash for both the header checksum and the
// RNG-free config hashes (core::RunConfig chains field bytes through it).
inline constexpr uint64_t kFnvOffset = 1469598103934665603ull;
inline uint64_t fnv1a(const void* data, size_t nbytes,
                      uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < nbytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct Checkpoint {
  td::TdState state;
  uint64_t step_index = 0;   // steps completed when the state was saved
  uint64_t config_hash = 0;  // 0 = no configuration binding
  grid::Vec3 avec{0.0, 0.0, 0.0};
};

// Write `c` to `path` (overwrites). Throws ptim::Error on I/O failure.
void save_checkpoint(const std::string& path, const Checkpoint& c);

// Read a checkpoint back. expected_config_hash != 0 additionally demands
// that the stored hash matches (a resume under a different RunConfig or
// SystemSpec is a descriptive error, not a silently wrong trajectory).
Checkpoint load_checkpoint(const std::string& path,
                           uint64_t expected_config_hash = 0);

}  // namespace ptim::io
