#include "io/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace ptim::io {

namespace {

constexpr char kMagic[8] = {'P', 'T', 'I', 'M', 'C', 'K', 'P', 'T'};

// Serializer that both writes bytes and threads them through the FNV-1a
// checksum, so the on-disk checksum covers exactly what was emitted.
struct Writer {
  std::FILE* f;
  uint64_t hash = kFnvOffset;
  bool hashing = false;

  void bytes(const void* p, size_t n) {
    PTIM_CHECK_MSG(std::fwrite(p, 1, n, f) == n, "checkpoint write failed");
    if (hashing) hash = fnv1a(p, n, hash);
  }
  template <class T>
  void pod(const T& v) {
    bytes(&v, sizeof(T));
  }
};

struct Reader {
  std::FILE* f;
  const std::string* path;
  uint64_t hash = kFnvOffset;
  bool hashing = false;

  void bytes(void* p, size_t n) {
    PTIM_CHECK_MSG(std::fread(p, 1, n, f) == n,
                   "checkpoint truncated: " << *path);
    if (hashing) hash = fnv1a(p, n, hash);
  }
  template <class T>
  T pod() {
    T v;
    bytes(&v, sizeof(T));
    return v;
  }
};

struct FileCloser {
  std::FILE* f;
  ~FileCloser() {
    if (f) std::fclose(f);
  }
};

}  // namespace

void save_checkpoint(const std::string& path, const Checkpoint& c) {
  PTIM_CHECK_MSG(c.state.phi.cols() == c.state.sigma.rows() &&
                     c.state.sigma.rows() == c.state.sigma.cols(),
                 "checkpoint state dimensions inconsistent");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  PTIM_CHECK_MSG(f != nullptr, "cannot open checkpoint for writing: " << path);
  FileCloser closer{f};
  Writer w{f};
  w.bytes(kMagic, sizeof(kMagic));
  w.hashing = true;  // checksum covers everything after the magic
  w.pod<uint32_t>(kCheckpointVersion);
  w.pod<uint64_t>(c.config_hash);
  w.pod<uint64_t>(c.step_index);
  w.pod<double>(c.state.time);
  for (int d = 0; d < 3; ++d) w.pod<double>(c.avec[d]);
  const uint64_t npw = c.state.phi.rows();
  const uint64_t nb = c.state.phi.cols();
  w.pod<uint64_t>(npw);
  w.pod<uint64_t>(nb);
  w.bytes(c.state.phi.data(), npw * nb * sizeof(cplx));
  w.bytes(c.state.sigma.data(), nb * nb * sizeof(cplx));
  w.hashing = false;
  w.pod<uint64_t>(w.hash);
  PTIM_CHECK_MSG(std::fflush(f) == 0, "checkpoint flush failed: " << path);
}

Checkpoint load_checkpoint(const std::string& path,
                           uint64_t expected_config_hash) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  PTIM_CHECK_MSG(f != nullptr, "checkpoint file missing: " << path);
  FileCloser closer{f};
  Reader r{f, &path};
  char magic[8];
  r.bytes(magic, sizeof(magic));
  PTIM_CHECK_MSG(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                 "not a ptim checkpoint (bad magic): " << path);
  r.hashing = true;
  const auto version = r.pod<uint32_t>();
  PTIM_CHECK_MSG(version == kCheckpointVersion,
                 "unsupported checkpoint version " << version << " (expected "
                                                   << kCheckpointVersion
                                                   << "): " << path);
  Checkpoint c;
  c.config_hash = r.pod<uint64_t>();
  c.step_index = r.pod<uint64_t>();
  c.state.time = r.pod<double>();
  for (int d = 0; d < 3; ++d) c.avec[d] = r.pod<double>();
  const auto npw = r.pod<uint64_t>();
  const auto nb = r.pod<uint64_t>();
  // Sanity-bound the dimensions before allocating: a corrupted size field
  // must fail as a descriptive error, not a bad_alloc (or worse).
  PTIM_CHECK_MSG(npw > 0 && nb > 0 && npw < (1ull << 32) && nb < (1ull << 20),
                 "checkpoint dimensions implausible (npw=" << npw << ", nb="
                                                           << nb
                                                           << "): " << path);
  c.state.phi.resize(npw, nb);
  c.state.sigma.resize(nb, nb);
  r.bytes(c.state.phi.data(), npw * nb * sizeof(cplx));
  r.bytes(c.state.sigma.data(), nb * nb * sizeof(cplx));
  r.hashing = false;
  const uint64_t computed = r.hash;
  const auto stored = r.pod<uint64_t>();
  PTIM_CHECK_MSG(stored == computed,
                 "checkpoint checksum mismatch (file corrupt): " << path);
  PTIM_CHECK_MSG(expected_config_hash == 0 ||
                     c.config_hash == expected_config_hash,
                 "checkpoint was written by a different run configuration "
                 "(stored hash "
                     << c.config_hash << ", expected " << expected_config_hash
                     << "): " << path);
  return c;
}

}  // namespace ptim::io
