#include "io/checkpoint.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace ptim::io {

namespace {

constexpr char kMagic[8] = {'P', 'T', 'I', 'M', 'C', 'K', 'P', 'T'};

// Serializer that both writes bytes and threads them through the FNV-1a
// checksum, so the on-disk checksum covers exactly what was emitted.
struct Writer {
  std::FILE* f;
  uint64_t hash = kFnvOffset;
  bool hashing = false;

  void bytes(const void* p, size_t n) {
    PTIM_CHECK_MSG(std::fwrite(p, 1, n, f) == n, "checkpoint write failed");
    if (hashing) hash = fnv1a(p, n, hash);
  }
  template <class T>
  void pod(const T& v) {
    bytes(&v, sizeof(T));
  }
};

struct Reader {
  std::FILE* f;
  const std::string* path;
  uint64_t hash = kFnvOffset;
  bool hashing = false;

  void bytes(void* p, size_t n) {
    PTIM_CHECK_MSG(std::fread(p, 1, n, f) == n,
                   "checkpoint truncated: " << *path);
    if (hashing) hash = fnv1a(p, n, hash);
  }
  template <class T>
  T pod() {
    T v;
    bytes(&v, sizeof(T));
    return v;
  }
};

// RAII close for the error/unwind paths only. The SUCCESS path must close
// through close_checked(): fclose flushes the stdio buffer a final time,
// and an error there (full disk, NFS write-back) means the bytes never
// landed — silently ignoring it would publish a truncated checkpoint.
struct FileCloser {
  std::FILE* f;
  ~FileCloser() {
    if (f) std::fclose(f);  // already unwinding: nothing useful to report
  }
  void close_checked(const std::string& path) {
    std::FILE* h = f;
    f = nullptr;  // never double-close, even if the check below throws
    PTIM_CHECK_MSG(std::fclose(h) == 0,
                   "checkpoint close failed (I/O error flushing final "
                   "buffers — disk full?): "
                       << path);
  }
};

uint32_t byteswap32(uint32_t v) {
  return ((v & 0xff000000u) >> 24) | ((v & 0x00ff0000u) >> 8) |
         ((v & 0x0000ff00u) << 8) | ((v & 0x000000ffu) << 24);
}

}  // namespace

void save_checkpoint(const std::string& path, const Checkpoint& c) {
  PTIM_CHECK_MSG(c.state.phi.cols() == c.state.sigma.rows() &&
                     c.state.sigma.rows() == c.state.sigma.cols(),
                 "checkpoint state dimensions inconsistent");
  // Stage into a sibling temp file and rename over the target only once
  // every byte (and the final flush/fsync/close) succeeded: rename(2) on
  // the same filesystem is atomic, so `path` always holds a COMPLETE
  // checkpoint — the old one until the instant the new one is ready.
  const std::string tmp = path + ".tmp";
  try {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    PTIM_CHECK_MSG(f != nullptr,
                   "cannot open checkpoint for writing: " << tmp);
    FileCloser closer{f};
    Writer w{f};
    w.bytes(kMagic, sizeof(kMagic));
    w.hashing = true;  // checksum covers everything after the magic
    w.pod<uint32_t>(kCheckpointVersion);
    w.pod<uint32_t>(kEndianSentinel);
    w.pod<uint64_t>(c.config_hash);
    w.pod<uint64_t>(c.step_index);
    w.pod<double>(c.state.time);
    for (int d = 0; d < 3; ++d) w.pod<double>(c.avec[d]);
    const uint64_t npw = c.state.phi.rows();
    const uint64_t nb = c.state.phi.cols();
    w.pod<uint64_t>(npw);
    w.pod<uint64_t>(nb);
    w.bytes(c.state.phi.data(), npw * nb * sizeof(cplx));
    w.bytes(c.state.sigma.data(), nb * nb * sizeof(cplx));
    const uint64_t meta_len = c.campaign_meta.size();
    w.pod<uint64_t>(meta_len);
    if (meta_len > 0) w.bytes(c.campaign_meta.data(), meta_len);
    w.hashing = false;
    w.pod<uint64_t>(w.hash);
    PTIM_CHECK_MSG(std::fflush(f) == 0, "checkpoint flush failed: " << tmp);
    // Push the bytes to stable storage BEFORE the rename publishes the
    // file, so a power loss cannot commit a name pointing at lost data.
    PTIM_CHECK_MSG(::fsync(::fileno(f)) == 0,
                   "checkpoint fsync failed: " << tmp);
    closer.close_checked(tmp);
  } catch (...) {
    std::remove(tmp.c_str());  // never leave partial staging files behind
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    PTIM_CHECK_MSG(false, "checkpoint rename failed: " << tmp << " -> "
                                                       << path);
  }
}

Checkpoint load_checkpoint(const std::string& path,
                           uint64_t expected_config_hash) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  PTIM_CHECK_MSG(f != nullptr, "checkpoint file missing: " << path);
  FileCloser closer{f};
  Reader r{f, &path};
  char magic[8];
  r.bytes(magic, sizeof(magic));
  PTIM_CHECK_MSG(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                 "not a ptim checkpoint (bad magic): " << path);
  r.hashing = true;
  const auto version = r.pod<uint32_t>();
  // A big-endian writer stores the version with swapped bytes; diagnose
  // that up front instead of failing later at the checksum with a
  // misleading "corrupt" message.
  PTIM_CHECK_MSG(byteswap32(version) != kCheckpointVersion &&
                     byteswap32(version) != 1u,
                 "checkpoint was written on an opposite-endianness machine "
                 "(byte-swapped version field): "
                     << path);
  PTIM_CHECK_MSG(version == kCheckpointVersion || version == 1,
                 "unsupported checkpoint version " << version << " (expected "
                                                   << kCheckpointVersion
                                                   << "): " << path);
  if (version >= 2) {
    const auto sentinel = r.pod<uint32_t>();
    PTIM_CHECK_MSG(sentinel != kEndianSentinelSwapped,
                   "checkpoint was written on an opposite-endianness "
                   "machine (sentinel 0x04030201): "
                       << path);
    PTIM_CHECK_MSG(sentinel == kEndianSentinel,
                   "checkpoint header corrupt (bad endianness sentinel): "
                       << path);
  }
  Checkpoint c;
  c.config_hash = r.pod<uint64_t>();
  c.step_index = r.pod<uint64_t>();
  c.state.time = r.pod<double>();
  for (int d = 0; d < 3; ++d) c.avec[d] = r.pod<double>();
  const auto npw = r.pod<uint64_t>();
  const auto nb = r.pod<uint64_t>();
  // Sanity-bound the dimensions before allocating: a corrupted size field
  // must fail as a descriptive error, not a bad_alloc (or worse).
  PTIM_CHECK_MSG(npw > 0 && nb > 0 && npw < (1ull << 32) && nb < (1ull << 20),
                 "checkpoint dimensions implausible (npw=" << npw << ", nb="
                                                           << nb
                                                           << "): " << path);
  c.state.phi.resize(npw, nb);
  c.state.sigma.resize(nb, nb);
  r.bytes(c.state.phi.data(), npw * nb * sizeof(cplx));
  r.bytes(c.state.sigma.data(), nb * nb * sizeof(cplx));
  if (version >= 2) {
    const auto meta_len = r.pod<uint64_t>();
    PTIM_CHECK_MSG(meta_len < (1ull << 30),
                   "checkpoint metadata length implausible (" << meta_len
                                                              << "): "
                                                              << path);
    c.campaign_meta.resize(meta_len);
    if (meta_len > 0) r.bytes(c.campaign_meta.data(), meta_len);
  }
  r.hashing = false;
  const uint64_t computed = r.hash;
  const auto stored = r.pod<uint64_t>();
  PTIM_CHECK_MSG(stored == computed,
                 "checkpoint checksum mismatch (file corrupt): " << path);
  // The checksum is the LAST field: anything after it was never covered by
  // it, so a file with trailing bytes is not the file the writer produced
  // (concatenated segments, a torn copy, tampering) — reject it.
  PTIM_CHECK_MSG(std::fgetc(f) == EOF,
                 "checkpoint has trailing bytes after the checksum: "
                     << path);
  PTIM_CHECK_MSG(expected_config_hash == 0 ||
                     c.config_hash == expected_config_hash,
                 "checkpoint was written by a different run configuration "
                 "(stored hash "
                     << c.config_hash << ", expected " << expected_config_hash
                     << "): " << path);
  return c;
}

}  // namespace ptim::io
