#pragma once
// Dense column-major matrix. Column-major is chosen to match the
// plane-wave layout used throughout (a wavefunction block is an Ng x Nband
// matrix whose columns are orbitals, exactly PWDFT's storage).

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ptim::la {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(size_t n) {
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(size_t i, size_t j) { return data_[i + j * rows_]; }
  const T& operator()(size_t i, size_t j) const { return data_[i + j * rows_]; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T* col(size_t j) { return data_.data() + j * rows_; }
  const T* col(size_t j) const { return data_.data() + j * rows_; }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }
  void resize(size_t rows, size_t cols, T fill = T{}) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  Matrix conj_transpose() const {
    Matrix out(cols_, rows_);
    for (size_t j = 0; j < cols_; ++j)
      for (size_t i = 0; i < rows_; ++i) {
        if constexpr (std::is_same_v<T, cplx> || std::is_same_v<T, cplxf>)
          out(j, i) = std::conj((*this)(i, j));
        else
          out(j, i) = (*this)(i, j);
      }
    return out;
  }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  size_t rows_ = 0, cols_ = 0;
  std::vector<T> data_;
};

using MatC = Matrix<cplx>;
using MatR = Matrix<real_t>;
// Single-precision complex block: the down-converted-at-the-edge buffers of
// the FP32 exchange pipeline (pair densities, circulated real-space slabs).
using MatCf = Matrix<cplxf>;

}  // namespace ptim::la
