// Cyclic complex Jacobi eigensolver: the robust cross-check implementation.
// Each sweep annihilates every off-diagonal pair (p,q) with a unitary
// rotation J = P(phi) * R(theta) where P removes the phase of A_pq and R is
// the classical real Jacobi rotation.

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/eig.hpp"

namespace ptim::la {

namespace {

real_t offdiag_norm(const MatC& A) {
  real_t acc = 0.0;
  const size_t n = A.rows();
  for (size_t j = 0; j < n; ++j)
    for (size_t i = 0; i < n; ++i)
      if (i != j) acc += std::norm(A(i, j));
  return std::sqrt(acc);
}

}  // namespace

EigResult eig_herm_jacobi(const MatC& A_in, real_t tol, int max_sweeps) {
  PTIM_CHECK_MSG(A_in.rows() == A_in.cols(),
                 "eig_herm_jacobi: matrix must be square");
  const size_t n = A_in.rows();
  MatC A = A_in;
  MatC V = MatC::identity(n);

  const real_t scale = std::max<real_t>(1.0, offdiag_norm(A));
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (offdiag_norm(A) <= tol * scale) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const cplx apq = A(p, q);
        const real_t aapq = std::abs(apq);
        if (aapq < 1e-300) continue;
        const real_t app = std::real(A(p, p));
        const real_t aqq = std::real(A(q, q));
        const cplx phase = apq / aapq;  // A_pq = |A_pq| * phase

        // Real rotation angle for the phase-stripped 2x2 block.
        const real_t tau = (aqq - app) / (2.0 * aapq);
        real_t t;
        if (tau >= 0.0)
          t = 1.0 / (tau + std::sqrt(1.0 + tau * tau));
        else
          t = -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
        const real_t c = 1.0 / std::sqrt(1.0 + t * t);
        const real_t s = t * c;

        // J restricted to (p,q):  J_pp = c, J_pq = s*phase,
        //                         J_qp = -s*conj(phase)... derived so that
        // (J^H A J)_pq = 0. We parameterize J columns directly:
        //   col p:  (c, -s*conj(phase))   col q: (s*phase_conj?, c) —
        // verified below by explicit construction.
        const cplx jpp = c;
        const cplx jqp = -s * std::conj(phase);
        const cplx jpq = s * phase;
        const cplx jqq = c;

        // Columns update: A(:, {p,q}) <- A(:, {p,q}) * J
        for (size_t k = 0; k < n; ++k) {
          const cplx akp = A(k, p), akq = A(k, q);
          A(k, p) = akp * jpp + akq * jqp;
          A(k, q) = akp * jpq + akq * jqq;
        }
        // Rows update: A({p,q}, :) <- J^H * A({p,q}, :)
        for (size_t k = 0; k < n; ++k) {
          const cplx apk = A(p, k), aqk = A(q, k);
          A(p, k) = std::conj(jpp) * apk + std::conj(jqp) * aqk;
          A(q, k) = std::conj(jpq) * apk + std::conj(jqq) * aqk;
        }
        // Keep the matrix numerically Hermitian.
        A(p, q) = 0.0;
        A(q, p) = 0.0;
        A(p, p) = std::real(A(p, p));
        A(q, q) = std::real(A(q, q));

        for (size_t k = 0; k < n; ++k) {
          const cplx vkp = V(k, p), vkq = V(k, q);
          V(k, p) = vkp * jpp + vkq * jqp;
          V(k, q) = vkp * jpq + vkq * jqq;
        }
      }
    }
  }

  EigResult res;
  res.w.resize(n);
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::vector<real_t> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = std::real(A(i, i));
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return diag[a] < diag[b]; });
  res.V.resize(n, n);
  for (size_t j = 0; j < n; ++j) {
    res.w[j] = diag[idx[j]];
    for (size_t i = 0; i < n; ++i) res.V(i, j) = V(i, idx[j]);
  }
  return res;
}

}  // namespace ptim::la
