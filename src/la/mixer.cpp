#include "la/mixer.hpp"

#include "common/error.hpp"
#include "la/lsq.hpp"
#include "la/matrix.hpp"

namespace ptim::la {

AndersonMixer::AndersonMixer(size_t dim, size_t max_history, real_t beta,
                             real_t regularization)
    : dim_(dim), max_history_(max_history), beta_(beta), reg_(regularization) {
  PTIM_CHECK(max_history >= 1);
}

void AndersonMixer::reset() {
  hist_x_.clear();
  hist_f_.clear();
}

std::vector<cplx> AndersonMixer::mix(const std::vector<cplx>& x,
                                     const std::vector<cplx>& f) {
  PTIM_CHECK(x.size() == dim_ && f.size() == dim_);
  const size_t m = hist_x_.size();

  std::vector<cplx> xbar = x, fbar = f;
  if (m > 0) {
    // Columns: f_k - f_i; rhs: f_k.
    MatC A(dim_, m);
    for (size_t i = 0; i < m; ++i)
      for (size_t r = 0; r < dim_; ++r) A(r, i) = f[r] - hist_f_[i][r];
    const std::vector<cplx> theta = lsq_solve(A, f, reg_);
    for (size_t i = 0; i < m; ++i) {
      const cplx th = theta[i];
      for (size_t r = 0; r < dim_; ++r) {
        xbar[r] -= th * (x[r] - hist_x_[i][r]);
        fbar[r] -= th * (f[r] - hist_f_[i][r]);
      }
    }
  }

  hist_x_.push_back(x);
  hist_f_.push_back(f);
  if (hist_x_.size() > max_history_) {
    hist_x_.pop_front();
    hist_f_.pop_front();
  }

  std::vector<cplx> next(dim_);
  for (size_t r = 0; r < dim_; ++r) next[r] = xbar[r] + beta_ * fbar[r];
  return next;
}

std::vector<real_t> AndersonMixerReal::mix(const std::vector<real_t>& x,
                                           const std::vector<real_t>& f) {
  std::vector<cplx> xc(x.size()), fc(f.size());
  for (size_t i = 0; i < x.size(); ++i) xc[i] = x[i];
  for (size_t i = 0; i < f.size(); ++i) fc[i] = f[i];
  const std::vector<cplx> next = inner_.mix(xc, fc);
  std::vector<real_t> out(next.size());
  for (size_t i = 0; i < next.size(); ++i) out[i] = std::real(next[i]);
  return out;
}

}  // namespace ptim::la
