#pragma once
// Small dense least squares via modified Gram–Schmidt QR with optional
// Tikhonov regularization. Used by the Anderson mixer (history <= 20, so
// these systems are tiny; robustness matters more than speed).

#include <vector>

#include "la/matrix.hpp"

namespace ptim::la {

// Minimize ||A x - b||_2 (+ lambda^2 ||x||^2 when lambda > 0).
// A is m x k with m >= k (full column rank after regularization).
std::vector<cplx> lsq_solve(const MatC& A, const std::vector<cplx>& b,
                            real_t lambda = 0.0);

}  // namespace ptim::la
