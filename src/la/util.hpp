#pragma once
// Matrix odds and ends shared across modules: Hermitization, commutators,
// traces — the sigma-dynamics bookkeeping of the PT-IM scheme.

#include "la/matrix.hpp"

namespace ptim::la {

// A <- (A + A^H)/2, enforcing exact Hermiticity ("conjugate symmetrization"
// of sigma at the end of each PT-IM step, Alg. 1 line 13).
void hermitize(MatC& A);

// [A, B] = A*B - B*A for square matrices.
MatC commutator(const MatC& A, const MatC& B);

cplx trace(const MatC& A);

// Max |A_ij - conj(A_ji)| — Hermiticity defect, used in invariant tests.
real_t hermiticity_defect(const MatC& A);

// C = alpha*A + beta*B elementwise (shape-checked).
MatC lincomb(cplx alpha, const MatC& A, cplx beta, const MatC& B);

// Max-abs element.
real_t max_abs(const MatC& A);

}  // namespace ptim::la
