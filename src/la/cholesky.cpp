#include "la/cholesky.hpp"

#include <cmath>

namespace ptim::la {

MatC cholesky(const MatC& A) {
  PTIM_CHECK_MSG(A.rows() == A.cols(), "cholesky: matrix must be square");
  const size_t n = A.rows();
  MatC L(n, n);
  for (size_t j = 0; j < n; ++j) {
    // Diagonal element.
    real_t sum = std::real(A(j, j));
    for (size_t k = 0; k < j; ++k) sum -= std::norm(L(j, k));
    PTIM_CHECK_MSG(sum > 0.0, "cholesky: matrix not positive definite at row "
                                  << j << " (pivot " << sum << ")");
    const real_t ljj = std::sqrt(sum);
    L(j, j) = ljj;
    // Column below the diagonal.
    for (size_t i = j + 1; i < n; ++i) {
      cplx s = A(i, j);
      for (size_t k = 0; k < j; ++k) s -= L(i, k) * std::conj(L(j, k));
      L(i, j) = s / ljj;
    }
  }
  return L;
}

void solve_lower(const MatC& L, MatC& B) {
  const size_t n = L.rows();
  PTIM_CHECK(B.rows() == n);
#pragma omp parallel for schedule(static)
  for (size_t j = 0; j < B.cols(); ++j) {
    cplx* b = B.col(j);
    for (size_t i = 0; i < n; ++i) {
      cplx s = b[i];
      for (size_t k = 0; k < i; ++k) s -= L(i, k) * b[k];
      b[i] = s / L(i, i);
    }
  }
}

void solve_lower_herm(const MatC& L, MatC& B) {
  const size_t n = L.rows();
  PTIM_CHECK(B.rows() == n);
#pragma omp parallel for schedule(static)
  for (size_t j = 0; j < B.cols(); ++j) {
    cplx* b = B.col(j);
    for (size_t i = n; i-- > 0;) {
      cplx s = b[i];
      for (size_t k = i + 1; k < n; ++k) s -= std::conj(L(k, i)) * b[k];
      b[i] = s / std::conj(L(i, i));
    }
  }
}

void cholesky_solve(const MatC& L, MatC& B) {
  solve_lower(L, B);
  solve_lower_herm(L, B);
}

void solve_upper_right(const MatC& L, MatC& B) {
  // X * L^H = B with L^H upper triangular: (L^H)_{kj} = conj(L_{jk}), k <= j.
  // Column j of X: X(:,j) = (B(:,j) - sum_{k<j} X(:,k) conj(L(j,k)))/conj(L(j,j)).
  const size_t n = L.rows();
  PTIM_CHECK(B.cols() == n);
  const size_t m = B.rows();
  for (size_t j = 0; j < n; ++j) {
    cplx* xj = B.col(j);
    for (size_t k = 0; k < j; ++k) {
      const cplx ljk = std::conj(L(j, k));
      if (ljk == cplx(0.0)) continue;
      const cplx* xk = B.col(k);
      for (size_t i = 0; i < m; ++i) xj[i] -= xk[i] * ljk;
    }
    const cplx d = std::conj(L(j, j));
    for (size_t i = 0; i < m; ++i) xj[i] /= d;
  }
}

MatC hpd_inverse(const MatC& A) {
  const MatC L = cholesky(A);
  MatC inv = MatC::identity(A.rows());
  cholesky_solve(L, inv);
  return inv;
}

}  // namespace ptim::la
