#include "la/cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "la/kernels.hpp"

namespace ptim::la {

MatC cholesky(const MatC& A) {
  PTIM_CHECK_MSG(A.rows() == A.cols(), "cholesky: matrix must be square");
  const size_t n = A.rows();
  MatC L(n, n);
  for (size_t j = 0; j < n; ++j) {
    // Diagonal element.
    real_t sum = std::real(A(j, j));
    for (size_t k = 0; k < j; ++k) sum -= std::norm(L(j, k));
    PTIM_CHECK_MSG(sum > 0.0, "cholesky: matrix not positive definite at row "
                                  << j << " (pivot " << sum << ")");
    const real_t ljj = std::sqrt(sum);
    L(j, j) = ljj;
    // Column below the diagonal.
    for (size_t i = j + 1; i < n; ++i) {
      cplx s = A(i, j);
      for (size_t k = 0; k < j; ++k) s -= L(i, k) * std::conj(L(j, k));
      L(i, j) = s / ljj;
    }
  }
  return L;
}

void solve_lower(const MatC& L, MatC& B) {
  const size_t n = L.rows();
  PTIM_CHECK(B.rows() == n);
  // Column-sweep forward solve: each b[i] receives the k = 0..i-1 updates
  // in the same order as the row-oriented dot, so results are bitwise
  // identical, but the L accesses walk contiguous columns. RHS columns are
  // tiled so each L column is read once per tile from L1 instead of once
  // per RHS column from L2/DRAM — the solve is bandwidth-bound when the
  // RHS is wide (the ISDF fit solves against every grid point).
  const size_t ncols = B.cols();
  constexpr size_t tile = 24;
#pragma omp parallel for schedule(static)
  for (size_t j0 = 0; j0 < ncols; j0 += tile) {
    const size_t j1 = std::min(ncols, j0 + tile);
    for (size_t k = 0; k < n; ++k) {
      // The Cholesky diagonal is real positive by construction, so the
      // division is componentwise — no complex-divide libcall.
      const real_t lkk = L(k, k).real();
      const cplx* lk = L.col(k) + k + 1;
      for (size_t j = j0; j < j1; ++j) {
        cplx* b = B.col(j);
        b[k] = cplx(b[k].real() / lkk, b[k].imag() / lkk);
        cx_axpy(n - k - 1, -b[k], lk, b + k + 1);
      }
    }
  }
}

void solve_lower_herm(const MatC& L, MatC& B) {
  const size_t n = L.rows();
  PTIM_CHECK(B.rows() == n);
  const size_t ncols = B.cols();
  constexpr size_t tile = 24;
#pragma omp parallel for schedule(static)
  for (size_t j0 = 0; j0 < ncols; j0 += tile) {
    const size_t j1 = std::min(ncols, j0 + tile);
    for (size_t i = n; i-- > 0;) {
      const real_t lii = L(i, i).real();  // real positive diagonal
      const real_t* lc = reinterpret_cast<const real_t*>(L.col(i));
      for (size_t j = j0; j < j1; ++j) {
        cplx* b = B.col(j);
        real_t sr = b[i].real(), si = b[i].imag();
        const real_t* bs = reinterpret_cast<const real_t*>(b);
        for (size_t k = i + 1; k < n; ++k) {
          const real_t lr = lc[2 * k], li = lc[2 * k + 1];
          const real_t br = bs[2 * k], bi = bs[2 * k + 1];
          sr -= lr * br + li * bi;
          si -= lr * bi - li * br;
        }
        b[i] = cplx(sr / lii, si / lii);
      }
    }
  }
}

void cholesky_solve(const MatC& L, MatC& B) {
  solve_lower(L, B);
  solve_lower_herm(L, B);
}

void solve_upper_right(const MatC& L, MatC& B) {
  // X * L^H = B with L^H upper triangular: (L^H)_{kj} = conj(L_{jk}), k <= j.
  // Column j of X:
  //   X(:,j) = (B(:,j) - sum_{k<j} X(:,k) conj(L(j,k))) / conj(L(j,j)).
  const size_t n = L.rows();
  PTIM_CHECK(B.cols() == n);
  const size_t m = B.rows();
  for (size_t j = 0; j < n; ++j) {
    cplx* xj = B.col(j);
    for (size_t k = 0; k < j; ++k) {
      const cplx ljk = std::conj(L(j, k));
      if (ljk == cplx(0.0)) continue;
      const cplx* xk = B.col(k);
      for (size_t i = 0; i < m; ++i) xj[i] -= xk[i] * ljk;
    }
    const cplx d = std::conj(L(j, j));
    for (size_t i = 0; i < m; ++i) xj[i] /= d;
  }
}

MatC hpd_inverse(const MatC& A) {
  const MatC L = cholesky(A);
  MatC inv = MatC::identity(A.rows());
  cholesky_solve(L, inv);
  return inv;
}

}  // namespace ptim::la
