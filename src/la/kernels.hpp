#pragma once

// Explicit real/imaginary microkernels for the hot complex inner loops
// (GEMM panels, triangular solves, Householder updates).
//
// std::complex arithmetic at -O2/-O3 carries the Annex-G NaN-recovery
// branch on every multiply, which blocks vectorization of the loops that
// dominate the serial cost of the dense linear algebra. These kernels
// evaluate the same naive product formula in the same operation order, so
// for finite operands the results are BITWISE IDENTICAL to the
// std::complex versions — golden fixtures and cross-rank determinism
// checks are unaffected. (Operands that are already NaN/Inf produce NaN
// instead of the Annex-G recovered value; the solvers treat any
// non-finite intermediate as failure anyway.)

#include <cstddef>

#include "common/types.hpp"

namespace ptim::la {

// y[i] += alpha * x[i]
inline void cx_axpy(size_t n, cplx alpha, const cplx* x, cplx* y) {
  const real_t ar = alpha.real(), ai = alpha.imag();
  const real_t* xs = reinterpret_cast<const real_t*>(x);
  real_t* ys = reinterpret_cast<real_t*>(y);
  for (size_t i = 0; i < n; ++i) {
    const real_t xr = xs[2 * i], xi = xs[2 * i + 1];
    ys[2 * i] += xr * ar - xi * ai;
    ys[2 * i + 1] += xr * ai + xi * ar;
  }
}

// sum_i conj(x[i]) * y[i]
inline cplx cx_dotc(size_t n, const cplx* x, const cplx* y) {
  const real_t* xs = reinterpret_cast<const real_t*>(x);
  const real_t* ys = reinterpret_cast<const real_t*>(y);
  real_t sr = 0.0, si = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const real_t xr = xs[2 * i], xi = xs[2 * i + 1];
    const real_t yr = ys[2 * i], yi = ys[2 * i + 1];
    sr += xr * yr + xi * yi;
    si += xr * yi - xi * yr;
  }
  return {sr, si};
}

}  // namespace ptim::la
