#pragma once
// Hermitian eigensolvers.
//
// Two independent implementations are provided:
//  * eig_herm       — Householder tridiagonalization + implicit-shift QL
//                     (the production path, O(n^3) with a small constant),
//  * eig_herm_jacobi— cyclic complex Jacobi (slower, extremely robust).
// The test suite cross-validates one against the other on random input —
// a deliberate redundancy since no reference LAPACK exists on this machine.
//
// Both return eigenvalues in ascending order with V's columns the matching
// orthonormal eigenvectors: A = V diag(w) V^H.

#include <vector>

#include "la/matrix.hpp"

namespace ptim::la {

struct EigResult {
  std::vector<real_t> w;  // ascending eigenvalues
  MatC V;                 // eigenvector columns
};

EigResult eig_herm(const MatC& A);
EigResult eig_herm_jacobi(const MatC& A, real_t tol = 1e-13,
                          int max_sweeps = 60);

// Generalized symmetric-definite problem A x = lambda B x with B Hermitian
// positive definite (used by LOBPCG's Rayleigh–Ritz step): reduce via the
// Cholesky factor of B.
EigResult eig_herm_gen(const MatC& A, const MatC& B);

}  // namespace ptim::la
