#include "la/qr.hpp"

#include <algorithm>
#include <cmath>

#include "la/kernels.hpp"

namespace ptim::la {

PivotedQr qr_column_pivot(Matrix<cplx> a, size_t max_rank) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  const size_t steps = std::min(max_rank, std::min(m, n));
  PivotedQr out;
  out.pivots.reserve(steps);
  out.rdiag.reserve(steps);
  if (steps == 0) return out;

  std::vector<size_t> perm(n);
  for (size_t j = 0; j < n; ++j) perm[j] = j;
  // Residual norm^2 per column plus the value at the last exact
  // evaluation, for the classic downdate-accuracy test.
  std::vector<real_t> norms(n), ref(n);
#pragma omp parallel for schedule(static)
  for (size_t j = 0; j < n; ++j) {
    const cplx* cj = a.col(j);
    real_t s = 0.0;
    for (size_t i = 0; i < m; ++i) s += std::norm(cj[i]);
    norms[j] = ref[j] = s;
  }

  std::vector<cplx> v(m);
  for (size_t k = 0; k < steps; ++k) {
    // Serial argmax, lowest index wins ties — the determinism anchor.
    size_t p = k;
    for (size_t j = k + 1; j < n; ++j)
      if (norms[j] > norms[p]) p = j;
    if (p != k) {
      cplx* ck = a.col(k);
      cplx* cp = a.col(p);
      for (size_t i = 0; i < m; ++i) std::swap(ck[i], cp[i]);
      std::swap(norms[k], norms[p]);
      std::swap(ref[k], ref[p]);
      std::swap(perm[k], perm[p]);
    }
    out.pivots.push_back(perm[k]);

    cplx* ck = a.col(k);
    real_t xnorm2 = 0.0;
    for (size_t i = k; i < m; ++i) xnorm2 += std::norm(ck[i]);
    const real_t xnorm = std::sqrt(xnorm2);
    out.rdiag.push_back(xnorm);
    if (xnorm == 0.0) continue;  // remaining columns are all zero too

    // Householder vector v = x - alpha e1 with alpha = -sign(x0) |x| (the
    // cancellation-free choice).
    const cplx x0 = ck[k];
    const real_t ax0 = std::abs(x0);
    const cplx phase = ax0 > 0.0 ? x0 / ax0 : cplx(1.0);
    const cplx alpha = -phase * xnorm;
    for (size_t i = k; i < m; ++i) v[i] = ck[i];
    v[k] -= alpha;
    real_t vnorm2 = 0.0;
    for (size_t i = k; i < m; ++i) vnorm2 += std::norm(v[i]);
    if (vnorm2 == 0.0) continue;  // column already eliminated
    const real_t beta = 2.0 / vnorm2;

    ck[k] = alpha;
    for (size_t i = k + 1; i < m; ++i) ck[i] = cplx(0.0);
    // H = I - beta v v^H applied to the trailing columns; each column is
    // independent, so the parallel loop stays deterministic per column.
#pragma omp parallel for schedule(static)
    for (size_t j = k + 1; j < n; ++j) {
      cplx* cj = a.col(j);
      const cplx dot = cx_dotc(m - k, v.data() + k, cj + k);
      const cplx s = beta * dot;
      cx_axpy(m - k, -s, v.data() + k, cj + k);
      // Downdate: row k leaves the residual.
      const real_t nj = norms[j] - std::norm(cj[k]);
      norms[j] = nj > 0.0 ? nj : 0.0;
    }
    // Exact recomputation where the downdate has lost its accuracy.
#pragma omp parallel for schedule(static)
    for (size_t j = k + 1; j < n; ++j) {
      if (norms[j] > 1e-8 * ref[j]) continue;
      const cplx* cj = a.col(j);
      real_t s = 0.0;
      for (size_t i = k + 1; i < m; ++i) s += std::norm(cj[i]);
      norms[j] = ref[j] = s;
    }
    norms[k] = 0.0;
  }
  return out;
}

}  // namespace ptim::la
