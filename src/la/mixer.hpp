#pragma once
// Anderson (Pulay) mixing for fixed-point iterations x = T(x).
//
// Used in three places, exactly as in the paper: charge-density mixing in
// the ground-state SCF, and wavefunction + sigma mixing inside the PT-IM
// fixed-point solve (Alg. 1 line 8, "maximum Anderson dimension 20").
//
// Type-II Anderson: given the current iterate x_k and residual
// f_k = T(x_k) - x_k, solve the small least-squares problem
//   min_theta || f_k - sum_i theta_i (f_k - f_i) ||
// and return  x_{k+1} = xbar + beta * fbar  with the theta-averaged x, f.

#include <deque>
#include <vector>

#include "common/types.hpp"

namespace ptim::la {

class AndersonMixer {
 public:
  // max_history: the paper uses 20. beta: damping on the residual step.
  AndersonMixer(size_t dim, size_t max_history = 20, real_t beta = 0.7,
                real_t regularization = 1e-12);

  // Produce the next iterate from (x_k, f_k = T(x_k) - x_k). Also records
  // the pair in the history ring.
  std::vector<cplx> mix(const std::vector<cplx>& x, const std::vector<cplx>& f);

  void reset();
  size_t history_size() const { return hist_x_.size(); }

 private:
  size_t dim_;
  size_t max_history_;
  real_t beta_;
  real_t reg_;
  std::deque<std::vector<cplx>> hist_x_;
  std::deque<std::vector<cplx>> hist_f_;
};

// Convenience wrapper for real vectors (density mixing).
class AndersonMixerReal {
 public:
  AndersonMixerReal(size_t dim, size_t max_history = 10, real_t beta = 0.5)
      : inner_(dim, max_history, beta) {}
  std::vector<real_t> mix(const std::vector<real_t>& x,
                          const std::vector<real_t>& f);
  void reset() { inner_.reset(); }

 private:
  AndersonMixer inner_;
};

}  // namespace ptim::la
