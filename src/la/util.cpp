#include "la/util.hpp"

#include <cmath>

#include "la/blas.hpp"

namespace ptim::la {

void hermitize(MatC& A) {
  PTIM_CHECK(A.rows() == A.cols());
  const size_t n = A.rows();
  for (size_t j = 0; j < n; ++j) {
    A(j, j) = std::real(A(j, j));
    for (size_t i = j + 1; i < n; ++i) {
      const cplx avg = 0.5 * (A(i, j) + std::conj(A(j, i)));
      A(i, j) = avg;
      A(j, i) = std::conj(avg);
    }
  }
}

MatC commutator(const MatC& A, const MatC& B) {
  PTIM_CHECK(A.rows() == A.cols() && A.same_shape(B));
  MatC AB(A.rows(), A.cols()), BA(A.rows(), A.cols());
  gemm_nn(A, B, AB);
  gemm_nn(B, A, BA);
  for (size_t i = 0; i < AB.size(); ++i) AB.data()[i] -= BA.data()[i];
  return AB;
}

cplx trace(const MatC& A) {
  PTIM_CHECK(A.rows() == A.cols());
  cplx t = 0.0;
  for (size_t i = 0; i < A.rows(); ++i) t += A(i, i);
  return t;
}

real_t hermiticity_defect(const MatC& A) {
  PTIM_CHECK(A.rows() == A.cols());
  real_t defect = 0.0;
  for (size_t j = 0; j < A.cols(); ++j)
    for (size_t i = 0; i < A.rows(); ++i)
      defect = std::max(defect, std::abs(A(i, j) - std::conj(A(j, i))));
  return defect;
}

MatC lincomb(cplx alpha, const MatC& A, cplx beta, const MatC& B) {
  PTIM_CHECK(A.same_shape(B));
  MatC C(A.rows(), A.cols());
  for (size_t i = 0; i < A.size(); ++i)
    C.data()[i] = alpha * A.data()[i] + beta * B.data()[i];
  return C;
}

real_t max_abs(const MatC& A) {
  real_t m = 0.0;
  for (size_t i = 0; i < A.size(); ++i)
    m = std::max(m, std::abs(A.data()[i]));
  return m;
}

}  // namespace ptim::la
