#include "la/blas.hpp"

#include "la/kernels.hpp"

#include <algorithm>
#include <cmath>

namespace ptim::la {

namespace {

// Apply op to an element given the op code.
inline cplx op_elem(char trans, const MatC& A, size_t i, size_t j) {
  switch (trans) {
    case 'N': return A(i, j);
    case 'T': return A(j, i);
    default: return std::conj(A(j, i));  // 'C'
  }
}

inline size_t op_rows(char trans, const MatC& A) {
  return trans == 'N' ? A.rows() : A.cols();
}
inline size_t op_cols(char trans, const MatC& A) {
  return trans == 'N' ? A.cols() : A.rows();
}

}  // namespace

void gemm_nn(const MatC& A, const MatC& B, MatC& C, cplx alpha, cplx beta) {
  const size_t m = A.rows(), k = A.cols(), n = B.cols();
  PTIM_CHECK(B.rows() == k && C.rows() == m && C.cols() == n);
  // Output columns are tiled so each A column read feeds several axpy
  // panels; per output column the updates still arrive in ascending l, so
  // results are bitwise-identical to the untiled loop.
  constexpr size_t jtile = 4;
#pragma omp parallel for schedule(static)
  for (size_t j0 = 0; j0 < n; j0 += jtile) {
    const size_t j1 = std::min(n, j0 + jtile);
    for (size_t j = j0; j < j1; ++j) {
      cplx* cj = C.col(j);
      if (beta == cplx(0.0))
        for (size_t i = 0; i < m; ++i) cj[i] = 0.0;
      else if (beta != cplx(1.0))
        for (size_t i = 0; i < m; ++i) cj[i] *= beta;
    }
    for (size_t l = 0; l < k; ++l) {
      const cplx* al = A.col(l);
      for (size_t j = j0; j < j1; ++j) {
        const cplx ab = alpha * B.col(j)[l];
        if (ab == cplx(0.0)) continue;
        cx_axpy(m, ab, al, C.col(j));
      }
    }
  }
}

void gemm_cn(const MatC& A, const MatC& B, MatC& C, cplx alpha, cplx beta) {
  const size_t k = A.rows(), m = A.cols(), n = B.cols();
  PTIM_CHECK(B.rows() == k && C.rows() == m && C.cols() == n);
#pragma omp parallel for schedule(static)
  for (size_t j = 0; j < n; ++j) {
    const cplx* bj = B.col(j);
    cplx* cj = C.col(j);
    for (size_t i = 0; i < m; ++i) {
      const cplx acc = cx_dotc(k, A.col(i), bj);
      cj[i] = alpha * acc + (beta == cplx(0.0) ? cplx(0.0) : beta * cj[i]);
    }
  }
}

void gemm_nc(const MatC& A, const MatC& B, MatC& C, cplx alpha, cplx beta) {
  const size_t m = A.rows(), k = A.cols(), n = B.rows();
  PTIM_CHECK(B.cols() == k && C.rows() == m && C.cols() == n);
  constexpr size_t jtile = 4;
#pragma omp parallel for schedule(static)
  for (size_t j0 = 0; j0 < n; j0 += jtile) {
    const size_t j1 = std::min(n, j0 + jtile);
    for (size_t j = j0; j < j1; ++j) {
      cplx* cj = C.col(j);
      if (beta == cplx(0.0))
        for (size_t i = 0; i < m; ++i) cj[i] = 0.0;
      else if (beta != cplx(1.0))
        for (size_t i = 0; i < m; ++i) cj[i] *= beta;
    }
    for (size_t l = 0; l < k; ++l) {
      const cplx* al = A.col(l);
      for (size_t j = j0; j < j1; ++j) {
        const cplx ab = alpha * std::conj(B(j, l));
        if (ab == cplx(0.0)) continue;
        cx_axpy(m, ab, al, C.col(j));
      }
    }
  }
}

void gemm(char transA, char transB, cplx alpha, const MatC& A, const MatC& B,
          cplx beta, MatC& C) {
  if (transA == 'N' && transB == 'N') return gemm_nn(A, B, C, alpha, beta);
  if (transA == 'C' && transB == 'N') return gemm_cn(A, B, C, alpha, beta);
  if (transA == 'N' && transB == 'C') return gemm_nc(A, B, C, alpha, beta);

  const size_t m = op_rows(transA, A), k = op_cols(transA, A),
               n = op_cols(transB, B);
  PTIM_CHECK(op_rows(transB, B) == k && C.rows() == m && C.cols() == n);
#pragma omp parallel for schedule(static)
  for (size_t j = 0; j < n; ++j)
    for (size_t i = 0; i < m; ++i) {
      cplx acc = 0.0;
      for (size_t l = 0; l < k; ++l)
        acc += op_elem(transA, A, i, l) * op_elem(transB, B, l, j);
      C(i, j) = alpha * acc + (beta == cplx(0.0) ? cplx(0.0) : beta * C(i, j));
    }
}

void axpy(size_t n, cplx alpha, const cplx* x, cplx* y) {
  cx_axpy(n, alpha, x, y);
}

cplx dotc(size_t n, const cplx* x, const cplx* y) {
  return cx_dotc(n, x, y);
}

real_t nrm2(size_t n, const cplx* x) {
  real_t acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += std::norm(x[i]);
  return std::sqrt(acc);
}

void scal(size_t n, cplx alpha, cplx* x) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

real_t frob_diff(const MatC& A, const MatC& B) {
  PTIM_CHECK(A.same_shape(B));
  real_t acc = 0.0;
  for (size_t idx = 0; idx < A.size(); ++idx)
    acc += std::norm(A.data()[idx] - B.data()[idx]);
  return std::sqrt(acc);
}

real_t frob_norm(const MatC& A) {
  real_t acc = 0.0;
  for (size_t idx = 0; idx < A.size(); ++idx) acc += std::norm(A.data()[idx]);
  return std::sqrt(acc);
}

}  // namespace ptim::la
