#pragma once
// Column-pivoted Householder QR (Businger-Golub). The primitive behind the
// ISDF interpolation-point selection (ham/isdf): the pivot order of the
// weighted band-product matrix IS the point ranking, so only the pivot
// sequence and the R diagonal are returned, not the factors.
//
// Deterministic by construction: the pivot argmax is a serial scan with
// lowest-index tie-breaking, and the reflector update parallelizes over
// independent columns only — identical inputs give a bitwise-identical
// pivot sequence on every run and every rank.

#include <vector>

#include "la/matrix.hpp"

namespace ptim::la {

struct PivotedQr {
  // Selected columns of the ORIGINAL matrix, in elimination order.
  std::vector<size_t> pivots;
  // |R(k,k)| of each elimination step: the residual norm of the chosen
  // column, non-increasing in exact arithmetic (each step can only shrink
  // the remaining columns).
  std::vector<real_t> rdiag;
};

// Run max_rank elimination steps (clamped to min(rows, cols)) of
// column-pivoted Householder QR on a working copy of a. Column norms are
// downdated classically and recomputed exactly when cancellation has eaten
// the running value.
PivotedQr qr_column_pivot(Matrix<cplx> a, size_t max_rank);

}  // namespace ptim::la
