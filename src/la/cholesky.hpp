#pragma once
// Cholesky factorization and the triangular solves the solver needs:
//  * orthonormalization of wavefunction blocks (Cholesky-QR),
//  * the ACE projector xi = W * (L^H)^{-1} (Lin 2016, Eq. 14),
//  * applying (Phi^H Phi)^{-1} inside the parallel-transport projector.

#include "la/matrix.hpp"

namespace ptim::la {

// Factor Hermitian positive definite A = L * L^H; returns lower-triangular L.
// Throws ptim::Error if A is not (numerically) positive definite.
MatC cholesky(const MatC& A);

// Solve L * X = B in place (L lower triangular), column by column.
void solve_lower(const MatC& L, MatC& B);
// Solve L^H * X = B in place.
void solve_lower_herm(const MatC& L, MatC& B);
// Solve (L*L^H) * X = B in place — full Cholesky solve.
void cholesky_solve(const MatC& L, MatC& B);
// Solve X * L^H = B in place (right-solve with the upper factor): the ACE
// basis transform xi = W * L^{-H}.
void solve_upper_right(const MatC& L, MatC& B);

// Inverse of a Hermitian positive definite matrix via Cholesky.
MatC hpd_inverse(const MatC& A);

}  // namespace ptim::la
