// Householder reduction of a complex Hermitian matrix to real symmetric
// tridiagonal form, followed by the implicit-shift QL algorithm with
// eigenvector accumulation (classic EISPACK htridi/tql2 lineage, re-derived
// for complex arithmetic on the accumulated transformation matrix).

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/blas.hpp"
#include "la/eig.hpp"

namespace ptim::la {

namespace {

// Reduce Hermitian A (destroyed) to tridiagonal: real diagonal d, complex
// subdiagonal e (e[i] = T(i+1,i)), accumulating the unitary Q with A = Q T Q^H.
void householder_tridiag(MatC& A, std::vector<real_t>& d, std::vector<cplx>& e,
                         MatC& Q) {
  const size_t n = A.rows();
  Q = MatC::identity(n);
  d.assign(n, 0.0);
  e.assign(n > 0 ? n - 1 : 0, cplx(0.0));

  std::vector<cplx> v(n), p(n), q(n), qv(n);

  for (size_t k = 0; k + 2 < n; ++k) {
    const size_t m = n - k - 1;  // length of the column below the diagonal
    // x = A(k+1:n, k)
    real_t xnorm2 = 0.0;
    for (size_t i = 0; i < m; ++i) xnorm2 += std::norm(A(k + 1 + i, k));
    const real_t xnorm = std::sqrt(xnorm2);
    if (xnorm == 0.0) {
      e[k] = 0.0;
      continue;
    }
    const cplx x0 = A(k + 1, k);
    const cplx phase = (x0 == cplx(0.0)) ? cplx(1.0) : x0 / std::abs(x0);
    const cplx alpha = -phase * xnorm;

    // v = x - alpha*e0; beta = 2 / |v|^2
    real_t vnorm2 = 0.0;
    for (size_t i = 0; i < m; ++i) {
      v[i] = A(k + 1 + i, k);
      if (i == 0) v[i] -= alpha;
      vnorm2 += std::norm(v[i]);
    }
    if (vnorm2 <= 0.0) {
      e[k] = alpha;
      continue;
    }
    const real_t beta = 2.0 / vnorm2;

    // Hermitian rank-2 update of the trailing block A22 <- H A22 H with
    // H = I - beta v v^H:  p = beta*A22*v, K = beta/2 * v^H p, q = p - K v,
    // A22 -= v q^H + q v^H.
    for (size_t i = 0; i < m; ++i) {
      cplx acc = 0.0;
      for (size_t l = 0; l < m; ++l) acc += A(k + 1 + i, k + 1 + l) * v[l];
      p[i] = beta * acc;
    }
    cplx vhp = 0.0;
    for (size_t i = 0; i < m; ++i) vhp += std::conj(v[i]) * p[i];
    const cplx K = 0.5 * beta * vhp;
    for (size_t i = 0; i < m; ++i) q[i] = p[i] - K * v[i];
    for (size_t jj = 0; jj < m; ++jj)
      for (size_t ii = 0; ii < m; ++ii)
        A(k + 1 + ii, k + 1 + jj) -=
            v[ii] * std::conj(q[jj]) + q[ii] * std::conj(v[jj]);

    // Column k of A becomes (0,...,alpha,0,...)^T.
    A(k + 1, k) = alpha;
    A(k, k + 1) = std::conj(alpha);
    for (size_t i = 1; i < m; ++i) {
      A(k + 1 + i, k) = 0.0;
      A(k, k + 1 + i) = 0.0;
    }

    // Q <- Q * H  (right-multiplication accumulates H_0 H_1 ...):
    // Q(:, k+1:n) -= beta * (Q(:, k+1:n) v) v^H.
    for (size_t r = 0; r < n; ++r) {
      cplx acc = 0.0;
      for (size_t l = 0; l < m; ++l) acc += Q(r, k + 1 + l) * v[l];
      qv[r] = beta * acc;
    }
    for (size_t l = 0; l < m; ++l) {
      const cplx vc = std::conj(v[l]);
      for (size_t r = 0; r < n; ++r) Q(r, k + 1 + l) -= qv[r] * vc;
    }
  }

  for (size_t i = 0; i < n; ++i) d[i] = std::real(A(i, i));
  for (size_t i = 0; i + 1 < n; ++i) e[i] = A(i + 1, i);
}

// Implicit-shift QL on a real symmetric tridiagonal (d, e); rotations are
// accumulated into the complex columns of Z. (Numerical Recipes tql2 port.)
void tql2(std::vector<real_t>& d, std::vector<real_t>& e, MatC& Z) {
  const size_t n = d.size();
  if (n == 0) return;
  e.push_back(0.0);  // sentinel e[n-1]

  for (size_t l = 0; l < n; ++l) {
    int iter = 0;
    size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const real_t dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-300 ||
            std::abs(e[m]) <= std::numeric_limits<real_t>::epsilon() * dd)
          break;
      }
      if (m != l) {
        PTIM_CHECK_MSG(iter++ < 64, "tql2: too many QL iterations");
        real_t g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        real_t r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        real_t s = 1.0, c = 1.0, p = 0.0;
        for (size_t i = m; i-- > l;) {
          real_t f = s * e[i];
          const real_t b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          // Apply the rotation to eigenvector columns i and i+1.
          for (size_t k = 0; k < Z.rows(); ++k) {
            const cplx f2 = Z(k, i + 1);
            Z(k, i + 1) = s * Z(k, i) + c * f2;
            Z(k, i) = c * Z(k, i) - s * f2;
          }
        }
        if (r == 0.0 && m - l > 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  e.pop_back();
}

}  // namespace

EigResult eig_herm(const MatC& A) {
  PTIM_CHECK_MSG(A.rows() == A.cols(), "eig_herm: matrix must be square");
  const size_t n = A.rows();
  EigResult res;
  if (n == 0) return res;

  MatC T = A;
  std::vector<real_t> d;
  std::vector<cplx> ec;
  MatC Q;
  householder_tridiag(T, d, ec, Q);

  // Phase-scale the columns of Q so the tridiagonal becomes real:
  // u_0 = 1, u_{i+1} = u_i * e_i/|e_i|; then |e_i| is the real subdiagonal.
  std::vector<real_t> e(n > 0 ? n - 1 : 0, 0.0);
  cplx u = 1.0;
  for (size_t i = 0; i + 1 < n; ++i) {
    const real_t ae = std::abs(ec[i]);
    e[i] = ae;
    const cplx unext = (ae == 0.0) ? u : u * (ec[i] / ae);
    // scale column i+1 of Q by u_{i+1}
    for (size_t k = 0; k < n; ++k) Q(k, i + 1) *= unext;
    u = unext;
  }

  tql2(d, e, Q);

  // Sort ascending.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return d[a] < d[b]; });
  res.w.resize(n);
  res.V.resize(n, n);
  for (size_t j = 0; j < n; ++j) {
    res.w[j] = d[idx[j]];
    for (size_t i = 0; i < n; ++i) res.V(i, j) = Q(i, idx[j]);
  }
  return res;
}

}  // namespace ptim::la
