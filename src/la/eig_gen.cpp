// Generalized Hermitian-definite eigenproblem A x = lambda B x, reduced to
// a standard problem with the Cholesky factor of B (LAPACK zhegv's scheme).

#include "la/cholesky.hpp"
#include "la/eig.hpp"

namespace ptim::la {

EigResult eig_herm_gen(const MatC& A, const MatC& B) {
  PTIM_CHECK(A.rows() == A.cols() && A.same_shape(B));
  const MatC L = cholesky(B);
  // C = L^{-1} A L^{-H}
  MatC C = A;
  solve_lower(L, C);
  solve_upper_right(L, C);
  EigResult res = eig_herm(C);
  // Back-transform eigenvectors: x = L^{-H} y (columns are B-orthonormal).
  solve_lower_herm(L, res.V);
  return res;
}

}  // namespace ptim::la
