#include "la/lsq.hpp"

#include <cmath>

#include "la/blas.hpp"

namespace ptim::la {

std::vector<cplx> lsq_solve(const MatC& A, const std::vector<cplx>& b,
                            real_t lambda) {
  const size_t m = A.rows(), k = A.cols();
  PTIM_CHECK_MSG(b.size() == m, "lsq_solve: rhs length mismatch");

  // Augment with sqrt(lambda)*I rows for Tikhonov regularization.
  const size_t mr = lambda > 0.0 ? m + k : m;
  MatC Q(mr, k);
  for (size_t j = 0; j < k; ++j) {
    for (size_t i = 0; i < m; ++i) Q(i, j) = A(i, j);
    if (lambda > 0.0) Q(m + j, j) = lambda;
  }
  std::vector<cplx> rhs(mr, cplx(0.0));
  for (size_t i = 0; i < m; ++i) rhs[i] = b[i];

  // Modified Gram–Schmidt: Q becomes orthonormal, R upper triangular.
  MatC R(k, k);
  for (size_t j = 0; j < k; ++j) {
    for (size_t i = 0; i < j; ++i) {
      const cplx r = dotc(mr, Q.col(i), Q.col(j));
      R(i, j) = r;
      axpy(mr, -r, Q.col(i), Q.col(j));
    }
    const real_t nrm = nrm2(mr, Q.col(j));
    PTIM_CHECK_MSG(nrm > 1e-300, "lsq_solve: rank-deficient column " << j);
    R(j, j) = nrm;
    scal(mr, 1.0 / nrm, Q.col(j));
  }

  // x = R^{-1} Q^H rhs.
  std::vector<cplx> x(k);
  for (size_t j = 0; j < k; ++j) x[j] = dotc(mr, Q.col(j), rhs.data());
  for (size_t i = k; i-- > 0;) {
    cplx s = x[i];
    for (size_t j = i + 1; j < k; ++j) s -= R(i, j) * x[j];
    x[i] = s / R(i, i);
  }
  return x;
}

}  // namespace ptim::la
