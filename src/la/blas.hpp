#pragma once
// BLAS-like dense kernels (complex double) written from scratch: the target
// machine ships no BLAS/LAPACK. The three gemm variants used by the solver
// are implemented directly with cache-aware loop orders and OpenMP over
// output columns; a generic dispatcher covers the remaining cases.

#include "la/matrix.hpp"

namespace ptim::la {

// C = alpha * op(A) * op(B) + beta * C, op in {'N','T','C'}.
void gemm(char transA, char transB, cplx alpha, const MatC& A, const MatC& B,
          cplx beta, MatC& C);

// Convenience wrappers for the hot shapes.
// C = A * B (both 'N').
void gemm_nn(const MatC& A, const MatC& B, MatC& C, cplx alpha = 1.0,
             cplx beta = 0.0);
// C = A^H * B — overlap matrices S = Phi^H * Psi; k-major dot products.
void gemm_cn(const MatC& A, const MatC& B, MatC& C, cplx alpha = 1.0,
             cplx beta = 0.0);
// C = A * B^H.
void gemm_nc(const MatC& A, const MatC& B, MatC& C, cplx alpha = 1.0,
             cplx beta = 0.0);

// y = alpha*x + y on raw ranges.
void axpy(size_t n, cplx alpha, const cplx* x, cplx* y);
// Conjugated dot product <x|y> = sum conj(x_i) y_i.
cplx dotc(size_t n, const cplx* x, const cplx* y);
// Euclidean norm.
real_t nrm2(size_t n, const cplx* x);
void scal(size_t n, cplx alpha, cplx* x);

// Frobenius norm of A - B (shape-checked); used widely in tests.
real_t frob_diff(const MatC& A, const MatC& B);
real_t frob_norm(const MatC& A);

}  // namespace ptim::la
