#pragma once
// Sphere <-> grid transforms with fixed normalization conventions.
//
//   psi(r) = (1/sqrt(Omega)) * sum_G c_G e^{i G.r}
//   <psi|psi'> = sum_G conj(c_G) c'_G          (orthonormal PW basis)
//   integral f(r) dr = dvol * sum_j f(r_j)
//
// to_real produces psi(r_j) on the grid (including the 1/sqrt(Omega));
// to_sphere is its exact inverse for band-limited functions.

#include <vector>

#include "grid/fft_grid.hpp"
#include "grid/gsphere.hpp"
#include "la/matrix.hpp"

namespace ptim::pw {

// A (sphere, grid) pairing with its scatter map cached.
class SphereGridMap {
 public:
  SphereGridMap(const grid::GSphere& sphere, const grid::FftGrid& grid);

  const grid::GSphere& sphere() const { return *sphere_; }
  const grid::FftGrid& grid() const { return *grid_; }
  const std::vector<size_t>& map() const { return map_; }

  // c (npw) -> psi(r_j) (grid.size()); `work` must have grid.size() capacity.
  void to_real(const cplx* coeffs, cplx* real_space) const;
  // psi(r_j) -> c (npw). Discards components outside the sphere.
  void to_sphere(const cplx* real_space, cplx* coeffs) const;

  // Batched versions over the columns of a matrix.
  void to_real_batch(const la::MatC& coeffs, la::MatC& real_space) const;
  void to_sphere_batch(const la::MatC& real_space, la::MatC& coeffs) const;
  // In-place gather for hot paths: uses real_space as the FFT workspace
  // (its contents are destroyed) instead of copying the whole block.
  void to_sphere_batch_inplace(la::MatC& real_space, la::MatC& coeffs) const;

  // --- FP32 pipeline (Precision::kSingle*) -----------------------------
  // Down-convert-at-the-edge transforms: FP64 sphere coefficients are
  // rounded to FP32 during the scatter, the FFT runs on the float twin of
  // the grid, and the gather promotes back to FP64. These carry the
  // exact-exchange pair work and ring payloads; everything the propagator
  // accumulates stays FP64.
  void to_real(const cplx* coeffs, cplxf* real_space) const;
  void to_sphere(const cplxf* real_space, cplx* coeffs) const;
  void to_real_batch(const la::MatC& coeffs, la::MatCf& real_space) const;
  void to_sphere_batch(const la::MatCf& real_space, la::MatC& coeffs) const;

  // --- slab-distributed transforms (2-D band x grid layout) -------------
  // The normalization factors, exposed so dist/slab_exchange can reproduce
  // the exact to_real / to_sphere arithmetic when the sphere coefficients
  // are scattered into a y-pencil portion of the grid and the FFT runs as
  // a distributed slab transform (fft::DistFft3) instead of rank-locally.
  // Conventions (see to_real/to_sphere above): the FP64 single-column
  // to_real applies scale_to_real AFTER the inverse FFT; the batch and
  // FP32 paths fold it into the scatter. The slab code mirrors each path.
  real_t scale_to_real() const { return scale_to_real_; }
  real_t scale_to_sphere() const { return scale_to_sphere_; }

 private:
  const grid::GSphere* sphere_;
  const grid::FftGrid* grid_;
  std::vector<size_t> map_;
  real_t scale_to_real_;    // Ng / sqrt(Omega) applied after inverse FFT
  real_t scale_to_sphere_;  // sqrt(Omega) / Ng applied after forward FFT
};

}  // namespace ptim::pw
