#include "pw/wavefunction.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/eig.hpp"

namespace ptim::pw {

la::MatC overlap(const la::MatC& phi, const la::MatC& psi) {
  la::MatC s(phi.cols(), psi.cols());
  la::gemm_cn(phi, psi, s);
  return s;
}

void orthonormalize_cholesky(la::MatC& phi) {
  const la::MatC s = overlap(phi, phi);
  const la::MatC l = la::cholesky(s);
  // Phi <- Phi * L^{-H}: solve X * L^H = Phi in place.
  la::solve_upper_right(l, phi);
}

void orthonormalize_lowdin(la::MatC& phi) {
  const la::MatC s = overlap(phi, phi);
  const auto eig = la::eig_herm(s);
  const size_t n = s.rows();
  // S^{-1/2} = V diag(w^{-1/2}) V^H
  la::MatC vs(n, n);
  for (size_t j = 0; j < n; ++j) {
    PTIM_CHECK_MSG(eig.w[j] > 1e-14, "lowdin: singular overlap");
    const real_t inv_sqrt = 1.0 / std::sqrt(eig.w[j]);
    for (size_t i = 0; i < n; ++i) vs(i, j) = eig.V(i, j) * inv_sqrt;
  }
  la::MatC shalf(n, n);
  la::gemm_nc(vs, eig.V, shalf);
  la::MatC out(phi.rows(), phi.cols());
  la::gemm_nn(phi, shalf, out);
  phi = std::move(out);
}

real_t orthonormality_defect(const la::MatC& phi) {
  const la::MatC s = overlap(phi, phi);
  real_t defect = 0.0;
  for (size_t j = 0; j < s.cols(); ++j)
    for (size_t i = 0; i < s.rows(); ++i) {
      const cplx target = (i == j) ? cplx(1.0) : cplx(0.0);
      defect = std::max(defect, std::abs(s(i, j) - target));
    }
  return defect;
}

}  // namespace ptim::pw
