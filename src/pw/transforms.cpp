#include "pw/transforms.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptim::pw {

SphereGridMap::SphereGridMap(const grid::GSphere& sphere,
                             const grid::FftGrid& grid)
    : sphere_(&sphere), grid_(&grid), map_(sphere.map_to(grid)) {
  const real_t omega = grid.lattice().volume();
  const auto ng = static_cast<real_t>(grid.size());
  scale_to_real_ = ng / std::sqrt(omega);
  scale_to_sphere_ = std::sqrt(omega) / ng;
}

void SphereGridMap::to_real(const cplx* coeffs, cplx* real_space) const {
  const size_t ng = grid_->size();
  std::fill(real_space, real_space + ng, cplx(0.0));
  for (size_t i = 0; i < map_.size(); ++i) real_space[map_[i]] = coeffs[i];
  grid_->fft().inverse(real_space);  // scaled by 1/Ng internally
  for (size_t j = 0; j < ng; ++j) real_space[j] *= scale_to_real_;
}

void SphereGridMap::to_sphere(const cplx* real_space, cplx* coeffs) const {
  const size_t ng = grid_->size();
  std::vector<cplx> work(real_space, real_space + ng);
  grid_->fft().forward(work.data());
  for (size_t i = 0; i < map_.size(); ++i)
    coeffs[i] = work[map_[i]] * scale_to_sphere_;
}

void SphereGridMap::to_real_batch(const la::MatC& coeffs,
                                  la::MatC& real_space) const {
  PTIM_CHECK(coeffs.rows() == map_.size());
  const size_t nb = coeffs.cols();
  const size_t npw = map_.size();
  real_space.resize(grid_->size(), nb);  // zero-fills
  // Scatter with the output scale folded in (the FFT is linear), then one
  // batched inverse transform for the whole block.
#pragma omp parallel for schedule(static)
  for (size_t b = 0; b < nb; ++b) {
    const cplx* cb = coeffs.col(b);
    cplx* rb = real_space.col(b);
    for (size_t i = 0; i < npw; ++i) rb[map_[i]] = cb[i] * scale_to_real_;
  }
  grid_->fft().inverse_batch(real_space.data(), nb);
}

void SphereGridMap::to_sphere_batch(const la::MatC& real_space,
                                    la::MatC& coeffs) const {
  la::MatC work = real_space;
  to_sphere_batch_inplace(work, coeffs);
}

void SphereGridMap::to_sphere_batch_inplace(la::MatC& real_space,
                                            la::MatC& coeffs) const {
  PTIM_CHECK(real_space.rows() == grid_->size());
  const size_t nb = real_space.cols();
  const size_t npw = map_.size();
  grid_->fft().forward_batch(real_space.data(), nb);
  coeffs.resize(npw, nb);
#pragma omp parallel for schedule(static)
  for (size_t b = 0; b < nb; ++b) {
    const cplx* wb = real_space.col(b);
    cplx* cb = coeffs.col(b);
    for (size_t i = 0; i < npw; ++i) cb[i] = wb[map_[i]] * scale_to_sphere_;
  }
}

}  // namespace ptim::pw
