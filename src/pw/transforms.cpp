#include "pw/transforms.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptim::pw {

SphereGridMap::SphereGridMap(const grid::GSphere& sphere,
                             const grid::FftGrid& grid)
    : sphere_(&sphere), grid_(&grid), map_(sphere.map_to(grid)) {
  const real_t omega = grid.lattice().volume();
  const auto ng = static_cast<real_t>(grid.size());
  scale_to_real_ = ng / std::sqrt(omega);
  scale_to_sphere_ = std::sqrt(omega) / ng;
}

void SphereGridMap::to_real(const cplx* coeffs, cplx* real_space) const {
  const size_t ng = grid_->size();
  std::fill(real_space, real_space + ng, cplx(0.0));
  for (size_t i = 0; i < map_.size(); ++i) real_space[map_[i]] = coeffs[i];
  grid_->fft().inverse(real_space);  // scaled by 1/Ng internally
  for (size_t j = 0; j < ng; ++j) real_space[j] *= scale_to_real_;
}

void SphereGridMap::to_sphere(const cplx* real_space, cplx* coeffs) const {
  const size_t ng = grid_->size();
  std::vector<cplx> work(real_space, real_space + ng);
  grid_->fft().forward(work.data());
  for (size_t i = 0; i < map_.size(); ++i)
    coeffs[i] = work[map_[i]] * scale_to_sphere_;
}

void SphereGridMap::to_real_batch(const la::MatC& coeffs,
                                  la::MatC& real_space) const {
  PTIM_CHECK(coeffs.rows() == map_.size());
  const size_t nb = coeffs.cols();
  const size_t npw = map_.size();
  real_space.resize(grid_->size(), nb);  // zero-fills
  // Scatter with the output scale folded in (the FFT is linear), then one
  // batched inverse transform for the whole block.
#pragma omp parallel for schedule(static)
  for (size_t b = 0; b < nb; ++b) {
    const cplx* cb = coeffs.col(b);
    cplx* rb = real_space.col(b);
    for (size_t i = 0; i < npw; ++i) rb[map_[i]] = cb[i] * scale_to_real_;
  }
  grid_->fft().inverse_batch(real_space.data(), nb);
}

void SphereGridMap::to_sphere_batch(const la::MatC& real_space,
                                    la::MatC& coeffs) const {
  la::MatC work = real_space;
  to_sphere_batch_inplace(work, coeffs);
}

void SphereGridMap::to_sphere_batch_inplace(la::MatC& real_space,
                                            la::MatC& coeffs) const {
  PTIM_CHECK(real_space.rows() == grid_->size());
  const size_t nb = real_space.cols();
  const size_t npw = map_.size();
  grid_->fft().forward_batch(real_space.data(), nb);
  coeffs.resize(npw, nb);
#pragma omp parallel for schedule(static)
  for (size_t b = 0; b < nb; ++b) {
    const cplx* wb = real_space.col(b);
    cplx* cb = coeffs.col(b);
    for (size_t i = 0; i < npw; ++i) cb[i] = wb[map_[i]] * scale_to_sphere_;
  }
}

// ----------------------------------------------------- FP32 pipeline ----

void SphereGridMap::to_real(const cplx* coeffs, cplxf* real_space) const {
  const size_t ng = grid_->size();
  std::fill(real_space, real_space + ng, cplxf(0.0f));
  // Output scale folded into the scatter in FP64 (the FFT is linear), so
  // each coefficient is rounded to FP32 exactly once.
  for (size_t i = 0; i < map_.size(); ++i)
    real_space[map_[i]] = static_cast<cplxf>(coeffs[i] * scale_to_real_);
  grid_->fft_f32().inverse(real_space);  // scaled by 1/Ng internally
}

void SphereGridMap::to_sphere(const cplxf* real_space, cplx* coeffs) const {
  const size_t ng = grid_->size();
  std::vector<cplxf> work(real_space, real_space + ng);
  grid_->fft_f32().forward(work.data());
  for (size_t i = 0; i < map_.size(); ++i)
    coeffs[i] = static_cast<cplx>(work[map_[i]]) * scale_to_sphere_;
}

void SphereGridMap::to_real_batch(const la::MatC& coeffs,
                                  la::MatCf& real_space) const {
  PTIM_CHECK(coeffs.rows() == map_.size());
  const size_t nb = coeffs.cols();
  const size_t npw = map_.size();
  real_space.resize(grid_->size(), nb);  // zero-fills
#pragma omp parallel for schedule(static)
  for (size_t b = 0; b < nb; ++b) {
    const cplx* cb = coeffs.col(b);
    cplxf* rb = real_space.col(b);
    for (size_t i = 0; i < npw; ++i)
      rb[map_[i]] = static_cast<cplxf>(cb[i] * scale_to_real_);
  }
  grid_->fft_f32().inverse_batch(real_space.data(), nb);
}

void SphereGridMap::to_sphere_batch(const la::MatCf& real_space,
                                    la::MatC& coeffs) const {
  PTIM_CHECK(real_space.rows() == grid_->size());
  const size_t nb = real_space.cols();
  const size_t npw = map_.size();
  la::MatCf work = real_space;
  grid_->fft_f32().forward_batch(work.data(), nb);
  coeffs.resize(npw, nb);
#pragma omp parallel for schedule(static)
  for (size_t b = 0; b < nb; ++b) {
    const cplxf* wb = work.col(b);
    cplx* cb = coeffs.col(b);
    for (size_t i = 0; i < npw; ++i)
      cb[i] = static_cast<cplx>(wb[map_[i]]) * scale_to_sphere_;
  }
}

}  // namespace ptim::pw
