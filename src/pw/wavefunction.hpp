#pragma once
// Wavefunction blocks and their algebra. A block is an npw x nband complex
// matrix whose columns are orbitals in the plane-wave sphere basis (so all
// inner products are plain conjugated dot products).

#include "la/matrix.hpp"

namespace ptim::pw {

// Overlap S = Phi^H * Psi.
la::MatC overlap(const la::MatC& phi, const la::MatC& psi);

// In-place Cholesky-QR orthonormalization: Phi <- Phi * L^{-H} with
// Phi^H Phi = L L^H. Fast path used after each PT-IM step (Alg. 1 line 13).
void orthonormalize_cholesky(la::MatC& phi);

// In-place Loewdin orthonormalization: Phi <- Phi * S^{-1/2}. Symmetric —
// perturbs the orbitals minimally, used when columns may be ill-conditioned.
void orthonormalize_lowdin(la::MatC& phi);

// Max |S - I| entry; orthonormality defect used by invariant tests.
real_t orthonormality_defect(const la::MatC& phi);

}  // namespace ptim::pw
