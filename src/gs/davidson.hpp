#pragma once
// Blocked Davidson eigensolver for the lowest nband states of the
// (Hermitian) Kohn–Sham Hamiltonian, with a Teter kinetic preconditioner.
// This plays the role of PWDFT's iterative eigensolver in the ground-state
// preparation of the rt-TDDFT initial state.

#include <functional>
#include <vector>

#include "la/matrix.hpp"

namespace ptim::gs {

struct DavidsonOptions {
  int max_iter = 60;
  real_t tol = 1e-8;          // max residual 2-norm per band
  size_t max_subspace = 0;     // 0 = 6 * nband
  bool verbose = false;
};

struct DavidsonResult {
  la::MatC x;                  // npw x nband eigenvector approximations
  std::vector<real_t> eps;     // Ritz values
  std::vector<real_t> resnorm; // final residual norms
  int iterations = 0;
  bool converged = false;
};

// apply_h: hphi = H * phi (batched over columns).
// precond_diag: approximate diagonal of H (kinetic factors) for the Teter
// preconditioner.
DavidsonResult davidson(
    const std::function<void(const la::MatC&, la::MatC&)>& apply_h,
    const la::MatC& x0, const std::vector<real_t>& precond_diag,
    DavidsonOptions opt = {});

}  // namespace ptim::gs
