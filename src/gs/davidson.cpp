#include "gs/davidson.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "la/blas.hpp"
#include "la/eig.hpp"
#include "la/util.hpp"
#include "pw/wavefunction.hpp"

namespace ptim::gs {

namespace {

// Teter–Payne–Allan style preconditioner built from the kinetic diagonal.
real_t teter(real_t kin, real_t eref) {
  const real_t x = kin / std::max(eref, 1e-8);
  const real_t num = 27.0 + 18.0 * x + 12.0 * x * x + 8.0 * x * x * x;
  return num / (num + 16.0 * x * x * x * x);
}

// Orthonormalize the columns of t against v (twice, for stability) and
// among themselves; drops columns that lose norm. Returns kept count.
size_t ortho_against(const la::MatC& v, la::MatC& t) {
  const size_t npw = t.rows();
  size_t kept = 0;
  la::MatC out(npw, t.cols());
  for (size_t j = 0; j < t.cols(); ++j) {
    cplx* col = t.col(j);
    // Normalize first so the keep/drop decision below is relative.
    const real_t nrm0 = la::nrm2(npw, col);
    if (nrm0 < 1e-300) continue;
    la::scal(npw, 1.0 / nrm0, col);
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < v.cols(); ++i) {
        const cplx p = la::dotc(npw, v.col(i), col);
        la::axpy(npw, -p, v.col(i), col);
      }
      for (size_t i = 0; i < kept; ++i) {
        const cplx p = la::dotc(npw, out.col(i), col);
        la::axpy(npw, -p, out.col(i), col);
      }
    }
    const real_t nrm = la::nrm2(npw, col);
    if (nrm > 1e-8) {
      for (size_t r = 0; r < npw; ++r) out(r, kept) = col[r] / nrm;
      ++kept;
    }
  }
  la::MatC keptm(npw, kept);
  for (size_t j = 0; j < kept; ++j)
    for (size_t r = 0; r < npw; ++r) keptm(r, j) = out(r, j);
  t = std::move(keptm);
  return kept;
}

}  // namespace

DavidsonResult davidson(
    const std::function<void(const la::MatC&, la::MatC&)>& apply_h,
    const la::MatC& x0, const std::vector<real_t>& precond_diag,
    DavidsonOptions opt) {
  ScopedTimer timer("gs.davidson");
  const size_t npw = x0.rows();
  const size_t nb = x0.cols();
  PTIM_CHECK(precond_diag.size() == npw);
  if (opt.max_subspace == 0) opt.max_subspace = 6 * nb;

  DavidsonResult res;
  la::MatC v = x0;
  pw::orthonormalize_lowdin(v);
  la::MatC hv(npw, v.cols());
  apply_h(v, hv);

  la::MatC x(npw, nb), hx(npw, nb);
  for (res.iterations = 1; res.iterations <= opt.max_iter; ++res.iterations) {
    // Rayleigh–Ritz on the current subspace.
    la::MatC a = pw::overlap(v, hv);
    la::hermitize(a);
    const auto eig = la::eig_herm(a);

    la::MatC c(v.cols(), nb);
    for (size_t j = 0; j < nb; ++j)
      for (size_t i = 0; i < v.cols(); ++i) c(i, j) = eig.V(i, j);
    la::gemm_nn(v, c, x);
    la::gemm_nn(hv, c, hx);
    res.eps.assign(eig.w.begin(), eig.w.begin() + static_cast<long>(nb));

    // Residuals r_j = H x_j - eps_j x_j.
    la::MatC r = hx;
    res.resnorm.assign(nb, 0.0);
    real_t rmax = 0.0;
    for (size_t j = 0; j < nb; ++j) {
      la::axpy(npw, -res.eps[j], x.col(j), r.col(j));
      res.resnorm[j] = la::nrm2(npw, r.col(j));
      rmax = std::max(rmax, res.resnorm[j]);
    }
    if (opt.verbose)
      std::fprintf(stderr, "davidson it=%d dim=%zu rmax=%.3e\n",
                   res.iterations, v.cols(), rmax);
    if (rmax < opt.tol) {
      res.converged = true;
      break;
    }

    // Precondition the unconverged residuals into one contiguous block so
    // the subsequent apply_h(tkeep) runs the batched Hamiltonian path.
    std::vector<size_t> unconverged;
    for (size_t j = 0; j < nb; ++j)
      if (res.resnorm[j] >= 0.3 * opt.tol) unconverged.push_back(j);
    const size_t nt = unconverged.size();
    la::MatC tkeep(npw, nt);
#pragma omp parallel for schedule(static)
    for (size_t jj = 0; jj < nt; ++jj) {
      const size_t j = unconverged[jj];
      const real_t eref = std::max(std::abs(res.eps[j]), real_t(0.1));
      for (size_t g = 0; g < npw; ++g)
        tkeep(g, jj) = teter(precond_diag[g], eref) * r(g, j);
    }

    // Restart when the subspace is full.
    if (v.cols() + nt > opt.max_subspace) {
      v = x;
      hv = hx;
    }

    const size_t kept = ortho_against(v, tkeep);
    if (kept == 0) {
      res.converged = rmax < 10.0 * opt.tol;
      break;
    }
    la::MatC ht(npw, kept);
    apply_h(tkeep, ht);

    la::MatC vnew(npw, v.cols() + kept), hvnew(npw, v.cols() + kept);
    std::copy(v.data(), v.data() + v.size(), vnew.data());
    std::copy(hv.data(), hv.data() + hv.size(), hvnew.data());
    std::copy(tkeep.data(), tkeep.data() + tkeep.size(),
              vnew.col(v.cols()));
    std::copy(ht.data(), ht.data() + ht.size(), hvnew.col(v.cols()));
    v = std::move(vnew);
    hv = std::move(hvnew);
  }

  res.x = std::move(x);
  return res;
}

}  // namespace ptim::gs
