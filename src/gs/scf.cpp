#include "gs/scf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "gs/davidson.hpp"
#include "ham/density.hpp"
#include "la/mixer.hpp"
#include "occ/fermi.hpp"
#include "pw/wavefunction.hpp"

namespace ptim::gs {

namespace {

la::MatC random_guess(size_t npw, size_t nb, const std::vector<real_t>& kin,
                      unsigned seed) {
  // Random coefficients damped by the kinetic energy so the guess already
  // lives mostly in the low-energy part of the basis.
  Rng rng(seed);
  la::MatC x(npw, nb);
  for (size_t j = 0; j < nb; ++j)
    for (size_t i = 0; i < npw; ++i)
      x(i, j) = rng.uniform_cplx() / (1.0 + kin[i]);
  return x;
}

real_t rho_distance(const std::vector<real_t>& a, const std::vector<real_t>& b,
                    real_t dvol) {
  real_t acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const real_t d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc * dvol);
}

// One density-convergence loop with the current exchange configuration.
// Returns the SCF iteration count used.
int density_loop(ham::Hamiltonian& h, const ScfOptions& opt, la::MatC& phi,
                 std::vector<real_t>& eps, std::vector<real_t>& occ,
                 std::vector<real_t>& rho, real_t& mu, bool& converged) {
  const real_t kt = opt.temperature_k * units::kboltz_ha_per_k;
  const pw::SphereGridMap& dmap = h.den_map();
  la::AndersonMixerReal mixer(rho.size(), opt.mix_history, opt.mix_beta);

  auto apply = [&](const la::MatC& in, la::MatC& out) { h.apply(in, out); };
  const std::vector<real_t> kin = h.kinetic_diag();

  converged = false;
  int it = 1;
  for (; it <= opt.max_scf; ++it) {
    h.set_density(rho);

    DavidsonOptions dopt;
    dopt.max_iter = opt.davidson_iter;
    dopt.tol = opt.davidson_tol;
    const DavidsonResult dr = davidson(apply, phi, kin, dopt);
    phi = dr.x;
    eps = dr.eps;

    mu = kt > 0.0 ? occ::find_mu(eps, opt.nelec, kt)
                  : 0.5 * (eps[static_cast<size_t>(opt.nelec / 2.0) - 1] +
                           eps[static_cast<size_t>(opt.nelec / 2.0)]);
    occ = occ::occupations(eps, mu, kt);

    std::vector<real_t> rho_out = ham::density_diag(phi, occ, dmap);
    const real_t drho =
        rho_distance(rho, rho_out, h.den_grid().dvol()) / opt.nelec;
    if (opt.verbose)
      std::fprintf(stderr, "  scf it=%d drho=%.3e eps0=%.6f mu=%.6f\n", it,
                   drho, eps[0], mu);
    if (drho < opt.tol_rho) {
      rho = std::move(rho_out);
      converged = true;
      break;
    }
    std::vector<real_t> f(rho.size());
    for (size_t i = 0; i < f.size(); ++i) f[i] = rho_out[i] - rho[i];
    rho = mixer.mix(rho, f);
    // Clip tiny negative mixing artifacts.
    for (auto& v : rho) v = std::max(v, 0.0);
  }
  return it;
}

}  // namespace

ScfResult ground_state(ham::Hamiltonian& h, ScfOptions opt) {
  ScopedTimer t("gs.scf");
  PTIM_CHECK_MSG(opt.nbands > 0 && opt.nelec > 0.0,
                 "ground_state: nbands and nelec must be set");
  PTIM_CHECK_MSG(2.0 * static_cast<real_t>(opt.nbands) >= opt.nelec,
                 "ground_state: not enough bands for the electron count");

  ScfResult res;
  const size_t npw = h.sphere().npw();
  const std::vector<real_t> kin = h.kinetic_diag();

  // Uniform initial density carrying the right electron count.
  const real_t omega = h.den_grid().lattice().volume();
  res.rho.assign(h.den_grid().size(), opt.nelec / omega);
  res.phi = random_guess(npw, opt.nbands, kin, opt.seed);
  pw::orthonormalize_lowdin(res.phi);

  // Stage 1: semilocal SCF. In hybrid runs this only preconditions the
  // ACE stage, so it is capped and allowed to stay slightly unconverged
  // (finite-T LDA on small metallic cells can slosh at the 1e-3 level).
  h.set_exchange_mode(ham::ExchangeMode::kNone);
  bool conv = false;
  ScfOptions stage1 = opt;
  if (h.hybrid()) {
    stage1.max_scf = std::min(stage1.max_scf, 40);
    stage1.tol_rho = std::max(stage1.tol_rho, real_t(1e-5));
  }
  res.scf_iterations = density_loop(h, stage1, res.phi, res.eps, res.occ,
                                    res.rho, res.mu, conv);
  res.converged = conv;

  // Stage 2: hybrid outer ACE loop.
  if (h.hybrid()) {
    real_t efock_prev = 0.0;
    for (int outer = 1; outer <= opt.max_outer_ace; ++outer) {
      ++res.outer_iterations;
      // Build W = alpha*Vx*Phi (batched exchange path) and compress.
      h.set_exchange_source_diag(res.phi, res.occ);
      h.set_ace(ham::AceOperator::build_diag(h.exchange_op(), res.phi,
                                             res.occ));

      res.scf_iterations += density_loop(h, opt, res.phi, res.eps, res.occ,
                                         res.rho, res.mu, conv);
      // Convergence is judged by the inner density loop; the outer test
      // below only decides when the exchange operator stops moving.
      res.converged = conv;

      const real_t efock = h.exchange_op().energy_diag(res.phi, res.occ);
      const real_t change = std::abs(efock - efock_prev);
      if (opt.verbose)
        std::fprintf(stderr, " hybrid outer=%d Efock=%.8f dE=%.2e\n", outer,
                     efock, change);
      efock_prev = efock;
      if (outer > 1 && change < opt.tol_fock) break;
    }
  }

  h.set_density(res.rho);
  la::MatC sigma(opt.nbands, opt.nbands);
  for (size_t i = 0; i < opt.nbands; ++i) sigma(i, i) = res.occ[i];
  res.energy = h.energy(res.phi, sigma, res.rho);
  return res;
}

}  // namespace ptim::gs
