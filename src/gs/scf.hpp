#pragma once
// Ground-state SCF driver producing the rt-TDDFT initial state:
//   1. semilocal (LDA) SCF with Fermi–Dirac smearing and Anderson density
//      mixing,
//   2. optional hybrid stage: outer ACE loop (build W = alpha*Vx*Phi,
//      compress, inner density SCF with the fixed ACE operator) until the
//      Fock energy stabilizes — PWDFT's hybrid ground-state structure.

#include <vector>

#include "ham/hamiltonian.hpp"
#include "la/matrix.hpp"

namespace ptim::gs {

struct ScfOptions {
  size_t nbands = 0;          // total orbitals N (occupied + extra)
  real_t nelec = 0.0;         // electron count (2 per filled orbital)
  real_t temperature_k = 0.0; // Kelvin; 0 = integer occupations
  int max_scf = 60;
  real_t tol_rho = 1e-7;      // |drho| L2 per electron
  real_t mix_beta = 0.5;
  size_t mix_history = 10;
  int max_outer_ace = 10;     // hybrid outer loop
  real_t tol_fock = 1e-7;     // Hartree, outer convergence (paper: 1e-6)
  int davidson_iter = 40;
  real_t davidson_tol = 1e-7;
  unsigned seed = 12345;
  bool verbose = false;
};

struct ScfResult {
  la::MatC phi;                // npw x nbands, orthonormal
  std::vector<real_t> eps;     // band energies
  std::vector<real_t> occ;     // Fermi-Dirac occupations in [0,1]
  std::vector<real_t> rho;     // converged density (dense grid)
  real_t mu = 0.0;             // chemical potential
  ham::EnergyTerms energy;
  int scf_iterations = 0;
  int outer_iterations = 0;
  bool converged = false;
};

// H is reconfigured in place (density, exchange sources, ACE). On return it
// holds the converged state and, in hybrid mode, an ACE operator built from
// the final orbitals.
ScfResult ground_state(ham::Hamiltonian& h, ScfOptions opt);

}  // namespace ptim::gs
