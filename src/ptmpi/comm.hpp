#pragma once
// In-process MPI substitute ("ptmpi"): thread ranks with real message
// passing. The paper's system-level contributions (ring-based wavefunction
// rotation, asynchronous overlap, MPI-3 shared-memory windows) are coded
// against this interface exactly as they would be against MPI, so their
// correctness is testable on one machine; the netsim module supplies the
// large-scale timing model.
//
// Provided operations (mirroring the paper's Table I columns):
//   send/recv, isend/irecv/wait, sendrecv, bcast, allreduce_sum,
//   alltoallv, allgatherv, barrier, plus node-scoped shared-memory
//   windows (MPI_Win_allocate_shared stand-in).
//
// Communicators can be split (MPI_Comm_split): Comm::split(color, key)
// groups callers by color, ranks them by (key, parent rank), and returns a
// subcommunicator whose collectives and point-to-point matching are fully
// isolated from the parent (every communicator carries its own message
// context, barrier and staging area). This is what the 2-D band x grid
// process decomposition is built on: a world of pb*pg ranks splits into pb
// row (band) communicators and pg column (grid) communicators.
//
// Every call records (calls, bytes, seconds) into per-WORLD-rank CommStats
// (subcommunicator traffic is charged to the owning world rank) — the
// measured analogue of the paper's per-op communication table.

#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "common/types.hpp"

namespace ptim::ptmpi {

struct OpStats {
  long calls = 0;
  long long bytes = 0;
  double seconds = 0.0;
};

struct CommStats {
  std::map<std::string, OpStats> ops;
  // add() is thread-safe: under the 2-D layout one rank's compute stream
  // (pencil-transpose Alltoallv inside the slab FFT) and comm stream (band
  // ring transfers) record into the same per-rank stats concurrently.
  // Reading `ops` directly is only safe once the run has quiesced (benches
  // and tests read last_run_stats() after run_ranks returns); snapshot()
  // takes a locked copy and is safe at ANY time — mid-run readers (the
  // per-step metrics sampler, live dashboards) must go through it.
  void add(const std::string& op, long long bytes, double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& o = ops[op];
    o.calls += 1;
    o.bytes += bytes;
    o.seconds += seconds;
  }
  CommStats snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    CommStats out;
    out.ops = ops;
    return out;
  }
  double total_seconds() const {
    double t = 0.0;
    for (const auto& [k, v] : ops) t += v.seconds;
    return t;
  }

  CommStats() = default;
  CommStats(const CommStats& other) : ops(other.snapshot().ops) {}
  CommStats& operator=(const CommStats& other) {
    ops = other.snapshot().ops;
    return *this;
  }

 private:
  mutable std::mutex mu_;
};

class World;
struct Group;  // communicator membership + context (defined in comm.cpp)

// Nonblocking request handle.
struct Request {
  enum class Kind { kNone, kSend, kRecv };
  Kind kind = Kind::kNone;
  int peer = -1;
  int tag = 0;
  void* buf = nullptr;
  size_t bytes = 0;
};

// Per-rank communicator handle. All methods move raw bytes; typed helpers
// wrap the common complex/real cases. Copyable (a Comm is a lightweight
// view of a shared Group); copies alias the same communicator.
class Comm {
 public:
  Comm(World* world, int rank);  // the world communicator

  int rank() const { return rank_; }  // rank within THIS communicator
  int size() const;
  int world_rank() const;  // underlying world rank (stats/nodes key)
  int node() const;        // node id = world rank / ranks_per_node
  int node_rank() const;   // world rank within the node
  int ranks_per_node() const;

  // MPI_Comm_split: collective over this communicator. Callers with equal
  // `color` form one subcommunicator, ranked by (key, parent rank). Every
  // split communicator has a private message context, so traffic on it can
  // never be matched by sends on the parent or on a sibling. Nested splits
  // are allowed; the returned Comm is a value (drop it to "free" it).
  Comm split(int color, int key);

  void barrier();

  // Point-to-point (blocking and nonblocking). Messages are matched by
  // (source, tag) in FIFO order; isend is buffered (copies immediately).
  // Zero-byte messages are legal everywhere (empty band blocks).
  void send(int dest, const void* data, size_t bytes, int tag = 0);
  void recv(int src, void* data, size_t bytes, int tag = 0);
  Request isend(int dest, const void* data, size_t bytes, int tag = 0);
  Request irecv(int src, void* data, size_t bytes, int tag = 0);
  void wait(Request& req);

  // Combined neighbor exchange (the ring step).
  void sendrecv(int dest, const void* sendbuf, size_t send_bytes, int src,
                void* recvbuf, size_t recv_bytes, int tag = 0);

  // Typed FP32 overloads (counts are ELEMENTS, not bytes) — the reduced
  // precision ring payloads of the FP32 exchange pipeline. Exact pointer
  // types select these; every other pointer still falls through to the
  // raw-byte signatures above.
  void send(int dest, const float* data, size_t n, int tag = 0);
  void recv(int src, float* data, size_t n, int tag = 0);
  void send(int dest, const cplxf* data, size_t n, int tag = 0);
  void recv(int src, cplxf* data, size_t n, int tag = 0);
  void sendrecv(int dest, const float* sendbuf, size_t nsend, int src,
                float* recvbuf, size_t nrecv, int tag = 0);
  void sendrecv(int dest, const cplxf* sendbuf, size_t nsend, int src,
                cplxf* recvbuf, size_t nrecv, int tag = 0);
  void bcast(float* data, size_t n, int root);
  void bcast(cplxf* data, size_t n, int root);

  // Collectives. allreduce_sum is deterministic: every rank forms the sum
  // in rank order (0, 1, ..., p-1), so the result is bit-identical on all
  // ranks and independent of thread scheduling — the property the
  // distributed PT-IM propagator relies on to reproduce the serial
  // trajectory.
  void bcast(void* data, size_t bytes, int root);
  void allreduce_sum(cplx* data, size_t n);
  void allreduce_sum(real_t* data, size_t n);
  // FP32 reductions exist for completeness/stress-testing; the distributed
  // propagator deliberately keeps its sigma/overlap Allreduces in FP64 so
  // results stay bit-identical across ranks in every precision mode.
  void allreduce_sum(cplxf* data, size_t n);
  void allreduce_sum(float* data, size_t n);
  // Each rank contributes `send_count` elements; all ranks receive the
  // concatenation ordered by rank.
  void allgatherv(const cplx* send, size_t send_count, cplx* recv,
                  const std::vector<size_t>& counts);
  void allgatherv(const real_t* send, size_t send_count, real_t* recv,
                  const std::vector<size_t>& counts);
  // counts[i]: elements this rank sends to rank i (and symmetric layout on
  // the receive side: recv_counts[i] elements arrive from rank i).
  void alltoallv(const cplx* send, const std::vector<size_t>& send_counts,
                 cplx* recv, const std::vector<size_t>& recv_counts);
  // FP32 slab overload — the reduced-precision pencil transposes of the
  // distributed slab FFT move cplxf payloads (half the Alltoallv bytes).
  void alltoallv(const cplxf* send, const std::vector<size_t>& send_counts,
                 cplxf* recv, const std::vector<size_t>& recv_counts);

  // Node-shared window: all ranks of a node receive the same buffer; the
  // buffer is zero-initialized; identified by name (collective call). The
  // window is scoped to this communicator (same name on different split
  // communicators yields distinct windows).
  cplx* shm_allocate(const std::string& name, size_t n);

  // MPI_Fetch_and_op(MPI_SUM) stand-in on a named, zero-initialized
  // communicator-scoped counter: atomically adds `delta` and returns the
  // PREVIOUS value. NOT collective — any rank may call it at any time,
  // and concurrent calls serialize in some order (each caller sees a
  // distinct previous value). This is the idle-worker job-claim primitive
  // of the ensemble campaign layer: workers fetch_add(1) on a shared
  // cursor to claim the next job index without a coordinator rank.
  long fetch_add(const std::string& name, long delta);

  CommStats& stats();

 private:
  Comm(World* world, int rank, std::shared_ptr<Group> group);

  template <typename T>
  void alltoallv_impl(const T* send, const std::vector<size_t>& send_counts,
                      T* recv, const std::vector<size_t>& recv_counts);

  int world_rank_of(int local) const;

  World* world_;
  int rank_;  // rank within group_
  std::shared_ptr<Group> group_;
};

// Synthetic wire model for overlap benches: a point-to-point message
// becomes visible to the receiver only base_seconds + bytes *
// seconds_per_byte after the send was posted; recv/wait block until then.
// (0, 0) — the default — restores instantaneous in-process delivery.
// Applies to send/isend/sendrecv/alltoallv (the mailbox path); the
// barrier-based collectives are unaffected. This is what makes the
// overlapped ring's compute/comm overlap measurable on one machine: with
// a wire time per slab, the serialized ring pays compute + wire per round
// while the pipelined ring pays max(compute, wire).
void set_wire_model(double base_seconds, double seconds_per_byte);

// Launch `nranks` std::threads, each running fn(comm). Exceptions in any
// rank are re-thrown on the caller thread.
void run_ranks(int nranks, int ranks_per_node,
               const std::function<void(Comm&)>& fn);

// Access statistics recorded during the last run_ranks (indexed by rank).
const std::vector<CommStats>& last_run_stats();

}  // namespace ptim::ptmpi
