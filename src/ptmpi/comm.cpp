#include "ptmpi/comm.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/error.hpp"

namespace ptim::ptmpi {

namespace {

// Wire model (set_wire_model): messages carry an arrival deadline computed
// at push time; pop blocks until the deadline passes. Zero = off.
std::atomic<double> g_wire_base{0.0};
std::atomic<double> g_wire_per_byte{0.0};

using wire_clock = std::chrono::steady_clock;

struct Message {
  int tag;
  std::vector<unsigned char> payload;
  wire_clock::time_point ready_at;
};

// Mailbox per destination rank.
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  // keyed by source rank; FIFO per (src); tag matched within the queue.
  std::map<int, std::deque<Message>> queues;
};

}  // namespace

class World {
 public:
  World(int nranks, int ranks_per_node)
      : nranks_(nranks),
        ranks_per_node_(ranks_per_node),
        mailboxes_(static_cast<size_t>(nranks)),
        stats_(static_cast<size_t>(nranks)),
        staging_(static_cast<size_t>(nranks), nullptr) {
    for (auto& mb : mailboxes_) mb = std::make_unique<Mailbox>();
  }

  int nranks() const { return nranks_; }
  int ranks_per_node() const { return ranks_per_node_; }

  // --- generation barrier (reusable for any subset size = all ranks) ----
  void barrier() {
    std::unique_lock<std::mutex> lock(bar_mu_);
    const long gen = bar_gen_;
    if (++bar_count_ == nranks_) {
      bar_count_ = 0;
      ++bar_gen_;
      bar_cv_.notify_all();
    } else {
      bar_cv_.wait(lock, [&] { return bar_gen_ != gen; });
    }
  }

  void push(int src, int dest, int tag, const void* data, size_t bytes) {
    Mailbox& mb = *mailboxes_[static_cast<size_t>(dest)];
    Message msg;
    msg.tag = tag;
    if (bytes > 0)  // zero-byte messages are legal (empty band blocks)
      msg.payload.assign(static_cast<const unsigned char*>(data),
                         static_cast<const unsigned char*>(data) + bytes);
    msg.ready_at =
        wire_clock::now() +
        std::chrono::duration_cast<wire_clock::duration>(
            std::chrono::duration<double>(
                g_wire_base.load(std::memory_order_relaxed) +
                static_cast<double>(bytes) *
                    g_wire_per_byte.load(std::memory_order_relaxed)));
    {
      std::lock_guard<std::mutex> lock(mb.mu);
      mb.queues[src].push_back(std::move(msg));
    }
    mb.cv.notify_all();
  }

  void pop(int src, int dest, int tag, void* data, size_t bytes) {
    Mailbox& mb = *mailboxes_[static_cast<size_t>(dest)];
    std::unique_lock<std::mutex> lock(mb.mu);
    for (;;) {
      auto& q = mb.queues[src];
      bool waiting_on_wire = false;
      wire_clock::time_point deadline{};
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->tag == tag) {
          // FIFO per (src, tag): the first match is THE message; if its
          // wire deadline has not passed yet, wait for it rather than
          // skipping ahead to a later (out-of-order) one.
          if (it->ready_at > wire_clock::now()) {
            waiting_on_wire = true;
            deadline = it->ready_at;
            break;
          }
          PTIM_CHECK_MSG(it->payload.size() == bytes,
                         "ptmpi: message size mismatch (tag " << tag << ")");
          if (bytes > 0) std::memcpy(data, it->payload.data(), bytes);
          q.erase(it);
          return;
        }
      }
      if (waiting_on_wire)
        mb.cv.wait_until(lock, deadline);
      else
        mb.cv.wait(lock);
    }
  }

  // Staging pointer table for shared-memory collectives.
  void publish(int rank, const void* p) {
    staging_[static_cast<size_t>(rank)] = p;
  }
  const void* staged(int rank) const {
    return staging_[static_cast<size_t>(rank)];
  }

  cplx* shm(const std::string& name, int node, size_t n) {
    std::lock_guard<std::mutex> lock(shm_mu_);
    auto& buf = shm_[{name, node}];
    if (buf.size() != n) buf.assign(n, cplx(0.0));
    return buf.data();
  }

  CommStats& stats(int rank) { return stats_[static_cast<size_t>(rank)]; }
  std::vector<CommStats> take_stats() { return stats_; }

 private:
  int nranks_;
  int ranks_per_node_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<CommStats> stats_;
  std::vector<const void*> staging_;

  std::mutex bar_mu_;
  std::condition_variable bar_cv_;
  int bar_count_ = 0;
  long bar_gen_ = 0;

  std::mutex shm_mu_;
  std::map<std::pair<std::string, int>, std::vector<cplx>> shm_;
};

// ----------------------------------------------------------------- Comm --

int Comm::size() const { return world_->nranks(); }
int Comm::ranks_per_node() const { return world_->ranks_per_node(); }
int Comm::node() const { return rank_ / world_->ranks_per_node(); }
int Comm::node_rank() const { return rank_ % world_->ranks_per_node(); }
CommStats& Comm::stats() { return world_->stats(rank_); }

void Comm::barrier() { world_->barrier(); }

void Comm::send(int dest, const void* data, size_t bytes, int tag) {
  Timer t;
  world_->push(rank_, dest, tag, data, bytes);
  stats().add("Send", static_cast<long long>(bytes), t.seconds());
}

void Comm::recv(int src, void* data, size_t bytes, int tag) {
  Timer t;
  world_->pop(src, rank_, tag, data, bytes);
  stats().add("Recv", static_cast<long long>(bytes), t.seconds());
}

Request Comm::isend(int dest, const void* data, size_t bytes, int tag) {
  // Buffered eager send: the payload is copied into the mailbox now.
  world_->push(rank_, dest, tag, data, bytes);
  Request r;
  r.kind = Request::Kind::kSend;
  r.peer = dest;
  r.tag = tag;
  r.bytes = bytes;
  return r;
}

Request Comm::irecv(int src, void* data, size_t bytes, int tag) {
  Request r;
  r.kind = Request::Kind::kRecv;
  r.peer = src;
  r.tag = tag;
  r.buf = data;
  r.bytes = bytes;
  return r;
}

void Comm::wait(Request& req) {
  Timer t;
  if (req.kind == Request::Kind::kRecv)
    world_->pop(req.peer, rank_, req.tag, req.buf, req.bytes);
  // Buffered sends complete immediately.
  stats().add("Wait", static_cast<long long>(req.bytes), t.seconds());
  req.kind = Request::Kind::kNone;
}

void Comm::sendrecv(int dest, const void* sendbuf, size_t send_bytes, int src,
                    void* recvbuf, size_t recv_bytes, int tag) {
  Timer t;
  world_->push(rank_, dest, tag, sendbuf, send_bytes);
  world_->pop(src, rank_, tag, recvbuf, recv_bytes);
  stats().add("Sendrecv", static_cast<long long>(send_bytes + recv_bytes),
              t.seconds());
}

// Typed FP32 overloads: thin element-count wrappers over the byte movers —
// they share the mailbox machinery and the per-op stats, so the halved ring
// payloads show up directly in CommStats byte columns.
void Comm::send(int dest, const float* data, size_t n, int tag) {
  send(dest, static_cast<const void*>(data), n * sizeof(float), tag);
}
void Comm::recv(int src, float* data, size_t n, int tag) {
  recv(src, static_cast<void*>(data), n * sizeof(float), tag);
}
void Comm::send(int dest, const cplxf* data, size_t n, int tag) {
  send(dest, static_cast<const void*>(data), n * sizeof(cplxf), tag);
}
void Comm::recv(int src, cplxf* data, size_t n, int tag) {
  recv(src, static_cast<void*>(data), n * sizeof(cplxf), tag);
}
void Comm::sendrecv(int dest, const float* sendbuf, size_t nsend, int src,
                    float* recvbuf, size_t nrecv, int tag) {
  sendrecv(dest, static_cast<const void*>(sendbuf), nsend * sizeof(float), src,
           static_cast<void*>(recvbuf), nrecv * sizeof(float), tag);
}
void Comm::sendrecv(int dest, const cplxf* sendbuf, size_t nsend, int src,
                    cplxf* recvbuf, size_t nrecv, int tag) {
  sendrecv(dest, static_cast<const void*>(sendbuf), nsend * sizeof(cplxf), src,
           static_cast<void*>(recvbuf), nrecv * sizeof(cplxf), tag);
}
void Comm::bcast(float* data, size_t n, int root) {
  bcast(static_cast<void*>(data), n * sizeof(float), root);
}
void Comm::bcast(cplxf* data, size_t n, int root) {
  bcast(static_cast<void*>(data), n * sizeof(cplxf), root);
}

void Comm::bcast(void* data, size_t bytes, int root) {
  Timer t;
  world_->barrier();
  if (rank_ == root) world_->publish(rank_, data);
  world_->barrier();
  if (rank_ != root && bytes > 0)
    std::memcpy(data, world_->staged(root), bytes);
  world_->barrier();
  stats().add("Bcast", static_cast<long long>(bytes), t.seconds());
}

namespace {
template <typename T>
void allreduce_impl(World* w, int rank, int nranks, T* data, size_t n) {
  // Deterministic reduction: every rank publishes its buffer, then sums all
  // contributions itself in rank order. The summation order is therefore
  // fixed (0, 1, ..., p-1) regardless of thread scheduling, and every rank
  // ends up with bit-identical results.
  w->publish(rank, data);
  w->barrier();
  std::vector<T> acc(n, T{});
  for (int r = 0; r < nranks; ++r) {
    const T* src = static_cast<const T*>(w->staged(r));
    for (size_t i = 0; i < n; ++i) acc[i] += src[i];
  }
  w->barrier();  // nobody overwrites their input before everyone has read it
  // n == 0 is legal (and data may then be null; memcpy from/to null is UB
  // even for zero bytes).
  if (n > 0) std::memcpy(data, acc.data(), n * sizeof(T));
  w->barrier();
}
}  // namespace

void Comm::allreduce_sum(cplx* data, size_t n) {
  Timer t;
  allreduce_impl(world_, rank_, size(), data, n);
  stats().add("Allreduce", static_cast<long long>(n * sizeof(cplx)),
              t.seconds());
}

void Comm::allreduce_sum(real_t* data, size_t n) {
  Timer t;
  allreduce_impl(world_, rank_, size(), data, n);
  stats().add("Allreduce", static_cast<long long>(n * sizeof(real_t)),
              t.seconds());
}

void Comm::allreduce_sum(cplxf* data, size_t n) {
  Timer t;
  allreduce_impl(world_, rank_, size(), data, n);
  stats().add("Allreduce", static_cast<long long>(n * sizeof(cplxf)),
              t.seconds());
}

void Comm::allreduce_sum(float* data, size_t n) {
  Timer t;
  allreduce_impl(world_, rank_, size(), data, n);
  stats().add("Allreduce", static_cast<long long>(n * sizeof(float)),
              t.seconds());
}

namespace {
template <typename T>
void allgatherv_impl(World* w, int rank, int nranks, const T* send, T* recv,
                     const std::vector<size_t>& counts) {
  PTIM_CHECK(counts.size() == static_cast<size_t>(nranks));
  w->publish(rank, send);
  w->barrier();
  size_t offset = 0;
  for (int r = 0; r < nranks; ++r) {
    const size_t cnt = counts[static_cast<size_t>(r)];
    // Zero-count ranks may legitimately publish a null pointer (empty band
    // blocks); memcpy with a null source is UB even for zero bytes.
    if (cnt > 0)
      std::memcpy(recv + offset, static_cast<const T*>(w->staged(r)),
                  cnt * sizeof(T));
    offset += cnt;
  }
  w->barrier();
}
}  // namespace

void Comm::allgatherv(const cplx* send, size_t send_count, cplx* recv,
                      const std::vector<size_t>& counts) {
  Timer t;
  allgatherv_impl(world_, rank_, size(), send, recv, counts);
  stats().add("Allgatherv", static_cast<long long>(send_count * sizeof(cplx)),
              t.seconds());
}

void Comm::allgatherv(const real_t* send, size_t send_count, real_t* recv,
                      const std::vector<size_t>& counts) {
  Timer t;
  allgatherv_impl(world_, rank_, size(), send, recv, counts);
  stats().add("Allgatherv", static_cast<long long>(send_count * sizeof(real_t)),
              t.seconds());
}

void Comm::alltoallv(const cplx* send, const std::vector<size_t>& send_counts,
                     cplx* recv, const std::vector<size_t>& recv_counts) {
  Timer t;
  const int p = size();
  PTIM_CHECK(send_counts.size() == static_cast<size_t>(p) &&
             recv_counts.size() == static_cast<size_t>(p));
  constexpr int kTag = 0x5a5a;
  // Eager-push every outgoing slice (self included), then drain inbound.
  size_t send_offset = 0;
  long long bytes = 0;
  for (int r = 0; r < p; ++r) {
    const size_t cnt = send_counts[static_cast<size_t>(r)];
    world_->push(rank_, r, kTag, send + send_offset, cnt * sizeof(cplx));
    send_offset += cnt;
    bytes += static_cast<long long>(cnt * sizeof(cplx));
  }
  size_t recv_offset = 0;
  for (int r = 0; r < p; ++r) {
    const size_t cnt = recv_counts[static_cast<size_t>(r)];
    world_->pop(r, rank_, kTag, recv + recv_offset, cnt * sizeof(cplx));
    recv_offset += cnt;
  }
  stats().add("Alltoallv", bytes, t.seconds());
}

cplx* Comm::shm_allocate(const std::string& name, size_t n) {
  world_->barrier();
  cplx* p = world_->shm(name, node(), n);
  world_->barrier();
  return p;
}

void set_wire_model(double base_seconds, double seconds_per_byte) {
  g_wire_base.store(base_seconds, std::memory_order_relaxed);
  g_wire_per_byte.store(seconds_per_byte, std::memory_order_relaxed);
}

// ------------------------------------------------------------ run_ranks --

namespace {
std::vector<CommStats> g_last_stats;  // set by run_ranks
std::mutex g_last_stats_mu;
}  // namespace

void run_ranks(int nranks, int ranks_per_node,
               const std::function<void(Comm&)>& fn) {
  PTIM_CHECK(nranks >= 1 && ranks_per_node >= 1);
  World world(nranks, ranks_per_node);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<size_t>(nranks));
  threads.reserve(static_cast<size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &fn, &errors, r] {
      try {
        Comm comm(&world, r);
        fn(comm);
      } catch (...) {
        errors[static_cast<size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  {
    std::lock_guard<std::mutex> lock(g_last_stats_mu);
    g_last_stats = world.take_stats();
  }
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

const std::vector<CommStats>& last_run_stats() { return g_last_stats; }

}  // namespace ptim::ptmpi
