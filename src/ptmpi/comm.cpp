#include "ptmpi/comm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace ptim::ptmpi {

namespace {

// Wire model (set_wire_model): messages carry an arrival deadline computed
// at push time; pop blocks until the deadline passes. Zero = off.
std::atomic<double> g_wire_base{0.0};
std::atomic<double> g_wire_per_byte{0.0};

using wire_clock = std::chrono::steady_clock;

struct Message {
  int tag;
  int context;  // communicator the message was sent on
  std::vector<unsigned char> payload;
  wire_clock::time_point ready_at;
};

// Mailbox per destination rank.
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  // keyed by source world rank; FIFO per (src, context, tag).
  std::map<int, std::deque<Message>> queues;
};

}  // namespace

// Communicator membership: the world ranks of the members (ordered by local
// rank), a private message context, and the barrier/staging state every
// barrier-based collective on this communicator uses. One Group instance is
// SHARED by all member threads (interned in the World), so the barrier
// generation counter and the staging slots synchronize correctly.
struct Group {
  std::vector<int> members;        // world rank of each local rank
  int context = 0;                 // message-matching context id
  std::vector<const void*> staged; // per-local-rank staging pointers

  std::mutex mu;
  std::condition_variable cv;
  int count = 0;
  long gen = 0;

  Group(std::vector<int> m, int ctx)
      : members(std::move(m)), context(ctx), staged(members.size(), nullptr) {}

  int size() const { return static_cast<int>(members.size()); }

  void barrier() {
    std::unique_lock<std::mutex> lock(mu);
    const long g = gen;
    if (++count == size()) {
      count = 0;
      ++gen;
      cv.notify_all();
    } else {
      cv.wait(lock, [&] { return gen != g; });
    }
  }
};

class World {
 public:
  World(int nranks, int ranks_per_node)
      : nranks_(nranks),
        ranks_per_node_(ranks_per_node),
        mailboxes_(static_cast<size_t>(nranks)),
        stats_(static_cast<size_t>(nranks)) {
    for (auto& mb : mailboxes_) mb = std::make_unique<Mailbox>();
    std::vector<int> all(static_cast<size_t>(nranks));
    for (int r = 0; r < nranks; ++r) all[static_cast<size_t>(r)] = r;
    world_group_ = std::make_shared<Group>(std::move(all), 0);
  }

  int nranks() const { return nranks_; }
  int ranks_per_node() const { return ranks_per_node_; }
  const std::shared_ptr<Group>& world_group() const { return world_group_; }

  // Context ids for split communicators: a contiguous block per split call,
  // reserved by the parent's rank-0 member so every member agrees.
  int alloc_contexts(int n) { return next_context_.fetch_add(n); }

  // One shared Group instance per context: the first member to arrive
  // creates it, the rest attach. Contexts are unique per (split, color), so
  // the membership is always consistent.
  std::shared_ptr<Group> intern_group(int context, std::vector<int> members) {
    std::lock_guard<std::mutex> lock(groups_mu_);
    auto& g = groups_[context];
    if (!g) g = std::make_shared<Group>(std::move(members), context);
    return g;
  }

  void push(int src, int dest, int context, int tag, const void* data,
            size_t bytes) {
    Mailbox& mb = *mailboxes_[static_cast<size_t>(dest)];
    Message msg;
    msg.tag = tag;
    msg.context = context;
    if (bytes > 0)  // zero-byte messages are legal (empty band blocks)
      msg.payload.assign(static_cast<const unsigned char*>(data),
                         static_cast<const unsigned char*>(data) + bytes);
    msg.ready_at =
        wire_clock::now() +
        std::chrono::duration_cast<wire_clock::duration>(
            std::chrono::duration<double>(
                g_wire_base.load(std::memory_order_relaxed) +
                static_cast<double>(bytes) *
                    g_wire_per_byte.load(std::memory_order_relaxed)));
    {
      std::lock_guard<std::mutex> lock(mb.mu);
      mb.queues[src].push_back(std::move(msg));
    }
    mb.cv.notify_all();
  }

  void pop(int src, int dest, int context, int tag, void* data, size_t bytes) {
    Mailbox& mb = *mailboxes_[static_cast<size_t>(dest)];
    std::unique_lock<std::mutex> lock(mb.mu);
    for (;;) {
      auto& q = mb.queues[src];
      bool waiting_on_wire = false;
      wire_clock::time_point deadline{};
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->tag == tag && it->context == context) {
          // FIFO per (src, context, tag): the first match is THE message;
          // if its wire deadline has not passed yet, wait for it rather
          // than skipping ahead to a later (out-of-order) one.
          if (it->ready_at > wire_clock::now()) {
            waiting_on_wire = true;
            deadline = it->ready_at;
            break;
          }
          PTIM_CHECK_MSG(it->payload.size() == bytes,
                         "ptmpi: message size mismatch (tag " << tag << ")");
          if (bytes > 0) std::memcpy(data, it->payload.data(), bytes);
          q.erase(it);
          return;
        }
      }
      if (waiting_on_wire)
        mb.cv.wait_until(lock, deadline);
      else
        mb.cv.wait(lock);
    }
  }

  cplx* shm(const std::string& name, int node, int context, size_t n) {
    std::lock_guard<std::mutex> lock(shm_mu_);
    auto& buf = shm_[{name, {node, context}}];
    if (buf.size() != n) buf.assign(n, cplx(0.0));
    return buf.data();
  }

  long fetch_add(const std::string& name, int context, long delta) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    long& c = counters_[{name, context}];  // zero-initialized on first touch
    const long prev = c;
    c += delta;
    return prev;
  }

  CommStats& stats(int rank) { return stats_[static_cast<size_t>(rank)]; }
  std::vector<CommStats> take_stats() { return stats_; }

 private:
  int nranks_;
  int ranks_per_node_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<CommStats> stats_;
  std::shared_ptr<Group> world_group_;

  std::atomic<int> next_context_{1};
  std::mutex groups_mu_;
  std::map<int, std::shared_ptr<Group>> groups_;

  std::mutex shm_mu_;
  // Keyed by (name, node, context): windows are scoped to the communicator
  // they were allocated on, and node/context must not alias.
  std::map<std::pair<std::string, std::pair<int, int>>, std::vector<cplx>>
      shm_;

  std::mutex counters_mu_;
  // Named atomic counters, scoped (like shm windows) by the context of the
  // communicator they were touched through.
  std::map<std::pair<std::string, int>, long> counters_;
};

// ----------------------------------------------------------------- Comm --

Comm::Comm(World* world, int rank)
    : world_(world), rank_(rank), group_(world->world_group()) {}

Comm::Comm(World* world, int rank, std::shared_ptr<Group> group)
    : world_(world), rank_(rank), group_(std::move(group)) {}

int Comm::world_rank_of(int local) const {
  return group_->members[static_cast<size_t>(local)];
}

int Comm::size() const { return group_->size(); }
int Comm::world_rank() const { return world_rank_of(rank_); }
int Comm::ranks_per_node() const { return world_->ranks_per_node(); }
int Comm::node() const { return world_rank() / world_->ranks_per_node(); }
int Comm::node_rank() const { return world_rank() % world_->ranks_per_node(); }
CommStats& Comm::stats() { return world_->stats(world_rank()); }

void Comm::barrier() { group_->barrier(); }

Comm Comm::split(int color, int key) {
  Group& g = *group_;
  const int p = g.size();

  // Stage every member's (color, key); the barriers around the read window
  // make the stack-local Info safely visible to all members.
  struct Info {
    int color, key;
  };
  const Info my{color, key};
  g.staged[static_cast<size_t>(rank_)] = &my;
  g.barrier();

  std::vector<int> colors;  // distinct colors, sorted
  // (key, parent rank) pairs of my color, in subcommunicator rank order.
  std::vector<std::pair<int, int>> mine;
  for (int r = 0; r < p; ++r) {
    const Info& info =
        *static_cast<const Info*>(g.staged[static_cast<size_t>(r)]);
    colors.push_back(info.color);
    if (info.color == color) mine.push_back({info.key, r});
  }
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  std::sort(mine.begin(), mine.end());
  g.barrier();  // all reads done before the staging slots are reused

  // Parent rank 0 reserves one context per color; everyone reads the base.
  int base = 0;
  if (rank_ == 0) {
    base = world_->alloc_contexts(static_cast<int>(colors.size()));
    g.staged[0] = &base;
  }
  g.barrier();
  const int ctx_base = *static_cast<const int*>(g.staged[0]);
  g.barrier();

  const auto ci = static_cast<int>(
      std::lower_bound(colors.begin(), colors.end(), color) - colors.begin());
  std::vector<int> members;
  members.reserve(mine.size());
  int my_local = 0;
  for (size_t i = 0; i < mine.size(); ++i) {
    if (mine[i].second == rank_) my_local = static_cast<int>(i);
    members.push_back(world_rank_of(mine[i].second));
  }
  auto grp = world_->intern_group(ctx_base + ci, std::move(members));
  return Comm(world_, my_local, std::move(grp));
}

void Comm::send(int dest, const void* data, size_t bytes, int tag) {
  Timer t;
  world_->push(world_rank(), world_rank_of(dest), group_->context, tag, data,
               bytes);
  stats().add("Send", static_cast<long long>(bytes), t.seconds());
}

void Comm::recv(int src, void* data, size_t bytes, int tag) {
  Timer t;
  world_->pop(world_rank_of(src), world_rank(), group_->context, tag, data,
              bytes);
  stats().add("Recv", static_cast<long long>(bytes), t.seconds());
}

Request Comm::isend(int dest, const void* data, size_t bytes, int tag) {
  // Buffered eager send: the payload is copied into the mailbox now.
  world_->push(world_rank(), world_rank_of(dest), group_->context, tag, data,
               bytes);
  Request r;
  r.kind = Request::Kind::kSend;
  r.peer = dest;
  r.tag = tag;
  r.bytes = bytes;
  return r;
}

Request Comm::irecv(int src, void* data, size_t bytes, int tag) {
  Request r;
  r.kind = Request::Kind::kRecv;
  r.peer = src;
  r.tag = tag;
  r.buf = data;
  r.bytes = bytes;
  return r;
}

void Comm::wait(Request& req) {
  Timer t;
  if (req.kind == Request::Kind::kRecv)
    world_->pop(world_rank_of(req.peer), world_rank(), group_->context,
                req.tag, req.buf, req.bytes);
  // Buffered sends complete immediately.
  stats().add("Wait", static_cast<long long>(req.bytes), t.seconds());
  req.kind = Request::Kind::kNone;
}

void Comm::sendrecv(int dest, const void* sendbuf, size_t send_bytes, int src,
                    void* recvbuf, size_t recv_bytes, int tag) {
  Timer t;
  world_->push(world_rank(), world_rank_of(dest), group_->context, tag,
               sendbuf, send_bytes);
  world_->pop(world_rank_of(src), world_rank(), group_->context, tag, recvbuf,
              recv_bytes);
  stats().add("Sendrecv", static_cast<long long>(send_bytes + recv_bytes),
              t.seconds());
}

// Typed FP32 overloads: thin element-count wrappers over the byte movers —
// they share the mailbox machinery and the per-op stats, so the halved ring
// payloads show up directly in CommStats byte columns.
void Comm::send(int dest, const float* data, size_t n, int tag) {
  send(dest, static_cast<const void*>(data), n * sizeof(float), tag);
}
void Comm::recv(int src, float* data, size_t n, int tag) {
  recv(src, static_cast<void*>(data), n * sizeof(float), tag);
}
void Comm::send(int dest, const cplxf* data, size_t n, int tag) {
  send(dest, static_cast<const void*>(data), n * sizeof(cplxf), tag);
}
void Comm::recv(int src, cplxf* data, size_t n, int tag) {
  recv(src, static_cast<void*>(data), n * sizeof(cplxf), tag);
}
void Comm::sendrecv(int dest, const float* sendbuf, size_t nsend, int src,
                    float* recvbuf, size_t nrecv, int tag) {
  sendrecv(dest, static_cast<const void*>(sendbuf), nsend * sizeof(float), src,
           static_cast<void*>(recvbuf), nrecv * sizeof(float), tag);
}
void Comm::sendrecv(int dest, const cplxf* sendbuf, size_t nsend, int src,
                    cplxf* recvbuf, size_t nrecv, int tag) {
  sendrecv(dest, static_cast<const void*>(sendbuf), nsend * sizeof(cplxf), src,
           static_cast<void*>(recvbuf), nrecv * sizeof(cplxf), tag);
}
void Comm::bcast(float* data, size_t n, int root) {
  bcast(static_cast<void*>(data), n * sizeof(float), root);
}
void Comm::bcast(cplxf* data, size_t n, int root) {
  bcast(static_cast<void*>(data), n * sizeof(cplxf), root);
}

void Comm::bcast(void* data, size_t bytes, int root) {
  Timer t;
  group_->barrier();
  if (rank_ == root) group_->staged[static_cast<size_t>(rank_)] = data;
  group_->barrier();
  if (rank_ != root && bytes > 0)
    std::memcpy(data, group_->staged[static_cast<size_t>(root)], bytes);
  group_->barrier();
  stats().add("Bcast", static_cast<long long>(bytes), t.seconds());
}

namespace {
template <typename T>
void allreduce_impl(Group* g, int rank, T* data, size_t n) {
  // Deterministic reduction: every rank publishes its buffer, then sums all
  // contributions itself in communicator-rank order. The summation order is
  // therefore fixed (0, 1, ..., p-1) regardless of thread scheduling, and
  // every rank ends up with bit-identical results.
  g->staged[static_cast<size_t>(rank)] = data;
  g->barrier();
  std::vector<T> acc(n, T{});
  for (int r = 0; r < g->size(); ++r) {
    const T* src = static_cast<const T*>(g->staged[static_cast<size_t>(r)]);
    for (size_t i = 0; i < n; ++i) acc[i] += src[i];
  }
  g->barrier();  // nobody overwrites their input before everyone has read it
  // n == 0 is legal (and data may then be null; memcpy from/to null is UB
  // even for zero bytes).
  if (n > 0) std::memcpy(data, acc.data(), n * sizeof(T));
  g->barrier();
}
}  // namespace

void Comm::allreduce_sum(cplx* data, size_t n) {
  Timer t;
  allreduce_impl(group_.get(), rank_, data, n);
  stats().add("Allreduce", static_cast<long long>(n * sizeof(cplx)),
              t.seconds());
}

void Comm::allreduce_sum(real_t* data, size_t n) {
  Timer t;
  allreduce_impl(group_.get(), rank_, data, n);
  stats().add("Allreduce", static_cast<long long>(n * sizeof(real_t)),
              t.seconds());
}

void Comm::allreduce_sum(cplxf* data, size_t n) {
  Timer t;
  allreduce_impl(group_.get(), rank_, data, n);
  stats().add("Allreduce", static_cast<long long>(n * sizeof(cplxf)),
              t.seconds());
}

void Comm::allreduce_sum(float* data, size_t n) {
  Timer t;
  allreduce_impl(group_.get(), rank_, data, n);
  stats().add("Allreduce", static_cast<long long>(n * sizeof(float)),
              t.seconds());
}

namespace {
template <typename T>
void allgatherv_impl(Group* g, int rank, const T* send, T* recv,
                     const std::vector<size_t>& counts) {
  PTIM_CHECK(counts.size() == static_cast<size_t>(g->size()));
  g->staged[static_cast<size_t>(rank)] = send;
  g->barrier();
  size_t offset = 0;
  for (int r = 0; r < g->size(); ++r) {
    const size_t cnt = counts[static_cast<size_t>(r)];
    // Zero-count ranks may legitimately publish a null pointer (empty band
    // blocks); memcpy with a null source is UB even for zero bytes.
    if (cnt > 0)
      std::memcpy(recv + offset,
                  static_cast<const T*>(g->staged[static_cast<size_t>(r)]),
                  cnt * sizeof(T));
    offset += cnt;
  }
  g->barrier();
}
}  // namespace

void Comm::allgatherv(const cplx* send, size_t send_count, cplx* recv,
                      const std::vector<size_t>& counts) {
  Timer t;
  allgatherv_impl(group_.get(), rank_, send, recv, counts);
  stats().add("Allgatherv", static_cast<long long>(send_count * sizeof(cplx)),
              t.seconds());
}

void Comm::allgatherv(const real_t* send, size_t send_count, real_t* recv,
                      const std::vector<size_t>& counts) {
  Timer t;
  allgatherv_impl(group_.get(), rank_, send, recv, counts);
  stats().add("Allgatherv", static_cast<long long>(send_count * sizeof(real_t)),
              t.seconds());
}

namespace {
constexpr int kAlltoallvTag = 0x5a5a;
}

template <typename T>
void Comm::alltoallv_impl(const T* send, const std::vector<size_t>& send_counts,
                          T* recv, const std::vector<size_t>& recv_counts) {
  Timer t;
  const int p = size();
  PTIM_CHECK(send_counts.size() == static_cast<size_t>(p) &&
             recv_counts.size() == static_cast<size_t>(p));
  // Eager-push every outgoing slice (self included), then drain inbound.
  size_t send_offset = 0;
  long long bytes = 0;
  for (int r = 0; r < p; ++r) {
    const size_t cnt = send_counts[static_cast<size_t>(r)];
    world_->push(world_rank(), world_rank_of(r), group_->context, kAlltoallvTag,
                 send + send_offset, cnt * sizeof(T));
    send_offset += cnt;
    bytes += static_cast<long long>(cnt * sizeof(T));
  }
  size_t recv_offset = 0;
  for (int r = 0; r < p; ++r) {
    const size_t cnt = recv_counts[static_cast<size_t>(r)];
    world_->pop(world_rank_of(r), world_rank(), group_->context, kAlltoallvTag,
                recv + recv_offset, cnt * sizeof(T));
    recv_offset += cnt;
  }
  stats().add("Alltoallv", bytes, t.seconds());
}

void Comm::alltoallv(const cplx* send, const std::vector<size_t>& send_counts,
                     cplx* recv, const std::vector<size_t>& recv_counts) {
  alltoallv_impl(send, send_counts, recv, recv_counts);
}

void Comm::alltoallv(const cplxf* send, const std::vector<size_t>& send_counts,
                     cplxf* recv, const std::vector<size_t>& recv_counts) {
  alltoallv_impl(send, send_counts, recv, recv_counts);
}

cplx* Comm::shm_allocate(const std::string& name, size_t n) {
  group_->barrier();
  cplx* p = world_->shm(name, node(), group_->context, n);
  group_->barrier();
  return p;
}

long Comm::fetch_add(const std::string& name, long delta) {
  Timer t;
  const long prev = world_->fetch_add(name, group_->context, delta);
  stats().add("Fetch_add", static_cast<long long>(sizeof(long)), t.seconds());
  return prev;
}

void set_wire_model(double base_seconds, double seconds_per_byte) {
  g_wire_base.store(base_seconds, std::memory_order_relaxed);
  g_wire_per_byte.store(seconds_per_byte, std::memory_order_relaxed);
}

// ------------------------------------------------------------ run_ranks --

namespace {
std::vector<CommStats> g_last_stats;  // set by run_ranks
std::mutex g_last_stats_mu;
}  // namespace

void run_ranks(int nranks, int ranks_per_node,
               const std::function<void(Comm&)>& fn) {
  PTIM_CHECK(nranks >= 1 && ranks_per_node >= 1);
  World world(nranks, ranks_per_node);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<size_t>(nranks));
  threads.reserve(static_cast<size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &fn, &errors, r] {
      // Tag the rank thread so obs spans recorded anywhere below fn —
      // including backend streams it creates — carry the world rank.
      obs::set_thread_rank(r);
      try {
        Comm comm(&world, r);
        fn(comm);
      } catch (...) {
        errors[static_cast<size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  {
    std::lock_guard<std::mutex> lock(g_last_stats_mu);
    g_last_stats = world.take_stats();
  }
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

const std::vector<CommStats>& last_run_stats() { return g_last_stats; }

}  // namespace ptim::ptmpi
