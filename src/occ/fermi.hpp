#pragma once
// Finite-temperature occupations: Fermi–Dirac smearing with chemical
// potential found by bisection. Occupations are per spatial orbital in
// [0, 1]; the spin factor 2 enters the electron count and density.
// The paper initializes its mixed states this way (T = 8000 K).

#include <vector>

#include "common/types.hpp"

namespace ptim::occ {

// f(eps) = 1 / (1 + exp((eps - mu)/kT)); kT in Hartree.
real_t fermi_dirac(real_t eps, real_t mu, real_t kt);

// Find mu such that 2 * sum_i f(eps_i) = nelec. kT <= 0 returns the
// zero-temperature limit (mu mid-gap, reproducing step occupations);
// electron counts no arrangement of occupations can bracket — a
// degenerate level straddling the Fermi energy at kT = 0, or a
// non-bracketable count after bisection-bracket expansion — throw a
// descriptive ptim::Error.
real_t find_mu(const std::vector<real_t>& eps, real_t nelec, real_t kt);

// Occupation vector for the given eigenvalues.
std::vector<real_t> occupations(const std::vector<real_t>& eps, real_t mu,
                                real_t kt);

// Electronic entropy -2 kT sum_i [f ln f + (1-f) ln(1-f)] (Hartree).
real_t entropy_term(const std::vector<real_t>& occ, real_t kt);

}  // namespace ptim::occ
