#include "occ/fermi.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"

namespace ptim::occ {

real_t fermi_dirac(real_t eps, real_t mu, real_t kt) {
  if (kt <= 0.0) return eps < mu ? 1.0 : (eps == mu ? 0.5 : 0.0);
  const real_t x = (eps - mu) / kt;
  if (x > 40.0) return 0.0;
  if (x < -40.0) return 1.0;
  return 1.0 / (1.0 + std::exp(x));
}

namespace {

// Zero-temperature limit: step occupations. At kT <= 0 fermi_dirac is the
// step 1 / 0.5 / 0 for eps below / at / above mu, so the possible counts
// are 2 * (#states below mu) + (#states at mu). Two placements exist:
//  * mu mid-gap — fully fills the lowest nelec/2 orbitals,
//  * mu ON a degenerate shell — every shell member at exactly 0.5, which
//    holds the count iff the remaining electrons equal the shell
//    multiplicity (this is also the kT -> 0+ limit of the smeared
//    occupations: a half-filled symmetric shell).
// Counts no placement can hold are reported instead of silently
// mis-occupied.
real_t find_mu_zero_t(const std::vector<real_t>& eps, real_t nelec) {
  std::vector<real_t> sorted = eps;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  const real_t ne2 = 0.5 * nelec;
  const auto nfull = static_cast<size_t>(ne2 + 1e-9);
  const real_t frac = ne2 - static_cast<real_t>(nfull);
  // Degeneracy tolerance: states closer than this are one shell.
  const real_t tol = 1e-10;

  if (std::abs(frac) < 1e-9) {  // integer orbital filling
    if (nfull == 0) return sorted.front() - 1.0;
    if (nfull == n) return sorted.back() + 1.0;
    if (sorted[nfull] - sorted[nfull - 1] > tol)
      return 0.5 * (sorted[nfull - 1] + sorted[nfull]);
    // No gap at the would-be Fermi energy: fall through to the shell case.
  }
  // mu sits on the shell containing sorted[nfull]: members occupy 0.5
  // each (fermi_dirac(eps == mu) — exact), states strictly below are
  // full.
  PTIM_CHECK_MSG(nfull < n, "find_mu: filling beyond the basis");
  const real_t level = sorted[nfull];
  size_t nbelow = 0, multiplicity = 0;
  for (const real_t e : sorted) {
    if (e < level - tol) ++nbelow;
    if (std::abs(e - level) <= tol) ++multiplicity;
  }
  const real_t in_shell = nelec - 2.0 * static_cast<real_t>(nbelow);
  if (std::abs(in_shell - static_cast<real_t>(multiplicity)) > 1e-9)
    throw Error(
        "find_mu: kT = 0 cannot represent " + std::to_string(nelec) +
        " electrons with step occupations — the degenerate Fermi-level "
        "shell at eps = " +
        std::to_string(level) + " (multiplicity " +
        std::to_string(multiplicity) + ", " +
        std::to_string(2 * nbelow) + " electrons below) would have to "
        "hold " +
        std::to_string(in_shell) + "; use kT > 0 (fractional smearing)");
  return level;
}

}  // namespace

real_t find_mu(const std::vector<real_t>& eps, real_t nelec, real_t kt) {
  PTIM_CHECK_MSG(!eps.empty(), "find_mu: no eigenvalues");
  PTIM_CHECK_MSG(nelec > 0.0 &&
                     nelec <= 2.0 * static_cast<real_t>(eps.size()) + 1e-9,
                 "find_mu: electron count " << nelec << " not representable by "
                                            << eps.size() << " orbitals");
  // kT -> 0: bisection degenerates (the counting function is a staircase);
  // return the chemical potential that reproduces the zero-temperature
  // step occupations directly.
  if (kt <= 0.0) return find_mu_zero_t(eps, nelec);

  auto count = [&](real_t mu) {
    real_t n = 0.0;
    for (const real_t e : eps) n += 2.0 * fermi_dirac(e, mu, kt);
    return n;
  };
  const real_t nmax = 2.0 * static_cast<real_t>(eps.size());
  // Completely filled (or asymptotically filled) spectra never bracket:
  // count(mu) < nelec for every finite mu. Saturate explicitly.
  if (nelec >= nmax - 1e-9)
    return *std::max_element(eps.begin(), eps.end()) + 40.0 * kt;

  real_t lo = *std::min_element(eps.begin(), eps.end()) - 10.0 * (kt + 1.0);
  real_t hi = *std::max_element(eps.begin(), eps.end()) + 10.0 * (kt + 1.0);
  // Verify (and if needed expand) the bracket before bisecting — degenerate
  // spectra with very small kT make count() extremely steep, and a bad
  // bracket would silently converge to a wrong edge.
  real_t width = hi - lo;
  for (int grow = 0; count(lo) > nelec && grow < 60; ++grow, width *= 2.0)
    lo -= width;
  for (int grow = 0; count(hi) < nelec && grow < 60; ++grow, width *= 2.0)
    hi += width;
  if (count(lo) > nelec || count(hi) < nelec)
    throw Error("find_mu: electron count " + std::to_string(nelec) +
                " is unbracketable for this spectrum at kT = " +
                std::to_string(kt) + " Ha");
  for (int it = 0; it < 200; ++it) {
    const real_t mid = 0.5 * (lo + hi);
    if (count(mid) < nelec)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

std::vector<real_t> occupations(const std::vector<real_t>& eps, real_t mu,
                                real_t kt) {
  std::vector<real_t> f(eps.size());
  for (size_t i = 0; i < eps.size(); ++i) f[i] = fermi_dirac(eps[i], mu, kt);
  return f;
}

real_t entropy_term(const std::vector<real_t>& occ, real_t kt) {
  real_t s = 0.0;
  for (const real_t f : occ) {
    if (f > 1e-14 && f < 1.0 - 1e-14)
      s += f * std::log(f) + (1.0 - f) * std::log(1.0 - f);
  }
  return 2.0 * kt * s;  // note: this is -T*S with S the usual entropy
}

}  // namespace ptim::occ
