#include "occ/fermi.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptim::occ {

real_t fermi_dirac(real_t eps, real_t mu, real_t kt) {
  if (kt <= 0.0) return eps < mu ? 1.0 : (eps == mu ? 0.5 : 0.0);
  const real_t x = (eps - mu) / kt;
  if (x > 40.0) return 0.0;
  if (x < -40.0) return 1.0;
  return 1.0 / (1.0 + std::exp(x));
}

real_t find_mu(const std::vector<real_t>& eps, real_t nelec, real_t kt) {
  PTIM_CHECK_MSG(!eps.empty(), "find_mu: no eigenvalues");
  PTIM_CHECK_MSG(nelec > 0.0 &&
                     nelec <= 2.0 * static_cast<real_t>(eps.size()) + 1e-9,
                 "find_mu: electron count " << nelec << " not representable by "
                                            << eps.size() << " orbitals");
  auto count = [&](real_t mu) {
    real_t n = 0.0;
    for (const real_t e : eps) n += 2.0 * fermi_dirac(e, mu, kt);
    return n;
  };
  real_t lo = *std::min_element(eps.begin(), eps.end()) - 10.0 * (kt + 1.0);
  real_t hi = *std::max_element(eps.begin(), eps.end()) + 10.0 * (kt + 1.0);
  for (int it = 0; it < 200; ++it) {
    const real_t mid = 0.5 * (lo + hi);
    if (count(mid) < nelec)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

std::vector<real_t> occupations(const std::vector<real_t>& eps, real_t mu,
                                real_t kt) {
  std::vector<real_t> f(eps.size());
  for (size_t i = 0; i < eps.size(); ++i) f[i] = fermi_dirac(eps[i], mu, kt);
  return f;
}

real_t entropy_term(const std::vector<real_t>& occ, real_t kt) {
  real_t s = 0.0;
  for (const real_t f : occ) {
    if (f > 1e-14 && f < 1.0 - 1e-14)
      s += f * std::log(f) + (1.0 - f) * std::log(1.0 - f);
  }
  return 2.0 * kt * s;  // note: this is -T*S with S the usual entropy
}

}  // namespace ptim::occ
