#pragma once
// Wall-clock timing and a process-wide profiling registry.
//
// The registry mirrors what PWDFT's internal timers provide: named sections
// accumulate (count, seconds); benches read them back to print per-stage
// breakdowns (e.g. Fock exchange vs density vs mixing, or per-MPI-op time
// for the Table I reproduction).
//
// Since the obs subsystem landed, the registry is a thin string-keyed
// facade over obs interned-id accumulation (obs::profile_*): the
// per-call map lookup the old implementation paid in every ScopedTimer
// destructor is now a one-time intern per call site plus a vector-slot
// add. Existing string tags ("isdf.fit", ...) keep working unchanged,
// and every ScopedTimer section doubles as an obs trace span when
// tracing is enabled, so timed sections appear in exported timelines.

#include <chrono>
#include <map>
#include <string>

#include "obs/obs.hpp"

namespace ptim {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

struct ProfileEntry {
  long count = 0;
  double seconds = 0.0;
};

// Thread-safe accumulation of named timing sections (obs-backed).
class ProfileRegistry {
 public:
  static ProfileRegistry& instance();

  void add(const std::string& name, double seconds);
  void add(uint32_t name_id, double seconds);
  ProfileEntry get(const std::string& name) const;
  std::map<std::string, ProfileEntry> snapshot() const;
  void clear();
};

// RAII section timer: accumulates into the registry on destruction and,
// when tracing is enabled, records the section as a trace span. Hot call
// sites should pre-intern (static const uint32_t id = obs::intern("x"))
// and use the id overload; the string overload interns per construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(const std::string& name,
                       obs::Cat cat = obs::Cat::kCompute)
      : ScopedTimer(obs::intern(name), cat) {}
  explicit ScopedTimer(uint32_t name_id, obs::Cat cat = obs::Cat::kCompute)
      : name_id_(name_id), cat_(cat) {
    if (obs::enabled()) t0_ns_ = obs::now_ns();
  }
  ~ScopedTimer() {
    obs::profile_add(name_id_, timer_.seconds());
    if (t0_ns_ != 0) obs::record_span(name_id_, cat_, t0_ns_, obs::now_ns());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  uint32_t name_id_;
  obs::Cat cat_;
  uint64_t t0_ns_ = 0;
  Timer timer_;
};

}  // namespace ptim
