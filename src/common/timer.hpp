#pragma once
// Wall-clock timing and a process-wide profiling registry.
//
// The registry mirrors what PWDFT's internal timers provide: named sections
// accumulate (count, seconds); benches read them back to print per-stage
// breakdowns (e.g. Fock exchange vs density vs mixing, or per-MPI-op time
// for the Table I reproduction).

#include <chrono>
#include <map>
#include <mutex>
#include <string>

namespace ptim {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

struct ProfileEntry {
  long count = 0;
  double seconds = 0.0;
};

// Thread-safe accumulation of named timing sections.
class ProfileRegistry {
 public:
  static ProfileRegistry& instance();

  void add(const std::string& name, double seconds);
  ProfileEntry get(const std::string& name) const;
  std::map<std::string, ProfileEntry> snapshot() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, ProfileEntry> entries_;
};

// RAII section timer: accumulates into the registry on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name) : name_(std::move(name)) {}
  ~ScopedTimer() { ProfileRegistry::instance().add(name_, timer_.seconds()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  Timer timer_;
};

}  // namespace ptim
