#pragma once
// Fundamental scalar types and physical constants (Hartree atomic units).
//
// Everything in the library is expressed in Hartree atomic units:
//   hbar = m_e = e = 1,  energies in Hartree, lengths in bohr,
//   time in hbar/Hartree (1 a.u. of time = 24.18884 attoseconds).

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ptim {

using real_t = double;
using cplx = std::complex<double>;
// Reduced-precision scalars for the FP32 exact-exchange pipeline: pair
// densities, their FFTs and the distributed ring payloads may be carried in
// single precision while every accumulation into wavefunctions stays FP64.
using realf_t = float;
using cplxf = std::complex<float>;
using std::size_t;

inline constexpr cplx I{0.0, 1.0};

// Precision policy for the exact-exchange hot path (ham::ExchangeOptions):
//   kDouble            — everything in FP64 (the reference),
//   kSingle            — FP32 pair FFTs/kernels/ring payloads, plain FP64
//                        accumulation of the exchange contribution,
//   kSingleCompensated — as kSingle with Kahan-compensated FP64 accumulation
//                        (guards very long source sums / large batches).
enum class Precision { kDouble, kSingle, kSingleCompensated };

inline const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kDouble: return "fp64";
    case Precision::kSingle: return "fp32";
    case Precision::kSingleCompensated: return "fp32k";
  }
  return "?";
}

namespace units {
// Time: 1 atomic unit of time in attoseconds / femtoseconds.
inline constexpr real_t au_time_as = 24.188843265857;
inline constexpr real_t au_time_fs = au_time_as * 1e-3;
// Length: 1 bohr in Angstrom and its inverse.
inline constexpr real_t bohr_in_angstrom = 0.529177210903;
inline constexpr real_t angstrom_in_bohr = 1.0 / bohr_in_angstrom;
// Energy: 1 Hartree in eV; Boltzmann constant in Hartree/K.
inline constexpr real_t hartree_in_ev = 27.211386245988;
inline constexpr real_t kboltz_ha_per_k = 3.166811563e-6;
// Photon energy (Hartree) of light with wavelength lambda (nm).
inline real_t photon_energy_ha(real_t lambda_nm) {
  return (1239.841984 / lambda_nm) / hartree_in_ev;
}
inline real_t fs_to_au(real_t t_fs) { return t_fs / au_time_fs; }
inline real_t as_to_au(real_t t_as) { return t_as / au_time_as; }
}  // namespace units

inline constexpr real_t kPi = 3.14159265358979323846;
inline constexpr real_t kTwoPi = 2.0 * kPi;
inline constexpr real_t kFourPi = 4.0 * kPi;

}  // namespace ptim
