#pragma once
// Deterministic pseudo-random numbers (xoshiro256**): used for reproducible
// initial wavefunction guesses and property-test inputs. We avoid
// std::mt19937 so that streams are identical across standard libraries.

#include <cstdint>

#include "common/types.hpp"

namespace ptim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t w = z;
      w = (w ^ (w >> 30)) * 0xbf58476d1ce4e5b9ull;
      w = (w ^ (w >> 27)) * 0x94d049bb133111ebull;
      s = w ^ (w >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  real_t uniform() {
    return static_cast<real_t>(next_u64() >> 11) * 0x1.0p-53;
  }
  // Uniform in [lo, hi).
  real_t uniform(real_t lo, real_t hi) { return lo + (hi - lo) * uniform(); }
  // Complex with independent uniform components in [-1, 1).
  cplx uniform_cplx() { return {uniform(-1.0, 1.0), uniform(-1.0, 1.0)}; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace ptim
