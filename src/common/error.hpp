#pragma once
// Error handling: a library-wide exception type plus check macros.
//
// Following the C++ Core Guidelines (E.2/E.3) the library reports violated
// preconditions and numerical failures by throwing; callers that cannot
// continue simply let the exception propagate to main.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ptim {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace ptim

// PTIM_CHECK(cond) / PTIM_CHECK_MSG(cond, "context"): always-on invariant
// checks on non-hot paths (argument validation, setup code).
#define PTIM_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::ptim::detail::throw_check_failure(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define PTIM_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream os_;                                                \
      os_ << msg;                                                            \
      ::ptim::detail::throw_check_failure(#cond, __FILE__, __LINE__,         \
                                          os_.str());                        \
    }                                                                        \
  } while (0)
