#include "common/timer.hpp"

namespace ptim {

ProfileRegistry& ProfileRegistry::instance() {
  static ProfileRegistry reg;
  return reg;
}

void ProfileRegistry::add(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& e = entries_[name];
  e.count += 1;
  e.seconds += seconds;
}

ProfileEntry ProfileRegistry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? ProfileEntry{} : it->second;
}

std::map<std::string, ProfileEntry> ProfileRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

void ProfileRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace ptim
