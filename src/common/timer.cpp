#include "common/timer.hpp"

namespace ptim {

ProfileRegistry& ProfileRegistry::instance() {
  static ProfileRegistry reg;
  return reg;
}

void ProfileRegistry::add(const std::string& name, double seconds) {
  obs::profile_add(obs::intern(name), seconds);
}

void ProfileRegistry::add(uint32_t name_id, double seconds) {
  obs::profile_add(name_id, seconds);
}

ProfileEntry ProfileRegistry::get(const std::string& name) const {
  const obs::ProfileSlot s = obs::profile_get(obs::intern(name));
  return ProfileEntry{s.count, s.seconds};
}

std::map<std::string, ProfileEntry> ProfileRegistry::snapshot() const {
  std::map<std::string, ProfileEntry> out;
  for (const auto& [name, slot] : obs::profile_snapshot())
    out.emplace(name, ProfileEntry{slot.count, slot.seconds});
  return out;
}

void ProfileRegistry::clear() { obs::profile_clear(); }

}  // namespace ptim
