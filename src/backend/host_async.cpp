#include "backend/host_async.hpp"

#include "common/error.hpp"

namespace ptim::backend {

Stream HostAsyncExecutor::create_stream(const std::string& name) {
  Stream s;
  s.state = std::make_shared<detail::StreamState>(name);
  s.name = name;
  return s;
}

void HostAsyncExecutor::launch(const Stream& s, std::function<void()> fn,
                               const char* name) {
  PTIM_CHECK_MSG(s.state, "HostAsync: launch on a null stream");
  note_launch(name);
  s.state->enqueue(std::move(fn));
}

Event HostAsyncExecutor::record(const Stream& s) {
  PTIM_CHECK_MSG(s.state, "HostAsync: record on a null stream");
  Event e;
  e.state = std::make_shared<detail::EventState>();
  // The signal runs in order after everything submitted so far.
  s.state->enqueue([state = e.state] { state->signal(); });
  return e;
}

void HostAsyncExecutor::stream_wait_event(const Stream& s, const Event& e) {
  PTIM_CHECK_MSG(s.state, "HostAsync: wait on a null stream");
  PTIM_CHECK_MSG(e.state, "HostAsync: wait on a null event");
  // The stream's worker blocks until the event signals; tasks enqueued
  // after this call therefore run only once the dependency resolved.
  s.state->enqueue([state = e.state] { state->wait(); });
}

void HostAsyncExecutor::synchronize(const Stream& s) {
  if (s.state) s.state->drain();
}

void HostAsyncExecutor::synchronize(const Event& e) {
  PTIM_CHECK_MSG(e.state, "HostAsync: synchronize on a null event");
  e.state->wait();
}

}  // namespace ptim::backend
