#pragma once
// HostSerial executor: the inline reference implementation. Every launch
// runs immediately on the enqueuing thread, so execution order equals
// submission order across ALL streams — the trivially deterministic
// baseline the HostAsync executor is tested bit-identical against.

#include "backend/executor.hpp"

namespace ptim::backend {

class HostSerialExecutor final : public Executor {
 public:
  Kind kind() const override { return Kind::kHostSerial; }
  Stream create_stream(const std::string& name) override;
  void launch(const Stream& s, std::function<void()> fn,
              const char* name) override;
  Event record(const Stream& s) override;
  void stream_wait_event(const Stream& s, const Event& e) override;
  void synchronize(const Stream& s) override;
  void synchronize(const Event& e) override;
};

}  // namespace ptim::backend
