#include "backend/kernels.hpp"

#include <algorithm>

namespace ptim::backend {

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry reg;
  return reg;
}

void KernelRegistry::add(KernelInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it =
      std::find_if(kernels_.begin(), kernels_.end(),
                   [&](const KernelInfo& k) { return k.name == info.name; });
  if (it == kernels_.end()) kernels_.push_back(std::move(info));
}

bool KernelRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(kernels_.begin(), kernels_.end(),
                     [&](const KernelInfo& k) { return k.name == name; });
}

std::vector<KernelInfo> KernelRegistry::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kernels_;
}

std::vector<KernelInfo> KernelRegistry::stage(const std::string& stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<KernelInfo> out;
  for (const auto& k : kernels_)
    if (k.stage == stage) out.push_back(k);
  return out;
}

void register_exchange_kernels() {
  static const bool once = [] {
    auto& reg = KernelRegistry::instance();
    for (const char* stage : {"pair_form", "fft_filter", "accumulate",
                              "accumulate_weighted", "apply_slab"}) {
      reg.add({detail::kernel_name(stage, "fp64"), stage, Precision::kDouble});
      reg.add({detail::kernel_name(stage, "fp32"), stage, Precision::kSingle});
    }
    // The gather-accumulate back to the sphere is FP64 in both pipelines.
    reg.add({"xchg.gather.fp64", "gather", Precision::kDouble});
    // The communication stage of the overlapped ring (dist/circulate): the
    // ptmpi transfer + waits posted on the comm stream.
    reg.add({"xchg.comm_round", "comm_round", Precision::kDouble});
    return true;
  }();
  (void)once;
}

template struct ExchangeKernels<cplx>;
template struct ExchangeKernels<cplxf>;

}  // namespace ptim::backend
