#pragma once
// Kernel registry + typed enqueue wrappers for the exact-exchange hot path.
//
// Each stage of the batched exchange pipeline — pair-form, forward/inverse
// batch FFT with the K(G) multiply (Fft3T<R> underneath), and the FP64
// gather-accumulate — is registered here as a named kernel in both FP64
// and FP32, and exposed as an enqueue wrapper that launches the stage on a
// backend stream. ExchangeOperator's own fused applies call the identical
// stage bodies, so composing the kernels on a stream reproduces the host
// apply bit for bit (pinned in test_backend).
//
// The registry is intentionally metadata-first: a real device backend
// would attach its compiled kernels to these same names; the host
// executors attach closures over the ExchangeOperator stage methods.

#include <string>
#include <type_traits>
#include <vector>

#include "backend/executor.hpp"
#include "ham/exchange.hpp"

namespace ptim::backend {

struct KernelInfo {
  std::string name;   // e.g. "xchg.pair_form.fp64"
  std::string stage;  // pair_form | fft_filter | accumulate |
                      // accumulate_weighted | gather | apply_slab
  Precision precision = Precision::kDouble;
};

class KernelRegistry {
 public:
  static KernelRegistry& instance();

  void add(KernelInfo info);  // idempotent by name
  bool has(const std::string& name) const;
  std::vector<KernelInfo> list() const;
  // All registered kernels of one stage (both precisions).
  std::vector<KernelInfo> stage(const std::string& stage) const;

 private:
  mutable std::mutex mu_;
  std::vector<KernelInfo> kernels_;
};

// Ensure the exchange hot-path kernels are registered (called lazily by
// the wrappers below; tests may call it directly before enumerating).
void register_exchange_kernels();

namespace detail {
template <typename CS>
constexpr const char* precision_suffix() {
  return std::is_same_v<CS, cplxf> ? "fp32" : "fp64";
}
inline std::string kernel_name(const char* stage, const char* suffix) {
  return std::string("xchg.") + stage + "." + suffix;
}
}  // namespace detail

// Typed enqueue API over the exchange stages, bound to one operator.
// CS = cplx selects the FP64 pipeline, cplxf the FP32 one. Every method is
// exactly one launch on `s`; pointers must stay valid until the stream is
// synchronized.
template <typename CS>
struct ExchangeKernels {
  const ham::ExchangeOperator* xop;

  explicit ExchangeKernels(const ham::ExchangeOperator& op) : xop(&op) {
    register_exchange_kernels();
  }

  void pair_form(Executor& ex, const Stream& s, const CS* src_real,
                 const size_t* idx, size_t nb, const CS* tgt_real,
                 CS* block) const {
    const auto name =
        detail::kernel_name("pair_form", detail::precision_suffix<CS>());
    ex.launch(
        s,
        [op = xop, src_real, idx, nb, tgt_real, block] {
          op->pair_form_block(src_real, idx, nb, tgt_real, block);
        },
        name.c_str());
  }

  void fft_filter(Executor& ex, const Stream& s, CS* block, size_t nb) const {
    const auto name =
        detail::kernel_name("fft_filter", detail::precision_suffix<CS>());
    ex.launch(
        s, [op = xop, block, nb] { op->kernel_filter_block(block, nb); },
        name.c_str());
  }

  void accumulate(Executor& ex, const Stream& s, const CS* src_real,
                  const size_t* idx, const real_t* d, size_t nb,
                  const CS* block, cplx* acc, cplx* comp) const {
    const auto name =
        detail::kernel_name("accumulate", detail::precision_suffix<CS>());
    ex.launch(
        s,
        [op = xop, src_real, idx, d, nb, block, acc, comp] {
          op->accumulate_block(src_real, idx, d, nb, block, acc, comp);
        },
        name.c_str());
  }

  void accumulate_weighted(Executor& ex, const Stream& s,
                           const CS* weight_real, const size_t* idx, size_t nb,
                           const CS* block, cplx* acc, cplx* comp) const {
    const auto name = detail::kernel_name("accumulate_weighted",
                                          detail::precision_suffix<CS>());
    ex.launch(
        s,
        [op = xop, weight_real, idx, nb, block, acc, comp] {
          op->accumulate_weighted_block(weight_real, idx, nb, block, acc,
                                        comp);
        },
        name.c_str());
  }

  // The gather back to the sphere stays FP64 in every precision mode.
  void gather(Executor& ex, const Stream& s, const cplx* acc, cplx* scratch,
              cplx* out_col) const {
    ex.launch(
        s,
        [op = xop, acc, scratch, out_col] {
          op->gather_accumulate(acc, scratch, out_col);
        },
        "xchg.gather.fp64");
  }
};

extern template struct ExchangeKernels<cplx>;
extern template struct ExchangeKernels<cplxf>;

}  // namespace ptim::backend
