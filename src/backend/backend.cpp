#include "backend/backend.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>

#include "backend/host_async.hpp"
#include "backend/host_serial.hpp"
#include "common/error.hpp"

namespace ptim::backend {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kSync: return "sync";
    case Kind::kHostSerial: return "serial";
    case Kind::kHostAsync: return "async";
  }
  return "?";
}

Kind default_kind() {
  // Read once: CI selects the executor default per process via PTIM_BACKEND
  // ("sync" | "serial" | "async"); unset means the production HostAsync.
  static const Kind kind = [] {
    const char* env = std::getenv("PTIM_BACKEND");
    if (!env || !*env) return Kind::kHostAsync;
    const std::string v(env);
    if (v == "sync") return Kind::kSync;
    if (v == "serial" || v == "host_serial") return Kind::kHostSerial;
    if (v == "async" || v == "host_async") return Kind::kHostAsync;
    throw Error("PTIM_BACKEND=\"" + v +
                "\" is not a backend (expected sync | serial | async)");
  }();
  return kind;
}

Executor& shared_executor(Kind k) {
  PTIM_CHECK_MSG(k != Kind::kSync,
                 "the sync path has no executor — it is the absence of one");
  static std::once_flag once_serial, once_async;
  static std::unique_ptr<Executor> serial, async;
  if (k == Kind::kHostSerial) {
    std::call_once(once_serial,
                   [] { serial = std::make_unique<HostSerialExecutor>(); });
    return *serial;
  }
  std::call_once(once_async,
                 [] { async = std::make_unique<HostAsyncExecutor>(); });
  return *async;
}

}  // namespace ptim::backend
