#pragma once
// Buffer<T> — typed device-style buffer with allocation accounting.
//
// On the host backends this is ordinary memory; a real GPU backend would
// back it with device allocations, which is exactly why the ring pipeline
// is required to hold a FIXED number of buffers per circulation (double
// buffering) instead of allocating per round — device allocation inside
// the hot loop would serialize the streams. The process-wide allocation
// counter makes that property testable: test_dist pins the per-circulation
// allocation count independent of rank count and round count.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

namespace ptim::backend {

namespace detail {
inline std::atomic<long>& buffer_alloc_counter() {
  static std::atomic<long> count{0};
  return count;
}
}  // namespace detail

// Number of Buffer allocations (ensure() calls that actually grew storage)
// since process start. Monotone; tests diff before/after.
inline long buffer_alloc_count() {
  return detail::buffer_alloc_counter().load(std::memory_order_relaxed);
}

template <typename T>
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(size_t n) { ensure(n); }

  // Grow to n zero-initialized elements; shrinking or same-size calls keep
  // the existing storage (and its contents) and do not count as
  // allocations.
  void ensure(size_t n) {
    if (n > data_.size()) {
      data_.assign(n, T{});
      detail::buffer_alloc_counter().fetch_add(1, std::memory_order_relaxed);
    }
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  size_t size() const { return data_.size(); }
  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  std::vector<T> data_;
};

}  // namespace ptim::backend
