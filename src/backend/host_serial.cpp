#include "backend/host_serial.hpp"

#include "common/error.hpp"

namespace ptim::backend {

Stream HostSerialExecutor::create_stream(const std::string& name) {
  Stream s;
  s.name = name;  // no worker: launches run inline on the calling thread
  return s;
}

void HostSerialExecutor::launch(const Stream& s, std::function<void()> fn,
                                const char* name) {
  (void)s;
  note_launch(name);
  fn();  // inline: exceptions propagate straight to the enqueuer
}

Event HostSerialExecutor::record(const Stream& s) {
  (void)s;
  Event e;
  e.state = std::make_shared<detail::EventState>();
  e.state->done = true;  // everything before this launch already ran inline
  return e;
}

void HostSerialExecutor::stream_wait_event(const Stream& s, const Event& e) {
  (void)s;
  // Inline execution means any event recorded by this executor has already
  // signaled; an unsignaled event here is a programming error (it could
  // only deadlock).
  PTIM_CHECK_MSG(e.state && e.state->is_done(),
                 "HostSerial: wait on an unsignaled event");
}

void HostSerialExecutor::synchronize(const Stream& s) { (void)s; }

void HostSerialExecutor::synchronize(const Event& e) {
  PTIM_CHECK_MSG(e.state && e.state->is_done(),
                 "HostSerial: wait on an unsignaled event");
}

}  // namespace ptim::backend
