#pragma once
// Stream / Event handles of the execution-backend subsystem.
//
// The model mirrors CUDA's queue semantics so a real GPU backend can plug
// in behind the same interface:
//  * a Stream is an in-order work queue — tasks launched on one stream run
//    in submission order; tasks on different streams may run concurrently,
//  * an Event marks a point in a stream; another stream (or the host) can
//    wait on it, which is the only cross-stream ordering primitive,
//  * handles are cheap shared references; destroying the last reference to
//    a HostAsync stream drains and joins its worker thread.

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/obs.hpp"

namespace ptim::backend {

namespace detail {

// Completion flag with host- and stream-visible waiting.
struct EventState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;

  void signal() {
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }
  bool is_done() {
    std::lock_guard<std::mutex> lock(mu);
    return done;
  }
};

// Worker-thread FIFO behind a HostAsync stream. HostSerial streams carry a
// null StreamState (nothing to run — launches execute inline).
class StreamState {
 public:
  explicit StreamState(std::string name) : name_(std::move(name)) {
    // The worker inherits the CREATING thread's obs rank (create_stream
    // runs on the rank thread) and uses the stream name as its trace
    // lane — that is what splits one rank's timeline into "xchg.compute"
    // vs "xchg.comm" lanes in the exported trace.
    const obs::ThreadTag creator = obs::thread_tag();
    const uint32_t lane = obs::intern(name_);
    worker_ = std::thread([this, creator, lane] {
      obs::set_thread_tag(obs::ThreadTag{creator.rank, lane});
      run();
    });
  }
  ~StreamState() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    worker_.join();
  }
  StreamState(const StreamState&) = delete;
  StreamState& operator=(const StreamState&) = delete;

  const std::string& name() const { return name_; }

  void enqueue(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(fn));
    }
    cv_work_.notify_one();
  }

  // Host-side wait until the queue is empty and the worker idle; rethrows
  // the first task exception recorded since the previous drain.
  void drain() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [&] { return queue_.empty() && !busy_; });
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_work_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      std::function<void()> task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
      lock.unlock();
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> g(mu_);
        if (!error_) error_ = std::current_exception();
      }
      lock.lock();
      busy_ = false;
      if (queue_.empty()) cv_idle_.notify_all();
    }
  }

  std::string name_;
  std::mutex mu_;
  std::condition_variable cv_work_, cv_idle_;
  std::deque<std::function<void()>> queue_;
  bool busy_ = false;
  bool stop_ = false;
  std::exception_ptr error_;
  std::thread worker_;
};

}  // namespace detail

// In-order work queue handle. state == nullptr for inline (HostSerial)
// streams.
struct Stream {
  std::shared_ptr<detail::StreamState> state;
  std::string name;
};

// Marker in a stream's task sequence. Always valid once returned from
// Executor::record (HostSerial events are born signaled).
struct Event {
  std::shared_ptr<detail::EventState> state;
};

}  // namespace ptim::backend
