#pragma once
// Executor — the device-execution interface of the backend subsystem.
//
// An Executor creates streams and enqueues named kernels on them; events
// provide cross-stream ordering (record on one stream, wait on another)
// and host synchronization. Two concrete executors exist:
//  * HostSerial (host_serial.cpp) — every launch runs inline at enqueue
//    time on the calling thread; the deterministic reference,
//  * HostAsync (host_async.cpp)   — one worker thread per stream with real
//    event dependencies, modeling a GPU queue on CPU. The overlapped ring
//    exchange (dist/circulate.hpp) is built on this.
//
// Launches are host closures standing in for device kernels; the kernel
// registry (backend/kernels.hpp) wraps the exchange hot-path stages behind
// this interface in both FP64 and FP32. Per-name launch counts are
// recorded so tests and benches can assert which kernels actually ran.

#include <map>
#include <mutex>
#include <string>

#include "backend/backend.hpp"
#include "backend/stream.hpp"

namespace ptim::backend {

class Executor {
 public:
  virtual ~Executor() = default;

  virtual Kind kind() const = 0;

  // New in-order work queue. HostAsync spawns a worker thread; release the
  // last Stream reference (or let it go out of scope) to join it.
  virtual Stream create_stream(const std::string& name) = 0;

  // Enqueue `fn` on `s` under kernel name `name`. Same-stream launches run
  // in submission order; cross-stream order only via events.
  virtual void launch(const Stream& s, std::function<void()> fn,
                      const char* name) = 0;

  // Marker after everything submitted to `s` so far.
  virtual Event record(const Stream& s) = 0;

  // All work submitted to `s` after this call runs only once `e` has
  // signaled (cudaStreamWaitEvent semantics).
  virtual void stream_wait_event(const Stream& s, const Event& e) = 0;

  // Host-side blocking waits. Stream synchronization rethrows the first
  // exception any task on the stream raised.
  virtual void synchronize(const Stream& s) = 0;
  virtual void synchronize(const Event& e) = 0;

  // --- launch accounting -------------------------------------------------
  long launch_count(const std::string& name) const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    const auto it = launches_.find(name);
    return it == launches_.end() ? 0 : it->second;
  }
  long total_launches() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    long n = 0;
    for (const auto& [k, v] : launches_) n += v;
    return n;
  }
  void reset_launch_stats() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    launches_.clear();
  }

 protected:
  void note_launch(const char* name) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++launches_[name];
  }

 private:
  mutable std::mutex stats_mu_;
  std::map<std::string, long> launches_;
};

}  // namespace ptim::backend
