#pragma once
// HostAsync executor: a worker-thread stream executor with real event
// dependencies, modeling a GPU queue on CPU. Each stream owns one worker
// thread draining an in-order FIFO; stream_wait_event enqueues a blocking
// wait task, so cross-stream dependencies behave exactly like
// cudaStreamWaitEvent. This is what lets the distributed ring overlap the
// wire transfer of slab k+1 with the pair-FFT compute of slab k.

#include "backend/executor.hpp"

namespace ptim::backend {

class HostAsyncExecutor final : public Executor {
 public:
  Kind kind() const override { return Kind::kHostAsync; }
  Stream create_stream(const std::string& name) override;
  void launch(const Stream& s, std::function<void()> fn,
              const char* name) override;
  Event record(const Stream& s) override;
  void stream_wait_event(const Stream& s, const Event& e) override;
  void synchronize(const Stream& s) override;
  void synchronize(const Event& e) override;
};

}  // namespace ptim::backend
