#pragma once
// Execution-backend selection for the exact-exchange hot path.
//
// The paper's ARM/GPU port expresses the exchange pipeline as asynchronous
// kernel launches on streams so that ring communication of wavefunction
// slabs overlaps the pair-density FFT/K(G) compute of the previous slab.
// This header is the lightweight knob other layers thread through their
// options structs; the execution model itself lives in stream.hpp /
// executor.hpp and the concrete executors in host_serial.cpp /
// host_async.cpp.
//
//   kSync       — the legacy host-synchronous path: no executor, every
//                 kernel is a blocking host call (the pre-backend code).
//   kHostSerial — reference executor: launches run inline at enqueue time,
//                 trivially deterministic, zero threads.
//   kHostAsync  — worker-thread stream executor with real event
//                 dependencies, modeling a GPU queue on CPU. This is the
//                 production default: the distributed ring double-buffers
//                 slabs so the wire transfer of slab k+1 overlaps the
//                 compute of slab k.
//
// All three produce bit-identical results (pinned by test_backend): the
// compute stream serializes the per-slab applies in the same round order
// the synchronous path uses.

namespace ptim::backend {

enum class Kind { kSync, kHostSerial, kHostAsync };

const char* kind_name(Kind k);

// Process default, read once from the PTIM_BACKEND environment variable:
// "sync" | "serial" | "async" (unset = async). CI runs the backend test
// label under both executor defaults this way.
Kind default_kind();

class Executor;

// Lazily constructed process-wide executor per kind (kSync has none —
// asking for it throws). Thread-safe; streams created from it are
// independent, so concurrent ptmpi ranks can share one instance.
Executor& shared_executor(Kind k);

}  // namespace ptim::backend
