#pragma once
// Trajectory-batch job driver: the production workload is not one
// trajectory but many (absorption spectra under different kicks, laser
// scans, pump-probe ensembles) replayed over ONE prepared ground state.
// EnsembleDriver takes N perturbation/laser specs, propagates them in
// lockstep batches, and amortizes the expensive machinery across the
// batch:
//
//  * the FFT plans and grids are the Simulation's, shared by every job;
//  * each batch slot's Hamiltonian is pooled and reused across batches;
//  * the ACE builds — the exchange hot path — run through
//    ExchangeOperator::apply_diag_packed, which concatenates every
//    in-flight trajectory's pair-density blocks into shared batched FFTs
//    (driven by the PtImPropagator staged-step protocol).
//
// Per-job results are BITWISE identical to N independent serial runs: the
// staged protocol replays step() exactly and the packed exchange is
// bitwise per job (see td/ptim.hpp and ham/exchange.hpp).
//
//   core::EnsembleDriver ens(sim, cfg);
//   for (auto& p : pulses) ens.submit({name, p, {}});
//   ens.set_measurements(proto);           // cloned into every job
//   auto results = ens.run_all();          // one batch per batch_width jobs

#include <optional>
#include <string>
#include <vector>

#include "core/simulation.hpp"

namespace ptim::core {

struct EnsembleJob {
  std::string name;
  // Per-job laser, envelope placed against the run's horizon (the lazy
  // placement RunConfig enables). Unset = no field.
  std::optional<td::LaserParams> laser;
  // Delta-kick vector potential applied at t = 0 (absorption spectra).
  grid::Vec3 kick{0.0, 0.0, 0.0};
  // Optional replacement initial state; unset = the shared ground state.
  std::optional<td::TdState> initial;
};

struct EnsembleJobResult {
  std::string name;
  td::TdState final_state;
  MeasurementSet measurements;
  std::vector<td::PtImStepStats> steps;
};

class EnsembleDriver {
 public:
  // The Simulation must have its ground state prepared before run_all.
  // Ensemble batching is defined for serial per-trajectory propagation
  // (cfg.nranks == 1); the exchange packing needs cfg's variant to be kAce
  // + hybrid, anything else falls back to unbatched stepping.
  EnsembleDriver(Simulation& sim, RunConfig cfg);

  void submit(EnsembleJob job);
  size_t pending() const { return jobs_.size(); }
  const RunConfig& config() const { return cfg_; }

  // Measurement prototype cloned into every job (probe set + empty
  // series).
  void set_measurements(MeasurementSet proto) { proto_ = std::move(proto); }

  // Propagate every submitted job, batch_width trajectories in lockstep
  // per batch (0 = all pending jobs in one batch; 1 = the one-at-a-time
  // baseline bench_throughput compares against). Drains the queue one
  // batch at a time: a job is removed only after its batch completed, so
  // an exception mid-campaign leaves the failing batch and every unrun
  // job submitted (pending() reports them; a later run_all retries them).
  std::vector<EnsembleJobResult> run_all(size_t batch_width = 0);

 private:
  std::vector<EnsembleJobResult> run_batch(const EnsembleJob* batch,
                                           size_t n);

  Simulation* sim_;
  RunConfig cfg_;
  MeasurementSet proto_;
  std::vector<EnsembleJob> jobs_;
  // Pooled per-slot Hamiltonians, reused across batches (construction —
  // structure factors, local potential tables, kernel tables — is paid
  // once per slot, not once per trajectory).
  std::vector<std::unique_ptr<ham::Hamiltonian>> pool_;
};

}  // namespace ptim::core
