#include "core/campaign.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "backend/buffer.hpp"
#include "common/error.hpp"
#include "ham/density.hpp"
#include "obs/obs.hpp"
#include "obs/step_report.hpp"

namespace ptim::core {

namespace {

// --- campaign_meta blob --------------------------------------------------
// The measurement series recorded so far, serialized into the checkpoint's
// opaque metadata block (see io/checkpoint.hpp):
//   u64 version (1), u64 nseries,
//   per series: u64 name_len, name bytes, u64 count, count x f64.
// Raw IEEE-754 doubles, so restore -> replay is bitwise.

constexpr uint64_t kMetaVersion = 1;

void append_bytes(std::vector<uint8_t>& out, const void* p, size_t n) {
  const auto* b = static_cast<const uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

template <class T>
void append_pod(std::vector<uint8_t>& out, const T& v) {
  append_bytes(out, &v, sizeof(T));
}

std::vector<uint8_t> serialize_series(const MeasurementSet& m) {
  std::vector<uint8_t> out;
  const std::vector<std::string> names = m.names();
  append_pod<uint64_t>(out, kMetaVersion);
  append_pod<uint64_t>(out, names.size());
  for (const std::string& name : names) {
    append_pod<uint64_t>(out, name.size());
    append_bytes(out, name.data(), name.size());
    const std::vector<real_t>& s = m.series(name);
    append_pod<uint64_t>(out, s.size());
    append_bytes(out, s.data(), s.size() * sizeof(real_t));
  }
  return out;
}

std::map<std::string, std::vector<real_t>> parse_series(
    const std::vector<uint8_t>& meta) {
  std::map<std::string, std::vector<real_t>> out;
  if (meta.empty()) return out;  // ckpt_0: nothing recorded yet
  size_t pos = 0;
  const auto take = [&](void* p, size_t n) {
    PTIM_CHECK_MSG(pos + n <= meta.size(),
                   "campaign metadata blob truncated");
    std::memcpy(p, meta.data() + pos, n);
    pos += n;
  };
  uint64_t version = 0, nseries = 0;
  take(&version, sizeof(version));
  PTIM_CHECK_MSG(version == kMetaVersion,
                 "unsupported campaign metadata version " << version);
  take(&nseries, sizeof(nseries));
  for (uint64_t i = 0; i < nseries; ++i) {
    uint64_t name_len = 0, count = 0;
    take(&name_len, sizeof(name_len));
    PTIM_CHECK_MSG(name_len < (1ull << 16),
                   "campaign metadata: implausible series name length");
    std::string name(name_len, '\0');
    if (name_len) take(name.data(), name_len);
    take(&count, sizeof(count));
    PTIM_CHECK_MSG(count < (1ull << 32),
                   "campaign metadata: implausible series length");
    std::vector<real_t> vals(count);
    if (count) take(vals.data(), count * sizeof(real_t));
    out.emplace(std::move(name), std::move(vals));
  }
  return out;
}

void restore_into(MeasurementSet& m,
                  const std::map<std::string, std::vector<real_t>>& series) {
  // Only names the prototype registers are restored; extra serialized
  // series (a probe set that shrank between runs) are ignored.
  for (const auto& [name, vals] : series)
    if (m.has(name)) m.restore_series(name, vals);
}

std::string single_line(const char* what) {
  std::string s = what ? what : "unknown error";
  std::replace(s.begin(), s.end(), '\n', ' ');
  return s;
}

std::string ckpt_path(const std::string& job_dir, uint64_t step) {
  return job_dir + "/ckpt_" + std::to_string(step) + ".ckpt";
}

// Counter snapshot for the per-step metrics sampler (cfg.metrics_path acts
// as the enable switch; each job appends to <job_dir>/metrics.jsonl).
obs::StepCounters job_counters(const ham::Hamiltonian& h, ptmpi::Comm& c) {
  obs::StepCounters sc;
  sc.ffts = h.exchange_op().fft_count.load(std::memory_order_relaxed);
  sc.alloc_count = backend::buffer_alloc_count();
  sc.isdf_fit_seconds = obs::profile_get(obs::intern("isdf.fit")).seconds +
                        obs::profile_get(obs::intern("isdf.fit_dist")).seconds;
  sc.comm = c.stats().snapshot();
  return sc;
}

// ckpt_<step>.ckpt names in `dir`, step-descending. Anything else — in
// particular torn ".tmp" staging files — never matches, so a checkpoint
// interrupted mid-write can never be SELECTED for resume in the first
// place (and one torn mid-RENAME still fails the checksum and falls
// through to the previous valid file).
std::vector<std::pair<uint64_t, std::string>> list_checkpoints(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  for (const std::string& name : io::list_dir(dir)) {
    if (name.rfind("ckpt_", 0) != 0) continue;
    const size_t dot = name.rfind(".ckpt");
    if (dot == std::string::npos || dot + 5 != name.size()) continue;
    const std::string digits = name.substr(5, dot - 5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    out.emplace_back(std::strtoull(digits.c_str(), nullptr, 10),
                     dir + "/" + name);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

}  // namespace

EnsembleCampaign::EnsembleCampaign(Simulation& sim, RunConfig cfg,
                                   CampaignOptions opt)
    : sim_(&sim), cfg_(std::move(cfg)), opt_(std::move(opt)),
      queue_(opt_.dir) {
  PTIM_CHECK_MSG(cfg_.steps > 0, "EnsembleCampaign: cfg.steps must be > 0");
  PTIM_CHECK_MSG(opt_.nworkers >= 1,
                 "EnsembleCampaign: nworkers must be >= 1");
}

uint64_t EnsembleCampaign::job_hash(const io::JobSpec& spec) const {
  // The Simulation-level hash (physics config + system dims + any
  // Simulation-attached laser) chained with the job's own perturbation:
  // two jobs of one campaign differing only in kick or laser get distinct
  // bindings, and a resume under drifted physics is rejected per job.
  uint64_t h = sim_->config_hash(cfg_);
  const auto mix = [&h](const auto& v) { h = io::fnv1a(&v, sizeof(v), h); };
  mix(spec.t_horizon);
  for (int d = 0; d < 3; ++d) mix(spec.kick[d]);
  mix(spec.has_laser);
  if (spec.has_laser) {
    mix(spec.laser.e0);
    mix(spec.laser.wavelength_nm);
    mix(spec.laser.t_center);
    mix(spec.laser.t_width);
    for (int d = 0; d < 3; ++d) mix(spec.laser.polarization[d]);
  }
  return h;
}

int EnsembleCampaign::submit(const CampaignJob& job) {
  td::TdState s0 = job.initial ? *job.initial : sim_->initial_state();
  io::JobSpec spec;
  spec.name = job.name;
  spec.steps = cfg_.steps;
  // Resolve the lazy laser horizon NOW and persist it: a resumed segment
  // must place the envelope against the same end time as the original
  // launch, not against its own (later) start time.
  spec.t_horizon = cfg_.horizon(s0.time);
  spec.kick = job.kick;
  spec.has_laser = job.laser.has_value();
  if (job.laser) spec.laser = *job.laser;
  spec.config_hash = job_hash(spec);
  const int id = queue_.submit(spec);
  // ckpt_0 carries the initial state with the kick as its starting vector
  // potential, so resume-from-step-k and start-from-scratch run the SAME
  // code: restore the newest valid checkpoint and step forward.
  io::Checkpoint ck;
  ck.state = std::move(s0);
  ck.step_index = 0;
  ck.config_hash = spec.config_hash;
  ck.avec = job.kick;
  io::save_checkpoint(ckpt_path(queue_.job_dir(id), 0), ck);
  return id;
}

size_t EnsembleCampaign::pending() const {
  size_t n = 0;
  for (const auto& r : queue_.records())
    if (r.status.state == io::JobState::kPending ||
        r.status.state == io::JobState::kRunning)
      ++n;
  return n;
}

bool EnsembleCampaign::load_latest_valid(const std::string& job_dir,
                                         uint64_t hash,
                                         io::Checkpoint* out) const {
  for (const auto& [step, path] : list_checkpoints(job_dir)) {
    try {
      *out = io::load_checkpoint(path, hash);
      return true;
    } catch (const Error&) {
      // Corrupt/truncated/foreign checkpoint: fall back to the next-older
      // candidate. ckpt_0 (written at submit) is the floor.
    }
  }
  return false;
}

void EnsembleCampaign::run_job(ptmpi::Comm& group, int id) {
  const io::JobSpec spec = queue_.record(id).spec;  // copy: status moves
  const std::string job_dir = queue_.job_dir(id);
  const bool leader = group.rank() == 0;
  const int g = group.size();

  // Bind the resume to the CURRENT configuration, not the hash stored in
  // the spec file: job_hash() chains cfg_'s physics with the spec's own
  // perturbation, so a campaign reopened under drifted physics finds no
  // valid checkpoint (refused resume) instead of silently propagating a
  // different trajectory. spec.config_hash is the submit-time record of
  // the same binding; the two agree whenever the config is unchanged.
  const uint64_t bind = job_hash(spec);
  // Every rank of the group resolves the resume point independently: the
  // scan is deterministic, so all ranks restore the same checkpoint.
  io::Checkpoint ck;
  PTIM_CHECK_MSG(load_latest_valid(job_dir, bind, &ck),
                 "job '" << spec.name << "': no valid checkpoint in "
                         << job_dir);
  uint64_t done = ck.step_index;
  const auto total = static_cast<uint64_t>(spec.steps);
  if (done > 0) OBS_MARK("campaign.resume", obs::Cat::kIo);

  if (leader) {
    io::JobStatus st;
    st.state = done >= total ? io::JobState::kDone : io::JobState::kRunning;
    st.steps_done = done;
    queue_.update_status(id, st);
  }
  if (done >= total) return;  // finished before the last status write

  // Job-local machinery: per-group Hamiltonian (carries the restored
  // vector potential — kick or mid-pulse laser phase) and the envelope
  // placed against the horizon persisted at submit.
  std::unique_ptr<ham::Hamiltonian> h =
      opt_.ham_factory ? opt_.ham_factory() : sim_->make_rank_hamiltonian();
  h->set_vector_potential(ck.avec);
  std::unique_ptr<td::LaserPulse> laser;
  if (spec.has_laser)
    laser = std::make_unique<td::LaserPulse>(spec.laser, spec.t_horizon);

  MeasurementSet m = proto_;
  restore_into(m, parse_series(ck.campaign_meta));

  const auto due = [this, total](uint64_t k) {
    // Final step always persisted: collect() reads results from it.
    return k == total ||
           (cfg_.checkpoint_every > 0 &&
            k % static_cast<uint64_t>(cfg_.checkpoint_every) == 0);
  };
  // Per-job metrics: one JSONL file beside the job's checkpoints, written
  // by the group leader in append mode — a killed-and-resumed job keeps
  // appending to the same file (readers dedupe by (job_id, rank, step),
  // keeping the last line, since resume rewinds to the newest checkpoint
  // and re-emits the replayed steps).
  std::unique_ptr<obs::MetricsSink> msink;
  obs::StepSampler msampler;
  if (leader && !cfg_.metrics_path.empty())
    msink = std::make_unique<obs::MetricsSink>(job_dir + "/metrics.jsonl");

  const auto persist = [&](const td::TdState& full) {
    OBS_SPAN("campaign.checkpoint", obs::Cat::kIo);
    io::Checkpoint out;
    out.state = full;
    out.step_index = done;
    out.config_hash = bind;
    out.avec = h->vector_potential();
    out.campaign_meta = serialize_series(m);
    io::save_checkpoint(ckpt_path(job_dir, done), out);
    io::JobStatus st;
    st.state = done >= total ? io::JobState::kDone : io::JobState::kRunning;
    st.steps_done = done;
    queue_.update_status(id, st);
  };

  if (g == 1) {
    td::TdState s = std::move(ck.state);
    td::PtImPropagator prop(*h, cfg_.ptim(), laser.get());
    std::vector<real_t> rho;
    if (msink) msampler.begin(job_counters(*h, group));
    while (done < total) {
      const td::PtImStepStats st = prop.step(s);
      ++done;
      if (msink) {
        obs::StepReport r = msampler.end(job_counters(*h, group));
        r.job_id = id;
        r.rank = group.rank();
        r.step = static_cast<long>(done);
        r.scf_iterations = st.scf_iterations;
        r.outer_iterations = st.outer_iterations;
        r.exchange_applications = st.exchange_applications;
        r.residual = st.residual;
        r.converged = st.converged ? 1 : 0;
        msink->write(r);
        msampler.begin(job_counters(*h, group));
      }
      rho = ham::density_sigma(s.phi, s.sigma, h->den_map());
      MeasureContext ctx;
      ctx.rho = &rho;
      ctx.phi = &s.phi;
      ctx.sigma = &s.sigma;
      ctx.time = s.time;
      ctx.step = static_cast<int>(done) - 1;
      m.record(ctx);
      if (due(done)) persist(s);
      if (opt_.fault_hook) opt_.fault_hook(id, done);
    }
    return;
  }

  // Distributed trajectory: the same band/grid path Simulation::run uses,
  // over this group's subcommunicator. Dimensions come from the
  // CHECKPOINT (jobs may carry states of a different system than the
  // Simulation — the ham_factory seam).
  const size_t nb = ck.state.phi.cols();
  const dist::ProcessGrid pgrid = cfg_.process_grid;
  const int pb = pgrid.resolve_pb(g);
  const dist::BlockLayout bands(nb, pb);
  dist::BandDistributedHamiltonian bdh(group, *h, nb, cfg_.band());
  td::DistTdState s =
      td::scatter_state(ck.state, bands, pgrid.band_rank_of(group.rank()));
  td::DistPtImPropagator prop(bdh, cfg_.ptim(), laser.get());
  const bool want_phi = m.needs_phi();
  if (msink) msampler.begin(job_counters(*h, group));
  while (done < total) {
    const td::PtImStepStats st = prop.step(s);
    ++done;
    if (msink) {
      // Leader-only rows: the leader's own comm/FFT deltas stand in for
      // the group (band work is balanced by construction).
      obs::StepReport r = msampler.end(job_counters(*h, group));
      r.job_id = id;
      r.rank = group.rank();
      r.step = static_cast<long>(done);
      r.scf_iterations = st.scf_iterations;
      r.outer_iterations = st.outer_iterations;
      r.exchange_applications = st.exchange_applications;
      r.residual = st.residual;
      r.converged = st.converged ? 1 : 0;
      msink->write(r);
      msampler.begin(job_counters(*h, group));
    }
    const std::vector<real_t> rho = bdh.density(s.phi_local, s.sigma);
    // gather_state is collective over the band communicator (every grid
    // column gathers redundantly); the leader holds band rank 0's copy.
    td::TdState full;
    if (want_phi || due(done)) full = td::gather_state(bdh.comm(), s, bands);
    if (leader) {
      MeasureContext ctx;
      ctx.rho = &rho;
      ctx.phi = want_phi ? &full.phi : nullptr;
      ctx.sigma = &s.sigma;
      ctx.time = s.time;
      ctx.step = static_cast<int>(done) - 1;
      m.record(ctx);
      if (due(done)) persist(full);
    }
    // All ranks hit the fault hook at the same collective-free point, so a
    // simulated crash unwinds the WHOLE group (no peer is left blocked in
    // a collective the dead rank will never join).
    if (opt_.fault_hook) opt_.fault_hook(id, done);
  }
}

void EnsembleCampaign::run() {
  std::vector<int> runnable;
  for (const auto& r : queue_.records())
    if (r.status.state == io::JobState::kPending ||
        r.status.state == io::JobState::kRunning)
      runnable.push_back(r.id);
  if (runnable.empty()) return;

  const int g = std::max(cfg_.nranks, 1);
  const int nworkers = std::max(opt_.nworkers, 1);
  // One worker group per "node" so group-internal SHM staging (if enabled)
  // stays group-scoped.
  ptmpi::run_ranks(nworkers * g, g, [&](ptmpi::Comm& world) {
    ptmpi::Comm group = world.split(world.rank() / g, world.rank() % g);
    while (true) {
      // Idle-worker handoff: the group leader claims the next runnable
      // job off the shared cursor, then broadcasts the claim group-wide.
      long idx = 0;
      if (group.rank() == 0) idx = world.fetch_add("campaign.claim", 1);
      group.bcast(&idx, sizeof(idx), 0);
      if (idx >= static_cast<long>(runnable.size())) break;
      const int id = runnable[static_cast<size_t>(idx)];
      OBS_MARK("campaign.claim", obs::Cat::kIo);
      OBS_SPAN("campaign.run_job", obs::Cat::kIo);
      if (g == 1) {
        // Serial groups contain per-job failures: the job is marked
        // kFailed and the campaign moves on. CampaignKill is NOT an
        // Error and always propagates (simulated SIGKILL).
        try {
          run_job(group, id);
        } catch (const Error& e) {
          io::JobStatus st;
          st.state = io::JobState::kFailed;
          st.steps_done = queue_.record(id).status.steps_done;
          st.error = single_line(e.what());
          queue_.update_status(id, st);
        }
      } else {
        // Distributed groups let everything propagate: containing an
        // exception on ONE rank while its peers sit in collectives would
        // deadlock the group.
        run_job(group, id);
      }
    }
  });
}

std::vector<CampaignResult> EnsembleCampaign::collect() {
  std::vector<CampaignResult> out;
  for (const auto& r : queue_.records()) {
    if (r.status.state != io::JobState::kDone) continue;
    io::Checkpoint ck;
    PTIM_CHECK_MSG(
        load_latest_valid(queue_.job_dir(r.id), job_hash(r.spec), &ck),
        "job '" << r.spec.name << "' is done but has no valid checkpoint");
    CampaignResult res;
    res.id = r.id;
    res.name = r.spec.name;
    res.steps_done = ck.step_index;
    res.final_state = std::move(ck.state);
    res.measurements = proto_;
    restore_into(res.measurements, parse_series(ck.campaign_meta));
    out.push_back(std::move(res));
  }
  return out;
}

}  // namespace ptim::core
