#pragma once
// Crash-safe ensemble campaigns: a persistent submit/poll/collect front
// end (io::JobQueue) dispatching trajectory jobs across ptmpi ranks —
// trajectory-level parallelism layered ON TOP of the band/grid parallelism
// inside each trajectory. The campaign directory alone is the durable
// state: a process killed at ANY step can reopen the directory with a
// fresh EnsembleCampaign and run() resumes every in-flight job from its
// latest VALID checkpoint, replaying the uninterrupted trajectory
// bitwise (the fault-injection suite pins this against the committed
// golden fixture, serial and distributed).
//
//   core::EnsembleCampaign camp(sim, cfg, {.dir = "campaign"});
//   camp.set_measurements(proto);
//   camp.submit({"kick_x", std::nullopt, {1e-3, 0, 0}});
//   camp.run();                       // workers claim + propagate jobs
//   for (auto& r : camp.collect()) use(r.measurements, r.final_state);
//
// Execution model: run() launches nworkers rank-GROUPS of cfg.nranks ptmpi
// ranks each. Idle groups claim the next runnable job through a shared
// fetch_add cursor (Comm::fetch_add — the MPI_Fetch_and_op job-handoff
// idiom), the group leader broadcasts the claim, and the group propagates
// the job: serially for cfg.nranks == 1, else through the same
// BandDistributedHamiltonian / DistPtImPropagator path Simulation::run
// uses, over the group's split subcommunicator.
//
// Durability: every job writes ckpt_0 at submit and an io::Checkpoint
// (format v2) every cfg.checkpoint_every steps plus the final step, into
// <dir>/job_<id>/ckpt_<step>.ckpt. The measurement series recorded so far
// ride in the checkpoint's campaign_meta blob, so ONE atomic file carries
// everything a resume needs; saves are tmp + fsync + rename, so a torn
// write is never visible under a checkpoint name. Resume scans the job's
// checkpoints newest-first and takes the first one that validates
// (checksum + config hash) — a truncated or corrupted newest file falls
// back to the previous valid one.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/ensemble.hpp"
#include "core/simulation.hpp"
#include "io/job_queue.hpp"

namespace ptim::core {

// Thrown by a fault_hook to simulate a hard kill mid-campaign.
// Deliberately NOT a ptim::Error: the serial worker's per-job error
// containment (Error -> job marked failed) must never swallow a simulated
// crash — a kill aborts run() like a real SIGKILL would abort the process.
struct CampaignKill : std::runtime_error {
  explicit CampaignKill(const std::string& msg) : std::runtime_error(msg) {}
};

struct CampaignOptions {
  std::string dir;        // campaign directory (queue + checkpoints)
  int nworkers = 1;       // concurrent worker rank-groups
  // Override per-job Hamiltonian construction (default:
  // Simulation::make_rank_hamiltonian). The test harness injects the tiny
  // golden-fixture system here; jobs always carry their state explicitly
  // (ckpt_0), so the job's dimensions come from its checkpoint, not from
  // the Simulation.
  std::function<std::unique_ptr<ham::Hamiltonian>()> ham_factory;
  // Fault-injection seam: called on EVERY rank of the owning group after
  // each committed step (post-checkpoint, a collective-free point), with
  // the job id and the number of steps done. Throwing CampaignKill here
  // simulates a crash at exactly that step.
  std::function<void(int job_id, uint64_t steps_done)> fault_hook;
};

// One ensemble trajectory job (mirrors EnsembleJob: per-job laser, delta
// kick, optional replacement initial state).
struct CampaignJob {
  std::string name;
  std::optional<td::LaserParams> laser;
  grid::Vec3 kick{0.0, 0.0, 0.0};
  std::optional<td::TdState> initial;  // unset = the shared ground state
};

struct CampaignResult {
  int id = -1;
  std::string name;
  td::TdState final_state;
  MeasurementSet measurements;  // probe set + series restored from disk
  uint64_t steps_done = 0;
};

class EnsembleCampaign {
 public:
  // Opening an existing campaign directory restores the full queue from
  // disk: previously submitted jobs keep their ids, statuses and
  // checkpoint chains, so run() continues exactly where the killed
  // process stopped. cfg must describe the same physics the jobs were
  // submitted under (the per-job config hash rejects a drifted resume).
  // cfg.checkpoint_every sets the auto-checkpoint cadence (the final step
  // is always checkpointed — collect() reads results from checkpoints).
  EnsembleCampaign(Simulation& sim, RunConfig cfg, CampaignOptions opt);

  // Persist a new job: spec + pending status + its ckpt_0 (initial state,
  // kick as the starting vector potential). Returns the job id.
  int submit(const CampaignJob& job);

  // Measurement prototype cloned into every job. With nworkers > 1 the
  // clones record concurrently, so probes must be pure (the built-in
  // dipole/sigma probes are; Simulation::energy_probe mutates the shared
  // Hamiltonian and needs nworkers == 1).
  void set_measurements(MeasurementSet proto) { proto_ = std::move(proto); }

  // Current queue records (id, spec, last persisted status).
  const std::vector<io::JobRecord>& poll() const { return queue_.records(); }
  // Jobs still runnable (pending or in-flight from a killed process).
  size_t pending() const;

  // Propagate every runnable job to completion across the worker groups.
  // Serial groups contain per-job ptim::Error failures (job marked
  // kFailed, campaign continues); a CampaignKill always propagates.
  void run();

  // Results of every kDone job, reloaded from its final checkpoint (state
  // + measurement series) — valid in a fresh process with no run() call.
  std::vector<CampaignResult> collect();

  const io::JobQueue& queue() const { return queue_; }
  const RunConfig& config() const { return cfg_; }

 private:
  uint64_t job_hash(const io::JobSpec& spec) const;
  // Newest checkpoint in job_dir that validates against `hash` (checksum,
  // completeness, config binding); returns false if none do.
  bool load_latest_valid(const std::string& job_dir, uint64_t hash,
                         io::Checkpoint* out) const;
  // Propagate job `id` from its latest valid checkpoint to spec.steps on
  // this worker group (serial when group.size() == 1, else band/grid-
  // distributed). The group leader records measurements, saves
  // checkpoints and updates the status file.
  void run_job(ptmpi::Comm& group, int id);

  Simulation* sim_;
  RunConfig cfg_;
  CampaignOptions opt_;
  io::JobQueue queue_;
  MeasurementSet proto_;
};

}  // namespace ptim::core
