#pragma once
// User-facing driver: owns the cell, grids, Hamiltonian and ground state,
// and hands out propagators and observables. This is the API the examples
// and benches are written against.
//
//   core::SystemSpec spec;             // 1x1x1 Si cell, Ecut, T, laser...
//   core::Simulation sim(spec);
//   sim.prepare_ground_state();
//   auto state = sim.initial_state();
//   auto prop  = sim.make_ptim(ptim_options);
//   for (...) { prop->step(state); record(sim.dipole_x(state)); }

#include <memory>
#include <vector>

#include "dist/band_ham.hpp"
#include "grid/fft_grid.hpp"
#include "grid/gsphere.hpp"
#include "gs/scf.hpp"
#include "ham/hamiltonian.hpp"
#include "pseudo/atoms.hpp"
#include "ptmpi/comm.hpp"
#include "td/laser.hpp"
#include "td/ptim.hpp"
#include "td/ptim_dist.hpp"
#include "td/rk4.hpp"
#include "td/state.hpp"

namespace ptim::core {

struct SystemSpec {
  // Supercell repeats of the 8-atom conventional Si cell.
  int nx = 1, ny = 1, nz = 1;
  real_t ecut = 5.0;            // Hartree (paper: 10; tests use less)
  real_t temperature_k = 0.0;   // 0 = pure state; paper: 8000 K
  // Extra (unoccupied) states as a fraction of the atom count
  // (paper: 1.0 in accuracy tests, 0.5 elsewhere).
  real_t extra_states_per_atom = 0.5;
  ham::HamiltonianOptions ham;
  gs::ScfOptions scf;           // nbands/nelec filled in automatically
};

class Simulation {
 public:
  explicit Simulation(SystemSpec spec);

  // --- setup ----------------------------------------------------------
  const gs::ScfResult& prepare_ground_state();
  bool has_ground_state() const { return gs_done_; }
  const gs::ScfResult& ground_state() const;

  // Initial TD state: Phi from the ground state, sigma = diag(f_FD).
  td::TdState initial_state() const;

  // Attach a laser; t_max in a.u. determines the envelope placement.
  const td::LaserPulse* set_laser(td::LaserParams p, real_t t_max);
  const td::LaserPulse* laser() const { return laser_.get(); }

  // --- propagators ------------------------------------------------------
  std::unique_ptr<td::PtImPropagator> make_ptim(td::PtImOptions opt);
  std::unique_ptr<td::Rk4Propagator> make_rk4(td::Rk4Options opt);

  // --- precision policy -------------------------------------------------
  // Scalar type of the exact-exchange hot path (pair FFTs, distributed ring
  // payloads); the propagated trajectory stays FP64 in every mode. Applied
  // to the live Hamiltonian and recorded in the spec so per-rank
  // Hamiltonians of distributed runs inherit it.
  void set_exchange_precision(Precision p) {
    spec_.ham.exchange.precision = p;
    h_->set_exchange_precision(p);
  }
  Precision exchange_precision() const { return h_->exchange_precision(); }

  // Execution backend of the distributed exchange ring (backend/): kSync
  // legacy host path, kHostSerial inline streams, kHostAsync overlapped
  // compute/comm. Recorded in the spec so per-rank Hamiltonians inherit it.
  void set_exchange_backend(backend::Kind k) {
    spec_.ham.exchange.backend = k;
    h_->set_exchange_backend(k);
  }
  backend::Kind exchange_backend() const { return h_->exchange_backend(); }

  // --- band-parallel propagation ----------------------------------------
  // Fresh Hamiltonian over this simulation's (shared, read-only) grids and
  // atoms: each ptmpi rank of a distributed run needs its own instance
  // because the Hamiltonian carries mutable density/exchange state.
  std::unique_ptr<ham::Hamiltonian> make_rank_hamiltonian() const;

  struct DistRunOptions {
    int nranks = 2;
    int ranks_per_node = 1;
    int steps = 10;
    td::PtImOptions ptim;
    dist::BandHamOptions band;  // circulation pattern + SHM overlap staging
  };
  struct DistRunResult {
    td::TdState final_state;                // gathered full state
    std::vector<real_t> dipole;             // dipole_x after each step
    std::vector<td::PtImStepStats> steps;   // per-step solver statistics
    std::vector<ptmpi::CommStats> comm;     // per-rank measured comm table
  };
  // Launch an nranks-wide ptmpi world, band-distribute the initial state,
  // run `steps` PT-IM steps through dist::BandDistributedHamiltonian +
  // td::DistPtImPropagator, and gather the trajectory. Produces the same
  // trajectory as the serial make_ptim path (regression-tested to 1e-10).
  DistRunResult propagate_distributed(const DistRunOptions& opt);

  // --- observables ------------------------------------------------------
  std::vector<real_t> density(const td::TdState& s) const;
  real_t dipole(const td::TdState& s, const grid::Vec3& dir) const;
  real_t dipole_x(const td::TdState& s) const { return dipole(s, {1, 0, 0}); }
  ham::EnergyTerms energy(const td::TdState& s) const;

  // --- plumbing ----------------------------------------------------------
  const SystemSpec& spec() const { return spec_; }
  const grid::Lattice& lattice() const { return *lattice_; }
  const pseudo::AtomList& atoms() const { return atoms_; }
  const grid::GSphere& sphere() const { return *sphere_; }
  ham::Hamiltonian& hamiltonian() { return *h_; }
  const ham::Hamiltonian& hamiltonian() const { return *h_; }
  size_t natoms() const { return atoms_.natoms(); }
  size_t nbands() const { return nbands_; }
  real_t nelec() const { return nelec_; }

 private:
  SystemSpec spec_;
  std::unique_ptr<grid::Lattice> lattice_;
  pseudo::AtomList atoms_;
  std::unique_ptr<grid::GSphere> sphere_;
  std::unique_ptr<grid::FftGrid> wfc_grid_;
  std::unique_ptr<grid::FftGrid> den_grid_;
  std::unique_ptr<ham::Hamiltonian> h_;
  std::unique_ptr<td::LaserPulse> laser_;
  gs::ScfResult gs_;
  bool gs_done_ = false;
  size_t nbands_ = 0;
  real_t nelec_ = 0.0;
};

}  // namespace ptim::core
