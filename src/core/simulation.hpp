#pragma once
// User-facing driver: owns the cell, grids, Hamiltonian and ground state,
// and hands out propagators and observables. This is the API the examples
// and benches are written against.
//
//   core::SystemSpec spec;             // 1x1x1 Si cell, Ecut, T, laser...
//   core::Simulation sim(spec);
//   sim.prepare_ground_state();
//   auto state = sim.initial_state();
//   auto prop  = sim.make_ptim(ptim_options);
//   for (...) { prop->step(state); record(sim.dipole_x(state)); }

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/measurements.hpp"
#include "core/run_config.hpp"
#include "dist/band_ham.hpp"
#include "io/checkpoint.hpp"
#include "grid/fft_grid.hpp"
#include "grid/gsphere.hpp"
#include "gs/scf.hpp"
#include "ham/hamiltonian.hpp"
#include "pseudo/atoms.hpp"
#include "ptmpi/comm.hpp"
#include "td/laser.hpp"
#include "td/ptim.hpp"
#include "td/ptim_dist.hpp"
#include "td/rk4.hpp"
#include "td/state.hpp"

namespace ptim::core {

struct SystemSpec {
  // Supercell repeats of the 8-atom conventional Si cell.
  int nx = 1, ny = 1, nz = 1;
  real_t ecut = 5.0;            // Hartree (paper: 10; tests use less)
  real_t temperature_k = 0.0;   // 0 = pure state; paper: 8000 K
  // Extra (unoccupied) states as a fraction of the atom count
  // (paper: 1.0 in accuracy tests, 0.5 elsewhere).
  real_t extra_states_per_atom = 0.5;
  ham::HamiltonianOptions ham;
  gs::ScfOptions scf;           // nbands/nelec filled in automatically
};

class Simulation {
 public:
  explicit Simulation(SystemSpec spec);

  // --- setup ----------------------------------------------------------
  const gs::ScfResult& prepare_ground_state();
  bool has_ground_state() const { return gs_done_; }
  const gs::ScfResult& ground_state() const;

  // Initial TD state: Phi from the ground state, sigma = diag(f_FD).
  td::TdState initial_state() const;

  // Attach a laser WITHOUT placing its envelope: the center/width defaults
  // are resolved against the time horizon of whichever run launches next
  // (RunConfig::horizon), so one Simulation can serve ensemble jobs whose
  // horizons differ. Re-resolved at every run start.
  void set_laser(td::LaserParams p);
  // DEPRECATED eager form: places the envelope at attach time against an
  // explicit t_max. Kept as a thin wrapper for existing callers; prefer
  // set_laser(p) + RunConfig.
  const td::LaserPulse* set_laser(td::LaserParams p, real_t t_max);
  // Build the pulse for a known horizon now (no-op without pending params);
  // run() calls this automatically.
  const td::LaserPulse* resolve_laser(real_t horizon);
  const td::LaserPulse* laser() const { return laser_.get(); }

  // --- propagators ------------------------------------------------------
  std::unique_ptr<td::PtImPropagator> make_ptim(td::PtImOptions opt);
  // RunConfig form: resolves the lazy laser against cfg's horizon and
  // applies the exchange knobs (precision / backend / batch) before
  // constructing the propagator.
  std::unique_ptr<td::PtImPropagator> make_ptim(const RunConfig& cfg);
  std::unique_ptr<td::Rk4Propagator> make_rk4(td::Rk4Options opt);

  // --- unified run driver -----------------------------------------------
  // One entry point for serial (nranks == 1) and band/grid-distributed
  // propagation, with per-step sampling of the registered measurements.
  // `start`/`start_step` resume a split trajectory (e.g. from a
  // checkpoint); measurements are sampled after every step with ctx.step =
  // start_step + k, so a split run's series concatenate to the
  // uninterrupted run's.
  struct RunResult {
    td::TdState final_state;                // gathered full state
    MeasurementSet measurements;            // per-step series + statistics
    std::vector<td::PtImStepStats> steps;   // per-step solver statistics
    std::vector<ptmpi::CommStats> comm;     // distributed runs only
  };
  RunResult run(const RunConfig& cfg, MeasurementSet measurements = {},
                const td::TdState* start = nullptr, uint64_t start_step = 0);

  // --- checkpoint/restart -----------------------------------------------
  // RNG-free hash binding a checkpoint to (system, physics config, laser):
  // resuming under a different configuration is a descriptive error.
  uint64_t config_hash(const RunConfig& cfg) const;
  // Snapshot after `steps_done` steps of a cfg run (captures the live
  // vector potential — the laser phase / delta-kick carrier).
  io::Checkpoint checkpoint(const RunConfig& cfg, const td::TdState& s,
                            uint64_t steps_done) const;
  // Re-arm the Hamiltonian from a loaded checkpoint (vector potential) and
  // hand back the state to resume from.
  td::TdState restore(const io::Checkpoint& c);

  // --- measurement probes -----------------------------------------------
  Probe dipole_probe(grid::Vec3 dir) const;
  // Total-energy probe (register with needs_phi = true). Samples through
  // this Simulation's Hamiltonian exactly like energy().
  Probe energy_probe();
  // Sample a full state outside a run (e.g. the t = 0 point of a
  // spectrum); records with the given step index.
  void measure(MeasurementSet& m, const td::TdState& s, int step) const;

  // --- precision policy -------------------------------------------------
  // Scalar type of the exact-exchange hot path (pair FFTs, distributed ring
  // payloads); the propagated trajectory stays FP64 in every mode. Applied
  // to the live Hamiltonian and recorded in the spec so per-rank
  // Hamiltonians of distributed runs inherit it.
  void set_exchange_precision(Precision p) {
    spec_.ham.exchange.precision = p;
    h_->set_exchange_precision(p);
  }
  Precision exchange_precision() const { return h_->exchange_precision(); }

  // Execution backend of the distributed exchange ring (backend/): kSync
  // legacy host path, kHostSerial inline streams, kHostAsync overlapped
  // compute/comm. Recorded in the spec so per-rank Hamiltonians inherit it.
  void set_exchange_backend(backend::Kind k) {
    spec_.ham.exchange.backend = k;
    h_->set_exchange_backend(k);
  }
  backend::Kind exchange_backend() const { return h_->exchange_backend(); }

  // Batched-FFT block width of the exchange pair pipeline (throughput-only
  // knob, bit-identical across widths). Recorded in the spec so per-rank
  // Hamiltonians inherit it.
  void set_exchange_batch(size_t bs) {
    spec_.ham.exchange.batch_size = bs;
    h_->set_exchange_batch(bs);
  }
  size_t exchange_batch() const { return h_->exchange_batch(); }

  // --- band-parallel propagation ----------------------------------------
  // Fresh Hamiltonian over this simulation's (shared, read-only) grids and
  // atoms: each ptmpi rank of a distributed run needs its own instance
  // because the Hamiltonian carries mutable density/exchange state.
  std::unique_ptr<ham::Hamiltonian> make_rank_hamiltonian() const;

  // DEPRECATED: the pre-RunConfig option bundle. propagate_distributed
  // converts it 1:1 into a RunConfig and forwards to run() (a regression
  // test pins the two paths bitwise-identical); new code should call run()
  // directly.
  struct DistRunOptions {
    int nranks = 2;
    int ranks_per_node = 1;
    int steps = 10;
    td::PtImOptions ptim;
    dist::BandHamOptions band;  // circulation pattern + SHM overlap staging
  };
  struct DistRunResult {
    td::TdState final_state;                // gathered full state
    // dipole_x after each step when that probe was sampled; EMPTY when the
    // caller supplied a custom MeasurementSet without "dipole_x" (read
    // `measurements` instead — the old unconditional series() lookup threw
    // "no such measurement" for such callers).
    std::vector<real_t> dipole;
    MeasurementSet measurements;            // all sampled series
    std::vector<td::PtImStepStats> steps;   // per-step solver statistics
    std::vector<ptmpi::CommStats> comm;     // per-rank measured comm table
  };
  // Launch an nranks-wide ptmpi world, band-distribute the initial state,
  // run `steps` PT-IM steps through dist::BandDistributedHamiltonian +
  // td::DistPtImPropagator, and gather the trajectory. Produces the same
  // trajectory as the serial make_ptim path (regression-tested to 1e-10).
  // An empty `measurements` (the legacy call shape) samples the default
  // dipole_x probe; a caller-supplied set is sampled as-is.
  DistRunResult propagate_distributed(const DistRunOptions& opt,
                                      MeasurementSet measurements = {});

  // --- observables ------------------------------------------------------
  std::vector<real_t> density(const td::TdState& s) const;
  real_t dipole(const td::TdState& s, const grid::Vec3& dir) const;
  real_t dipole_x(const td::TdState& s) const { return dipole(s, {1, 0, 0}); }
  ham::EnergyTerms energy(const td::TdState& s) const;

  // --- plumbing ----------------------------------------------------------
  const SystemSpec& spec() const { return spec_; }
  const grid::Lattice& lattice() const { return *lattice_; }
  const pseudo::AtomList& atoms() const { return atoms_; }
  const grid::GSphere& sphere() const { return *sphere_; }
  ham::Hamiltonian& hamiltonian() { return *h_; }
  const ham::Hamiltonian& hamiltonian() const { return *h_; }
  size_t natoms() const { return atoms_.natoms(); }
  size_t nbands() const { return nbands_; }
  real_t nelec() const { return nelec_; }

 private:
  SystemSpec spec_;
  std::unique_ptr<grid::Lattice> lattice_;
  pseudo::AtomList atoms_;
  std::unique_ptr<grid::GSphere> sphere_;
  std::unique_ptr<grid::FftGrid> wfc_grid_;
  std::unique_ptr<grid::FftGrid> den_grid_;
  std::unique_ptr<ham::Hamiltonian> h_;
  std::unique_ptr<td::LaserPulse> laser_;
  std::optional<td::LaserParams> pending_laser_;  // lazy envelope placement
  gs::ScfResult gs_;
  bool gs_done_ = false;
  size_t nbands_ = 0;
  real_t nelec_ = 0.0;
};

}  // namespace ptim::core
