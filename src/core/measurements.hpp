#pragma once
// Measurement framework: named scalar observables registered against a run
// and sampled once per step, replacing the ad-hoc `std::vector<real_t>
// dipole` plumbing that each driver used to carry. A MeasurementSet owns
// the probes plus their accumulated series, running statistics and
// (on demand) binned averages; the run drivers (Simulation::run,
// EnsembleDriver) only see `record(ctx)`.
//
//   core::MeasurementSet m;
//   m.add("dipole_x", sim.dipole_probe({1, 0, 0}));
//   m.add("sigma_trace", core::probes::sigma_trace());
//   auto res = sim.run(cfg, m);
//   res.measurements.series("dipole_x");     // one value per step
//   res.measurements.stats("dipole_x").mean;
//
// Probes are plain std::functions of a MeasureContext so custom lambdas
// compose with the built-ins. The density pointer is always valid; `phi`
// may be null in distributed runs unless the probe declared needs_phi
// (then the driver gathers the full state before sampling).

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "la/matrix.hpp"

namespace ptim::core {

// Everything a probe may look at for one sample. Pointers, not copies:
// sampling must stay free for probes that ignore the heavy fields.
struct MeasureContext {
  const std::vector<real_t>* rho = nullptr;  // density on the dense grid
  const la::MatC* phi = nullptr;    // full orbitals; null if not gathered
  const la::MatC* sigma = nullptr;  // occupation matrix (always replicated)
  real_t time = 0.0;
  int step = 0;  // trajectory step index of this sample
};

using Probe = std::function<real_t(const MeasureContext&)>;

// Welford running statistics over one observable's samples.
struct RunningStats {
  size_t count = 0;
  real_t mean = 0.0;
  real_t m2 = 0.0;
  real_t min = 0.0;
  real_t max = 0.0;

  void add(real_t x);
  real_t variance() const { return count > 1 ? m2 / real_t(count - 1) : 0.0; }
  real_t stddev() const;
};

class MeasurementSet {
 public:
  // Register a named probe. needs_phi marks probes that read ctx.phi, so
  // distributed drivers know to gather the full state before sampling.
  void add(std::string name, Probe probe, bool needs_phi = false);

  // Sample every probe once and append to its series/statistics.
  void record(const MeasureContext& ctx);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  bool needs_phi() const;
  std::vector<std::string> names() const;
  bool has(const std::string& name) const;

  // Accumulated per-step samples of one observable, in recording order.
  const std::vector<real_t>& series(const std::string& name) const;
  const RunningStats& stats(const std::string& name) const;

  // Overwrite one probe's accumulated series with previously recorded
  // samples (checkpoint resume): the running statistics are replayed from
  // the values in order, so a restored set is bitwise identical to one
  // that recorded the same samples live. The probe must be registered.
  void restore_series(const std::string& name,
                      const std::vector<real_t>& values);

  // The series rebinned into `nbins` contiguous chunks (mean per chunk);
  // trailing samples that do not fill a chunk go into the last bin.
  std::vector<real_t> binned(const std::string& name, size_t nbins) const;

 private:
  struct Entry {
    std::string name;
    Probe probe;
    bool needs_phi = false;
    std::vector<real_t> series;
    RunningStats stats;
  };
  const Entry& find(const std::string& name) const;
  std::vector<Entry> entries_;
};

// Built-in probes with no Simulation dependence. Simulation adds the
// grid-aware factories (dipole_probe, energy_probe).
namespace probes {

// Re(tr sigma) — the conserved electron count per spin channel.
Probe sigma_trace();

// Total density integral scaled by dvol, i.e. the electron count on the
// dense grid (a cheap conservation diagnostic).
Probe density_sum(real_t dvol);

}  // namespace probes

}  // namespace ptim::core
