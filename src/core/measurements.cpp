#include "core/measurements.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptim::core {

void RunningStats::add(real_t x) {
  if (count == 0) {
    min = max = x;
  } else {
    min = std::min(min, x);
    max = std::max(max, x);
  }
  ++count;
  const real_t delta = x - mean;
  mean += delta / real_t(count);
  m2 += delta * (x - mean);
}

real_t RunningStats::stddev() const { return std::sqrt(variance()); }

void MeasurementSet::add(std::string name, Probe probe, bool needs_phi) {
  PTIM_CHECK_MSG(!has(name), "measurement already registered: " << name);
  PTIM_CHECK_MSG(probe != nullptr, "null probe for measurement: " << name);
  Entry e;
  e.name = std::move(name);
  e.probe = std::move(probe);
  e.needs_phi = needs_phi;
  entries_.push_back(std::move(e));
}

void MeasurementSet::record(const MeasureContext& ctx) {
  for (auto& e : entries_) {
    PTIM_CHECK_MSG(!e.needs_phi || ctx.phi != nullptr,
                   "probe '" << e.name
                             << "' needs phi but none was provided");
    const real_t x = e.probe(ctx);
    e.series.push_back(x);
    e.stats.add(x);
  }
}

bool MeasurementSet::needs_phi() const {
  for (const auto& e : entries_)
    if (e.needs_phi) return true;
  return false;
}

std::vector<std::string> MeasurementSet::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

bool MeasurementSet::has(const std::string& name) const {
  for (const auto& e : entries_)
    if (e.name == name) return true;
  return false;
}

const MeasurementSet::Entry& MeasurementSet::find(
    const std::string& name) const {
  for (const auto& e : entries_)
    if (e.name == name) return e;
  PTIM_CHECK_MSG(false, "no such measurement: " << name);
  std::abort();  // unreachable: PTIM_CHECK_MSG throws
}

const std::vector<real_t>& MeasurementSet::series(
    const std::string& name) const {
  return find(name).series;
}

const RunningStats& MeasurementSet::stats(const std::string& name) const {
  return find(name).stats;
}

void MeasurementSet::restore_series(const std::string& name,
                                    const std::vector<real_t>& values) {
  for (auto& e : entries_) {
    if (e.name != name) continue;
    e.series = values;
    e.stats = RunningStats{};  // Welford replay: bitwise = live recording
    for (const real_t x : values) e.stats.add(x);
    return;
  }
  PTIM_CHECK_MSG(false, "no such measurement: " << name);
}

std::vector<real_t> MeasurementSet::binned(const std::string& name,
                                           size_t nbins) const {
  PTIM_CHECK_MSG(nbins > 0, "binned: nbins must be positive");
  const auto& s = find(name).series;
  if (s.empty()) return {};
  const size_t eff = std::min(nbins, s.size());
  const size_t width = s.size() / eff;  // >= 1; remainder joins the last bin
  std::vector<real_t> out(eff, 0.0);
  for (size_t b = 0; b < eff; ++b) {
    const size_t lo = b * width;
    const size_t hi = (b + 1 == eff) ? s.size() : lo + width;
    real_t acc = 0.0;
    for (size_t i = lo; i < hi; ++i) acc += s[i];
    out[b] = acc / real_t(hi - lo);
  }
  return out;
}

namespace probes {

Probe sigma_trace() {
  return [](const MeasureContext& ctx) {
    real_t tr = 0.0;
    for (size_t i = 0; i < ctx.sigma->rows(); ++i)
      tr += std::real((*ctx.sigma)(i, i));
    return tr;
  };
}

Probe density_sum(real_t dvol) {
  return [dvol](const MeasureContext& ctx) {
    real_t total = 0.0;
    for (const real_t r : *ctx.rho) total += r;
    return total * dvol;
  };
}

}  // namespace probes

}  // namespace ptim::core
