#pragma once
// One consolidated run configuration for every propagation driver. The
// knobs used to be scattered across td::PtImOptions, dist::BandHamOptions,
// Simulation::DistRunOptions and the set_exchange_* setters, each accreted
// by a different PR; RunConfig is the single surface Simulation::run,
// make_ptim and EnsembleDriver consume. The legacy entry points survive as
// thin wrappers over this struct (and a regression test pins the old and
// new paths to bitwise-identical trajectories).
//
// Hash policy (config_hash / physics_hash): the RNG-free hash stored in
// checkpoints covers exactly the fields that determine the trajectory's
// NUMBERS — dt, variant, tolerances, precision, the laser and the horizon.
// It deliberately excludes steps (that is the split point a resume moves),
// and the layout/throughput knobs (nranks, process grid, circulation
// pattern, backend, batch size), which are all regression-pinned to be
// bitwise trajectory-invariant.

#include <cstdint>
#include <optional>
#include <string>

#include "dist/band_ham.hpp"
#include "dist/layout.hpp"
#include "io/checkpoint.hpp"
#include "td/laser.hpp"
#include "td/ptim.hpp"

namespace ptim::core {

struct RunConfig {
  // --- trajectory -------------------------------------------------------
  int steps = 10;
  real_t dt = 50.0 / units::au_time_as;  // 50 as, the paper's step
  // Physical end time used to place the laser envelope. 0 resolves lazily
  // to start.time + steps*dt when the run launches; a split trajectory
  // (checkpoint + resume) must set it explicitly so both segments see the
  // same envelope.
  real_t t_horizon = 0.0;

  // --- propagator -------------------------------------------------------
  td::PtImVariant variant = td::PtImVariant::kDiag;
  bool hybrid = true;
  bool evolve_sigma = true;  // false = PT-CN (frozen occupations)
  int max_scf = 30;
  real_t tol = 1e-6;
  int max_outer = 8;
  real_t tol_fock = 1e-6;
  size_t anderson_history = 20;
  real_t anderson_beta = 0.7;

  // --- exchange hot path ------------------------------------------------
  // Unset keeps whatever the Hamiltonian was configured with.
  std::optional<Precision> precision;
  std::optional<backend::Kind> backend;
  std::optional<size_t> exchange_batch;  // batched-FFT block width
  // Low-rank (ISDF) compression of the exchange apply and its rank factor
  // (ham/isdf). Deliberately HASH-NEUTRAL (unlike precision): the fit is
  // derived state, rebuilt from the checkpointed wavefunctions at every
  // apply, so a checkpoint carries no ISDF state and a resume may tighten,
  // relax or drop the compression without invalidating earlier snapshots
  // (the accuracy-continuation workflow the rank sweep supports).
  std::optional<ham::ExchangeCompression> compression;
  std::optional<real_t> isdf_rank_factor;

  // --- process layout (distributed runs) --------------------------------
  int nranks = 1;  // 1 = serial propagation
  int ranks_per_node = 1;
  dist::ProcessGrid process_grid{};  // pb band rows x pg grid columns
  dist::ExchangePattern pattern = dist::ExchangePattern::kAsyncRing;
  bool overlap_shm = false;

  // --- durability (auto-checkpointing) ------------------------------------
  // checkpoint_every > 0 makes Simulation::run save an io::Checkpoint of
  // the committed state every K steps (and at the final step) into
  // checkpoint_dir, as `ckpt_<step>.ckpt`. Saves are atomic (tmp + rename),
  // so a kill at any instant leaves only complete files. Hash-neutral:
  // where/how often snapshots land never changes the trajectory, so old
  // checkpoints stay resumable when these knobs move (same policy as the
  // layout knobs above).
  int checkpoint_every = 0;    // 0 = no auto-checkpointing
  std::string checkpoint_dir;  // must exist when checkpoint_every > 0

  // --- observability ------------------------------------------------------
  // Both hash-neutral (physics_hash enumerates fields, so new knobs are
  // excluded by default): telemetry must never invalidate a checkpoint.
  // trace_path: when nonempty, Simulation::run records obs spans across
  // the whole run and writes ONE merged Chrome trace-event JSON there —
  // distributed runs gather every rank's buffers over ptmpi first, so the
  // file holds per-rank lanes (plus per-stream sub-lanes under HostAsync).
  // metrics_path: when nonempty, every committed PT-IM step appends one
  // StepReport JSONL line there (per rank, for distributed runs). For
  // campaigns this knob is an enable switch: each job writes to
  // `<job's checkpoint dir>/metrics.jsonl` instead of one shared file.
  std::string trace_path;
  std::string metrics_path;

  // Resolve the envelope horizon for a run starting at t_start.
  real_t horizon(real_t t_start) const {
    return t_horizon > 0.0 ? t_horizon
                           : t_start + static_cast<real_t>(steps) * dt;
  }

  // The legacy option structs, derived. These are the ONLY conversion
  // points, so old-path wrappers and new-path drivers cannot drift.
  td::PtImOptions ptim() const {
    td::PtImOptions o;
    o.dt = dt;
    o.max_scf = max_scf;
    o.tol = tol;
    o.max_outer = max_outer;
    o.tol_fock = tol_fock;
    o.anderson_history = anderson_history;
    o.anderson_beta = anderson_beta;
    o.variant = variant;
    o.hybrid = hybrid;
    o.exchange_precision = precision;
    o.exchange_backend = backend;
    o.exchange_compression = compression;
    o.isdf_rank_factor = isdf_rank_factor;
    o.process_grid = process_grid;
    o.evolve_sigma = evolve_sigma;
    return o;
  }
  dist::BandHamOptions band() const {
    dist::BandHamOptions b;
    b.pattern = pattern;
    b.overlap_shm = overlap_shm;
    b.grid = process_grid;
    return b;
  }

  // Chain the physics-determining fields through FNV-1a (see the hash
  // policy above). Simulation::config_hash extends this with the system
  // dimensions and the attached laser.
  uint64_t physics_hash(uint64_t h = io::kFnvOffset) const {
    auto mix = [&h](const auto& v) { h = io::fnv1a(&v, sizeof(v), h); };
    mix(dt);
    mix(t_horizon);
    const int var = static_cast<int>(variant);
    mix(var);
    mix(hybrid);
    mix(evolve_sigma);
    mix(max_scf);
    mix(tol);
    mix(max_outer);
    mix(tol_fock);
    mix(anderson_history);
    mix(anderson_beta);
    const bool has_prec = precision.has_value();
    mix(has_prec);
    if (has_prec) {
      const int p = static_cast<int>(*precision);
      mix(p);
    }
    return h;
  }
};

}  // namespace ptim::core
