#include "core/ensemble.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "ham/density.hpp"

namespace ptim::core {

EnsembleDriver::EnsembleDriver(Simulation& sim, RunConfig cfg)
    : sim_(&sim), cfg_(std::move(cfg)) {
  PTIM_CHECK_MSG(cfg_.nranks == 1,
                 "EnsembleDriver batches serial trajectories; distributed "
                 "runs go through Simulation::run");
  PTIM_CHECK_MSG(cfg_.steps >= 0, "EnsembleDriver: bad step count");
}

void EnsembleDriver::submit(EnsembleJob job) {
  jobs_.push_back(std::move(job));
}

std::vector<EnsembleJobResult> EnsembleDriver::run_all(size_t batch_width) {
  const size_t width =
      batch_width == 0 ? std::max<size_t>(jobs_.size(), 1) : batch_width;
  std::vector<EnsembleJobResult> out;
  out.reserve(jobs_.size());
  // Drain per batch: jobs leave the queue only AFTER their batch finished.
  // (The old implementation moved the whole queue out up front, so an
  // exception mid-campaign destroyed every unrun job with no way to
  // retry.) On a throw, the failing batch and everything behind it stay
  // submitted — pending() reports them and a later run_all retries them.
  while (!jobs_.empty()) {
    const size_t n = std::min(width, jobs_.size());
    std::vector<EnsembleJobResult> part = run_batch(jobs_.data(), n);
    jobs_.erase(jobs_.begin(), jobs_.begin() + static_cast<ptrdiff_t>(n));
    for (auto& r : part) out.push_back(std::move(r));
  }
  return out;
}

std::vector<EnsembleJobResult> EnsembleDriver::run_batch(
    const EnsembleJob* batch, size_t n) {
  ScopedTimer timer("ensemble.batch");
  // Grow the slot pool on demand; later batches reuse the constructed
  // Hamiltonians (and, through the shared grids, the same FFT plans).
  while (pool_.size() < n) pool_.push_back(sim_->make_rank_hamiltonian());

  struct Slot {
    ham::Hamiltonian* h = nullptr;
    std::unique_ptr<td::LaserPulse> laser;
    std::unique_ptr<td::PtImPropagator> prop;
    td::TdState state;
    EnsembleJobResult res;
  };
  std::vector<Slot> slots(n);
  const td::PtImOptions popt = cfg_.ptim();
  for (size_t i = 0; i < n; ++i) {
    Slot& sl = slots[i];
    sl.h = pool_[i].get();
    if (cfg_.exchange_batch) sl.h->set_exchange_batch(*cfg_.exchange_batch);
    sl.state = batch[i].initial ? *batch[i].initial : sim_->initial_state();
    // Per-job laser, envelope placed lazily against THIS run's horizon.
    if (batch[i].laser)
      sl.laser = std::make_unique<td::LaserPulse>(
          *batch[i].laser, cfg_.horizon(sl.state.time));
    // Always (re)set A: carries the job's delta kick and clears whatever a
    // previous batch left on the pooled Hamiltonian.
    sl.h->set_vector_potential(batch[i].kick);
    // The propagator ctor applies cfg's precision/backend to its slot.
    sl.prop =
        std::make_unique<td::PtImPropagator>(*sl.h, popt, sl.laser.get());
    sl.res.name = batch[i].name;
    sl.res.measurements = proto_;
    sl.res.steps.reserve(static_cast<size_t>(cfg_.steps));
  }

  // The exchange packing rides on the ACE double loop; other variants
  // propagate unbatched (still amortizing the pooled setup).
  const bool staged =
      cfg_.variant == td::PtImVariant::kAce && cfg_.hybrid;
  // Every slot's operator is configured identically, so slot 0's can apply
  // the whole pack (bit-identical to per-slot application).
  const ham::ExchangeOperator* xop = n ? &slots[0].h->exchange_op() : nullptr;

  std::vector<td::PtImPropagator::StepSession> sess;
  std::vector<la::MatC> w(n);
  for (int step = 0; step < cfg_.steps; ++step) {
    if (staged) {
      // Lockstep staged stepping: one packed exchange application per ACE
      // round, one DiagApplyJob per trajectory still inside its loop.
      sess.clear();
      sess.reserve(n);
      for (size_t i = 0; i < n; ++i)
        sess.push_back(slots[i].prop->step_begin(slots[i].state));
      std::vector<size_t> active(n);
      for (size_t i = 0; i < n; ++i) active[i] = i;
      while (!active.empty()) {
        std::vector<ham::ExchangeOperator::DiagApplyJob> jobs;
        jobs.reserve(active.size());
        for (const size_t i : active) {
          w[i].resize(sess[i].ace_phi.rows(), sess[i].ace_phi.cols());
          jobs.push_back(
              {&sess[i].ace_phi, &sess[i].ace_occ, &sess[i].ace_phi, &w[i]});
        }
        xop->apply_diag_packed(jobs);
        std::vector<size_t> next;
        next.reserve(active.size());
        for (const size_t i : active)
          if (slots[i].prop->step_advance(slots[i].state, sess[i], w[i]))
            next.push_back(i);
        active = std::move(next);
      }
      for (size_t i = 0; i < n; ++i)
        slots[i].res.steps.push_back(
            slots[i].prop->step_finish(slots[i].state, sess[i]));
    } else {
      for (size_t i = 0; i < n; ++i)
        slots[i].res.steps.push_back(slots[i].prop->step(slots[i].state));
    }
    for (size_t i = 0; i < n; ++i) {
      Slot& sl = slots[i];
      if (sl.res.measurements.empty()) continue;
      const std::vector<real_t> rho =
          ham::density_sigma(sl.state.phi, sl.state.sigma, sl.h->den_map());
      MeasureContext ctx;
      ctx.rho = &rho;
      ctx.phi = &sl.state.phi;
      ctx.sigma = &sl.state.sigma;
      ctx.time = sl.state.time;
      ctx.step = step;
      sl.res.measurements.record(ctx);
    }
  }

  std::vector<EnsembleJobResult> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    slots[i].res.final_state = std::move(slots[i].state);
    out.push_back(std::move(slots[i].res));
  }
  return out;
}

}  // namespace ptim::core
