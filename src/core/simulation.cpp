#include "core/simulation.hpp"

#include <cmath>

#include "common/error.hpp"
#include "ham/density.hpp"
#include "td/observables.hpp"

namespace ptim::core {

Simulation::Simulation(SystemSpec spec) : spec_(spec) {
  grid::Lattice tmp = grid::Lattice::cubic(1.0);
  atoms_ = pseudo::silicon_supercell(spec.nx, spec.ny, spec.nz, &tmp);
  lattice_ = std::make_unique<grid::Lattice>(tmp);

  sphere_ = std::make_unique<grid::GSphere>(*lattice_, spec.ecut);
  wfc_grid_ =
      std::make_unique<grid::FftGrid>(*lattice_, sphere_->suggest_dims(1));
  den_grid_ =
      std::make_unique<grid::FftGrid>(*lattice_, sphere_->suggest_dims(2));
  h_ = std::make_unique<ham::Hamiltonian>(*lattice_, atoms_, *sphere_,
                                          *wfc_grid_, *den_grid_, spec.ham);

  nelec_ = atoms_.total_charge();
  const auto extra = static_cast<size_t>(std::lround(
      spec.extra_states_per_atom * static_cast<real_t>(atoms_.natoms())));
  nbands_ = static_cast<size_t>(nelec_ / 2.0) + std::max<size_t>(extra, 1);
  PTIM_CHECK_MSG(nbands_ <= sphere_->npw(),
                 "SystemSpec: more bands than plane waves — raise ecut");
}

const gs::ScfResult& Simulation::prepare_ground_state() {
  gs::ScfOptions opt = spec_.scf;
  opt.nbands = nbands_;
  opt.nelec = nelec_;
  opt.temperature_k = spec_.temperature_k;
  gs_ = gs::ground_state(*h_, opt);
  gs_done_ = true;
  return gs_;
}

const gs::ScfResult& Simulation::ground_state() const {
  PTIM_CHECK_MSG(gs_done_, "call prepare_ground_state() first");
  return gs_;
}

td::TdState Simulation::initial_state() const {
  const auto& g = ground_state();
  return td::TdState::from_occupations(g.phi, g.occ);
}

const td::LaserPulse* Simulation::set_laser(td::LaserParams p, real_t t_max) {
  laser_ = std::make_unique<td::LaserPulse>(p, t_max);
  return laser_.get();
}

std::unique_ptr<td::PtImPropagator> Simulation::make_ptim(td::PtImOptions opt) {
  return std::make_unique<td::PtImPropagator>(*h_, opt, laser_.get());
}

std::unique_ptr<td::Rk4Propagator> Simulation::make_rk4(td::Rk4Options opt) {
  return std::make_unique<td::Rk4Propagator>(*h_, opt, laser_.get());
}

std::unique_ptr<ham::Hamiltonian> Simulation::make_rank_hamiltonian() const {
  return std::make_unique<ham::Hamiltonian>(*lattice_, atoms_, *sphere_,
                                            *wfc_grid_, *den_grid_, spec_.ham);
}

Simulation::DistRunResult Simulation::propagate_distributed(
    const DistRunOptions& opt) {
  PTIM_CHECK_MSG(opt.nranks >= 1 && opt.steps >= 0,
                 "propagate_distributed: bad run options");
  const td::TdState initial = initial_state();

  // 2-D layout: PtImOptions::process_grid splits the nranks world into
  // pb band rows x pg grid columns; pg == 1 is the pure band-parallel path.
  // resolve_pb validates pb*pg == nranks in EVERY mode, so an explicitly
  // set but inconsistent layout is rejected rather than silently ignored.
  const dist::ProcessGrid pgrid = opt.ptim.process_grid;
  const int pb = pgrid.resolve_pb(opt.nranks);
  const dist::BlockLayout bands(nbands_, pb);

  DistRunResult result;
  result.dipole.assign(static_cast<size_t>(opt.steps), 0.0);
  result.steps.resize(static_cast<size_t>(opt.steps));

  ptmpi::run_ranks(opt.nranks, opt.ranks_per_node, [&](ptmpi::Comm& c) {
    // Per-rank Hamiltonian over the shared read-only grids/atoms.
    std::unique_ptr<ham::Hamiltonian> h = make_rank_hamiltonian();
    dist::BandHamOptions bopt = opt.band;
    if (pgrid.pg > 1) bopt.grid = pgrid;
    dist::BandDistributedHamiltonian bdh(c, *h, nbands_, bopt);
    td::DistTdState s =
        td::scatter_state(initial, bands, pgrid.band_rank_of(c.rank()));
    td::DistPtImPropagator prop(bdh, opt.ptim, laser_.get());
    for (int step = 0; step < opt.steps; ++step) {
      const td::PtImStepStats st = prop.step(s);
      // Observables from the distributed state: rho is Allreduced over the
      // band communicator (and the grid columns compute it redundantly and
      // identically), so the dipole is the same on every rank; world rank 0
      // records it.
      const std::vector<real_t> rho = bdh.density(s.phi_local, s.sigma);
      const real_t dip = td::dipole(rho, *den_grid_, {1.0, 0.0, 0.0});
      if (c.rank() == 0) {
        result.dipole[static_cast<size_t>(step)] = dip;
        result.steps[static_cast<size_t>(step)] = st;
      }
    }
    // Gather over the band communicator (grid column 0 contains world rank
    // 0, which holds the full state for the caller).
    const td::TdState full = td::gather_state(bdh.comm(), s, bands);
    if (c.rank() == 0) result.final_state = full;
  });
  result.comm = ptmpi::last_run_stats();
  return result;
}

std::vector<real_t> Simulation::density(const td::TdState& s) const {
  return ham::density_sigma(s.phi, s.sigma, h_->den_map());
}

real_t Simulation::dipole(const td::TdState& s, const grid::Vec3& dir) const {
  return td::dipole(density(s), *den_grid_, dir);
}

ham::EnergyTerms Simulation::energy(const td::TdState& s) const {
  const std::vector<real_t> rho = density(s);
  h_->set_density(rho);
  return h_->energy(s.phi, s.sigma, rho);
}

}  // namespace ptim::core
