#include "core/simulation.hpp"

#include <cmath>
#include <memory>

#include "backend/buffer.hpp"
#include "common/error.hpp"
#include "ham/density.hpp"
#include "obs/obs.hpp"
#include "obs/step_report.hpp"
#include "obs/trace_export.hpp"
#include "td/observables.hpp"

namespace ptim::core {

namespace {

// Counter snapshot for the per-step metrics sampler. `xop` is the exchange
// operator the propagator actually drives (the per-rank Hamiltonian's, for
// distributed runs); `comm` is null on the serial path.
obs::StepCounters sample_counters(const ham::ExchangeOperator& xop,
                                  ptmpi::Comm* comm) {
  obs::StepCounters sc;
  sc.ffts = xop.fft_count.load(std::memory_order_relaxed);
  sc.alloc_count = backend::buffer_alloc_count();
  sc.isdf_fit_seconds = obs::profile_get(obs::intern("isdf.fit")).seconds +
                        obs::profile_get(obs::intern("isdf.fit_dist")).seconds;
  if (comm) sc.comm = comm->stats().snapshot();
  return sc;
}

void fill_step_stats(obs::StepReport* r, const td::PtImStepStats& st) {
  r->scf_iterations = st.scf_iterations;
  r->outer_iterations = st.outer_iterations;
  r->exchange_applications = st.exchange_applications;
  r->residual = st.residual;
  r->converged = st.converged ? 1 : 0;
}

}  // namespace

Simulation::Simulation(SystemSpec spec) : spec_(spec) {
  grid::Lattice tmp = grid::Lattice::cubic(1.0);
  atoms_ = pseudo::silicon_supercell(spec.nx, spec.ny, spec.nz, &tmp);
  lattice_ = std::make_unique<grid::Lattice>(tmp);

  sphere_ = std::make_unique<grid::GSphere>(*lattice_, spec.ecut);
  wfc_grid_ =
      std::make_unique<grid::FftGrid>(*lattice_, sphere_->suggest_dims(1));
  den_grid_ =
      std::make_unique<grid::FftGrid>(*lattice_, sphere_->suggest_dims(2));
  h_ = std::make_unique<ham::Hamiltonian>(*lattice_, atoms_, *sphere_,
                                          *wfc_grid_, *den_grid_, spec.ham);

  nelec_ = atoms_.total_charge();
  const auto extra = static_cast<size_t>(std::lround(
      spec.extra_states_per_atom * static_cast<real_t>(atoms_.natoms())));
  nbands_ = static_cast<size_t>(nelec_ / 2.0) + std::max<size_t>(extra, 1);
  PTIM_CHECK_MSG(nbands_ <= sphere_->npw(),
                 "SystemSpec: more bands than plane waves — raise ecut");
}

const gs::ScfResult& Simulation::prepare_ground_state() {
  gs::ScfOptions opt = spec_.scf;
  opt.nbands = nbands_;
  opt.nelec = nelec_;
  opt.temperature_k = spec_.temperature_k;
  gs_ = gs::ground_state(*h_, opt);
  gs_done_ = true;
  return gs_;
}

const gs::ScfResult& Simulation::ground_state() const {
  PTIM_CHECK_MSG(gs_done_, "call prepare_ground_state() first");
  return gs_;
}

td::TdState Simulation::initial_state() const {
  const auto& g = ground_state();
  return td::TdState::from_occupations(g.phi, g.occ);
}

void Simulation::set_laser(td::LaserParams p) {
  pending_laser_ = p;
  laser_.reset();  // placed lazily against the next run's horizon
}

const td::LaserPulse* Simulation::set_laser(td::LaserParams p, real_t t_max) {
  pending_laser_.reset();
  laser_ = std::make_unique<td::LaserPulse>(p, t_max);
  return laser_.get();
}

const td::LaserPulse* Simulation::resolve_laser(real_t horizon) {
  // Pending params are kept: a later run with a different horizon re-places
  // the envelope (the lazy-laser contract ensemble jobs rely on).
  if (pending_laser_)
    laser_ = std::make_unique<td::LaserPulse>(*pending_laser_, horizon);
  return laser_.get();
}

std::unique_ptr<td::PtImPropagator> Simulation::make_ptim(td::PtImOptions opt) {
  return std::make_unique<td::PtImPropagator>(*h_, opt, laser_.get());
}

std::unique_ptr<td::PtImPropagator> Simulation::make_ptim(
    const RunConfig& cfg) {
  resolve_laser(cfg.horizon(0.0));
  if (cfg.exchange_batch) set_exchange_batch(*cfg.exchange_batch);
  return std::make_unique<td::PtImPropagator>(*h_, cfg.ptim(), laser_.get());
}

std::unique_ptr<td::Rk4Propagator> Simulation::make_rk4(td::Rk4Options opt) {
  return std::make_unique<td::Rk4Propagator>(*h_, opt, laser_.get());
}

std::unique_ptr<ham::Hamiltonian> Simulation::make_rank_hamiltonian() const {
  return std::make_unique<ham::Hamiltonian>(*lattice_, atoms_, *sphere_,
                                            *wfc_grid_, *den_grid_, spec_.ham);
}

Simulation::RunResult Simulation::run(const RunConfig& cfg,
                                      MeasurementSet measurements,
                                      const td::TdState* start,
                                      uint64_t start_step) {
  PTIM_CHECK_MSG(cfg.nranks >= 1 && cfg.steps >= 0, "RunConfig: bad options");
  PTIM_CHECK_MSG(cfg.checkpoint_every <= 0 || !cfg.checkpoint_dir.empty(),
                 "RunConfig: checkpoint_every set without a checkpoint_dir");
  const td::TdState initial = start ? *start : initial_state();
  resolve_laser(cfg.horizon(initial.time));
  if (cfg.exchange_batch) set_exchange_batch(*cfg.exchange_batch);

  RunResult result;
  result.measurements = std::move(measurements);
  result.steps.resize(static_cast<size_t>(cfg.steps));

  // Auto-checkpoint cadence: every K committed steps and at the last one,
  // named by ABSOLUTE step index so a resumed segment's snapshots line up
  // with the uninterrupted run's.
  const auto ckpt_due = [&cfg](uint64_t done, int step) {
    return cfg.checkpoint_every > 0 &&
           (done % static_cast<uint64_t>(cfg.checkpoint_every) == 0 ||
            step + 1 == cfg.steps);
  };
  const auto ckpt_path = [&cfg](uint64_t done) {
    return cfg.checkpoint_dir + "/ckpt_" + std::to_string(done) + ".ckpt";
  };

  // Observability knobs (both hash-neutral). Tracing spans the whole run;
  // the previous enabled state is restored on exit so a traced run inside
  // a larger process (tests, benches) cannot leak recording into it.
  const bool tracing = !cfg.trace_path.empty();
  const bool was_enabled = obs::enabled();
  if (tracing) {
    obs::clear();
    obs::set_enabled(true);
  }
  std::shared_ptr<obs::MetricsSink> metrics;
  if (!cfg.metrics_path.empty())
    metrics = std::make_shared<obs::MetricsSink>(cfg.metrics_path);

  if (cfg.nranks == 1) {
    td::TdState s = initial;
    td::PtImPropagator prop(*h_, cfg.ptim(), laser_.get());
    if (cfg.checkpoint_every > 0 || metrics) {
      // Post-commit hook of the staged step protocol: the state it sees is
      // exactly what a resume restores, so saving here is bitwise-safe —
      // and the metrics sampler closes its per-step window at the same
      // commit point, so a report row always describes a resumable step.
      uint64_t done = start_step;
      int step = 0;
      auto sampler = std::make_shared<obs::StepSampler>();
      if (metrics) sampler->begin(sample_counters(h_->exchange_op(), nullptr));
      prop.set_step_hook([this, &cfg, &ckpt_due, &ckpt_path, metrics, sampler,
                          done, step](const td::TdState& hs,
                                      const td::PtImStepStats& st) mutable {
        ++done;
        if (metrics) {
          obs::StepReport r =
              sampler->end(sample_counters(h_->exchange_op(), nullptr));
          r.step = static_cast<long>(done);
          fill_step_stats(&r, st);
          metrics->write(r);
          sampler->begin(sample_counters(h_->exchange_op(), nullptr));
        }
        if (ckpt_due(done, step++))
          io::save_checkpoint(ckpt_path(done), checkpoint(cfg, hs, done));
      });
    }
    std::vector<real_t> rho;
    for (int step = 0; step < cfg.steps; ++step) {
      result.steps[static_cast<size_t>(step)] = prop.step(s);
      rho = ham::density_sigma(s.phi, s.sigma, h_->den_map());
      MeasureContext ctx;
      ctx.rho = &rho;
      ctx.phi = &s.phi;
      ctx.sigma = &s.sigma;
      ctx.time = s.time;
      ctx.step = static_cast<int>(start_step) + step;
      result.measurements.record(ctx);
    }
    result.final_state = std::move(s);
    if (tracing) {
      obs::set_enabled(was_enabled);
      obs::write_chrome_trace(cfg.trace_path, obs::snapshot());
      obs::clear();
    }
    return result;
  }

  // 2-D layout: RunConfig::process_grid splits the nranks world into pb
  // band rows x pg grid columns; pg == 1 is the pure band-parallel path.
  // resolve_pb validates pb*pg == nranks in EVERY mode, so an explicitly
  // set but inconsistent layout is rejected rather than silently ignored.
  const dist::ProcessGrid pgrid = cfg.process_grid;
  const int pb = pgrid.resolve_pb(cfg.nranks);
  const dist::BlockLayout bands(nbands_, pb);
  // Probes that read Phi force a full gather every step; the cheap rho/
  // sigma probes cost no extra communication.
  const bool want_phi = result.measurements.needs_phi();
  // Hash once on the launcher thread; the rank lambdas only read it.
  const uint64_t cfg_hash =
      cfg.checkpoint_every > 0 ? config_hash(cfg) : 0;

  ptmpi::run_ranks(cfg.nranks, cfg.ranks_per_node, [&](ptmpi::Comm& c) {
    // Per-rank Hamiltonian over the shared read-only grids/atoms; carries
    // the live vector potential (delta-kick / resumed laser phase).
    std::unique_ptr<ham::Hamiltonian> h = make_rank_hamiltonian();
    h->set_vector_potential(h_->vector_potential());
    dist::BandDistributedHamiltonian bdh(c, *h, nbands_, cfg.band());
    td::DistTdState s =
        td::scatter_state(initial, bands, pgrid.band_rank_of(c.rank()));
    td::DistPtImPropagator prop(bdh, cfg.ptim(), laser_.get());
    // Per-rank metrics sampler: each rank reports its own comm/FFT deltas
    // into the shared (thread-safe) sink, keyed by its rank column.
    obs::StepSampler sampler;
    if (metrics) sampler.begin(sample_counters(h->exchange_op(), &c));
    for (int step = 0; step < cfg.steps; ++step) {
      td::PtImStepStats st;
      {
        OBS_SPAN("td.dist_step", obs::Cat::kStep);
        st = prop.step(s);
      }
      if (metrics) {
        obs::StepReport r = sampler.end(sample_counters(h->exchange_op(), &c));
        r.rank = c.rank();
        r.step = static_cast<long>(start_step) + step + 1;
        fill_step_stats(&r, st);
        metrics->write(r);
        sampler.begin(sample_counters(h->exchange_op(), &c));
      }
      // Observables from the distributed state: rho is Allreduced over the
      // band communicator (and the grid columns compute it redundantly and
      // identically), so rho-derived probes see the same values on every
      // rank; world rank 0 records them.
      const std::vector<real_t> rho = bdh.density(s.phi_local, s.sigma);
      td::TdState full;
      if (want_phi) full = td::gather_state(bdh.comm(), s, bands);
      if (c.rank() == 0) {
        result.steps[static_cast<size_t>(step)] = st;
        MeasureContext ctx;
        ctx.rho = &rho;
        ctx.phi = want_phi ? &full.phi : nullptr;
        ctx.sigma = &s.sigma;
        ctx.time = s.time;
        ctx.step = static_cast<int>(start_step) + step;
        result.measurements.record(ctx);
      }
      const uint64_t done = start_step + static_cast<uint64_t>(step) + 1;
      if (ckpt_due(done, step)) {
        // gather_state is collective over the band communicator (each grid
        // column gathers redundantly); world rank 0 persists the snapshot.
        // The vector potential comes from the PER-RANK Hamiltonian — the
        // one the distributed propagator actually advances.
        const td::TdState snap =
            want_phi ? full : td::gather_state(bdh.comm(), s, bands);
        if (c.rank() == 0) {
          io::Checkpoint ck;
          ck.state = snap;
          ck.step_index = done;
          ck.config_hash = cfg_hash;
          ck.avec = h->vector_potential();
          io::save_checkpoint(ckpt_path(done), ck);
        }
      }
    }
    // Gather over the band communicator (grid column 0 contains world rank
    // 0, which holds the full state for the caller).
    const td::TdState full = td::gather_state(bdh.comm(), s, bands);
    if (c.rank() == 0) result.final_state = full;
    if (tracing) {
      // Rank-merged trace: after the barrier every rank is past its last
      // instrumented operation (stream workers drained inside the step
      // loop), so the per-rank snapshots are quiesced. Each rank filters
      // to its own span set and ships it to world rank 0, which writes
      // ONE timeline with a process lane per rank.
      c.barrier();
      const std::vector<obs::Span> merged =
          obs::gather_spans(c, obs::snapshot(c.rank()));
      if (c.rank() == 0) obs::write_chrome_trace(cfg.trace_path, merged);
    }
  });
  result.comm = ptmpi::last_run_stats();
  if (tracing) {
    obs::set_enabled(was_enabled);
    obs::clear();
  }
  return result;
}

Simulation::DistRunResult Simulation::propagate_distributed(
    const DistRunOptions& opt, MeasurementSet measurements) {
  PTIM_CHECK_MSG(opt.nranks >= 1 && opt.steps >= 0,
                 "propagate_distributed: bad run options");
  // Thin deprecated wrapper: a 1:1 conversion into RunConfig + run() with a
  // dipole_x probe standing in for the old ad-hoc recording (pinned
  // bitwise-identical to the pre-RunConfig implementation by test_ensemble).
  RunConfig cfg;
  cfg.steps = opt.steps;
  cfg.nranks = opt.nranks;
  cfg.ranks_per_node = opt.ranks_per_node;
  cfg.dt = opt.ptim.dt;
  cfg.max_scf = opt.ptim.max_scf;
  cfg.tol = opt.ptim.tol;
  cfg.max_outer = opt.ptim.max_outer;
  cfg.tol_fock = opt.ptim.tol_fock;
  cfg.anderson_history = opt.ptim.anderson_history;
  cfg.anderson_beta = opt.ptim.anderson_beta;
  cfg.variant = opt.ptim.variant;
  cfg.hybrid = opt.ptim.hybrid;
  cfg.evolve_sigma = opt.ptim.evolve_sigma;
  cfg.precision = opt.ptim.exchange_precision;
  cfg.backend = opt.ptim.exchange_backend;
  cfg.process_grid = opt.ptim.process_grid;
  cfg.pattern = opt.band.pattern;
  cfg.overlap_shm = opt.band.overlap_shm;

  // Legacy call shape (no measurements): sample the default dipole probe.
  // A caller-supplied set is sampled as-is.
  if (measurements.empty())
    measurements.add("dipole_x", dipole_probe({1.0, 0.0, 0.0}));
  RunResult r = run(cfg, std::move(measurements));

  DistRunResult result;
  result.final_state = std::move(r.final_state);
  // Custom MeasurementSets need not include "dipole_x": fall back to an
  // empty series instead of throwing "no such measurement".
  if (r.measurements.has("dipole_x"))
    result.dipole = r.measurements.series("dipole_x");
  result.measurements = std::move(r.measurements);
  result.steps = std::move(r.steps);
  result.comm = std::move(r.comm);
  return result;
}

uint64_t Simulation::config_hash(const RunConfig& cfg) const {
  uint64_t h = cfg.physics_hash();
  auto mix = [&h](const auto& v) { h = io::fnv1a(&v, sizeof(v), h); };
  const uint64_t npw = sphere_->npw();
  const uint64_t nb = nbands_;
  const uint64_t na = atoms_.natoms();
  mix(npw);
  mix(nb);
  mix(na);
  mix(spec_.ecut);
  mix(spec_.temperature_k);
  // The laser is part of the physics; either attachment form contributes.
  const td::LaserParams* lp =
      pending_laser_ ? &*pending_laser_ : (laser_ ? &laser_->params() : nullptr);
  const bool has_laser = lp != nullptr;
  mix(has_laser);
  if (lp) {
    mix(lp->e0);
    mix(lp->wavelength_nm);
    mix(lp->t_center);
    mix(lp->t_width);
    for (int d = 0; d < 3; ++d) mix(lp->polarization[d]);
  }
  return h;
}

io::Checkpoint Simulation::checkpoint(const RunConfig& cfg,
                                      const td::TdState& s,
                                      uint64_t steps_done) const {
  io::Checkpoint c;
  c.state = s;
  c.step_index = steps_done;
  c.config_hash = config_hash(cfg);
  c.avec = h_->vector_potential();
  return c;
}

td::TdState Simulation::restore(const io::Checkpoint& c) {
  h_->set_vector_potential(c.avec);
  return c.state;
}

Probe Simulation::dipole_probe(grid::Vec3 dir) const {
  const grid::FftGrid* g = den_grid_.get();
  return [g, dir](const MeasureContext& ctx) {
    return td::dipole(*ctx.rho, *g, dir);
  };
}

Probe Simulation::energy_probe() {
  return [this](const MeasureContext& ctx) {
    h_->set_density(*ctx.rho);
    return h_->energy(*ctx.phi, *ctx.sigma, *ctx.rho).total();
  };
}

void Simulation::measure(MeasurementSet& m, const td::TdState& s,
                         int step) const {
  const std::vector<real_t> rho =
      ham::density_sigma(s.phi, s.sigma, h_->den_map());
  MeasureContext ctx;
  ctx.rho = &rho;
  ctx.phi = &s.phi;
  ctx.sigma = &s.sigma;
  ctx.time = s.time;
  ctx.step = step;
  m.record(ctx);
}

std::vector<real_t> Simulation::density(const td::TdState& s) const {
  return ham::density_sigma(s.phi, s.sigma, h_->den_map());
}

real_t Simulation::dipole(const td::TdState& s, const grid::Vec3& dir) const {
  return td::dipole(density(s), *den_grid_, dir);
}

ham::EnergyTerms Simulation::energy(const td::TdState& s) const {
  const std::vector<real_t> rho = density(s);
  h_->set_density(rho);
  return h_->energy(s.phi, s.sigma, rho);
}

}  // namespace ptim::core
