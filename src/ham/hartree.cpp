#include "ham/hartree.hpp"

#include "common/error.hpp"

namespace ptim::ham {

HartreeResult hartree_potential(const std::vector<real_t>& rho,
                                const grid::FftGrid& g) {
  const size_t ng = g.size();
  PTIM_CHECK(rho.size() == ng);
  std::vector<cplx> work(ng);
  for (size_t i = 0; i < ng; ++i) work[i] = rho[i];
  g.fft().forward(work.data());
  const real_t inv_ng = 1.0 / static_cast<real_t>(ng);
#pragma omp parallel for schedule(static)
  for (size_t i = 0; i < ng; ++i) {
    const real_t g2 = g.g2()[i];
    // rho(G) = FFT(rho)/Ng; V(G) = 4 pi rho(G)/G^2; then unscaled inverse.
    work[i] *= (g2 < 1e-12) ? 0.0 : kFourPi * inv_ng / g2;
  }
  g.fft().inverse(work.data());

  HartreeResult out;
  out.v.resize(ng);
  real_t e = 0.0;
  const auto scale = static_cast<real_t>(ng);  // undo the 1/Ng of inverse()
#pragma omp parallel for reduction(+ : e) schedule(static)
  for (size_t i = 0; i < ng; ++i) {
    out.v[i] = std::real(work[i]) * scale;
    e += rho[i] * out.v[i];
  }
  out.energy = 0.5 * e * g.dvol();
  return out;
}

}  // namespace ptim::ham
