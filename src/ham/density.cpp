#include "ham/density.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"
#include "la/blas.hpp"
#include "la/eig.hpp"

namespace ptim::ham {

std::vector<real_t> density_diag(const la::MatC& phi_coeffs,
                                 const std::vector<real_t>& occ,
                                 const pw::SphereGridMap& map) {
  ScopedTimer t("density.diag");
  PTIM_CHECK(occ.size() == phi_coeffs.cols());
  const size_t ng = map.grid().size();
  std::vector<real_t> rho(ng, 0.0);
  std::vector<cplx> work(ng);
  for (size_t b = 0; b < phi_coeffs.cols(); ++b) {
    if (occ[b] == 0.0) continue;
    map.to_real(phi_coeffs.col(b), work.data());
    const real_t w = 2.0 * occ[b];
#pragma omp parallel for schedule(static)
    for (size_t j = 0; j < ng; ++j) rho[j] += w * std::norm(work[j]);
  }
  return rho;
}

std::vector<real_t> density_sigma(const la::MatC& phi_coeffs,
                                  const la::MatC& sigma,
                                  const pw::SphereGridMap& map) {
  ScopedTimer t("density.sigma");
  const size_t nb = phi_coeffs.cols();
  PTIM_CHECK(sigma.rows() == nb && sigma.cols() == nb);
  la::MatC theta(phi_coeffs.rows(), nb);
  la::gemm_nn(phi_coeffs, sigma, theta);

  const size_t ng = map.grid().size();
  std::vector<real_t> rho(ng, 0.0);
  std::vector<cplx> wphi(ng), wtheta(ng);
  for (size_t b = 0; b < nb; ++b) {
    map.to_real(phi_coeffs.col(b), wphi.data());
    map.to_real(theta.col(b), wtheta.data());
    // rho += 2 * Re(theta_b(r) * conj(phi_b(r)))
#pragma omp parallel for schedule(static)
    for (size_t j = 0; j < ng; ++j)
      rho[j] += 2.0 * std::real(wtheta[j] * std::conj(wphi[j]));
  }
  return rho;
}

std::vector<real_t> density_sigma_naive(const la::MatC& phi_coeffs,
                                        const la::MatC& sigma,
                                        const pw::SphereGridMap& map) {
  ScopedTimer t("density.naive");
  const size_t nb = phi_coeffs.cols();
  PTIM_CHECK(sigma.rows() == nb && sigma.cols() == nb);
  const size_t ng = map.grid().size();

  la::MatC real_orbs;
  map.to_real_batch(phi_coeffs, real_orbs);

  std::vector<real_t> rho(ng, 0.0);
  for (size_t i = 0; i < nb; ++i) {
    for (size_t j = 0; j < nb; ++j) {
      const cplx s = sigma(i, j);
      if (s == cplx(0.0)) continue;
      const cplx* pi = real_orbs.col(i);
      const cplx* pj = real_orbs.col(j);
#pragma omp parallel for schedule(static)
      for (size_t k = 0; k < ng; ++k)
        rho[k] += 2.0 * std::real(s * pi[k] * std::conj(pj[k]));
    }
  }
  return rho;
}

real_t integrate(const std::vector<real_t>& rho, const grid::FftGrid& g) {
  PTIM_CHECK(rho.size() == g.size());
  real_t acc = 0.0;
#pragma omp parallel for reduction(+ : acc) schedule(static)
  for (size_t i = 0; i < rho.size(); ++i) acc += rho[i];
  return acc * g.dvol();
}

}  // namespace ptim::ham
