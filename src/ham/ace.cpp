#include "ham/ace.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/util.hpp"

namespace ptim::ham {

AceOperator AceOperator::build(const la::MatC& phi, const la::MatC& w) {
  ScopedTimer t("ace.build");
  PTIM_CHECK(phi.same_shape(w));
  const size_t n = phi.cols();

  // B = -Phi^H W, Hermitian positive (semi)definite.
  la::MatC b(n, n);
  la::gemm_cn(phi, w, b);
  for (size_t i = 0; i < b.size(); ++i) b.data()[i] = -b.data()[i];
  la::hermitize(b);

  // Ridge for the semidefinite edge (all-zero occupation columns).
  real_t dmax = 0.0;
  for (size_t i = 0; i < n; ++i) dmax = std::max(dmax, std::real(b(i, i)));
  const real_t ridge = std::max(dmax, real_t(1.0)) * 1e-13;
  for (size_t i = 0; i < n; ++i) b(i, i) += ridge;

  const la::MatC l = la::cholesky(b);
  AceOperator op;
  op.xi_ = w;
  la::solve_upper_right(l, op.xi_);  // xi = W * L^{-H}
  return op;
}

AceOperator AceOperator::build_diag(const ExchangeOperator& xop,
                                    const la::MatC& phi,
                                    const std::vector<real_t>& occ,
                                    la::MatC* w_out) {
  la::MatC w(phi.rows(), phi.cols());
  xop.apply_diag(phi, occ, phi, w, false);
  AceOperator op = build(phi, w);
  if (w_out) *w_out = std::move(w);
  return op;
}

void AceOperator::apply(const la::MatC& tgt, la::MatC& out,
                        bool accumulate) const {
  ScopedTimer t("ace.apply");
  PTIM_CHECK(valid() && tgt.rows() == xi_.rows());
  la::MatC proj(xi_.cols(), tgt.cols());
  la::gemm_cn(xi_, tgt, proj);
  if (!accumulate) {
    out.resize(tgt.rows(), tgt.cols());
    out.fill(cplx(0.0));
  }
  la::gemm_nn(xi_, proj, out, cplx(-1.0), cplx(1.0));
}

real_t AceOperator::energy(const la::MatC& phi,
                           const std::vector<real_t>& d) const {
  PTIM_CHECK(d.size() == phi.cols());
  la::MatC proj(xi_.cols(), phi.cols());
  la::gemm_cn(xi_, phi, proj);
  real_t e = 0.0;
  for (size_t b = 0; b < phi.cols(); ++b) {
    real_t s = 0.0;
    for (size_t k = 0; k < xi_.cols(); ++k) s += std::norm(proj(k, b));
    e -= d[b] * s;
  }
  return e;
}

}  // namespace ptim::ham
