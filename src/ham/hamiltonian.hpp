#pragma once
// The Kohn–Sham Hamiltonian with hybrid functional (paper Eq. 8):
//   H[P] = -1/2 (nabla + iA(t))^2 + V_loc,ion + V_H[rho] + V_xc[rho]
//          + V_ext(t) + alpha*Vx[P] (+ V_nl).
//
// Time-dependent fields: a spatially uniform vector potential A(t)
// (velocity gauge — the physically clean coupling for periodic cells) and
// an optional extra local potential on the density grid (length gauge for
// molecule-in-box systems).
//
// The exchange term runs in one of four modes matching the paper's
// optimization ladder: none (semilocal), exact with the naive Alg. 2 triple
// loop (baseline), exact after sigma diagonalization ("Diag"), or through
// an ACE surrogate ("ACE").

#include <memory>
#include <optional>
#include <vector>

#include "grid/fft_grid.hpp"
#include "grid/gsphere.hpp"
#include "ham/ace.hpp"
#include "ham/exchange.hpp"
#include "pseudo/atoms.hpp"
#include "pseudo/kb.hpp"
#include "pw/transforms.hpp"

namespace ptim::ham {

struct HamiltonianOptions {
  ExchangeOptions exchange;   // alpha, mu, screened
  bool hybrid = true;         // include the Fock term at all
  bool use_kb = false;        // optional nonlocal channel
  real_t kb_rc = 1.2;
  real_t kb_d0 = 0.0;
};

enum class ExchangeMode { kNone, kExactNaive, kExactDiag, kAce };

struct EnergyTerms {
  real_t kinetic = 0.0;
  real_t local = 0.0;    // rho * (V_loc,ion + V_ext)
  real_t hartree = 0.0;
  real_t xc = 0.0;       // semilocal part
  real_t fock = 0.0;     // alpha-weighted exact exchange
  real_t nonlocal = 0.0;
  real_t ewald = 0.0;
  real_t total() const {
    return kinetic + local + hartree + xc + fock + nonlocal + ewald;
  }
};

class Hamiltonian {
 public:
  Hamiltonian(const grid::Lattice& lattice, const pseudo::AtomList& atoms,
              const grid::GSphere& sphere, const grid::FftGrid& wfc_grid,
              const grid::FftGrid& den_grid, HamiltonianOptions opt);

  // --- state updates -------------------------------------------------
  // Recompute V_H, V_xc and the assembled local potential from rho.
  void set_density(const std::vector<real_t>& rho);
  void set_vector_potential(const grid::Vec3& a) { avec_ = a; }
  const grid::Vec3& vector_potential() const { return avec_; }
  // Extra local potential (length-gauge laser); empty disables it.
  void set_external_potential(std::vector<real_t> vext);

  // Exchange source state (the P in Vx[P]).
  void set_exchange_source_diag(la::MatC phi, std::vector<real_t> occ);
  void set_exchange_source_mixed(la::MatC phi, la::MatC sigma);
  void set_exchange_mode(ExchangeMode m) { xmode_ = m; }
  ExchangeMode exchange_mode() const { return xmode_; }
  // Precision policy of the exact-exchange hot path (pair FFTs, ring
  // payloads); everything else the Hamiltonian computes stays FP64.
  void set_exchange_precision(Precision p) { xop_.set_precision(p); }
  Precision exchange_precision() const { return xop_.precision(); }
  // Execution backend of the distributed ring exchange (sync / serial /
  // async streams); see backend/backend.hpp. Results are bit-identical in
  // every mode.
  void set_exchange_backend(backend::Kind k) { xop_.set_backend(k); }
  backend::Kind exchange_backend() const { return xop_.backend(); }
  // Batched-FFT block width of the exchange pair pipeline (a pure
  // throughput knob; bit-identical across widths).
  void set_exchange_batch(size_t bs) { xop_.set_batch_size(bs); }
  size_t exchange_batch() const { return xop_.batch_size(); }
  // Low-rank (ISDF) compression of the diag-exchange apply and its rank
  // factor; see ham/isdf. The fit is rebuilt at every apply, so toggling
  // the knobs never leaves stale operator state behind.
  void set_exchange_compression(ExchangeCompression c) {
    xop_.set_compression(c);
  }
  ExchangeCompression exchange_compression() const {
    return xop_.compression();
  }
  void set_isdf_rank_factor(real_t c) { xop_.set_isdf_rank_factor(c); }
  real_t isdf_rank_factor() const { return xop_.isdf_rank_factor(); }
  // Γ-point real-wavefunction fast path of the exchange pair pipeline
  // (detection-gated; complex orbitals fall back bitwise — see
  // ham/exchange.hpp).
  void set_exchange_gamma_real(bool on) { xop_.set_gamma_real(on); }
  bool exchange_gamma_real() const { return xop_.gamma_real(); }
  void set_ace(AceOperator ace) { ace_ = std::move(ace); xmode_ = ExchangeMode::kAce; }
  const AceOperator& ace() const { return ace_; }

  // --- application ---------------------------------------------------
  // hphi = H * phi for every column.
  void apply(const la::MatC& phi, la::MatC& hphi) const;
  // Kinetic + local + nonlocal only (no exchange) — used by ACE builds.
  void apply_semilocal(const la::MatC& phi, la::MatC& hphi) const;
  // Exchange part only: out (+)= alpha*Vx*phi in the current mode.
  void apply_exchange(const la::MatC& phi, la::MatC& out,
                      bool accumulate) const;

  // --- energies ------------------------------------------------------
  // Full breakdown for a mixed state (sigma may be diagonal).
  EnergyTerms energy(const la::MatC& phi, const la::MatC& sigma,
                     const std::vector<real_t>& rho) const;

  // --- accessors -----------------------------------------------------
  const grid::GSphere& sphere() const { return *sphere_; }
  const pw::SphereGridMap& wfc_map() const { return wfc_map_; }
  const pw::SphereGridMap& den_map() const { return den_map_; }
  const grid::FftGrid& den_grid() const { return *den_grid_; }
  const ExchangeOperator& exchange_op() const { return xop_; }
  const std::vector<real_t>& vloc_ion() const { return vloc_ion_; }
  const std::vector<real_t>& vtot() const { return vtot_; }
  real_t ewald() const { return ewald_; }
  real_t alpha() const { return opt_.exchange.alpha; }
  bool hybrid() const { return opt_.hybrid; }
  const pseudo::AtomList& atoms() const { return *atoms_; }

  // Diagonal kinetic factors 0.5*|G+A|^2 for the current A(t).
  std::vector<real_t> kinetic_diag() const;

 private:
  const grid::Lattice* lattice_;
  const pseudo::AtomList* atoms_;
  const grid::GSphere* sphere_;
  const grid::FftGrid* wfc_grid_;
  const grid::FftGrid* den_grid_;
  HamiltonianOptions opt_;

  pw::SphereGridMap wfc_map_;
  pw::SphereGridMap den_map_;
  ExchangeOperator xop_;
  std::optional<pseudo::KbProjector> kb_;

  std::vector<real_t> vloc_ion_;  // dense grid
  std::vector<real_t> vhxc_;      // V_H + V_xc (dense)
  std::vector<real_t> vext_;      // laser (dense, may be empty)
  std::vector<real_t> vtot_;      // sum of the above (dense)
  real_t ehartree_ = 0.0;
  real_t exc_ = 0.0;
  real_t ewald_ = 0.0;
  grid::Vec3 avec_{0.0, 0.0, 0.0};

  // Exchange source state.
  ExchangeMode xmode_ = ExchangeMode::kNone;
  la::MatC xsrc_phi_;             // rotated orbitals (diag mode) or raw
  std::vector<real_t> xsrc_occ_;  // eigen-occupations (diag mode)
  la::MatC xsrc_sigma_;           // full sigma (naive mode)
  AceOperator ace_;

  void rebuild_vtot();
};

}  // namespace ptim::ham
