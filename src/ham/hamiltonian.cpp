#include "ham/hamiltonian.hpp"

#include <cmath>

#include "common/timer.hpp"
#include "ham/density.hpp"
#include "ham/hartree.hpp"
#include "ham/xc_lda.hpp"
#include "la/blas.hpp"
#include "la/eig.hpp"
#include "la/util.hpp"
#include "pseudo/ewald.hpp"
#include "pseudo/local_pot.hpp"

namespace ptim::ham {

Hamiltonian::Hamiltonian(const grid::Lattice& lattice,
                         const pseudo::AtomList& atoms,
                         const grid::GSphere& sphere,
                         const grid::FftGrid& wfc_grid,
                         const grid::FftGrid& den_grid,
                         HamiltonianOptions opt)
    : lattice_(&lattice),
      atoms_(&atoms),
      sphere_(&sphere),
      wfc_grid_(&wfc_grid),
      den_grid_(&den_grid),
      opt_(opt),
      wfc_map_(sphere, wfc_grid),
      den_map_(sphere, den_grid),
      xop_(wfc_map_, opt.exchange) {
  vloc_ion_ = pseudo::build_local_potential(atoms, den_grid);
  vhxc_.assign(den_grid.size(), 0.0);
  ewald_ = pseudo::ewald_energy(atoms, lattice);
  if (opt_.use_kb && opt_.kb_d0 != 0.0)
    kb_.emplace(atoms, sphere, opt_.kb_rc, opt_.kb_d0);
  rebuild_vtot();
}

void Hamiltonian::set_density(const std::vector<real_t>& rho) {
  ScopedTimer t("ham.set_density");
  const HartreeResult h = hartree_potential(rho, *den_grid_);
  ehartree_ = h.energy;
  std::vector<real_t> vxc;
  exc_ = lda_pz81_eval(rho, den_grid_->dvol(), vxc);
  vhxc_.resize(den_grid_->size());
#pragma omp parallel for schedule(static)
  for (size_t i = 0; i < vhxc_.size(); ++i) vhxc_[i] = h.v[i] + vxc[i];
  rebuild_vtot();
}

void Hamiltonian::set_external_potential(std::vector<real_t> vext) {
  if (!vext.empty()) PTIM_CHECK(vext.size() == den_grid_->size());
  vext_ = std::move(vext);
  rebuild_vtot();
}

void Hamiltonian::rebuild_vtot() {
  vtot_.resize(den_grid_->size());
#pragma omp parallel for schedule(static)
  for (size_t i = 0; i < vtot_.size(); ++i) {
    real_t v = vloc_ion_[i] + vhxc_[i];
    if (!vext_.empty()) v += vext_[i];
    vtot_[i] = v;
  }
}

void Hamiltonian::set_exchange_source_diag(la::MatC phi,
                                           std::vector<real_t> occ) {
  PTIM_CHECK(occ.size() == phi.cols());
  xsrc_phi_ = std::move(phi);
  xsrc_occ_ = std::move(occ);
  if (xmode_ == ExchangeMode::kNone && opt_.hybrid)
    xmode_ = ExchangeMode::kExactDiag;
}

void Hamiltonian::set_exchange_source_mixed(la::MatC phi, la::MatC sigma) {
  PTIM_CHECK(sigma.rows() == phi.cols() && sigma.cols() == phi.cols());
  if (xmode_ == ExchangeMode::kExactNaive) {
    xsrc_phi_ = std::move(phi);
    xsrc_sigma_ = std::move(sigma);
    return;
  }
  // Diag path: rotate once here so every subsequent apply is O(N^2) FFTs.
  la::hermitize(sigma);
  const auto eig = la::eig_herm(sigma);
  la::MatC rotated(phi.rows(), phi.cols());
  la::gemm_nn(phi, eig.V, rotated);
  xsrc_phi_ = std::move(rotated);
  xsrc_occ_ = eig.w;
  if (xmode_ == ExchangeMode::kNone && opt_.hybrid)
    xmode_ = ExchangeMode::kExactDiag;
}

std::vector<real_t> Hamiltonian::kinetic_diag() const {
  const size_t npw = sphere_->npw();
  std::vector<real_t> k(npw);
  for (size_t i = 0; i < npw; ++i) {
    const grid::Vec3 g = sphere_->gvec(i);
    const grid::Vec3 ga = g + avec_;
    k[i] = 0.5 * grid::norm2(ga);
  }
  return k;
}

void Hamiltonian::apply_semilocal(const la::MatC& phi, la::MatC& hphi) const {
  ScopedTimer t("ham.apply_semilocal");
  const size_t npw = sphere_->npw();
  const size_t nb = phi.cols();
  PTIM_CHECK(phi.rows() == npw);
  hphi.resize(npw, nb);

  const std::vector<real_t> kin = kinetic_diag();
  const size_t ng = den_grid_->size();

  // Dense-grid pass for the whole orbital block: one batched inverse FFT,
  // a fused V_tot multiply, one batched forward FFT.
  la::MatC work;
  den_map_.to_real_batch(phi, work);
#pragma omp parallel for schedule(static) collapse(2)
  for (size_t b = 0; b < nb; ++b)
    for (size_t r = 0; r < ng; ++r) work.col(b)[r] *= vtot_[r];
  la::MatC gathered;
  den_map_.to_sphere_batch_inplace(work, gathered);

#pragma omp parallel for schedule(static)
  for (size_t b = 0; b < nb; ++b) {
    const cplx* in = phi.col(b);
    const cplx* gb = gathered.col(b);
    cplx* out = hphi.col(b);
    for (size_t i = 0; i < npw; ++i) out[i] = kin[i] * in[i] + gb[i];
  }
  if (kb_) kb_->apply(phi, hphi);
}

void Hamiltonian::apply_exchange(const la::MatC& phi, la::MatC& out,
                                 bool accumulate) const {
  switch (xmode_) {
    case ExchangeMode::kNone:
      if (!accumulate) {
        out.resize(phi.rows(), phi.cols());
        out.fill(cplx(0.0));
      }
      return;
    case ExchangeMode::kExactNaive:
      xop_.apply_mixed_naive(xsrc_phi_, xsrc_sigma_, phi, out, accumulate);
      return;
    case ExchangeMode::kExactDiag:
      xop_.apply_diag(xsrc_phi_, xsrc_occ_, phi, out, accumulate);
      return;
    case ExchangeMode::kAce:
      PTIM_CHECK_MSG(ace_.valid(), "ACE mode requested before ACE build");
      ace_.apply(phi, out, accumulate);
      return;
  }
}

void Hamiltonian::apply(const la::MatC& phi, la::MatC& hphi) const {
  apply_semilocal(phi, hphi);
  if (opt_.hybrid && xmode_ != ExchangeMode::kNone)
    apply_exchange(phi, hphi, /*accumulate=*/true);
}

EnergyTerms Hamiltonian::energy(const la::MatC& phi, const la::MatC& sigma,
                                const std::vector<real_t>& rho) const {
  ScopedTimer t("ham.energy");
  EnergyTerms e;
  const size_t nb = phi.cols();
  const size_t npw = sphere_->npw();

  // Kinetic: 2 Re tr(sigma * Phi^H T Phi).
  const std::vector<real_t> kin = kinetic_diag();
  la::MatC tphi(npw, nb);
  for (size_t b = 0; b < nb; ++b)
    for (size_t i = 0; i < npw; ++i) tphi(i, b) = kin[i] * phi(i, b);
  la::MatC st(nb, nb);
  la::gemm_cn(phi, tphi, st);
  cplx tr = 0.0;
  for (size_t i = 0; i < nb; ++i)
    for (size_t j = 0; j < nb; ++j) tr += sigma(i, j) * st(j, i);
  e.kinetic = 2.0 * std::real(tr);

  // Local terms: integrals against rho.
  const real_t dvol = den_grid_->dvol();
  real_t eloc = 0.0;
#pragma omp parallel for reduction(+ : eloc) schedule(static)
  for (size_t i = 0; i < rho.size(); ++i) {
    real_t v = vloc_ion_[i];
    if (!vext_.empty()) v += vext_[i];
    eloc += rho[i] * v;
  }
  e.local = eloc * dvol;
  e.hartree = ehartree_;
  e.xc = exc_;
  e.ewald = ewald_;

  // Nonlocal: 2 Re tr(sigma * Phi^H Vnl Phi).
  if (kb_) {
    la::MatC vphi(npw, nb, cplx(0.0));
    kb_->apply(phi, vphi);
    la::MatC sv(nb, nb);
    la::gemm_cn(phi, vphi, sv);
    cplx trn = 0.0;
    for (size_t i = 0; i < nb; ++i)
      for (size_t j = 0; j < nb; ++j) trn += sigma(i, j) * sv(j, i);
    e.nonlocal = 2.0 * std::real(trn);
  }

  // Fock term (alpha folded inside the operator).
  if (opt_.hybrid && xmode_ != ExchangeMode::kNone)
    e.fock = xop_.energy_mixed(phi, sigma);
  return e;
}

}  // namespace ptim::ham
