#pragma once
// Hartree potential: one Poisson solve in reciprocal space,
//   V_H(G) = 4 pi rho(G)/G^2, with the G = 0 term dropped (jellium
// compensation of the net ionic charge).

#include <vector>

#include "grid/fft_grid.hpp"

namespace ptim::ham {

struct HartreeResult {
  std::vector<real_t> v;  // V_H on the grid
  real_t energy;          // (1/2) * integral rho V_H
};

HartreeResult hartree_potential(const std::vector<real_t>& rho,
                                const grid::FftGrid& g);

}  // namespace ptim::ham
