#pragma once
// ISDF (interpolative separable density fitting) compression of the
// screened-exchange operator — ExchangeCompression::kIsdf.
//
// The diag exchange forms one pair density conj(phi_i) psi_j per (source,
// target) pair and filters each through the Coulomb kernel: O(nb^2) FFTs
// per apply. ISDF factors every pair density through Nmu = c * nb shared
// interpolation points r_mu,
//   conj(phi_i(r)) psi_j(r) ~= sum_mu zeta_mu(r) conj(phi_i(r_mu))
//                                               psi_j(r_mu),
// so the kernel filter moves onto the Nmu fitted vectors zeta_mu once per
// operator refresh (2 Nmu batched FFTs) and the apply itself collapses to
// dense GEMMs: with w = kernel_filter(zeta) and
//   G(r, mu) = sum_i d_i phi_i(r) conj(phi_i(r_mu)),
// the exchange accumulator of target j is
//   acc_j(r) = sum_mu [Ng w_mu(r) G(r, mu)] psi_j(r_mu),
// one (Ng x Nmu) x (Nmu x ntgt) product — O(nb * Nmu) work, zero pair
// FFTs. The Ng factor undoes the inverse-FFT scaling exactly like the
// dense accumulate stage, so kDense and kIsdf share every convention.
//
// Pipeline per refresh (the fit is rebuilt from scratch at every
// apply_diag, i.e. on each PT-IM/ACE outer iteration — no persistent
// state, which is what keeps checkpoints compression-agnostic):
//  1. point selection: centroid-weighted randomized QRCP (la/qr) on the
//     sketched band-product matrix M[(a,b), r] = conj(g1_a(r)) g2_b(r)
//     sqrt(rho(r)), candidates pre-ranked by the quasi-density rho;
//  2. least-squares fit of zeta via the separable normal equations
//     (Gram-matrix Hadamard products; ridged Cholesky solve);
//  3. kernel filter of zeta through the SAME batched-FFT stage primitive
//     as the dense path (ExchangeOperator::kernel_filter_block, so the
//     Precision policy and FFT bookkeeping carry over);
//  4. assembly of the apply matrix Ng w (.) G.
//
// Precision policy: under kSingle* the sources/targets are rounded at the
// real-space edge (exactly like kDense) and the zeta filter runs the FP32
// batched FFTs; the fit algebra and the final accumulation stay FP64, with
// the apply contraction Kahan-compensated under kSingleCompensated.
//
// Everything band-summed is exposed as explicit Gram-block inputs so the
// band-parallel layer (dist/isdf_dist) can feed deterministically
// Allreduced partial sums through the same fit and get a bitwise-identical
// fit on every rank.

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace ptim::ham {

class ExchangeOperator;

namespace isdf {

// Fixed sketch seeds: sources and targets draw independent deterministic
// streams, identical on every run and rank.
constexpr std::uint64_t kSeedSources = 0x15DF000000000001ull;
constexpr std::uint64_t kSeedTargets = 0x15DF000000000002ull;

// Interpolation rank: Nmu = min(Ng, ceil(c * max(nsrc, ntgt))).
size_t rank(real_t rank_factor, size_t nsrc, size_t ntgt, size_t ng);

// Random mixtures per side, k = ceil(sqrt(Nmu)), so the selection matrix
// has k^2 >= Nmu rows.
size_t sketch_width(size_t nmu);

// Deterministic dense sketch (nbands x k, fixed-seed xoshiro stream). Rows
// are indexed by GLOBAL band index: band-parallel ranks slice rows of the
// same matrix, so their band-sum partials add up to the serial sketch.
la::MatC sketch_matrix(size_t nbands, size_t k, std::uint64_t seed);

// Centroid-weighted randomized QRCP point selection. g1 = Phi R1 and
// g2 = Psi R2 are the band-summed sketches (Ng x k each), rho the
// band-summed quasi-density weight (sum_i |d_i| |phi_i|^2 + sum_j
// |psi_j|^2). Candidates are the top grid points by rho (deterministic
// ordering), the pivot sequence of the weighted product matrix picks nmu
// of them; returned sorted ascending. Bitwise-deterministic.
std::vector<size_t> select_points(const la::MatC& g1, const la::MatC& g2,
                                  const std::vector<real_t>& rho, size_t nmu);

// The fitted low-rank kernel. The interpolation vectors zeta are never
// materialized: the fit filters them batch-wise straight into apply_mat.
struct Fit {
  std::vector<size_t> points;  // nmu grid indices, ascending
  la::MatC apply_mat;          // Ng x nmu: Ng * w_mu(r) * G(r, mu)
};

// Solve the fit from band-summed Gram blocks and filter through the
// operator's kernel:
//   c_src(r, nu) = sum_i phi_i(r) conj(phi_i(r_nu))      (Ng x Nmu)
//   c_tgt(r, nu) = sum_j psi_j(r) conj(psi_j(r_nu))      (Ng x Nmu)
//   g(r, mu)     = sum_i d_i phi_i(r) conj(phi_i(r_mu))  (Ng x Nmu)
// The normal-equation matrix A(mu, nu) = conj(c_src(r_mu, nu)) *
// c_tgt(r_mu, nu) is sampled from the Gram rows when a_explicit is null;
// the distributed fit passes the A it assembled from the Allgathered
// interpolation-point values instead (identical math, rank-invariant
// association).
Fit fit(const ExchangeOperator& x, std::vector<size_t> points,
        const la::MatC& c_src, const la::MatC& c_tgt, const la::MatC& g,
        const la::MatC* a_explicit = nullptr);

// Apply the fitted kernel: tgt_pts (Nmu x ntgt) holds the targets sampled
// at the interpolation points; column j of out accumulates
// -alpha * to_sphere(apply_mat * tgt_pts(:, j)), FP64 (Kahan-compensated
// under kSingleCompensated). out must be pre-zeroed unless accumulating.
void apply(const ExchangeOperator& x, const Fit& f, const la::MatC& tgt_pts,
           la::MatC& out);

// Serial fit for diag sources/targets already in real space (FP64
// containers; under an FP32 policy the values have already been rounded
// through the FP32 real-space edge). Builds the sketches, selects points,
// assembles the Gram blocks with GEMMs and solves.
Fit fit_diag(const ExchangeOperator& x, const la::MatC& src_real,
             const std::vector<real_t>& d, const la::MatC& tgt_real);

// Full serial ISDF diag apply (the ExchangeCompression::kIsdf route of
// ExchangeOperator::apply_diag): sphere-coefficient sources/targets,
// handles the precision edge conversion, fit and apply.
void apply_diag(const ExchangeOperator& x, const la::MatC& src,
                const std::vector<real_t>& d, const la::MatC& tgt,
                la::MatC& out, bool accumulate);

}  // namespace isdf
}  // namespace ptim::ham
