#pragma once
// LDA exchange-correlation, Perdew–Zunger 1981 parameterization of the
// Ceperley–Alder electron gas (unpolarized). The paper's HSE06 uses PBE as
// the semilocal part; we substitute LDA (documented in DESIGN.md) — the
// hybrid's cost driver, the screened Fock operator, is unchanged.

#include <vector>

#include "common/types.hpp"

namespace ptim::ham {

struct XcResult {
  real_t exc_density;  // eps_xc(rho) * rho at this point (energy density)
  real_t vxc;          // d(rho*eps_xc)/d(rho)
};

XcResult lda_pz81(real_t rho);

// Vectorized evaluation: fills vxc and returns integral rho*eps_xc dvol.
real_t lda_pz81_eval(const std::vector<real_t>& rho, real_t dvol,
                     std::vector<real_t>& vxc);

}  // namespace ptim::ham
