#include "ham/exchange.hpp"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/obs.hpp"
#include "ham/isdf.hpp"
#include "la/blas.hpp"
#include "la/eig.hpp"

namespace ptim::ham {

namespace {

// Kahan-compensated FP64 add: acc[r] += term with running compensation.
// Complex add/sub are componentwise, so the classic scheme carries over.
inline void kahan_add(cplx& acc, cplx& comp, const cplx& term) {
  const cplx y = term - comp;
  const cplx t = acc + y;
  comp = (t - acc) - y;
  acc = t;
}

// Real twin for the Γ-point pipeline's real accumulators.
inline void kahan_add(real_t& acc, real_t& comp, const real_t term) {
  const real_t y = term - comp;
  const real_t t = acc + y;
  comp = (t - acc) - y;
  acc = t;
}

// Γ-point realness test: a field counts as real when its largest imaginary
// component is negligible against its largest real one (complex-to-real FFT
// round trips leave ~1e-16 relative imaginary dust in FP64, ~1e-7 in FP32;
// the thresholds sit orders of magnitude above the dust and below any
// genuine complex phase). An all-zero field is real.
template <typename C>
bool field_is_real_tol(const C* v, size_t n, double tol) {
  double mre = 0.0, mim = 0.0;
#pragma omp parallel for schedule(static) reduction(max : mre, mim)
  for (size_t r = 0; r < n; ++r) {
    mre = std::max(mre, std::abs(static_cast<double>(v[r].real())));
    mim = std::max(mim, std::abs(static_cast<double>(v[r].imag())));
  }
  return mim <= tol * mre;
}

// Detection thresholds by pipeline scalar (see field_is_real_tol).
constexpr double kRealTolF64 = 1e-12;
constexpr double kRealTolF32 = 1e-5;

}  // namespace

bool ExchangeOperator::field_is_real(const cplx* v, size_t n) {
  return field_is_real_tol(v, n, kRealTolF64);
}
bool ExchangeOperator::field_is_real(const cplxf* v, size_t n) {
  return field_is_real_tol(v, n, kRealTolF32);
}

ExchangeOperator::ExchangeOperator(const pw::SphereGridMap& wfc_map,
                                   ExchangeOptions opt)
    : map_(&wfc_map), opt_(opt) {
  // Validate the shape-determining knobs here rather than deep inside an
  // apply: a zero batch width or non-positive ISDF rank would otherwise
  // surface as an opaque failure in the hot path.
  if (opt.batch_size == 0)
    throw Error(
        "ExchangeOptions::batch_size must be >= 1 (got 0): the batched "
        "pair-FFT pipeline needs at least one lane; use 1 for the per-pair "
        "baseline");
  if (!(opt.isdf_rank_factor > 0.0))
    throw Error(
        "ExchangeOptions::isdf_rank_factor must be positive (Nmu = "
        "ceil(c * nb) interpolation points; typical c in [4, 12])");
  const auto& g = wfc_map.grid();
  kernel_.resize(g.size());
  const real_t mu2 = opt.mu * opt.mu;
#pragma omp parallel for schedule(static)
  for (size_t i = 0; i < g.size(); ++i) {
    const real_t g2 = g.g2()[i];
    if (opt.screened) {
      kernel_[i] = (g2 < 1e-12)
                       ? kPi / mu2
                       : kFourPi / g2 * (1.0 - std::exp(-g2 / (4.0 * mu2)));
    } else {
      // Bare Coulomb with a spherical-truncation G=0 value: 2 pi Rc^2 with
      // Rc the radius of the sphere of equal cell volume.
      if (g2 < 1e-12) {
        const real_t omega = g.lattice().volume();
        const real_t rc = std::cbrt(3.0 * omega / kFourPi);
        kernel_[i] = kTwoPi * rc * rc;
      } else {
        kernel_[i] = kFourPi / g2;
      }
    }
  }
  // FP32 twin, rounded once from the FP64 table — kept regardless of the
  // initial precision so set_precision can toggle modes without a rebuild.
  kernelf_.resize(kernel_.size());
  for (size_t i = 0; i < kernel_.size(); ++i)
    kernelf_[i] = static_cast<realf_t>(kernel_[i]);
}

// Core pair loop shared by the diag paths. src_real holds source orbitals
// in real space; for each target j accumulate
//   acc_j(r) = sum_i d_i phi_i(r) * IFFT[ K(G) FFT[ conj(phi_i) psi_j ] ](r)
// and return -alpha * acc_j gathered to the sphere. Zero-occupation sources
// are compressed away, then the work is dispatched to the per-pair baseline
// or the batched-FFT hot path depending on ExchangeOptions::batch_size, and
// to the FP32 pipeline when the precision policy asks for it.
void ExchangeOperator::pair_accumulate(const cplx* src_real, size_t nsrc,
                                       const real_t* d, const la::MatC& tgt,
                                       la::MatC& out, bool accumulate) const {
  if (opt_.precision != Precision::kDouble) {
    // Down-convert the sources once at the edge; everything downstream of
    // this point runs the float pair pipeline.
    const size_t ng = map_->grid().size();
    std::vector<cplxf> srcf(nsrc * ng);
#pragma omp parallel for schedule(static)
    for (size_t i = 0; i < nsrc * ng; ++i)
      srcf[i] = static_cast<cplxf>(src_real[i]);
    pair_accumulate_f32(srcf.data(), nsrc, d, tgt, out, accumulate);
    return;
  }
  if (!accumulate) out.fill(cplx(0.0));
  PTIM_CHECK(out.rows() == tgt.rows() && out.cols() == tgt.cols());

  std::vector<size_t> active;
  active.reserve(nsrc);
  for (size_t i = 0; i < nsrc; ++i)
    if (d[i] != 0.0) active.push_back(i);
  if (active.empty()) return;

  if (opt_.gamma_real &&
      try_gamma_real<real_t, cplx>(src_real, nsrc, d, active, tgt, out))
    return;

  if (opt_.batch_size <= 1)
    pair_accumulate_single(src_real, d, active, tgt, out);
  else
    pair_accumulate_blocks(src_real, d, active, tgt, out);
}

void ExchangeOperator::pair_accumulate_f32(const cplxf* src_real, size_t nsrc,
                                           const real_t* d, const la::MatC& tgt,
                                           la::MatC& out,
                                           bool accumulate) const {
  if (!accumulate) out.fill(cplx(0.0));
  PTIM_CHECK(out.rows() == tgt.rows() && out.cols() == tgt.cols());

  std::vector<size_t> active;
  active.reserve(nsrc);
  for (size_t i = 0; i < nsrc; ++i)
    if (d[i] != 0.0) active.push_back(i);
  if (active.empty()) return;

  if (opt_.gamma_real &&
      try_gamma_real<realf_t, cplxf>(src_real, nsrc, d, active, tgt, out))
    return;

  pair_accumulate_blocks(src_real, d, active, tgt, out);
}

void ExchangeOperator::pair_accumulate_single(
    const cplx* src_real, const real_t* d, const std::vector<size_t>& active,
    const la::MatC& tgt, la::MatC& out) const {
  const size_t ng = map_->grid().size();
  const size_t ntgt = tgt.cols();
  const auto& fft3 = map_->grid().fft();

  std::vector<cplx> tgt_real(ng), pair(ng), acc(ng), gathered(tgt.rows());
  for (size_t j = 0; j < ntgt; ++j) {
    map_->to_real(tgt.col(j), tgt_real.data());
    std::fill(acc.begin(), acc.end(), cplx(0.0));
    for (const size_t i : active) {
      const cplx* si = src_real + i * ng;
#pragma omp parallel for schedule(static)
      for (size_t r = 0; r < ng; ++r) pair[r] = std::conj(si[r]) * tgt_real[r];
      fft3.forward(pair.data());
      const real_t inv_ng = 1.0 / static_cast<real_t>(ng);
#pragma omp parallel for schedule(static)
      for (size_t r = 0; r < ng; ++r) pair[r] *= kernel_[r] * inv_ng;
      fft3.inverse(pair.data());
      fft_count += 2;
      // inverse() scaled by 1/Ng; undo it (we want the unscaled synthesis).
      const real_t w = d[i] * static_cast<real_t>(ng);
#pragma omp parallel for schedule(static)
      for (size_t r = 0; r < ng; ++r) acc[r] += w * si[r] * pair[r];
    }
    map_->to_sphere(acc.data(), gathered.data());
    cplx* oj = out.col(j);
    const real_t a = -opt_.alpha;
    for (size_t p = 0; p < tgt.rows(); ++p) oj[p] += a * gathered[p];
  }
}

void ExchangeOperator::kernel_filter_block(cplx* block, size_t nb) const {
  OBS_SPAN("xchg.kernel_filter", obs::Cat::kFft);
  const size_t ng = map_->grid().size();
  const auto& fft3 = map_->grid().fft();
  const real_t inv_ng = 1.0 / static_cast<real_t>(ng);
  fft3.forward_batch(block, nb);
#pragma omp parallel for schedule(static) collapse(2)
  for (size_t i = 0; i < nb; ++i)
    for (size_t r = 0; r < ng; ++r) block[i * ng + r] *= kernel_[r] * inv_ng;
  fft3.inverse_batch(block, nb);
  fft_count += static_cast<long>(2 * nb);
}

void ExchangeOperator::kernel_filter_block(cplxf* block, size_t nb) const {
  OBS_SPAN("xchg.kernel_filter", obs::Cat::kFft);
  const size_t ng = map_->grid().size();
  const auto& fft3 = map_->grid().fft_f32();
  const realf_t inv_ng = 1.0f / static_cast<realf_t>(ng);
  fft3.forward_batch(block, nb);
#pragma omp parallel for schedule(static) collapse(2)
  for (size_t i = 0; i < nb; ++i)
    for (size_t r = 0; r < ng; ++r) block[i * ng + r] *= kernelf_[r] * inv_ng;
  fft3.inverse_batch(block, nb);
  fft_count += static_cast<long>(2 * nb);
}

// --- stage primitives ------------------------------------------------------
// The four hot-path stages, each the exact loop the fused engines below are
// assembled from. They are public (and wrapped by backend/kernels as
// enqueueable stream kernels) so a stage-by-stage composition is
// bit-identical to the batched applies by construction.

template <typename CS>
void ExchangeOperator::pair_form_block_t(const CS* src_real, const size_t* idx,
                                         size_t nb, const CS* tgt_real,
                                         CS* block, size_t nloc) const {
  OBS_SPAN("xchg.pair_form", obs::Cat::kCompute);
  // Pair densities for the whole block, one fused parallel region.
#pragma omp parallel for schedule(static) collapse(2)
  for (size_t i = 0; i < nb; ++i)
    for (size_t r = 0; r < nloc; ++r)
      block[i * nloc + r] =
          std::conj(src_real[idx[i] * nloc + r]) * tgt_real[r];
}

template <typename CS>
void ExchangeOperator::accumulate_block_t(const CS* src_real, const size_t* idx,
                                          const real_t* d, size_t nb,
                                          const CS* block, cplx* acc,
                                          cplx* comp, size_t nloc) const {
  OBS_SPAN("xchg.accumulate", obs::Cat::kCompute);
  const size_t ng = map_->grid().size();
  // Fused accumulate over the block; parallel over grid points so the
  // acc[] updates never race.
#pragma omp parallel for schedule(static)
  for (size_t r = 0; r < nloc; ++r) {
    for (size_t i = 0; i < nb; ++i) {
      const size_t s = idx[i];
      // Undo the inverse-FFT 1/Ng scaling (unscaled synthesis wanted).
      const cplx term = (d[s] * static_cast<real_t>(ng)) *
                        static_cast<cplx>(src_real[s * nloc + r]) *
                        static_cast<cplx>(block[i * nloc + r]);
      if (comp)
        kahan_add(acc[r], comp[r], term);
      else
        acc[r] += term;
    }
  }
}

template <typename CS>
void ExchangeOperator::accumulate_weighted_block_t(const CS* weight_real,
                                                   const size_t* idx, size_t nb,
                                                   const CS* block, cplx* acc,
                                                   cplx* comp,
                                                   size_t nloc) const {
  const size_t ng = map_->grid().size();
#pragma omp parallel for schedule(static)
  for (size_t r = 0; r < nloc; ++r) {
    for (size_t i = 0; i < nb; ++i) {
      // Undo the inverse-FFT 1/Ng scaling (unscaled synthesis wanted).
      const cplx term = static_cast<real_t>(ng) *
                        static_cast<cplx>(weight_real[idx[i] * nloc + r]) *
                        static_cast<cplx>(block[i * nloc + r]);
      if (comp)
        kahan_add(acc[r], comp[r], term);
      else
        acc[r] += term;
    }
  }
}

void ExchangeOperator::pair_form_block(const cplx* src_real, const size_t* idx,
                                       size_t nb, const cplx* tgt_real,
                                       cplx* block) const {
  pair_form_block_t(src_real, idx, nb, tgt_real, block, map_->grid().size());
}
void ExchangeOperator::pair_form_block(const cplxf* src_real, const size_t* idx,
                                       size_t nb, const cplxf* tgt_real,
                                       cplxf* block) const {
  pair_form_block_t(src_real, idx, nb, tgt_real, block, map_->grid().size());
}
void ExchangeOperator::pair_form_block(const cplx* src_real, const size_t* idx,
                                       size_t nb, const cplx* tgt_real,
                                       cplx* block, size_t nloc) const {
  pair_form_block_t(src_real, idx, nb, tgt_real, block, nloc);
}
void ExchangeOperator::pair_form_block(const cplxf* src_real, const size_t* idx,
                                       size_t nb, const cplxf* tgt_real,
                                       cplxf* block, size_t nloc) const {
  pair_form_block_t(src_real, idx, nb, tgt_real, block, nloc);
}
void ExchangeOperator::accumulate_block(const cplx* src_real, const size_t* idx,
                                        const real_t* d, size_t nb,
                                        const cplx* block, cplx* acc,
                                        cplx* comp) const {
  accumulate_block_t(src_real, idx, d, nb, block, acc, comp,
                     map_->grid().size());
}
void ExchangeOperator::accumulate_block(const cplxf* src_real,
                                        const size_t* idx, const real_t* d,
                                        size_t nb, const cplxf* block,
                                        cplx* acc, cplx* comp) const {
  accumulate_block_t(src_real, idx, d, nb, block, acc, comp,
                     map_->grid().size());
}
void ExchangeOperator::accumulate_block(const cplx* src_real, const size_t* idx,
                                        const real_t* d, size_t nb,
                                        const cplx* block, cplx* acc,
                                        cplx* comp, size_t nloc) const {
  accumulate_block_t(src_real, idx, d, nb, block, acc, comp, nloc);
}
void ExchangeOperator::accumulate_block(const cplxf* src_real,
                                        const size_t* idx, const real_t* d,
                                        size_t nb, const cplxf* block,
                                        cplx* acc, cplx* comp,
                                        size_t nloc) const {
  accumulate_block_t(src_real, idx, d, nb, block, acc, comp, nloc);
}
void ExchangeOperator::accumulate_weighted_block(const cplx* weight_real,
                                                 const size_t* idx, size_t nb,
                                                 const cplx* block, cplx* acc,
                                                 cplx* comp) const {
  accumulate_weighted_block_t(weight_real, idx, nb, block, acc, comp,
                              map_->grid().size());
}
void ExchangeOperator::accumulate_weighted_block(const cplxf* weight_real,
                                                 const size_t* idx, size_t nb,
                                                 const cplxf* block, cplx* acc,
                                                 cplx* comp) const {
  accumulate_weighted_block_t(weight_real, idx, nb, block, acc, comp,
                              map_->grid().size());
}
void ExchangeOperator::accumulate_weighted_block(const cplx* weight_real,
                                                 const size_t* idx, size_t nb,
                                                 const cplx* block, cplx* acc,
                                                 cplx* comp,
                                                 size_t nloc) const {
  accumulate_weighted_block_t(weight_real, idx, nb, block, acc, comp, nloc);
}
void ExchangeOperator::accumulate_weighted_block(const cplxf* weight_real,
                                                 const size_t* idx, size_t nb,
                                                 const cplxf* block, cplx* acc,
                                                 cplx* comp,
                                                 size_t nloc) const {
  accumulate_weighted_block_t(weight_real, idx, nb, block, acc, comp, nloc);
}

void ExchangeOperator::gather_accumulate(const cplx* acc, cplx* scratch,
                                         cplx* out_col) const {
  OBS_SPAN("xchg.gather", obs::Cat::kCompute);
  map_->to_sphere(acc, scratch);
  const size_t npw = map_->sphere().npw();
  const real_t a = -opt_.alpha;
  for (size_t p = 0; p < npw; ++p) out_col[p] += a * scratch[p];
}

// --- Γ-point real-pair stages ---------------------------------------------
// Two real pair densities per complex FFT lane (see exchange.hpp). The
// packed lane goes through the UNCHANGED kernel_filter_block: K(G) is real
// and even, so by linearity the filter acts on the Re and Im residents
// independently and exactly — no spectrum unscramble anywhere.

template <typename RS, typename CS>
void ExchangeOperator::pair_pack_block_real_t(const RS* src_real,
                                              const size_t* idx, size_t nb,
                                              const RS* tgt_real, CS* block,
                                              size_t nloc) const {
  OBS_SPAN("xchg.pair_form", obs::Cat::kCompute);
  const size_t nlanes = (nb + 1) / 2;
#pragma omp parallel for schedule(static) collapse(2)
  for (size_t q = 0; q < nlanes; ++q)
    for (size_t r = 0; r < nloc; ++r) {
      const RS a = src_real[idx[2 * q] * nloc + r] * tgt_real[r];
      const RS b = (2 * q + 1 < nb)
                       ? src_real[idx[2 * q + 1] * nloc + r] * tgt_real[r]
                       : RS(0);
      block[q * nloc + r] = CS(a, b);
    }
}

template <typename RS, typename CS>
void ExchangeOperator::accumulate_block_real_t(
    const RS* src_real, const size_t* idx, const real_t* d, size_t nb,
    const CS* block, real_t* acc, real_t* comp, size_t nloc) const {
  OBS_SPAN("xchg.accumulate", obs::Cat::kCompute);
  const size_t ng = map_->grid().size();
#pragma omp parallel for schedule(static)
  for (size_t r = 0; r < nloc; ++r) {
    for (size_t i = 0; i < nb; ++i) {
      const size_t s = idx[i];
      const CS z = block[(i / 2) * nloc + r];
      const real_t u = (i % 2 == 0) ? static_cast<real_t>(z.real())
                                    : static_cast<real_t>(z.imag());
      // Undo the inverse-FFT 1/Ng scaling (unscaled synthesis wanted).
      const real_t term = (d[s] * static_cast<real_t>(ng)) *
                          static_cast<real_t>(src_real[s * nloc + r]) * u;
      if (comp)
        kahan_add(acc[r], comp[r], term);
      else
        acc[r] += term;
    }
  }
}

void ExchangeOperator::pair_pack_block_real(const real_t* src_real,
                                            const size_t* idx, size_t nb,
                                            const real_t* tgt_real, cplx* block,
                                            size_t nloc) const {
  pair_pack_block_real_t(src_real, idx, nb, tgt_real, block, nloc);
}
void ExchangeOperator::pair_pack_block_real(const realf_t* src_real,
                                            const size_t* idx, size_t nb,
                                            const realf_t* tgt_real,
                                            cplxf* block, size_t nloc) const {
  pair_pack_block_real_t(src_real, idx, nb, tgt_real, block, nloc);
}
void ExchangeOperator::accumulate_block_real(const real_t* src_real,
                                             const size_t* idx,
                                             const real_t* d, size_t nb,
                                             const cplx* block, real_t* acc,
                                             real_t* comp, size_t nloc) const {
  accumulate_block_real_t(src_real, idx, d, nb, block, acc, comp, nloc);
}
void ExchangeOperator::accumulate_block_real(const realf_t* src_real,
                                             const size_t* idx,
                                             const real_t* d, size_t nb,
                                             const cplxf* block, real_t* acc,
                                             real_t* comp, size_t nloc) const {
  accumulate_block_real_t(src_real, idx, d, nb, block, acc, comp, nloc);
}

// Γ-point block engine: blocks of 2*batch_size real densities ride
// batch_size packed FFT lanes, so the transform workspace matches the
// complex engine's while the transform COUNT halves. Block boundaries sit
// at even density offsets — lane pairing, every transformed value, and the
// in-order FP64 accumulation are all independent of batch_size (pinned
// bitwise in tests/test_exchange.cpp).
template <typename RS, typename CS>
void ExchangeOperator::pair_accumulate_real_blocks(
    const RS* src_real, const real_t* d, const std::vector<size_t>& active,
    const RS* tgt_real, size_t ntgt, la::MatC& out) const {
  const size_t ng = map_->grid().size();
  const size_t bs2 = 2 * std::max<size_t>(1, opt_.batch_size);
  const bool compensated = std::is_same_v<CS, cplxf> &&
                           opt_.precision == Precision::kSingleCompensated;

  std::vector<CS> block((bs2 / 2) * ng);
  std::vector<real_t> acc(ng), comp(compensated ? ng : 0);
  std::vector<cplx> acc_c(ng), gathered(out.rows());
  for (size_t j = 0; j < ntgt; ++j) {
    const RS* tj = tgt_real + j * ng;
    std::fill(acc.begin(), acc.end(), real_t(0));
    std::fill(comp.begin(), comp.end(), real_t(0));
    for (size_t i0 = 0; i0 < active.size(); i0 += bs2) {
      const size_t nb = std::min(bs2, active.size() - i0);
      pair_pack_block_real_t<RS, CS>(src_real, active.data() + i0, nb, tj,
                                     block.data(), ng);
      kernel_filter_block(block.data(), (nb + 1) / 2);
      accumulate_block_real_t<RS, CS>(src_real, active.data() + i0, d, nb,
                                      block.data(), acc.data(),
                                      compensated ? comp.data() : nullptr, ng);
    }
#pragma omp parallel for schedule(static)
    for (size_t r = 0; r < ng; ++r) acc_c[r] = cplx(acc[r], 0.0);
    gather_accumulate(acc_c.data(), gathered.data(), out.col(j));
  }
}

// Realness gate of the dense diag paths: transform the targets, test every
// active source and every target, and only then commit to the real engine.
// Any complex field anywhere means a `false` return with `out` untouched —
// the caller's complex pipeline then runs exactly as with gamma_real off.
template <typename RS, typename CS>
bool ExchangeOperator::try_gamma_real(const CS* src_real, size_t nsrc,
                                      const real_t* d,
                                      const std::vector<size_t>& active,
                                      const la::MatC& tgt,
                                      la::MatC& out) const {
  const size_t ng = map_->grid().size();
  for (const size_t i : active)
    if (!field_is_real(src_real + i * ng, ng)) return false;
  la::Matrix<CS> tgt_grid;
  map_->to_real_batch(tgt, tgt_grid);
  const size_t ntgt = tgt.cols();
  for (size_t j = 0; j < ntgt; ++j)
    if (!field_is_real(tgt_grid.col(j), ng)) return false;

  std::vector<RS> src_r(nsrc * ng), tgt_r(ntgt * ng);
  const size_t na = active.size();
#pragma omp parallel for schedule(static) collapse(2)
  for (size_t a = 0; a < na; ++a)
    for (size_t r = 0; r < ng; ++r) {
      const size_t i = active[a];
      src_r[i * ng + r] = src_real[i * ng + r].real();
    }
#pragma omp parallel for schedule(static) collapse(2)
  for (size_t j = 0; j < ntgt; ++j)
    for (size_t r = 0; r < ng; ++r)
      tgt_r[j * ng + r] = tgt_grid.col(j)[r].real();

  pair_accumulate_real_blocks<RS, CS>(src_r.data(), d, active, tgt_r.data(),
                                      ntgt, out);
  return true;
}

void ExchangeOperator::apply_diag_realspace_real(const real_t* src_real,
                                                 size_t nsrc, const real_t* d,
                                                 const la::MatC& tgt,
                                                 la::MatC& out,
                                                 bool accumulate) const {
  const size_t ng = map_->grid().size();
  if (opt_.precision != Precision::kDouble) {
    std::vector<realf_t> srcf(nsrc * ng);
#pragma omp parallel for schedule(static)
    for (size_t i = 0; i < nsrc * ng; ++i)
      srcf[i] = static_cast<realf_t>(src_real[i]);
    apply_diag_realspace_real(srcf.data(), nsrc, d, tgt, out, accumulate);
    return;
  }
  if (!accumulate) out.fill(cplx(0.0));
  PTIM_CHECK(out.rows() == tgt.rows() && out.cols() == tgt.cols());
  std::vector<size_t> active;
  active.reserve(nsrc);
  for (size_t i = 0; i < nsrc; ++i)
    if (d[i] != 0.0) active.push_back(i);
  if (active.empty()) return;

  la::MatC tgt_grid;
  map_->to_real_batch(tgt, tgt_grid);
  const size_t ntgt = tgt.cols();
  std::vector<real_t> tgt_r(ntgt * ng);
#pragma omp parallel for schedule(static) collapse(2)
  for (size_t j = 0; j < ntgt; ++j)
    for (size_t r = 0; r < ng; ++r)
      tgt_r[j * ng + r] = tgt_grid.col(j)[r].real();
  pair_accumulate_real_blocks<real_t, cplx>(src_real, d, active, tgt_r.data(),
                                            ntgt, out);
}

void ExchangeOperator::apply_diag_realspace_real(const realf_t* src_real,
                                                 size_t nsrc, const real_t* d,
                                                 const la::MatC& tgt,
                                                 la::MatC& out,
                                                 bool accumulate) const {
  if (!accumulate) out.fill(cplx(0.0));
  PTIM_CHECK(out.rows() == tgt.rows() && out.cols() == tgt.cols());
  std::vector<size_t> active;
  active.reserve(nsrc);
  for (size_t i = 0; i < nsrc; ++i)
    if (d[i] != 0.0) active.push_back(i);
  if (active.empty()) return;

  const size_t ng = map_->grid().size();
  la::MatCf tgt_grid;
  map_->to_real_batch(tgt, tgt_grid);
  const size_t ntgt = tgt.cols();
  std::vector<realf_t> tgt_r(ntgt * ng);
#pragma omp parallel for schedule(static) collapse(2)
  for (size_t j = 0; j < ntgt; ++j)
    for (size_t r = 0; r < ng; ++r)
      tgt_r[j * ng + r] = tgt_grid.col(j)[r].real();
  pair_accumulate_real_blocks<realf_t, cplxf>(src_real, d, active,
                                              tgt_r.data(), ntgt, out);
}

// Shared batched block engine for the diag paths, templated over the slab
// scalar: CS = cplx runs the FP64 pipeline, CS = cplxf the FP32 one (pair
// forming, FFTs and kernel filter in single precision; every float product
// is promoted to FP64 exactly once inside the accumulation, which runs
// plain or Kahan-compensated depending on the policy). batch_size == 1
// degenerates to width-1 blocks, preserving the per-pair transform count.
// The body is a straight-line composition of the stage primitives above.
template <typename CS>
void ExchangeOperator::pair_accumulate_blocks(const CS* src_real,
                                              const real_t* d,
                                              const std::vector<size_t>& active,
                                              const la::MatC& tgt,
                                              la::MatC& out) const {
  const size_t ng = map_->grid().size();
  const size_t ntgt = tgt.cols();
  const size_t bs = std::max<size_t>(1, opt_.batch_size);
  const bool compensated = std::is_same_v<CS, cplxf> &&
                           opt_.precision == Precision::kSingleCompensated;

  std::vector<CS> tgt_real(ng), block(bs * ng);
  std::vector<cplx> acc(ng), comp(compensated ? ng : 0), gathered(tgt.rows());
  for (size_t j = 0; j < ntgt; ++j) {
    map_->to_real(tgt.col(j), tgt_real.data());
    std::fill(acc.begin(), acc.end(), cplx(0.0));
    std::fill(comp.begin(), comp.end(), cplx(0.0));
    for (size_t i0 = 0; i0 < active.size(); i0 += bs) {
      const size_t nb = std::min(bs, active.size() - i0);
      pair_form_block_t(src_real, active.data() + i0, nb, tgt_real.data(),
                        block.data(), ng);
      kernel_filter_block(block.data(), nb);
      accumulate_block_t(src_real, active.data() + i0, d, nb, block.data(),
                         acc.data(), compensated ? comp.data() : nullptr, ng);
    }
    gather_accumulate(acc.data(), gathered.data(), out.col(j));
  }
}

// Weighted-pair analogue of pair_accumulate_blocks (scalar occupation d_k
// replaced by the real-space weight field w_k), same CS convention.
template <typename CS>
void ExchangeOperator::weighted_blocks(const CS* src_real,
                                       const CS* weight_real, size_t nsrc,
                                       const la::MatC& tgt,
                                       la::MatC& out) const {
  const size_t ng = map_->grid().size();
  const size_t ntgt = tgt.cols();
  const size_t bs = std::max<size_t>(1, opt_.batch_size);
  const bool compensated = std::is_same_v<CS, cplxf> &&
                           opt_.precision == Precision::kSingleCompensated;

  // Every source participates (the weight field carries the sigma
  // contraction), so the stage index list is the identity.
  std::vector<size_t> idx(nsrc);
  for (size_t i = 0; i < nsrc; ++i) idx[i] = i;

  std::vector<CS> tgt_real(ng), block(bs * ng);
  std::vector<cplx> acc(ng), comp(compensated ? ng : 0), gathered(tgt.rows());
  for (size_t j = 0; j < ntgt; ++j) {
    map_->to_real(tgt.col(j), tgt_real.data());
    std::fill(acc.begin(), acc.end(), cplx(0.0));
    std::fill(comp.begin(), comp.end(), cplx(0.0));
    for (size_t i0 = 0; i0 < nsrc; i0 += bs) {
      const size_t nb = std::min(bs, nsrc - i0);
      pair_form_block_t(src_real, idx.data() + i0, nb, tgt_real.data(),
                        block.data(), ng);
      kernel_filter_block(block.data(), nb);
      accumulate_weighted_block_t(weight_real, idx.data() + i0, nb,
                                  block.data(), acc.data(),
                                  compensated ? comp.data() : nullptr, ng);
    }
    gather_accumulate(acc.data(), gathered.data(), out.col(j));
  }
}

// Alg. 2 verbatim with the pair FFT inside the i loop on purpose — this
// reproduces the baseline's N^3 transform count (see DESIGN.md). With
// batch_size > 1 the i loop is blocked: each block member transforms its
// own (redundant) copy of the pair density, preserving the count while
// going through the batched FFT engine. Same CS convention as above.
template <typename CS>
void ExchangeOperator::mixed_naive_blocks(const la::Matrix<CS>& src_real,
                                          const la::MatC& sigma,
                                          const la::MatC& tgt,
                                          la::MatC& out) const {
  const size_t ng = map_->grid().size();
  const size_t nsrc = src_real.cols();
  const size_t bs = std::max<size_t>(1, opt_.batch_size);
  const bool compensated = std::is_same_v<CS, cplxf> &&
                           opt_.precision == Precision::kSingleCompensated;

  std::vector<CS> tgt_real(ng), block(bs * ng);
  std::vector<cplx> acc(ng), comp(compensated ? ng : 0), gathered(tgt.rows());
  for (size_t j = 0; j < tgt.cols(); ++j) {
    map_->to_real(tgt.col(j), tgt_real.data());
    std::fill(acc.begin(), acc.end(), cplx(0.0));
    std::fill(comp.begin(), comp.end(), cplx(0.0));
    for (size_t k = 0; k < nsrc; ++k) {
      const CS* sk = src_real.col(k);
      std::vector<size_t> active;
      active.reserve(nsrc);
      for (size_t i = 0; i < nsrc; ++i)
        if (sigma(i, k) != cplx(0.0)) active.push_back(i);
      for (size_t i0 = 0; i0 < active.size(); i0 += bs) {
        const size_t nb = std::min(bs, active.size() - i0);
#pragma omp parallel for schedule(static) collapse(2)
        for (size_t i = 0; i < nb; ++i)
          for (size_t r = 0; r < ng; ++r)
            block[i * ng + r] = std::conj(sk[r]) * tgt_real[r];
        kernel_filter_block(block.data(), nb);
#pragma omp parallel for schedule(static)
        for (size_t r = 0; r < ng; ++r) {
          for (size_t i = 0; i < nb; ++i) {
            const cplx w = sigma(active[i0 + i], k) * static_cast<real_t>(ng);
            const cplx term =
                w * static_cast<cplx>(src_real.col(active[i0 + i])[r]) *
                static_cast<cplx>(block[i * ng + r]);
            if (compensated)
              kahan_add(acc[r], comp[r], term);
            else
              acc[r] += term;
          }
        }
      }
    }
    map_->to_sphere(acc.data(), gathered.data());
    cplx* oj = out.col(j);
    const real_t a = -opt_.alpha;
    for (size_t p = 0; p < tgt.rows(); ++p) oj[p] += a * gathered[p];
  }
}

void ExchangeOperator::apply_weighted_realspace(const cplx* src_real,
                                                const cplx* weight_real,
                                                size_t nsrc,
                                                const la::MatC& tgt,
                                                la::MatC& out,
                                                bool accumulate) const {
  if (opt_.precision != Precision::kDouble) {
    const size_t ng = map_->grid().size();
    std::vector<cplxf> srcf(nsrc * ng), wf(nsrc * ng);
#pragma omp parallel for schedule(static)
    for (size_t i = 0; i < nsrc * ng; ++i) {
      srcf[i] = static_cast<cplxf>(src_real[i]);
      wf[i] = static_cast<cplxf>(weight_real[i]);
    }
    apply_weighted_realspace(srcf.data(), wf.data(), nsrc, tgt, out,
                             accumulate);
    return;
  }
  if (!accumulate) out.fill(cplx(0.0));
  PTIM_CHECK(out.rows() == tgt.rows() && out.cols() == tgt.cols());
  if (nsrc == 0) return;
  weighted_blocks(src_real, weight_real, nsrc, tgt, out);
}

void ExchangeOperator::apply_weighted_realspace(const cplxf* src_real,
                                                const cplxf* weight_real,
                                                size_t nsrc,
                                                const la::MatC& tgt,
                                                la::MatC& out,
                                                bool accumulate) const {
  if (!accumulate) out.fill(cplx(0.0));
  PTIM_CHECK(out.rows() == tgt.rows() && out.cols() == tgt.cols());
  if (nsrc == 0) return;
  weighted_blocks(src_real, weight_real, nsrc, tgt, out);
}

void ExchangeOperator::set_isdf_rank_factor(real_t c) {
  if (!(c > 0.0))
    throw Error("ExchangeOperator::set_isdf_rank_factor: factor must be "
                "positive (typical c in [4, 12])");
  opt_.isdf_rank_factor = c;
}

void ExchangeOperator::apply_diag(const la::MatC& src,
                                  const std::vector<real_t>& d,
                                  const la::MatC& tgt, la::MatC& out,
                                  bool accumulate) const {
  ScopedTimer t("exchange.diag");
  PTIM_CHECK(d.size() == src.cols());
  if (opt_.compression == ExchangeCompression::kIsdf) {
    // Low-rank route: fit + GEMM apply (ham/isdf), handling the precision
    // edge itself. The realspace/ring primitives below stay dense — the
    // distributed ISDF path replaces the circulation wholesale
    // (dist/isdf_dist) instead of intercepting partial-source calls.
    isdf::apply_diag(*this, src, d, tgt, out, accumulate);
    return;
  }
  if (opt_.precision != Precision::kDouble) {
    // Sources go straight to FP32 real space (down-convert at the edge).
    la::MatCf src_real;
    map_->to_real_batch(src, src_real);
    pair_accumulate_f32(src_real.data(), src_real.cols(), d.data(), tgt, out,
                        accumulate);
    return;
  }
  la::MatC src_real;
  map_->to_real_batch(src, src_real);
  pair_accumulate(src_real.data(), src_real.cols(), d.data(), tgt, out,
                  accumulate);
}

namespace {

// Per-job progress of a packed application (CS = cplx or cplxf, matching
// the operator's precision policy). Each cursor replays EXACTLY the loop
// structure of pair_accumulate_blocks — column by column, block by block in
// order — so sharing the FFT batch with other jobs cannot change its
// arithmetic.
template <typename CS>
struct PackedCursor {
  la::Matrix<CS> src_real;       // sources in real space (owned)
  const real_t* d = nullptr;     // occupations, indexed by `active`
  const la::MatC* tgt = nullptr;
  la::MatC* out = nullptr;
  std::vector<size_t> active;    // nonzero-occupation source list
  std::vector<CS> tgt_real;
  std::vector<cplx> acc, comp, gathered;
  size_t j = 0;                  // current target column
  size_t i0 = 0;                 // next source block start within `active`
  bool col_open = false;
  bool done = false;
};

// Round-robin block engine over a pack of cursors: one batch_size block per
// unfinished job per round, one concatenated kernel_filter_block call, then
// per-job accumulation. Uses only the public stage primitives, so each
// job's per-block arithmetic is the fused engine's by construction.
template <typename CS>
void packed_blocks(const ExchangeOperator& x, std::vector<PackedCursor<CS>>& cur,
                   bool compensated) {
  const size_t ng = x.map().grid().size();
  const size_t bs = std::max<size_t>(1, x.batch_size());
  std::vector<CS> block(cur.size() * bs * ng);
  struct Member {
    PackedCursor<CS>* c;
    size_t nb;
    size_t off;  // element offset into the shared block buffer
  };
  std::vector<Member> members;
  members.reserve(cur.size());
  for (;;) {
    members.clear();
    size_t width = 0;
    for (auto& c : cur) {
      if (c.done) continue;
      if (!c.col_open) {
        x.map().to_real(c.tgt->col(c.j), c.tgt_real.data());
        std::fill(c.acc.begin(), c.acc.end(), cplx(0.0));
        std::fill(c.comp.begin(), c.comp.end(), cplx(0.0));
        c.i0 = 0;
        c.col_open = true;
      }
      const size_t nb = std::min(bs, c.active.size() - c.i0);
      x.pair_form_block(c.src_real.data(), c.active.data() + c.i0, nb,
                        c.tgt_real.data(), block.data() + width * ng, ng);
      members.push_back({&c, nb, width});
      width += nb;
    }
    if (members.empty()) break;
    x.kernel_filter_block(block.data(), width);
    for (const Member& m : members) {
      PackedCursor<CS>& c = *m.c;
      x.accumulate_block(c.src_real.data(), c.active.data() + c.i0, c.d, m.nb,
                         block.data() + m.off * ng, c.acc.data(),
                         compensated ? c.comp.data() : nullptr, ng);
      c.i0 += m.nb;
      if (c.i0 >= c.active.size()) {
        x.gather_accumulate(c.acc.data(), c.gathered.data(),
                            c.out->col(c.j));
        ++c.j;
        c.col_open = false;
        if (c.j >= c.tgt->cols()) c.done = true;
      }
    }
  }
}

template <typename CS>
void run_packed(const ExchangeOperator& x,
                const std::vector<ExchangeOperator::DiagApplyJob>& jobs,
                bool compensated) {
  const size_t ng = x.map().grid().size();
  std::vector<PackedCursor<CS>> cur(jobs.size());
  for (size_t k = 0; k < jobs.size(); ++k) {
    const auto& job = jobs[k];
    PackedCursor<CS>& c = cur[k];
    x.map().to_real_batch(*job.src, c.src_real);
    c.d = job.d->data();
    c.tgt = job.tgt;
    c.out = job.out;
    c.active.reserve(job.d->size());
    for (size_t i = 0; i < job.d->size(); ++i)
      if ((*job.d)[i] != 0.0) c.active.push_back(i);
    c.tgt_real.resize(ng);
    c.acc.resize(ng);
    if (compensated) c.comp.resize(ng);
    c.gathered.resize(job.tgt->rows());
    c.done = c.active.empty() || job.tgt->cols() == 0;
  }
  packed_blocks(x, cur, compensated);
}

}  // namespace

void ExchangeOperator::apply_diag_packed(const std::vector<DiagApplyJob>& jobs,
                                         bool accumulate) const {
  ScopedTimer t("exchange.diag_packed");
  for (const DiagApplyJob& job : jobs) {
    PTIM_CHECK(job.src && job.d && job.tgt && job.out);
    PTIM_CHECK(job.d->size() == job.src->cols());
    PTIM_CHECK(job.out->rows() == job.tgt->rows() &&
               job.out->cols() == job.tgt->cols());
    if (!accumulate) job.out->fill(cplx(0.0));
  }
  if (jobs.empty()) return;
  if (opt_.compression == ExchangeCompression::kIsdf) {
    // Each job gets its own fit (sources differ per trajectory), so there
    // is no shared FFT batch to pack; the per-job result is identical to a
    // standalone apply_diag by construction.
    for (const DiagApplyJob& job : jobs)
      isdf::apply_diag(*this, *job.src, *job.d, *job.tgt, *job.out,
                       /*accumulate=*/true);
    return;
  }
  if (opt_.precision != Precision::kDouble) {
    run_packed<cplxf>(*this, jobs,
                      opt_.precision == Precision::kSingleCompensated);
  } else {
    run_packed<cplx>(*this, jobs, false);
  }
}

void ExchangeOperator::apply_mixed_naive(const la::MatC& src,
                                         const la::MatC& sigma,
                                         const la::MatC& tgt, la::MatC& out,
                                         bool accumulate) const {
  ScopedTimer t("exchange.naive");
  const size_t nsrc = src.cols();
  PTIM_CHECK(sigma.rows() == nsrc && sigma.cols() == nsrc);
  if (!accumulate) out.fill(cplx(0.0));

  if (opt_.precision != Precision::kDouble) {
    la::MatCf src_real;
    map_->to_real_batch(src, src_real);
    mixed_naive_blocks(src_real, sigma, tgt, out);
    return;
  }
  la::MatC src_real;
  map_->to_real_batch(src, src_real);
  mixed_naive_blocks(src_real, sigma, tgt, out);
}

void ExchangeOperator::apply_mixed_diag(const la::MatC& src,
                                        const la::MatC& sigma,
                                        const la::MatC& tgt, la::MatC& out,
                                        bool accumulate) const {
  ScopedTimer t("exchange.mixed_diag");
  const size_t nsrc = src.cols();
  PTIM_CHECK(sigma.rows() == nsrc && sigma.cols() == nsrc);
  // sigma = Q D Q^H (Hermitian by construction in PT-IM). The
  // diagonalization and rotation stay FP64 in every precision mode — only
  // the pair pipeline inside apply_diag narrows.
  const auto eig = la::eig_herm(sigma);
  la::MatC rotated(src.rows(), nsrc);
  la::gemm_nn(src, eig.V, rotated);
  std::vector<real_t> d = eig.w;
  apply_diag(rotated, d, tgt, out, accumulate);
}

real_t ExchangeOperator::energy_diag(const la::MatC& src,
                                     const std::vector<real_t>& d) const {
  la::MatC w(src.rows(), src.cols());
  apply_diag(src, d, src, w, false);
  real_t e = 0.0;
  for (size_t b = 0; b < src.cols(); ++b)
    e += d[b] * std::real(la::dotc(src.rows(), src.col(b), w.col(b)));
  return e;
}

real_t ExchangeOperator::energy_mixed(const la::MatC& src,
                                      const la::MatC& sigma) const {
  const auto eig = la::eig_herm(sigma);
  la::MatC rotated(src.rows(), src.cols());
  la::gemm_nn(src, eig.V, rotated);
  return energy_diag(rotated, eig.w);
}

}  // namespace ptim::ham
