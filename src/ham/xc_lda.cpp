#include "ham/xc_lda.hpp"

#include <cmath>

namespace ptim::ham {

XcResult lda_pz81(real_t rho) {
  XcResult out{0.0, 0.0};
  if (rho <= 1e-14) return out;

  // Slater exchange.
  const real_t cx = 0.75 * std::cbrt(3.0 / kPi);
  const real_t rho13 = std::cbrt(rho);
  const real_t ex = -cx * rho13;
  const real_t vx = (4.0 / 3.0) * ex;

  // PZ81 correlation.
  const real_t rs = std::cbrt(3.0 / (kFourPi * rho));
  real_t ec, vc;
  if (rs >= 1.0) {
    const real_t gamma = -0.1423, beta1 = 1.0529, beta2 = 0.3334;
    const real_t sq = std::sqrt(rs);
    const real_t den = 1.0 + beta1 * sq + beta2 * rs;
    ec = gamma / den;
    vc = ec * (1.0 + (7.0 / 6.0) * beta1 * sq + (4.0 / 3.0) * beta2 * rs) / den;
  } else {
    const real_t a = 0.0311, b = -0.048, c = 0.0020, d = -0.0116;
    const real_t lnrs = std::log(rs);
    ec = a * lnrs + b + c * rs * lnrs + d * rs;
    vc = a * lnrs + (b - a / 3.0) + (2.0 / 3.0) * c * rs * lnrs +
         ((2.0 * d - c) / 3.0) * rs;
  }

  out.exc_density = rho * (ex + ec);
  out.vxc = vx + vc;
  return out;
}

real_t lda_pz81_eval(const std::vector<real_t>& rho, real_t dvol,
                     std::vector<real_t>& vxc) {
  vxc.resize(rho.size());
  real_t exc = 0.0;
#pragma omp parallel for reduction(+ : exc) schedule(static)
  for (size_t i = 0; i < rho.size(); ++i) {
    const XcResult r = lda_pz81(rho[i]);
    vxc[i] = r.vxc;
    exc += r.exc_density;
  }
  return exc * dvol;
}

}  // namespace ptim::ham
