#pragma once
// Electron density builders for mixed states, rho(r) = 2 sum_ij sigma_ij
// phi_i(r) conj(phi_j(r)) (spin factor 2, sigma eigenvalues in [0,1]).
//
// Three algorithmically equivalent paths mirroring the paper:
//  * naive      — explicit (i,j) pair loop, the pre-optimization baseline
//                 (O(N^2 Ng) work after N transforms),
//  * gemm       — Theta = Phi*sigma then rho = 2 sum_j Re(theta_j conj(phi_j))
//                 (2N transforms + one gemm),
//  * diagonal   — rho = 2 sum_i d_i |phi'_i|^2 after sigma = Q D Q^H and
//                 phi' = Phi Q (the paper's "Diag" optimization, N transforms).
// All three agree to machine precision; tests enforce it.

#include <vector>

#include "la/matrix.hpp"
#include "pw/transforms.hpp"

namespace ptim::ham {

// Diagonal occupations d_i (pure states or post-diagonalization).
std::vector<real_t> density_diag(const la::MatC& phi_coeffs,
                                 const std::vector<real_t>& occ,
                                 const pw::SphereGridMap& map);

// Full sigma via Theta = Phi * sigma (production mixed-state path).
std::vector<real_t> density_sigma(const la::MatC& phi_coeffs,
                                  const la::MatC& sigma,
                                  const pw::SphereGridMap& map);

// Full sigma via the explicit pair loop (baseline; benchmarking only).
std::vector<real_t> density_sigma_naive(const la::MatC& phi_coeffs,
                                        const la::MatC& sigma,
                                        const pw::SphereGridMap& map);

// integral rho dr (should equal the electron count).
real_t integrate(const std::vector<real_t>& rho, const grid::FftGrid& g);

}  // namespace ptim::ham
