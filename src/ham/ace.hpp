#pragma once
// Adaptively Compressed Exchange (Lin, JCTC 12, 2242 (2016)), the paper's
// second algorithmic optimization (Sec. IV-A2).
//
// Given orbitals Phi and W = (alpha Vx) Phi, the rank-N surrogate
//   V_ACE = -xi xi^H,   xi = W L^{-H},   -Phi^H W = L L^H
// satisfies V_ACE phi_i = W_i exactly on the constructing orbitals while
// costing only two gemms per application instead of N^2 FFTs. PT-IM-ACE
// keeps two of these (at t_n and the midpoint), rebuilt in the outer SCF.

#include <vector>

#include "ham/exchange.hpp"
#include "la/matrix.hpp"

namespace ptim::ham {

class AceOperator {
 public:
  AceOperator() = default;

  // phi: npw x n orbitals; w = (alpha Vx) phi. -Phi^H W must be positive
  // definite (true whenever all occupations are > 0; a tiny ridge guards
  // the semidefinite edge).
  static AceOperator build(const la::MatC& phi, const la::MatC& w);

  // One-stop builder on the exchange hot path: computes W = (alpha Vx) Phi
  // through xop.apply_diag — i.e. in blocks of ExchangeOptions::batch_size
  // through the batched FFT engine, at the operator's configured Precision
  // (the FP32 policy applies to the pair FFTs inside this build; the
  // Cholesky compression and xi stay FP64). When w_out is given it
  // receives W (callers reuse it for the Fock energy estimate).
  static AceOperator build_diag(const ExchangeOperator& xop,
                                const la::MatC& phi,
                                const std::vector<real_t>& occ,
                                la::MatC* w_out = nullptr);

  bool valid() const { return xi_.cols() > 0; }
  size_t rank() const { return xi_.cols(); }
  const la::MatC& xi() const { return xi_; }

  // out (+)= V_ACE * tgt = -xi (xi^H tgt).
  void apply(const la::MatC& tgt, la::MatC& out, bool accumulate = false) const;

  // sum_i d_i <phi_i|V_ACE|phi_i> — the ACE exchange energy estimate used
  // for the outer-SCF convergence check (Fig. 4b).
  real_t energy(const la::MatC& phi, const std::vector<real_t>& d) const;

 private:
  la::MatC xi_;  // npw x n
};

}  // namespace ptim::ham
