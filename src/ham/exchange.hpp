#pragma once
// Screened Fock exchange operator (the hybrid-functional cost driver).
//
// Kernel: HSE-style short-range Coulomb, K(G) = 4 pi/G^2 (1 - e^{-G^2/4 mu^2})
// with the finite limit K(0) = pi/mu^2 — this is why Gamma-only hybrid
// calculations are well-posed here. A bare-Coulomb mode with a spherically
// truncated G = 0 regularization is provided for ablation.
//
// Three application paths, mirroring the paper's progression:
//  * apply_diag        — diagonal occupations d_i: O(N^2) pair FFTs
//                        (Eq. 9 / Eq. 13),
//  * apply_mixed_naive — Alg. 2 verbatim: triple (k,i,j) loop with the FFT
//                        in the innermost loop, O(N^3) FFTs. This is the
//                        paper's baseline *including* its redundancy,
//  * apply_mixed_diag  — the "Diag" optimization: sigma = Q D Q^H,
//                        phi' = Phi Q, then apply_diag (Sec. IV-A1).
// All produce identical results (tests enforce agreement to 1e-12).
//
// Precision policy (ExchangeOptions::precision): with Precision::kSingle*
// the pair densities, their FFTs and the kernel multiply run in FP32 —
// sources and targets are down-converted once at the real-space edge — while
// the per-grid-point accumulation of the exchange contribution and the final
// gather back to the sphere stay in FP64 (Kahan-compensated under
// kSingleCompensated). The same policy makes the distributed ring circulate
// FP32 slabs (half the bytes); see dist/exchange_dist. The propagated
// trajectory is always FP64.
//
// The mixing fraction alpha is folded into the returned operator so callers
// always see  out (+)= alpha * Vx[P] * targets.

#include <algorithm>
#include <atomic>
#include <vector>

#include "backend/backend.hpp"
#include "la/matrix.hpp"
#include "pw/transforms.hpp"

namespace ptim::ham {

// Compression of the diag-exchange apply: kDense runs the O(nb^2)
// pair-FFT pipeline; kIsdf factors the pair densities through Nmu =
// isdf_rank_factor * nb interpolation points (ham/isdf) so an apply is
// dense GEMMs plus 2 Nmu fit FFTs — O(nb * Nmu) instead of O(nb^2)
// transforms. The dense path is bitwise-unaffected by the knob existing.
enum class ExchangeCompression { kDense, kIsdf };

struct ExchangeOptions {
  real_t alpha = 0.25;  // hybrid mixing fraction (HSE06)
  real_t mu = 0.106;    // screening parameter, bohr^-1 (HSE06: 0.2 A^-1)
  bool screened = true;
  // Source orbitals per batched-FFT block. Pair densities are formed,
  // transformed and accumulated in blocks of this size through
  // Fft3::forward_batch/inverse_batch; 1 selects the original per-pair
  // path (one FFT at a time), kept as the ablation baseline.
  size_t batch_size = 8;
  // Scalar type of the pair-FFT hot path and ring payloads (see above).
  Precision precision = Precision::kDouble;
  // Execution backend of the distributed ring exchange (dist/): kSync runs
  // the legacy host-synchronous circulation; kHostSerial / kHostAsync run
  // the stream-pipelined engine where the slab transfer overlaps the
  // previous slab's compute. Bit-identical in every mode.
  backend::Kind backend = backend::default_kind();
  // Low-rank compression of the diag apply (see enum above). The ISDF fit
  // is rebuilt from the sources at every apply — refreshed on each PT-IM /
  // ACE outer iteration, with no persistent state (checkpoints stay
  // compression-agnostic).
  ExchangeCompression compression = ExchangeCompression::kDense;
  // ISDF rank factor c: Nmu = min(Ng, ceil(c * max(nb_active, ntgt))).
  // c = 8 lands the apply within ~1e-6 relative of kDense on the systems
  // the golden suite pins; see the bench_fig7_accuracy rank sweep.
  real_t isdf_rank_factor = 8.0;
  // Γ-point real-wavefunction fast path. At the Γ point orbitals can be
  // chosen real, so every pair density conj(phi_i) psi_j is a REAL field
  // and two of them ride one complex FFT lane (z = rho_a + i rho_b). The
  // screened kernel K(G) is real and even, so filtering the packed lane
  // filters both densities exactly — no spectrum unscramble is needed and
  // the pair-FFT count HALVES (2*ceil(nb/2) per target instead of 2*nb).
  // Enabling this is a detection gate, not a promise: every dense diag
  // apply checks at runtime that its sources and targets are real in real
  // space and falls back BITWISE to the complex pipeline when they are not
  // (propagated RT-TDDFT orbitals are complex, so golden trajectories are
  // unaffected). Within the real path, results are bitwise-invariant
  // across batch sizes and distributed circulation patterns (pinned in
  // tests); agreement with the complex pipeline on real orbitals is ~1e-13
  // relative (the packed path drops the complex path's imaginary dust).
  bool gamma_real = false;
};

class ExchangeOperator {
 public:
  ExchangeOperator(const pw::SphereGridMap& wfc_map, ExchangeOptions opt);

  const ExchangeOptions& options() const { return opt_; }
  const std::vector<real_t>& kernel() const { return kernel_; }
  // FP32 twin of the kernel table (rounded once) — the slab-distributed
  // exchange filter (dist/slab_exchange) indexes it by global grid index.
  const std::vector<realf_t>& kernel_f32() const { return kernelf_; }

  // Switch the pair-FFT precision in place (both kernel tables are always
  // built); benches/tests sweep modes on one operator this way.
  void set_precision(Precision p) { opt_.precision = p; }
  Precision precision() const { return opt_.precision; }

  // Execution backend of the distributed ring (see ExchangeOptions).
  void set_backend(backend::Kind k) { opt_.backend = k; }
  backend::Kind backend() const { return opt_.backend; }

  // Batched-FFT block width of the pair pipeline. Bit-identical across
  // widths (the per-column block partitioning only regroups the same
  // per-lane transforms and the same in-order FP64 accumulation), so this
  // is a pure throughput knob.
  void set_batch_size(size_t bs) { opt_.batch_size = std::max<size_t>(1, bs); }
  size_t batch_size() const { return opt_.batch_size; }

  // Low-rank compression of the diag apply (ham/isdf). Unlike the
  // throughput knobs above this changes the NUMBERS (within the rank
  // sweep's accuracy envelope), but carries no state: the fit is derived
  // from the sources at every apply.
  void set_compression(ExchangeCompression c) { opt_.compression = c; }
  ExchangeCompression compression() const { return opt_.compression; }
  void set_isdf_rank_factor(real_t c);
  real_t isdf_rank_factor() const { return opt_.isdf_rank_factor; }

  // Γ-point real-pair fast path (see ExchangeOptions::gamma_real). Safe to
  // toggle at any time: applies whose fields are not actually real fall
  // back bitwise to the complex pipeline.
  void set_gamma_real(bool on) { opt_.gamma_real = on; }
  bool gamma_real() const { return opt_.gamma_real; }

  // out (+)= alpha*Vx*tgt with sources (src, d). src/tgt/out: npw x nband.
  void apply_diag(const la::MatC& src, const std::vector<real_t>& d,
                  const la::MatC& tgt, la::MatC& out,
                  bool accumulate = false) const;

  // One independent apply_diag problem of a packed application: the job's
  // sources/occupations/targets are its own, only the batched pair FFTs are
  // shared with the other jobs of the pack.
  struct DiagApplyJob {
    const la::MatC* src = nullptr;        // npw x nsrc source orbitals
    const std::vector<real_t>* d = nullptr;  // nsrc occupations
    const la::MatC* tgt = nullptr;        // npw x ntgt targets
    la::MatC* out = nullptr;              // accumulated result, tgt shape
  };

  // Apply several independent diag-exchange problems through SHARED batched
  // pair FFTs: each round takes one batch_size block from every unfinished
  // job, concatenates them into a single forward/inverse batch, then
  // accumulates each slice back into its own job. The ensemble driver packs
  // one job per in-flight trajectory this way. Per job the result is
  // BITWISE identical to a standalone apply_diag call: every job keeps its
  // own column order, block partitioning and FP64 accumulation order, and
  // each lane of the batched FFT transforms independently of its neighbors
  // (see fft/fft.hpp).
  void apply_diag_packed(const std::vector<DiagApplyJob>& jobs,
                         bool accumulate = false) const;

  // Paper Alg. 2 baseline: full sigma, triple loop, FFT innermost.
  void apply_mixed_naive(const la::MatC& src, const la::MatC& sigma,
                         const la::MatC& tgt, la::MatC& out,
                         bool accumulate = false) const;

  // Diag optimization: diagonalize sigma, rotate sources, call apply_diag.
  void apply_mixed_diag(const la::MatC& src, const la::MatC& sigma,
                        const la::MatC& tgt, la::MatC& out,
                        bool accumulate = false) const;

  // Partial application with sources already in real space: the primitive
  // used by the distributed Bcast/Ring/Async patterns (src/dist), where the
  // circulating blocks are real-space orbital slabs. out (+)= contribution
  // of these sources only.
  void apply_diag_realspace(const la::MatC& src_real,
                            const std::vector<real_t>& d, const la::MatC& tgt,
                            la::MatC& out, bool accumulate) const {
    PTIM_CHECK(d.size() == src_real.cols());
    PTIM_CHECK(src_real.rows() == map_->grid().size());
    pair_accumulate(src_real.data(), src_real.cols(), d.data(), tgt, out,
                    accumulate);
  }

  // Raw-pointer variant for circulating ring buffers (dist layer): nsrc
  // real-space orbitals stored contiguously, nsrc occupation weights.
  void apply_diag_realspace(const cplx* src_real, size_t nsrc,
                            const real_t* d, const la::MatC& tgt,
                            la::MatC& out, bool accumulate) const {
    pair_accumulate(src_real, nsrc, d, tgt, out, accumulate);
  }
  // FP32-slab variant: the sources arrive as single-precision real-space
  // orbitals (the distributed ring's halved payload) and feed the FP32 pair
  // kernel directly — no intermediate up-conversion.
  void apply_diag_realspace(const cplxf* src_real, size_t nsrc,
                            const real_t* d, const la::MatC& tgt,
                            la::MatC& out, bool accumulate) const {
    pair_accumulate_f32(src_real, nsrc, d, tgt, out, accumulate);
  }

  // Γ-point variants for REAL circulating slabs (dist layer, gamma_real
  // mode): nsrc purely real real-space orbitals stored contiguously. The
  // caller must have verified that the TARGETS are real too (the dist
  // layer agrees on this across ranks before switching to real payloads);
  // their imaginary parts are dropped here. Ring bytes halve versus the
  // complex slabs above (quarter, for the float variant versus cplx).
  void apply_diag_realspace_real(const real_t* src_real, size_t nsrc,
                                 const real_t* d, const la::MatC& tgt,
                                 la::MatC& out, bool accumulate) const;
  void apply_diag_realspace_real(const realf_t* src_real, size_t nsrc,
                                 const real_t* d, const la::MatC& tgt,
                                 la::MatC& out, bool accumulate) const;

  // Generalized pair accumulation for the distributed mixed-state (full
  // sigma) path: the scalar occupation d_k is replaced by a real-space
  // weight field w_k = Theta_k = sum_i sigma_ik phi_i, so
  //   out_j (+)= -alpha sum_k w_k(r) IFFT[K FFT[conj(src_k) psi_j]](r).
  // With w_k = d_k src_k this reduces to apply_diag_realspace; with
  // Theta = Phi*sigma it equals apply_mixed_naive without requiring every
  // rank to hold the full source block.
  void apply_weighted_realspace(const cplx* src_real, const cplx* weight_real,
                                size_t nsrc, const la::MatC& tgt, la::MatC& out,
                                bool accumulate) const;
  // FP32-slab variant (distributed ring payloads in single precision).
  void apply_weighted_realspace(const cplxf* src_real,
                                const cplxf* weight_real, size_t nsrc,
                                const la::MatC& tgt, la::MatC& out,
                                bool accumulate) const;

  // --- stage primitives --------------------------------------------------
  // The four hot-path stages of the batched diag/weighted pipelines, public
  // so backend/kernels can wrap them as enqueueable stream kernels. The
  // batched apply paths below are built from exactly these calls, so a
  // stage-by-stage composition on a backend stream is bit-identical to the
  // fused host apply. idx selects source columns: source i of the block is
  // column idx[i] of src_real (the compressed active-occupation list).
  //
  // Every pointwise stage also has an explicit-length overload operating on
  // nloc grid points per orbital instead of the full grid — the z-slab
  // portions of the 2-D band x grid decomposition (dist/slab_exchange).
  // The loop bodies are shared, so the slab composition stays bit-identical
  // to the full-grid one on the points each rank owns.
  //
  // pair_form_block: block[i] = conj(src[idx[i]]) ⊙ tgt_real (nb pairs).
  void pair_form_block(const cplx* src_real, const size_t* idx, size_t nb,
                       const cplx* tgt_real, cplx* block) const;
  void pair_form_block(const cplxf* src_real, const size_t* idx, size_t nb,
                       const cplxf* tgt_real, cplxf* block) const;
  void pair_form_block(const cplx* src_real, const size_t* idx, size_t nb,
                       const cplx* tgt_real, cplx* block, size_t nloc) const;
  void pair_form_block(const cplxf* src_real, const size_t* idx, size_t nb,
                       const cplxf* tgt_real, cplxf* block, size_t nloc) const;
  // kernel_filter_block: forward batch FFT, K(G)/Ng multiply, inverse batch
  // FFT on nb pair densities (with FFT-count bookkeeping).
  void kernel_filter_block(cplx* block, size_t nb) const;
  void kernel_filter_block(cplxf* block, size_t nb) const;
  // accumulate_block: acc[r] += sum_i d[idx[i]]*Ng * src[idx[i]](r) *
  // block[i](r), FP64 regardless of the block scalar; comp != nullptr
  // selects the Kahan-compensated sum (kSingleCompensated policy).
  void accumulate_block(const cplx* src_real, const size_t* idx,
                        const real_t* d, size_t nb, const cplx* block,
                        cplx* acc, cplx* comp) const;
  void accumulate_block(const cplxf* src_real, const size_t* idx,
                        const real_t* d, size_t nb, const cplxf* block,
                        cplx* acc, cplx* comp) const;
  void accumulate_block(const cplx* src_real, const size_t* idx,
                        const real_t* d, size_t nb, const cplx* block,
                        cplx* acc, cplx* comp, size_t nloc) const;
  void accumulate_block(const cplxf* src_real, const size_t* idx,
                        const real_t* d, size_t nb, const cplxf* block,
                        cplx* acc, cplx* comp, size_t nloc) const;
  // Weighted variant (mixed-state path): the scalar occupation is replaced
  // by the real-space weight field w, acc[r] += sum_i Ng * w[idx[i]](r) *
  // block[i](r).
  void accumulate_weighted_block(const cplx* weight_real, const size_t* idx,
                                 size_t nb, const cplx* block, cplx* acc,
                                 cplx* comp) const;
  void accumulate_weighted_block(const cplxf* weight_real, const size_t* idx,
                                 size_t nb, const cplxf* block, cplx* acc,
                                 cplx* comp) const;
  void accumulate_weighted_block(const cplx* weight_real, const size_t* idx,
                                 size_t nb, const cplx* block, cplx* acc,
                                 cplx* comp, size_t nloc) const;
  void accumulate_weighted_block(const cplxf* weight_real, const size_t* idx,
                                 size_t nb, const cplxf* block, cplx* acc,
                                 cplx* comp, size_t nloc) const;
  // Γ-point real-pair stages (gamma_real fast path). Two real pair
  // densities ride each complex FFT lane, so a block of nb densities packs
  // into ceil(nb/2) lanes and goes through the SAME kernel_filter_block as
  // the complex pipeline (K(G) is real-even, so filtering the packed lane
  // filters both residents exactly — no unscramble).
  //
  // pair_pack_block_real: lane q gets
  //   block[q] = src[idx[2q]] ⊙ tgt  +  i * src[idx[2q+1]] ⊙ tgt
  // (an odd trailing density rides a zero imaginary part).
  void pair_pack_block_real(const real_t* src_real, const size_t* idx,
                            size_t nb, const real_t* tgt_real, cplx* block,
                            size_t nloc) const;
  void pair_pack_block_real(const realf_t* src_real, const size_t* idx,
                            size_t nb, const realf_t* tgt_real, cplxf* block,
                            size_t nloc) const;
  // accumulate_block_real: acc[r] += d[idx[i]]*Ng * src[idx[i]](r) *
  // lane_part_i(r), where lane_part_i is Re (even i) or Im (odd i) of lane
  // i/2. FP64 accumulation regardless of the block scalar; comp != nullptr
  // selects the Kahan-compensated sum, exactly as accumulate_block.
  void accumulate_block_real(const real_t* src_real, const size_t* idx,
                             const real_t* d, size_t nb, const cplx* block,
                             real_t* acc, real_t* comp, size_t nloc) const;
  void accumulate_block_real(const realf_t* src_real, const size_t* idx,
                             const real_t* d, size_t nb, const cplxf* block,
                             real_t* acc, real_t* comp, size_t nloc) const;

  // gather_accumulate: out_col[p] += -alpha * to_sphere(acc)[p]. scratch
  // must hold npw elements; always FP64 (the paper keeps the gather exact).
  void gather_accumulate(const cplx* acc, cplx* scratch, cplx* out_col) const;

  // Γ-point realness criterion shared by the gate above and the dist layer
  // (every rank must apply the SAME test before agreeing on real ring
  // payloads): max |Im| <= tol * max |Re| over the field, with tol far
  // above the precision's FFT imaginary dust and far below any genuine
  // complex phase. An all-zero field counts as real.
  static bool field_is_real(const cplx* v, size_t n);
  static bool field_is_real(const cplxf* v, size_t n);

  // Real-space transform helper for the distributed paths.
  const pw::SphereGridMap& map() const { return *map_; }

  // Exchange energy E_x = alpha * sum_i d_i <phi_i|Vx|phi_i> (negative).
  // Pass the same orbitals as sources and probes.
  real_t energy_diag(const la::MatC& src, const std::vector<real_t>& d) const;
  real_t energy_mixed(const la::MatC& src, const la::MatC& sigma) const;

  // FFT count bookkeeping (reset per bench) — validates the paper's
  // N^3 -> N^2 complexity claims. Counted identically in both precisions.
  mutable std::atomic<long> fft_count{0};

 private:
  void pair_accumulate(const cplx* src_real, size_t nsrc, const real_t* d,
                       const la::MatC& tgt, la::MatC& out,
                       bool accumulate) const;
  // Per-pair baseline (batch_size == 1): one FFT at a time, per-loop
  // OpenMP regions — the ablation reference.
  void pair_accumulate_single(const cplx* src_real, const real_t* d,
                              const std::vector<size_t>& active,
                              const la::MatC& tgt, la::MatC& out) const;
  // Batched hot path: blocks of batch_size pair densities through the
  // batched FFT with fused elementwise passes.
  void pair_accumulate_batched(const cplx* src_real, const real_t* d,
                               const std::vector<size_t>& active,
                               const la::MatC& tgt, la::MatC& out) const;
  // FP32 pipeline: float sources, float pair FFTs, FP64 (optionally
  // Kahan-compensated) accumulation. batch_size == 1 runs width-1 blocks so
  // the transform count matches the per-pair baseline exactly.
  void pair_accumulate_f32(const cplxf* src_real, size_t nsrc,
                           const real_t* d, const la::MatC& tgt, la::MatC& out,
                           bool accumulate) const;
  // One block engine per apply shape, templated over the slab scalar
  // (CS = cplx for the FP64 pipeline, cplxf for FP32): pair forming, the
  // kernel filter and the FP64 accumulation share a single body so the
  // precision modes cannot drift apart. Defined in exchange.cpp only.
  template <typename CS>
  void pair_accumulate_blocks(const CS* src_real, const real_t* d,
                              const std::vector<size_t>& active,
                              const la::MatC& tgt, la::MatC& out) const;
  // Γ-point real engine (RS = real_t/realf_t with CS = cplx/cplxf the
  // matching packed-lane scalar): blocks of 2*batch_size REAL pair
  // densities ride batch_size complex FFT lanes. Block boundaries sit at
  // EVEN density offsets, so which two densities share a lane — and hence
  // every transformed value and the in-order FP64 accumulation — is
  // independent of batch_size: bitwise-invariant across widths. Targets
  // arrive pre-transformed (ntgt real fields, extracted by the callers'
  // realness gate).
  template <typename RS, typename CS>
  void pair_accumulate_real_blocks(const RS* src_real, const real_t* d,
                                   const std::vector<size_t>& active,
                                   const RS* tgt_real, size_t ntgt,
                                   la::MatC& out) const;
  // Realness gate shared by pair_accumulate / pair_accumulate_f32: if
  // every active source and every target is real in real space, runs the
  // real engine and returns true; otherwise returns false and the caller
  // falls through to the complex pipeline (bitwise-identical to
  // gamma_real == false).
  template <typename RS, typename CS>
  bool try_gamma_real(const CS* src_real, size_t nsrc, const real_t* d,
                      const std::vector<size_t>& active, const la::MatC& tgt,
                      la::MatC& out) const;
  template <typename CS>
  void weighted_blocks(const CS* src_real, const CS* weight_real, size_t nsrc,
                       const la::MatC& tgt, la::MatC& out) const;
  template <typename CS>
  void mixed_naive_blocks(const la::Matrix<CS>& src_real,
                          const la::MatC& sigma, const la::MatC& tgt,
                          la::MatC& out) const;
  // Templated bodies behind the public per-scalar stage overloads. nloc is
  // the per-orbital element count (column stride and loop bound): the full
  // grid for the rank-local paths, the z-slab size for the 2-D layout. The
  // unscaled-synthesis weight always uses the GLOBAL grid size (it undoes
  // the inverse-FFT 1/Ng normalization, a property of the transform, not of
  // the slab).
  template <typename CS>
  void pair_form_block_t(const CS* src_real, const size_t* idx, size_t nb,
                         const CS* tgt_real, CS* block, size_t nloc) const;
  template <typename CS>
  void accumulate_block_t(const CS* src_real, const size_t* idx,
                          const real_t* d, size_t nb, const CS* block,
                          cplx* acc, cplx* comp, size_t nloc) const;
  template <typename CS>
  void accumulate_weighted_block_t(const CS* weight_real, const size_t* idx,
                                   size_t nb, const CS* block, cplx* acc,
                                   cplx* comp, size_t nloc) const;
  template <typename RS, typename CS>
  void pair_pack_block_real_t(const RS* src_real, const size_t* idx, size_t nb,
                              const RS* tgt_real, CS* block,
                              size_t nloc) const;
  template <typename RS, typename CS>
  void accumulate_block_real_t(const RS* src_real, const size_t* idx,
                               const real_t* d, size_t nb, const CS* block,
                               real_t* acc, real_t* comp, size_t nloc) const;

  const pw::SphereGridMap* map_;
  ExchangeOptions opt_;
  std::vector<real_t> kernel_;    // K(G) on the wavefunction grid
  std::vector<realf_t> kernelf_;  // K(G) rounded once for the FP32 path
};

}  // namespace ptim::ham
