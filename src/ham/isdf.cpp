#include "ham/isdf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "ham/exchange.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/qr.hpp"

namespace ptim::ham::isdf {

namespace {

// Kahan-compensated FP64 add (componentwise over the complex parts), the
// same scheme as the dense accumulate stage.
inline void kahan_add(cplx& acc, cplx& comp, const cplx& term) {
  const cplx y = term - comp;
  const cplx t = acc + y;
  comp = (t - acc) - y;
  acc = t;
}

// Candidate pool for the QRCP: the top grid points by quasi-density. A
// factor-4 oversampling keeps the selection quality of the full-grid
// QRCP while bounding its cost at O(nmu^2 * ncand) — the QRCP is the
// fit's serial bottleneck, so the pool multiplier is the knob that trades
// selection quality against the wall-clock win over the dense path.
size_t candidate_count(size_t nmu, size_t ng) {
  return std::min(ng, std::max<size_t>(4 * nmu, 256));
}

}  // namespace

size_t rank(real_t rank_factor, size_t nsrc, size_t ntgt, size_t ng) {
  const real_t base = static_cast<real_t>(std::max(nsrc, ntgt));
  const size_t nmu = static_cast<size_t>(std::ceil(rank_factor * base));
  return std::min(ng, std::max<size_t>(1, nmu));
}

size_t sketch_width(size_t nmu) {
  return static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<real_t>(std::max<size_t>(1, nmu)))));
}

la::MatC sketch_matrix(size_t nbands, size_t k, std::uint64_t seed) {
  Rng rng(seed);
  la::MatC r(nbands, k);
  // Row-major draw order so the stream position of row i is a function of
  // (i, k) only, independent of how many bands a rank holds.
  for (size_t i = 0; i < nbands; ++i)
    for (size_t j = 0; j < k; ++j) r(i, j) = rng.uniform_cplx();
  return r;
}

std::vector<size_t> select_points(const la::MatC& g1, const la::MatC& g2,
                                  const std::vector<real_t>& rho, size_t nmu) {
  ScopedTimer t("isdf.select");
  const size_t ng = rho.size();
  PTIM_CHECK(g1.rows() == ng && g2.rows() == ng);
  PTIM_CHECK(nmu > 0 && nmu <= ng);
  const size_t k1 = g1.cols(), k2 = g2.cols();

  // Deterministic candidate ranking by weight; index breaks ties.
  std::vector<size_t> cand(ng);
  std::iota(cand.begin(), cand.end(), size_t(0));
  std::sort(cand.begin(), cand.end(), [&](size_t a, size_t b) {
    return rho[a] != rho[b] ? rho[a] > rho[b] : a < b;
  });
  cand.resize(candidate_count(nmu, ng));

  // M[(a,b), r] = conj(g1_a(r)) g2_b(r) sqrt(rho(r)) on the candidates:
  // the centroid-weighted sketch of the pair-density matrix.
  la::MatC m(k1 * k2, cand.size());
#pragma omp parallel for schedule(static)
  for (size_t c = 0; c < cand.size(); ++c) {
    const size_t r = cand[c];
    const real_t w = std::sqrt(std::max(rho[r], real_t(0)));
    cplx* mc = m.col(c);
    for (size_t b = 0; b < k2; ++b) {
      const cplx gb = g2(r, b) * w;
      for (size_t a = 0; a < k1; ++a) mc[a + b * k1] = std::conj(g1(r, a)) * gb;
    }
  }

  const la::PivotedQr qr = la::qr_column_pivot(std::move(m), nmu);
  PTIM_CHECK(qr.pivots.size() == nmu);
  std::vector<size_t> points(nmu);
  for (size_t i = 0; i < nmu; ++i) points[i] = cand[qr.pivots[i]];
  std::sort(points.begin(), points.end());
  return points;
}

Fit fit(const ExchangeOperator& x, std::vector<size_t> points,
        const la::MatC& c_src, const la::MatC& c_tgt, const la::MatC& g,
        const la::MatC* a_explicit) {
  ScopedTimer t("isdf.fit");
  const size_t ng = x.map().grid().size();
  const size_t nmu = points.size();
  PTIM_CHECK(c_src.rows() == ng && c_src.cols() == nmu);
  PTIM_CHECK(c_tgt.rows() == ng && c_tgt.cols() == nmu);
  PTIM_CHECK(g.rows() == ng && g.cols() == nmu);

  Fit f;
  f.points = std::move(points);
  f.apply_mat.resize(ng, nmu);
  if (nmu == 0) return f;

  // Normal equations of the row-wise least squares: A(mu, nu) =
  // conj(c_src(r_mu, nu)) c_tgt(r_mu, nu), Hermitian PSD (a Hadamard
  // product of Gram matrices).
  la::MatC a(nmu, nmu);
  if (a_explicit) {
    PTIM_CHECK(a_explicit->rows() == nmu && a_explicit->cols() == nmu);
    a = *a_explicit;
  } else {
    for (size_t nu = 0; nu < nmu; ++nu)
      for (size_t mu = 0; mu < nmu; ++mu)
        a(mu, nu) =
            std::conj(c_src(f.points[mu], nu)) * c_tgt(f.points[mu], nu);
  }
  real_t trace = 0.0;
  for (size_t mu = 0; mu < nmu; ++mu) trace += std::real(a(mu, mu));
  if (!(trace > 0.0)) return f;  // zero sources or targets: null operator

  // RHS, transposed for the Cholesky solve: bh(nu, r) =
  // conj(B(r, nu)) with B = conj(c_src) (.) c_tgt.
  la::MatC bh(nmu, ng);
  Timer tsub;
#pragma omp parallel for schedule(static)
  for (size_t r = 0; r < ng; ++r)
    for (size_t nu = 0; nu < nmu; ++nu)
      bh(nu, r) = c_src(r, nu) * std::conj(c_tgt(r, nu));

  // Ridged Cholesky: the fit is rank-deficient whenever nmu exceeds the
  // pair-density rank, so regularize relative to the mean diagonal and
  // escalate on (rare) breakdown.
  ProfileRegistry::instance().add("isdf.fit.rhs", tsub.seconds());
  tsub = Timer();
  real_t ridge = 1e-12 * trace / static_cast<real_t>(nmu);
  la::MatC l;
  for (int attempt = 0;; ++attempt) {
    la::MatC ar = a;
    for (size_t mu = 0; mu < nmu; ++mu) ar(mu, mu) += ridge;
    try {
      l = la::cholesky(ar);
      break;
    } catch (const Error&) {
      PTIM_CHECK_MSG(attempt < 8, "ISDF fit: Cholesky breakdown persists");
      ridge *= 100.0;
    }
  }
  ProfileRegistry::instance().add("isdf.fit.chol", tsub.seconds());
  tsub = Timer();
  la::cholesky_solve(l, bh);  // bh <- A^-1 B^H, i.e. zeta^H
  ProfileRegistry::instance().add("isdf.fit.solve", tsub.seconds());
  tsub = Timer();

  // Kernel filter of zeta through the shared stage primitive, chunked by
  // the operator's batch width exactly like the dense pair pipeline (same
  // batched-FFT tiles, same FFT bookkeeping, FP32 under the policy). The
  // conj-transpose of the solve output, the filter and the Ng w (.) g
  // scale (the Ng undoes the inverse-FFT scaling, the same
  // unscaled-synthesis convention as the dense accumulate stage) are fused
  // per batch so only one batch-wide scratch tile stays hot.
  const size_t bs = std::max<size_t>(1, x.batch_size());
  const bool fp32 = x.precision() != Precision::kDouble;
  const real_t scale = static_cast<real_t>(ng);
  la::MatC w(ng, std::min(bs, nmu));
  std::vector<cplxf> blockf(fp32 ? bs * ng : 0);
  for (size_t mu0 = 0; mu0 < nmu; mu0 += bs) {
    const size_t nb = std::min(bs, nmu - mu0);
    if (fp32) {
#pragma omp parallel for schedule(static)
      for (size_t mu = 0; mu < nb; ++mu)
        for (size_t r = 0; r < ng; ++r)
          blockf[mu * ng + r] = static_cast<cplxf>(std::conj(bh(mu0 + mu, r)));
      x.kernel_filter_block(blockf.data(), nb);
#pragma omp parallel for schedule(static)
      for (size_t i = 0; i < nb * ng; ++i)
        w.data()[i] = static_cast<cplx>(blockf[i]);
    } else {
#pragma omp parallel for schedule(static)
      for (size_t mu = 0; mu < nb; ++mu)
        for (size_t r = 0; r < ng; ++r)
          w.col(mu)[r] = std::conj(bh(mu0 + mu, r));
      x.kernel_filter_block(w.data(), nb);
    }
#pragma omp parallel for schedule(static)
    for (size_t i = 0; i < nb * ng; ++i)
      f.apply_mat.col(mu0)[i] = scale * w.data()[i] * g.col(mu0)[i];
  }
  ProfileRegistry::instance().add("isdf.fit.filter", tsub.seconds());
  return f;
}

void apply(const ExchangeOperator& x, const Fit& f, const la::MatC& tgt_pts,
           la::MatC& out) {
  ScopedTimer t("isdf.apply");
  const size_t ng = x.map().grid().size();
  const size_t nmu = f.points.size();
  const size_t ntgt = tgt_pts.cols();
  PTIM_CHECK(tgt_pts.rows() == nmu);
  PTIM_CHECK(out.cols() == ntgt);
  if (nmu == 0 || ntgt == 0) return;

  la::MatC acc(ng, ntgt);
  if (x.precision() == Precision::kSingleCompensated) {
    // Kahan-compensated contraction over mu, parallel over grid points —
    // mirrors the compensated dense accumulate.
#pragma omp parallel for schedule(static)
    for (size_t r = 0; r < ng; ++r) {
      for (size_t j = 0; j < ntgt; ++j) {
        cplx sum(0.0), comp(0.0);
        for (size_t mu = 0; mu < nmu; ++mu)
          kahan_add(sum, comp, f.apply_mat(r, mu) * tgt_pts(mu, j));
        acc(r, j) = sum;
      }
    }
  } else {
    la::gemm_nn(f.apply_mat, tgt_pts, acc);
  }

  std::vector<cplx> scratch(x.map().sphere().npw());
  for (size_t j = 0; j < ntgt; ++j)
    x.gather_accumulate(acc.col(j), scratch.data(), out.col(j));
}

Fit fit_diag(const ExchangeOperator& x, const la::MatC& src_real,
             const std::vector<real_t>& d, const la::MatC& tgt_real) {
  const size_t ng = x.map().grid().size();
  PTIM_CHECK(src_real.rows() == ng && tgt_real.rows() == ng);
  PTIM_CHECK(d.size() == src_real.cols());
  const size_t ntgt = tgt_real.cols();

  std::vector<size_t> active;
  active.reserve(d.size());
  for (size_t i = 0; i < d.size(); ++i)
    if (d[i] != 0.0) active.push_back(i);
  if (active.empty() || ntgt == 0) return Fit{};
  const size_t na = active.size();

  // Occupied sources, compacted; a diagonal-scaled twin carries d into G.
  la::MatC phi(ng, na), phid(ng, na);
  for (size_t i = 0; i < na; ++i) {
    const cplx* s = src_real.col(active[i]);
    std::copy(s, s + ng, phi.col(i));
    const real_t di = d[active[i]];
    cplx* pd = phid.col(i);
    for (size_t r = 0; r < ng; ++r) pd[r] = di * s[r];
  }

  const size_t nmu = rank(x.isdf_rank_factor(), na, ntgt, ng);
  const size_t k = sketch_width(nmu);

  // Sketch rows are indexed by the band's position in the FULL source /
  // target blocks, so the same bands give the same mixtures regardless of
  // occupation compaction or band distribution.
  const la::MatC r1 = sketch_matrix(src_real.cols(), k, kSeedSources);
  const la::MatC r2 = sketch_matrix(ntgt, k, kSeedTargets);
  la::MatC r1a(na, k);
  for (size_t j = 0; j < k; ++j)
    for (size_t i = 0; i < na; ++i) r1a(i, j) = r1(active[i], j);

  Timer tsk;
  la::MatC g1(ng, k), g2(ng, k);
  la::gemm_nn(phi, r1a, g1);
  la::gemm_nn(tgt_real, r2, g2);

  std::vector<real_t> rho(ng, 0.0);
#pragma omp parallel for schedule(static)
  for (size_t r = 0; r < ng; ++r) {
    real_t s = 0.0;
    for (size_t i = 0; i < na; ++i)
      s += std::abs(d[active[i]]) * std::norm(phi(r, i));
    for (size_t j = 0; j < ntgt; ++j) s += std::norm(tgt_real(r, j));
    rho[r] = s;
  }

  ProfileRegistry::instance().add("isdf.sketch", tsk.seconds());
  std::vector<size_t> points = select_points(g1, g2, rho, nmu);
  tsk = Timer();

  // Point samples and the band-summed Gram blocks (plain GEMMs serially;
  // the distributed fit sums the same blocks across ranks instead). When
  // the target block aliases the (fully active) source block — the PT-IM
  // and ACE shape — c_tgt is c_src elementwise, so the gemm is skipped.
  const bool tgt_is_src = tgt_real.data() == src_real.data() && na == d.size();
  la::MatC p1(nmu, na);
  for (size_t i = 0; i < na; ++i)
    for (size_t mu = 0; mu < nmu; ++mu) p1(mu, i) = phi(points[mu], i);

  la::MatC c_src(ng, nmu), g(ng, nmu);
  la::gemm_nc(phi, p1, c_src);
  la::gemm_nc(phid, p1, g);
  la::MatC c_tgt_own;
  if (!tgt_is_src) {
    la::MatC p2(nmu, ntgt);
    for (size_t j = 0; j < ntgt; ++j)
      for (size_t mu = 0; mu < nmu; ++mu) p2(mu, j) = tgt_real(points[mu], j);
    c_tgt_own.resize(ng, nmu);
    la::gemm_nc(tgt_real, p2, c_tgt_own);
  }
  const la::MatC& c_tgt = tgt_is_src ? c_src : c_tgt_own;

  ProfileRegistry::instance().add("isdf.sample", tsk.seconds());
  return fit(x, std::move(points), c_src, c_tgt, g);
}

void apply_diag(const ExchangeOperator& x, const la::MatC& src,
                const std::vector<real_t>& d, const la::MatC& tgt,
                la::MatC& out, bool accumulate) {
  ScopedTimer t("exchange.isdf_diag");
  PTIM_CHECK(d.size() == src.cols());
  if (!accumulate) out.fill(cplx(0.0));
  PTIM_CHECK(out.rows() == tgt.rows() && out.cols() == tgt.cols());
  if (tgt.cols() == 0) return;

  // Real-space edge, honoring the precision policy: under kSingle* the
  // orbitals are rounded through the FP32 transform exactly like kDense;
  // the fit algebra then runs FP64 on the rounded values.
  // When the target block IS the source block (the PT-IM / ACE shape),
  // one transform serves both: downstream stages detect the aliasing by
  // data pointer and skip the duplicated target-side work.
  const bool same_block = &src == &tgt;
  la::MatC src_real, tgt_real_own;
  if (x.precision() != Precision::kDouble) {
    la::MatCf src_f, tgt_f;
    x.map().to_real_batch(src, src_f);
    src_real.resize(src_f.rows(), src_f.cols());
#pragma omp parallel for schedule(static)
    for (size_t i = 0; i < src_f.size(); ++i)
      src_real.data()[i] = static_cast<cplx>(src_f.data()[i]);
    if (!same_block) {
      x.map().to_real_batch(tgt, tgt_f);
      tgt_real_own.resize(tgt_f.rows(), tgt_f.cols());
#pragma omp parallel for schedule(static)
      for (size_t i = 0; i < tgt_f.size(); ++i)
        tgt_real_own.data()[i] = static_cast<cplx>(tgt_f.data()[i]);
    }
  } else {
    x.map().to_real_batch(src, src_real);
    if (!same_block) x.map().to_real_batch(tgt, tgt_real_own);
  }
  const la::MatC& tgt_real = same_block ? src_real : tgt_real_own;

  const Fit f = fit_diag(x, src_real, d, tgt_real);
  if (f.points.empty()) return;

  la::MatC tgt_pts(f.points.size(), tgt_real.cols());
  for (size_t j = 0; j < tgt_real.cols(); ++j)
    for (size_t mu = 0; mu < f.points.size(); ++mu)
      tgt_pts(mu, j) = tgt_real(f.points[mu], j);
  apply(x, f, tgt_pts, out);
}

}  // namespace ptim::ham::isdf
