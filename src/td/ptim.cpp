#include "td/ptim.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "ham/density.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/eig.hpp"
#include "la/mixer.hpp"
#include "la/util.hpp"
#include "pw/wavefunction.hpp"
#include "td/pack.hpp"

namespace ptim::td {

using detail::flatten;
using detail::unflatten;

PtImPropagator::PtImPropagator(ham::Hamiltonian& h, PtImOptions opt,
                               const LaserPulse* laser)
    : h_(&h), opt_(opt), laser_(laser) {
  if (opt_.exchange_precision)
    h_->set_exchange_precision(*opt_.exchange_precision);
  if (opt_.exchange_backend) h_->set_exchange_backend(*opt_.exchange_backend);
  if (opt_.exchange_compression)
    h_->set_exchange_compression(*opt_.exchange_compression);
  if (opt_.isdf_rank_factor) h_->set_isdf_rank_factor(*opt_.isdf_rank_factor);
}

void PtImPropagator::configure_exchange_midpoint(const la::MatC& phih,
                                                 la::MatC sigmah) {
  if (!opt_.hybrid) {
    h_->set_exchange_mode(ham::ExchangeMode::kNone);
    return;
  }
  switch (opt_.variant) {
    case PtImVariant::kBaseline:
      h_->set_exchange_mode(ham::ExchangeMode::kExactNaive);
      h_->set_exchange_source_mixed(phih, std::move(sigmah));
      if (stats_) ++stats_->exchange_applications;
      break;
    case PtImVariant::kDiag:
      h_->set_exchange_mode(ham::ExchangeMode::kExactDiag);
      h_->set_exchange_source_mixed(phih, std::move(sigmah));
      if (stats_) ++stats_->exchange_applications;
      break;
    case PtImVariant::kAce:
      // ACE is configured by step(); nothing to refresh per inner iteration.
      break;
  }
}

int PtImPropagator::fixed_point(const TdState& start, la::MatC& phi1,
                                la::MatC& sigma1, real_t t_half,
                                real_t* residual_out) {
  const la::MatC& phin = start.phi;
  const la::MatC& sigman = start.sigma;
  const size_t npw = phin.rows();
  const size_t nb = phin.cols();
  const real_t dt = opt_.dt;
  const cplx idt{0.0, dt};

  la::AndersonMixer mixer(npw * nb + nb * nb, opt_.anderson_history,
                          opt_.anderson_beta);
  if (laser_) h_->set_vector_potential(laser_->vector_potential(t_half));

  la::MatC phih(npw, nb), sigmah(nb, nb), hphi(npw, nb);
  la::MatC m(nb, nb), s(nb, nb), x(nb, nb), proj(npw, nb);
  std::vector<cplx> xv, fv;

  int it = 1;
  for (; it <= opt_.max_scf; ++it) {
    // Midpoints (paper Eq. 4).
    for (size_t i = 0; i < phih.size(); ++i)
      phih.data()[i] = 0.5 * (phi1.data()[i] + phin.data()[i]);
    for (size_t i = 0; i < sigmah.size(); ++i)
      sigmah.data()[i] = 0.5 * (sigma1.data()[i] + sigman.data()[i]);
    la::hermitize(sigmah);

    // Midpoint density and Hamiltonian (Eq. 5).
    const std::vector<real_t> rho =
        (opt_.variant == PtImVariant::kBaseline)
            ? ham::density_sigma_naive(phih, sigmah, h_->den_map())
            : ham::density_sigma(phih, sigmah, h_->den_map());
    h_->set_density(rho);
    configure_exchange_midpoint(phih, sigmah);
    h_->apply(phih, hphi);

    // M = Phi_h^H H Phi_h ; overlap S = Phi_h^H Phi_h.
    la::gemm_cn(phih, hphi, m);
    la::gemm_cn(phih, phih, s);

    // Projector part: P~ H Phi_h = Phi_h S^{-1} M.
    x = m;
    const la::MatC l = la::cholesky(s);
    la::cholesky_solve(l, x);
    la::gemm_nn(phih, x, proj);

    // Updates (Eq. 6).
    la::MatC phi_new(npw, nb), sigma_new(nb, nb);
    for (size_t i = 0; i < phi_new.size(); ++i)
      phi_new.data()[i] =
          phin.data()[i] - idt * (hphi.data()[i] - proj.data()[i]);
    if (opt_.evolve_sigma) {
      la::MatC msh(nb, nb), shm(nb, nb);
      la::gemm_nn(m, sigmah, msh);
      la::gemm_nn(sigmah, m, shm);
      for (size_t i = 0; i < sigma_new.size(); ++i)
        sigma_new.data()[i] =
            sigman.data()[i] - idt * (msh.data()[i] - shm.data()[i]);
    } else {
      sigma_new = sigman;  // PT-CN: occupations frozen
    }

    // Residual of the fixed point.
    real_t rnum = 0.0, rden = 0.0;
    for (size_t i = 0; i < phi_new.size(); ++i) {
      rnum += std::norm(phi_new.data()[i] - phi1.data()[i]);
      rden += std::norm(phi1.data()[i]);
    }
    for (size_t i = 0; i < sigma_new.size(); ++i) {
      rnum += std::norm(sigma_new.data()[i] - sigma1.data()[i]);
      rden += std::norm(sigma1.data()[i]);
    }
    const real_t res = std::sqrt(rnum / std::max(rden, real_t(1e-30)));
    if (residual_out) *residual_out = res;
    if (res < opt_.tol) {
      phi1 = std::move(phi_new);
      sigma1 = std::move(sigma_new);
      break;
    }

    // Anderson mixing of the combined unknowns (Alg. 1 line 8).
    flatten(phi1, sigma1, xv);
    fv.resize(xv.size());
    for (size_t i = 0; i < phi1.size(); ++i)
      fv[i] = phi_new.data()[i] - phi1.data()[i];
    for (size_t i = 0; i < sigma1.size(); ++i)
      fv[phi1.size() + i] = sigma_new.data()[i] - sigma1.data()[i];
    const std::vector<cplx> next = mixer.mix(xv, fv);
    unflatten(next, phi1, sigma1);
  }
  return it;
}

real_t PtImPropagator::build_ace_from(const la::MatC& phi, la::MatC sigma) {
  ScopedTimer t("ptim.ace_prepare");
  la::hermitize(sigma);
  const auto eig = la::eig_herm(sigma);
  la::MatC rotated(phi.rows(), phi.cols());
  la::gemm_nn(phi, eig.V, rotated);

  la::MatC w;
  ham::AceOperator ace =
      ham::AceOperator::build_diag(h_->exchange_op(), rotated, eig.w, &w);
  if (stats_) ++stats_->exchange_applications;

  real_t ex = 0.0;
  for (size_t b = 0; b < phi.cols(); ++b)
    ex += eig.w[b] *
          std::real(la::dotc(phi.rows(), rotated.col(b), w.col(b)));

  h_->set_ace(std::move(ace));
  return ex;
}

// Alg. 1 line 13: orthogonalize Phi, conjugate-symmetrize sigma. The
// congruence sigma -> L^H sigma L keeps P = Phi sigma Phi^H invariant.
static void orthonormalize_commit(TdState& s, la::MatC phi1, la::MatC sigma1,
                                  real_t dt) {
  la::MatC sfinal = pw::overlap(phi1, phi1);
  const la::MatC l = la::cholesky(sfinal);
  la::solve_upper_right(l, phi1);  // Phi <- Phi L^{-H}
  la::MatC tmp(sigma1.rows(), sigma1.cols());
  la::gemm('C', 'N', 1.0, l, sigma1, 0.0, tmp);  // L^H sigma
  la::gemm_nn(tmp, l, sigma1);                   // (L^H sigma) L
  la::hermitize(sigma1);

  s.phi = std::move(phi1);
  s.sigma = std::move(sigma1);
  s.time += dt;
}

void PtImPropagator::stage_ace_sources(StepSession& sess, const la::MatC& phi,
                                       la::MatC sigma) const {
  ScopedTimer t("ptim.ace_prepare");
  la::hermitize(sigma);
  const auto eig = la::eig_herm(sigma);
  sess.ace_phi.resize(phi.rows(), phi.cols());
  la::gemm_nn(phi, eig.V, sess.ace_phi);
  sess.ace_occ = eig.w;
}

PtImPropagator::StepSession PtImPropagator::step_begin(const TdState& s) {
  PTIM_CHECK_MSG(opt_.variant == PtImVariant::kAce && opt_.hybrid,
                 "staged stepping is defined for the kAce hybrid variant");
  StepSession sess;
  sess.t_half = s.time + 0.5 * opt_.dt;
  sess.phi1 = s.phi;
  sess.sigma1 = s.sigma;
  // First inner SCF runs with the ACE built at t_n (Fig. 4b).
  stage_ace_sources(sess, s.phi, s.sigma);
  return sess;
}

bool PtImPropagator::step_advance(const TdState& s, StepSession& sess,
                                  const la::MatC& w) {
  // Install the ACE surrogate compressed from the staged sources and their
  // freshly applied exchange W, and estimate the Fock energy — exactly
  // build_ace_from with the apply_diag hoisted out to the caller.
  ham::AceOperator ace = ham::AceOperator::build(sess.ace_phi, w);
  ++sess.stats.exchange_applications;
  real_t ex = 0.0;
  for (size_t b = 0; b < sess.ace_phi.cols(); ++b)
    ex += sess.ace_occ[b] *
          std::real(la::dotc(sess.ace_phi.rows(), sess.ace_phi.col(b),
                             w.col(b)));
  h_->set_ace(std::move(ace));

  if (sess.outer == 0) {
    sess.ex_prev = ex;  // the t_n build: no convergence check yet
  } else {
    const real_t dex = std::abs(ex - sess.ex_prev);
    sess.ex_prev = ex;
    if (dex < opt_.tol_fock || sess.outer >= opt_.max_outer) return false;
  }

  ++sess.stats.outer_iterations;
  stats_ = &sess.stats;
  sess.stats.scf_iterations +=
      fixed_point(s, sess.phi1, sess.sigma1, sess.t_half, &sess.residual);
  stats_ = nullptr;
  ++sess.outer;

  // Rebuild ACE from the converged midpoint state.
  la::MatC phih(sess.phi1.rows(), sess.phi1.cols());
  la::MatC sigmah(sess.sigma1.rows(), sess.sigma1.cols());
  for (size_t i = 0; i < phih.size(); ++i)
    phih.data()[i] = 0.5 * (sess.phi1.data()[i] + s.phi.data()[i]);
  for (size_t i = 0; i < sigmah.size(); ++i)
    sigmah.data()[i] = 0.5 * (sess.sigma1.data()[i] + s.sigma.data()[i]);
  stage_ace_sources(sess, phih, std::move(sigmah));
  return true;
}

PtImStepStats PtImPropagator::step_finish(TdState& s, StepSession& sess) {
  sess.stats.residual = sess.residual;
  sess.stats.converged = sess.residual < opt_.tol;
  orthonormalize_commit(s, std::move(sess.phi1), std::move(sess.sigma1),
                        opt_.dt);
  if (hook_) hook_(s, sess.stats);
  return sess.stats;
}

PtImStepStats PtImPropagator::step(TdState& s) {
  ScopedTimer timer("td.ptim_step", obs::Cat::kStep);

  if (opt_.variant == PtImVariant::kAce && opt_.hybrid) {
    // The ACE double loop, driven through the staged protocol (so the
    // golden-trajectory suite pins the same code the ensemble driver
    // batches): each round applies exchange to the staged sources, then
    // step_advance installs the ACE and runs the inner fixed point.
    StepSession sess = step_begin(s);
    la::MatC w;
    do {
      w.resize(sess.ace_phi.rows(), sess.ace_phi.cols());
      h_->exchange_op().apply_diag(sess.ace_phi, sess.ace_occ, sess.ace_phi,
                                   w, false);
    } while (step_advance(s, sess, w));
    return step_finish(s, sess);
  }

  PtImStepStats stats;
  stats_ = &stats;
  const real_t t_half = s.time + 0.5 * opt_.dt;
  la::MatC phi1 = s.phi;
  la::MatC sigma1 = s.sigma;

  stats.outer_iterations = 1;
  real_t res = 0.0;
  stats.scf_iterations = fixed_point(s, phi1, sigma1, t_half, &res);
  stats.residual = res;
  stats.converged = res < opt_.tol;

  orthonormalize_commit(s, std::move(phi1), std::move(sigma1), opt_.dt);
  stats_ = nullptr;
  if (hook_) hook_(s, stats);
  return stats;
}

}  // namespace ptim::td
