#include "td/observables.hpp"

#include <cmath>

#include "common/error.hpp"
#include "la/blas.hpp"
#include "la/util.hpp"

namespace ptim::td {

real_t dipole(const std::vector<real_t>& rho, const grid::FftGrid& g,
              const grid::Vec3& dir) {
  PTIM_CHECK(rho.size() == g.size());
  const auto& dims = g.dims();
  const grid::Vec3 center = g.lattice().center();
  real_t acc = 0.0;
#pragma omp parallel for reduction(+ : acc) schedule(static) collapse(2)
  for (size_t i2 = 0; i2 < dims[2]; ++i2)
    for (size_t i1 = 0; i1 < dims[1]; ++i1)
      for (size_t i0 = 0; i0 < dims[0]; ++i0) {
        const grid::Vec3 r = g.rvec(i0, i1, i2) - center;
        acc += grid::dot(r, dir) * rho[g.linear(i0, i1, i2)];
      }
  return acc * g.dvol();
}

real_t current(const la::MatC& phi, const la::MatC& sigma,
               const grid::GSphere& sphere, const grid::Vec3& avec,
               const grid::Vec3& dir) {
  PTIM_CHECK(phi.rows() == sphere.npw() && sigma.rows() == phi.cols());
  la::MatC theta(phi.rows(), phi.cols());
  la::gemm_nn(phi, sigma, theta);
  real_t acc = 0.0;
  for (size_t g = 0; g < sphere.npw(); ++g) {
    const real_t kdir = grid::dot(sphere.gvec(g) + avec, dir);
    if (kdir == 0.0) continue;
    cplx s = 0.0;
    for (size_t b = 0; b < phi.cols(); ++b)
      s += std::conj(phi(g, b)) * theta(g, b);
    acc += kdir * std::real(s);
  }
  return 2.0 * acc / sphere.lattice().volume();
}

real_t sigma_trace(const la::MatC& sigma) {
  return std::real(la::trace(sigma));
}

real_t sigma_hermiticity_defect(const la::MatC& sigma) {
  return la::hermiticity_defect(sigma);
}

real_t sigma_idempotency_defect(const la::MatC& sigma) {
  la::MatC s2(sigma.rows(), sigma.cols());
  la::gemm_nn(sigma, sigma, s2);
  for (size_t i = 0; i < s2.size(); ++i) s2.data()[i] -= sigma.data()[i];
  return la::frob_norm(s2);
}

}  // namespace ptim::td
