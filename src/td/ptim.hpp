#pragma once
// Parallel-transport implicit-midpoint propagator for finite-temperature
// rt-TDDFT (paper Sec. II-A, Alg. 1) and its ACE-accelerated double-SCF
// variant (Sec. IV-A2, Fig. 4).
//
// One step solves the fixed-point equations (paper Eq. 6)
//   Phi_{n+1}  = Phi_n  - i dt (I - P~_{n+1/2}) H_{n+1/2} Phi_{n+1/2}
//   sigma_{n+1}= sigma_n- i dt [ Phi_{n+1/2}^H H Phi_{n+1/2}, sigma_{n+1/2} ]
// by self-consistent iteration with Anderson mixing of {Phi, sigma}
// (history 20, as in the paper), then orthonormalizes Phi and conjugate-
// symmetrizes sigma. When Phi is re-orthonormalized (Phi -> Phi L^{-H}),
// sigma is congruence-transformed (sigma -> L^H sigma L) so the physical
// density matrix P = Phi sigma Phi^H is untouched.
//
// Variants map onto the paper's optimization ladder:
//   kBaseline — Alg. 2 naive mixed-state exchange (N^3 FFTs) + naive density,
//   kDiag     — occupation-matrix diagonalization (N^2 FFTs),
//   kAce      — kDiag plus the ACE double loop (exact exchange applied only
//               once per outer iteration; the paper's 25 -> 5 reduction).

#include <optional>

#include "dist/layout.hpp"
#include "ham/hamiltonian.hpp"
#include "td/laser.hpp"
#include "td/state.hpp"

namespace ptim::td {

enum class PtImVariant { kBaseline, kDiag, kAce };

struct PtImOptions {
  real_t dt = 50.0 / units::au_time_as;  // 50 as, the paper's step
  int max_scf = 30;        // inner fixed-point cap (paper: ~25 avg / ~13 ACE)
  real_t tol = 1e-6;       // relative {Phi, sigma} residual
  int max_outer = 8;       // ACE outer loop cap (paper: ~5 avg)
  real_t tol_fock = 1e-6;  // exchange-energy outer tolerance (paper: 1e-6)
  size_t anderson_history = 20;
  real_t anderson_beta = 0.7;
  PtImVariant variant = PtImVariant::kDiag;
  bool hybrid = true;
  // When set, applied to the Hamiltonian's exchange operator at propagator
  // construction: the exchange pair FFTs (and, distributed, the ring slabs)
  // run at this precision while all propagator algebra — midpoints,
  // Anderson mixing, orthonormalization, sigma evolution — stays FP64.
  // Unset keeps whatever the Hamiltonian was configured with.
  std::optional<Precision> exchange_precision;
  // Execution backend of the distributed exchange ring (backend subsystem:
  // kSync legacy, kHostSerial inline streams, kHostAsync overlapped
  // compute/comm). Applied like exchange_precision; unset keeps the
  // Hamiltonian's configuration. Trajectories are bit-identical across
  // backends.
  std::optional<backend::Kind> exchange_backend;
  // 2-D band x grid process layout of distributed runs (ignored by the
  // serial propagator): nranks = pb*pg ranks split into pb band rows and pg
  // grid columns; exact exchange FFTs run slab-distributed over the grid
  // dimension (dist/slab_exchange). pg = 1 (default) is the pure
  // band-parallel layout, bit-for-bit today's path.
  dist::ProcessGrid process_grid;
  // false = PT-CN mode: freeze sigma and evolve only Phi — the earlier
  // parallel-transport Crank-Nicolson scheme (Jia et al., JCTC 2018) that
  // is valid for gapped/pure-state systems. PT-IM generalizes it to mixed
  // states; keeping both enables the paper's motivating comparison.
  bool evolve_sigma = true;
};

struct PtImStepStats {
  int scf_iterations = 0;        // inner iterations (summed over outer)
  int outer_iterations = 0;      // 1 for non-ACE variants
  int exchange_applications = 0; // full Vx*Phi evaluations this step
  real_t residual = 0.0;
  bool converged = false;
};

class PtImPropagator {
 public:
  PtImPropagator(ham::Hamiltonian& h, PtImOptions opt, const LaserPulse* laser);

  PtImStepStats step(TdState& s);
  const PtImOptions& options() const { return opt_; }

 private:
  // Inner fixed-point loop with the currently configured exchange; updates
  // (phi1, sigma1) in place and returns iterations used.
  int fixed_point(const TdState& start, la::MatC& phi1, la::MatC& sigma1,
                  real_t t_half, real_t* residual_out);

  // Exact-exchange application + ACE compression from (phi, sigma);
  // returns the exchange energy estimate.
  real_t build_ace_from(const la::MatC& phi, la::MatC sigma);

  void configure_exchange_midpoint(const la::MatC& phih, la::MatC sigmah);

  ham::Hamiltonian* h_;
  PtImOptions opt_;
  const LaserPulse* laser_;
  PtImStepStats* stats_ = nullptr;  // active step statistics
};

}  // namespace ptim::td
