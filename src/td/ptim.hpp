#pragma once
// Parallel-transport implicit-midpoint propagator for finite-temperature
// rt-TDDFT (paper Sec. II-A, Alg. 1) and its ACE-accelerated double-SCF
// variant (Sec. IV-A2, Fig. 4).
//
// One step solves the fixed-point equations (paper Eq. 6)
//   Phi_{n+1}  = Phi_n  - i dt (I - P~_{n+1/2}) H_{n+1/2} Phi_{n+1/2}
//   sigma_{n+1}= sigma_n- i dt [ Phi_{n+1/2}^H H Phi_{n+1/2}, sigma_{n+1/2} ]
// by self-consistent iteration with Anderson mixing of {Phi, sigma}
// (history 20, as in the paper), then orthonormalizes Phi and conjugate-
// symmetrizes sigma. When Phi is re-orthonormalized (Phi -> Phi L^{-H}),
// sigma is congruence-transformed (sigma -> L^H sigma L) so the physical
// density matrix P = Phi sigma Phi^H is untouched.
//
// Variants map onto the paper's optimization ladder:
//   kBaseline — Alg. 2 naive mixed-state exchange (N^3 FFTs) + naive density,
//   kDiag     — occupation-matrix diagonalization (N^2 FFTs),
//   kAce      — kDiag plus the ACE double loop (exact exchange applied only
//               once per outer iteration; the paper's 25 -> 5 reduction).

#include <functional>
#include <optional>

#include "dist/layout.hpp"
#include "ham/hamiltonian.hpp"
#include "td/laser.hpp"
#include "td/state.hpp"

namespace ptim::td {

enum class PtImVariant { kBaseline, kDiag, kAce };

struct PtImOptions {
  real_t dt = 50.0 / units::au_time_as;  // 50 as, the paper's step
  int max_scf = 30;        // inner fixed-point cap (paper: ~25 avg / ~13 ACE)
  real_t tol = 1e-6;       // relative {Phi, sigma} residual
  int max_outer = 8;       // ACE outer loop cap (paper: ~5 avg)
  real_t tol_fock = 1e-6;  // exchange-energy outer tolerance (paper: 1e-6)
  size_t anderson_history = 20;
  real_t anderson_beta = 0.7;
  PtImVariant variant = PtImVariant::kDiag;
  bool hybrid = true;
  // When set, applied to the Hamiltonian's exchange operator at propagator
  // construction: the exchange pair FFTs (and, distributed, the ring slabs)
  // run at this precision while all propagator algebra — midpoints,
  // Anderson mixing, orthonormalization, sigma evolution — stays FP64.
  // Unset keeps whatever the Hamiltonian was configured with.
  std::optional<Precision> exchange_precision;
  // Execution backend of the distributed exchange ring (backend subsystem:
  // kSync legacy, kHostSerial inline streams, kHostAsync overlapped
  // compute/comm). Applied like exchange_precision; unset keeps the
  // Hamiltonian's configuration. Trajectories are bit-identical across
  // backends.
  std::optional<backend::Kind> exchange_backend;
  // Low-rank (ISDF) compression of the exchange apply (ham/isdf), applied
  // like exchange_precision at propagator construction. The fit is rebuilt
  // at every apply — i.e. refreshed on each ACE outer iteration together
  // with the ACE projector itself — so there is no cross-step operator
  // state. Unset keeps the Hamiltonian's configuration.
  std::optional<ham::ExchangeCompression> exchange_compression;
  std::optional<real_t> isdf_rank_factor;
  // 2-D band x grid process layout of distributed runs (ignored by the
  // serial propagator): nranks = pb*pg ranks split into pb band rows and pg
  // grid columns; exact exchange FFTs run slab-distributed over the grid
  // dimension (dist/slab_exchange). pg = 1 (default) is the pure
  // band-parallel layout, bit-for-bit today's path.
  dist::ProcessGrid process_grid;
  // false = PT-CN mode: freeze sigma and evolve only Phi — the earlier
  // parallel-transport Crank-Nicolson scheme (Jia et al., JCTC 2018) that
  // is valid for gapped/pure-state systems. PT-IM generalizes it to mixed
  // states; keeping both enables the paper's motivating comparison.
  bool evolve_sigma = true;
};

struct PtImStepStats {
  int scf_iterations = 0;        // inner iterations (summed over outer)
  int outer_iterations = 0;      // 1 for non-ACE variants
  int exchange_applications = 0; // full Vx*Phi evaluations this step
  real_t residual = 0.0;
  bool converged = false;
};

class PtImPropagator {
 public:
  PtImPropagator(ham::Hamiltonian& h, PtImOptions opt, const LaserPulse* laser);

  PtImStepStats step(TdState& s);
  const PtImOptions& options() const { return opt_; }

  // Invoked once per completed step, AFTER the new state is committed
  // (orthonormalized Phi, congruence-transformed sigma, advanced time) —
  // for both the plain step() path and the staged protocol (step_finish
  // fires it). This is the periodic-side-effect seam the serving layer
  // uses for auto-checkpointing: the hook observes exactly the state a
  // resume would restore, so saving from it is bitwise-safe. The hook
  // must not mutate the state.
  using StepHook = std::function<void(const TdState&, const PtImStepStats&)>;
  void set_step_hook(StepHook hook) { hook_ = std::move(hook); }

  // --- staged stepping (kAce + hybrid only) ------------------------------
  // The ACE double loop of step() split at its exchange applications so an
  // external driver can batch the expensive W = (alpha Vx) Phi evaluation
  // across several trajectories (core::EnsembleDriver packs one
  // ExchangeOperator::DiagApplyJob per in-flight trajectory). Protocol:
  //
  //   auto sess = prop.step_begin(s);
  //   do {
  //     // W for THIS session's pending ACE sources, by any bit-identical
  //     // route (serial step() uses apply_diag; the ensemble driver uses
  //     //  apply_diag_packed):
  //     xop.apply_diag(sess.ace_phi, sess.ace_occ, sess.ace_phi, w, false);
  //   } while (prop.step_advance(s, sess, w));
  //   stats = prop.step_finish(s, sess);
  //
  // step() itself runs exactly this protocol, so the golden-trajectory
  // suite pins the staged path; a driver interleaving the advance calls of
  // several sessions gets per-trajectory results bitwise identical to
  // serial step() calls (each session keeps its own iteration order, and
  // the packed exchange is bitwise per job).
  struct StepSession {
    real_t t_half = 0.0;
    la::MatC phi1, sigma1;        // fixed-point iterate
    la::MatC ace_phi;             // pending ACE build sources: rotated
    std::vector<real_t> ace_occ;  // orbitals + eigen-occupations
    real_t ex_prev = 0.0;         // last exchange-energy estimate
    real_t residual = 0.0;
    int outer = 0;                // fixed-point rounds completed
    PtImStepStats stats;
  };

  // Initialize a session and stage the t_n ACE sources (Fig. 4b's first
  // build). The state must not be mutated until step_finish.
  StepSession step_begin(const TdState& s);
  // Consume W = (alpha Vx[ace_phi, ace_occ]) ace_phi for the pending
  // sources: install the ACE operator, run the convergence check, and —
  // when another round is due — run the inner fixed point and stage the
  // midpoint sources. Returns true while another W is needed.
  bool step_advance(const TdState& s, StepSession& sess, const la::MatC& w);
  // Orthonormalization epilogue; commits the new state and returns stats.
  PtImStepStats step_finish(TdState& s, StepSession& sess);

 private:
  // Inner fixed-point loop with the currently configured exchange; updates
  // (phi1, sigma1) in place and returns iterations used.
  int fixed_point(const TdState& start, la::MatC& phi1, la::MatC& sigma1,
                  real_t t_half, real_t* residual_out);

  // Exact-exchange application + ACE compression from (phi, sigma);
  // returns the exchange energy estimate.
  real_t build_ace_from(const la::MatC& phi, la::MatC sigma);

  // Stage ACE build sources into the session: hermitize-copy sigma,
  // diagonalize, rotate phi into the eigenbasis (the expensive exchange
  // application on these sources is the caller's job).
  void stage_ace_sources(StepSession& sess, const la::MatC& phi,
                         la::MatC sigma) const;

  void configure_exchange_midpoint(const la::MatC& phih, la::MatC sigmah);

  ham::Hamiltonian* h_;
  PtImOptions opt_;
  const LaserPulse* laser_;
  StepHook hook_;                   // post-commit per-step callback
  PtImStepStats* stats_ = nullptr;  // active step statistics
};

}  // namespace ptim::td
