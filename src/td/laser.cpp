#include "td/laser.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ptim::td {

LaserPulse::LaserPulse(LaserParams p, real_t t_max)
    : params_(p), t_max_(t_max) {
  PTIM_CHECK(t_max > 0.0);
  omega_ = units::photon_energy_ha(params_.wavelength_nm);
  if (params_.t_center <= 0.0) params_.t_center = 0.5 * t_max;
  if (params_.t_width <= 0.0) params_.t_width = t_max / 6.0;

  // Cumulative Simpson for A(t) = -int E: fine enough to resolve the
  // carrier (>= 200 samples per optical cycle).
  const real_t period = kTwoPi / omega_;
  table_dt_ = period / 400.0;
  const size_t n = static_cast<size_t>(std::ceil(t_max / table_dt_)) + 2;
  a_table_.resize(n, 0.0);
  for (size_t i = 1; i < n; ++i) {
    const real_t t0 = static_cast<real_t>(i - 1) * table_dt_;
    const real_t t1 = static_cast<real_t>(i) * table_dt_;
    const real_t tm = 0.5 * (t0 + t1);
    const real_t seg =
        (efield(t0) + 4.0 * efield(tm) + efield(t1)) * (t1 - t0) / 6.0;
    a_table_[i] = a_table_[i - 1] - seg;
  }
}

real_t LaserPulse::efield(real_t t) const {
  const real_t x = (t - params_.t_center) / params_.t_width;
  return params_.e0 * std::exp(-0.5 * x * x) * std::sin(omega_ * t);
}

grid::Vec3 LaserPulse::efield_vec(real_t t) const {
  return efield(t) * params_.polarization;
}

grid::Vec3 LaserPulse::vector_potential(real_t t) const {
  if (t <= 0.0) return {0.0, 0.0, 0.0};
  const real_t x = t / table_dt_;
  const auto i = static_cast<size_t>(x);
  real_t a;
  if (i + 1 >= a_table_.size()) {
    a = a_table_.back();
  } else {
    const real_t frac = x - static_cast<real_t>(i);
    a = (1.0 - frac) * a_table_[i] + frac * a_table_[i + 1];
  }
  return a * params_.polarization;
}

}  // namespace ptim::td
