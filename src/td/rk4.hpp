#pragma once
// Explicit RK4 propagator in the Schroedinger gauge — the paper's accuracy
// reference (Fig. 7 compares PT-IM-ACE at 50 as against RK4 at a step 100x
// smaller). In this gauge the occupation matrix is constant:
//   i dPsi/dt = H(t, P(Psi)) Psi,   sigma(t) = sigma(0).

#include "ham/hamiltonian.hpp"
#include "td/laser.hpp"
#include "td/state.hpp"

namespace ptim::td {

struct Rk4Options {
  real_t dt = 0.02;  // a.u. — must stay in the sub-attosecond regime
  // Exchange application path for the reference run; ExactDiag is the
  // fastest bitwise-equivalent option.
  bool hybrid = true;
};

class Rk4Propagator {
 public:
  Rk4Propagator(ham::Hamiltonian& h, Rk4Options opt, const LaserPulse* laser);

  // Advance by one dt.
  void step(TdState& s);

 private:
  // k = -i H(t, P(psi)) psi with H refreshed from (psi, sigma).
  void rhs(real_t t, const la::MatC& psi, const la::MatC& sigma, la::MatC& k);

  ham::Hamiltonian* h_;
  Rk4Options opt_;
  const LaserPulse* laser_;
};

}  // namespace ptim::td
