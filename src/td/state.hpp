#pragma once
// The propagated state of a finite-temperature rt-TDDFT run: orbitals Phi
// (parallel-transport gauge) and the occupation-number matrix sigma, with
// the physical density matrix P = Phi sigma Phi^H (paper Eq. 2).

#include "la/matrix.hpp"

namespace ptim::td {

struct TdState {
  la::MatC phi;    // npw x N
  la::MatC sigma;  // N x N Hermitian, eigenvalues in [0, 1]
  real_t time = 0.0;

  size_t nbands() const { return phi.cols(); }

  static TdState from_occupations(la::MatC phi0,
                                  const std::vector<real_t>& occ) {
    TdState s;
    s.phi = std::move(phi0);
    s.sigma.resize(s.phi.cols(), s.phi.cols());
    for (size_t i = 0; i < occ.size(); ++i) s.sigma(i, i) = occ[i];
    return s;
  }
};

}  // namespace ptim::td
