#pragma once
// Band-parallel PT-IM propagator: the distributed production path of the
// paper (Secs. IV-B/IV-C). One ptmpi rank runs one instance; each owns a
// BlockLayout band slice of Phi while sigma and every other nb x nb matrix
// stay replicated (produced exclusively from Allreduced data, hence
// bit-identical across ranks). Exact exchange runs through the Bcast /
// Ring / Async-Ring circulation with the batched-FFT pair kernel inside
// each round; overlaps go band->grid (Alltoallv) + Allreduce; the
// fixed-point Anderson mixing reduces its inner products globally.
//
// The trajectory matches td::PtImPropagator to rounding for every variant
// (kBaseline / kDiag / kAce) — the serial-vs-distributed regression tests
// pin agreement to 1e-10 over 10 steps.

#include "dist/band_ham.hpp"
#include "td/laser.hpp"
#include "td/ptim.hpp"
#include "td/state.hpp"

namespace ptim::td {

// Band slice of a TdState: phi_local = phi[:, bands-of-rank], sigma
// replicated.
struct DistTdState {
  la::MatC phi_local;  // npw x bands.count(rank)
  la::MatC sigma;      // nb x nb, replicated
  real_t time = 0.0;
};

// Slice / reassemble against a full state (gather is a collective).
DistTdState scatter_state(const TdState& s, const dist::BlockLayout& bands,
                          int rank);
TdState gather_state(ptmpi::Comm& c, const DistTdState& s,
                     const dist::BlockLayout& bands);

class DistPtImPropagator {
 public:
  DistPtImPropagator(dist::BandDistributedHamiltonian& h, PtImOptions opt,
                     const LaserPulse* laser);

  // One PT-IM step on the band-distributed state. Collective call; the
  // returned stats are identical on every rank.
  PtImStepStats step(DistTdState& s);
  const PtImOptions& options() const { return opt_; }

 private:
  int fixed_point(const DistTdState& start, la::MatC& phi1, la::MatC& sigma1,
                  real_t t_half, real_t* residual_out);
  real_t build_ace_from(const la::MatC& phi_local, const la::MatC& sigma);
  void configure_exchange_midpoint(const la::MatC& phih_local,
                                   const la::MatC& sigmah,
                                   la::MatC theta_local = {});

  dist::BandDistributedHamiltonian* h_;
  PtImOptions opt_;
  const LaserPulse* laser_;
  PtImStepStats* stats_ = nullptr;
};

}  // namespace ptim::td
