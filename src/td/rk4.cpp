#include "td/rk4.hpp"

#include "common/timer.hpp"
#include "ham/density.hpp"

namespace ptim::td {

Rk4Propagator::Rk4Propagator(ham::Hamiltonian& h, Rk4Options opt,
                             const LaserPulse* laser)
    : h_(&h), opt_(opt), laser_(laser) {}

void Rk4Propagator::rhs(real_t t, const la::MatC& psi, const la::MatC& sigma,
                        la::MatC& k) {
  if (laser_) h_->set_vector_potential(laser_->vector_potential(t));
  const std::vector<real_t> rho = ham::density_sigma(psi, sigma, h_->den_map());
  h_->set_density(rho);
  if (opt_.hybrid) {
    h_->set_exchange_mode(ham::ExchangeMode::kExactDiag);
    h_->set_exchange_source_mixed(psi, sigma);
  } else {
    h_->set_exchange_mode(ham::ExchangeMode::kNone);
  }
  h_->apply(psi, k);
  for (size_t i = 0; i < k.size(); ++i) k.data()[i] *= cplx(0.0, -1.0);
}

void Rk4Propagator::step(TdState& s) {
  ScopedTimer timer("td.rk4_step");
  const real_t dt = opt_.dt;
  const real_t t = s.time;
  const size_t n = s.phi.size();

  la::MatC k1, k2, k3, k4, tmp(s.phi.rows(), s.phi.cols());
  rhs(t, s.phi, s.sigma, k1);

  for (size_t i = 0; i < n; ++i)
    tmp.data()[i] = s.phi.data()[i] + 0.5 * dt * k1.data()[i];
  rhs(t + 0.5 * dt, tmp, s.sigma, k2);

  for (size_t i = 0; i < n; ++i)
    tmp.data()[i] = s.phi.data()[i] + 0.5 * dt * k2.data()[i];
  rhs(t + 0.5 * dt, tmp, s.sigma, k3);

  for (size_t i = 0; i < n; ++i)
    tmp.data()[i] = s.phi.data()[i] + dt * k3.data()[i];
  rhs(t + dt, tmp, s.sigma, k4);

  const real_t w = dt / 6.0;
  for (size_t i = 0; i < n; ++i)
    s.phi.data()[i] += w * (k1.data()[i] + 2.0 * k2.data()[i] +
                            2.0 * k3.data()[i] + k4.data()[i]);
  s.time += dt;
}

}  // namespace ptim::td
