#pragma once
// Packing of the PT-IM fixed-point unknowns (Phi ++ sigma) into the flat
// Anderson-mixing vector. Shared by the serial and band-distributed
// propagators: the distributed trajectory-equivalence contract depends on
// both using the identical layout.

#include <algorithm>
#include <vector>

#include "la/matrix.hpp"

namespace ptim::td::detail {

inline void flatten(const la::MatC& phi, const la::MatC& sigma,
                    std::vector<cplx>& out) {
  out.resize(phi.size() + sigma.size());
  std::copy(phi.data(), phi.data() + phi.size(), out.begin());
  std::copy(sigma.data(), sigma.data() + sigma.size(),
            out.begin() + static_cast<long>(phi.size()));
}

inline void unflatten(const std::vector<cplx>& in, la::MatC& phi,
                      la::MatC& sigma) {
  std::copy(in.begin(), in.begin() + static_cast<long>(phi.size()),
            phi.data());
  std::copy(in.begin() + static_cast<long>(phi.size()), in.end(),
            sigma.data());
}

}  // namespace ptim::td::detail
