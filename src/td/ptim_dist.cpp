#include "td/ptim_dist.hpp"

#include <cmath>

#include "common/timer.hpp"
#include "dist/mixer_dist.hpp"
#include "dist/rotate.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/util.hpp"
#include "td/pack.hpp"

namespace ptim::td {

using detail::flatten;
using detail::unflatten;

DistTdState scatter_state(const TdState& s, const dist::BlockLayout& bands,
                          int rank) {
  DistTdState d;
  d.phi_local = dist::scatter_bands(s.phi, bands, rank);
  d.sigma = s.sigma;
  d.time = s.time;
  return d;
}

TdState gather_state(ptmpi::Comm& c, const DistTdState& s,
                     const dist::BlockLayout& bands) {
  TdState full;
  full.phi = dist::gather_bands(c, s.phi_local, bands);
  full.sigma = s.sigma;
  full.time = s.time;
  return full;
}

DistPtImPropagator::DistPtImPropagator(dist::BandDistributedHamiltonian& h,
                                       PtImOptions opt,
                                       const LaserPulse* laser)
    : h_(&h), opt_(opt), laser_(laser) {
  // The policy reaches the ring through the rank-local exchange operator:
  // FP32 slabs circulate while sigma/overlap Allreduces stay FP64, so the
  // distributed trajectory remains bit-identical across ranks.
  if (opt_.exchange_precision)
    h_->local().set_exchange_precision(*opt_.exchange_precision);
  // Execution backend of the ring: the same knob selects the legacy sync
  // circulation or the stream-pipelined (overlapped) one.
  if (opt_.exchange_backend)
    h_->local().set_exchange_backend(*opt_.exchange_backend);
  // ISDF compression reaches the rank-local operator the same way; the
  // band-parallel fit (dist/isdf_dist) then replaces the slab circulation
  // with deterministically Allreduced Gram blocks.
  if (opt_.exchange_compression)
    h_->local().set_exchange_compression(*opt_.exchange_compression);
  if (opt_.isdf_rank_factor)
    h_->local().set_isdf_rank_factor(*opt_.isdf_rank_factor);
}

void DistPtImPropagator::configure_exchange_midpoint(
    const la::MatC& phih_local, const la::MatC& sigmah, la::MatC theta_local) {
  if (!opt_.hybrid) {
    h_->set_exchange_none();
    return;
  }
  switch (opt_.variant) {
    case PtImVariant::kBaseline:
      // Reuses the theta = Phi*sigma block the density pass circulated.
      h_->set_exchange_source_mixed_naive(phih_local, sigmah,
                                          std::move(theta_local));
      if (stats_) ++stats_->exchange_applications;
      break;
    case PtImVariant::kDiag:
      h_->set_exchange_source_mixed_diag(phih_local, sigmah);
      if (stats_) ++stats_->exchange_applications;
      break;
    case PtImVariant::kAce:
      // ACE is configured by step(); nothing to refresh per inner iteration.
      break;
  }
}

int DistPtImPropagator::fixed_point(const DistTdState& start, la::MatC& phi1,
                                    la::MatC& sigma1, real_t t_half,
                                    real_t* residual_out) {
  const la::MatC& phin = start.phi_local;
  const la::MatC& sigman = start.sigma;
  const size_t npw = phin.rows();
  const size_t nloc = phin.cols();
  const size_t nb = sigman.rows();
  const real_t dt = opt_.dt;
  const cplx idt{0.0, dt};

  dist::DistAndersonMixer mixer(h_->comm(), npw * nloc, nb * nb,
                                opt_.anderson_history, opt_.anderson_beta);
  if (laser_)
    h_->local().set_vector_potential(laser_->vector_potential(t_half));

  la::MatC phih(npw, nloc), sigmah(nb, nb), hphi(npw, nloc);
  la::MatC x(nb, nb);
  std::vector<cplx> xv, fv;

  int it = 1;
  for (; it <= opt_.max_scf; ++it) {
    // Midpoints (paper Eq. 4).
    for (size_t i = 0; i < phih.size(); ++i)
      phih.data()[i] = 0.5 * (phi1.data()[i] + phin.data()[i]);
    for (size_t i = 0; i < sigmah.size(); ++i)
      sigmah.data()[i] = 0.5 * (sigma1.data()[i] + sigman.data()[i]);
    la::hermitize(sigmah);

    // Midpoint density and Hamiltonian (Eq. 5); rho is Allreduced, so every
    // rank's local Hamiltonian sees identical potentials.
    la::MatC theta;
    const std::vector<real_t> rho = h_->density(phih, sigmah, &theta);
    h_->set_density(rho);
    configure_exchange_midpoint(phih, sigmah, std::move(theta));
    h_->apply(phih, hphi);

    // Overlap S = Phi_h^H Phi_h and M = Phi_h^H H Phi_h (replicated), from
    // one band->grid transpose of each block.
    la::MatC s, m;
    h_->overlap_pair(phih, hphi, &s, &m);

    // Projector part: P~ H Phi_h = Phi_h S^{-1} M.
    x = m;
    const la::MatC l = la::cholesky(s);
    la::cholesky_solve(l, x);
    const la::MatC proj = h_->rotate(phih, x);

    // Updates (Eq. 6).
    la::MatC phi_new(npw, nloc), sigma_new(nb, nb);
    for (size_t i = 0; i < phi_new.size(); ++i)
      phi_new.data()[i] =
          phin.data()[i] - idt * (hphi.data()[i] - proj.data()[i]);
    if (opt_.evolve_sigma) {
      la::MatC msh(nb, nb), shm(nb, nb);
      la::gemm_nn(m, sigmah, msh);
      la::gemm_nn(sigmah, m, shm);
      for (size_t i = 0; i < sigma_new.size(); ++i)
        sigma_new.data()[i] =
            sigman.data()[i] - idt * (msh.data()[i] - shm.data()[i]);
    } else {
      sigma_new = sigman;  // PT-CN: occupations frozen
    }

    // Residual of the fixed point: Phi part reduced over ranks, sigma part
    // (replicated) added once after the reduction.
    real_t acc[2] = {0.0, 0.0};
    for (size_t i = 0; i < phi_new.size(); ++i) {
      acc[0] += std::norm(phi_new.data()[i] - phi1.data()[i]);
      acc[1] += std::norm(phi1.data()[i]);
    }
    h_->comm().allreduce_sum(acc, 2);
    real_t rnum = acc[0], rden = acc[1];
    for (size_t i = 0; i < sigma_new.size(); ++i) {
      rnum += std::norm(sigma_new.data()[i] - sigma1.data()[i]);
      rden += std::norm(sigma1.data()[i]);
    }
    const real_t res = std::sqrt(rnum / std::max(rden, real_t(1e-30)));
    if (residual_out) *residual_out = res;
    if (res < opt_.tol) {
      phi1 = std::move(phi_new);
      sigma1 = std::move(sigma_new);
      break;
    }

    // Anderson mixing of the combined unknowns (Alg. 1 line 8).
    flatten(phi1, sigma1, xv);
    fv.resize(xv.size());
    for (size_t i = 0; i < phi1.size(); ++i)
      fv[i] = phi_new.data()[i] - phi1.data()[i];
    for (size_t i = 0; i < sigma1.size(); ++i)
      fv[phi1.size() + i] = sigma_new.data()[i] - sigma1.data()[i];
    const std::vector<cplx> next = mixer.mix(xv, fv);
    unflatten(next, phi1, sigma1);
  }
  return it;
}

real_t DistPtImPropagator::build_ace_from(const la::MatC& phi_local,
                                          const la::MatC& sigma) {
  ScopedTimer t("ptim.ace_prepare_dist");
  const real_t ex = h_->build_ace(phi_local, sigma);
  if (stats_) ++stats_->exchange_applications;
  return ex;
}

PtImStepStats DistPtImPropagator::step(DistTdState& s) {
  ScopedTimer timer("td.ptim_step_dist");
  PtImStepStats stats;
  stats_ = &stats;

  const real_t t_half = s.time + 0.5 * opt_.dt;
  la::MatC phi1 = s.phi_local;
  la::MatC sigma1 = s.sigma;

  if (opt_.variant == PtImVariant::kAce && opt_.hybrid) {
    // First inner SCF runs with the ACE built at t_n (Fig. 4b).
    real_t ex_prev = build_ace_from(s.phi_local, s.sigma);
    real_t res = 0.0;
    for (int outer = 1; outer <= opt_.max_outer; ++outer) {
      ++stats.outer_iterations;
      stats.scf_iterations += fixed_point(s, phi1, sigma1, t_half, &res);
      // Rebuild ACE from the converged midpoint state.
      la::MatC phih(phi1.rows(), phi1.cols()), sigmah(sigma1.rows(),
                                                      sigma1.cols());
      for (size_t i = 0; i < phih.size(); ++i)
        phih.data()[i] = 0.5 * (phi1.data()[i] + s.phi_local.data()[i]);
      for (size_t i = 0; i < sigmah.size(); ++i)
        sigmah.data()[i] = 0.5 * (sigma1.data()[i] + s.sigma.data()[i]);
      const real_t ex = build_ace_from(phih, sigmah);
      const real_t dex = std::abs(ex - ex_prev);
      ex_prev = ex;
      if (dex < opt_.tol_fock) break;
    }
    stats.residual = res;
    stats.converged = res < opt_.tol;
  } else {
    stats.outer_iterations = 1;
    real_t res = 0.0;
    stats.scf_iterations = fixed_point(s, phi1, sigma1, t_half, &res);
    stats.residual = res;
    stats.converged = res < opt_.tol;
  }

  // Alg. 1 line 13: orthogonalize Phi, conjugate-symmetrize sigma. The
  // congruence sigma -> L^H sigma L keeps P = Phi sigma Phi^H invariant.
  la::MatC sfinal = h_->overlap(phi1, phi1);
  const la::MatC l = la::cholesky(sfinal);
  phi1 = h_->solve_upper_right(l, phi1);  // Phi <- Phi L^{-H}
  la::MatC tmp(sigma1.rows(), sigma1.cols());
  la::gemm('C', 'N', 1.0, l, sigma1, 0.0, tmp);  // L^H sigma
  la::gemm_nn(tmp, l, sigma1);                   // (L^H sigma) L
  la::hermitize(sigma1);

  s.phi_local = std::move(phi1);
  s.sigma = std::move(sigma1);
  s.time += opt_.dt;
  stats_ = nullptr;
  return stats;
}

}  // namespace ptim::td
