#pragma once
// Physical observables recorded during propagation: the Fig. 7/8 quantities
// (dipole moment along a direction, total energy, sigma matrix elements).

#include <vector>

#include "grid/fft_grid.hpp"
#include "grid/gsphere.hpp"
#include "la/matrix.hpp"

namespace ptim::td {

// integral (r - r_center) . dir * rho(r) dr, with coordinates wrapped to the
// cell so the weight is single-valued (supercell dipole convention).
real_t dipole(const std::vector<real_t>& rho, const grid::FftGrid& g,
              const grid::Vec3& dir);

// Macroscopic electronic current along `dir` in the velocity gauge:
//   j = (2/Omega) sum_ij sigma_ji <phi_i|(-i grad + A)|phi_j> . dir
// — the observable the velocity-gauge dielectric response is built from.
real_t current(const la::MatC& phi, const la::MatC& sigma,
               const grid::GSphere& sphere, const grid::Vec3& avec,
               const grid::Vec3& dir);

// Trace of sigma (conserved: the electron count per spin channel).
real_t sigma_trace(const la::MatC& sigma);

// Largest |sigma_ij - conj(sigma_ji)| — Hermiticity drift diagnostic.
real_t sigma_hermiticity_defect(const la::MatC& sigma);

// Idempotency defect ||sigma^2 - sigma||_F: zero for pure states, positive
// for finite-temperature mixed states (a useful state classifier in tests).
real_t sigma_idempotency_defect(const la::MatC& sigma);

}  // namespace ptim::td
