#pragma once
// Gaussian-envelope laser pulse (paper Sec. VI: 380 nm, 30 fs window) and
// its vector potential A(t) = -int_0^t E(t') dt' for the velocity-gauge
// coupling used in periodic cells. A dense cumulative-Simpson table makes
// A(t) cheap at the integrator's midpoints.

#include <vector>

#include "common/types.hpp"
#include "grid/lattice.hpp"

namespace ptim::td {

struct LaserParams {
  real_t e0 = 0.005;        // peak field, a.u.
  real_t wavelength_nm = 380.0;
  real_t t_center = 0.0;    // envelope centre (a.u.); set from t_total
  real_t t_width = 0.0;     // Gaussian sigma (a.u.)
  grid::Vec3 polarization{1.0, 0.0, 0.0};
};

class LaserPulse {
 public:
  // t_max: simulation end time (a.u.). Defaults centre the envelope at
  // t_max/2 with sigma = t_max/6 (mirrors the paper's Fig. 7(a) shape).
  LaserPulse(LaserParams p, real_t t_max);

  real_t efield(real_t t) const;          // scalar field along polarization
  grid::Vec3 efield_vec(real_t t) const;
  grid::Vec3 vector_potential(real_t t) const;
  real_t omega() const { return omega_; }
  const LaserParams& params() const { return params_; }

 private:
  LaserParams params_;
  real_t omega_;
  real_t t_max_;
  real_t table_dt_;
  std::vector<real_t> a_table_;  // scalar A(t) on a dense time table
};

}  // namespace ptim::td
