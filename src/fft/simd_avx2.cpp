// AVX2 kernels of the dispatched FFT pass (fft/simd.hpp). Compiled with
// -mavx2 (and -ffp-contract=off) when the compiler supports it; an empty
// fallback TU otherwise. Explicit mul/add/sub intrinsics only — no FMA —
// so the results are bitwise-identical to the scalar kernels.

#include "fft/simd.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "fft/simd_kernels_impl.hpp"

namespace ptim::fft::simd::detail {
namespace {

struct VecAvx2d {
  using T = __m256d;
  static constexpr size_t width = 4;
  static T load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, T v) { _mm256_storeu_pd(p, v); }
  static T set1(double x) { return _mm256_set1_pd(x); }
  static T add(T a, T b) { return _mm256_add_pd(a, b); }
  static T sub(T a, T b) { return _mm256_sub_pd(a, b); }
  static T mul(T a, T b) { return _mm256_mul_pd(a, b); }
};

struct VecAvx2f {
  using T = __m256;
  static constexpr size_t width = 8;
  static T load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, T v) { _mm256_storeu_ps(p, v); }
  static T set1(float x) { return _mm256_set1_ps(x); }
  static T add(T a, T b) { return _mm256_add_ps(a, b); }
  static T sub(T a, T b) { return _mm256_sub_ps(a, b); }
  static T mul(T a, T b) { return _mm256_mul_ps(a, b); }
};

const PassKernels<double> kAvx2F64{&dft_rows_impl<double, VecAvx2d>,
                                   &butterfly_impl<double, VecAvx2d>};
const PassKernels<float> kAvx2F32{&dft_rows_impl<float, VecAvx2f>,
                                  &butterfly_impl<float, VecAvx2f>};

}  // namespace

const PassKernels<double>* avx2_kernels_f64() { return &kAvx2F64; }
const PassKernels<float>* avx2_kernels_f32() { return &kAvx2F32; }

}  // namespace ptim::fft::simd::detail

#else  // !defined(__AVX2__)

namespace ptim::fft::simd::detail {
const PassKernels<double>* avx2_kernels_f64() { return nullptr; }
const PassKernels<float>* avx2_kernels_f32() { return nullptr; }
}  // namespace ptim::fft::simd::detail

#endif
