#pragma once
// Shared per-axis pass of the batched 3-D engines: gather tiles of lines
// into element-major split planes, run the vector 1-D transform, scatter
// back. BOTH the serial Fft3T::transform_batch and the distributed
// DistFft3T call exactly this function, which is what makes the
// distributed slab transform bit-identical to the serial engine by
// construction (one implementation, not two that must not diverge). The
// per-line arithmetic is independent of the tile width, so any caller's
// line partitioning yields the same bits.
//
// This is also where the SIMD dispatch seam sits: each
// forward_many_split / inverse_unscaled_many_split call selects the active
// kernel table (fft/simd.hpp — scalar, AVX2, AVX-512F or NEON, forced via
// PTIM_SIMD or simd::force_isa) once and runs its two inner loops through
// it, so one dispatch covers the serial and distributed engines alike.
// Every ISA is bitwise-identical to the scalar path (explicit mul/add/sub,
// no FMA, all kernel TUs built with -ffp-contract=off), pinned by
// tests/test_fft_conformance.cpp. All tile scratch below is per-thread and
// function-local — concurrent callers on distinct plans (or even the same
// plan) share no mutable state.

#include <algorithm>
#include <complex>
#include <vector>

#include "fft/fft.hpp"

namespace ptim::fft::detail {

// Transforms `count` lines of length n with stride `stride` in place;
// line_start(q) maps line index q to its first element's offset in data.
template <typename R, typename LineStart>
void axis_pass(const Plan1DT<R>& p, size_t n, size_t count,
               const LineStart& line_start, size_t stride,
               std::complex<R>* data, bool fwd) {
  using C = std::complex<R>;
  constexpr size_t kTile = Plan1DT<R>::kMaxTile;
  const size_t ngroups = (count + kTile - 1) / kTile;
#pragma omp parallel
  {
    std::vector<R> tile_re(kTile * n), tile_im(kTile * n), tout_re(kTile * n),
        tout_im(kTile * n);
#pragma omp for schedule(static)
    for (size_t g = 0; g < ngroups; ++g) {
      const size_t q0 = g * kTile;
      const size_t v = std::min(kTile, count - q0);
      for (size_t l = 0; l < v; ++l) {
        const C* src = data + line_start(q0 + l);
        for (size_t k = 0; k < n; ++k) {
          tile_re[k * v + l] = src[k * stride].real();
          tile_im[k * v + l] = src[k * stride].imag();
        }
      }
      if (fwd)
        p.forward_many_split(tile_re.data(), tile_im.data(), tout_re.data(),
                             tout_im.data(), v);
      else
        p.inverse_unscaled_many_split(tile_re.data(), tile_im.data(),
                                      tout_re.data(), tout_im.data(), v);
      for (size_t l = 0; l < v; ++l) {
        C* dst = data + line_start(q0 + l);
        for (size_t k = 0; k < n; ++k)
          dst[k * stride] = C(tout_re[k * v + l], tout_im[k * v + l]);
      }
    }
  }
}

}  // namespace ptim::fft::detail
