#pragma once
// Distributed slab-decomposed 3-D FFT (the G-space dimension of the 2-D
// band x grid process layout; paper Sec. IV-B, and the scheme of the
// Summit PT-TDDFT and GPU-SPARC hybrid-functional codes).
//
// Decomposition over the pg ranks of a grid communicator:
//   * real space     — z slabs: rank g owns whole xy planes for the
//                      contiguous z range zslabs().offset(g) ..+count(g);
//                      local layout i0 + n0*(i1 + n1*z_local),
//   * reciprocal     — y pencils: rank g owns whole (x, z) sheets for the
//     space             i1 range yrows().offset(g) ..+count(g);
//                      local layout i0 + n0*(i1_local + ny_local*i2).
//
// forward: local axis-0/axis-1 transforms on the z slab, one Alltoallv
// pencil transpose, local axis-2 transforms on the y pencil. inverse runs
// the exact mirror (axis 2, transpose back, axis 1, axis 0, then the
// 1/size() scale). Because the serial engine (Fft3T) sweeps its axes in
// the same orders (forward 0->1->2, inverse 2->1->0) and every 1-D line
// goes through the same split-plane tile transforms, the distributed
// result is bit-identical to the serial one for any pg — including ranks
// that own zero planes (nz < pg or ny < pg; their Alltoallv rows are
// simply empty).
//
// Batched entry points move the whole batch through ONE Alltoallv, the
// distributed analogue of Fft3T::forward_batch. Templated over the scalar
// like the serial engine: DistFft3 (FP64) carries the exact-exchange pair
// transforms, DistFft3f the FP32 policy (half the transpose bytes).

#include <array>
#include <complex>
#include <vector>

#include "common/timer.hpp"
#include "dist/layout.hpp"
#include "fft/fft.hpp"
#include "ptmpi/comm.hpp"

namespace ptim::fft {

template <typename R>
class DistFft3T {
 public:
  using C = std::complex<R>;

  // `grid_comm` is the pg-wide grid (column) communicator this transform
  // is collective over; the Comm is copied (it is a lightweight view).
  DistFft3T(std::array<size_t, 3> dims, ptmpi::Comm grid_comm);

  size_t n0() const { return n0_; }
  size_t n1() const { return n1_; }
  size_t n2() const { return n2_; }
  size_t size() const { return n0_ * n1_ * n2_; }

  const dist::BlockLayout& zslabs() const { return zslabs_; }
  const dist::BlockLayout& yrows() const { return yrows_; }

  // Local element counts of one array in each distribution.
  size_t nreal() const { return n0_ * n1_ * zslabs_.count(rank_); }
  size_t npencil() const { return n0_ * yrows_.count(rank_) * n2_; }

  // Global linear grid index (FftGrid convention) of pencil-local index i.
  size_t pencil_to_global(size_t i) const {
    const size_t nyloc = yrows_.count(rank_);
    const size_t i0 = i % n0_;
    const size_t i1 = yrows_.offset(rank_) + (i / n0_) % nyloc;
    const size_t i2 = i / (n0_ * nyloc);
    return i0 + n0_ * (i1 + n1_ * i2);
  }
  // Pencil-local index of global linear grid index g, or npos if the
  // (x, z) sheet of g's i1 row belongs to another rank.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t global_to_pencil(size_t g) const {
    const size_t i1 = (g / n0_) % n1_;
    const size_t y0 = yrows_.offset(rank_);
    if (i1 < y0 || i1 >= y0 + yrows_.count(rank_)) return npos;
    const size_t i0 = g % n0_;
    const size_t i2 = g / (n0_ * n1_);
    return i0 + n0_ * ((i1 - y0) + yrows_.count(rank_) * i2);
  }

  // nbatch consecutive nreal()-element slabs -> nbatch npencil() pencils.
  // Collective over the grid communicator. NOT reentrant per instance: the
  // staging/transpose scratch is persistent (hot-loop calls must not churn
  // the allocator), so one DistFft3T serves one stream of calls — the
  // slab-exchange contract, where every transform of a rank runs on that
  // rank's (single) compute stream.
  void forward(const C* slab, C* pencil, size_t nbatch = 1) const;
  // Exact inverse, scaled by 1/size() like the serial engine.
  void inverse(const C* pencil, C* slab, size_t nbatch = 1) const;

  // Γ-point packed real transforms: `nfields` REAL nreal()-element slabs
  // ride ceil(nfields/2) complex transforms (lane q packs fields 2q and
  // 2q+1 as z = a + i b; an odd trailing field gets a zero imaginary
  // lane), so the Alltoallv transpose moves HALF the bytes per field.
  // forward_batch_real leaves the pencil spectra PACKED — unlike the
  // serial Fft3T::forward_batch_real there is no unscramble, because the
  // negated-index partner (n-k) % n of a pencil row lives on another rank.
  // Contract: pointwise multiplication by a REAL, EVEN spectral filter
  // (K(-G) == K(G), e.g. the exchange kernel) acts on both packed
  // residents exactly by linearity, so filter-then-inverse round trips
  // need no unscramble; any other spectral use needs the serial engine.
  // inverse_batch_real mirrors back to nfields real slabs (scaled
  // 1/size()). Lane contents depend only on field pairing (2q, 2q+1),
  // never on nfields, so per-field results are invariant to batch
  // composition.
  void forward_batch_real(const R* slab, C* pencil, size_t nfields) const;
  void inverse_batch_real(const C* pencil, R* slab, size_t nfields) const;

  ptmpi::Comm& comm() const { return comm_; }
  int rank() const { return rank_; }
  int parts() const { return zslabs_.parts(); }

  // Wall seconds spent inside forward()/inverse() on this rank (benches
  // report it as the slab-FFT column).
  double seconds() const { return seconds_; }
  void reset_seconds() { seconds_ = 0.0; }

 private:
  // Transpose z slabs (after the xy passes) into y pencils and back; pure
  // data movement via one Alltoallv per call, whole batch packed at once.
  void slab_to_pencil(const C* slab, C* pencil, size_t nbatch) const;
  void pencil_to_slab(const C* pencil, C* slab, size_t nbatch) const;

  size_t n0_, n1_, n2_;
  mutable ptmpi::Comm comm_;
  int rank_;
  dist::BlockLayout zslabs_;
  dist::BlockLayout yrows_;
  Plan1DT<R> p0_, p1_, p2_;
  mutable double seconds_ = 0.0;
  // Persistent scratch (see the reentrancy note on forward()): the staged
  // axis-pass copy and the transpose pack/unpack buffers, reused across
  // calls so the exchange hot loop performs no per-call allocations once
  // the high-water batch size has been seen.
  mutable std::vector<C> work_, sendbuf_, recvbuf_;
  // Packed-lane staging of the Γ-point real transforms (same persistence
  // contract as the buffers above).
  mutable std::vector<C> realpack_;
};

using DistFft3 = DistFft3T<real_t>;
using DistFft3f = DistFft3T<realf_t>;

extern template class DistFft3T<float>;
extern template class DistFft3T<double>;

}  // namespace ptim::fft
