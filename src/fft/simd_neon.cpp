// NEON (AArch64 Advanced SIMD) kernels of the dispatched FFT pass
// (fft/simd.hpp) — the paper's A64FX/ARM target. NEON is baseline on
// AArch64, so no extra compiler flag is needed; an empty fallback TU is
// produced on other architectures. Explicit mul/add/sub intrinsics only —
// no fused vmla/vfma — and the TU is compiled with -ffp-contract=off, so
// the results are bitwise-identical to the scalar kernels.

#include "fft/simd.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include "fft/simd_kernels_impl.hpp"

namespace ptim::fft::simd::detail {
namespace {

struct VecNeonD {
  using T = float64x2_t;
  static constexpr size_t width = 2;
  static T load(const double* p) { return vld1q_f64(p); }
  static void store(double* p, T v) { vst1q_f64(p, v); }
  static T set1(double x) { return vdupq_n_f64(x); }
  static T add(T a, T b) { return vaddq_f64(a, b); }
  static T sub(T a, T b) { return vsubq_f64(a, b); }
  static T mul(T a, T b) { return vmulq_f64(a, b); }
};

struct VecNeonF {
  using T = float32x4_t;
  static constexpr size_t width = 4;
  static T load(const float* p) { return vld1q_f32(p); }
  static void store(float* p, T v) { vst1q_f32(p, v); }
  static T set1(float x) { return vdupq_n_f32(x); }
  static T add(T a, T b) { return vaddq_f32(a, b); }
  static T sub(T a, T b) { return vsubq_f32(a, b); }
  static T mul(T a, T b) { return vmulq_f32(a, b); }
};

const PassKernels<double> kNeonF64{&dft_rows_impl<double, VecNeonD>,
                                   &butterfly_impl<double, VecNeonD>};
const PassKernels<float> kNeonF32{&dft_rows_impl<float, VecNeonF>,
                                  &butterfly_impl<float, VecNeonF>};

}  // namespace

const PassKernels<double>* neon_kernels_f64() { return &kNeonF64; }
const PassKernels<float>* neon_kernels_f32() { return &kNeonF32; }

}  // namespace ptim::fft::simd::detail

#else  // not AArch64 NEON

namespace ptim::fft::simd::detail {
const PassKernels<double>* neon_kernels_f64() { return nullptr; }
const PassKernels<float>* neon_kernels_f32() { return nullptr; }
}  // namespace ptim::fft::simd::detail

#endif
