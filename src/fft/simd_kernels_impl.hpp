#pragma once
// Shared body of the vector pass kernels, templated over a vector policy.
//
// A policy V provides: width, a register type V::T, and load / store /
// set1 / add / sub / mul over it. The vector main loop performs, per lane,
// THE SAME operation sequence as the scalar reference kernels in
// simd_scalar.cpp — t1 = wr*x, t2 = wi*y, one sub/add, one accumulate add,
// with explicit mul/add/sub intrinsics and no FMA (the TUs are compiled
// with -ffp-contract=off) — and the tail loop repeats the scalar
// statements verbatim, so the result is bitwise-identical to the scalar
// kernels for every vlen. Included only by the per-ISA TUs.

#include <algorithm>
#include <complex>
#include <cstddef>

#include "fft/simd.hpp"

namespace ptim::fft::simd::detail {

template <typename R, typename V>
void dft_rows_impl(size_t n, const R* in_re, const R* in_im, size_t stride,
                   R* out_re, R* out_im, const std::complex<R>* tw,
                   size_t n_total, size_t tw_step, bool fwd, size_t vlen) {
  for (size_t k = 0; k < n; ++k) {
    R* okr = out_re + k * vlen;
    R* oki = out_im + k * vlen;
    std::fill(okr, okr + vlen, R(0));
    std::fill(oki, oki + vlen, R(0));
    const size_t step = (k * tw_step) % n_total;
    size_t idx = 0;
    for (size_t j = 0; j < n; ++j) {
      const R wr = tw[idx].real();
      const R wi = fwd ? tw[idx].imag() : -tw[idx].imag();
      idx += step;
      if (idx >= n_total) idx -= n_total;
      const R* ijr = in_re + j * stride * vlen;
      const R* iji = in_im + j * stride * vlen;
      const typename V::T vwr = V::set1(wr);
      const typename V::T vwi = V::set1(wi);
      size_t l = 0;
      for (; l + V::width <= vlen; l += V::width) {
        const typename V::T xr = V::load(ijr + l);
        const typename V::T xi = V::load(iji + l);
        const typename V::T re = V::sub(V::mul(vwr, xr), V::mul(vwi, xi));
        const typename V::T im = V::add(V::mul(vwr, xi), V::mul(vwi, xr));
        V::store(okr + l, V::add(V::load(okr + l), re));
        V::store(oki + l, V::add(V::load(oki + l), im));
      }
      for (; l < vlen; ++l) {
        okr[l] += wr * ijr[l] - wi * iji[l];
        oki[l] += wr * iji[l] + wi * ijr[l];
      }
    }
  }
}

template <typename R, typename V>
void butterfly_impl(size_t r, size_t m, R* out_re, R* out_im,
                    const std::complex<R>* tw, size_t n_total, size_t tw_step,
                    bool fwd, size_t vlen) {
  R tmp_re[8 * kMaxTile], tmp_im[8 * kMaxTile];
  for (size_t k2 = 0; k2 < m; ++k2) {
    for (size_t q = 0; q < r; ++q) {
      R* tqr = tmp_re + q * vlen;
      R* tqi = tmp_im + q * vlen;
      std::fill(tqr, tqr + vlen, R(0));
      std::fill(tqi, tqi + vlen, R(0));
      const size_t step = ((q * m + k2) * tw_step) % n_total;
      size_t idx = 0;
      for (size_t j = 0; j < r; ++j) {
        const R wr = tw[idx].real();
        const R wi = fwd ? tw[idx].imag() : -tw[idx].imag();
        idx += step;
        if (idx >= n_total) idx -= n_total;
        const R* yjr = out_re + (j * m + k2) * vlen;
        const R* yji = out_im + (j * m + k2) * vlen;
        const typename V::T vwr = V::set1(wr);
        const typename V::T vwi = V::set1(wi);
        size_t l = 0;
        for (; l + V::width <= vlen; l += V::width) {
          const typename V::T xr = V::load(yjr + l);
          const typename V::T xi = V::load(yji + l);
          const typename V::T re = V::sub(V::mul(vwr, xr), V::mul(vwi, xi));
          const typename V::T im = V::add(V::mul(vwr, xi), V::mul(vwi, xr));
          V::store(tqr + l, V::add(V::load(tqr + l), re));
          V::store(tqi + l, V::add(V::load(tqi + l), im));
        }
        for (; l < vlen; ++l) {
          tqr[l] += wr * yjr[l] - wi * yji[l];
          tqi[l] += wr * yji[l] + wi * yjr[l];
        }
      }
    }
    for (size_t q = 0; q < r; ++q) {
      std::copy(tmp_re + q * vlen, tmp_re + (q + 1) * vlen,
                out_re + (q * m + k2) * vlen);
      std::copy(tmp_im + q * vlen, tmp_im + (q + 1) * vlen,
                out_im + (q * m + k2) * vlen);
    }
  }
}

}  // namespace ptim::fft::simd::detail
