#include "fft/dist_fft.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "fft/axis_pass.hpp"
#include "obs/obs.hpp"

namespace ptim::fft {

template <typename R>
DistFft3T<R>::DistFft3T(std::array<size_t, 3> dims, ptmpi::Comm grid_comm)
    : n0_(dims[0]),
      n1_(dims[1]),
      n2_(dims[2]),
      comm_(grid_comm),
      rank_(grid_comm.rank()),
      zslabs_(dims[2], grid_comm.size()),
      yrows_(dims[1], grid_comm.size()),
      p0_(dims[0]),
      p1_(dims[1]),
      p2_(dims[2]) {
  PTIM_CHECK_MSG(n0_ >= 1 && n1_ >= 1 && n2_ >= 1, "DistFft3: empty box");
}

// The local axis transforms below run through the SHARED axis pass
// (fft/axis_pass.hpp) — the same code the serial Fft3T::transform_batch
// executes — so every 1-D line produces bit-identical values to the serial
// engine and only the line partitioning differs.

template <typename R>
void DistFft3T<R>::slab_to_pencil(const C* slab, C* pencil,
                                  size_t nbatch) const {
  const int p = zslabs_.parts();
  const size_t zloc = zslabs_.count(rank_);
  const size_t nyloc = yrows_.count(rank_);
  const size_t nreal_1 = n0_ * n1_ * zloc;
  const size_t npencil_1 = n0_ * nyloc * n2_;

  // Pack order per destination: (batch, local z, destination i1, i0-row).
  std::vector<size_t> send_counts(static_cast<size_t>(p)),
      recv_counts(static_cast<size_t>(p));
  size_t total_send = 0, total_recv = 0;
  for (int r = 0; r < p; ++r) {
    send_counts[static_cast<size_t>(r)] =
        nbatch * zloc * yrows_.count(r) * n0_;
    recv_counts[static_cast<size_t>(r)] =
        nbatch * zslabs_.count(r) * nyloc * n0_;
    total_send += send_counts[static_cast<size_t>(r)];
    total_recv += recv_counts[static_cast<size_t>(r)];
  }

  sendbuf_.resize(total_send);
  recvbuf_.resize(total_recv);
  size_t w = 0;
  for (int r = 0; r < p; ++r) {
    const size_t y0 = yrows_.offset(r), yc = yrows_.count(r);
    for (size_t b = 0; b < nbatch; ++b)
      for (size_t z = 0; z < zloc; ++z)
        for (size_t i1 = y0; i1 < y0 + yc; ++i1) {
          const C* row = slab + b * nreal_1 + n0_ * (i1 + n1_ * z);
          std::copy(row, row + n0_, sendbuf_.begin() + static_cast<long>(w));
          w += n0_;
        }
  }

  {
    OBS_SPAN("dfft.alltoallv", obs::Cat::kComm);
    comm_.alltoallv(sendbuf_.data(), send_counts, recvbuf_.data(),
                    recv_counts);
  }

  size_t rdx = 0;
  for (int r = 0; r < p; ++r) {
    const size_t z0 = zslabs_.offset(r), zc = zslabs_.count(r);
    for (size_t b = 0; b < nbatch; ++b)
      for (size_t z = z0; z < z0 + zc; ++z)
        for (size_t i1l = 0; i1l < nyloc; ++i1l) {
          C* row = pencil + b * npencil_1 + n0_ * (i1l + nyloc * z);
          std::copy(recvbuf_.begin() + static_cast<long>(rdx),
                    recvbuf_.begin() + static_cast<long>(rdx + n0_), row);
          rdx += n0_;
        }
  }
}

template <typename R>
void DistFft3T<R>::pencil_to_slab(const C* pencil, C* slab,
                                  size_t nbatch) const {
  const int p = zslabs_.parts();
  const size_t zloc = zslabs_.count(rank_);
  const size_t nyloc = yrows_.count(rank_);
  const size_t nreal_1 = n0_ * n1_ * zloc;
  const size_t npencil_1 = n0_ * nyloc * n2_;

  std::vector<size_t> send_counts(static_cast<size_t>(p)),
      recv_counts(static_cast<size_t>(p));
  size_t total_send = 0, total_recv = 0;
  for (int r = 0; r < p; ++r) {
    send_counts[static_cast<size_t>(r)] =
        nbatch * zslabs_.count(r) * nyloc * n0_;
    recv_counts[static_cast<size_t>(r)] =
        nbatch * zloc * yrows_.count(r) * n0_;
    total_send += send_counts[static_cast<size_t>(r)];
    total_recv += recv_counts[static_cast<size_t>(r)];
  }

  sendbuf_.resize(total_send);
  recvbuf_.resize(total_recv);
  size_t w = 0;
  for (int r = 0; r < p; ++r) {
    const size_t z0 = zslabs_.offset(r), zc = zslabs_.count(r);
    for (size_t b = 0; b < nbatch; ++b)
      for (size_t z = z0; z < z0 + zc; ++z)
        for (size_t i1l = 0; i1l < nyloc; ++i1l) {
          const C* row = pencil + b * npencil_1 + n0_ * (i1l + nyloc * z);
          std::copy(row, row + n0_, sendbuf_.begin() + static_cast<long>(w));
          w += n0_;
        }
  }

  {
    OBS_SPAN("dfft.alltoallv", obs::Cat::kComm);
    comm_.alltoallv(sendbuf_.data(), send_counts, recvbuf_.data(),
                    recv_counts);
  }

  size_t rdx = 0;
  for (int r = 0; r < p; ++r) {
    const size_t y0 = yrows_.offset(r), yc = yrows_.count(r);
    for (size_t b = 0; b < nbatch; ++b)
      for (size_t z = 0; z < zloc; ++z)
        for (size_t i1 = y0; i1 < y0 + yc; ++i1) {
          C* row = slab + b * nreal_1 + n0_ * (i1 + n1_ * z);
          std::copy(recvbuf_.begin() + static_cast<long>(rdx),
                    recvbuf_.begin() + static_cast<long>(rdx + n0_), row);
          rdx += n0_;
        }
  }
}

template <typename R>
void DistFft3T<R>::forward(const C* slab, C* pencil, size_t nbatch) const {
  if (nbatch == 0) return;
  OBS_SPAN("dfft.forward", obs::Cat::kFft);
  Timer t;
  const size_t zloc = zslabs_.count(rank_);
  const size_t nyloc = yrows_.count(rank_);
  const size_t nreal_1 = n0_ * n1_ * zloc;
  const size_t pplane = n0_ * nyloc;

  // Axes 0 and 1 on the z slab (xy planes are complete locally). The slab
  // input is const: stage through the persistent scratch so callers can
  // keep their real-space payloads (the circulating ring slabs) intact.
  work_.assign(slab, slab + nbatch * nreal_1);
  detail::axis_pass(
      p0_, n0_, nbatch * n1_ * zloc, [&](size_t q) { return q * n0_; },
      size_t{1}, work_.data(), true);
  detail::axis_pass(
      p1_, n1_, nbatch * zloc * n0_,
      [&](size_t q) {
        const size_t b = q / (zloc * n0_);
        const size_t rem = q % (zloc * n0_);
        const size_t z = rem / n0_;
        const size_t i0 = rem % n0_;
        return b * nreal_1 + z * n0_ * n1_ + i0;
      },
      n0_, work_.data(), true);

  slab_to_pencil(work_.data(), pencil, nbatch);

  // Axis 2 on the y pencil (z lines are complete locally).
  detail::axis_pass(
      p2_, n2_, nbatch * pplane,
      [&](size_t q) { return (q / pplane) * (pplane * n2_) + (q % pplane); },
      pplane, pencil, true);
  seconds_ += t.seconds();
}

template <typename R>
void DistFft3T<R>::inverse(const C* pencil, C* slab, size_t nbatch) const {
  if (nbatch == 0) return;
  OBS_SPAN("dfft.inverse", obs::Cat::kFft);
  Timer t;
  const size_t zloc = zslabs_.count(rank_);
  const size_t nyloc = yrows_.count(rank_);
  const size_t nreal_1 = n0_ * n1_ * zloc;
  const size_t npencil_1 = n0_ * nyloc * n2_;
  const size_t pplane = n0_ * nyloc;

  // Mirror of forward: axis 2 on the pencil, transpose back, axes 1 and 0
  // on the slab, then the serial engine's single trailing 1/size() scale.
  work_.assign(pencil, pencil + nbatch * npencil_1);
  detail::axis_pass(
      p2_, n2_, nbatch * pplane,
      [&](size_t q) { return (q / pplane) * (pplane * n2_) + (q % pplane); },
      pplane, work_.data(), false);

  pencil_to_slab(work_.data(), slab, nbatch);

  detail::axis_pass(
      p1_, n1_, nbatch * zloc * n0_,
      [&](size_t q) {
        const size_t b = q / (zloc * n0_);
        const size_t rem = q % (zloc * n0_);
        const size_t z = rem / n0_;
        const size_t i0 = rem % n0_;
        return b * nreal_1 + z * n0_ * n1_ + i0;
      },
      n0_, slab, false);
  detail::axis_pass(
      p0_, n0_, nbatch * n1_ * zloc, [&](size_t q) { return q * n0_; },
      size_t{1}, slab, false);

  const R s = R(1) / static_cast<R>(size());
  const size_t total = nbatch * nreal_1;
#pragma omp parallel for schedule(static)
  for (size_t i = 0; i < total; ++i) slab[i] *= s;
  seconds_ += t.seconds();
}

template <typename R>
void DistFft3T<R>::forward_batch_real(const R* slab, C* pencil,
                                      size_t nfields) const {
  if (nfields == 0) return;
  const size_t nloc = nreal();
  const size_t nlanes = (nfields + 1) / 2;
  realpack_.resize(nlanes * nloc);
#pragma omp parallel for schedule(static) collapse(2)
  for (size_t q = 0; q < nlanes; ++q)
    for (size_t r = 0; r < nloc; ++r)
      realpack_[q * nloc + r] =
          C(slab[2 * q * nloc + r],
            (2 * q + 1 < nfields) ? slab[(2 * q + 1) * nloc + r] : R(0));
  forward(realpack_.data(), pencil, nlanes);
}

template <typename R>
void DistFft3T<R>::inverse_batch_real(const C* pencil, R* slab,
                                      size_t nfields) const {
  if (nfields == 0) return;
  const size_t nloc = nreal();
  const size_t nlanes = (nfields + 1) / 2;
  realpack_.resize(nlanes * nloc);
  inverse(pencil, realpack_.data(), nlanes);
#pragma omp parallel for schedule(static) collapse(2)
  for (size_t q = 0; q < nlanes; ++q)
    for (size_t r = 0; r < nloc; ++r) {
      slab[2 * q * nloc + r] = realpack_[q * nloc + r].real();
      if (2 * q + 1 < nfields)
        slab[(2 * q + 1) * nloc + r] = realpack_[q * nloc + r].imag();
    }
}

template class DistFft3T<float>;
template class DistFft3T<double>;

}  // namespace ptim::fft
