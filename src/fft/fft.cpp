#include "fft/fft.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptim::fft {

namespace {

bool factors_into_small_primes(size_t n) {
  for (size_t p : {size_t{2}, size_t{3}, size_t{5}, size_t{7}})
    while (n % p == 0) n /= p;
  return n == 1;
}

size_t smallest_prime_factor(size_t n) {
  for (size_t p : {size_t{2}, size_t{3}, size_t{5}, size_t{7}})
    if (n % p == 0) return p;
  for (size_t p = 11; p * p <= n; p += 2)
    if (n % p == 0) return p;
  return n;
}

}  // namespace

bool fft_size_ok(size_t n) { return n >= 1 && factors_into_small_primes(n); }

size_t next_fft_size(size_t n) {
  if (n < 1) return 1;
  while (!factors_into_small_primes(n)) ++n;
  return n;
}

Plan1D::Plan1D(size_t n) : n_(n) {
  PTIM_CHECK_MSG(n >= 1, "Plan1D: size must be positive");
  tw_.resize(n);
  for (size_t k = 0; k < n; ++k) {
    const real_t ang = -kTwoPi * static_cast<real_t>(k) / static_cast<real_t>(n);
    tw_[k] = {std::cos(ang), std::sin(ang)};
  }
  use_bluestein_ = !factors_into_small_primes(n) && n > 1;
  if (use_bluestein_) {
    m_ = 1;
    while (m_ < 2 * n - 1) m_ *= 2;
    conv_plan_ = std::make_unique<Plan1D>(m_);
    chirp_.resize(n);
    for (size_t k = 0; k < n; ++k) {
      // e^{-i pi k^2 / n}; reduce k^2 mod 2n to keep the angle accurate.
      const size_t k2 = (k * k) % (2 * n);
      const real_t ang = -kPi * static_cast<real_t>(k2) / static_cast<real_t>(n);
      chirp_[k] = {std::cos(ang), std::sin(ang)};
    }
    // Filter b_j = conj(chirp) extended circularly; precompute its FFT.
    std::vector<cplx> b(m_, cplx(0.0));
    b[0] = std::conj(chirp_[0]);
    for (size_t k = 1; k < n; ++k) {
      b[k] = std::conj(chirp_[k]);
      b[m_ - k] = std::conj(chirp_[k]);
    }
    bfft_.resize(m_);
    conv_plan_->forward(b.data(), bfft_.data());
  }
}

void Plan1D::forward(const cplx* in, cplx* out) const { transform(in, out, true); }

void Plan1D::inverse_unscaled(const cplx* in, cplx* out) const {
  transform(in, out, false);
}

void Plan1D::inverse(const cplx* in, cplx* out) const {
  transform(in, out, false);
  const real_t inv = 1.0 / static_cast<real_t>(n_);
  for (size_t i = 0; i < n_; ++i) out[i] *= inv;
}

void Plan1D::transform(const cplx* in, cplx* out, bool fwd) const {
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }
  if (in == out) {
    std::vector<cplx> tmp(in, in + n_);
    transform(tmp.data(), out, fwd);
    return;
  }
  if (use_bluestein_)
    bluestein(in, out, fwd);
  else
    recurse(n_, in, 1, out, 1, fwd);
}

// DFT_n of the input viewed with the given stride; tw_step maps local
// twiddle index k to the top-level root table: w_n^k == tw_[k * tw_step]
// (conjugated for the inverse transform).
void Plan1D::recurse(size_t n, const cplx* in, size_t stride, cplx* out,
                     size_t tw_step, bool fwd) const {
  auto root = [&](size_t idx) -> cplx {
    const cplx w = tw_[idx % n_];
    return fwd ? w : std::conj(w);
  };

  if (n <= 7 || smallest_prime_factor(n) == n) {
    // Direct small DFT.
    for (size_t k = 0; k < n; ++k) {
      cplx acc = 0.0;
      for (size_t j = 0; j < n; ++j) acc += root(j * k * tw_step) * in[j * stride];
      out[k] = acc;
    }
    return;
  }

  const size_t r = smallest_prime_factor(n);
  const size_t m = n / r;
  // Sub-transforms of the r decimated sequences, each written contiguously.
  for (size_t j = 0; j < r; ++j)
    recurse(m, in + j * stride, stride * r, out + j * m, tw_step * r, fwd);

  // Butterfly combine: X[q*m + k2] = sum_j w_n^{j(q*m+k2)} Y_j[k2].
  cplx tmp[8];
  for (size_t k2 = 0; k2 < m; ++k2) {
    for (size_t q = 0; q < r; ++q) {
      cplx acc = 0.0;
      const size_t kk = q * m + k2;
      for (size_t j = 0; j < r; ++j)
        acc += root(j * kk * tw_step) * out[j * m + k2];
      tmp[q] = acc;
    }
    for (size_t q = 0; q < r; ++q) out[q * m + k2] = tmp[q];
  }
}

void Plan1D::forward_many(const cplx* in, cplx* out, size_t vlen) const {
  transform_many(in, out, vlen, true);
}

void Plan1D::inverse_unscaled_many(const cplx* in, cplx* out,
                                   size_t vlen) const {
  transform_many(in, out, vlen, false);
}

void Plan1D::inverse_many(const cplx* in, cplx* out, size_t vlen) const {
  transform_many(in, out, vlen, false);
  const real_t inv = 1.0 / static_cast<real_t>(n_);
  for (size_t i = 0; i < n_ * vlen; ++i) out[i] *= inv;
}

void Plan1D::transform_many(const cplx* in, cplx* out, size_t vlen,
                            bool fwd) const {
  PTIM_CHECK_MSG(vlen >= 1 && vlen <= kMaxTile,
                 "Plan1D: vlen outside [1, kMaxTile]");
  if (n_ == 1) {
    std::copy(in, in + vlen, out);
    return;
  }
  if (use_bluestein_) {
    // Bluestein sizes never occur on FFT-friendly grids; keep the fallback
    // simple: de-interleave each line and run the scalar chirp transform.
    std::vector<cplx> line(n_), res(n_);
    for (size_t l = 0; l < vlen; ++l) {
      for (size_t k = 0; k < n_; ++k) line[k] = in[k * vlen + l];
      bluestein(line.data(), res.data(), fwd);
      for (size_t k = 0; k < n_; ++k) out[k * vlen + l] = res[k];
    }
    return;
  }
  recurse_many(n_, in, 1, out, 1, fwd, vlen);
}

// Vector analogue of recurse(): identical index algebra, but every twiddle
// is materialized once and swept across the `vlen` contiguous line slots.
void Plan1D::recurse_many(size_t n, const cplx* in, size_t stride, cplx* out,
                          size_t tw_step, bool fwd, size_t vlen) const {
  auto root = [&](size_t idx) -> cplx {
    const cplx w = tw_[idx % n_];
    return fwd ? w : std::conj(w);
  };

  if (n <= 7 || smallest_prime_factor(n) == n) {
    for (size_t k = 0; k < n; ++k) {
      cplx* ok = out + k * vlen;
      std::fill(ok, ok + vlen, cplx(0.0));
      for (size_t j = 0; j < n; ++j) {
        const cplx w = root(j * k * tw_step);
        const cplx* ij = in + j * stride * vlen;
        for (size_t l = 0; l < vlen; ++l) ok[l] += w * ij[l];
      }
    }
    return;
  }

  const size_t r = smallest_prime_factor(n);
  const size_t m = n / r;
  for (size_t j = 0; j < r; ++j)
    recurse_many(m, in + j * stride * vlen, stride * r, out + j * m * vlen,
                 tw_step * r, fwd, vlen);

  cplx tmp[8 * kMaxTile];
  for (size_t k2 = 0; k2 < m; ++k2) {
    for (size_t q = 0; q < r; ++q) {
      cplx* tq = tmp + q * vlen;
      std::fill(tq, tq + vlen, cplx(0.0));
      const size_t kk = q * m + k2;
      for (size_t j = 0; j < r; ++j) {
        const cplx w = root(j * kk * tw_step);
        const cplx* yj = out + (j * m + k2) * vlen;
        for (size_t l = 0; l < vlen; ++l) tq[l] += w * yj[l];
      }
    }
    for (size_t q = 0; q < r; ++q) {
      cplx* oq = out + (q * m + k2) * vlen;
      const cplx* tq = tmp + q * vlen;
      std::copy(tq, tq + vlen, oq);
    }
  }
}

void Plan1D::bluestein(const cplx* in, cplx* out, bool fwd) const {
  const size_t n = n_;
  std::vector<cplx> a(m_, cplx(0.0)), afft(m_);
  for (size_t k = 0; k < n; ++k) {
    const cplx c = fwd ? chirp_[k] : std::conj(chirp_[k]);
    a[k] = in[k] * c;
  }
  conv_plan_->forward(a.data(), afft.data());
  if (fwd) {
    for (size_t k = 0; k < m_; ++k) afft[k] *= bfft_[k];
  } else {
    // Inverse chirp filter is the conjugate; its FFT is index-reversed conj.
    for (size_t k = 0; k < m_; ++k) {
      const size_t rk = (m_ - k) % m_;
      afft[k] *= std::conj(bfft_[rk]);
    }
  }
  conv_plan_->inverse(afft.data(), a.data());
  for (size_t k = 0; k < n; ++k) {
    const cplx c = fwd ? chirp_[k] : std::conj(chirp_[k]);
    out[k] = a[k] * c;
  }
}

Fft3::Fft3(size_t n0, size_t n1, size_t n2)
    : n0_(n0), n1_(n1), n2_(n2), p0_(n0), p1_(n1), p2_(n2) {}

void Fft3::forward_batch(cplx* data, size_t nbatch) const {
  if (nbatch == 0) return;
  transform_batch(data, nbatch, Dir::kForward);
}

void Fft3::inverse_batch(cplx* data, size_t nbatch) const {
  if (nbatch == 0) return;
  transform_batch(data, nbatch, Dir::kInverse);
  const real_t s = 1.0 / static_cast<real_t>(size());
  const size_t total = nbatch * size();
#pragma omp parallel for schedule(static)
  for (size_t i = 0; i < total; ++i) data[i] *= s;
}

// All three axis passes of the whole batch run inside one parallel region:
// lines are gathered in tiles of kMaxTile into element-major scratch, pushed
// through the vector 1-D transforms (twiddles amortized over the tile), and
// scattered back. Consecutive line indices are chosen so that tile gathers
// walk memory contiguously on the strided axes.
void Fft3::transform_batch(cplx* data, size_t nbatch, Dir dir) const {
  const bool fwd = dir == Dir::kForward;
  const size_t ng = size();
  const size_t plane = n0_ * n1_;
  constexpr size_t kTile = Plan1D::kMaxTile;
  const size_t nmax = std::max(n0_, std::max(n1_, n2_));

#pragma omp parallel
  {
    std::vector<cplx> tile(kTile * nmax), tout(kTile * nmax);

    auto run_axis = [&](const Plan1D& p, size_t n, size_t count,
                        auto line_start, size_t stride) {
      const size_t ngroups = (count + kTile - 1) / kTile;
#pragma omp for schedule(static)
      for (size_t g = 0; g < ngroups; ++g) {
        const size_t q0 = g * kTile;
        const size_t v = std::min(kTile, count - q0);
        for (size_t l = 0; l < v; ++l) {
          const cplx* src = data + line_start(q0 + l);
          for (size_t k = 0; k < n; ++k) tile[k * v + l] = src[k * stride];
        }
        if (fwd)
          p.forward_many(tile.data(), tout.data(), v);
        else
          p.inverse_unscaled_many(tile.data(), tout.data(), v);
        for (size_t l = 0; l < v; ++l) {
          cplx* dst = data + line_start(q0 + l);
          for (size_t k = 0; k < n; ++k) dst[k * stride] = tout[k * v + l];
        }
      }
    };

    // Axis 0: contiguous lines, the whole batch is one flat line array.
    run_axis(
        p0_, n0_, nbatch * n1_ * n2_, [&](size_t q) { return q * n0_; }, 1);

    // Axis 1: stride n0 within each (batch, i2) plane; consecutive q's are
    // consecutive i0, so tile gathers read contiguous memory.
    run_axis(
        p1_, n1_, nbatch * n2_ * n0_,
        [&](size_t q) {
          const size_t b = q / (n2_ * n0_);
          const size_t rem = q % (n2_ * n0_);
          const size_t i2 = rem / n0_;
          const size_t i0 = rem % n0_;
          return b * ng + i2 * plane + i0;
        },
        n0_);

    // Axis 2: stride n0*n1; consecutive q's walk the contiguous plane.
    run_axis(
        p2_, n2_, nbatch * plane,
        [&](size_t q) { return (q / plane) * ng + (q % plane); }, plane);
  }
}

void Fft3::forward(cplx* data) const { transform(data, Dir::kForward); }

void Fft3::inverse(cplx* data) const {
  transform(data, Dir::kInverse);
  const real_t s = 1.0 / static_cast<real_t>(size());
  const size_t ng = size();
  for (size_t i = 0; i < ng; ++i) data[i] *= s;
}

void Fft3::transform(cplx* data, Dir dir) const {
  const bool fwd = dir == Dir::kForward;
  auto run1d = [&](const Plan1D& p, const cplx* in, cplx* out) {
    if (fwd)
      p.forward(in, out);
    else
      p.inverse_unscaled(in, out);
  };

  // Axis 0: contiguous lines.
#pragma omp parallel for schedule(static)
  for (size_t l = 0; l < n1_ * n2_; ++l) {
    std::vector<cplx> buf(n0_);
    cplx* line = data + l * n0_;
    run1d(p0_, line, buf.data());
    std::copy(buf.begin(), buf.end(), line);
  }

  // Axis 1: stride n0 within each i2-plane.
#pragma omp parallel for schedule(static) collapse(2)
  for (size_t i2 = 0; i2 < n2_; ++i2) {
    for (size_t i0 = 0; i0 < n0_; ++i0) {
      std::vector<cplx> gather(n1_), buf(n1_);
      cplx* base = data + i0 + i2 * n0_ * n1_;
      for (size_t i1 = 0; i1 < n1_; ++i1) gather[i1] = base[i1 * n0_];
      run1d(p1_, gather.data(), buf.data());
      for (size_t i1 = 0; i1 < n1_; ++i1) base[i1 * n0_] = buf[i1];
    }
  }

  // Axis 2: stride n0*n1.
  const size_t plane = n0_ * n1_;
#pragma omp parallel for schedule(static)
  for (size_t l = 0; l < plane; ++l) {
    std::vector<cplx> gather(n2_), buf(n2_);
    cplx* base = data + l;
    for (size_t i2 = 0; i2 < n2_; ++i2) gather[i2] = base[i2 * plane];
    run1d(p2_, gather.data(), buf.data());
    for (size_t i2 = 0; i2 < n2_; ++i2) base[i2 * plane] = buf[i2];
  }
}

}  // namespace ptim::fft
