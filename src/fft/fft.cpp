#include "fft/fft.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "fft/axis_pass.hpp"
#include "fft/simd.hpp"

namespace ptim::fft {

// The dispatched kernels size their stack tiles off simd::kMaxTile.
static_assert(simd::kMaxTile == Plan1DT<double>::kMaxTile,
              "simd::kMaxTile must match Plan1DT::kMaxTile");

namespace {

bool factors_into_small_primes(size_t n) {
  for (size_t p : {size_t{2}, size_t{3}, size_t{5}, size_t{7}})
    while (n % p == 0) n /= p;
  return n == 1;
}

size_t smallest_prime_factor(size_t n) {
  for (size_t p : {size_t{2}, size_t{3}, size_t{5}, size_t{7}})
    if (n % p == 0) return p;
  for (size_t p = 11; p * p <= n; p += 2)
    if (n % p == 0) return p;
  return n;
}

// Twiddle/chirp angles are evaluated in double regardless of the plan's
// scalar type, then rounded once — the float tables carry no generation
// error beyond the final rounding.
template <typename R>
std::complex<R> unit_root(double ang) {
  return {static_cast<R>(std::cos(ang)), static_cast<R>(std::sin(ang))};
}

}  // namespace

bool fft_size_ok(size_t n) { return n >= 1 && factors_into_small_primes(n); }

size_t next_fft_size(size_t n) {
  if (n < 1) return 1;
  while (!factors_into_small_primes(n)) ++n;
  return n;
}

template <typename R>
Plan1DT<R>::Plan1DT(size_t n) : n_(n) {
  PTIM_CHECK_MSG(n >= 1, "Plan1D: size must be positive");
  tw_.resize(n);
  const double dn = static_cast<double>(n);
  for (size_t k = 0; k < n; ++k) {
    const double ang = -kTwoPi * static_cast<double>(k) / dn;
    tw_[k] = unit_root<R>(ang);
  }
  use_bluestein_ = !factors_into_small_primes(n) && n > 1;
  if (use_bluestein_) {
    m_ = 1;
    while (m_ < 2 * n - 1) m_ *= 2;
    conv_plan_ = std::make_unique<Plan1DT<R>>(m_);
    chirp_.resize(n);
    for (size_t k = 0; k < n; ++k) {
      // e^{-i pi k^2 / n}; reduce k^2 mod 2n to keep the angle accurate.
      const size_t k2 = (k * k) % (2 * n);
      const double ang = -kPi * static_cast<double>(k2) / dn;
      chirp_[k] = unit_root<R>(ang);
    }
    // Filter b_j = conj(chirp) extended circularly; precompute its FFT.
    std::vector<C> b(m_, C(0.0));
    b[0] = std::conj(chirp_[0]);
    for (size_t k = 1; k < n; ++k) {
      b[k] = std::conj(chirp_[k]);
      b[m_ - k] = std::conj(chirp_[k]);
    }
    bfft_.resize(m_);
    conv_plan_->forward(b.data(), bfft_.data());
  }
}

template <typename R>
void Plan1DT<R>::forward(const C* in, C* out) const {
  transform(in, out, true);
}

template <typename R>
void Plan1DT<R>::inverse_unscaled(const C* in, C* out) const {
  transform(in, out, false);
}

template <typename R>
void Plan1DT<R>::inverse(const C* in, C* out) const {
  transform(in, out, false);
  const R inv = R(1) / static_cast<R>(n_);
  for (size_t i = 0; i < n_; ++i) out[i] *= inv;
}

template <typename R>
void Plan1DT<R>::transform(const C* in, C* out, bool fwd) const {
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }
  if (in == out) {
    std::vector<C> tmp(in, in + n_);
    transform(tmp.data(), out, fwd);
    return;
  }
  if (use_bluestein_)
    bluestein(in, out, fwd);
  else
    recurse(n_, in, 1, out, 1, fwd);
}

// DFT_n of the input viewed with the given stride; tw_step maps local
// twiddle index k to the top-level root table: w_n^k == tw_[k * tw_step]
// (conjugated for the inverse transform).
template <typename R>
void Plan1DT<R>::recurse(size_t n, const C* in, size_t stride, C* out,
                         size_t tw_step, bool fwd) const {
  // Twiddles advance by a fixed stride per term: one modulo reduction per
  // row, then an add-with-conditional-subtract walks the root table — no
  // integer division in the inner loops (it used to dominate the FFT).
  auto root_at = [&](size_t idx) -> C {
    const C w = tw_[idx];
    return fwd ? w : std::conj(w);
  };

  if (n <= 7 || smallest_prime_factor(n) == n) {
    // Direct small DFT.
    for (size_t k = 0; k < n; ++k) {
      C acc = 0.0;
      const size_t step = (k * tw_step) % n_;
      size_t idx = 0;
      for (size_t j = 0; j < n; ++j) {
        acc += root_at(idx) * in[j * stride];
        idx += step;
        if (idx >= n_) idx -= n_;
      }
      out[k] = acc;
    }
    return;
  }

  const size_t r = smallest_prime_factor(n);
  const size_t m = n / r;
  // Sub-transforms of the r decimated sequences, each written contiguously.
  for (size_t j = 0; j < r; ++j)
    recurse(m, in + j * stride, stride * r, out + j * m, tw_step * r, fwd);

  // Butterfly combine: X[q*m + k2] = sum_j w_n^{j(q*m+k2)} Y_j[k2].
  C tmp[8];
  for (size_t k2 = 0; k2 < m; ++k2) {
    for (size_t q = 0; q < r; ++q) {
      C acc = 0.0;
      const size_t step = ((q * m + k2) * tw_step) % n_;
      size_t idx = 0;
      for (size_t j = 0; j < r; ++j) {
        acc += root_at(idx) * out[j * m + k2];
        idx += step;
        if (idx >= n_) idx -= n_;
      }
      tmp[q] = acc;
    }
    for (size_t q = 0; q < r; ++q) out[q * m + k2] = tmp[q];
  }
}

template <typename R>
void Plan1DT<R>::forward_many(const C* in, C* out, size_t vlen) const {
  transform_many(in, out, vlen, true);
}

template <typename R>
void Plan1DT<R>::inverse_unscaled_many(const C* in, C* out, size_t vlen) const {
  transform_many(in, out, vlen, false);
}

template <typename R>
void Plan1DT<R>::inverse_many(const C* in, C* out, size_t vlen) const {
  transform_many(in, out, vlen, false);
  const R inv = R(1) / static_cast<R>(n_);
  for (size_t i = 0; i < n_ * vlen; ++i) out[i] *= inv;
}

// Interleaved-tile entry points: thin de/re-interleaving wrappers over the
// split-plane engine (kept for callers that hold complex tiles; the 3-D
// batch engine gathers into planes directly and skips this copy).
template <typename R>
void Plan1DT<R>::transform_many(const C* in, C* out, size_t vlen,
                                bool fwd) const {
  PTIM_CHECK_MSG(vlen >= 1 && vlen <= kMaxTile,
                 "Plan1D: vlen outside [1, kMaxTile]");
  PTIM_CHECK_MSG(in != out,
                 "Plan1D: *_many transforms do not support in == out aliasing");
  if (n_ == 1) {
    std::copy(in, in + vlen, out);
    return;
  }
  std::vector<R> ir(n_ * vlen), ii(n_ * vlen), wr(n_ * vlen), wi(n_ * vlen);
  for (size_t i = 0; i < n_ * vlen; ++i) {
    ir[i] = in[i].real();
    ii[i] = in[i].imag();
  }
  transform_many_split(ir.data(), ii.data(), wr.data(), wi.data(), vlen, fwd);
  for (size_t i = 0; i < n_ * vlen; ++i) out[i] = C(wr[i], wi[i]);
}

template <typename R>
void Plan1DT<R>::forward_many_split(const R* in_re, const R* in_im, R* out_re,
                                    R* out_im, size_t vlen) const {
  transform_many_split(in_re, in_im, out_re, out_im, vlen, true);
}

template <typename R>
void Plan1DT<R>::inverse_unscaled_many_split(const R* in_re, const R* in_im,
                                             R* out_re, R* out_im,
                                             size_t vlen) const {
  transform_many_split(in_re, in_im, out_re, out_im, vlen, false);
}

template <typename R>
void Plan1DT<R>::inverse_many_split(const R* in_re, const R* in_im, R* out_re,
                                    R* out_im, size_t vlen) const {
  transform_many_split(in_re, in_im, out_re, out_im, vlen, false);
  const R inv = R(1) / static_cast<R>(n_);
  for (size_t i = 0; i < n_ * vlen; ++i) {
    out_re[i] *= inv;
    out_im[i] *= inv;
  }
}

template <typename R>
void Plan1DT<R>::transform_many_split(const R* in_re, const R* in_im,
                                      R* out_re, R* out_im, size_t vlen,
                                      bool fwd) const {
  PTIM_CHECK_MSG(vlen >= 1 && vlen <= kMaxTile,
                 "Plan1D: vlen outside [1, kMaxTile]");
  PTIM_CHECK_MSG(in_re != out_re && in_re != out_im && in_im != out_re &&
                     in_im != out_im,
                 "Plan1D: *_many transforms do not support aliased planes");
  if (n_ == 1) {
    std::copy(in_re, in_re + vlen, out_re);
    std::copy(in_im, in_im + vlen, out_im);
    return;
  }
  if (use_bluestein_) {
    // Bluestein sizes never occur on FFT-friendly grids; keep the fallback
    // simple: re-interleave each line and run the scalar chirp transform.
    std::vector<C> line(n_), res(n_);
    for (size_t l = 0; l < vlen; ++l) {
      for (size_t k = 0; k < n_; ++k)
        line[k] = C(in_re[k * vlen + l], in_im[k * vlen + l]);
      bluestein(line.data(), res.data(), fwd);
      for (size_t k = 0; k < n_; ++k) {
        out_re[k * vlen + l] = res[k].real();
        out_im[k * vlen + l] = res[k].imag();
      }
    }
    return;
  }
  // Fetch the active ISA's kernel table once per transform; the recursion
  // below touches data only through it.
  const simd::PassKernels<R>& ker = simd::pass_kernels<R>(simd::active_isa());
  recurse_many_split(n_, in_re, in_im, 1, out_re, out_im, 1, fwd, vlen, ker);
}

// Vector analogue of recurse() on split planes: identical index algebra,
// but every twiddle is materialized once and swept across the `vlen`
// contiguous line slots of both planes. The two inner passes — the direct
// small-DFT leaf and the radix-r butterfly combine — live in the
// dispatched SIMD kernels (fft/simd*.cpp): the scalar table holds the
// verbatim pre-dispatch loops, the AVX2/AVX-512/NEON tables run the same
// per-lane operation order with explicit (never fused) vector intrinsics,
// so every ISA produces bitwise-identical planes. Twiddles advance by a
// fixed stride with one modulo per row (the inner loops are
// division-free).
template <typename R>
void Plan1DT<R>::recurse_many_split(size_t n, const R* in_re, const R* in_im,
                                    size_t stride, R* out_re, R* out_im,
                                    size_t tw_step, bool fwd, size_t vlen,
                                    const simd::PassKernels<R>& ker) const {
  if (n <= 7 || smallest_prime_factor(n) == n) {
    ker.dft_rows(n, in_re, in_im, stride, out_re, out_im, tw_.data(), n_,
                 tw_step, fwd, vlen);
    return;
  }

  const size_t r = smallest_prime_factor(n);
  const size_t m = n / r;
  for (size_t j = 0; j < r; ++j)
    recurse_many_split(m, in_re + j * stride * vlen, in_im + j * stride * vlen,
                       stride * r, out_re + j * m * vlen,
                       out_im + j * m * vlen, tw_step * r, fwd, vlen, ker);

  ker.butterfly(r, m, out_re, out_im, tw_.data(), n_, tw_step, fwd, vlen);
}

template <typename R>
void Plan1DT<R>::bluestein(const C* in, C* out, bool fwd) const {
  const size_t n = n_;
  std::vector<C> a(m_, C(0.0)), afft(m_);
  for (size_t k = 0; k < n; ++k) {
    const C c = fwd ? chirp_[k] : std::conj(chirp_[k]);
    a[k] = in[k] * c;
  }
  conv_plan_->forward(a.data(), afft.data());
  if (fwd) {
    for (size_t k = 0; k < m_; ++k) afft[k] *= bfft_[k];
  } else {
    // Inverse chirp filter is the conjugate; its FFT is index-reversed conj.
    for (size_t k = 0; k < m_; ++k) {
      const size_t rk = (m_ - k) % m_;
      afft[k] *= std::conj(bfft_[rk]);
    }
  }
  conv_plan_->inverse(afft.data(), a.data());
  for (size_t k = 0; k < n; ++k) {
    const C c = fwd ? chirp_[k] : std::conj(chirp_[k]);
    out[k] = a[k] * c;
  }
}

// --- Γ-point real-pair transforms ----------------------------------------
// Two real signals a, b share one complex transform: Z = F(a + i b) splits
// as A[k] = (Z[k] + conj(Z[-k]))/2, B[k] = (Z[k] - conj(Z[-k]))/(2i)
// because the spectra of real signals are conjugate-symmetric.

template <typename R>
void Plan1DT<R>::forward_real_pair(const R* a, const R* b, C* fa,
                                   C* fb) const {
  std::vector<C> z(n_), zf(n_);
  for (size_t i = 0; i < n_; ++i) z[i] = C(a[i], b != nullptr ? b[i] : R(0));
  forward(z.data(), zf.data());
  for (size_t k = 0; k < n_; ++k) {
    const size_t nk = (n_ - k) % n_;
    const C zk = zf[k];
    const C znc = std::conj(zf[nk]);
    fa[k] = (zk + znc) * R(0.5);
    if (fb != nullptr) fb[k] = (zk - znc) * C(R(0), R(-0.5));
  }
}

template <typename R>
void Plan1DT<R>::inverse_real_pair(const C* fa, const C* fb, R* a,
                                   R* b) const {
  std::vector<C> z(n_), zi(n_);
  for (size_t k = 0; k < n_; ++k) {
    const C bk = fb != nullptr ? fb[k] : C(0);
    z[k] = C(fa[k].real() - bk.imag(), fa[k].imag() + bk.real());
  }
  inverse(z.data(), zi.data());
  for (size_t i = 0; i < n_; ++i) {
    a[i] = zi[i].real();
    if (b != nullptr) b[i] = zi[i].imag();
  }
}

template <typename R>
Fft3T<R>::Fft3T(size_t n0, size_t n1, size_t n2)
    : n0_(n0), n1_(n1), n2_(n2), p0_(n0), p1_(n1), p2_(n2) {}

template <typename R>
void Fft3T<R>::forward_batch(C* data, size_t nbatch) const {
  if (nbatch == 0) return;
  transform_batch(data, nbatch, Dir::kForward);
}

template <typename R>
void Fft3T<R>::inverse_batch(C* data, size_t nbatch) const {
  if (nbatch == 0) return;
  transform_batch(data, nbatch, Dir::kInverse);
  const R s = R(1) / static_cast<R>(size());
  const size_t total = nbatch * size();
#pragma omp parallel for schedule(static)
  for (size_t i = 0; i < total; ++i) data[i] *= s;
}

// The whole batch runs through the shared axis pass (fft/axis_pass.hpp):
// lines are gathered in tiles of kMaxTile into element-major SPLIT-PLANE
// scratch (the de-interleave rides along with the gather for free), pushed
// through the split vector 1-D transforms (twiddles amortized over the
// tile, R-wide vectorization over the lanes), and scattered back.
// Consecutive line indices are chosen so that tile gathers walk memory
// contiguously on the strided axes. The distributed slab engine
// (DistFft3T) calls the SAME axis_pass on its local line sets, which is
// what makes it bit-identical to this engine by construction.
//
// Axis order: forward sweeps 0 -> 1 -> 2, the inverse sweeps 2 -> 1 -> 0.
// The reversed inverse is what makes a z-slab-distributed transform
// bit-identical with one transpose per direction: both directions touch
// the z axis only while the data is pencil-distributed (full z).
template <typename R>
void Fft3T<R>::transform_batch(C* data, size_t nbatch, Dir dir) const {
  const bool fwd = dir == Dir::kForward;
  const size_t ng = size();
  const size_t plane = n0_ * n1_;

  // Axis 0: contiguous lines, the whole batch is one flat line array.
  auto axis0 = [&] {
    detail::axis_pass(
        p0_, n0_, nbatch * n1_ * n2_, [&](size_t q) { return q * n0_; },
        size_t{1}, data, fwd);
  };
  // Axis 1: stride n0 within each (batch, i2) plane; consecutive q's are
  // consecutive i0, so tile gathers read contiguous memory.
  auto axis1 = [&] {
    detail::axis_pass(
        p1_, n1_, nbatch * n2_ * n0_,
        [&](size_t q) {
          const size_t b = q / (n2_ * n0_);
          const size_t rem = q % (n2_ * n0_);
          const size_t i2 = rem / n0_;
          const size_t i0 = rem % n0_;
          return b * ng + i2 * plane + i0;
        },
        n0_, data, fwd);
  };
  // Axis 2: stride n0*n1; consecutive q's walk the contiguous plane.
  auto axis2 = [&] {
    detail::axis_pass(
        p2_, n2_, nbatch * plane,
        [&](size_t q) { return (q / plane) * ng + (q % plane); }, plane, data,
        fwd);
  };

  if (fwd) {
    axis0();
    axis1();
    axis2();
  } else {
    axis2();
    axis1();
    axis0();
  }
}

// --- Γ-point real-batch transforms ---------------------------------------
// Packing: lane t carries fields 2t (real part) and 2t+1 (imaginary part);
// an odd trailing field rides a zero imaginary lane. The unscramble uses
// the 3-D negated-index conjugate symmetry of real-input spectra, with
// -k = ((n0-k0)%n0, (n1-k1)%n1, (n2-k2)%n2) in the engine's column-major
// index convention.

template <typename R>
void Fft3T<R>::forward_batch_real(const R* data, C* spec, size_t nreal) const {
  if (nreal == 0) return;
  const size_t ng = size();
  const size_t nlanes = (nreal + 1) / 2;
  std::vector<C> z(nlanes * ng);
#pragma omp parallel for schedule(static)
  for (size_t t = 0; t < nlanes; ++t) {
    const R* a = data + 2 * t * ng;
    const R* b = 2 * t + 1 < nreal ? data + (2 * t + 1) * ng : nullptr;
    C* zt = z.data() + t * ng;
    for (size_t i = 0; i < ng; ++i)
      zt[i] = C(a[i], b != nullptr ? b[i] : R(0));
  }
  forward_batch(z.data(), nlanes);
#pragma omp parallel for schedule(static)
  for (size_t t = 0; t < nlanes; ++t) {
    const C* zt = z.data() + t * ng;
    C* fa = spec + 2 * t * ng;
    C* fb = 2 * t + 1 < nreal ? spec + (2 * t + 1) * ng : nullptr;
    size_t i = 0;
    for (size_t i2 = 0; i2 < n2_; ++i2) {
      const size_t m2 = ((n2_ - i2) % n2_) * n1_;
      for (size_t i1 = 0; i1 < n1_; ++i1) {
        const size_t m1 = (m2 + (n1_ - i1) % n1_) * n0_;
        for (size_t i0 = 0; i0 < n0_; ++i0, ++i) {
          const size_t ni = m1 + (n0_ - i0) % n0_;
          const C zk = zt[i];
          const C znc = std::conj(zt[ni]);
          fa[i] = (zk + znc) * R(0.5);
          if (fb != nullptr) fb[i] = (zk - znc) * C(R(0), R(-0.5));
        }
      }
    }
  }
}

template <typename R>
void Fft3T<R>::inverse_batch_real(const C* spec, R* data, size_t nreal) const {
  if (nreal == 0) return;
  const size_t ng = size();
  const size_t nlanes = (nreal + 1) / 2;
  std::vector<C> z(nlanes * ng);
#pragma omp parallel for schedule(static)
  for (size_t t = 0; t < nlanes; ++t) {
    const C* fa = spec + 2 * t * ng;
    const C* fb = 2 * t + 1 < nreal ? spec + (2 * t + 1) * ng : nullptr;
    C* zt = z.data() + t * ng;
    for (size_t i = 0; i < ng; ++i) {
      const C bk = fb != nullptr ? fb[i] : C(0);
      zt[i] = C(fa[i].real() - bk.imag(), fa[i].imag() + bk.real());
    }
  }
  inverse_batch(z.data(), nlanes);
#pragma omp parallel for schedule(static)
  for (size_t t = 0; t < nlanes; ++t) {
    const C* zt = z.data() + t * ng;
    R* a = data + 2 * t * ng;
    R* b = 2 * t + 1 < nreal ? data + (2 * t + 1) * ng : nullptr;
    for (size_t i = 0; i < ng; ++i) {
      a[i] = zt[i].real();
      if (b != nullptr) b[i] = zt[i].imag();
    }
  }
}

// Single-array transforms are width-1 batches: one engine, so a single call
// is bit-identical to the corresponding batch member by construction (the
// per-line split-plane arithmetic is independent of the tile width).
template <typename R>
void Fft3T<R>::forward(C* data) const {
  transform_batch(data, 1, Dir::kForward);
}

template <typename R>
void Fft3T<R>::inverse(C* data) const {
  transform_batch(data, 1, Dir::kInverse);
  const R s = R(1) / static_cast<R>(size());
  const size_t ng = size();
  for (size_t i = 0; i < ng; ++i) data[i] *= s;
}

template class Plan1DT<float>;
template class Plan1DT<double>;
template class Fft3T<float>;
template class Fft3T<double>;

}  // namespace ptim::fft
