#pragma once
// Complex FFTs written from scratch (no FFTW/cuFFT on this machine).
//
// Plan1DT<R>: recursive mixed-radix Cooley–Tukey for sizes whose prime
// factors are in {2,3,5,7}, with a Bluestein chirp-z fallback for anything
// else. Fft3T<R>: in-place 3-D transform over a column-major (i0 fastest)
// box, parallelized over independent lines with OpenMP — the drop-in
// stand-in for the batched cuFFT/FFTW calls in PWDFT's Fock-exchange inner
// loop.
//
// Both engines are templated over the scalar type R and instantiated for
// float and double: the FP32 instantiation carries the exact-exchange hot
// path (pair-density transforms and ring payloads) while the propagated
// trajectory stays in FP64. Twiddle/chirp tables are always computed in
// double and rounded once, so the float transforms lose no accuracy to
// table generation. This is also the seam a GPU/SVE backend would plug
// into — the kernels are already scalar-generic.
//
// Conventions: forward = sum_j x_j e^{-2 pi i jk/n} (no scaling);
//              inverse = sum_j x_j e^{+2 pi i jk/n} scaled by 1/n,
// so inverse(forward(x)) == x.
//
// Batched path: Plan1DT::*_many transform a tile of independent lines stored
// element-major (element k of line l at in[k*vlen + l]), so every twiddle
// factor is fetched once per butterfly and applied across the whole tile in
// a contiguous, vectorizable inner loop. Fft3T::forward_batch/inverse_batch
// run a contiguous batch of 3-D arrays through that machinery with one
// OpenMP region and per-thread tile scratch — the stand-in for the batched
// cuFFT/rocFFT calls that dominate the paper's exact-exchange apply.

#include <array>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "fft/simd.hpp"

namespace ptim::fft {

template <typename R>
class Plan1DT {
 public:
  using C = std::complex<R>;

  explicit Plan1DT(size_t n);

  size_t size() const { return n_; }

  // Out-of-place transforms; in == out is allowed (internal copy).
  void forward(const C* in, C* out) const;
  // Unscaled inverse (conjugate-exponent transform).
  void inverse_unscaled(const C* in, C* out) const;
  // Scaled inverse: inverse_unscaled / n.
  void inverse(const C* in, C* out) const;

  // Vector transforms over `vlen` independent lines, element-major:
  // line l's element k lives at in[k*vlen + l] (and likewise in out).
  // in == out is NOT allowed (checked), and vlen must be <= kMaxTile
  // (checked) — both used to corrupt data silently.
  static constexpr size_t kMaxTile = 16;
  void forward_many(const C* in, C* out, size_t vlen) const;
  void inverse_unscaled_many(const C* in, C* out, size_t vlen) const;
  void inverse_many(const C* in, C* out, size_t vlen) const;

  // Split-plane (SoA) vector transforms: the same element-major tiles, but
  // real and imaginary parts live in separate R planes ([k*vlen + l] each).
  // This is the layout the batched 3-D engine gathers into: separate
  // re/im streams auto-vectorize at baseline ISAs, where interleaved
  // complex<float> lanes would need cross-lane shuffles (measured ~2x for
  // FP32 over the interleaved tile). Aliasing between any input and output
  // plane is NOT allowed (checked via the re planes).
  void forward_many_split(const R* in_re, const R* in_im, R* out_re,
                          R* out_im, size_t vlen) const;
  void inverse_unscaled_many_split(const R* in_re, const R* in_im, R* out_re,
                                   R* out_im, size_t vlen) const;
  void inverse_many_split(const R* in_re, const R* in_im, R* out_re,
                          R* out_im, size_t vlen) const;

  // Γ-point helpers: TWO real length-n signals per complex transform.
  // forward_real_pair packs z = a + i b, transforms once, and unscrambles
  // the packed spectrum into the two full-size conjugate-symmetric spectra
  // fa, fb (fb may be null when b is null — one unpaired signal, zero
  // imaginary lane). inverse_real_pair is the exact mirror (scaled 1/n):
  // it combines z = fa + i fb, inverts once, and splits Re/Im.
  void forward_real_pair(const R* a, const R* b, C* fa, C* fb) const;
  void inverse_real_pair(const C* fa, const C* fb, R* a, R* b) const;

 private:
  void transform(const C* in, C* out, bool fwd) const;
  void recurse(size_t n, const C* in, size_t stride, C* out, size_t tw_step,
               bool fwd) const;
  void bluestein(const C* in, C* out, bool fwd) const;
  void transform_many(const C* in, C* out, size_t vlen, bool fwd) const;
  void transform_many_split(const R* in_re, const R* in_im, R* out_re,
                            R* out_im, size_t vlen, bool fwd) const;
  // The two inner-pass loops run through the SIMD kernel table `ker`,
  // selected ONCE per transform_many_split call (fft/simd.hpp) — the
  // runtime-dispatch seam shared by the serial and distributed engines.
  void recurse_many_split(size_t n, const R* in_re, const R* in_im,
                          size_t stride, R* out_re, R* out_im, size_t tw_step,
                          bool fwd, size_t vlen,
                          const simd::PassKernels<R>& ker) const;

  size_t n_ = 0;
  bool use_bluestein_ = false;
  std::vector<C> tw_;  // forward roots: exp(-2 pi i k/n), k < n

  // Bluestein precomputation.
  size_t m_ = 0;                           // power-of-two convolution size
  std::vector<C> chirp_;                   // e^{-i pi k^2 / n}
  std::vector<C> bfft_;                    // FFT of the chirp filter
  std::unique_ptr<Plan1DT<R>> conv_plan_;  // power-of-two inner plan
};

using Plan1D = Plan1DT<real_t>;
using Plan1Df = Plan1DT<realf_t>;

// Smallest m >= n with prime factors only in {2,3,5,7} ("FFT-friendly").
size_t next_fft_size(size_t n);

// Returns true when n factors into {2,3,5,7} primes only.
bool fft_size_ok(size_t n);

template <typename R>
class Fft3T {
 public:
  using C = std::complex<R>;

  Fft3T(size_t n0, size_t n1, size_t n2);

  size_t n0() const { return n0_; }
  size_t n1() const { return n1_; }
  size_t n2() const { return n2_; }
  size_t size() const { return n0_ * n1_ * n2_; }

  // In-place transforms on a size()-element array, index i0 + n0*(i1 + n1*i2).
  // The forward transform sweeps axes 0 -> 1 -> 2; the inverse sweeps
  // 2 -> 1 -> 0. The reversed inverse order is load-bearing: it lets the
  // z-slab-distributed transform (fft::DistFft3) reproduce this engine
  // bit-for-bit with a single pencil transpose per direction.
  void forward(C* data) const;
  void inverse(C* data) const;  // scaled by 1/size()

  // In-place transforms on `nbatch` consecutive size()-element arrays.
  // Lines from the whole batch are tiled through the vector 1-D transforms
  // inside a single OpenMP region with per-thread scratch. Single-array
  // forward()/inverse() are width-1 batches of the SAME engine, so batched
  // and single calls are bit-identical per array by construction.
  void forward_batch(C* data, size_t nbatch) const;
  void inverse_batch(C* data, size_t nbatch) const;  // each scaled 1/size()

  // Γ-point real-batch transforms: `nreal` REAL size()-element fields ride
  // ceil(nreal/2) complex transforms (two reals packed per lane as
  // z = a + i b; an odd trailing field gets a zero imaginary lane).
  // forward_batch_real writes the nreal FULL-SIZE conjugate-symmetric
  // spectra to `spec` (post-transform unscramble via the 3-D negated-index
  // symmetry), so spectral filters index exactly as in the complex path;
  // the conjugate symmetry spec[-k] == conj(spec[k]) is bitwise-exact by
  // construction. inverse_batch_real is the mirror: it assumes
  // conjugate-symmetric input spectra, recombines two per lane, and
  // returns the real fields (each scaled by 1/size()). Halves the
  // transform count of the complex batch engine for real wavefunctions.
  void forward_batch_real(const R* data, C* spec, size_t nreal) const;
  void inverse_batch_real(const C* spec, R* data, size_t nreal) const;

 private:
  enum class Dir { kForward, kInverse };
  void transform_batch(C* data, size_t nbatch, Dir dir) const;

  size_t n0_, n1_, n2_;
  Plan1DT<R> p0_, p1_, p2_;
};

using Fft3 = Fft3T<real_t>;
using Fft3f = Fft3T<realf_t>;

extern template class Plan1DT<float>;
extern template class Plan1DT<double>;
extern template class Fft3T<float>;
extern template class Fft3T<double>;

}  // namespace ptim::fft
