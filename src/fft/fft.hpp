#pragma once
// Complex FFTs written from scratch (no FFTW/cuFFT on this machine).
//
// Plan1D: recursive mixed-radix Cooley–Tukey for sizes whose prime factors
// are in {2,3,5,7}, with a Bluestein chirp-z fallback for anything else.
// Fft3: in-place 3-D transform over a column-major (i0 fastest) box,
// parallelized over independent lines with OpenMP — the drop-in stand-in
// for the batched cuFFT/FFTW calls in PWDFT's Fock-exchange inner loop.
//
// Conventions: forward = sum_j x_j e^{-2 pi i jk/n} (no scaling);
//              inverse = sum_j x_j e^{+2 pi i jk/n} scaled by 1/n,
// so inverse(forward(x)) == x.
//
// Batched path: Plan1D::*_many transform a tile of independent lines stored
// element-major (element k of line l at in[k*vlen + l]), so every twiddle
// factor is fetched once per butterfly and applied across the whole tile in
// a contiguous, vectorizable inner loop. Fft3::forward_batch/inverse_batch
// run a contiguous batch of 3-D arrays through that machinery with one
// OpenMP region and per-thread tile scratch — the stand-in for the batched
// cuFFT/rocFFT calls that dominate the paper's exact-exchange apply.

#include <array>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace ptim::fft {

class Plan1D {
 public:
  explicit Plan1D(size_t n);

  size_t size() const { return n_; }

  // Out-of-place transforms; in == out is allowed (internal copy).
  void forward(const cplx* in, cplx* out) const;
  // Unscaled inverse (conjugate-exponent transform).
  void inverse_unscaled(const cplx* in, cplx* out) const;
  // Scaled inverse: inverse_unscaled / n.
  void inverse(const cplx* in, cplx* out) const;

  // Vector transforms over `vlen` independent lines, element-major:
  // line l's element k lives at in[k*vlen + l] (and likewise in out).
  // in == out is NOT allowed. vlen must be <= kMaxTile.
  static constexpr size_t kMaxTile = 16;
  void forward_many(const cplx* in, cplx* out, size_t vlen) const;
  void inverse_unscaled_many(const cplx* in, cplx* out, size_t vlen) const;
  void inverse_many(const cplx* in, cplx* out, size_t vlen) const;

 private:
  void transform(const cplx* in, cplx* out, bool fwd) const;
  void recurse(size_t n, const cplx* in, size_t stride, cplx* out,
               size_t tw_step, bool fwd) const;
  void bluestein(const cplx* in, cplx* out, bool fwd) const;
  void transform_many(const cplx* in, cplx* out, size_t vlen, bool fwd) const;
  void recurse_many(size_t n, const cplx* in, size_t stride, cplx* out,
                    size_t tw_step, bool fwd, size_t vlen) const;

  size_t n_ = 0;
  bool use_bluestein_ = false;
  std::vector<cplx> tw_;  // forward roots: exp(-2 pi i k/n), k < n

  // Bluestein precomputation.
  size_t m_ = 0;                       // power-of-two convolution size
  std::vector<cplx> chirp_;            // e^{-i pi k^2 / n}
  std::vector<cplx> bfft_;             // FFT of the chirp filter
  std::unique_ptr<Plan1D> conv_plan_;  // power-of-two inner plan
};

// Smallest m >= n with prime factors only in {2,3,5,7} ("FFT-friendly").
size_t next_fft_size(size_t n);

// Returns true when n factors into {2,3,5,7} primes only.
bool fft_size_ok(size_t n);

class Fft3 {
 public:
  Fft3(size_t n0, size_t n1, size_t n2);

  size_t n0() const { return n0_; }
  size_t n1() const { return n1_; }
  size_t n2() const { return n2_; }
  size_t size() const { return n0_ * n1_ * n2_; }

  // In-place transforms on a size()-element array, index i0 + n0*(i1 + n1*i2).
  void forward(cplx* data) const;
  void inverse(cplx* data) const;  // scaled by 1/size()

  // In-place transforms on `nbatch` consecutive size()-element arrays.
  // Lines from the whole batch are tiled through the vector 1-D transforms
  // inside a single OpenMP region with per-thread scratch; each array gets
  // exactly the same result as the corresponding single-array call.
  void forward_batch(cplx* data, size_t nbatch) const;
  void inverse_batch(cplx* data, size_t nbatch) const;  // each scaled 1/size()

 private:
  enum class Dir { kForward, kInverse };
  void transform(cplx* data, Dir dir) const;
  void transform_batch(cplx* data, size_t nbatch, Dir dir) const;

  size_t n0_, n1_, n2_;
  Plan1D p0_, p1_, p2_;
};

}  // namespace ptim::fft
