// Scalar reference kernels of the dispatched FFT pass (fft/simd.hpp).
//
// These are the VERBATIM pre-dispatch inner loops of
// Plan1DT<R>::recurse_many_split — moved here unchanged so the scalar path
// stays bitwise-identical to the engine's pre-SIMD results (the compiler
// sees the same statements under the same flags; -ffp-contract=off pins
// the no-FMA contract on FMA-capable baselines such as AArch64). Every
// vector ISA is in turn pinned bitwise-identical to THESE kernels by
// tests/test_fft_conformance.cpp.

#include <algorithm>

#include "fft/simd.hpp"

namespace ptim::fft::simd::detail {
namespace {

template <typename R>
void dft_rows_scalar(size_t n, const R* in_re, const R* in_im, size_t stride,
                     R* out_re, R* out_im, const std::complex<R>* tw,
                     size_t n_total, size_t tw_step, bool fwd, size_t vlen) {
  for (size_t k = 0; k < n; ++k) {
    R* okr = out_re + k * vlen;
    R* oki = out_im + k * vlen;
    std::fill(okr, okr + vlen, R(0));
    std::fill(oki, oki + vlen, R(0));
    const size_t step = (k * tw_step) % n_total;
    size_t idx = 0;
    for (size_t j = 0; j < n; ++j) {
      const R wr = tw[idx].real();
      const R wi = fwd ? tw[idx].imag() : -tw[idx].imag();
      idx += step;
      if (idx >= n_total) idx -= n_total;
      const R* ijr = in_re + j * stride * vlen;
      const R* iji = in_im + j * stride * vlen;
      for (size_t l = 0; l < vlen; ++l) {
        okr[l] += wr * ijr[l] - wi * iji[l];
        oki[l] += wr * iji[l] + wi * ijr[l];
      }
    }
  }
}

template <typename R>
void butterfly_scalar(size_t r, size_t m, R* out_re, R* out_im,
                      const std::complex<R>* tw, size_t n_total,
                      size_t tw_step, bool fwd, size_t vlen) {
  R tmp_re[8 * kMaxTile], tmp_im[8 * kMaxTile];
  for (size_t k2 = 0; k2 < m; ++k2) {
    for (size_t q = 0; q < r; ++q) {
      R* tqr = tmp_re + q * vlen;
      R* tqi = tmp_im + q * vlen;
      std::fill(tqr, tqr + vlen, R(0));
      std::fill(tqi, tqi + vlen, R(0));
      const size_t step = ((q * m + k2) * tw_step) % n_total;
      size_t idx = 0;
      for (size_t j = 0; j < r; ++j) {
        const R wr = tw[idx].real();
        const R wi = fwd ? tw[idx].imag() : -tw[idx].imag();
        idx += step;
        if (idx >= n_total) idx -= n_total;
        const R* yjr = out_re + (j * m + k2) * vlen;
        const R* yji = out_im + (j * m + k2) * vlen;
        for (size_t l = 0; l < vlen; ++l) {
          tqr[l] += wr * yjr[l] - wi * yji[l];
          tqi[l] += wr * yji[l] + wi * yjr[l];
        }
      }
    }
    for (size_t q = 0; q < r; ++q) {
      std::copy(tmp_re + q * vlen, tmp_re + (q + 1) * vlen,
                out_re + (q * m + k2) * vlen);
      std::copy(tmp_im + q * vlen, tmp_im + (q + 1) * vlen,
                out_im + (q * m + k2) * vlen);
    }
  }
}

const PassKernels<double> kScalarF64{&dft_rows_scalar<double>,
                                     &butterfly_scalar<double>};
const PassKernels<float> kScalarF32{&dft_rows_scalar<float>,
                                    &butterfly_scalar<float>};

}  // namespace

const PassKernels<double>* scalar_kernels_f64() { return &kScalarF64; }
const PassKernels<float>* scalar_kernels_f32() { return &kScalarF32; }

}  // namespace ptim::fft::simd::detail
