// AVX-512F kernels of the dispatched FFT pass (fft/simd.hpp). Compiled
// with -mavx512f (and -ffp-contract=off) when the compiler supports it; an
// empty fallback TU otherwise. Explicit mul/add/sub intrinsics only — no
// FMA, even though AVX-512F carries fused instructions — so the results
// are bitwise-identical to the scalar kernels.

#include "fft/simd.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

#include "fft/simd_kernels_impl.hpp"

namespace ptim::fft::simd::detail {
namespace {

struct VecAvx512d {
  using T = __m512d;
  static constexpr size_t width = 8;
  static T load(const double* p) { return _mm512_loadu_pd(p); }
  static void store(double* p, T v) { _mm512_storeu_pd(p, v); }
  static T set1(double x) { return _mm512_set1_pd(x); }
  static T add(T a, T b) { return _mm512_add_pd(a, b); }
  static T sub(T a, T b) { return _mm512_sub_pd(a, b); }
  static T mul(T a, T b) { return _mm512_mul_pd(a, b); }
};

struct VecAvx512f {
  using T = __m512;
  static constexpr size_t width = 16;
  static T load(const float* p) { return _mm512_loadu_ps(p); }
  static void store(float* p, T v) { _mm512_storeu_ps(p, v); }
  static T set1(float x) { return _mm512_set1_ps(x); }
  static T add(T a, T b) { return _mm512_add_ps(a, b); }
  static T sub(T a, T b) { return _mm512_sub_ps(a, b); }
  static T mul(T a, T b) { return _mm512_mul_ps(a, b); }
};

const PassKernels<double> kAvx512F64{&dft_rows_impl<double, VecAvx512d>,
                                     &butterfly_impl<double, VecAvx512d>};
const PassKernels<float> kAvx512F32{&dft_rows_impl<float, VecAvx512f>,
                                    &butterfly_impl<float, VecAvx512f>};

}  // namespace

const PassKernels<double>* avx512_kernels_f64() { return &kAvx512F64; }
const PassKernels<float>* avx512_kernels_f32() { return &kAvx512F32; }

}  // namespace ptim::fft::simd::detail

#else  // !defined(__AVX512F__)

namespace ptim::fft::simd::detail {
const PassKernels<double>* avx512_kernels_f64() { return nullptr; }
const PassKernels<float>* avx512_kernels_f32() { return nullptr; }
}  // namespace ptim::fft::simd::detail

#endif
