#pragma once
// Runtime-dispatched SIMD kernels for the split-plane tile FFT engine.
//
// The two hot loops of Plan1DT<R>::recurse_many_split — the direct
// small-DFT leaf and the radix-r butterfly combine — are compiled once per
// instruction set (scalar baseline, AVX2, AVX-512F, NEON) in dedicated
// translation units that receive the matching -m<isa> flag, and selected
// once per transform through the PassKernels function-pointer table below.
// The scalar TU contains the verbatim pre-dispatch loops, and every vector
// TU performs the same per-lane operation sequence with explicit
// mul/add/sub intrinsics (never FMA; all kernel TUs are built with
// -ffp-contract=off), so EVERY ISA is bitwise-identical to the scalar
// path in both FP64 and FP32 — pinned by tests/test_fft_conformance.cpp.
//
// Selection order: force_isa() (test hook) > the PTIM_SIMD environment
// variable (scalar|avx2|avx512|neon|native) > best_available(). An
// unavailable request warns once on stderr and falls back to the best
// available ISA. The seam sits under Plan1DT::transform_many_split, which
// both the serial batched engine (Fft3T via fft/axis_pass.hpp) and the
// distributed slab engine (DistFft3T) drive — one dispatch covers both.

#include <complex>
#include <cstddef>

namespace ptim::fft::simd {

enum class Isa { kScalar = 0, kAvx2 = 1, kAvx512 = 2, kNeon = 3 };

const char* isa_name(Isa isa);

// Widest tile the kernels size their stack scratch for; must match
// Plan1DT<R>::kMaxTile (static_assert'd in fft.cpp).
inline constexpr size_t kMaxTile = 16;

// The dispatched pass kernels of one (scalar type, ISA) pair. Both operate
// on element-major split-plane tiles of `vlen` lanes (element k of lane l
// at [k*vlen + l]) and walk the shared top-level root table `tw` (size
// n_total, forward roots) by `tw_step`-scaled strides exactly like the
// scalar recursion they replace.
template <typename R>
struct PassKernels {
  // Direct small-DFT leaf: out[k] = sum_j w^{k j} in[j] over n rows of
  // vlen lanes, inputs strided by `stride` rows.
  void (*dft_rows)(size_t n, const R* in_re, const R* in_im, size_t stride,
                   R* out_re, R* out_im, const std::complex<R>* tw,
                   size_t n_total, size_t tw_step, bool fwd, size_t vlen);
  // Radix-r butterfly combine over the r contiguous m-row sub-transform
  // outputs, in place: X[q*m + k2] = sum_j w^{j(q*m+k2)} Y_j[k2].
  void (*butterfly)(size_t r, size_t m, R* out_re, R* out_im,
                    const std::complex<R>* tw, size_t n_total, size_t tw_step,
                    bool fwd, size_t vlen);
};

// --- variant queries ------------------------------------------------------
bool compiled(Isa isa);   // this build contains the ISA's kernel TU
bool available(Isa isa);  // compiled AND supported by the running CPU
Isa best_available();

// --- active selection -----------------------------------------------------
Isa active_isa();
// Test hooks: force_isa() overrides every other selection source until
// clear_forced_isa(); forcing an unavailable ISA throws.
void force_isa(Isa isa);
void clear_forced_isa();

// Kernel table of one ISA; falls back to the scalar table when the ISA is
// not available in this build.
template <typename R>
const PassKernels<R>& pass_kernels(Isa isa);

template <>
const PassKernels<double>& pass_kernels<double>(Isa isa);
template <>
const PassKernels<float>& pass_kernels<float>(Isa isa);

namespace detail {
// Per-TU kernel table getters; nullptr when the TU was compiled without
// that ISA (missing compiler flag or foreign architecture).
const PassKernels<double>* scalar_kernels_f64();
const PassKernels<float>* scalar_kernels_f32();
const PassKernels<double>* avx2_kernels_f64();
const PassKernels<float>* avx2_kernels_f32();
const PassKernels<double>* avx512_kernels_f64();
const PassKernels<float>* avx512_kernels_f32();
const PassKernels<double>* neon_kernels_f64();
const PassKernels<float>* neon_kernels_f32();
}  // namespace detail

}  // namespace ptim::fft::simd
