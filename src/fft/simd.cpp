// Dispatch registry for the SIMD FFT pass kernels (fft/simd.hpp): CPU
// feature detection, PTIM_SIMD environment override, and the per-ISA
// kernel table lookup.

#include "fft/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace ptim::fft::simd {

namespace {

bool cpu_supports(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return true;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    case Isa::kAvx2: return __builtin_cpu_supports("avx2") != 0;
    case Isa::kAvx512: return __builtin_cpu_supports("avx512f") != 0;
#else
    case Isa::kAvx2:
    case Isa::kAvx512: return false;
#endif
#if defined(__aarch64__)
    case Isa::kNeon: return true;  // baseline on AArch64
#else
    case Isa::kNeon: return false;
#endif
  }
  return false;
}

// Parse PTIM_SIMD; returns best_available() when unset, on "native", or —
// with a one-time stderr warning — when the request is unknown or not
// available on this build/CPU ("scalar" always succeeds).
Isa from_env_or_best() {
  const char* e = std::getenv("PTIM_SIMD");
  if (e == nullptr || *e == '\0') return best_available();
  Isa req = Isa::kScalar;
  bool known = true;
  if (std::strcmp(e, "scalar") == 0)
    req = Isa::kScalar;
  else if (std::strcmp(e, "avx2") == 0)
    req = Isa::kAvx2;
  else if (std::strcmp(e, "avx512") == 0)
    req = Isa::kAvx512;
  else if (std::strcmp(e, "neon") == 0)
    req = Isa::kNeon;
  else if (std::strcmp(e, "native") == 0)
    return best_available();
  else
    known = false;
  if (known && available(req)) return req;
  const Isa fb = best_available();
  std::fprintf(stderr,
               "ptim: PTIM_SIMD=%s %s; falling back to %s FFT kernels\n", e,
               known ? "is not available on this build/CPU" : "is not a known"
                                                              " ISA",
               isa_name(fb));
  return fb;
}

// -1 = not forced; otherwise the forced Isa. Relaxed is enough: tests
// force/clear around synchronous transform calls.
std::atomic<int> g_forced{-1};

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
    case Isa::kNeon: return "neon";
  }
  return "?";
}

bool compiled(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return true;
    case Isa::kAvx2: return detail::avx2_kernels_f64() != nullptr;
    case Isa::kAvx512: return detail::avx512_kernels_f64() != nullptr;
    case Isa::kNeon: return detail::neon_kernels_f64() != nullptr;
  }
  return false;
}

bool available(Isa isa) { return compiled(isa) && cpu_supports(isa); }

Isa best_available() {
  for (Isa isa : {Isa::kAvx512, Isa::kAvx2, Isa::kNeon})
    if (available(isa)) return isa;
  return Isa::kScalar;
}

Isa active_isa() {
  const int f = g_forced.load(std::memory_order_relaxed);
  if (f >= 0) return static_cast<Isa>(f);
  // The environment is parsed (and any warning printed) exactly once.
  static const Isa from_env = from_env_or_best();
  return from_env;
}

void force_isa(Isa isa) {
  PTIM_CHECK_MSG(available(isa), "simd::force_isa: ISA not available");
  g_forced.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void clear_forced_isa() { g_forced.store(-1, std::memory_order_relaxed); }

namespace {

template <typename R>
const PassKernels<R>* table_for(Isa isa);

template <>
const PassKernels<double>* table_for<double>(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return detail::scalar_kernels_f64();
    case Isa::kAvx2: return detail::avx2_kernels_f64();
    case Isa::kAvx512: return detail::avx512_kernels_f64();
    case Isa::kNeon: return detail::neon_kernels_f64();
  }
  return nullptr;
}

template <>
const PassKernels<float>* table_for<float>(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return detail::scalar_kernels_f32();
    case Isa::kAvx2: return detail::avx2_kernels_f32();
    case Isa::kAvx512: return detail::avx512_kernels_f32();
    case Isa::kNeon: return detail::neon_kernels_f32();
  }
  return nullptr;
}

}  // namespace

template <>
const PassKernels<double>& pass_kernels<double>(Isa isa) {
  const PassKernels<double>* k = table_for<double>(isa);
  return k != nullptr ? *k : *detail::scalar_kernels_f64();
}

template <>
const PassKernels<float>& pass_kernels<float>(Isa isa) {
  const PassKernels<float>* k = table_for<float>(isa);
  return k != nullptr ? *k : *detail::scalar_kernels_f32();
}

}  // namespace ptim::fft::simd
