#pragma once
// obs — the unified tracing & metrics subsystem.
//
// Three cooperating pieces, all keyed by one process-wide name interner:
//
//  * span tracer — thread-local ring buffers of completed spans
//    {name_id, category, t_begin, t_end, rank, lane}. Recording is
//    lock-free on the hot path (the thread owns its buffer; only buffer
//    REGISTRATION takes a lock, once per thread) and cheap enough for
//    per-slab / per-round use: with tracing disabled an ObsSpan is one
//    relaxed atomic load and a branch, with it enabled one steady_clock
//    read at each end plus a ring-slot store. Buffers wrap (oldest spans
//    overwritten, counted as dropped) so a runaway trace can never grow
//    memory unboundedly.
//
//  * thread tags — every span carries the recording thread's (rank, lane).
//    ptmpi::run_ranks tags each rank thread; backend stream workers
//    inherit the creating thread's rank and use the stream name as their
//    lane ("xchg.compute" / "xchg.comm"), which is what makes ring
//    compute/comm overlap visible as two lanes of one rank in the
//    exported timeline.
//
//  * profile accumulation — the interned-id (count, seconds) accumulators
//    behind ptim::ProfileRegistry / ScopedTimer (common/timer.hpp keeps
//    the old string API as a thin wrapper). Accumulation is always on;
//    span recording only when tracing is enabled.
//
// Readers (snapshot / drain / profile_snapshot) require a QUIESCED tracer:
// call them only when no instrumented code is running (after
// Executor::synchronize, after ptmpi barriers, after run_ranks returns).
// The per-buffer atomic head makes the quiesced read well-defined without
// a lock on the record path.
//
// Exporters live in obs/trace_export.hpp (Chrome trace JSON, rank merge
// over ptmpi) and obs/step_report.hpp (per-step JSONL metrics).

#include <atomic>
#include <climits>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ptim::obs {

// Span category, exported as the Chrome trace "cat" field. The comm /
// compute split is what scripts/trace_validate.py computes the overlap
// fraction from.
enum class Cat : uint8_t {
  kCompute = 0,  // pair-form / accumulate / apply work
  kComm,         // ptmpi transfers: ring rounds, transposes, waits
  kFft,          // batched FFT passes (kernel filter, slab FFT)
  kIo,           // checkpoint/queue/campaign lifecycle
  kStep,         // whole PT-IM steps and coarse stage timers
  kOther,
};
const char* cat_name(Cat c);

// --- name interning -------------------------------------------------------
// Stable process-wide ids; id 0 is always "main" (the default lane).
uint32_t intern(const std::string& name);
// Valid for any id returned by intern(); stable for the process lifetime.
std::string name_of(uint32_t id);
size_t interned_count();

// --- per-thread tags ------------------------------------------------------
struct ThreadTag {
  int rank = -1;     // ptmpi world rank; -1 = not a rank thread (serial)
  uint32_t lane = 0; // interned lane name; 0 = "main"
};
ThreadTag thread_tag();
void set_thread_tag(ThreadTag t);
void set_thread_rank(int rank);
void set_thread_lane(uint32_t lane_id);

// --- tracing control ------------------------------------------------------
inline std::atomic<bool>& detail_enabled_flag() {
  static std::atomic<bool> on{false};
  return on;
}
inline bool enabled() {
  return detail_enabled_flag().load(std::memory_order_relaxed);
}
void set_enabled(bool on);

// Per-thread ring capacity (spans). Applies to buffers allocated AFTER the
// call; existing buffers keep their capacity. Default 1 << 16.
void set_ring_capacity(size_t spans);
size_t ring_capacity();

// Ring buffers allocated so far (one per thread that recorded while
// tracing was enabled) — the zero-overhead-when-disabled pin: recording
// spans with tracing off must never allocate one.
size_t thread_buffer_count();
// Spans lost to ring wraparound since the last clear().
uint64_t dropped_spans();

// Nanoseconds since the process trace epoch (steady clock, shared by all
// threads — in-process ptmpi ranks merge onto one consistent timeline).
uint64_t now_ns();

// A completed span. POD: trace_export ships arrays of these over ptmpi.
struct Span {
  uint64_t t0_ns = 0;
  uint64_t t1_ns = 0;
  uint32_t name_id = 0;
  uint32_t lane = 0;
  int32_t rank = -1;
  Cat cat = Cat::kOther;
};

// Record a completed span / an instant event with the calling thread's
// tags. Safe from any thread; allocates this thread's ring on first use.
void record_span(uint32_t name_id, Cat cat, uint64_t t0_ns, uint64_t t1_ns);
void mark(uint32_t name_id, Cat cat);

// Quiesced read of all recorded spans, oldest-first per thread buffer.
// rank_filter == kAllRanks keeps everything; otherwise only spans whose
// rank tag matches (each distributed rank snapshots its own lane set).
constexpr int kAllRanks = INT_MIN;
std::vector<Span> snapshot(int rank_filter = kAllRanks);
// Drop all recorded spans (buffer storage is retained for reuse).
void clear();

// --- profile accumulation (the ProfileRegistry backend) -------------------
struct ProfileSlot {
  long count = 0;
  double seconds = 0.0;
};
void profile_add(uint32_t name_id, double seconds);
ProfileSlot profile_get(uint32_t name_id);
// (name, slot) for every id with a nonzero count.
std::vector<std::pair<std::string, ProfileSlot>> profile_snapshot();
void profile_clear();

// --- RAII span ------------------------------------------------------------
class ObsSpan {
 public:
  ObsSpan(uint32_t name_id, Cat cat) {
    if (enabled()) {
      name_id_ = name_id;
      cat_ = cat;
      t0_ = now_ns();
      live_ = true;
    }
  }
  ~ObsSpan() {
    if (live_) record_span(name_id_, cat_, t0_, now_ns());
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  uint64_t t0_ = 0;
  uint32_t name_id_ = 0;
  Cat cat_ = Cat::kOther;
  bool live_ = false;
};

#define PTIM_OBS_CONCAT_(a, b) a##b
#define PTIM_OBS_CONCAT(a, b) PTIM_OBS_CONCAT_(a, b)

// Scoped span with one-time name interning per call SITE (function-local
// static): cheap enough for per-slab / per-round hot-path use.
#define OBS_SPAN(name_str, category)                             \
  static const uint32_t PTIM_OBS_CONCAT(obs_id_, __LINE__) =     \
      ::ptim::obs::intern(name_str);                             \
  ::ptim::obs::ObsSpan PTIM_OBS_CONCAT(obs_span_, __LINE__)(     \
      PTIM_OBS_CONCAT(obs_id_, __LINE__), category)

// Instant event (zero-duration), same one-time interning.
#define OBS_MARK(name_str, category)                             \
  do {                                                           \
    if (::ptim::obs::enabled()) {                                \
      static const uint32_t obs_mark_id_ =                       \
          ::ptim::obs::intern(name_str);                         \
      ::ptim::obs::mark(obs_mark_id_, category);                 \
    }                                                            \
  } while (0)

}  // namespace ptim::obs
