#include "obs/step_report.hpp"

#include <cmath>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"

namespace ptim::obs {

namespace {

// Minimal number formatting that round-trips doubles through JSON.
void put_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

// Flat {"key":number,...} scanner — the StepReport schema has no nested
// objects or strings, so a full JSON parser is not needed.
bool scan_fields(const std::string& line,
                 const std::function<void(const std::string&, double)>& on) {
  size_t i = line.find('{');
  if (i == std::string::npos) return false;
  ++i;
  while (i < line.size()) {
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == ',' || line[i] == '\t'))
      ++i;
    if (i >= line.size() || line[i] == '}') return true;
    if (line[i] != '"') return false;
    const size_t key_end = line.find('"', i + 1);
    if (key_end == std::string::npos) return false;
    const std::string key = line.substr(i + 1, key_end - i - 1);
    size_t j = line.find(':', key_end);
    if (j == std::string::npos) return false;
    ++j;
    while (j < line.size() && line[j] == ' ') ++j;
    char* end = nullptr;
    const double val = std::strtod(line.c_str() + j, &end);
    if (end == line.c_str() + j) return false;
    on(key, val);
    i = static_cast<size_t>(end - line.c_str());
  }
  return true;
}

}  // namespace

std::string to_jsonl(const StepReport& r) {
  std::ostringstream os;
  os << "{\"job_id\":" << r.job_id << ",\"rank\":" << r.rank
     << ",\"step\":" << r.step << ",\"seconds\":";
  put_double(os, r.seconds);
  os << ",\"scf_iterations\":" << r.scf_iterations
     << ",\"outer_iterations\":" << r.outer_iterations
     << ",\"exchange_applications\":" << r.exchange_applications
     << ",\"residual\":";
  put_double(os, r.residual);
  os << ",\"converged\":" << r.converged << ",\"ffts\":" << r.ffts
     << ",\"ring_bytes\":" << r.ring_bytes
     << ",\"alltoallv_bytes\":" << r.alltoallv_bytes
     << ",\"allreduce_bytes\":" << r.allreduce_bytes << ",\"comm_seconds\":";
  put_double(os, r.comm_seconds);
  os << ",\"isdf_fit_seconds\":";
  put_double(os, r.isdf_fit_seconds);
  os << ",\"alloc_delta\":" << r.alloc_delta << "}";
  return os.str();
}

bool from_jsonl(const std::string& line, StepReport* out) {
  StepReport r;
  const bool ok = scan_fields(line, [&](const std::string& key, double v) {
    if (key == "job_id") r.job_id = static_cast<long>(v);
    else if (key == "rank") r.rank = static_cast<int>(v);
    else if (key == "step") r.step = static_cast<long>(v);
    else if (key == "seconds") r.seconds = v;
    else if (key == "scf_iterations") r.scf_iterations = static_cast<int>(v);
    else if (key == "outer_iterations")
      r.outer_iterations = static_cast<int>(v);
    else if (key == "exchange_applications")
      r.exchange_applications = static_cast<int>(v);
    else if (key == "residual") r.residual = v;
    else if (key == "converged") r.converged = static_cast<int>(v);
    else if (key == "ffts") r.ffts = static_cast<long>(v);
    else if (key == "ring_bytes") r.ring_bytes = static_cast<long long>(v);
    else if (key == "alltoallv_bytes")
      r.alltoallv_bytes = static_cast<long long>(v);
    else if (key == "allreduce_bytes")
      r.allreduce_bytes = static_cast<long long>(v);
    else if (key == "comm_seconds") r.comm_seconds = v;
    else if (key == "isdf_fit_seconds") r.isdf_fit_seconds = v;
    else if (key == "alloc_delta") r.alloc_delta = static_cast<long>(v);
    // Unknown keys ignored: newer writers stay readable.
  });
  if (ok) *out = r;
  return ok;
}

long long ops_bytes(const ptmpi::CommStats& s,
                    std::initializer_list<const char*> ops) {
  long long total = 0;
  for (const char* op : ops) {
    auto it = s.ops.find(op);
    if (it != s.ops.end()) total += it->second.bytes;
  }
  return total;
}

double ops_seconds(const ptmpi::CommStats& s) { return s.total_seconds(); }

void StepSampler::begin(const StepCounters& now) {
  base_ = now;
  t0_ns_ = now_ns();
}

StepReport StepSampler::end(const StepCounters& now) const {
  StepReport r;
  r.seconds = static_cast<double>(now_ns() - t0_ns_) * 1e-9;
  r.ffts = now.ffts - base_.ffts;
  r.alloc_delta = now.alloc_count - base_.alloc_count;
  r.isdf_fit_seconds = now.isdf_fit_seconds - base_.isdf_fit_seconds;
  r.ring_bytes = ops_bytes(now.comm, {"Sendrecv", "Wait", "Bcast"}) -
                 ops_bytes(base_.comm, {"Sendrecv", "Wait", "Bcast"});
  r.alltoallv_bytes =
      ops_bytes(now.comm, {"Alltoallv"}) - ops_bytes(base_.comm, {"Alltoallv"});
  r.allreduce_bytes =
      ops_bytes(now.comm, {"Allreduce"}) - ops_bytes(base_.comm, {"Allreduce"});
  r.comm_seconds = ops_seconds(now.comm) - ops_seconds(base_.comm);
  return r;
}

MetricsSink::MetricsSink(const std::string& path)
    : f_(path, std::ios::app) {
  if (!f_)
    throw std::runtime_error("obs: cannot open metrics file " + path);
}

void MetricsSink::write(const StepReport& r) {
  std::lock_guard<std::mutex> lock(mu_);
  f_ << to_jsonl(r) << "\n";
  f_.flush();
}

}  // namespace ptim::obs
