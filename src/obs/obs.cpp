#include "obs/obs.hpp"

#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace ptim::obs {

namespace {

// --- interner -------------------------------------------------------------

struct Interner {
  std::mutex mu;
  std::unordered_map<std::string, uint32_t> ids;
  std::vector<std::string> names;
  Interner() {
    ids.emplace("main", 0u);
    names.push_back("main");
  }
};

Interner& interner() {
  static Interner* i = new Interner();  // leaked: outlives static dtors
  return *i;
}

// --- per-thread ring buffers ---------------------------------------------

struct ThreadBuf {
  std::vector<Span> ring;
  // Total spans ever written; slot = head % ring.size(). The release store
  // is what makes a quiesced snapshot() see fully-written slots.
  std::atomic<uint64_t> head{0};

  explicit ThreadBuf(size_t capacity) : ring(capacity) {}

  void push(const Span& s) {
    const uint64_t h = head.load(std::memory_order_relaxed);
    ring[h % ring.size()] = s;
    head.store(h + 1, std::memory_order_release);
  }
};

struct Registry {
  std::mutex mu;
  // ThreadBufs are never freed (thread_local raw pointers into them must
  // stay valid after clear()); bounded by the number of recording threads.
  std::vector<std::unique_ptr<ThreadBuf>> bufs;
  size_t capacity = size_t{1} << 16;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

thread_local ThreadBuf* tls_buf = nullptr;
thread_local ThreadTag tls_tag{};

ThreadBuf& thread_buf() {
  if (!tls_buf) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.bufs.push_back(std::make_unique<ThreadBuf>(r.capacity));
    tls_buf = r.bufs.back().get();
  }
  return *tls_buf;
}

// --- profile accumulators -------------------------------------------------

struct Profiles {
  std::mutex mu;
  std::vector<ProfileSlot> slots;
};

Profiles& profiles() {
  static Profiles* p = new Profiles();  // leaked: outlives static dtors
  return *p;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

const char* cat_name(Cat c) {
  switch (c) {
    case Cat::kCompute:
      return "compute";
    case Cat::kComm:
      return "comm";
    case Cat::kFft:
      return "fft";
    case Cat::kIo:
      return "io";
    case Cat::kStep:
      return "step";
    case Cat::kOther:
      return "other";
  }
  return "other";
}

uint32_t intern(const std::string& name) {
  Interner& in = interner();
  std::lock_guard<std::mutex> lock(in.mu);
  auto it = in.ids.find(name);
  if (it != in.ids.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(in.names.size());
  in.names.push_back(name);
  in.ids.emplace(name, id);
  return id;
}

std::string name_of(uint32_t id) {
  Interner& in = interner();
  std::lock_guard<std::mutex> lock(in.mu);
  if (id < in.names.size()) return in.names[id];
  return "<unknown:" + std::to_string(id) + ">";
}

size_t interned_count() {
  Interner& in = interner();
  std::lock_guard<std::mutex> lock(in.mu);
  return in.names.size();
}

ThreadTag thread_tag() { return tls_tag; }
void set_thread_tag(ThreadTag t) { tls_tag = t; }
void set_thread_rank(int rank) { tls_tag.rank = rank; }
void set_thread_lane(uint32_t lane_id) { tls_tag.lane = lane_id; }

void set_enabled(bool on) {
  // The trace epoch is pinned the first time tracing turns on, so span
  // timestamps start near zero rather than at process-uptime offsets.
  if (on) (void)trace_epoch();
  detail_enabled_flag().store(on, std::memory_order_relaxed);
}

void set_ring_capacity(size_t spans) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.capacity = spans < 16 ? 16 : spans;
}

size_t ring_capacity() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.capacity;
}

size_t thread_buffer_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.bufs.size();
}

uint64_t dropped_spans() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  uint64_t dropped = 0;
  for (const auto& b : r.bufs) {
    const uint64_t h = b->head.load(std::memory_order_acquire);
    const uint64_t cap = b->ring.size();
    if (h > cap) dropped += h - cap;
  }
  return dropped;
}

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

void record_span(uint32_t name_id, Cat cat, uint64_t t0_ns, uint64_t t1_ns) {
  Span s;
  s.t0_ns = t0_ns;
  s.t1_ns = t1_ns;
  s.name_id = name_id;
  s.lane = tls_tag.lane;
  s.rank = tls_tag.rank;
  s.cat = cat;
  thread_buf().push(s);
}

void mark(uint32_t name_id, Cat cat) {
  const uint64_t t = now_ns();
  record_span(name_id, cat, t, t);
}

std::vector<Span> snapshot(int rank_filter) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<Span> out;
  for (const auto& b : r.bufs) {
    const uint64_t h = b->head.load(std::memory_order_acquire);
    const uint64_t cap = b->ring.size();
    const uint64_t n = h < cap ? h : cap;
    // Oldest surviving span first.
    for (uint64_t i = h - n; i < h; ++i) {
      const Span& s = b->ring[i % cap];
      if (rank_filter == kAllRanks || s.rank == rank_filter) out.push_back(s);
    }
  }
  return out;
}

void clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& b : r.bufs) b->head.store(0, std::memory_order_release);
}

void profile_add(uint32_t name_id, double seconds) {
  Profiles& p = profiles();
  std::lock_guard<std::mutex> lock(p.mu);
  if (name_id >= p.slots.size()) p.slots.resize(name_id + 1);
  p.slots[name_id].count += 1;
  p.slots[name_id].seconds += seconds;
}

ProfileSlot profile_get(uint32_t name_id) {
  Profiles& p = profiles();
  std::lock_guard<std::mutex> lock(p.mu);
  if (name_id < p.slots.size()) return p.slots[name_id];
  return ProfileSlot{};
}

std::vector<std::pair<std::string, ProfileSlot>> profile_snapshot() {
  Profiles& p = profiles();
  std::vector<ProfileSlot> slots;
  {
    std::lock_guard<std::mutex> lock(p.mu);
    slots = p.slots;
  }
  std::vector<std::pair<std::string, ProfileSlot>> out;
  for (uint32_t id = 0; id < slots.size(); ++id) {
    if (slots[id].count > 0) out.emplace_back(name_of(id), slots[id]);
  }
  return out;
}

void profile_clear() {
  Profiles& p = profiles();
  std::lock_guard<std::mutex> lock(p.mu);
  p.slots.clear();
}

}  // namespace ptim::obs
