#pragma once
// Chrome trace-event export for obs span buffers.
//
// The exporter turns a quiesced snapshot() into the trace-event JSON that
// chrome://tracing and Perfetto load: one "X" (complete) event per span,
// ts/dur in microseconds, pid = rank lane, tid = stream lane, plus "M"
// metadata events naming each lane. For distributed runs, gather_spans()
// ships every rank's spans to rank 0 over the ptmpi Comm with a
// self-contained wire format (spans carry their own name table, so the
// protocol does not assume ranks share an interner — ptmpi's in-process
// ranks do, real MPI ranks would not).

#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace ptim::ptmpi {
class Comm;
}

namespace ptim::obs {

// Self-contained wire blob: name table (only the names the spans use)
// followed by the spans with name/lane remapped to table indices.
std::vector<char> serialize_spans(const std::vector<Span>& spans);
// Append blob's spans to *out, re-interning its name table into this
// process's interner. Throws std::runtime_error on a malformed blob.
void deserialize_spans(const std::vector<char>& blob, std::vector<Span>* out);

// Collective over comm: every rank passes its own (rank-filtered) spans;
// rank 0 returns the merge of all ranks' spans, other ranks return empty.
std::vector<Span> gather_spans(ptmpi::Comm& comm,
                               const std::vector<Span>& local);

// Trace-event JSON for the spans (sorted by begin time). Standalone — the
// string is a complete {"traceEvents": [...]} document.
std::string chrome_trace_json(const std::vector<Span>& spans);
// chrome_trace_json + write to path. Throws std::runtime_error on I/O error.
void write_chrome_trace(const std::string& path,
                        const std::vector<Span>& spans);

}  // namespace ptim::obs
