#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "ptmpi/comm.hpp"

namespace ptim::obs {

namespace {

// Messages in the gather protocol use a tag well outside the ranges the
// numeric kernels use (circulate rounds, transposes), so a gather can
// never be matched against stray traffic.
constexpr int kGatherTag = 9100;

void put_u32(std::vector<char>* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->insert(out->end(), buf, buf + 4);
}

void put_u64(std::vector<char>* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->insert(out->end(), buf, buf + 8);
}

struct Reader {
  const char* p;
  const char* end;
  void need(size_t n) const {
    if (static_cast<size_t>(end - p) < n)
      throw std::runtime_error("obs: truncated span blob");
  }
  uint32_t u32() {
    need(4);
    uint32_t v;
    std::memcpy(&v, p, 4);
    p += 4;
    return v;
  }
  uint64_t u64() {
    need(8);
    uint64_t v;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  }
  std::string str(size_t n) {
    need(n);
    std::string s(p, n);
    p += n;
    return s;
  }
};

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

std::vector<char> serialize_spans(const std::vector<Span>& spans) {
  // Compact name table: only the ids these spans reference (names AND
  // lanes share the interner, so one table serves both fields).
  std::unordered_map<uint32_t, uint32_t> idx_of;
  std::vector<uint32_t> ids;
  auto note = [&](uint32_t id) {
    if (idx_of.emplace(id, static_cast<uint32_t>(ids.size())).second)
      ids.push_back(id);
  };
  for (const Span& s : spans) {
    note(s.name_id);
    note(s.lane);
  }

  std::vector<char> out;
  put_u64(&out, ids.size());
  for (uint32_t id : ids) {
    const std::string name = name_of(id);
    put_u32(&out, static_cast<uint32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
  }
  put_u64(&out, spans.size());
  for (const Span& s : spans) {
    put_u64(&out, s.t0_ns);
    put_u64(&out, s.t1_ns);
    put_u32(&out, idx_of[s.name_id]);
    put_u32(&out, idx_of[s.lane]);
    put_u32(&out, static_cast<uint32_t>(s.rank));
    put_u32(&out, static_cast<uint32_t>(s.cat));
  }
  return out;
}

void deserialize_spans(const std::vector<char>& blob, std::vector<Span>* out) {
  Reader r{blob.data(), blob.data() + blob.size()};
  const uint64_t n_names = r.u64();
  std::vector<uint32_t> local_id(n_names);
  for (uint64_t i = 0; i < n_names; ++i) {
    const uint32_t len = r.u32();
    local_id[i] = intern(r.str(len));
  }
  const uint64_t n_spans = r.u64();
  out->reserve(out->size() + n_spans);
  for (uint64_t i = 0; i < n_spans; ++i) {
    Span s;
    s.t0_ns = r.u64();
    s.t1_ns = r.u64();
    const uint32_t name_idx = r.u32();
    const uint32_t lane_idx = r.u32();
    if (name_idx >= n_names || lane_idx >= n_names)
      throw std::runtime_error("obs: span blob name index out of range");
    s.name_id = local_id[name_idx];
    s.lane = local_id[lane_idx];
    s.rank = static_cast<int32_t>(r.u32());
    s.cat = static_cast<Cat>(r.u32());
    out->push_back(s);
  }
}

std::vector<Span> gather_spans(ptmpi::Comm& comm,
                               const std::vector<Span>& local) {
  if (comm.size() == 1) return local;
  if (comm.rank() == 0) {
    std::vector<Span> merged = local;
    for (int src = 1; src < comm.size(); ++src) {
      uint64_t bytes = 0;
      comm.recv(src, &bytes, sizeof(bytes), kGatherTag);
      std::vector<char> blob(bytes);
      if (bytes > 0) comm.recv(src, blob.data(), bytes, kGatherTag);
      deserialize_spans(blob, &merged);
    }
    return merged;
  }
  const std::vector<char> blob = serialize_spans(local);
  const uint64_t bytes = blob.size();
  comm.send(0, &bytes, sizeof(bytes), kGatherTag);
  if (bytes > 0) comm.send(0, blob.data(), bytes, kGatherTag);
  return {};
}

std::string chrome_trace_json(const std::vector<Span>& spans) {
  std::vector<const Span*> ordered;
  ordered.reserve(spans.size());
  for (const Span& s : spans) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Span* a, const Span* b) {
                     if (a->t0_ns != b->t0_ns) return a->t0_ns < b->t0_ns;
                     return a->t1_ns > b->t1_ns;  // parents before children
                   });

  // pid = rank lane (serial spans, rank -1, land on pid 0); tid = stream
  // lane. Metadata events give each lane its human name.
  auto pid_of = [](const Span& s) { return s.rank < 0 ? 0 : s.rank; };
  std::set<int> pids;
  std::map<std::pair<int, uint32_t>, std::string> tids;
  bool has_rank = false;
  for (const Span& s : spans) {
    pids.insert(pid_of(s));
    tids.emplace(std::make_pair(pid_of(s), s.lane), name_of(s.lane));
    if (s.rank >= 0) has_rank = true;
  }

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (int pid : pids) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
       << (has_rank ? "rank " + std::to_string(pid) : std::string("main"))
       << "\"}}";
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"name\":\"process_sort_index\",\"args\":{\"sort_index"
       << "\":" << pid << "}}";
  }
  for (const auto& kv : tids) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << kv.first.first
       << ",\"tid\":" << kv.first.second
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape(os, kv.second);
    os << "\"}}";
  }
  os.setf(std::ios::fixed);
  os.precision(3);
  for (const Span* s : ordered) {
    sep();
    os << "{\"ph\":\"X\",\"pid\":" << pid_of(*s) << ",\"tid\":" << s->lane
       << ",\"name\":\"";
    json_escape(os, name_of(s->name_id));
    os << "\",\"cat\":\"" << cat_name(s->cat)
       << "\",\"ts\":" << static_cast<double>(s->t0_ns) / 1000.0
       << ",\"dur\":" << static_cast<double>(s->t1_ns - s->t0_ns) / 1000.0
       << "}";
  }
  os << "\n]}\n";
  return os.str();
}

void write_chrome_trace(const std::string& path,
                        const std::vector<Span>& spans) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("obs: cannot open trace file " + path);
  f << chrome_trace_json(spans);
  if (!f) throw std::runtime_error("obs: failed writing trace file " + path);
}

}  // namespace ptim::obs
