#pragma once
// StepReport — the machine-readable per-step metrics layer.
//
// One StepReport per committed PT-IM step (per rank, for distributed
// runs; per job, for campaigns), emitted as a single JSONL line through a
// MetricsSink. All counter fields are DELTAS across the step, computed by
// a StepSampler from counter snapshots the caller supplies — the sampler
// itself knows nothing about the layers the counters come from, so this
// header depends only on ptmpi (for the CommStats type).
//
// Byte attribution follows the bench_common convention: ring_bytes is the
// Sendrecv + Wait + Bcast total (all three circulate engines land in that
// set: sendrecv rings, isend/irecv rings whose bytes are recorded by
// Wait, and bcast), while Alltoallv (pencil transposes) and Allreduce
// are reported separately.
//
// Readers should deduplicate lines by (job_id, rank, step), keeping the
// LAST occurrence: a campaign job that is killed and resumed rewinds to
// its latest checkpoint and re-emits the replayed steps into the same
// append-mode file.

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <mutex>
#include <string>

#include "ptmpi/comm.hpp"

namespace ptim::obs {

struct StepReport {
  long job_id = -1;  // campaign job id; -1 for plain Simulation runs
  int rank = -1;     // ptmpi rank; -1 for serial runs
  long step = 0;     // 1-based committed step index
  double seconds = 0.0;  // wall seconds for the step

  // Fixed-point / propagator work (from PtImStepStats).
  int scf_iterations = 0;
  int outer_iterations = 0;
  int exchange_applications = 0;
  double residual = 0.0;
  int converged = 1;

  // Counter deltas across the step.
  long ffts = 0;                 // ExchangeOperator::fft_count
  long long ring_bytes = 0;      // Sendrecv + Wait + Bcast
  long long alltoallv_bytes = 0; // pencil transposes
  long long allreduce_bytes = 0;
  double comm_seconds = 0.0;     // wall seconds inside all comm ops
  double isdf_fit_seconds = 0.0; // isdf.fit / isdf.fit_dist profile delta
  long alloc_delta = 0;          // backend buffer allocations
};

// One-line JSON (no trailing newline) / parse of the same. from_jsonl
// returns false on a line it cannot parse; unknown keys are ignored so
// the schema can grow.
std::string to_jsonl(const StepReport& r);
bool from_jsonl(const std::string& line, StepReport* out);

// Counter values at an instant; the sampler differences two of these.
struct StepCounters {
  long ffts = 0;
  long alloc_count = 0;
  double isdf_fit_seconds = 0.0;
  ptmpi::CommStats comm;  // a quiesced CommStats::snapshot()
};

// Sum of bytes / seconds over the named ops ("Sendrecv", "Wait", ...).
long long ops_bytes(const ptmpi::CommStats& s,
                    std::initializer_list<const char*> ops);
double ops_seconds(const ptmpi::CommStats& s);

class StepSampler {
 public:
  void begin(const StepCounters& now);
  // Delta report since begin(); identity/propagator fields are left for
  // the caller to fill. Calling end() without begin() yields absolute
  // counter values (deltas against zero).
  StepReport end(const StepCounters& now) const;

 private:
  StepCounters base_;
  uint64_t t0_ns_ = 0;
};

// Append-mode JSONL writer; write() is thread-safe so distributed rank
// threads can share one sink.
class MetricsSink {
 public:
  explicit MetricsSink(const std::string& path);
  void write(const StepReport& r);

 private:
  std::mutex mu_;
  std::ofstream f_;
};

}  // namespace ptim::obs
