#pragma once
// Block decompositions for distributing bands or grid rows over ranks.
// Items are split as evenly as possible: the first (total % parts) ranks
// get one extra item, matching the layout PWDFT uses for band parallelism.

#include <cstddef>

#include "common/error.hpp"

namespace ptim::dist {

// 2-D band x grid process layout (paper Sec. IV-B / Fig. 1): a world of
// pb*pg ranks is viewed as a pb x pg grid. World rank r sits at band row
// r / pg and grid column r % pg. Ranks of one grid COLUMN (fixed grid
// coordinate) form a band communicator of size pb — bands are distributed
// over it and exchange slabs circulate around it. Ranks of one band ROW
// (fixed band coordinate) form a grid communicator of size pg — the
// real-space grid is z-slab-distributed over it and every 3-D FFT runs as
// a distributed slab transform across it. pg = 1 recovers the pure
// band-parallel layout unchanged.
struct ProcessGrid {
  int pb = 0;  // band dimension; 0 = "all ranks" (resolved against nranks)
  int pg = 1;  // grid dimension

  int resolve_pb(int nranks) const {
    const int b = pb > 0 ? pb : nranks / (pg > 0 ? pg : 1);
    PTIM_CHECK_MSG(pg >= 1 && b >= 1 && b * pg == nranks,
                   "ProcessGrid: pb*pg must equal the rank count");
    return b;
  }
  int band_rank_of(int world_rank) const { return world_rank / pg; }
  int grid_rank_of(int world_rank) const { return world_rank % pg; }
};

class BlockLayout {
 public:
  BlockLayout(size_t total, int parts) : total_(total), parts_(parts) {
    PTIM_CHECK_MSG(parts >= 1, "BlockLayout: parts must be positive");
  }

  size_t total() const { return total_; }
  int parts() const { return parts_; }

  size_t count(int r) const {
    const size_t p = static_cast<size_t>(parts_);
    const size_t base = total_ / p;
    const size_t extra = total_ % p;
    return base + (static_cast<size_t>(r) < extra ? 1 : 0);
  }

  size_t offset(int r) const {
    const size_t p = static_cast<size_t>(parts_);
    const size_t base = total_ / p;
    const size_t extra = total_ % p;
    const size_t rr = static_cast<size_t>(r);
    return rr * base + (rr < extra ? rr : extra);
  }

  int owner(size_t item) const {
    PTIM_CHECK(item < total_);
    for (int r = 0; r < parts_; ++r)
      if (item < offset(r) + count(r)) return r;
    return parts_ - 1;
  }

 private:
  size_t total_;
  int parts_;
};

}  // namespace ptim::dist
