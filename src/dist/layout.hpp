#pragma once
// Block decompositions for distributing bands or grid rows over ranks.
// Items are split as evenly as possible: the first (total % parts) ranks
// get one extra item, matching the layout PWDFT uses for band parallelism.

#include <cstddef>

#include "common/error.hpp"

namespace ptim::dist {

class BlockLayout {
 public:
  BlockLayout(size_t total, int parts) : total_(total), parts_(parts) {
    PTIM_CHECK_MSG(parts >= 1, "BlockLayout: parts must be positive");
  }

  size_t total() const { return total_; }
  int parts() const { return parts_; }

  size_t count(int r) const {
    const size_t p = static_cast<size_t>(parts_);
    const size_t base = total_ / p;
    const size_t extra = total_ % p;
    return base + (static_cast<size_t>(r) < extra ? 1 : 0);
  }

  size_t offset(int r) const {
    const size_t p = static_cast<size_t>(parts_);
    const size_t base = total_ / p;
    const size_t extra = total_ % p;
    const size_t rr = static_cast<size_t>(r);
    return rr * base + (rr < extra ? rr : extra);
  }

  int owner(size_t item) const {
    PTIM_CHECK(item < total_);
    for (int r = 0; r < parts_; ++r)
      if (item < offset(r) + count(r)) return r;
    return parts_ - 1;
  }

 private:
  size_t total_;
  int parts_;
};

}  // namespace ptim::dist
