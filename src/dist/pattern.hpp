#pragma once
// Circulation patterns for band-distributed collectives (paper Table I):
//  * kBcast     — each round one rank broadcasts its slab (the ACE-era
//                 baseline; Bcast dominates the comm budget),
//  * kRing      — slabs hop neighbor-to-neighbor with Sendrecv,
//  * kAsyncRing — ring with Isend/Irecv posted before the compute so the
//                 transfer overlaps the local work.
// Shared by the exact-exchange circulation and the wavefunction rotation.

namespace ptim::dist {

enum class ExchangePattern { kBcast, kRing, kAsyncRing };

const char* pattern_name(ExchangePattern p);

}  // namespace ptim::dist
