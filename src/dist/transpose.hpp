#pragma once
// Distributed data-movement kernels (paper Fig. 1 and Fig. 6):
//  * band <-> grid transposes via Alltoallv — the wavefunction
//    redistribution between band-parallel and grid-parallel phases,
//  * the overlap reduction S = A^H B, optionally accumulating through a
//    node-shared window before the inter-node Allreduce (the MPI-3 SHM
//    optimization that collapses the Allreduce participant count).

#include "dist/layout.hpp"
#include "la/matrix.hpp"
#include "ptmpi/comm.hpp"

namespace ptim::dist {

// Rank r enters holding the band block (npw x bands.count(r)) of a global
// npw x nb matrix and leaves holding the row slab (rows.count(r) x nb).
la::MatC band_to_grid(ptmpi::Comm& c, const la::MatC& band_block,
                      const BlockLayout& bands, const BlockLayout& rows);

// Exact inverse of band_to_grid.
la::MatC grid_to_band(ptmpi::Comm& c, const la::MatC& grid_block,
                      const BlockLayout& bands, const BlockLayout& rows);

// Full m x n overlap S = A^H B from row-distributed A (local_rows x m) and
// B (local_rows x n). With use_shm the per-rank partial products are first
// summed into a node-shared window so only node leaders contribute real
// data to the single final Allreduce.
la::MatC overlap_distributed(ptmpi::Comm& c, const la::MatC& a,
                             const la::MatC& b, bool use_shm);

}  // namespace ptim::dist
