#pragma once
// Band-parallel Anderson mixing for the distributed PT-IM fixed point
// (Alg. 1 line 8). Each rank mixes the concatenation of its OWN band block
// of Phi (the "local" part) and the replicated sigma (the "shared" part,
// bit-identical on every rank). The least-squares problem is solved with
// the same modified Gram-Schmidt as la::lsq_solve, but every inner product
// is formed globally: local contributions are Allreduced in rank order and
// the shared tail is added once — so the mixing coefficients theta match
// the serial la::AndersonMixer on the assembled vector to rounding, and are
// bit-identical across ranks.

#include <deque>
#include <vector>

#include "common/types.hpp"
#include "ptmpi/comm.hpp"

namespace ptim::dist {

class DistAndersonMixer {
 public:
  // local_dim: rank-local vector length (this rank's Phi block);
  // shared_dim: replicated tail length (sigma), identical on every rank.
  DistAndersonMixer(ptmpi::Comm& c, size_t local_dim, size_t shared_dim,
                    size_t max_history = 20, real_t beta = 0.7,
                    real_t regularization = 1e-12);

  // x/f are (local ++ shared) concatenations; the shared part must be
  // bit-identical on every rank (it is, because it is produced from
  // Allreduced data). Collective call.
  std::vector<cplx> mix(const std::vector<cplx>& x,
                        const std::vector<cplx>& f);

  void reset();
  size_t history_size() const { return hist_x_.size(); }

 private:
  // Global <a|b> over (local ++ shared ++ aug) with aug rows counted once.
  cplx gdot(const std::vector<cplx>& a, const std::vector<cplx>& b,
            size_t aug_len);

  ptmpi::Comm* c_;
  size_t local_dim_;
  size_t shared_dim_;
  size_t max_history_;
  real_t beta_;
  real_t reg_;
  std::deque<std::vector<cplx>> hist_x_;
  std::deque<std::vector<cplx>> hist_f_;
};

}  // namespace ptim::dist
