#include "dist/rotate.hpp"

#include <algorithm>
#include <vector>

#include "dist/circulate.hpp"
#include "dist/transpose.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"

namespace ptim::dist {

la::MatC scatter_bands(const la::MatC& full, const BlockLayout& bands,
                       int rank) {
  const size_t npw = full.rows();
  la::MatC local(npw, bands.count(rank));
  for (size_t b = 0; b < bands.count(rank); ++b)
    std::copy(full.col(bands.offset(rank) + b),
              full.col(bands.offset(rank) + b) + npw, local.col(b));
  return local;
}

la::MatC gather_bands(ptmpi::Comm& c, const la::MatC& a_local,
                      const BlockLayout& bands) {
  const int p = c.size();
  // Local blocks always carry npw rows, even at zero width (scatter_bands
  // and the propagator construct them that way), so the shape is known.
  const size_t npw = a_local.rows();
  PTIM_CHECK(a_local.cols() == bands.count(c.rank()));
  std::vector<size_t> counts(static_cast<size_t>(p));
  for (int r = 0; r < p; ++r)
    counts[static_cast<size_t>(r)] = npw * bands.count(r);
  la::MatC full(npw, bands.total());
  c.allgatherv(a_local.data(), a_local.size(), full.data(), counts);
  return full;
}

la::MatC rotate_bands(ptmpi::Comm& c, const la::MatC& a_local,
                      const la::MatC& r, const BlockLayout& bands,
                      ExchangePattern pattern) {
  const int me = c.rank();
  const size_t nb = bands.total();
  const size_t npw = a_local.rows();
  PTIM_CHECK(r.rows() == nb && r.cols() == nb);
  PTIM_CHECK(a_local.cols() == bands.count(me));

  const size_t my_n = bands.count(me);
  la::MatC out(npw, my_n, cplx(0.0));

  const std::vector<cplx> mine(a_local.data(),
                               a_local.data() + a_local.size());
  // Accumulate the contribution of the block that originated on `origin`:
  // out += slab * R[origin's band rows, my band columns] — one cache-blocked
  // accumulating gemm per circulated block.
  la::MatC slab_m, rsub;
  auto apply_block = [&](const cplx* slab, int origin) {
    const size_t w = bands.count(origin);
    if (w == 0 || my_n == 0) return;
    const size_t row0 = bands.offset(origin);
    const size_t col0 = bands.offset(me);
    slab_m.resize(npw, w);
    std::copy(slab, slab + npw * w, slab_m.data());
    rsub.resize(w, my_n);
    for (size_t j = 0; j < my_n; ++j)
      for (size_t b = 0; b < w; ++b) rsub(b, j) = r(row0 + b, col0 + j);
    la::gemm_nn(slab_m, rsub, out, cplx(1.0), cplx(1.0));
  };
  circulate_slabs(c, bands, npw, mine, pattern, apply_block);
  return out;
}

la::MatC solve_upper_right_distributed(ptmpi::Comm& c, const la::MatC& l,
                                       const la::MatC& a_local,
                                       const BlockLayout& bands,
                                       const BlockLayout& rows) {
  la::MatC slab = band_to_grid(c, a_local, bands, rows);
  la::solve_upper_right(l, slab);
  return grid_to_band(c, slab, bands, rows);
}

}  // namespace ptim::dist
