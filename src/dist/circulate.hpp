#pragma once
// Shared slab-circulation engine behind the band-parallel collectives
// (exchange and rotation). `mine` holds this rank's payload —
// src_bands.count(me) bands of `stride` elements each — and
// apply(slab, origin) accumulates the contribution of the block that
// originated on rank `origin`. The three patterns match Table I: one
// broadcast per round, a synchronous Sendrecv ring, or an Isend/Irecv ring
// whose transfer overlaps the apply.
//
// The engine is generic over the slab element type: cplx for the FP64
// pipeline, cplxf for the FP32 exchange policy — the latter halves every
// Bcast/Sendrecv/Wait byte count for free. Transfers go through the
// raw-byte Comm API (cast pinned explicitly so the typed element-count
// overloads never capture a bytes argument).
//
// Two execution modes share the round structure:
//  * synchronous (ex == nullptr) — the legacy host path: each round's
//    transfer and compute run on the calling thread,
//  * stream-pipelined (ex != nullptr) — the paper's overlap scheme on the
//    backend subsystem: slabs are double-buffered, every round's ptmpi
//    transfer (and its waits) is a task on a `comm` stream, every apply a
//    task on a `compute` stream, and events order the two — while slab k
//    is being computed, slab k+1 is on the wire. The per-slab applies are
//    serialized on the compute stream in the same round order as the
//    synchronous path, so results are bit-identical in every mode.
//
// Slab storage is a fixed set of backend::Buffers allocated up front and
// reused across all p rounds (double buffering) — never per round; the
// allocation count per circulation is pinned in test_dist.

#include <algorithm>
#include <type_traits>
#include <vector>

#include "backend/backend.hpp"
#include "backend/buffer.hpp"
#include "backend/executor.hpp"
#include "backend/kernels.hpp"
#include "common/types.hpp"
#include "dist/layout.hpp"
#include "dist/pattern.hpp"
#include "obs/obs.hpp"
#include "ptmpi/comm.hpp"

namespace ptim::dist {

// Execution backend of a circulation: kSync selects the legacy
// host-synchronous engine (null executor); the host-stream kinds run the
// stream-pipelined engine with the exchange kernels registered. Shared by
// the 1-D (exchange_dist) and 2-D slab (slab_exchange) rings so the two
// paths can never pick different executors for the same options.
inline backend::Executor* circulation_executor(backend::Kind k) {
  if (k == backend::Kind::kSync) return nullptr;
  backend::register_exchange_kernels();
  return &backend::shared_executor(k);
}

namespace detail {

// Legacy host-synchronous engine (the pre-backend code path), kept both as
// the kSync production mode and as the reference the pipelined engine is
// tested bit-identical against.
template <typename T, typename Apply>
void circulate_slabs_sync(ptmpi::Comm& c, const std::vector<T>& mine,
                          size_t slab_elems, ExchangePattern pat,
                          const Apply& apply) {
  const int p = c.size();
  const int me = c.rank();
  const size_t slab_bytes = slab_elems * sizeof(T);

  switch (pat) {
    case ExchangePattern::kBcast: {
      backend::Buffer<T> buf(slab_elems);
      for (int root = 0; root < p; ++root) {
        {
          OBS_SPAN("xchg.bcast", obs::Cat::kComm);
          if (root == me) std::copy(mine.begin(), mine.end(), buf.data());
          c.bcast(static_cast<void*>(buf.data()), slab_bytes, root);
        }
        OBS_SPAN("xchg.apply_slab", obs::Cat::kCompute);
        apply(buf.data(), root);
      }
      break;
    }
    case ExchangePattern::kRing: {
      // Persistent double buffer: cur/nxt swap across all p rounds.
      backend::Buffer<T> b0(slab_elems), b1(slab_elems);
      T* cur = b0.data();
      T* nxt = b1.data();
      std::copy(mine.begin(), mine.end(), cur);
      const int next = (me + 1) % p;
      const int prev = (me - 1 + p) % p;
      for (int s = 0; s < p; ++s) {
        {
          OBS_SPAN("xchg.apply_slab", obs::Cat::kCompute);
          apply(cur, (me - s % p + p) % p);
        }
        if (s + 1 < p) {
          OBS_SPAN("xchg.sendrecv", obs::Cat::kComm);
          c.sendrecv(next, static_cast<const void*>(cur), slab_bytes, prev,
                     static_cast<void*>(nxt), slab_bytes,
                     /*tag=*/s);
          std::swap(cur, nxt);
        }
      }
      break;
    }
    case ExchangePattern::kAsyncRing: {
      backend::Buffer<T> b0(slab_elems), b1(slab_elems);
      T* cur = b0.data();
      T* nxt = b1.data();
      std::copy(mine.begin(), mine.end(), cur);
      const int next = (me + 1) % p;
      const int prev = (me - 1 + p) % p;
      for (int s = 0; s < p; ++s) {
        ptmpi::Request rr, rs;
        const bool more = s + 1 < p;
        if (more) {
          rr = c.irecv(prev, nxt, slab_bytes, /*tag=*/s);
          rs = c.isend(next, cur, slab_bytes, /*tag=*/s);
        }
        // Compute overlaps the in-flight transfer.
        {
          OBS_SPAN("xchg.apply_slab", obs::Cat::kCompute);
          apply(cur, (me - s % p + p) % p);
        }
        if (more) {
          OBS_SPAN("xchg.wait", obs::Cat::kComm);
          c.wait(rs);
          c.wait(rr);
          std::swap(cur, nxt);
        }
      }
      break;
    }
  }
}

// Per-rank persistent stream pair: each ptmpi rank is one thread, so a
// thread_local cache reuses the same compute/comm streams (and, under
// HostAsync, their worker threads) across circulations instead of paying
// stream creation inside the hot loop — the stream analogue of the
// persistent slab Buffers. Safe because every circulation drains both
// streams before returning; switching executors mid-process (tests sweep
// backend kinds) replaces the pair, joining the old workers.
struct CirculateStreams {
  backend::Executor* ex = nullptr;
  backend::Stream compute, comm;
};
inline CirculateStreams& cached_streams(backend::Executor& ex) {
  thread_local CirculateStreams cs;
  if (cs.ex != &ex) {
    cs.compute = ex.create_stream("xchg.compute");
    cs.comm = ex.create_stream("xchg.comm");
    cs.ex = &ex;
  }
  return cs;
}

// Stream-pipelined engine (paper Fig. 5 overlap): round s's transfer runs
// as a task on the `comm` stream while round s's apply runs on the
// `compute` stream; double-buffered slabs with events closing the two
// races (the transfer must not overwrite a buffer the compute stream is
// still reading, and the compute stream must not read a buffer whose
// transfer has not landed). Buffer r%2 carries round r in every pattern.
template <typename T, typename Apply>
void circulate_slabs_streamed(ptmpi::Comm& c, const std::vector<T>& mine,
                              size_t slab_elems, ExchangePattern pat,
                              const Apply& apply, backend::Executor& ex) {
  const int p = c.size();
  const int me = c.rank();
  const size_t slab_bytes = slab_elems * sizeof(T);
  // Kernel-registry name of the per-slab apply, by slab scalar.
  const char* const apply_kernel = std::is_same_v<T, cplxf>
                                       ? "xchg.apply_slab.fp32"
                                       : "xchg.apply_slab.fp64";

  CirculateStreams& cs = cached_streams(ex);
  backend::Stream& compute = cs.compute;
  backend::Stream& comm = cs.comm;
  backend::Buffer<T> b0(slab_elems), b1(slab_elems);
  T* const buf[2] = {b0.data(), b1.data()};

  // done[s] — the compute stream finished reading round s's buffer;
  // landed[s] — the comm stream finished writing round s+1's buffer.
  std::vector<backend::Event> done(static_cast<size_t>(p));
  std::vector<backend::Event> landed(static_cast<size_t>(p));

  auto launch_apply = [&](int s, int origin) {
    const T* slab = buf[s % 2];
    ex.launch(
        compute,
        [&apply, slab, origin] {
          // Recorded on the compute stream's worker lane.
          OBS_SPAN("xchg.apply_slab", obs::Cat::kCompute);
          apply(slab, origin);
        },
        apply_kernel);
    done[static_cast<size_t>(s)] = ex.record(compute);
  };

  switch (pat) {
    case ExchangePattern::kBcast: {
      for (int root = 0; root < p; ++root) {
        T* b = buf[root % 2];
        // The transfer reuses the buffer the compute stream last read two
        // rounds ago — wait for that read to retire before overwriting.
        if (root >= 2)
          ex.stream_wait_event(comm, done[static_cast<size_t>(root - 2)]);
        ex.launch(
            comm,
            [&c, &mine, b, slab_bytes, root, me] {
              OBS_SPAN("xchg.comm_round", obs::Cat::kComm);
              if (root == me) std::copy(mine.begin(), mine.end(), b);
              c.bcast(static_cast<void*>(b), slab_bytes, root);
            },
            "xchg.comm_round");
        landed[static_cast<size_t>(root)] = ex.record(comm);
        ex.stream_wait_event(compute, landed[static_cast<size_t>(root)]);
        launch_apply(root, root);
      }
      break;
    }
    case ExchangePattern::kRing:
    case ExchangePattern::kAsyncRing: {
      std::copy(mine.begin(), mine.end(), buf[0]);
      const int next = (me + 1) % p;
      const int prev = (me - 1 + p) % p;
      const bool posted = pat == ExchangePattern::kAsyncRing;
      for (int s = 0; s < p; ++s) {
        T* cur = buf[s % 2];
        T* nxt = buf[(s + 1) % 2];
        if (s + 1 < p) {
          // The receive overwrites the buffer computed on in round s-1.
          if (s >= 1)
            ex.stream_wait_event(comm, done[static_cast<size_t>(s - 1)]);
          ex.launch(
              comm,
              [&c, cur, nxt, slab_bytes, next, prev, s, posted] {
                OBS_SPAN("xchg.comm_round", obs::Cat::kComm);
                if (posted) {
                  // Isend/Irecv first, waits after — the ptmpi waits are
                  // what this stream's completion event stands for.
                  ptmpi::Request rr =
                      c.irecv(prev, nxt, slab_bytes, /*tag=*/s);
                  ptmpi::Request rs =
                      c.isend(next, static_cast<const void*>(cur), slab_bytes,
                              /*tag=*/s);
                  c.wait(rs);
                  c.wait(rr);
                } else {
                  c.sendrecv(next, static_cast<const void*>(cur), slab_bytes,
                             prev, static_cast<void*>(nxt), slab_bytes,
                             /*tag=*/s);
                }
              },
              "xchg.comm_round");
          landed[static_cast<size_t>(s)] = ex.record(comm);
        }
        // Round s computes on `cur`, which round s-1's transfer produced.
        if (s >= 1)
          ex.stream_wait_event(compute, landed[static_cast<size_t>(s - 1)]);
        launch_apply(s, (me - s % p + p) % p);
      }
      break;
    }
  }

  // Host rejoins only once BOTH queues drain; task exceptions rethrow
  // here. If the compute stream failed, the comm stream must still be
  // drained before unwinding — its queued transfer tasks reference this
  // frame's buffers/events, and peer ranks are mid-ring. (It cannot hang:
  // record() signal tasks are unconditional and streams keep draining past
  // a failed task, so every awaited event still fires.)
  try {
    ex.synchronize(compute);
  } catch (...) {
    try {
      ex.synchronize(comm);
    } catch (...) {
      // Secondary comm failure is subsumed by the compute error.
    }
    throw;
  }
  ex.synchronize(comm);
}

}  // namespace detail

template <typename T, typename Apply>
void circulate_slabs(ptmpi::Comm& c, const BlockLayout& src_bands,
                     size_t stride, const std::vector<T>& mine,
                     ExchangePattern pat, const Apply& apply,
                     backend::Executor* ex = nullptr) {
  const int p = c.size();

  size_t maxw = 0;
  for (int r = 0; r < p; ++r) maxw = std::max(maxw, src_bands.count(r));
  const size_t slab_elems = maxw * stride;

  if (p == 1) {
    apply(mine.data(), 0);
    return;
  }
  if (ex)
    detail::circulate_slabs_streamed(c, mine, slab_elems, pat, apply, *ex);
  else
    detail::circulate_slabs_sync(c, mine, slab_elems, pat, apply);
}

}  // namespace ptim::dist
