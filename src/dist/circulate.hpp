#pragma once
// Shared slab-circulation engine behind the band-parallel collectives
// (exchange and rotation). `mine` holds this rank's payload —
// src_bands.count(me) bands of `stride` elements each — and
// apply(slab, origin) accumulates the contribution of the block that
// originated on rank `origin`. The three patterns match Table I: one
// broadcast per round, a synchronous Sendrecv ring, or an Isend/Irecv ring
// whose transfer overlaps the apply.
//
// The engine is generic over the slab element type: cplx for the FP64
// pipeline, cplxf for the FP32 exchange policy — the latter halves every
// Bcast/Sendrecv/Wait byte count for free. Transfers go through the
// raw-byte Comm API (cast pinned explicitly so the typed element-count
// overloads never capture a bytes argument).

#include <algorithm>
#include <vector>

#include "common/types.hpp"
#include "dist/layout.hpp"
#include "dist/pattern.hpp"
#include "ptmpi/comm.hpp"

namespace ptim::dist {

template <typename T, typename Apply>
void circulate_slabs(ptmpi::Comm& c, const BlockLayout& src_bands,
                     size_t stride, const std::vector<T>& mine,
                     ExchangePattern pat, const Apply& apply) {
  const int p = c.size();
  const int me = c.rank();

  size_t maxw = 0;
  for (int r = 0; r < p; ++r) maxw = std::max(maxw, src_bands.count(r));
  const size_t slab_elems = maxw * stride;
  const size_t slab_bytes = slab_elems * sizeof(T);

  if (p == 1) {
    apply(mine.data(), 0);
    return;
  }

  switch (pat) {
    case ExchangePattern::kBcast: {
      std::vector<T> buf(slab_elems);
      for (int root = 0; root < p; ++root) {
        if (root == me) std::copy(mine.begin(), mine.end(), buf.begin());
        c.bcast(static_cast<void*>(buf.data()), slab_bytes, root);
        apply(buf.data(), root);
      }
      break;
    }
    case ExchangePattern::kRing: {
      std::vector<T> cur(slab_elems, T(0.0)), nxt(slab_elems);
      std::copy(mine.begin(), mine.end(), cur.begin());
      const int next = (me + 1) % p;
      const int prev = (me - 1 + p) % p;
      for (int s = 0; s < p; ++s) {
        apply(cur.data(), (me - s % p + p) % p);
        if (s + 1 < p) {
          c.sendrecv(next, static_cast<const void*>(cur.data()), slab_bytes,
                     prev, static_cast<void*>(nxt.data()), slab_bytes,
                     /*tag=*/s);
          std::swap(cur, nxt);
        }
      }
      break;
    }
    case ExchangePattern::kAsyncRing: {
      std::vector<T> cur(slab_elems, T(0.0)), nxt(slab_elems);
      std::copy(mine.begin(), mine.end(), cur.begin());
      const int next = (me + 1) % p;
      const int prev = (me - 1 + p) % p;
      for (int s = 0; s < p; ++s) {
        ptmpi::Request rr, rs;
        const bool more = s + 1 < p;
        if (more) {
          rr = c.irecv(prev, nxt.data(), slab_bytes, /*tag=*/s);
          rs = c.isend(next, cur.data(), slab_bytes, /*tag=*/s);
        }
        // Compute overlaps the in-flight transfer.
        apply(cur.data(), (me - s % p + p) % p);
        if (more) {
          c.wait(rs);
          c.wait(rr);
          std::swap(cur, nxt);
        }
      }
      break;
    }
  }
}

}  // namespace ptim::dist
