#include "dist/mixer_dist.hpp"

#include <cmath>

#include "common/error.hpp"
#include "la/blas.hpp"

namespace ptim::dist {

DistAndersonMixer::DistAndersonMixer(ptmpi::Comm& c, size_t local_dim,
                                     size_t shared_dim, size_t max_history,
                                     real_t beta, real_t regularization)
    : c_(&c),
      local_dim_(local_dim),
      shared_dim_(shared_dim),
      max_history_(max_history),
      beta_(beta),
      reg_(regularization) {
  PTIM_CHECK(max_history >= 1);
}

void DistAndersonMixer::reset() {
  hist_x_.clear();
  hist_f_.clear();
}

cplx DistAndersonMixer::gdot(const std::vector<cplx>& a,
                             const std::vector<cplx>& b, size_t aug_len) {
  // Local band block: partial sum, reduced deterministically in rank order.
  cplx part = la::dotc(local_dim_, a.data(), b.data());
  c_->allreduce_sum(&part, 1);
  // Shared sigma tail + augmented regularization rows: identical on every
  // rank, counted exactly once after the reduction.
  part += la::dotc(shared_dim_ + aug_len, a.data() + local_dim_,
                   b.data() + local_dim_);
  return part;
}

std::vector<cplx> DistAndersonMixer::mix(const std::vector<cplx>& x,
                                         const std::vector<cplx>& f) {
  const size_t dim = local_dim_ + shared_dim_;
  PTIM_CHECK(x.size() == dim && f.size() == dim);
  const size_t m = hist_x_.size();

  std::vector<cplx> xbar = x, fbar = f;
  if (m > 0) {
    // The serial mixer solves min_theta ||f - sum_i theta_i (f - f_i)||
    // with la::lsq_solve (MGS QR on the Tikhonov-augmented columns). Same
    // algorithm here; vectors carry m augmentation entries behind the
    // shared tail, as lsq_solve appends lambda*I rows behind the data.
    std::vector<std::vector<cplx>> q(m);
    for (size_t i = 0; i < m; ++i) {
      q[i].resize(dim + m, cplx(0.0));
      for (size_t r = 0; r < dim; ++r) q[i][r] = f[r] - hist_f_[i][r];
      if (reg_ > 0.0) q[i][dim + i] = reg_;
    }
    std::vector<cplx> rhs(dim + m, cplx(0.0));
    for (size_t r = 0; r < dim; ++r) rhs[r] = f[r];

    // Modified Gram-Schmidt with globally reduced inner products.
    la::MatC R(m, m);
    for (size_t j = 0; j < m; ++j) {
      for (size_t i = 0; i < j; ++i) {
        const cplx r = gdot(q[i], q[j], m);
        R(i, j) = r;
        la::axpy(dim + m, -r, q[i].data(), q[j].data());
      }
      const real_t nrm = std::sqrt(std::real(gdot(q[j], q[j], m)));
      PTIM_CHECK_MSG(nrm > 1e-300, "DistAndersonMixer: rank-deficient column "
                                       << j);
      R(j, j) = nrm;
      la::scal(dim + m, 1.0 / nrm, q[j].data());
    }

    // theta = R^{-1} Q^H rhs. The m projections are independent, so their
    // local parts go through one batched Allreduce instead of m scalar ones.
    std::vector<cplx> theta(m);
    for (size_t j = 0; j < m; ++j)
      theta[j] = la::dotc(local_dim_, q[j].data(), rhs.data());
    c_->allreduce_sum(theta.data(), m);
    for (size_t j = 0; j < m; ++j)
      theta[j] += la::dotc(shared_dim_ + m, q[j].data() + local_dim_,
                           rhs.data() + local_dim_);
    for (size_t i = m; i-- > 0;) {
      cplx s = theta[i];
      for (size_t j = i + 1; j < m; ++j) s -= R(i, j) * theta[j];
      theta[i] = s / R(i, i);
    }

    for (size_t i = 0; i < m; ++i) {
      const cplx th = theta[i];
      for (size_t r = 0; r < dim; ++r) {
        xbar[r] -= th * (x[r] - hist_x_[i][r]);
        fbar[r] -= th * (f[r] - hist_f_[i][r]);
      }
    }
  }

  hist_x_.push_back(x);
  hist_f_.push_back(f);
  if (hist_x_.size() > max_history_) {
    hist_x_.pop_front();
    hist_f_.pop_front();
  }

  std::vector<cplx> next(dim);
  for (size_t r = 0; r < dim; ++r) next[r] = xbar[r] + beta_ * fbar[r];
  return next;
}

}  // namespace ptim::dist
