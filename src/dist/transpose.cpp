#include "dist/transpose.hpp"

#include <algorithm>
#include <vector>

#include "la/blas.hpp"

namespace ptim::dist {

la::MatC band_to_grid(ptmpi::Comm& c, const la::MatC& band_block,
                      const BlockLayout& bands, const BlockLayout& rows) {
  const int p = c.size();
  const int me = c.rank();
  const size_t npw = rows.total();
  const size_t my_nb = bands.count(me);
  const size_t my_rows = rows.count(me);
  PTIM_CHECK(band_block.rows() == npw && band_block.cols() == my_nb);

  // To rank r: my bands' rows [rows.offset(r), +rows.count(r)), band-major.
  std::vector<size_t> send_counts(static_cast<size_t>(p)),
      recv_counts(static_cast<size_t>(p));
  size_t send_total = 0, recv_total = 0;
  for (int r = 0; r < p; ++r) {
    send_counts[static_cast<size_t>(r)] = rows.count(r) * my_nb;
    recv_counts[static_cast<size_t>(r)] = my_rows * bands.count(r);
    send_total += send_counts[static_cast<size_t>(r)];
    recv_total += recv_counts[static_cast<size_t>(r)];
  }
  std::vector<cplx> send(send_total), recv(recv_total);
  size_t pos = 0;
  for (int r = 0; r < p; ++r)
    for (size_t b = 0; b < my_nb; ++b) {
      const cplx* col = band_block.col(b) + rows.offset(r);
      std::copy(col, col + rows.count(r), send.begin() + pos);
      pos += rows.count(r);
    }
  c.alltoallv(send.data(), send_counts, recv.data(), recv_counts);

  la::MatC g(my_rows, bands.total());
  pos = 0;
  for (int q = 0; q < p; ++q)
    for (size_t b = 0; b < bands.count(q); ++b) {
      std::copy(recv.begin() + pos, recv.begin() + pos + my_rows,
                g.col(bands.offset(q) + b));
      pos += my_rows;
    }
  return g;
}

la::MatC grid_to_band(ptmpi::Comm& c, const la::MatC& grid_block,
                      const BlockLayout& bands, const BlockLayout& rows) {
  const int p = c.size();
  const int me = c.rank();
  const size_t my_rows = rows.count(me);
  const size_t my_nb = bands.count(me);
  PTIM_CHECK(grid_block.rows() == my_rows &&
             grid_block.cols() == bands.total());

  // To rank r: my row slab of r's bands, band-major — the mirror image of
  // band_to_grid's receive layout.
  std::vector<size_t> send_counts(static_cast<size_t>(p)),
      recv_counts(static_cast<size_t>(p));
  size_t send_total = 0, recv_total = 0;
  for (int r = 0; r < p; ++r) {
    send_counts[static_cast<size_t>(r)] = my_rows * bands.count(r);
    recv_counts[static_cast<size_t>(r)] = rows.count(r) * my_nb;
    send_total += send_counts[static_cast<size_t>(r)];
    recv_total += recv_counts[static_cast<size_t>(r)];
  }
  std::vector<cplx> send(send_total), recv(recv_total);
  size_t pos = 0;
  for (int r = 0; r < p; ++r)
    for (size_t b = 0; b < bands.count(r); ++b) {
      const cplx* col = grid_block.col(bands.offset(r) + b);
      std::copy(col, col + my_rows, send.begin() + pos);
      pos += my_rows;
    }
  c.alltoallv(send.data(), send_counts, recv.data(), recv_counts);

  la::MatC band(rows.total(), my_nb);
  pos = 0;
  for (int q = 0; q < p; ++q)
    for (size_t b = 0; b < my_nb; ++b) {
      std::copy(recv.begin() + pos, recv.begin() + pos + rows.count(q),
                band.col(b) + rows.offset(q));
      pos += rows.count(q);
    }
  return band;
}

la::MatC overlap_distributed(ptmpi::Comm& c, const la::MatC& a,
                             const la::MatC& b, bool use_shm) {
  PTIM_CHECK(a.rows() == b.rows());
  const size_t m = a.cols(), n = b.cols();
  la::MatC local(m, n);
  la::gemm_cn(a, b, local);

  std::vector<cplx> buf(m * n, cplx(0.0));
  if (use_shm) {
    // Accumulate node-locally through a shared window; only node leaders
    // then carry data into the (single) Allreduce.
    cplx* win = c.shm_allocate("overlap_shm", m * n);
    for (int nr = 0; nr < c.ranks_per_node(); ++nr) {
      if (c.node_rank() == nr) {
        if (nr == 0)
          std::copy(local.data(), local.data() + m * n, win);
        else
          for (size_t i = 0; i < m * n; ++i) win[i] += local.data()[i];
      }
      c.barrier();
    }
    if (c.node_rank() == 0) std::copy(win, win + m * n, buf.begin());
    c.barrier();  // everyone reads/zeroes before the window is reused
  } else {
    std::copy(local.data(), local.data() + m * n, buf.begin());
  }
  c.allreduce_sum(buf.data(), m * n);

  la::MatC s(m, n);
  std::copy(buf.begin(), buf.end(), s.data());
  return s;
}

}  // namespace ptim::dist
