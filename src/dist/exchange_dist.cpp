#include "dist/exchange_dist.hpp"

#include <algorithm>

#include "backend/executor.hpp"
#include "backend/kernels.hpp"
#include "dist/circulate.hpp"
#include "dist/isdf_dist.hpp"
#include "dist/rotate.hpp"

namespace ptim::dist {

const char* pattern_name(ExchangePattern p) {
  switch (p) {
    case ExchangePattern::kBcast: return "bcast";
    case ExchangePattern::kRing: return "ring";
    case ExchangePattern::kAsyncRing: return "async";
  }
  return "?";
}

namespace {

// Circulation bodies shared by the FP64 and FP32 pipelines, templated over
// the slab scalar (CS = cplx or cplxf) so the precision modes cannot drift
// apart: with CS = cplxf the sources are down-converted once at the
// real-space edge and the ring moves half the bytes, while the apply
// overloads keep the accumulation into `out` FP64.

template <typename CS>
la::MatC diag_circulation(ptmpi::Comm& c, const ham::ExchangeOperator& xop,
                          const la::MatC& src_local,
                          const std::vector<real_t>& d_all,
                          const la::MatC& tgt_local,
                          const BlockLayout& src_bands, ExchangePattern pat) {
  const auto& map = xop.map();
  const size_t ng = map.grid().size();

  la::Matrix<CS> mine_m;
  map.to_real_batch(src_local, mine_m);
  std::vector<CS> mine(mine_m.data(), mine_m.data() + mine_m.size());

  la::MatC out(tgt_local.rows(), tgt_local.cols(), cplx(0.0));
  auto apply_block = [&](const CS* slab, int origin) {
    const size_t w = src_bands.count(origin);
    if (w == 0 || tgt_local.cols() == 0) return;
    xop.apply_diag_realspace(slab, w, d_all.data() + src_bands.offset(origin),
                             tgt_local, out, /*accumulate=*/true);
  };
  circulate_slabs(c, src_bands, ng, mine, pat, apply_block,
                  circulation_executor(xop.options().backend));
  return out;
}

// Γ-point circulation (gamma_real mode, fields verified real by every
// rank): the ring carries REAL real-space slabs — half the bytes of the
// complex circulation above at equal precision (a quarter for RS = realf_t
// versus cplx) — and each slab's contribution runs the packed real-pair
// pipeline. Contributions are staged PER ORIGIN and reduced in origin
// order 0..p-1 after the circulation: the three patterns deliver slabs in
// different orders, so accumulating on arrival (as the complex path does)
// would give pattern-dependent bits, while the staged reduction makes the
// result bitwise-invariant across patterns (pinned in test_dist).
template <typename RS, typename CS>
la::MatC diag_circulation_gamma(ptmpi::Comm& c,
                                const ham::ExchangeOperator& xop,
                                const la::Matrix<CS>& mine_m,
                                const std::vector<real_t>& d_all,
                                const la::MatC& tgt_local,
                                const BlockLayout& src_bands,
                                ExchangePattern pat) {
  const size_t ng = xop.map().grid().size();
  const size_t w_me = mine_m.cols();

  std::vector<RS> mine(w_me * ng);
  for (size_t b = 0; b < w_me; ++b)
    for (size_t r = 0; r < ng; ++r)
      mine[b * ng + r] = mine_m.col(b)[r].real();

  const int p = c.size();
  std::vector<la::MatC> contrib(
      static_cast<size_t>(p),
      la::MatC(tgt_local.rows(), tgt_local.cols(), cplx(0.0)));
  auto apply_block = [&](const RS* slab, int origin) {
    const size_t w = src_bands.count(origin);
    if (w == 0 || tgt_local.cols() == 0) return;
    xop.apply_diag_realspace_real(slab, w,
                                  d_all.data() + src_bands.offset(origin),
                                  tgt_local, contrib[static_cast<size_t>(origin)],
                                  /*accumulate=*/true);
  };
  circulate_slabs(c, src_bands, ng, mine, pat, apply_block,
                  circulation_executor(xop.options().backend));

  la::MatC out(tgt_local.rows(), tgt_local.cols(), cplx(0.0));
  for (int o = 0; o < p; ++o) {
    const la::MatC& co = contrib[static_cast<size_t>(o)];
    for (size_t i = 0; i < out.size(); ++i) out.data()[i] += co.data()[i];
  }
  return out;
}

template <typename CS>
la::MatC mixed_circulation(ptmpi::Comm& c, const ham::ExchangeOperator& xop,
                           const la::MatC& src_local,
                           const la::MatC& theta_local,
                           const la::MatC& tgt_local,
                           const BlockLayout& src_bands, ExchangePattern pat) {
  const auto& map = xop.map();
  const size_t ng = map.grid().size();
  const size_t w_me = src_local.cols();

  // Payload per band: [phi_k | theta_k] real-space pair, so one circulation
  // moves both the bra orbital and its sigma-contracted weight.
  la::Matrix<CS> phi_r, theta_r;
  map.to_real_batch(src_local, phi_r);
  map.to_real_batch(theta_local, theta_r);
  std::vector<CS> mine(2 * w_me * ng);
  for (size_t b = 0; b < w_me; ++b) {
    std::copy(phi_r.col(b), phi_r.col(b) + ng, mine.begin() + 2 * b * ng);
    std::copy(theta_r.col(b), theta_r.col(b) + ng,
              mine.begin() + (2 * b + 1) * ng);
  }

  la::MatC out(tgt_local.rows(), tgt_local.cols(), cplx(0.0));
  std::vector<CS> phis, thetas;
  auto apply_block = [&](const CS* slab, int origin) {
    const size_t w = src_bands.count(origin);
    if (w == 0 || tgt_local.cols() == 0) return;
    phis.resize(w * ng);
    thetas.resize(w * ng);
    for (size_t b = 0; b < w; ++b) {
      std::copy(slab + 2 * b * ng, slab + (2 * b + 1) * ng,
                phis.begin() + b * ng);
      std::copy(slab + (2 * b + 1) * ng, slab + (2 * b + 2) * ng,
                thetas.begin() + b * ng);
    }
    xop.apply_weighted_realspace(phis.data(), thetas.data(), w, tgt_local, out,
                                 /*accumulate=*/true);
  };
  circulate_slabs(c, src_bands, 2 * ng, mine, pat, apply_block,
                  circulation_executor(xop.options().backend));
  return out;
}

// Γ-point agreement vote: this rank's sources (already in real space) and
// targets are tested with the operator's shared realness criterion, then
// the per-rank verdicts are combined — real payloads circulate only when
// EVERY rank's fields pass (an allreduced sum of 1.0 flags must equal p).
template <typename CS>
bool gamma_vote(ptmpi::Comm& c, const ham::ExchangeOperator& xop,
                const la::Matrix<CS>& src_grid, const la::MatC& tgt_local) {
  const size_t ng = xop.map().grid().size();
  bool real = true;
  for (size_t b = 0; b < src_grid.cols() && real; ++b)
    real = ham::ExchangeOperator::field_is_real(src_grid.col(b), ng);
  if (real && tgt_local.cols() > 0) {
    la::Matrix<CS> tgt_grid;
    xop.map().to_real_batch(tgt_local, tgt_grid);
    for (size_t j = 0; j < tgt_grid.cols() && real; ++j)
      real = ham::ExchangeOperator::field_is_real(tgt_grid.col(j), ng);
  }
  real_t vote = real ? 1.0 : 0.0;
  c.allreduce_sum(&vote, 1);
  return vote == static_cast<real_t>(c.size());
}

}  // namespace

la::MatC exchange_apply_distributed_local(ptmpi::Comm& c,
                                          const ham::ExchangeOperator& xop,
                                          const la::MatC& src_local,
                                          const std::vector<real_t>& d_local,
                                          const la::MatC& tgt_local,
                                          const BlockLayout& src_bands,
                                          ExchangePattern pat) {
  const int p = c.size();
  const int me = c.rank();
  PTIM_CHECK(src_bands.parts() == p);
  PTIM_CHECK(d_local.size() == src_local.cols());
  PTIM_CHECK(src_local.cols() == src_bands.count(me));

  // Occupation slices are tiny; share them once so any origin's slab can be
  // weighted locally. They stay FP64 in every precision mode.
  std::vector<size_t> counts(static_cast<size_t>(p));
  for (int r = 0; r < p; ++r)
    counts[static_cast<size_t>(r)] = src_bands.count(r);
  std::vector<real_t> d(src_bands.total());
  c.allgatherv(d_local.data(), d_local.size(), d.data(), counts);

  // ISDF replaces the slab circulation wholesale: band-parallel fit from
  // Allreduced Gram partials, then a local GEMM apply (dist/isdf_dist).
  if (xop.options().compression == ham::ExchangeCompression::kIsdf)
    return exchange_apply_isdf_local(c, xop, src_local, d, tgt_local,
                                     src_bands);

  if (xop.gamma_real()) {
    // Γ-point fast path: if every rank's sources and targets are real,
    // circulate REAL slabs (half the ring bytes) through the packed
    // real-pair pipeline; otherwise fall through to the complex
    // circulation, bitwise-identical to gamma_real off.
    if (xop.options().precision != Precision::kDouble) {
      la::MatCf mine_m;
      xop.map().to_real_batch(src_local, mine_m);
      if (gamma_vote(c, xop, mine_m, tgt_local))
        return diag_circulation_gamma<realf_t, cplxf>(c, xop, mine_m, d,
                                                      tgt_local, src_bands,
                                                      pat);
    } else {
      la::MatC mine_m;
      xop.map().to_real_batch(src_local, mine_m);
      if (gamma_vote(c, xop, mine_m, tgt_local))
        return diag_circulation_gamma<real_t, cplx>(c, xop, mine_m, d,
                                                    tgt_local, src_bands, pat);
    }
  }

  if (xop.options().precision != Precision::kDouble)
    return diag_circulation<cplxf>(c, xop, src_local, d, tgt_local, src_bands,
                                   pat);
  return diag_circulation<cplx>(c, xop, src_local, d, tgt_local, src_bands,
                                pat);
}

la::MatC exchange_apply_distributed_mixed_local(
    ptmpi::Comm& c, const ham::ExchangeOperator& xop, const la::MatC& src_local,
    const la::MatC& theta_local, const la::MatC& tgt_local,
    const BlockLayout& src_bands, ExchangePattern pat) {
  PTIM_CHECK(src_bands.parts() == c.size());
  PTIM_CHECK(src_local.cols() == src_bands.count(c.rank()));
  PTIM_CHECK(theta_local.cols() == src_local.cols());

  if (xop.options().precision != Precision::kDouble)
    return mixed_circulation<cplxf>(c, xop, src_local, theta_local, tgt_local,
                                    src_bands, pat);
  return mixed_circulation<cplx>(c, xop, src_local, theta_local, tgt_local,
                                 src_bands, pat);
}

la::MatC exchange_apply_distributed(ptmpi::Comm& c,
                                    const ham::ExchangeOperator& xop,
                                    const la::MatC& src,
                                    const std::vector<real_t>& d,
                                    const la::MatC& tgt, ExchangePattern pat) {
  const int p = c.size();
  const int me = c.rank();
  PTIM_CHECK(d.size() == src.cols());
  const BlockLayout sb(src.cols(), p), tb(tgt.cols(), p);
  const la::MatC src_local = scatter_bands(src, sb, me);
  const la::MatC tgt_local = scatter_bands(tgt, tb, me);
  std::vector<real_t> d_local(d.begin() + static_cast<long>(sb.offset(me)),
                              d.begin() + static_cast<long>(sb.offset(me) +
                                                            sb.count(me)));
  return exchange_apply_distributed_local(c, xop, src_local, d_local,
                                          tgt_local, sb, pat);
}

}  // namespace ptim::dist
