#include "dist/exchange_dist.hpp"

#include <algorithm>

namespace ptim::dist {

const char* pattern_name(ExchangePattern p) {
  switch (p) {
    case ExchangePattern::kBcast: return "bcast";
    case ExchangePattern::kRing: return "ring";
    case ExchangePattern::kAsyncRing: return "async";
  }
  return "?";
}

la::MatC exchange_apply_distributed(ptmpi::Comm& c,
                                    const ham::ExchangeOperator& xop,
                                    const la::MatC& src,
                                    const std::vector<real_t>& d,
                                    const la::MatC& tgt, ExchangePattern pat) {
  const int p = c.size();
  const int me = c.rank();
  PTIM_CHECK(d.size() == src.cols());
  const BlockLayout sb(src.cols(), p), tb(tgt.cols(), p);
  const auto& map = xop.map();
  const size_t ng = map.grid().size();
  const size_t npw = tgt.rows();

  // Local target block (sphere coefficients) and my source slab in real
  // space — the payload that will circulate.
  la::MatC tgt_local(npw, tb.count(me));
  for (size_t b = 0; b < tb.count(me); ++b)
    std::copy(tgt.col(tb.offset(me) + b), tgt.col(tb.offset(me) + b) + npw,
              tgt_local.col(b));
  la::MatC src_local(npw, sb.count(me));
  for (size_t b = 0; b < sb.count(me); ++b)
    std::copy(src.col(sb.offset(me) + b), src.col(sb.offset(me) + b) + npw,
              src_local.col(b));
  la::MatC mine;
  map.to_real_batch(src_local, mine);

  la::MatC out(npw, tb.count(me), cplx(0.0));

  size_t maxw = 0;
  for (int r = 0; r < p; ++r) maxw = std::max(maxw, sb.count(r));
  const size_t slab_bytes = maxw * ng * sizeof(cplx);

  // Accumulate the contribution of the slab that originated on `origin`.
  auto apply_block = [&](const cplx* slab, int origin) {
    const size_t w = sb.count(origin);
    if (w == 0 || tb.count(me) == 0) return;
    xop.apply_diag_realspace(slab, w, d.data() + sb.offset(origin), tgt_local,
                             out, /*accumulate=*/true);
  };

  switch (pat) {
    case ExchangePattern::kBcast: {
      std::vector<cplx> buf(maxw * ng);
      for (int root = 0; root < p; ++root) {
        if (root == me)
          std::copy(mine.data(), mine.data() + mine.size(), buf.begin());
        c.bcast(buf.data(), slab_bytes, root);
        apply_block(buf.data(), root);
      }
      break;
    }
    case ExchangePattern::kRing: {
      std::vector<cplx> cur(maxw * ng, cplx(0.0)), nxt(maxw * ng);
      std::copy(mine.data(), mine.data() + mine.size(), cur.begin());
      const int next = (me + 1) % p;
      const int prev = (me - 1 + p) % p;
      for (int s = 0; s < p; ++s) {
        apply_block(cur.data(), (me - s % p + p) % p);
        if (s + 1 < p) {
          c.sendrecv(next, cur.data(), slab_bytes, prev, nxt.data(),
                     slab_bytes, /*tag=*/s);
          std::swap(cur, nxt);
        }
      }
      break;
    }
    case ExchangePattern::kAsyncRing: {
      std::vector<cplx> cur(maxw * ng, cplx(0.0)), nxt(maxw * ng);
      std::copy(mine.data(), mine.data() + mine.size(), cur.begin());
      const int next = (me + 1) % p;
      const int prev = (me - 1 + p) % p;
      for (int s = 0; s < p; ++s) {
        ptmpi::Request rr, rs;
        const bool more = s + 1 < p;
        if (more) {
          rr = c.irecv(prev, nxt.data(), slab_bytes, /*tag=*/s);
          rs = c.isend(next, cur.data(), slab_bytes, /*tag=*/s);
        }
        // Compute overlaps the in-flight transfer.
        apply_block(cur.data(), (me - s % p + p) % p);
        if (more) {
          c.wait(rs);
          c.wait(rr);
          std::swap(cur, nxt);
        }
      }
      break;
    }
  }
  return out;
}

}  // namespace ptim::dist
