#pragma once
// Ring-based wavefunction rotation (the paper's band-parallel workhorse):
// every column mix Phi' = Phi * R — sigma-eigenvector rotations, the
// parallel-transport projector Phi * S^{-1}M, ACE applications — needs data
// from every band, so band blocks circulate exactly like the exchange
// slabs. Rank r enters holding its npw x bands.count(r) block of Phi and a
// replicated nb x nb matrix R, and leaves holding its block of Phi * R.

#include "dist/layout.hpp"
#include "dist/pattern.hpp"
#include "la/matrix.hpp"
#include "ptmpi/comm.hpp"

namespace ptim::dist {

// out_local = (A * R)[:, bands-of-this-rank], with A band-distributed over
// c.size() ranks and R replicated (bands.total() x bands.total()).
la::MatC rotate_bands(ptmpi::Comm& c, const la::MatC& a_local,
                      const la::MatC& r, const BlockLayout& bands,
                      ExchangePattern pattern);

// Rank-local band slice / reassembly helpers.
la::MatC scatter_bands(const la::MatC& full, const BlockLayout& bands,
                       int rank);
la::MatC gather_bands(ptmpi::Comm& c, const la::MatC& a_local,
                      const BlockLayout& bands);

// X <- A * L^{-H} for band-distributed A with L replicated lower-triangular
// (the ACE basis transform and the PT-IM re-orthonormalization). Internally
// transposes to the grid layout, runs the serial row-wise triangular solve
// on the local row slab — arithmetically identical to the serial
// la::solve_upper_right — and transposes back.
la::MatC solve_upper_right_distributed(ptmpi::Comm& c, const la::MatC& l,
                                       const la::MatC& a_local,
                                       const BlockLayout& bands,
                                       const BlockLayout& rows);

}  // namespace ptim::dist
