#pragma once
// Distributed exact-exchange application (paper Fig. 5): every rank owns a
// band block of targets and a band block of sources; real-space source
// slabs circulate so each rank accumulates every source's contribution
// onto its local targets. Three circulation patterns, matching Table I
// (see dist/pattern.hpp). All produce results identical to the serial
// operator.
//
// The rank-local entry points are the production API: each rank passes only
// the band blocks it owns (the layout of the PT-IM propagator state). The
// legacy full-replication signature is kept as a thin wrapper that slices
// the global matrices before delegating.

#include <vector>

#include "dist/layout.hpp"
#include "dist/pattern.hpp"
#include "ham/exchange.hpp"
#include "ptmpi/comm.hpp"

namespace ptim::dist {

// Diagonal-occupation exchange on rank-local blocks: this rank holds
// src_local = src[:, src_bands-of-rank] with occupations d_local (same
// slice) and an arbitrary-width local target block. Occupation slices are
// shared once with Allgatherv; real-space source slabs then circulate in
// the requested pattern. Returns alpha*Vx[src,d]*tgt_local
// (npw x tgt_local.cols()).
la::MatC exchange_apply_distributed_local(ptmpi::Comm& c,
                                          const ham::ExchangeOperator& xop,
                                          const la::MatC& src_local,
                                          const std::vector<real_t>& d_local,
                                          const la::MatC& tgt_local,
                                          const BlockLayout& src_bands,
                                          ExchangePattern p);

// Mixed-state (full sigma) exchange on rank-local blocks. The sigma
// contraction is carried by theta_local = (Phi * sigma)[:, local bands]:
// pairs of (phi_k, theta_k) real-space slabs circulate and each round
// accumulates -alpha sum_k theta_k(r) V[conj(phi_k) tgt_j](r) — equal to
// the serial apply_mixed_naive without replicating Phi or sigma.
la::MatC exchange_apply_distributed_mixed_local(
    ptmpi::Comm& c, const ham::ExchangeOperator& xop, const la::MatC& src_local,
    const la::MatC& theta_local, const la::MatC& tgt_local,
    const BlockLayout& src_bands, ExchangePattern p);

// Legacy wrapper: every rank passes the FULL src/tgt matrices
// (npw x nsrc / npw x ntgt) and occupations d; the function slices both
// over c.size() ranks with BlockLayout and returns this rank's
// npw x BlockLayout(ntgt).count(me) block of alpha*Vx[src,d]*tgt.
la::MatC exchange_apply_distributed(ptmpi::Comm& c,
                                    const ham::ExchangeOperator& xop,
                                    const la::MatC& src,
                                    const std::vector<real_t>& d,
                                    const la::MatC& tgt, ExchangePattern p);

}  // namespace ptim::dist
