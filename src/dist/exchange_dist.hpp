#pragma once
// Distributed exact-exchange application (paper Fig. 5): every rank owns a
// band block of targets and a band block of sources; real-space source
// slabs circulate so each rank accumulates every source's contribution
// onto its local targets. Three circulation patterns, matching Table I:
//  * kBcast     — each round one rank broadcasts its slab (the ACE-era
//                 baseline; Bcast dominates the comm budget),
//  * kRing      — slabs hop neighbor-to-neighbor with Sendrecv,
//  * kAsyncRing — ring with Isend/Irecv posted before the compute so the
//                 transfer overlaps the pair-FFT work.
// All three produce results identical to the serial operator.

#include <vector>

#include "dist/layout.hpp"
#include "ham/exchange.hpp"
#include "ptmpi/comm.hpp"

namespace ptim::dist {

enum class ExchangePattern { kBcast, kRing, kAsyncRing };

const char* pattern_name(ExchangePattern p);

// Every rank passes the FULL src/tgt matrices (npw x nsrc / npw x ntgt) and
// occupations d; the function internally splits both over c.size() ranks
// with BlockLayout and returns this rank's npw x BlockLayout(ntgt).count(me)
// block of alpha*Vx[src,d]*tgt.
la::MatC exchange_apply_distributed(ptmpi::Comm& c,
                                    const ham::ExchangeOperator& xop,
                                    const la::MatC& src,
                                    const std::vector<real_t>& d,
                                    const la::MatC& tgt, ExchangePattern p);

}  // namespace ptim::dist
