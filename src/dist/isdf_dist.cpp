#include "dist/isdf_dist.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "la/blas.hpp"

namespace ptim::dist {

namespace {

// FP32-policy real-space edge: round through the single-precision
// transform exactly like the serial kIsdf route, then promote so the fit
// algebra runs FP64 on the rounded values.
la::MatC to_real_policy(const ham::ExchangeOperator& x, const la::MatC& src) {
  la::MatC out;
  if (x.precision() != Precision::kDouble) {
    la::MatCf f;
    x.map().to_real_batch(src, f);
    out.resize(f.rows(), f.cols());
#pragma omp parallel for schedule(static)
    for (size_t i = 0; i < f.size(); ++i)
      out.data()[i] = static_cast<cplx>(f.data()[i]);
  } else {
    x.map().to_real_batch(src, out);
  }
  return out;
}

struct DistFit {
  ham::isdf::Fit fit;
  la::MatC tgt_pts;  // local targets sampled at the fit points (Nmu x nloc)
};

DistFit fit_distributed(ptmpi::Comm& c, const ham::ExchangeOperator& xop,
                        const la::MatC& src_local,
                        const std::vector<real_t>& d_all,
                        const la::MatC& tgt_local,
                        const BlockLayout& src_bands) {
  ScopedTimer t("isdf.fit_dist");
  const int p = c.size();
  const int me = c.rank();
  PTIM_CHECK(src_bands.parts() == p);
  PTIM_CHECK(d_all.size() == src_bands.total());
  PTIM_CHECK(src_local.cols() == src_bands.count(me));
  const size_t ng = xop.map().grid().size();

  DistFit df;
  const la::MatC tgt_real = to_real_policy(xop, tgt_local);
  const size_t ntgt_loc = tgt_real.cols();

  // Per-rank target widths (targets need not follow src_bands — ACE
  // rebuilds apply onto a differently sliced block) and the global count.
  std::vector<real_t> wsend{static_cast<real_t>(ntgt_loc)};
  std::vector<real_t> wall(static_cast<size_t>(p));
  const std::vector<size_t> ones(static_cast<size_t>(p), 1);
  c.allgatherv(wsend.data(), 1, wall.data(), ones);
  std::vector<size_t> ntgt_r(static_cast<size_t>(p));
  size_t ntgt_all = 0, tgt_off = 0;
  for (int r = 0; r < p; ++r) {
    ntgt_r[static_cast<size_t>(r)] =
        static_cast<size_t>(wall[static_cast<size_t>(r)] + 0.5);
    if (r < me) tgt_off += ntgt_r[static_cast<size_t>(r)];
    ntgt_all += ntgt_r[static_cast<size_t>(r)];
  }

  // Occupied bands by GLOBAL index: the global index selects the sketch
  // row, so every rank slices the same deterministic mixture matrix and
  // the partial band sums add up to the serial sketch.
  const size_t nb_all = src_bands.total();
  const size_t boff = src_bands.offset(me);
  std::vector<size_t> act_loc, act_glob;
  for (size_t i = 0; i < src_local.cols(); ++i)
    if (d_all[boff + i] != 0.0) {
      act_loc.push_back(i);
      act_glob.push_back(boff + i);
    }
  size_t na_all = 0;
  for (size_t i = 0; i < nb_all; ++i)
    if (d_all[i] != 0.0) ++na_all;
  if (na_all == 0 || ntgt_all == 0) return df;  // null operator everywhere

  const la::MatC src_real = to_real_policy(xop, src_local);
  const size_t na_loc = act_loc.size();
  la::MatC phi(ng, na_loc), phid(ng, na_loc);
  for (size_t i = 0; i < na_loc; ++i) {
    const cplx* s = src_real.col(act_loc[i]);
    std::copy(s, s + ng, phi.col(i));
    const real_t di = d_all[act_glob[i]];
    cplx* pd = phid.col(i);
    for (size_t r = 0; r < ng; ++r) pd[r] = di * s[r];
  }

  const size_t nmu =
      ham::isdf::rank(xop.isdf_rank_factor(), na_all, ntgt_all, ng);
  const size_t k = ham::isdf::sketch_width(nmu);
  const la::MatC r1 =
      ham::isdf::sketch_matrix(nb_all, k, ham::isdf::kSeedSources);
  const la::MatC r2 =
      ham::isdf::sketch_matrix(ntgt_all, k, ham::isdf::kSeedTargets);
  la::MatC r1a(na_loc, k), r2l(ntgt_loc, k);
  for (size_t j = 0; j < k; ++j) {
    for (size_t i = 0; i < na_loc; ++i) r1a(i, j) = r1(act_glob[i], j);
    for (size_t i = 0; i < ntgt_loc; ++i) r2l(i, j) = r2(tgt_off + i, j);
  }

  // Band-sum partials -> deterministic Allreduce, so selection inputs are
  // bitwise identical on every rank (the serial path computes the same
  // sums as single GEMMs; serial vs distributed agree to rounding).
  la::MatC g1(ng, k, cplx(0.0)), g2(ng, k, cplx(0.0));
  if (na_loc > 0) la::gemm_nn(phi, r1a, g1);
  if (ntgt_loc > 0) la::gemm_nn(tgt_real, r2l, g2);
  std::vector<real_t> rho(ng, 0.0);
#pragma omp parallel for schedule(static)
  for (size_t r = 0; r < ng; ++r) {
    real_t s = 0.0;
    for (size_t i = 0; i < na_loc; ++i)
      s += std::abs(d_all[act_glob[i]]) * std::norm(phi(r, i));
    for (size_t j = 0; j < ntgt_loc; ++j) s += std::norm(tgt_real(r, j));
    rho[r] = s;
  }
  c.allreduce_sum(g1.data(), g1.size());
  c.allreduce_sum(g2.data(), g2.size());
  c.allreduce_sum(rho.data(), rho.size());

  std::vector<size_t> points = ham::isdf::select_points(g1, g2, rho, nmu);

  // Interpolation-point values of the local bands, Allgathered over the
  // band communicator — Nmu x nb matrices, tiny next to any grid slab —
  // give every rank the normal-equation matrix A with rank-count-invariant
  // association.
  la::MatC p1(nmu, na_loc), p2(nmu, ntgt_loc);
  for (size_t i = 0; i < na_loc; ++i)
    for (size_t mu = 0; mu < nmu; ++mu) p1(mu, i) = phi(points[mu], i);
  for (size_t j = 0; j < ntgt_loc; ++j)
    for (size_t mu = 0; mu < nmu; ++mu) p2(mu, j) = tgt_real(points[mu], j);

  std::vector<size_t> cnt1(static_cast<size_t>(p));
  std::vector<size_t> cnt2(static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    size_t na_r = 0;
    for (size_t i = 0; i < src_bands.count(r); ++i)
      if (d_all[src_bands.offset(r) + i] != 0.0) ++na_r;
    cnt1[static_cast<size_t>(r)] = nmu * na_r;
    cnt2[static_cast<size_t>(r)] = nmu * ntgt_r[static_cast<size_t>(r)];
  }
  la::MatC p1g(nmu, na_all), p2g(nmu, ntgt_all);
  c.allgatherv(p1.data(), p1.size(), p1g.data(), cnt1);
  c.allgatherv(p2.data(), p2.size(), p2g.data(), cnt2);

  // A(mu, nu) = conj(c_src(r_mu, nu)) c_tgt(r_mu, nu): the Hadamard
  // product of the two point-value Grams.
  la::MatC s1(nmu, nmu), s2(nmu, nmu);
  la::gemm_nc(p1g, p1g, s1);
  la::gemm_nc(p2g, p2g, s2);
  la::MatC a(nmu, nmu);
  for (size_t i = 0; i < a.size(); ++i)
    a.data()[i] = std::conj(s1.data()[i]) * s2.data()[i];

  // Grid-resolved Gram blocks as Allreduced band-sum partials.
  la::MatC c_src(ng, nmu, cplx(0.0)), c_tgt(ng, nmu, cplx(0.0));
  la::MatC g(ng, nmu, cplx(0.0));
  if (na_loc > 0) {
    la::gemm_nc(phi, p1, c_src);
    la::gemm_nc(phid, p1, g);
  }
  if (ntgt_loc > 0) la::gemm_nc(tgt_real, p2, c_tgt);
  c.allreduce_sum(c_src.data(), c_src.size());
  c.allreduce_sum(c_tgt.data(), c_tgt.size());
  c.allreduce_sum(g.data(), g.size());

  df.fit = ham::isdf::fit(xop, std::move(points), c_src, c_tgt, g, &a);
  df.tgt_pts = std::move(p2);
  return df;
}

}  // namespace

ham::isdf::Fit isdf_fit_distributed(ptmpi::Comm& c,
                                    const ham::ExchangeOperator& xop,
                                    const la::MatC& src_local,
                                    const std::vector<real_t>& d_all,
                                    const la::MatC& tgt_local,
                                    const BlockLayout& src_bands) {
  return fit_distributed(c, xop, src_local, d_all, tgt_local, src_bands).fit;
}

la::MatC exchange_apply_isdf_local(ptmpi::Comm& c,
                                   const ham::ExchangeOperator& xop,
                                   const la::MatC& src_local,
                                   const std::vector<real_t>& d_all,
                                   const la::MatC& tgt_local,
                                   const BlockLayout& src_bands) {
  ScopedTimer t("exchange.isdf_dist");
  DistFit df = fit_distributed(c, xop, src_local, d_all, tgt_local, src_bands);
  la::MatC out(tgt_local.rows(), tgt_local.cols(), cplx(0.0));
  if (df.fit.points.empty()) return out;
  ham::isdf::apply(xop, df.fit, df.tgt_pts, out);
  return out;
}

}  // namespace ptim::dist
