#pragma once
// Band-parallel ISDF exchange (ExchangeCompression::kIsdf on pg == 1
// layouts). The dense distributed diag exchange circulates full real-space
// source slabs around the band ring; the ISDF path replaces the
// circulation wholesale:
//
//  * every band-summed fit input (sketches, quasi-density, Gram blocks,
//    the occupation-weighted G block) is computed as a rank-local partial
//    over the rank's bands and combined with the DETERMINISTIC rank-ordered
//    Allreduce (ptmpi), so each rank derives a bitwise-identical fit;
//  * the tiny Nmu x nb interpolation-point values are Allgathered over the
//    band communicator (the "fitted blocks" that replace full slabs on the
//    wire), giving every rank the normal-equation matrix without any
//    full-grid exchange of orbitals;
//  * each rank then applies the shared fit to its LOCAL targets with one
//    GEMM — no per-apply circulation at all. Wire traffic per refresh is
//    O(Ng * Nmu) of Gram blocks instead of (p-1) rounds of O(Ng * nb/p)
//    slabs per apply.
//
// Serial and distributed fits agree to summation-association rounding
// (partial sums + Allreduce vs one GEMM), pinned by tests at tolerance;
// across ranks the fit and the selected points are bitwise identical.

#include <vector>

#include "dist/layout.hpp"
#include "ham/exchange.hpp"
#include "ham/isdf.hpp"
#include "ptmpi/comm.hpp"

namespace ptim::dist {

// Build the band-parallel ISDF fit: src_local holds this rank's band slice
// (sphere coefficients), d_all the FULL occupation vector (already
// Allgathered by the exchange entry point), tgt_local the rank's target
// block. Collective over c; returns the same Fit on every rank (bitwise).
ham::isdf::Fit isdf_fit_distributed(ptmpi::Comm& c,
                                    const ham::ExchangeOperator& xop,
                                    const la::MatC& src_local,
                                    const std::vector<real_t>& d_all,
                                    const la::MatC& tgt_local,
                                    const BlockLayout& src_bands);

// Full band-parallel ISDF diag exchange: fit (collective) + local apply.
// Drop-in replacement for the slab circulation inside
// exchange_apply_distributed_local; returns alpha*Vx*tgt_local.
la::MatC exchange_apply_isdf_local(ptmpi::Comm& c,
                                   const ham::ExchangeOperator& xop,
                                   const la::MatC& src_local,
                                   const std::vector<real_t>& d_all,
                                   const la::MatC& tgt_local,
                                   const BlockLayout& src_bands);

}  // namespace ptim::dist
