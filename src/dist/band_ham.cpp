#include "dist/band_ham.hpp"

#include <algorithm>
#include <cmath>

#include "dist/exchange_dist.hpp"
#include "dist/rotate.hpp"
#include "dist/transpose.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/eig.hpp"
#include "la/util.hpp"

namespace ptim::dist {

BandDistributedHamiltonian::BandDistributedHamiltonian(ptmpi::Comm& c,
                                                       ham::Hamiltonian& h,
                                                       size_t nbands,
                                                       BandHamOptions opt)
    : gridctx_(opt.grid.pg > 1
                   ? std::make_unique<GridContext>(c, opt.grid,
                                                   h.exchange_op().map())
                   : nullptr),
      c_(gridctx_ ? &gridctx_->band() : &c),
      h_(&h),
      bands_(nbands, c_->size()),
      rows_(h.sphere().npw(), c_->size()),
      opt_(opt) {
  // Validate the layout in every mode (pg == 1 included), so an
  // explicitly-set but inconsistent ProcessGrid is rejected rather than
  // silently ignored. The GridContext path has already checked pg > 1.
  if (!gridctx_) (void)opt_.grid.resolve_pb(c.size());
  // Exchange is applied by this layer; the local Hamiltonian only ever
  // contributes kinetic/local/nonlocal terms.
  h_->set_exchange_mode(ham::ExchangeMode::kNone);
}

la::MatC BandDistributedHamiltonian::exchange_diag(
    const la::MatC& src_local, const std::vector<real_t>& d_local,
    const la::MatC& tgt_local) {
  if (gridctx_) {
    PTIM_CHECK_MSG(
        h_->exchange_op().options().compression !=
            ham::ExchangeCompression::kIsdf,
        "ISDF exchange compression requires a pure band-parallel layout "
        "(process_grid.pg == 1); the slab-distributed grid path (pg > 1) "
        "does not support kIsdf yet");
    return exchange_apply_slab_local(*gridctx_, h_->exchange_op(), src_local,
                                     d_local, tgt_local, bands_, opt_.pattern);
  }
  return exchange_apply_distributed_local(*c_, h_->exchange_op(), src_local,
                                          d_local, tgt_local, bands_,
                                          opt_.pattern);
}

la::MatC BandDistributedHamiltonian::exchange_mixed(
    const la::MatC& src_local, const la::MatC& theta_local,
    const la::MatC& tgt_local) {
  if (gridctx_)
    return exchange_apply_slab_mixed_local(*gridctx_, h_->exchange_op(),
                                           src_local, theta_local, tgt_local,
                                           bands_, opt_.pattern);
  return exchange_apply_distributed_mixed_local(*c_, h_->exchange_op(),
                                                src_local, theta_local,
                                                tgt_local, bands_,
                                                opt_.pattern);
}

la::MatC BandDistributedHamiltonian::overlap(const la::MatC& a_local,
                                             const la::MatC& b_local) {
  // Paper Fig. 1: band -> grid transpose (Alltoallv), partial gemm over the
  // local row slab, then one Allreduce (optionally SHM-staged, Fig. 6).
  const la::MatC ga = band_to_grid(*c_, a_local, bands_, rows_);
  if (&a_local == &b_local)
    return overlap_distributed(*c_, ga, ga, opt_.overlap_shm);
  const la::MatC gb = band_to_grid(*c_, b_local, bands_, rows_);
  return overlap_distributed(*c_, ga, gb, opt_.overlap_shm);
}

void BandDistributedHamiltonian::overlap_pair(const la::MatC& a_local,
                                              const la::MatC& b_local,
                                              la::MatC* aa, la::MatC* ab) {
  const la::MatC ga = band_to_grid(*c_, a_local, bands_, rows_);
  const la::MatC gb = band_to_grid(*c_, b_local, bands_, rows_);
  *aa = overlap_distributed(*c_, ga, ga, opt_.overlap_shm);
  *ab = overlap_distributed(*c_, ga, gb, opt_.overlap_shm);
}

la::MatC BandDistributedHamiltonian::rotate(const la::MatC& a_local,
                                            const la::MatC& r) {
  return rotate_bands(*c_, a_local, r, bands_, opt_.pattern);
}

la::MatC BandDistributedHamiltonian::solve_upper_right(
    const la::MatC& l, const la::MatC& a_local) {
  return solve_upper_right_distributed(*c_, l, a_local, bands_, rows_);
}

std::vector<real_t> BandDistributedHamiltonian::density(
    const la::MatC& phi_local, const la::MatC& sigma, la::MatC* theta_out) {
  la::MatC theta_local = rotate(phi_local, sigma);
  const auto& map = h_->den_map();
  const size_t ng = map.grid().size();
  std::vector<real_t> rho(ng, 0.0);
  std::vector<cplx> wphi(ng), wtheta(ng);
  for (size_t b = 0; b < phi_local.cols(); ++b) {
    map.to_real(phi_local.col(b), wphi.data());
    map.to_real(theta_local.col(b), wtheta.data());
#pragma omp parallel for schedule(static)
    for (size_t j = 0; j < ng; ++j)
      rho[j] += 2.0 * std::real(wtheta[j] * std::conj(wphi[j]));
  }
  c_->allreduce_sum(rho.data(), ng);
  if (theta_out) *theta_out = std::move(theta_local);
  return rho;
}

void BandDistributedHamiltonian::set_exchange_source_mixed_naive(
    const la::MatC& phi_local, const la::MatC& sigma, la::MatC theta_local) {
  xsrc_local_ = phi_local;
  xtheta_local_ = theta_local.same_shape(phi_local)
                      ? std::move(theta_local)
                      : rotate(phi_local, sigma);
  xmode_ = BandExchangeMode::kMixedNaive;
}

void BandDistributedHamiltonian::set_exchange_source_mixed_diag(
    const la::MatC& phi_local, la::MatC sigma) {
  // Same sequence as ham::Hamiltonian::set_exchange_source_mixed: hermitize,
  // diagonalize (replicated, so Q is identical on every rank), rotate.
  la::hermitize(sigma);
  const auto eig = la::eig_herm(sigma);
  xsrc_local_ = rotate(phi_local, eig.V);
  xocc_local_.assign(
      eig.w.begin() + static_cast<long>(bands_.offset(c_->rank())),
      eig.w.begin() + static_cast<long>(bands_.offset(c_->rank()) +
                                        bands_.count(c_->rank())));
  xmode_ = BandExchangeMode::kMixedDiag;
}

real_t BandDistributedHamiltonian::build_ace(const la::MatC& phi_local,
                                             la::MatC sigma) {
  const int me = c_->rank();
  la::hermitize(sigma);
  const auto eig = la::eig_herm(sigma);
  const la::MatC rotated_local = rotate(phi_local, eig.V);
  const std::vector<real_t> occ_local(
      eig.w.begin() + static_cast<long>(bands_.offset(me)),
      eig.w.begin() + static_cast<long>(bands_.offset(me) +
                                        bands_.count(me)));

  // W = (alpha Vx) Phi' via the circulating batched-FFT exchange (slab
  // pipeline under the 2-D layout).
  const la::MatC w_local =
      exchange_diag(rotated_local, occ_local, rotated_local);

  // B = -Phi'^H W (+ ridge), Cholesky, xi = W L^{-H} — the serial
  // AceOperator::build arithmetic on replicated small matrices.
  la::MatC b = overlap(rotated_local, w_local);
  for (size_t i = 0; i < b.size(); ++i) b.data()[i] = -b.data()[i];
  la::hermitize(b);
  const size_t n = b.rows();
  real_t dmax = 0.0;
  for (size_t i = 0; i < n; ++i) dmax = std::max(dmax, std::real(b(i, i)));
  const real_t ridge = std::max(dmax, real_t(1.0)) * 1e-13;
  for (size_t i = 0; i < n; ++i) b(i, i) += ridge;
  const la::MatC l = la::cholesky(b);
  xi_local_ = solve_upper_right(l, w_local);
  xmode_ = BandExchangeMode::kAce;

  // Exchange-energy estimate sum_b d_b <phi'_b|W_b>: local bands, then the
  // deterministic Allreduce — replicated like every other scalar.
  real_t ex = 0.0;
  for (size_t b2 = 0; b2 < rotated_local.cols(); ++b2)
    ex += occ_local[b2] * std::real(la::dotc(rotated_local.rows(),
                                             rotated_local.col(b2),
                                             w_local.col(b2)));
  c_->allreduce_sum(&ex, 1);
  return ex;
}

void BandDistributedHamiltonian::apply(const la::MatC& phi_local,
                                       la::MatC& hphi_local) {
  h_->apply_semilocal(phi_local, hphi_local);
  switch (xmode_) {
    case BandExchangeMode::kNone:
      break;
    case BandExchangeMode::kMixedNaive: {
      const la::MatC vx = exchange_mixed(xsrc_local_, xtheta_local_, phi_local);
      for (size_t i = 0; i < hphi_local.size(); ++i)
        hphi_local.data()[i] += vx.data()[i];
      break;
    }
    case BandExchangeMode::kMixedDiag: {
      const la::MatC vx = exchange_diag(xsrc_local_, xocc_local_, phi_local);
      for (size_t i = 0; i < hphi_local.size(); ++i)
        hphi_local.data()[i] += vx.data()[i];
      break;
    }
    case BandExchangeMode::kAce: {
      // V_ACE tgt = -xi (xi^H tgt): replicated G = xi^H tgt, then one
      // rotation to form (xi G)[:, my bands].
      const la::MatC g = overlap(xi_local_, phi_local);
      const la::MatC xg = rotate(xi_local_, g);
      for (size_t i = 0; i < hphi_local.size(); ++i)
        hphi_local.data()[i] -= xg.data()[i];
      break;
    }
  }
}

}  // namespace ptim::dist
