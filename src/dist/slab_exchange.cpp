#include "dist/slab_exchange.hpp"

#include <algorithm>
#include <type_traits>

#include "backend/backend.hpp"
#include "backend/executor.hpp"
#include "backend/kernels.hpp"
#include "dist/circulate.hpp"

namespace ptim::dist {

GridContext::GridContext(ptmpi::Comm& world, ProcessGrid grid,
                         const pw::SphereGridMap& map)
    : pgrid_(grid),
      band_(world.split(/*color=*/grid.grid_rank_of(world.rank()),
                        /*key=*/grid.band_rank_of(world.rank()))),
      grid_(world.split(/*color=*/grid.band_rank_of(world.rank()),
                        /*key=*/grid.grid_rank_of(world.rank()))),
      map_(&map),
      fft64_(map.grid().dims(), grid_),
      fft32_(map.grid().dims(), grid_) {
  (void)pgrid_.resolve_pb(world.size());  // validates pb*pg == nranks
  PTIM_CHECK(band_.size() == pgrid_.resolve_pb(world.size()) &&
             grid_.size() == pgrid_.pg);

  // Pencil scatter plan: which sphere coefficients land on this rank's
  // y pencil, and where. Disjoint across the grid communicator (every
  // grid index has exactly one owner), which is what makes the sphere
  // Allreduce in the gather exact rather than merely deterministic.
  const auto& m = map.map();
  pen_global_.resize(npencil());
  for (size_t i = 0; i < pen_global_.size(); ++i)
    pen_global_[i] = fft64_.pencil_to_global(i);
  for (size_t p = 0; p < m.size(); ++p) {
    const size_t loc = fft64_.global_to_pencil(m[p]);
    if (loc == fft::DistFft3::npos) continue;
    sph_idx_.push_back(p);
    pen_idx_.push_back(loc);
  }
}

namespace {

template <typename CS>
using RealOf = typename CS::value_type;

template <typename CS>
auto& fft_of(GridContext& gc) {
  if constexpr (std::is_same_v<CS, cplxf>)
    return gc.fft32();
  else
    return gc.fft64();
}

// --- slab transforms -------------------------------------------------------
// Each helper reproduces one SphereGridMap path exactly (see the scale
// convention note in pw/transforms.hpp): per grid point the arithmetic is
// identical to the rank-local transform, with the FFT distributed.

// to_real_batch semantics (sources): scale folded into the scatter.
template <typename CS>
std::vector<CS> to_real_slab_batch(GridContext& gc, const la::MatC& coeffs) {
  auto& f = fft_of<CS>(gc);
  const size_t npen = gc.npencil();
  const size_t m = coeffs.cols();
  const auto& sph = gc.sphere_idx();
  const auto& loc = gc.pencil_idx();
  const real_t s = gc.map().scale_to_real();
  std::vector<CS> pen(npen * m, CS(0));
  for (size_t b = 0; b < m; ++b) {
    const cplx* cb = coeffs.col(b);
    CS* pb = pen.data() + b * npen;
    for (size_t k = 0; k < sph.size(); ++k)
      pb[loc[k]] = static_cast<CS>(cb[sph[k]] * s);
  }
  std::vector<CS> slab(gc.nreal() * m);
  f.inverse(pen.data(), slab.data(), m);
  return slab;
}

// Single-column to_real semantics (targets). FP64 applies the output scale
// AFTER the inverse transform (matching SphereGridMap::to_real); FP32 folds
// it into the scatter (matching the FP32 single-column overload).
template <typename CS>
std::vector<CS> to_real_slab_single(GridContext& gc, const la::MatC& coeffs) {
  auto& f = fft_of<CS>(gc);
  const size_t npen = gc.npencil();
  const size_t nloc = gc.nreal();
  const size_t m = coeffs.cols();
  const auto& sph = gc.sphere_idx();
  const auto& loc = gc.pencil_idx();
  const real_t s = gc.map().scale_to_real();
  constexpr bool fp32 = std::is_same_v<CS, cplxf>;
  std::vector<CS> pen(npen * m, CS(0));
  for (size_t b = 0; b < m; ++b) {
    const cplx* cb = coeffs.col(b);
    CS* pb = pen.data() + b * npen;
    for (size_t k = 0; k < sph.size(); ++k)
      pb[loc[k]] = fp32 ? static_cast<CS>(cb[sph[k]] * s)
                        : static_cast<CS>(cb[sph[k]]);
  }
  std::vector<CS> slab(nloc * m);
  f.inverse(pen.data(), slab.data(), m);
  if (!fp32) {
    const size_t total = nloc * m;
    for (size_t i = 0; i < total; ++i)
      slab[i] *= static_cast<RealOf<CS>>(s);
  }
  return slab;
}

// Distributed analogue of ExchangeOperator::kernel_filter_block: forward
// slab FFT, K(G)/Ng multiply on the y pencil (kernel indexed by global grid
// index), inverse slab FFT. Same FFT-count bookkeeping.
void kernel_filter_slab(GridContext& gc, const ham::ExchangeOperator& xop,
                        cplx* block, size_t nb, std::vector<cplx>& pen) {
  auto& f = gc.fft64();
  const size_t npen = gc.npencil();
  const auto& gidx = gc.pencil_global();
  const auto& kernel = xop.kernel();
  const real_t inv_ng =
      1.0 / static_cast<real_t>(gc.map().grid().size());
  pen.resize(npen * nb);
  f.forward(block, pen.data(), nb);
#pragma omp parallel for schedule(static) collapse(2)
  for (size_t i = 0; i < nb; ++i)
    for (size_t r = 0; r < npen; ++r)
      pen[i * npen + r] *= kernel[gidx[r]] * inv_ng;
  f.inverse(pen.data(), block, nb);
  xop.fft_count += static_cast<long>(2 * nb);
}

void kernel_filter_slab(GridContext& gc, const ham::ExchangeOperator& xop,
                        cplxf* block, size_t nb, std::vector<cplxf>& pen) {
  auto& f = gc.fft32();
  const size_t npen = gc.npencil();
  const auto& gidx = gc.pencil_global();
  const auto& kernel = xop.kernel_f32();
  const realf_t inv_ng =
      1.0f / static_cast<realf_t>(gc.map().grid().size());
  pen.resize(npen * nb);
  f.forward(block, pen.data(), nb);
#pragma omp parallel for schedule(static) collapse(2)
  for (size_t i = 0; i < nb; ++i)
    for (size_t r = 0; r < npen; ++r)
      pen[i * npen + r] *= kernel[gidx[r]] * inv_ng;
  f.inverse(pen.data(), block, nb);
  xop.fft_count += static_cast<long>(2 * nb);
}

// Distributed gather_accumulate over all targets of one circulation round:
// one batched FP64 forward slab FFT, the sphere gather on owned pencils,
// one exact Allreduce over the grid communicator (disjoint support), then
// the serial out_col update. Batching across targets is bitwise-free
// because the batched transform equals per-array singles.
void gather_accumulate_slab(GridContext& gc, const ham::ExchangeOperator& xop,
                            const cplx* acc, size_t ntgt, la::MatC& out) {
  auto& f = gc.fft64();
  const size_t npen = gc.npencil();
  const size_t npw = gc.map().sphere().npw();
  const auto& sph = gc.sphere_idx();
  const auto& loc = gc.pencil_idx();
  const real_t ssph = gc.map().scale_to_sphere();

  std::vector<cplx> pen(npen * ntgt);
  f.forward(acc, pen.data(), ntgt);
  std::vector<cplx> coeffs(npw * ntgt, cplx(0.0));
  for (size_t j = 0; j < ntgt; ++j) {
    const cplx* pj = pen.data() + j * npen;
    cplx* cj = coeffs.data() + j * npw;
    for (size_t k = 0; k < sph.size(); ++k) cj[sph[k]] = pj[loc[k]] * ssph;
  }
  gc.grid().allreduce_sum(coeffs.data(), coeffs.size());

  const real_t a = -xop.options().alpha;
  for (size_t j = 0; j < ntgt; ++j) {
    cplx* oj = out.col(j);
    const cplx* cj = coeffs.data() + j * npw;
    for (size_t p = 0; p < npw; ++p) oj[p] += a * cj[p];
  }
}

// --- circulation bodies ----------------------------------------------------
// Structured exactly like exchange_dist's diag/mixed circulations, with the
// per-round apply built from the slab stage primitives: the loop nest
// (targets outer, batch_size source blocks inner) matches
// pair_accumulate_blocks / weighted_blocks line for line, so at pb = 1 the
// result is bit-identical to the serial operator and at fixed pb it is
// bit-identical to the 1-D band-parallel path for every pg.

template <typename CS>
la::MatC diag_circulation_slab(GridContext& gc,
                               const ham::ExchangeOperator& xop,
                               const la::MatC& src_local,
                               const std::vector<real_t>& d_all,
                               const la::MatC& tgt_local,
                               const BlockLayout& src_bands,
                               ExchangePattern pat) {
  const size_t nloc = gc.nreal();
  const size_t ntgt = tgt_local.cols();
  const size_t bs = std::max<size_t>(1, xop.options().batch_size);
  const bool compensated =
      std::is_same_v<CS, cplxf> &&
      xop.options().precision == Precision::kSingleCompensated;

  const std::vector<CS> mine = to_real_slab_batch<CS>(gc, src_local);
  const std::vector<CS> tgt_r = to_real_slab_single<CS>(gc, tgt_local);

  la::MatC out(tgt_local.rows(), ntgt, cplx(0.0));
  std::vector<CS> block(bs * nloc), pen;
  std::vector<cplx> acc(nloc * ntgt), comp(compensated ? nloc * ntgt : 0);
  std::vector<size_t> active;

  auto apply_block = [&](const CS* slab, int origin) {
    const size_t w = src_bands.count(origin);
    if (w == 0 || ntgt == 0) return;
    const real_t* d = d_all.data() + src_bands.offset(origin);
    active.clear();
    for (size_t i = 0; i < w; ++i)
      if (d[i] != 0.0) active.push_back(i);
    if (active.empty()) return;
    std::fill(acc.begin(), acc.end(), cplx(0.0));
    std::fill(comp.begin(), comp.end(), cplx(0.0));
    for (size_t j = 0; j < ntgt; ++j) {
      for (size_t i0 = 0; i0 < active.size(); i0 += bs) {
        const size_t nb = std::min(bs, active.size() - i0);
        xop.pair_form_block(slab, active.data() + i0, nb,
                            tgt_r.data() + j * nloc, block.data(), nloc);
        kernel_filter_slab(gc, xop, block.data(), nb, pen);
        xop.accumulate_block(slab, active.data() + i0, d, nb, block.data(),
                             acc.data() + j * nloc,
                             compensated ? comp.data() + j * nloc : nullptr,
                             nloc);
      }
    }
    gather_accumulate_slab(gc, xop, acc.data(), ntgt, out);
  };
  circulate_slabs(gc.band(), src_bands, nloc, mine, pat, apply_block,
                  circulation_executor(xop.options().backend));
  return out;
}

template <typename CS>
la::MatC mixed_circulation_slab(GridContext& gc,
                                const ham::ExchangeOperator& xop,
                                const la::MatC& src_local,
                                const la::MatC& theta_local,
                                const la::MatC& tgt_local,
                                const BlockLayout& src_bands,
                                ExchangePattern pat) {
  const size_t nloc = gc.nreal();
  const size_t ntgt = tgt_local.cols();
  const size_t w_me = src_local.cols();
  const size_t bs = std::max<size_t>(1, xop.options().batch_size);
  const bool compensated =
      std::is_same_v<CS, cplxf> &&
      xop.options().precision == Precision::kSingleCompensated;

  // Payload per band: [phi_k | theta_k] slab pair, as in the 1-D path.
  const std::vector<CS> phi_r = to_real_slab_batch<CS>(gc, src_local);
  const std::vector<CS> theta_r = to_real_slab_batch<CS>(gc, theta_local);
  std::vector<CS> mine(2 * w_me * nloc);
  for (size_t b = 0; b < w_me; ++b) {
    std::copy(phi_r.begin() + static_cast<long>(b * nloc),
              phi_r.begin() + static_cast<long>((b + 1) * nloc),
              mine.begin() + static_cast<long>(2 * b * nloc));
    std::copy(theta_r.begin() + static_cast<long>(b * nloc),
              theta_r.begin() + static_cast<long>((b + 1) * nloc),
              mine.begin() + static_cast<long>((2 * b + 1) * nloc));
  }

  const std::vector<CS> tgt_r = to_real_slab_single<CS>(gc, tgt_local);

  la::MatC out(tgt_local.rows(), ntgt, cplx(0.0));
  std::vector<CS> phis, thetas, block(bs * nloc), pen;
  std::vector<cplx> acc(nloc * ntgt), comp(compensated ? nloc * ntgt : 0);
  std::vector<size_t> idx;

  auto apply_block = [&](const CS* slab, int origin) {
    const size_t w = src_bands.count(origin);
    if (w == 0 || ntgt == 0) return;
    phis.resize(w * nloc);
    thetas.resize(w * nloc);
    for (size_t b = 0; b < w; ++b) {
      std::copy(slab + 2 * b * nloc, slab + (2 * b + 1) * nloc,
                phis.begin() + static_cast<long>(b * nloc));
      std::copy(slab + (2 * b + 1) * nloc, slab + (2 * b + 2) * nloc,
                thetas.begin() + static_cast<long>(b * nloc));
    }
    // Every source participates (the weight carries the sigma contraction).
    idx.resize(w);
    for (size_t i = 0; i < w; ++i) idx[i] = i;
    std::fill(acc.begin(), acc.end(), cplx(0.0));
    std::fill(comp.begin(), comp.end(), cplx(0.0));
    for (size_t j = 0; j < ntgt; ++j) {
      for (size_t i0 = 0; i0 < w; i0 += bs) {
        const size_t nb = std::min(bs, w - i0);
        xop.pair_form_block(phis.data(), idx.data() + i0, nb,
                            tgt_r.data() + j * nloc, block.data(), nloc);
        kernel_filter_slab(gc, xop, block.data(), nb, pen);
        xop.accumulate_weighted_block(
            thetas.data(), idx.data() + i0, nb, block.data(),
            acc.data() + j * nloc,
            compensated ? comp.data() + j * nloc : nullptr, nloc);
      }
    }
    gather_accumulate_slab(gc, xop, acc.data(), ntgt, out);
  };
  circulate_slabs(gc.band(), src_bands, 2 * nloc, mine, pat, apply_block,
                  circulation_executor(xop.options().backend));
  return out;
}

}  // namespace

la::MatC exchange_apply_slab_local(GridContext& gc,
                                   const ham::ExchangeOperator& xop,
                                   const la::MatC& src_local,
                                   const std::vector<real_t>& d_local,
                                   const la::MatC& tgt_local,
                                   const BlockLayout& src_bands,
                                   ExchangePattern pat) {
  const int pb = gc.band().size();
  const int me = gc.band().rank();
  PTIM_CHECK(src_bands.parts() == pb);
  PTIM_CHECK(d_local.size() == src_local.cols());
  PTIM_CHECK(src_local.cols() == src_bands.count(me));

  // Occupation slices are shared over the band communicator, FP64 always
  // (identical to the 1-D path, so the allgathered vector matches bitwise).
  std::vector<size_t> counts(static_cast<size_t>(pb));
  for (int r = 0; r < pb; ++r)
    counts[static_cast<size_t>(r)] = src_bands.count(r);
  std::vector<real_t> d(src_bands.total());
  gc.band().allgatherv(d_local.data(), d_local.size(), d.data(), counts);

  if (xop.options().precision != Precision::kDouble)
    return diag_circulation_slab<cplxf>(gc, xop, src_local, d, tgt_local,
                                        src_bands, pat);
  return diag_circulation_slab<cplx>(gc, xop, src_local, d, tgt_local,
                                     src_bands, pat);
}

la::MatC exchange_apply_slab_mixed_local(
    GridContext& gc, const ham::ExchangeOperator& xop,
    const la::MatC& src_local, const la::MatC& theta_local,
    const la::MatC& tgt_local, const BlockLayout& src_bands,
    ExchangePattern pat) {
  PTIM_CHECK(src_bands.parts() == gc.band().size());
  PTIM_CHECK(src_local.cols() == src_bands.count(gc.band().rank()));
  PTIM_CHECK(theta_local.cols() == src_local.cols());

  if (xop.options().precision != Precision::kDouble)
    return mixed_circulation_slab<cplxf>(gc, xop, src_local, theta_local,
                                         tgt_local, src_bands, pat);
  return mixed_circulation_slab<cplx>(gc, xop, src_local, theta_local,
                                      tgt_local, src_bands, pat);
}

}  // namespace ptim::dist
