#pragma once
// Slab-aware exact exchange: the 2-D band x grid decomposition of the
// distributed Fock operator (paper Secs. IV-B/VI; the G-space dimension of
// Jia/Wang/Lin's Summit PT-TDDFT and the GPU-SPARC hybrid code).
//
// A world of pb*pg ranks is a ProcessGrid: bands are BlockLayout-split
// over the pb rows exactly as in the 1-D band-parallel path, and the
// real-space grid is z-slab-split over the pg columns. Source orbitals
// circulate as z-SLAB portions around the BAND communicator (payload
// w * nreal instead of w * Ng — the pg-fold reduction in ring bytes),
// while every pair FFT runs as a distributed slab transform
// (fft::DistFft3) across the GRID communicator and the pointwise
// pair-form / kernel-filter / accumulate stages run on each rank's slab
// through the ExchangeOperator stage primitives. The final sphere gather
// is a distributed forward transform plus one exact (disjoint-support)
// Allreduce of the sphere coefficients over the grid communicator.
//
// Bit-identity guarantees (pinned in tests/test_grid2d.cpp):
//  * pb = 1: any pg reproduces the SERIAL operator bit-for-bit (one apply
//    visits all sources in serial order; the distributed FFT is
//    bit-identical to the serial engine),
//  * fixed pb: every pg produces bit-identical results (the per-slab
//    arithmetic is pointwise and the cross-rank assembly touches disjoint
//    grid points), so pg > 1 runs match the 1-D band-parallel operator,
//  * all three circulation patterns x {FP64, FP32} x backend {sync,
//    serial, async} agree bitwise, reusing the PR-4 stream pipeline for
//    the band-ring overlap unchanged.

#include <memory>
#include <vector>

#include "dist/layout.hpp"
#include "dist/pattern.hpp"
#include "fft/dist_fft.hpp"
#include "ham/exchange.hpp"
#include "ptmpi/comm.hpp"

namespace ptim::dist {

// Per-rank context of the 2-D layout: the split communicators, the FP64 and
// FP32 distributed FFT twins over the wavefunction grid, and the pencil
// scatter plan of the sphere coefficients. Construction is collective over
// the world communicator (it performs the two Comm::splits).
class GridContext {
 public:
  GridContext(ptmpi::Comm& world, ProcessGrid grid,
              const pw::SphereGridMap& map);

  const ProcessGrid& process_grid() const { return pgrid_; }
  ptmpi::Comm& band() { return band_; }   // pb ranks, same grid column
  ptmpi::Comm& grid() { return grid_; }   // pg ranks, same band row
  int band_rank() const { return band_.rank(); }
  int grid_rank() const { return grid_.rank(); }

  const pw::SphereGridMap& map() const { return *map_; }
  fft::DistFft3& fft64() { return fft64_; }
  fft::DistFft3f& fft32() { return fft32_; }

  // z-slab elements per orbital on this rank (identical for both scalars).
  size_t nreal() const { return fft64_.nreal(); }
  size_t npencil() const { return fft64_.npencil(); }

  // Sphere scatter plan: sphere coefficient sphere_idx()[k] lives at
  // pencil-local index pencil_idx()[k] of this rank's y pencil. Every
  // sphere index appears on exactly one grid-column rank.
  const std::vector<size_t>& sphere_idx() const { return sph_idx_; }
  const std::vector<size_t>& pencil_idx() const { return pen_idx_; }
  // Global grid index of each pencil-local element (kernel table lookups).
  const std::vector<size_t>& pencil_global() const { return pen_global_; }

 private:
  ProcessGrid pgrid_;
  ptmpi::Comm band_;
  ptmpi::Comm grid_;
  const pw::SphereGridMap* map_;
  fft::DistFft3 fft64_;
  fft::DistFft3f fft32_;
  std::vector<size_t> sph_idx_, pen_idx_, pen_global_;
};

// Diagonal-occupation exchange on the 2-D layout: this rank holds the band
// block src_local (npw x src_bands.count(band_rank), sphere coefficients —
// replicated within a band row) with occupations d_local, and a local
// target block. Collective over the whole pb x pg world. Returns
// alpha*Vx[src,d]*tgt_local (npw x tgt_local.cols()), identical on every
// rank of a band row.
la::MatC exchange_apply_slab_local(GridContext& gc,
                                   const ham::ExchangeOperator& xop,
                                   const la::MatC& src_local,
                                   const std::vector<real_t>& d_local,
                                   const la::MatC& tgt_local,
                                   const BlockLayout& src_bands,
                                   ExchangePattern pat);

// Mixed-state (full sigma) exchange on the 2-D layout; theta_local carries
// the sigma contraction exactly as in exchange_apply_distributed_mixed_local
// and [phi | theta] slab pairs circulate around the band ring.
la::MatC exchange_apply_slab_mixed_local(
    GridContext& gc, const ham::ExchangeOperator& xop,
    const la::MatC& src_local, const la::MatC& theta_local,
    const la::MatC& tgt_local, const BlockLayout& src_bands,
    ExchangePattern pat);

}  // namespace ptim::dist
