#pragma once
// Band-parallel view of the Kohn-Sham Hamiltonian: the layer that turns the
// standalone dist/ kernels into the production PT-IM path (paper Secs.
// IV-B/IV-C). Every ptmpi rank owns a BlockLayout band slice of {Phi,
// sigma-contracted quantities}; nb x nb matrices (sigma, overlaps, M =
// Phi^H H Phi) stay replicated but are only ever produced from Allreduced
// data, so they are bit-identical on every rank.
//
// Communication map (the measured analogue of Table I):
//  * exact exchange          — Bcast / Ring / Async-Ring slab circulation
//                              with the batched-FFT pair kernel inside each
//                              round (dist/exchange_dist),
//  * wavefunction rotations  — the same circulation over coefficient slabs
//                              (dist/rotate),
//  * overlaps S, M           — band->grid Alltoallv transpose + partial
//                              gemm + Allreduce, optionally staged through
//                              the node-shared window (dist/transpose),
//  * density                 — local band accumulation + grid Allreduce,
//  * occupations / gathers   — Allgatherv.
//
// Each rank must bring its OWN ham::Hamiltonian instance (the Hamiltonian
// carries mutable density/exchange state); all instances see identical
// densities because rho is Allreduced before set_density.

#include <memory>
#include <vector>

#include "dist/layout.hpp"
#include "dist/pattern.hpp"
#include "dist/slab_exchange.hpp"
#include "ham/hamiltonian.hpp"
#include "ptmpi/comm.hpp"

namespace ptim::dist {

struct BandHamOptions {
  ExchangePattern pattern = ExchangePattern::kAsyncRing;
  // Stage overlap reductions through the MPI-3-style node-shared window
  // before the Allreduce (paper Fig. 6).
  bool overlap_shm = false;
  // 2-D band x grid process layout. With grid.pg == 1 (the default) the
  // construction is a bitwise no-op against the pure band-parallel path:
  // the world communicator IS the band communicator and no split happens.
  // With pg > 1 the world splits into pb band communicators (bands and all
  // nb x nb collectives live there) and pg grid communicators (the
  // real-space grid is z-slab-distributed and exact exchange runs through
  // dist/slab_exchange). Everything outside exchange is computed
  // redundantly (and therefore bit-identically) by the pg column replicas.
  ProcessGrid grid{};
};

// Mirrors ham::ExchangeMode for the band-distributed state.
enum class BandExchangeMode { kNone, kMixedNaive, kMixedDiag, kAce };

class BandDistributedHamiltonian {
 public:
  BandDistributedHamiltonian(ptmpi::Comm& c, ham::Hamiltonian& h,
                             size_t nbands, BandHamOptions opt = {});

  // The BAND communicator: the pb ranks this instance's band slices and
  // nb x nb collectives are distributed over. Equal to the construction
  // communicator when grid.pg == 1.
  ptmpi::Comm& comm() { return *c_; }
  ham::Hamiltonian& local() { return *h_; }
  const BlockLayout& bands() const { return bands_; }
  const BlockLayout& rows() const { return rows_; }
  const BandHamOptions& options() const { return opt_; }
  // Non-null iff grid.pg > 1 (the 2-D layout is active).
  GridContext* grid_context() { return gridctx_.get(); }

  // --- band-block collectives -----------------------------------------
  // Full nb x nb overlap A^H B from band blocks, replicated on every rank.
  // A == B transposes the argument only once.
  la::MatC overlap(const la::MatC& a_local, const la::MatC& b_local);
  // S = A^H A and M = A^H B from a single transpose of each argument — the
  // fixed-point loop's pair, where A (the midpoint wavefunction) is the
  // largest payload in the step.
  void overlap_pair(const la::MatC& a_local, const la::MatC& b_local,
                    la::MatC* aa, la::MatC* ab);
  // (A * R)[:, my bands] for replicated nb x nb R.
  la::MatC rotate(const la::MatC& a_local, const la::MatC& r);
  // A <- A L^{-H} (replicated lower-triangular L), serial-identical rows.
  la::MatC solve_upper_right(const la::MatC& l, const la::MatC& a_local);

  // --- density ---------------------------------------------------------
  // rho = 2 Re sum_b theta_b(r) conj(phi_b(r)) with theta = Phi sigma;
  // local bands accumulated, then Allreduced (identical on every rank).
  // theta_out (optional) receives the circulated theta block so callers can
  // reuse it (the baseline exchange needs the same contraction).
  std::vector<real_t> density(const la::MatC& phi_local, const la::MatC& sigma,
                              la::MatC* theta_out = nullptr);
  void set_density(const std::vector<real_t>& rho) { h_->set_density(rho); }

  // --- exchange configuration (the P in Vx[P]) -------------------------
  void set_exchange_none() { xmode_ = BandExchangeMode::kNone; }
  // Alg. 2 baseline: keep the full sigma, carry it as theta = Phi sigma.
  // Pass a precomputed theta block (e.g. from density()) to skip the ring
  // circulation; when absent it is formed here.
  void set_exchange_source_mixed_naive(const la::MatC& phi_local,
                                       const la::MatC& sigma,
                                       la::MatC theta_local = {});
  // Diag optimization: sigma = Q D Q^H once, circulate rotated orbitals.
  void set_exchange_source_mixed_diag(const la::MatC& phi_local,
                                      la::MatC sigma);
  // ACE build from (phi, sigma): distributed exchange application on the
  // rotated orbitals, Cholesky compression, xi = W L^{-H}. Returns the
  // exchange-energy estimate (replicated). Switches the mode to kAce.
  real_t build_ace(const la::MatC& phi_local, la::MatC sigma);
  BandExchangeMode exchange_mode() const { return xmode_; }

  // --- application ------------------------------------------------------
  // hphi_local = H * phi_local (semilocal on the local block + the
  // configured distributed exchange term). Collective call.
  void apply(const la::MatC& phi_local, la::MatC& hphi_local);

 private:
  // Exchange applications routed through the configured layout (1-D band
  // circulation, or the 2-D slab path when grid.pg > 1).
  la::MatC exchange_diag(const la::MatC& src_local,
                         const std::vector<real_t>& d_local,
                         const la::MatC& tgt_local);
  la::MatC exchange_mixed(const la::MatC& src_local,
                          const la::MatC& theta_local,
                          const la::MatC& tgt_local);

  std::unique_ptr<GridContext> gridctx_;  // pg > 1 only; owns the splits
  ptmpi::Comm* c_;  // band communicator (world when pg == 1)
  ham::Hamiltonian* h_;
  BlockLayout bands_;
  BlockLayout rows_;
  BandHamOptions opt_;

  BandExchangeMode xmode_ = BandExchangeMode::kNone;
  la::MatC xsrc_local_;    // rotated orbitals (diag) or raw Phi (naive)
  la::MatC xtheta_local_;  // Phi*sigma block (naive mode)
  std::vector<real_t> xocc_local_;  // eigen-occupation slice (diag mode)
  la::MatC xi_local_;      // ACE projector block
};

}  // namespace ptim::dist
