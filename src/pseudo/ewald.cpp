#include "pseudo/ewald.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ptim::pseudo {

real_t ewald_energy(const AtomList& atoms, const grid::Lattice& lattice,
                    real_t eta) {
  const size_t na = atoms.natoms();
  const real_t z = atoms.species.zval;
  const real_t omega = lattice.volume();
  const real_t qtot = z * static_cast<real_t>(na);

  if (eta <= 0.0) {
    // Balanced choice: decay lengths of both sums comparable.
    eta = kPi * std::pow(static_cast<real_t>(na) / (omega * omega), 1.0 / 3.0);
    eta = std::max(eta, 0.05);
  }
  const real_t sqrt_eta = std::sqrt(eta);

  // Real-space sum over images until erfc cuts off.
  const real_t rcut = 6.5 / sqrt_eta;
  int nimg[3];
  for (int d = 0; d < 3; ++d) {
    const real_t alen = std::sqrt(grid::norm2(lattice.avec(d)));
    nimg[d] = static_cast<int>(std::ceil(rcut / alen)) + 1;
  }
  real_t e_real = 0.0;
#pragma omp parallel for reduction(+ : e_real) schedule(static)
  for (size_t a = 0; a < na; ++a) {
    for (size_t b = 0; b < na; ++b) {
      for (int l0 = -nimg[0]; l0 <= nimg[0]; ++l0)
        for (int l1 = -nimg[1]; l1 <= nimg[1]; ++l1)
          for (int l2 = -nimg[2]; l2 <= nimg[2]; ++l2) {
            if (a == b && l0 == 0 && l1 == 0 && l2 == 0) continue;
            const grid::Vec3 shift =
                static_cast<real_t>(l0) * lattice.avec(0) +
                static_cast<real_t>(l1) * lattice.avec(1) +
                static_cast<real_t>(l2) * lattice.avec(2);
            const grid::Vec3 d3 =
                atoms.positions[a] - atoms.positions[b] - shift;
            const real_t r = std::sqrt(grid::norm2(d3));
            if (r > rcut) continue;
            e_real += 0.5 * z * z * std::erfc(sqrt_eta * r) / r;
          }
    }
  }

  // Reciprocal-space sum.
  const real_t gcut2 = 4.0 * eta * 6.5 * 6.5;
  int ngv[3];
  for (int d = 0; d < 3; ++d) {
    const real_t blen = std::sqrt(grid::norm2(lattice.bvec(d)));
    ngv[d] = static_cast<int>(std::ceil(std::sqrt(gcut2) / blen)) + 1;
  }
  real_t e_recip = 0.0;
#pragma omp parallel for reduction(+ : e_recip) schedule(static) collapse(2)
  for (int f0 = -ngv[0]; f0 <= ngv[0]; ++f0) {
    for (int f1 = -ngv[1]; f1 <= ngv[1]; ++f1) {
      for (int f2 = -ngv[2]; f2 <= ngv[2]; ++f2) {
        if (f0 == 0 && f1 == 0 && f2 == 0) continue;
        const grid::Vec3 g = lattice.gvec(f0, f1, f2);
        const real_t g2 = grid::norm2(g);
        if (g2 > gcut2) continue;
        const cplx s = structure_factor(atoms, g) * z;
        e_recip += kTwoPi / omega * std::exp(-g2 / (4.0 * eta)) / g2 *
                   std::norm(s);
      }
    }
  }

  const real_t e_self = -sqrt_eta / std::sqrt(kPi) * z * z * static_cast<real_t>(na);
  const real_t e_bg = -kPi / (2.0 * omega * eta) * qtot * qtot;
  return e_real + e_recip + e_self + e_bg;
}

}  // namespace ptim::pseudo
