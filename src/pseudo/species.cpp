#include "pseudo/species.hpp"

#include <cmath>

namespace ptim::pseudo {

real_t Species::vloc_g(real_t g2, real_t omega) const {
  const real_t a = alpha;
  const real_t gauss = std::exp(-g2 / (4.0 * a));
  const real_t coul = -kFourPi * zval / g2;
  const real_t pref = std::pow(kPi / a, 1.5);
  const real_t shortr = pref * (c0 + c2 * (1.5 / a - g2 / (4.0 * a * a)));
  return gauss * (coul + shortr) / omega;
}

real_t Species::vloc_g0(real_t omega) const {
  const real_t a = alpha;
  // Finite part of the screened Coulomb at G = 0 is +pi Z / a.
  const real_t pref = std::pow(kPi / a, 1.5);
  return (kPi * zval / a + pref * (c0 + c2 * 1.5 / a)) / omega;
}

Species Species::silicon_ah() {
  Species s;
  s.symbol = "Si";
  s.zval = 4.0;
  s.alpha = 0.6102;   // bohr^-2 (Appelbaum-Hamann)
  s.c0 = 3.042 / 2.0;  // Ry -> Ha
  s.c2 = -1.372 / 2.0;
  return s;
}

Species Species::hydrogen_soft() {
  Species s;
  s.symbol = "H";
  s.zval = 1.0;
  s.alpha = 1.0;
  s.c0 = 0.0;
  s.c2 = 0.0;
  return s;
}

}  // namespace ptim::pseudo
