#include "pseudo/atoms.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ptim::pseudo {

real_t silicon_alat_bohr() { return 5.43 * units::angstrom_in_bohr; }

AtomList silicon_supercell(int nx, int ny, int nz, grid::Lattice* lattice) {
  PTIM_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  const real_t a = silicon_alat_bohr();
  *lattice = grid::Lattice::orthorhombic(a * nx, a * ny, a * nz);

  // 8-atom conventional diamond-cubic basis (fractional coords of one cell).
  static const real_t basis[8][3] = {
      {0.00, 0.00, 0.00}, {0.50, 0.50, 0.00}, {0.50, 0.00, 0.50},
      {0.00, 0.50, 0.50}, {0.25, 0.25, 0.25}, {0.75, 0.75, 0.25},
      {0.75, 0.25, 0.75}, {0.25, 0.75, 0.75}};

  AtomList atoms;
  atoms.species = Species::silicon_ah();
  atoms.positions.reserve(static_cast<size_t>(8 * nx * ny * nz));
  for (int ix = 0; ix < nx; ++ix)
    for (int iy = 0; iy < ny; ++iy)
      for (int iz = 0; iz < nz; ++iz)
        for (const auto& b : basis)
          atoms.positions.push_back(
              {a * (b[0] + ix), a * (b[1] + iy), a * (b[2] + iz)});
  return atoms;
}

cplx structure_factor(const AtomList& atoms, const grid::Vec3& g) {
  cplx s = 0.0;
  for (const auto& tau : atoms.positions) {
    const real_t phase = -grid::dot(g, tau);
    s += cplx{std::cos(phase), std::sin(phase)};
  }
  return s;
}

}  // namespace ptim::pseudo
