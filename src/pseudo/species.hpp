#pragma once
// Atomic species carrying the local pseudopotential parameters.
//
// The paper uses SG15 ONCV pseudopotentials; those data files are not
// available offline, so we substitute the Appelbaum–Hamann empirical local
// pseudopotential for silicon (PRB 8, 1777 (1973)), which reproduces a
// gapped Si-like spectrum and exercises the identical code structure
// (V_loc(G) * structure factor, optional nonlocal projector).
//
// AH form (Rydberg units, converted to Hartree here):
//   V(r) = -(2Z/r) erf(sqrt(alpha) r) + (v1 + v2 r^2) e^{-alpha r^2}.

#include <string>

#include "common/types.hpp"

namespace ptim::pseudo {

struct Species {
  std::string symbol;
  real_t zval = 0.0;   // valence charge
  real_t alpha = 0.0;  // Gaussian screening (bohr^-2)
  real_t c0 = 0.0;     // short-range constant (Hartree)
  real_t c2 = 0.0;     // short-range r^2 coefficient (Hartree/bohr^2)

  // Atom-centered form factor: (1/Omega) * FT of V(r) at |G|^2 = g2, G != 0.
  //   e^{-g2/4a} [ -4 pi Z/g2 + (pi/a)^{3/2} (c0 + c2 (3/(2a) - g2/(4a^2))) ] / Omega
  real_t vloc_g(real_t g2, real_t omega) const;
  // Finite G = 0 limit with the divergent -4 pi Z/G^2 removed (cancels
  // against the Hartree G = 0 term under the jellium convention).
  real_t vloc_g0(real_t omega) const;

  static Species silicon_ah();
  // A soft one-electron test species (Gaussian-screened proton-like),
  // handy for molecule-in-a-box tests of the length-gauge laser coupling.
  static Species hydrogen_soft();
};

}  // namespace ptim::pseudo
