#pragma once
// Atomic configuration: species + Cartesian positions in the cell, plus
// builders for the paper's silicon supercells (nx x ny x nz conventional
// 8-atom diamond-cubic cells, a = 5.43 Angstrom).

#include <vector>

#include "grid/lattice.hpp"
#include "pseudo/species.hpp"

namespace ptim::pseudo {

struct AtomList {
  Species species;                   // single-species systems (paper: Si)
  std::vector<grid::Vec3> positions;  // Cartesian, bohr

  size_t natoms() const { return positions.size(); }
  real_t total_charge() const {
    return species.zval * static_cast<real_t>(natoms());
  }
};

// Conventional diamond-cubic silicon lattice constant in bohr.
real_t silicon_alat_bohr();

// nx x ny x nz supercell of the 8-atom conventional cell. Returns the
// lattice via out-parameter and the atom list (8*nx*ny*nz atoms).
AtomList silicon_supercell(int nx, int ny, int nz, grid::Lattice* lattice);

// Structure factor S(G) = sum_a e^{-i G . tau_a} for an arbitrary G.
cplx structure_factor(const AtomList& atoms, const grid::Vec3& g);

}  // namespace ptim::pseudo
