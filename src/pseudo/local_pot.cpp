#include "pseudo/local_pot.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ptim::pseudo {

std::vector<real_t> build_local_potential(const AtomList& atoms,
                                          const grid::FftGrid& g) {
  const size_t ng = g.size();
  const real_t omega = g.lattice().volume();
  const auto& dims = g.dims();
  std::vector<cplx> vg(ng);
#pragma omp parallel for schedule(static)
  for (size_t i = 0; i < ng; ++i) {
    // On even grids the Nyquist plane is its own inversion partner; keep
    // V(r) exactly real by dropping those (tiny, Gaussian-damped) modes.
    const auto f = g.freq3(i);
    bool nyquist = false;
    for (int d = 0; d < 3; ++d) {
      const auto n = static_cast<long>(dims[static_cast<size_t>(d)]);
      if (n % 2 == 0 && f[static_cast<size_t>(d)] == n / 2) nyquist = true;
    }
    if (nyquist) {
      vg[i] = 0.0;
      continue;
    }
    const real_t g2 = g.g2()[i];
    const real_t form = (g2 < 1e-12) ? atoms.species.vloc_g0(omega)
                                     : atoms.species.vloc_g(g2, omega);
    vg[i] = form * structure_factor(atoms, g.gvec(i));
  }
  // V(r_j) = sum_G V(G) e^{i G r_j}: unscaled inverse == Ng * scaled inverse.
  g.fft().inverse(vg.data());
  std::vector<real_t> v(ng);
  const auto scale = static_cast<real_t>(ng);
  real_t max_imag = 0.0;
  for (size_t j = 0; j < ng; ++j) {
    v[j] = std::real(vg[j]) * scale;
    max_imag = std::max(max_imag, std::abs(std::imag(vg[j]) * scale));
  }
  PTIM_CHECK_MSG(max_imag < 1e-8, "local potential has imaginary residue "
                                      << max_imag);
  return v;
}

}  // namespace ptim::pseudo
