#pragma once
// Ewald summation for the ion–ion energy of point charges in a neutralizing
// background. Constant for the fixed-ion rt-TDDFT runs of the paper, but
// required for meaningful absolute total energies.

#include "grid/lattice.hpp"
#include "pseudo/atoms.hpp"

namespace ptim::pseudo {

// eta: Ewald splitting parameter (bohr^-2); the result is eta-independent
// once real/reciprocal sums are converged (a property test checks this).
real_t ewald_energy(const AtomList& atoms, const grid::Lattice& lattice,
                    real_t eta = 0.0 /* 0 = auto */);

}  // namespace ptim::pseudo
