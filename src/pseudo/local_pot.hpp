#pragma once
// Assembly of the ionic local potential on a density grid:
//   V_loc(r) = sum_G V_at(|G|) S(G) e^{i G.r}
// evaluated with one inverse FFT.

#include <vector>

#include "grid/fft_grid.hpp"
#include "pseudo/atoms.hpp"

namespace ptim::pseudo {

// Real part of the lattice local potential on every grid point (the
// imaginary part vanishes for real form factors; we assert it is tiny).
std::vector<real_t> build_local_potential(const AtomList& atoms,
                                          const grid::FftGrid& g);

}  // namespace ptim::pseudo
