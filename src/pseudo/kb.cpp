#include "pseudo/kb.hpp"

#include <cmath>

#include "la/blas.hpp"

namespace ptim::pseudo {

KbProjector::KbProjector(const AtomList& atoms, const grid::GSphere& sphere,
                         real_t rc, real_t d0)
    : d0_(d0) {
  const size_t npw = sphere.npw();
  const size_t na = atoms.natoms();
  const real_t omega = sphere.lattice().volume();
  // Radial normalization: \int |b(r)|^2 dr = 1 for b(r) ~ e^{-r^2/(2 rc^2)}.
  const real_t norm = std::pow(kPi * rc * rc, 0.75) * 2.0 * std::sqrt(2.0);
  beta_.resize(npw, na);
#pragma omp parallel for schedule(static)
  for (size_t a = 0; a < na; ++a) {
    const auto& tau = atoms.positions[a];
    for (size_t i = 0; i < npw; ++i) {
      const real_t g2 = sphere.g2()[i];
      const real_t radial = norm * std::exp(-0.25 * g2 * rc * rc);
      const real_t phase = -grid::dot(sphere.gvec(i), tau);
      beta_(i, a) = radial / std::sqrt(omega) *
                    cplx{std::cos(phase), std::sin(phase)};
    }
  }
}

void KbProjector::apply(const la::MatC& phi, la::MatC& out) const {
  // p = beta^H * phi  (nproj x nband), out += d0 * beta * p.
  la::MatC p(beta_.cols(), phi.cols());
  la::gemm_cn(beta_, phi, p);
  la::gemm_nn(beta_, p, out, d0_, 1.0);
}

real_t KbProjector::energy(const la::MatC& phi,
                           const std::vector<real_t>& f) const {
  la::MatC p(beta_.cols(), phi.cols());
  la::gemm_cn(beta_, phi, p);
  real_t e = 0.0;
  for (size_t b = 0; b < phi.cols(); ++b) {
    real_t s = 0.0;
    for (size_t a = 0; a < beta_.cols(); ++a) s += std::norm(p(a, b));
    e += f[b] * d0_ * s;
  }
  return e;
}

}  // namespace ptim::pseudo
