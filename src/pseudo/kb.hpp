#pragma once
// Kleinman–Bylander separable nonlocal projector with a Gaussian radial
// shape (one s-channel per atom):
//   V_nl = sum_a |beta_a> D <beta_a|,
//   beta_a(G) = (1/sqrt(Omega)) * b(|G|) * e^{-i G . tau_a},
//   b(g) = (2 pi rc^2)^{3/4}-normalized Gaussian, exp(-g^2 rc^2 / 4).
//
// The SG15 ONCV projectors used in the paper need tabulated radial data we
// do not have offline; this analytic channel preserves the code structure
// (projector build, <beta|phi> inner products, rank-k update of H*Phi) and
// is disabled by default in the silicon runs.

#include <vector>

#include "grid/gsphere.hpp"
#include "la/matrix.hpp"
#include "pseudo/atoms.hpp"

namespace ptim::pseudo {

class KbProjector {
 public:
  // rc: projector radius (bohr); d0: channel strength (Hartree).
  KbProjector(const AtomList& atoms, const grid::GSphere& sphere, real_t rc,
              real_t d0);

  size_t nproj() const { return beta_.cols(); }
  real_t d0() const { return d0_; }
  const la::MatC& beta() const { return beta_; }

  // out += V_nl * phi for every column of phi (out must be npw x nband).
  void apply(const la::MatC& phi, la::MatC& out) const;

  // Nonlocal energy contribution sum_ij sigma_ji <phi_i|V_nl|phi_j> given
  // spin-summed occupations f (diagonal case).
  real_t energy(const la::MatC& phi, const std::vector<real_t>& f) const;

 private:
  la::MatC beta_;  // npw x natoms
  real_t d0_;
};

}  // namespace ptim::pseudo
