#include "netsim/experiments.hpp"

namespace ptim::netsim {

std::vector<Fig9Row> fig9_stepwise(const Platform& plat, size_t natoms,
                                   size_t nodes) {
  const SystemSize sys = SystemSize::silicon(natoms);
  const Variant ladder[] = {Variant::kBaseline, Variant::kDiag, Variant::kAce,
                            Variant::kRing, Variant::kAsyncRing};
  std::vector<Fig9Row> rows;
  double prev = 0.0, base = 0.0;
  for (const Variant v : ladder) {
    const StepCost c = predict_step(plat, sys, nodes, v);
    Fig9Row row;
    row.variant = v;
    row.step_seconds = c.total();
    if (rows.empty()) {
      base = prev = c.total();
      row.speedup_vs_prev = 1.0;
      row.speedup_vs_baseline = 1.0;
    } else {
      row.speedup_vs_prev = prev / c.total();
      row.speedup_vs_baseline = base / c.total();
      prev = c.total();
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<ScalingRow> fig10_strong(const Platform& plat, size_t natoms,
                                     const std::vector<size_t>& node_counts) {
  const SystemSize sys = SystemSize::silicon(natoms);
  std::vector<ScalingRow> rows;
  double t0 = 0.0;
  size_t n0 = 0;
  for (const size_t nodes : node_counts) {
    const StepCost c = predict_step(plat, sys, nodes, Variant::kAsyncRing);
    ScalingRow row;
    row.nodes = nodes;
    row.step_seconds = c.total();
    if (rows.empty()) {
      t0 = c.total();
      n0 = nodes;
      row.speedup = 1.0;
      row.parallel_efficiency = 1.0;
    } else {
      row.speedup = t0 / c.total();
      row.parallel_efficiency =
          row.speedup / (static_cast<double>(nodes) / static_cast<double>(n0));
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<WeakRow> fig11_weak(const Platform& plat,
                                const std::vector<size_t>& atom_counts,
                                size_t orbitals_per_rank) {
  std::vector<WeakRow> rows;
  double anchor_t = 0.0, anchor_n = 0.0;
  for (const size_t natoms : atom_counts) {
    const SystemSize sys = SystemSize::silicon(natoms);
    size_t ranks = sys.norbitals / orbitals_per_rank;
    size_t nodes = std::max<size_t>(
        1, ranks / static_cast<size_t>(plat.ranks_per_node));
    const StepCost c = predict_step(plat, sys, nodes, Variant::kAsyncRing);
    WeakRow row;
    row.natoms = natoms;
    row.nodes = nodes;
    row.step_seconds = c.total();
    const auto nn = static_cast<double>(sys.norbitals);
    if (rows.empty()) {
      anchor_t = c.total();
      anchor_n = nn;
      row.ideal_n2_seconds = c.total();
    } else {
      row.ideal_n2_seconds = anchor_t * (nn / anchor_n) * (nn / anchor_n);
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<Table1Row> table1_comm(const Platform& plat, size_t natoms,
                                   size_t nodes) {
  const SystemSize sys = SystemSize::silicon(natoms);
  std::vector<Table1Row> rows;
  for (const Variant v :
       {Variant::kAce, Variant::kRing, Variant::kAsyncRing}) {
    const StepCost c = predict_step(plat, sys, nodes, v);
    Table1Row row;
    row.variant = v;
    row.comm = c.comm;
    row.total_step = c.total();
    row.comm_ratio = c.comm_ratio();
    rows.push_back(row);
  }
  return rows;
}

}  // namespace ptim::netsim
