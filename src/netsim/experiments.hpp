#pragma once
// Experiment drivers: one function per paper artifact, each returning the
// rows the corresponding bench binary prints next to the published values.

#include <vector>

#include "netsim/model.hpp"

namespace ptim::netsim {

// Fig. 9: step-by-step improvement, 384-atom Si (240 ARM / 24 GPU nodes).
struct Fig9Row {
  Variant variant{};
  double step_seconds = 0.0;
  double speedup_vs_prev = 0.0;
  double speedup_vs_baseline = 0.0;
};
std::vector<Fig9Row> fig9_stepwise(const Platform& plat, size_t natoms,
                                   size_t nodes);

// Fig. 10: strong scaling (Async variant).
struct ScalingRow {
  size_t nodes = 0;
  double step_seconds = 0.0;
  double speedup = 0.0;           // vs the smallest node count
  double parallel_efficiency = 0.0;
};
std::vector<ScalingRow> fig10_strong(const Platform& plat, size_t natoms,
                                     const std::vector<size_t>& node_counts);

// Fig. 11: weak scaling; nodes chosen as orbitals/ranks_per_node/orbs_per_rank
// exactly as the paper prescribes (ARM: nodes = orbitals/4 -> 1 orbital per
// rank; GPU: nodes = orbitals/40 -> 10 orbitals per rank).
struct WeakRow {
  size_t natoms = 0;
  size_t nodes = 0;
  double step_seconds = 0.0;
  double ideal_n2_seconds = 0.0;  // O(N^2) reference through the first point
};
std::vector<WeakRow> fig11_weak(const Platform& plat,
                                const std::vector<size_t>& atom_counts,
                                size_t orbitals_per_rank);

// Table I: per-op MPI time, 1536 atoms (960 ARM / 96 GPU nodes) for the
// ACE (bcast), Ring and Async variants.
struct Table1Row {
  Variant variant{};
  CommBreakdown comm;
  double total_step = 0.0;
  double comm_ratio = 0.0;
};
std::vector<Table1Row> table1_comm(const Platform& plat, size_t natoms,
                                   size_t nodes);

}  // namespace ptim::netsim
