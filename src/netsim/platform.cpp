#include "netsim/platform.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ptim::netsim {

Platform Platform::fugaku_arm() {
  Platform p;
  p.name = "ARM (Fugaku, A64FX)";
  p.topology = Topology::kTorus6D;
  p.ranks_per_node = 4;   // one rank per CMG
  p.fft_rate = 25e9;      // sustained FFT rate per CMG (calibrated)
  p.gemm_rate = 180e9;    // sustained zgemm per CMG (peak 845 GF)
  p.mem_bw = 204e9;       // 80% of 256 GB/s HBM2 per CMG
  p.net_bw = 6.8e9;       // Tofu-D injection per rank
  p.latency = 2e-6;
  p.bcast_penalty = 2.29;       // calibrated: Table I Bcast/Sendrecv ARM
  p.allreduce_penalty = 1.5;
  p.a2a_latency = 15e-6;
  p.a2a_penalty = 2.0;
  p.gather_latency = 0.2e-6;
  p.overlap_eff = 0.33;         // Table I: Wait = 20.13 of Sendrecv 30.1
  p.baseline_loop_passes = 0.55;
  p.eff_half_bands = 1.63;      // fits the 40% compute-eff drop at 32x
  return p;
}

Platform Platform::gpu_a100() {
  Platform p;
  p.name = "GPU (A100 + Kunpeng-920)";
  p.topology = Topology::kFatTree;
  p.ranks_per_node = 4;   // one rank per A100
  p.fft_rate = 900e9;     // asymptotic cuFFT rate per A100
  p.fft_ng_half = 400e3;  // half-saturation grid size (calibrated)
  p.gemm_rate = 4e12;
  p.mem_bw = 1.3e12;      // 87% of 1.5 TB/s HBM2
  p.net_bw = 9.7e9;       // PCIe-staged, no GPUDirect (Sec. VIII-D)
  p.latency = 5e-6;
  p.bcast_penalty = 3.16;       // calibrated: Table I Bcast/Sendrecv GPU
  p.allreduce_penalty = 0.7;
  p.a2a_latency = 15e-6;
  p.a2a_penalty = 10.0;
  p.gather_latency = 0.2e-6;
  p.overlap_eff = 0.51;         // Table I: Wait = 10.1 of Sendrecv 20.54
  p.baseline_loop_passes = 0.19;
  p.eff_half_bands = 14.0;      // fits the 26% compute-eff drop at 16x
  return p;
}

SystemSize SystemSize::silicon(size_t natoms, real_t extra_per_atom) {
  PTIM_CHECK(natoms >= 8);
  SystemSize s;
  s.natoms = natoms;
  const size_t nelec = 4 * natoms;
  s.norbitals = nelec / 2 +
                static_cast<size_t>(std::lround(extra_per_atom *
                                                static_cast<real_t>(natoms)));
  // Anchors from the paper: 1536 atoms -> Ng = 60*90*120 = 648000,
  // density grid 8x, and npw ~ 0.48 * Ng at the 10 Ha cutoff.
  s.ng_wfc = static_cast<size_t>(648000.0 * static_cast<real_t>(natoms) /
                                 1536.0);
  s.ng_den = 8 * s.ng_wfc;
  s.npw = static_cast<size_t>(0.48 * static_cast<real_t>(s.ng_wfc));
  return s;
}

}  // namespace ptim::netsim
