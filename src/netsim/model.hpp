#pragma once
// Analytic per-time-step cost model of the PT-IM variants, driven by
// operation counts taken from the same algorithm structure as the real
// solver (src/td, src/dist). This regenerates the paper's large-scale
// results: step-by-step speedups (Fig. 9), strong/weak scaling
// (Figs. 10/11) and the MPI time breakdown (Table I).
//
// Variant ladder (cumulative, exactly the paper's):
//   kBaseline  — naive mixed-state exchange and density, Bcast circulation
//   kDiag      — occupation-matrix diagonalization (N^2 pair cost)
//   kAce       — ACE double loop: 5 exact Vx per step instead of 25
//   kRing      — ACE + ring point-to-point circulation
//   kAsyncRing — ACE + asynchronous ring (partial comm/comp overlap)

#include <map>
#include <string>

#include "netsim/platform.hpp"

namespace ptim::netsim {

enum class Variant { kBaseline, kDiag, kAce, kRing, kAsyncRing };

const char* variant_name(Variant v);

struct CommBreakdown {
  double alltoallv = 0.0;
  double sendrecv = 0.0;
  double wait = 0.0;
  double allgatherv = 0.0;
  double allreduce = 0.0;
  double bcast = 0.0;
  double total() const {
    return alltoallv + sendrecv + wait + allgatherv + allreduce + bcast;
  }
};

struct ComputeBreakdown {
  double exchange = 0.0;   // pair FFTs + accumulation (or naive triple loop)
  double ace_gemm = 0.0;   // ACE surrogate applications in the inner SCF
  double density = 0.0;
  double local_h = 0.0;    // kinetic + dense-grid local potential
  double subspace = 0.0;   // overlaps, projector, sigma ops, diag, ortho
  double mixing = 0.0;
  double total() const {
    return exchange + ace_gemm + density + local_h + subspace + mixing;
  }
};

struct StepCost {
  Variant variant{};
  size_t nodes = 0;
  size_t ranks = 0;
  size_t nloc = 0;
  ComputeBreakdown compute;
  CommBreakdown comm;
  double total() const { return compute.total() + comm.total(); }
  double comm_ratio() const { return comm.total() / total(); }
};

// SCF structure constants (paper Sec. VI: ~25 plain SCF iterations; with
// ACE ~5 outer x ~13 inner).
struct ScfCounts {
  int plain_scf = 25;
  int outer = 5;
  int inner_per_outer = 13;
};

// Predict one 50-as PT-IM time step.
StepCost predict_step(const Platform& plat, const SystemSize& sys,
                      size_t nodes, Variant v, ScfCounts counts = {});

}  // namespace ptim::netsim
