#include "netsim/memory.hpp"

#include <algorithm>

namespace ptim::netsim {

MemoryFootprint memory_per_rank(const Platform& plat, const SystemSize& sys,
                                size_t nodes, bool use_shm,
                                int anderson_history, int grid_columns) {
  MemoryFootprint m;
  const double ranks =
      static_cast<double>(nodes) * static_cast<double>(plat.ranks_per_node);
  const double n = static_cast<double>(sys.norbitals);
  const double npw = static_cast<double>(sys.npw);
  const double pg = std::max(1.0, static_cast<double>(grid_columns));
  // Bands are distributed over the ranks / pg band rows of the 2-D layout.
  const double nloc = std::max(1.0, n / std::max(1.0, ranks / pg));
  const double c16 = 16.0;  // complex double

  // Band-distributed orbitals: Phi_n, Phi_{n+1}, midpoint, H*Phi, plus the
  // Anderson history of the local block (x and f stacks).
  const double wf_copies = 4.0 + 2.0 * anderson_history;
  m.wavefunctions = wf_copies * c16 * npw * nloc;

  // Real-space storage: density/potentials on the dense grid (real,
  // replicated per column), exchange slabs (current + incoming) on the
  // wavefunction grid — z-slab-distributed over the pg grid columns.
  m.realspace = 8.0 * 6.0 * static_cast<double>(sys.ng_den) +
                c16 * 2.0 * static_cast<double>(sys.ng_wfc) * nloc / pg;

  // Replicated square matrices: sigma (3 time levels), S, M, plus the
  // Anderson sigma history — the non-scalable block of Sec. IV-B3.
  const double nsq = (5.0 + 2.0 * anderson_history) * c16 * n * n;
  m.square_matrices =
      use_shm ? nsq / static_cast<double>(plat.ranks_per_node) : nsq;

  // ACE xi block (band-distributed) for the two operators.
  m.ace = 2.0 * c16 * npw * nloc;
  return m;
}

size_t max_atoms_for_memory(const Platform& plat, size_t nodes,
                            double bytes_per_rank, bool use_shm) {
  size_t best = 0;
  for (size_t atoms = 8; atoms <= 65536; atoms += 8) {
    const SystemSize sys = SystemSize::silicon(atoms);
    if (memory_per_rank(plat, sys, nodes, use_shm).total() <= bytes_per_rank)
      best = atoms;
    else
      break;
  }
  return best;
}

}  // namespace ptim::netsim
