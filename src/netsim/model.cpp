#include "netsim/model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptim::netsim {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kBaseline: return "BL";
    case Variant::kDiag: return "Diag";
    case Variant::kAce: return "ACE";
    case Variant::kRing: return "Ring";
    case Variant::kAsyncRing: return "Async";
  }
  return "?";
}

namespace {

double log2d(double x) { return std::log2(std::max(x, 2.0)); }

struct Rates {
  // Primitive timings per rank.
  double fft_w, fft_d;     // one 3-D FFT on the wfc / density grid
  double point_w, point_d; // one 16-byte-per-point streaming pass
  double eff;              // local-batch efficiency in (0, 1]
  double gemm_rate;
};

double fft_rate_at(const Platform& p, double ng) {
  if (p.fft_ng_half <= 0.0) return p.fft_rate;
  return p.fft_rate * ng / (ng + p.fft_ng_half);
}

Rates make_rates(const Platform& p, const SystemSize& s, size_t nloc) {
  Rates r;
  const auto ngw = static_cast<double>(s.ng_wfc);
  const auto ngd = static_cast<double>(s.ng_den);
  r.fft_w = 5.0 * ngw * log2d(ngw) / fft_rate_at(p, ngw);
  r.fft_d = 5.0 * ngd * log2d(ngd) / fft_rate_at(p, ngd);
  r.point_w = 16.0 * ngw / p.mem_bw;
  r.point_d = 16.0 * ngd / p.mem_bw;
  const auto nl = static_cast<double>(std::max<size_t>(nloc, 1));
  r.eff = nl / (nl + p.eff_half_bands);
  r.gemm_rate = p.gemm_rate;
  return r;
}

}  // namespace

StepCost predict_step(const Platform& plat, const SystemSize& sys,
                      size_t nodes, Variant v, ScfCounts counts) {
  PTIM_CHECK(nodes >= 1);
  StepCost out;
  out.variant = v;
  out.nodes = nodes;
  out.ranks = nodes * static_cast<size_t>(plat.ranks_per_node);
  const double p = static_cast<double>(out.ranks);
  const double n = static_cast<double>(sys.norbitals);
  const double npw = static_cast<double>(sys.npw);
  out.nloc = static_cast<size_t>(
      std::ceil(n / p));
  const double nloc = std::max(1.0, n / p);
  const Rates r = make_rates(plat, sys, out.nloc);

  const bool use_ace =
      v == Variant::kAce || v == Variant::kRing || v == Variant::kAsyncRing;
  const int n_vx = use_ace ? counts.outer : counts.plain_scf;
  const int n_scf =
      use_ace ? counts.outer * counts.inner_per_outer : counts.plain_scf;

  // ---------------------------------------------------------- compute ----
  // Fock exchange: per application, each rank handles N x nloc (k, j)
  // pairs; each pair is 2 FFTs plus ~6 streaming passes on the wfc grid.
  const double t_pair = 2.0 * r.fft_w + 6.0 * r.point_w;
  // Baseline keeps the sigma_{ik} triple loop: N extra streaming passes
  // (3 arrays) per pair — the N^2 -> N reduction of Sec. IV-A1.
  const double t_pair_bl =
      t_pair + n * plat.baseline_loop_passes * 3.0 * r.point_w;
  const double pairs = n * nloc;
  out.compute.exchange =
      n_vx * pairs * (v == Variant::kBaseline ? t_pair_bl : t_pair) / r.eff;

  // ACE surrogate inside the inner SCF: two tall gemms per application.
  if (use_ace)
    out.compute.ace_gemm =
        n_scf * (16.0 * npw * n * nloc) / r.gemm_rate / r.eff;

  // Density per SCF iteration. Baseline: naive pair loop on the dense grid
  // (N x nloc streaming passes); optimized: 2 nloc transforms + one gemm.
  const double density_opt =
      2.0 * nloc * r.fft_d + (8.0 * npw * n * nloc) / r.gemm_rate;
  const double density_bl = nloc * r.fft_d + n * nloc * 2.0 * r.point_d;
  out.compute.density =
      n_scf * (v == Variant::kBaseline ? density_bl : density_opt) / r.eff;

  // Local H apply: two dense-grid FFTs + potential pass per local band.
  out.compute.local_h =
      n_scf * nloc * (2.0 * r.fft_d + 3.0 * r.point_d) / r.eff;

  // Subspace work per SCF: S and M overlaps, projector gemm, sigma
  // commutator, plus per-Vx sigma diagonalization and final ortho.
  const double gemm_sub = 3.0 * 8.0 * npw * n * nloc / r.gemm_rate;
  const double sigma_ops = 24.0 * n * n * n / p / r.gemm_rate;
  const double eig_sigma = 200.0 * n * n * n / p / r.gemm_rate;
  out.compute.subspace =
      (n_scf * (gemm_sub + sigma_ops) + n_vx * eig_sigma +
       16.0 * npw * n * nloc / r.gemm_rate) /
      r.eff;

  // Anderson mixing: history-20 streaming updates of {Phi, sigma}.
  out.compute.mixing =
      n_scf * 2.0 * 20.0 * (16.0 * npw * nloc + 16.0 * n * n / p) /
      plat.mem_bw / r.eff;

  // ------------------------------------------------------------ comm ----
  // Orbital-slab circulation for every exact Vx application.
  const double block_bytes = 16.0 * static_cast<double>(sys.ng_wfc) * nloc;
  const double t_ring_step = plat.latency + block_bytes / plat.net_bw;
  const double ring_per_vx = (p - 1.0) * t_ring_step;
  const double bcast_per_vx =
      p * (log2d(p) * plat.latency +
           block_bytes * plat.bcast_penalty / plat.net_bw);
  switch (v) {
    case Variant::kBaseline:
    case Variant::kDiag:
    case Variant::kAce:
      out.comm.bcast = n_vx * bcast_per_vx;
      break;
    case Variant::kRing:
      out.comm.sendrecv = n_vx * ring_per_vx;
      break;
    case Variant::kAsyncRing:
      // Partial overlap: only the un-hidden fraction shows up as Wait.
      out.comm.wait = n_vx * ring_per_vx * (1.0 - plat.overlap_eff);
      break;
  }

  // Per-SCF collectives: two N x N overlap reductions (Rayleigh–Ritz),
  // two band<->grid transposes, one small allgather of band metadata.
  const double ar_bytes = 2.0 * 16.0 * n * n;
  out.comm.allreduce =
      n_scf * (2.0 * ar_bytes * plat.allreduce_penalty / plat.net_bw +
               2.0 * plat.latency * log2d(p));
  const double a2a_bytes = 16.0 * npw * nloc;
  out.comm.alltoallv =
      n_scf * 2.0 *
      (p * plat.a2a_latency + a2a_bytes * plat.a2a_penalty / plat.net_bw);
  out.comm.allgatherv =
      n_scf * (p * plat.gather_latency + 16.0 * n / plat.net_bw);

  return out;
}

}  // namespace ptim::netsim
