#pragma once
// Per-rank memory-footprint model (paper Sec. IV-B3 and the weak-scaling
// discussion): distributed wavefunction storage shrinks with rank count,
// while the N x N matrices (sigma, Phi^H Phi, Phi^H H Phi, Anderson
// histories of sigma) are replicated per process unless placed in
// node-shared windows — the mechanism that let the paper reach 1536 atoms
// within Fugaku's 8 GB per CMG and 3072 atoms within 40 GB per A100.

#include "netsim/platform.hpp"

namespace ptim::netsim {

struct MemoryFootprint {
  double wavefunctions = 0.0;   // Phi + Anderson history (scalable, bytes)
  double realspace = 0.0;       // grids, potentials, scratch slabs
  double square_matrices = 0.0; // sigma, overlaps, sigma mixing history
  double ace = 0.0;             // xi (npw x N block per rank)
  double total() const {
    return wavefunctions + realspace + square_matrices + ace;
  }
};

// anderson_history: the paper uses 20 copies of the mixed quantities.
// use_shm: place the square matrices in one node-shared copy (divides the
// per-rank share by ranks_per_node).
// grid_columns: pg of the 2-D band x grid layout — the exchange-scratch
// share of the real-space term (circulating slabs + pair-FFT workspace on
// the wavefunction grid) is z-slab-distributed and shrinks by pg, while
// the dense-grid density/potentials stay replicated (the semilocal pass
// runs redundantly per column). pg = 1 is the pure band-parallel model.
MemoryFootprint memory_per_rank(const Platform& plat, const SystemSize& sys,
                                size_t nodes, bool use_shm,
                                int anderson_history = 20,
                                int grid_columns = 1);

// Largest silicon system (atoms, multiple of 8) that fits in the given
// per-rank memory budget at the given node count.
size_t max_atoms_for_memory(const Platform& plat, size_t nodes,
                            double bytes_per_rank, bool use_shm);

}  // namespace ptim::netsim
