#pragma once
// Platform descriptors for the performance model: effective per-rank rates
// and alpha-beta network parameters for the paper's two machines (Sec. V).
//
// Rates are *effective sustained* values calibrated against the paper's
// published timings (Table I, Fig. 9 anchors), not theoretical peaks —
// see EXPERIMENTS.md for the calibration trail. The paper's own numbers
// are mutually inconsistent in places (noted there); the model targets the
// reported shapes: who wins, by what factor, and where curves bend.

#include <string>

#include "common/types.hpp"

namespace ptim::netsim {

enum class Topology { kTorus6D, kFatTree };

struct Platform {
  std::string name;
  Topology topology = Topology::kTorus6D;
  int ranks_per_node = 4;

  // Effective compute rates per rank (MPI process = 1 CMG or 1 A100).
  // When fft_ng_half > 0 the sustained FFT rate saturates with grid size:
  //   rate(ng) = fft_rate * ng / (ng + fft_ng_half)
  // — small 3-D FFTs underutilize a GPU (calibrated against the paper's
  // 192-atom/11.4 s and 3072-atom/429.3 s anchors).
  double fft_rate = 0.0;    // FLOP/s sustained on batched 3-D FFTs
  double fft_ng_half = 0.0;
  double gemm_rate = 0.0;   // FLOP/s sustained on zgemm
  double mem_bw = 0.0;      // bytes/s streaming

  // Network (per rank injection).
  double net_bw = 0.0;      // bytes/s
  double latency = 0.0;     // seconds per message
  double bcast_penalty = 1.0;     // bandwidth multiplier of tree bcast
  double allreduce_penalty = 1.0; // multiplier on the 2*bytes/bw term
  double a2a_latency = 0.0;       // per-destination latency in alltoallv
  double a2a_penalty = 1.0;       // bandwidth multiplier in alltoallv
  double gather_latency = 0.0;

  // Fraction of ring communication hidden by computation in the
  // asynchronous variant (paper: MPI progress limits overlap to ~33% on
  // Fugaku and ~51% on the GPU cluster — Table I Wait/Sendrecv ratios).
  double overlap_eff = 0.0;

  // Effective streaming passes per inner triple-loop iteration of the
  // naive baseline exchange (calibrated so the Diag speedup matches the
  // measured 12.86x / 7.57x of Fig. 9).
  double baseline_loop_passes = 1.0;

  // Local-batch efficiency: sustained fraction = nloc/(nloc + eff_half).
  // Captures the strong-scaling compute-efficiency drop the paper reports
  // (to 40% on ARM at 32x nodes, to 26% on GPU at 16x).
  double eff_half_bands = 0.0;

  static Platform fugaku_arm();
  static Platform gpu_a100();
};

// Physical system descriptor following the paper's Sec. VI conventions.
struct SystemSize {
  size_t natoms = 0;
  size_t norbitals = 0;  // N = nelec/2 + extra states
  size_t npw = 0;        // plane waves per orbital
  size_t ng_wfc = 0;     // wavefunction grid points
  size_t ng_den = 0;     // density grid points (8x wavefunction grid)

  // extra_per_atom: 0.5 in the paper's performance tests, 1.0 in accuracy
  // tests. Grid sizes anchored to the published 1536-atom numbers
  // (Ng = 648000 wavefunction points, N = 3840 orbitals).
  static SystemSize silicon(size_t natoms, real_t extra_per_atom = 0.5);
};

}  // namespace ptim::netsim
