#include "grid/gsphere.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptim::grid {

GSphere::GSphere(const Lattice& lattice, real_t ecut)
    : lattice_(&lattice), ecut_(ecut) {
  PTIM_CHECK_MSG(ecut > 0.0, "GSphere: ecut must be positive");
  const real_t gmax = std::sqrt(2.0 * ecut);

  // Conservative frequency bounds from the reciprocal cell metric.
  int bound[3];
  for (int d = 0; d < 3; ++d) {
    const real_t blen = std::sqrt(norm2(lattice.bvec(d)));
    bound[d] = static_cast<int>(std::ceil(gmax / blen)) + 1;
  }

  for (int f2 = -bound[2]; f2 <= bound[2]; ++f2)
    for (int f1 = -bound[1]; f1 <= bound[1]; ++f1)
      for (int f0 = -bound[0]; f0 <= bound[0]; ++f0) {
        const real_t g2v = norm2(lattice.gvec(f0, f1, f2));
        if (0.5 * g2v <= ecut) freqs_.push_back({f0, f1, f2});
      }

  // Deterministic order: ascending |G|^2, ties by lexicographic frequency.
  std::sort(freqs_.begin(), freqs_.end(),
            [&](const std::array<int, 3>& a, const std::array<int, 3>& b) {
              const real_t ga = norm2(lattice.gvec(a[0], a[1], a[2]));
              const real_t gb = norm2(lattice.gvec(b[0], b[1], b[2]));
              if (ga != gb) return ga < gb;
              return a < b;
            });

  g2_.resize(freqs_.size());
  for (size_t i = 0; i < freqs_.size(); ++i) {
    g2_[i] = norm2(lattice.gvec(freqs_[i][0], freqs_[i][1], freqs_[i][2]));
    for (int d = 0; d < 3; ++d)
      fmax_[static_cast<size_t>(d)] = std::max(
          fmax_[static_cast<size_t>(d)], std::abs(freqs_[i][static_cast<size_t>(d)]));
  }
}

std::vector<size_t> GSphere::map_to(const FftGrid& g) const {
  const auto& dims = g.dims();
  for (int d = 0; d < 3; ++d)
    PTIM_CHECK_MSG(
        dims[static_cast<size_t>(d)] >=
            static_cast<size_t>(2 * fmax_[static_cast<size_t>(d)] + 1),
        "GSphere::map_to: grid dim " << d << " too small for the sphere");
  std::vector<size_t> map(npw());
  for (size_t i = 0; i < npw(); ++i) {
    size_t idx[3];
    for (int d = 0; d < 3; ++d) {
      const int f = freqs_[i][static_cast<size_t>(d)];
      const auto n = static_cast<long>(dims[static_cast<size_t>(d)]);
      idx[d] = static_cast<size_t>(f >= 0 ? f : n + f);
    }
    map[i] = g.linear(idx[0], idx[1], idx[2]);
  }
  return map;
}

std::array<size_t, 3> GSphere::suggest_dims(int factor) const {
  std::array<size_t, 3> dims;
  for (int d = 0; d < 3; ++d)
    dims[static_cast<size_t>(d)] = fft::next_fft_size(
        static_cast<size_t>(2 * factor * fmax_[static_cast<size_t>(d)] + 1));
  return dims;
}

}  // namespace ptim::grid
