#pragma once
// The plane-wave sphere: all G with |G|^2/2 <= E_cut. Wavefunction
// coefficients live on this compressed index set; scatter/gather maps embed
// them into any FftGrid large enough to hold the sphere.

#include <array>
#include <vector>

#include "grid/fft_grid.hpp"
#include "grid/lattice.hpp"

namespace ptim::grid {

class GSphere {
 public:
  GSphere(const Lattice& lattice, real_t ecut);

  real_t ecut() const { return ecut_; }
  size_t npw() const { return freqs_.size(); }
  const std::vector<std::array<int, 3>>& freqs() const { return freqs_; }
  const std::vector<real_t>& g2() const { return g2_; }
  Vec3 gvec(size_t i) const {
    return lattice_->gvec(freqs_[i][0], freqs_[i][1], freqs_[i][2]);
  }
  const Lattice& lattice() const { return *lattice_; }

  // Max |frequency| along each dimension; a grid needs dims >= 2*fmax+1 to
  // hold the sphere without wrap-around collisions.
  std::array<int, 3> fmax() const { return fmax_; }

  // Linear indices of each sphere element in the given grid.
  std::vector<size_t> map_to(const FftGrid& g) const;

  // Suggested FFT-friendly dims: factor=1 for the wavefunction grid
  // (2*fmax+1), factor=2 for the density grid (4*fmax+1).
  std::array<size_t, 3> suggest_dims(int factor) const;

 private:
  const Lattice* lattice_;
  real_t ecut_;
  std::vector<std::array<int, 3>> freqs_;
  std::vector<real_t> g2_;
  std::array<int, 3> fmax_{0, 0, 0};
};

}  // namespace ptim::grid
