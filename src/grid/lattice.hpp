#pragma once
// Simulation cell: real-space lattice vectors, reciprocal vectors and
// volume. Supercells of the conventional 8-atom diamond-cubic silicon cell
// (a = 5.43 Angstrom) are the paper's physical systems.

#include <array>

#include "common/types.hpp"

namespace ptim::grid {

// A real 3-vector. A named struct (not an std::array alias) so that the
// arithmetic operators below are found by ADL from every module.
struct Vec3 {
  real_t v[3]{0.0, 0.0, 0.0};
  real_t& operator[](int i) { return v[i]; }
  const real_t& operator[](int i) const { return v[i]; }
  real_t& operator[](size_t i) { return v[i]; }
  const real_t& operator[](size_t i) const { return v[i]; }
};

inline Vec3 operator+(const Vec3& a, const Vec3& b) {
  return {a[0] + b[0], a[1] + b[1], a[2] + b[2]};
}
inline Vec3 operator-(const Vec3& a, const Vec3& b) {
  return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}
inline Vec3 operator*(real_t s, const Vec3& a) {
  return {s * a[0], s * a[1], s * a[2]};
}
inline real_t dot(const Vec3& a, const Vec3& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}
inline real_t norm2(const Vec3& a) { return dot(a, a); }

class Lattice {
 public:
  // Columns a0, a1, a2 are the lattice vectors in bohr.
  Lattice(const Vec3& a0, const Vec3& a1, const Vec3& a2);

  static Lattice cubic(real_t alat) {
    return Lattice({alat, 0, 0}, {0, alat, 0}, {0, 0, alat});
  }
  static Lattice orthorhombic(real_t ax, real_t ay, real_t az) {
    return Lattice({ax, 0, 0}, {0, ay, 0}, {0, 0, az});
  }

  const Vec3& avec(int i) const { return a_[i]; }
  const Vec3& bvec(int i) const { return b_[i]; }  // b_i . a_j = 2 pi delta_ij
  real_t volume() const { return volume_; }

  // Cartesian position of the fractional coordinate f.
  Vec3 cart(const Vec3& frac) const {
    return frac[0] * a_[0] + frac[1] * a_[1] + frac[2] * a_[2];
  }
  // Cartesian G for integer frequencies (f0, f1, f2).
  Vec3 gvec(int f0, int f1, int f2) const {
    return static_cast<real_t>(f0) * b_[0] + static_cast<real_t>(f1) * b_[1] +
           static_cast<real_t>(f2) * b_[2];
  }
  // Cell center in Cartesian coordinates.
  Vec3 center() const { return cart({0.5, 0.5, 0.5}); }

 private:
  std::array<Vec3, 3> a_;
  std::array<Vec3, 3> b_;
  real_t volume_ = 0.0;
};

}  // namespace ptim::grid
