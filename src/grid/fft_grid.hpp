#pragma once
// A real-space / reciprocal-space FFT box attached to a lattice.
//
// PWDFT (and this reproduction) uses a dual-grid scheme:
//   * the wavefunction grid holds orbitals (dims >= 2*fmax+1),
//   * the density grid is ~2x finer and carries rho, V_H, V_xc, V_loc.
// The Fock exchange operator is evaluated on the wavefunction grid, exactly
// as stated in the paper's Sec. VI.

#include <array>
#include <memory>
#include <vector>

#include "fft/fft.hpp"
#include "grid/lattice.hpp"

namespace ptim::grid {

class FftGrid {
 public:
  FftGrid(const Lattice& lattice, std::array<size_t, 3> dims);

  const Lattice& lattice() const { return *lattice_; }
  const std::array<size_t, 3>& dims() const { return dims_; }
  size_t size() const { return dims_[0] * dims_[1] * dims_[2]; }

  size_t linear(size_t i0, size_t i1, size_t i2) const {
    return i0 + dims_[0] * (i1 + dims_[1] * i2);
  }

  // Signed integer frequency for grid index i along dimension d
  // (standard FFT ordering: 0,1,...,n/2,-(n-1)/2,...,-1).
  int freq(size_t i, int d) const {
    const auto n = static_cast<long>(dims_[static_cast<size_t>(d)]);
    const auto idx = static_cast<long>(i);
    return static_cast<int>(idx <= n / 2 ? idx : idx - n);
  }

  // Integer frequency triple of a linear index.
  std::array<int, 3> freq3(size_t linear_idx) const {
    const size_t i0 = linear_idx % dims_[0];
    const size_t i1 = (linear_idx / dims_[0]) % dims_[1];
    const size_t i2 = linear_idx / (dims_[0] * dims_[1]);
    return {freq(i0, 0), freq(i1, 1), freq(i2, 2)};
  }

  // Cartesian G vector of a linear index.
  Vec3 gvec(size_t linear_idx) const {
    const auto f = freq3(linear_idx);
    return lattice_->gvec(f[0], f[1], f[2]);
  }

  // Cartesian position of grid point (i0, i1, i2).
  Vec3 rvec(size_t i0, size_t i1, size_t i2) const {
    return lattice_->cart({static_cast<real_t>(i0) / dims_[0],
                           static_cast<real_t>(i1) / dims_[1],
                           static_cast<real_t>(i2) / dims_[2]});
  }

  // Cached |G|^2 per linear index.
  const std::vector<real_t>& g2() const { return g2_; }

  // Volume element for real-space quadrature: integral f = dvol * sum f_j.
  real_t dvol() const { return lattice_->volume() / static_cast<real_t>(size()); }

  const fft::Fft3& fft() const { return fft_; }
  // FP32 twin of the same box, used by the reduced-precision exchange
  // pipeline (tables only — construction cost is negligible).
  const fft::Fft3f& fft_f32() const { return fft_f32_; }

 private:
  const Lattice* lattice_;
  std::array<size_t, 3> dims_;
  fft::Fft3 fft_;
  fft::Fft3f fft_f32_;
  std::vector<real_t> g2_;
};

}  // namespace ptim::grid
