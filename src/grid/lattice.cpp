#include "grid/lattice.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ptim::grid {

namespace {
Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
          a[0] * b[1] - a[1] * b[0]};
}
}  // namespace

Lattice::Lattice(const Vec3& a0, const Vec3& a1, const Vec3& a2)
    : a_{a0, a1, a2} {
  const Vec3 a12 = cross(a1, a2);
  volume_ = dot(a0, a12);
  PTIM_CHECK_MSG(volume_ > 1e-12, "Lattice: cell volume must be positive");
  const real_t f = kTwoPi / volume_;
  b_[0] = f * a12;
  b_[1] = f * cross(a2, a0);
  b_[2] = f * cross(a0, a1);
}

}  // namespace ptim::grid
