#include "grid/fft_grid.hpp"

#include "common/error.hpp"

namespace ptim::grid {

FftGrid::FftGrid(const Lattice& lattice, std::array<size_t, 3> dims)
    : lattice_(&lattice),
      dims_(dims),
      fft_(dims[0], dims[1], dims[2]),
      fft_f32_(dims[0], dims[1], dims[2]) {
  // Non-{2,3,5,7} dims are legal (Plan1D falls back to Bluestein's chirp-z)
  // but slower; production grids should come from GSphere::suggest_dims.
  for (int d = 0; d < 3; ++d)
    PTIM_CHECK_MSG(dims_[static_cast<size_t>(d)] >= 1,
                   "FftGrid: dim " << d << " must be positive");
  g2_.resize(size());
  for (size_t i = 0; i < size(); ++i) g2_[i] = norm2(gvec(i));
}

}  // namespace ptim::grid
