#include "grid/fft_grid.hpp"

#include "common/error.hpp"

namespace ptim::grid {

FftGrid::FftGrid(const Lattice& lattice, std::array<size_t, 3> dims)
    : lattice_(&lattice), dims_(dims), fft_(dims[0], dims[1], dims[2]) {
  for (int d = 0; d < 3; ++d)
    PTIM_CHECK_MSG(fft::fft_size_ok(dims_[static_cast<size_t>(d)]),
                   "FftGrid: dim " << d << " = "
                                   << dims_[static_cast<size_t>(d)]
                                   << " is not FFT-friendly");
  g2_.resize(size());
  for (size_t i = 0; i < size(); ++i) g2_[i] = norm2(gvec(i));
}

}  // namespace ptim::grid
