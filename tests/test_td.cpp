// Time propagation: conservation laws, variant equivalences and the
// PT-IM vs RK4 gauge-consistency claim (the paper's Fig. 7 in miniature).

#include <gtest/gtest.h>

#include <cmath>

#include "gs/scf.hpp"
#include "ham/density.hpp"
#include "la/blas.hpp"
#include "pw/wavefunction.hpp"
#include "td/laser.hpp"
#include "td/observables.hpp"
#include "td/ptim.hpp"
#include "td/rk4.hpp"
#include "test_helpers.hpp"

using namespace ptim;

namespace {

// Shared tiny ground state: computed once (hybrid, finite T), reused by all
// propagation tests through a leaky singleton.
struct TdEnv {
  test::TinySystem sys;
  gs::ScfResult ground;

  TdEnv() : sys(test::TinySystem::make(3.0)) {
    gs::ScfOptions opt;
    opt.nbands = 6;
    opt.nelec = 8.0;
    opt.temperature_k = 8000.0;
    opt.tol_rho = 1e-7;
    opt.davidson_tol = 1e-8;
    ground = gs::ground_state(*sys.ham, opt);
  }

  static TdEnv& get() {
    static TdEnv* env = new TdEnv();
    return *env;
  }

  td::TdState initial() const {
    return td::TdState::from_occupations(ground.phi, ground.occ);
  }

  std::vector<real_t> density(const td::TdState& s) const {
    return ham::density_sigma(s.phi, s.sigma, sys.ham->den_map());
  }
};

}  // namespace

TEST(Laser, FieldAndVectorPotentialConsistent) {
  td::LaserParams p;
  p.e0 = 0.01;
  p.wavelength_nm = 380.0;
  const real_t t_max = 200.0;
  td::LaserPulse laser(p, t_max);

  // A(0) = 0; dA/dt = -E (finite difference vs table interpolation).
  EXPECT_NEAR(laser.vector_potential(0.0)[0], 0.0, 1e-12);
  const real_t h = 0.05;
  for (const real_t t : {40.0, 90.0, 120.0, 160.0}) {
    const real_t dadt = (laser.vector_potential(t + h)[0] -
                         laser.vector_potential(t - h)[0]) /
                        (2.0 * h);
    EXPECT_NEAR(dadt, -laser.efield(t), 5e-4 * std::abs(p.e0));
  }
  // Envelope: field is tiny at the edges, significant at the center.
  EXPECT_LT(std::abs(laser.efield(1.0)), 0.02 * p.e0);
  real_t peak = 0.0;
  for (real_t t = 0; t < t_max; t += 0.5)
    peak = std::max(peak, std::abs(laser.efield(t)));
  EXPECT_GT(peak, 0.8 * p.e0);
}

TEST(Laser, PhotonEnergyMatchesWavelength) {
  td::LaserParams p;
  p.wavelength_nm = 380.0;
  td::LaserPulse laser(p, 100.0);
  EXPECT_NEAR(laser.omega() * units::hartree_in_ev, 3.2627, 2e-3);
}

TEST(Rk4, ConservesNormAndEnergyFieldFree) {
  auto& env = TdEnv::get();
  td::TdState s = env.initial();
  const real_t e0 = [&] {
    const auto rho = env.density(s);
    env.sys.ham->set_density(rho);
    return env.sys.ham->energy(s.phi, s.sigma, rho).total();
  }();

  td::Rk4Options opt;
  opt.dt = 0.05;
  td::Rk4Propagator prop(*env.sys.ham, opt, nullptr);
  for (int i = 0; i < 10; ++i) prop.step(s);

  EXPECT_LT(pw::orthonormality_defect(s.phi), 1e-6);
  const auto rho = env.density(s);
  env.sys.ham->set_density(rho);
  const real_t e1 = env.sys.ham->energy(s.phi, s.sigma, rho).total();
  EXPECT_NEAR(e1, e0, 1e-7 * std::abs(e0));
}

TEST(PtIm, StepPreservesInvariants) {
  auto& env = TdEnv::get();
  td::TdState s = env.initial();
  const real_t tr0 = td::sigma_trace(s.sigma);

  td::PtImOptions opt;
  opt.dt = 1.0;
  opt.variant = td::PtImVariant::kDiag;
  td::PtImPropagator prop(*env.sys.ham, opt, nullptr);
  const auto stats = prop.step(s);

  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.scf_iterations, 1);
  // Orthonormal orbitals, Hermitian sigma, conserved trace.
  EXPECT_LT(pw::orthonormality_defect(s.phi), 1e-10);
  EXPECT_LT(td::sigma_hermiticity_defect(s.sigma), 1e-12);
  EXPECT_NEAR(td::sigma_trace(s.sigma), tr0, 1e-7);
}

TEST(PtIm, FieldFreeEnergyConserved) {
  auto& env = TdEnv::get();
  td::TdState s = env.initial();
  const auto rho0 = env.density(s);
  env.sys.ham->set_density(rho0);
  const real_t e0 = env.sys.ham->energy(s.phi, s.sigma, rho0).total();

  td::PtImOptions opt;
  opt.dt = 2.0;  // ~50 as
  opt.tol = 1e-9;
  td::PtImPropagator prop(*env.sys.ham, opt, nullptr);
  for (int i = 0; i < 3; ++i) prop.step(s);

  const auto rho1 = env.density(s);
  env.sys.ham->set_density(rho1);
  const real_t e1 = env.sys.ham->energy(s.phi, s.sigma, rho1).total();
  EXPECT_NEAR(e1, e0, 5e-6 * std::abs(e0));
}

TEST(PtIm, BaselineAndDiagVariantsAgree) {
  auto& env = TdEnv::get();
  td::TdState sa = env.initial();
  td::TdState sb = env.initial();

  td::PtImOptions oa;
  oa.dt = 1.0;
  oa.tol = 1e-9;
  oa.variant = td::PtImVariant::kBaseline;
  td::PtImOptions ob = oa;
  ob.variant = td::PtImVariant::kDiag;

  td::PtImPropagator pa(*env.sys.ham, oa, nullptr);
  td::PtImPropagator pb(*env.sys.ham, ob, nullptr);
  pa.step(sa);
  pb.step(sb);

  // Same fixed point: physical observables agree tightly.
  const auto rho_a = env.density(sa);
  const auto rho_b = env.density(sb);
  real_t diff = 0.0, norm = 0.0;
  for (size_t i = 0; i < rho_a.size(); ++i) {
    diff += (rho_a[i] - rho_b[i]) * (rho_a[i] - rho_b[i]);
    norm += rho_a[i] * rho_a[i];
  }
  EXPECT_LT(std::sqrt(diff / norm), 1e-6);
}

TEST(PtIm, AceVariantTracksExact) {
  auto& env = TdEnv::get();
  td::TdState sa = env.initial();
  td::TdState sb = env.initial();

  td::PtImOptions oa;
  oa.dt = 2.0;
  oa.tol = 1e-8;
  oa.variant = td::PtImVariant::kDiag;
  td::PtImOptions ob = oa;
  ob.variant = td::PtImVariant::kAce;
  ob.tol_fock = 1e-9;

  td::PtImPropagator pa(*env.sys.ham, oa, nullptr);
  td::PtImPropagator pb(*env.sys.ham, ob, nullptr);
  pa.step(sa);
  const auto stats = pb.step(sb);
  EXPECT_GE(stats.outer_iterations, 2);

  const auto rho_a = env.density(sa);
  const auto rho_b = env.density(sb);
  real_t diff = 0.0, norm = 0.0;
  for (size_t i = 0; i < rho_a.size(); ++i) {
    diff += (rho_a[i] - rho_b[i]) * (rho_a[i] - rho_b[i]);
    norm += rho_a[i] * rho_a[i];
  }
  EXPECT_LT(std::sqrt(diff / norm), 1e-5);
}

TEST(PtIm, AceReducesExchangeApplications) {
  // The paper's 25 -> 5 claim in miniature: per step, the ACE variant needs
  // far fewer full Vx applications than the exact-exchange fixed point.
  auto& env = TdEnv::get();
  td::TdState sa = env.initial();
  td::TdState sb = env.initial();

  td::PtImOptions oa;
  oa.dt = 2.0;
  oa.variant = td::PtImVariant::kDiag;
  td::PtImOptions ob = oa;
  ob.variant = td::PtImVariant::kAce;

  td::PtImPropagator pa(*env.sys.ham, oa, nullptr);
  td::PtImPropagator pb(*env.sys.ham, ob, nullptr);
  const auto stats_exact = pa.step(sa);
  const auto stats_ace = pb.step(sb);

  EXPECT_GT(stats_exact.exchange_applications,
            2 * stats_ace.exchange_applications);
}

TEST(PtIm, MatchesRk4UnderLaser) {
  // Gauge consistency: PT-IM with a 25x larger step reproduces RK4 dipole
  // dynamics (Fig. 7's central accuracy claim, shrunk to a 2-atom cell).
  auto& env = TdEnv::get();
  td::LaserParams lp;
  lp.e0 = 0.02;
  lp.wavelength_nm = 380.0;
  const real_t t_total = 8.0;
  td::LaserPulse laser(lp, t_total);

  td::TdState s_rk = env.initial();
  td::Rk4Options ork;
  ork.dt = 0.04;
  td::Rk4Propagator prk(*env.sys.ham, ork, &laser);
  td::TdState s_pt = env.initial();
  td::PtImOptions opt;
  opt.dt = 1.0;
  opt.tol = 1e-9;
  opt.variant = td::PtImVariant::kDiag;
  td::PtImPropagator ppt(*env.sys.ham, opt, &laser);

  const grid::Vec3 xdir{1.0, 0.0, 0.0};
  real_t max_diff = 0.0, max_amp = 0.0;
  for (int step = 0; step < 8; ++step) {
    for (int k = 0; k < 25; ++k) prk.step(s_rk);
    ppt.step(s_pt);
    ASSERT_NEAR(s_rk.time, s_pt.time, 1e-9);
    const real_t d_rk =
        td::dipole(env.density(s_rk), *env.sys.den_grid, xdir);
    const real_t d_pt =
        td::dipole(env.density(s_pt), *env.sys.den_grid, xdir);
    max_diff = std::max(max_diff, std::abs(d_rk - d_pt));
    max_amp = std::max(max_amp, std::abs(d_rk));
  }
  // The dipole response must be visibly excited and the two propagators
  // must agree to a small fraction of the signal.
  EXPECT_GT(max_amp, 1e-5);
  EXPECT_LT(max_diff, 0.05 * max_amp);
}

TEST(Observables, SigmaDiagnostics) {
  la::MatC pure(3, 3);
  pure(0, 0) = 1.0;
  pure(1, 1) = 1.0;
  EXPECT_NEAR(td::sigma_idempotency_defect(pure), 0.0, 1e-14);
  EXPECT_NEAR(td::sigma_trace(pure), 2.0, 1e-14);

  la::MatC mixed(2, 2);
  mixed(0, 0) = 0.7;
  mixed(1, 1) = 0.3;
  EXPECT_GT(td::sigma_idempotency_defect(mixed), 0.1);
}
