// Lattice/reciprocal geometry, G-sphere construction and the sphere<->grid
// transforms whose normalization conventions everything else leans on.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "grid/fft_grid.hpp"
#include "grid/gsphere.hpp"
#include "la/blas.hpp"
#include "pw/transforms.hpp"
#include "pw/wavefunction.hpp"
#include "test_helpers.hpp"

using namespace ptim;

TEST(Lattice, ReciprocalIdentity) {
  const grid::Lattice lat({10.0, 0.0, 0.0}, {1.0, 8.0, 0.0}, {0.0, 2.0, 9.0});
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      const real_t expected = (i == j) ? kTwoPi : 0.0;
      EXPECT_NEAR(grid::dot(lat.bvec(i), lat.avec(j)), expected, 1e-12);
    }
  EXPECT_NEAR(lat.volume(), 10.0 * 8.0 * 9.0, 1e-9);
}

TEST(Lattice, CubicCenter) {
  const auto lat = grid::Lattice::cubic(6.0);
  const auto c = lat.center();
  EXPECT_NEAR(c[0], 3.0, 1e-14);
  EXPECT_NEAR(c[1], 3.0, 1e-14);
  EXPECT_NEAR(c[2], 3.0, 1e-14);
}

TEST(GSphere, InversionSymmetricAndSorted) {
  const auto lat = grid::Lattice::cubic(9.0);
  const grid::GSphere s(lat, 4.0);
  ASSERT_GT(s.npw(), 10u);
  // All |G|^2/2 <= ecut, ascending.
  for (size_t i = 0; i < s.npw(); ++i) {
    EXPECT_LE(0.5 * s.g2()[i], 4.0 + 1e-12);
    if (i > 0) {
      EXPECT_GE(s.g2()[i], s.g2()[i - 1] - 1e-12);
    }
  }
  // G=0 comes first, -G present for every G.
  EXPECT_EQ(s.freqs()[0][0], 0);
  std::set<std::array<int, 3>> all(s.freqs().begin(), s.freqs().end());
  for (const auto& f : s.freqs()) {
    EXPECT_TRUE(all.count({-f[0], -f[1], -f[2]}));
  }
}

TEST(GSphere, CountScalesWithVolume) {
  // npw ~ Omega * gmax^3 / (6 pi^2): doubling the box along z roughly
  // doubles the count.
  const auto lat1 = grid::Lattice::cubic(9.0);
  const auto lat2 = grid::Lattice::orthorhombic(9.0, 9.0, 18.0);
  const grid::GSphere s1(lat1, 5.0), s2(lat2, 5.0);
  const real_t ratio = static_cast<real_t>(s2.npw()) / s1.npw();
  EXPECT_NEAR(ratio, 2.0, 0.15);
}

TEST(GSphere, MapToGridIsInjective) {
  const auto lat = grid::Lattice::cubic(9.0);
  const grid::GSphere s(lat, 4.0);
  const grid::FftGrid g(lat, s.suggest_dims(1));
  const auto map = s.map_to(g);
  std::set<size_t> unique(map.begin(), map.end());
  EXPECT_EQ(unique.size(), map.size());
  for (size_t i = 0; i < s.npw(); ++i) {
    // Grid point frequency matches the sphere frequency.
    const auto f = g.freq3(map[i]);
    EXPECT_EQ(f[0], s.freqs()[i][0]);
    EXPECT_EQ(f[1], s.freqs()[i][1]);
    EXPECT_EQ(f[2], s.freqs()[i][2]);
  }
}

TEST(FftGrid, G2TableMatchesFreq) {
  const auto lat = grid::Lattice::cubic(7.0);
  const grid::FftGrid g(lat, {6, 6, 6});
  for (size_t i = 0; i < g.size(); i += 17) {
    const auto f = g.freq3(i);
    const auto gv = lat.gvec(f[0], f[1], f[2]);
    EXPECT_NEAR(g.g2()[i], grid::norm2(gv), 1e-12);
  }
}

class TransformFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    lat_ = std::make_unique<grid::Lattice>(grid::Lattice::cubic(8.0));
    sphere_ = std::make_unique<grid::GSphere>(*lat_, 3.5);
    grid_ = std::make_unique<grid::FftGrid>(*lat_, sphere_->suggest_dims(1));
    dense_ = std::make_unique<grid::FftGrid>(*lat_, sphere_->suggest_dims(2));
    map_ = std::make_unique<pw::SphereGridMap>(*sphere_, *grid_);
    dmap_ = std::make_unique<pw::SphereGridMap>(*sphere_, *dense_);
  }
  std::unique_ptr<grid::Lattice> lat_;
  std::unique_ptr<grid::GSphere> sphere_;
  std::unique_ptr<grid::FftGrid> grid_, dense_;
  std::unique_ptr<pw::SphereGridMap> map_, dmap_;
};

TEST_F(TransformFixture, RoundTripSphereGridSphere) {
  const size_t npw = sphere_->npw();
  la::MatC c = test::random_matrix(npw, 3, 7);
  la::MatC real_space;
  map_->to_real_batch(c, real_space);
  la::MatC back;
  map_->to_sphere_batch(real_space, back);
  EXPECT_LT(la::frob_diff(c, back), 1e-10);
}

TEST_F(TransformFixture, NormalizationIsUnitary) {
  // <psi|psi> = sum |c|^2 = dvol * sum |psi(r)|^2.
  const size_t npw = sphere_->npw();
  la::MatC c = test::random_matrix(npw, 1, 8);
  real_t norm_c = 0.0;
  for (size_t i = 0; i < npw; ++i) norm_c += std::norm(c(i, 0));
  std::vector<cplx> u(grid_->size());
  map_->to_real(c.col(0), u.data());
  real_t norm_r = 0.0;
  for (const auto& v : u) norm_r += std::norm(v);
  norm_r *= grid_->dvol();
  EXPECT_NEAR(norm_r, norm_c, 1e-9 * norm_c);
}

TEST_F(TransformFixture, DenseGridRoundTripMatches) {
  // The same coefficients produce consistent values on both grids
  // (band-limited function, denser sampling).
  const size_t npw = sphere_->npw();
  la::MatC c = test::random_matrix(npw, 1, 9);
  la::MatC back;
  la::MatC real_dense;
  dmap_->to_real_batch(c, real_dense);
  dmap_->to_sphere_batch(real_dense, back);
  EXPECT_LT(la::frob_diff(c, back), 1e-10);
}

TEST_F(TransformFixture, PlaneWaveValueOnGrid) {
  // A single-G coefficient must produce e^{iG.r}/sqrt(Omega) pointwise.
  const size_t npw = sphere_->npw();
  const size_t pick = npw / 3;
  la::MatC c(npw, 1);
  c(pick, 0) = 1.0;
  std::vector<cplx> u(grid_->size());
  map_->to_real(c.col(0), u.data());
  const auto gv = sphere_->gvec(pick);
  const real_t s = 1.0 / std::sqrt(lat_->volume());
  const auto& dims = grid_->dims();
  for (size_t i2 = 0; i2 < dims[2]; i2 += 3)
    for (size_t i1 = 0; i1 < dims[1]; i1 += 3)
      for (size_t i0 = 0; i0 < dims[0]; i0 += 3) {
        const auto r = grid_->rvec(i0, i1, i2);
        const real_t ph = grid::dot(gv, r);
        const cplx expect = s * cplx{std::cos(ph), std::sin(ph)};
        EXPECT_NEAR(std::abs(u[grid_->linear(i0, i1, i2)] - expect), 0.0, 1e-10);
      }
}

TEST(Orthonormalize, CholeskyAndLowdin) {
  la::MatC phi = test::random_matrix(60, 6, 11);
  la::MatC phi2 = phi;
  pw::orthonormalize_cholesky(phi);
  EXPECT_LT(pw::orthonormality_defect(phi), 1e-10);
  pw::orthonormalize_lowdin(phi2);
  EXPECT_LT(pw::orthonormality_defect(phi2), 1e-10);
  // Both span the same space: projector difference vanishes.
  la::MatC s(6, 6);
  la::gemm_cn(phi, phi2, s);
  // |det|-like check: S must be unitary.
  la::MatC shs(6, 6);
  la::gemm('C', 'N', 1.0, s, s, 0.0, shs);
  EXPECT_LT(la::frob_diff(shs, la::MatC::identity(6)), 1e-9);
}
