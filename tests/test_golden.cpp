// Golden-trajectory regression harness: a serialized 10-step PT-IM-ACE
// trajectory (energy, total-energy, dipole and sigma-trace observables per
// step) pinned in tests/golden/, replayed here by the serial propagator,
// the band-parallel propagator and the 2-D band x grid configuration — all
// three must land within 1e-10 of the SAME fixture. This is the
// cross-layer safety net: any drift in the FFT engine, exchange pipeline,
// circulation patterns, communicator splits or propagator algebra shows up
// as a fixture mismatch, not just as a serial-vs-distributed disagreement.
//
// Regenerate (after an INTENDED numerical change) with
//   PTIM_GOLDEN_REGEN=1 ./test_golden
// which rewrites the fixture in the source tree from the serial run; the
// diff then documents the drift.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "dist/band_ham.hpp"
#include "ham/density.hpp"
#include "la/util.hpp"
#include "td/observables.hpp"
#include "td/ptim.hpp"
#include "td/ptim_dist.hpp"
#include "test_helpers.hpp"

using namespace ptim;

namespace {

constexpr int kSteps = 10;
constexpr real_t kTol = 1e-10;
constexpr size_t kBands = 6;  // non-divisible over the 4-rank 2-D layouts
const char* kFixture = "ptim_ace_10step.txt";

td::PtImOptions ptim_options() {
  td::PtImOptions opt;
  opt.dt = 0.5;
  opt.tol = 1e-8;  // converge the fixed point well below the pin tolerance
  opt.variant = td::PtImVariant::kAce;
  return opt;
}

td::TdState initial_state(size_t npw) {
  td::TdState s;
  s.phi = test::random_orbitals(npw, kBands, 641);
  s.sigma = test::random_occupation_matrix(kBands, 642);
  return s;
}

// Observables of one state, always computed through the same serial code
// path so every configuration is measured with the same ruler. Uses a
// DEDICATED observation Hamiltonian (the propagators mutate the exchange
// configuration of theirs, which would leak into the Fock energy term).
struct Observer {
  explicit Observer(test::TinySystem& sys, bool gamma = false)
      : sys_(&sys),
        h_(*sys.lattice, sys.atoms, *sys.sphere, *sys.wfc_grid, *sys.den_grid,
           ham::HamiltonianOptions{}) {
    // Any non-kNone mode includes the Fock term; energy() evaluates it from
    // the passed (phi, sigma), not from stored sources.
    h_.set_exchange_mode(ham::ExchangeMode::kExactDiag);
    h_.set_exchange_gamma_real(gamma);
  }

  test::GoldenStep operator()(const td::TdState& s) {
    const auto rho = ham::density_sigma(s.phi, s.sigma, h_.den_map());
    test::GoldenStep g;
    h_.set_density(rho);
    g.energy = h_.energy(s.phi, s.sigma, rho).total();
    g.dipole = td::dipole(rho, *sys_->den_grid, {1.0, 0.0, 0.0});
    g.sigma_trace = 0.0;
    for (size_t i = 0; i < s.sigma.rows(); ++i)
      g.sigma_trace += std::real(s.sigma(i, i));
    return g;
  }

  test::TinySystem* sys_;
  ham::Hamiltonian h_;
};

// Serial reference trajectory.
std::vector<test::GoldenStep> run_serial(test::TinySystem& sys,
                                         bool gamma = false) {
  Observer observe(sys, gamma);
  sys.ham->set_exchange_gamma_real(gamma);
  td::TdState s = initial_state(sys.sphere->npw());
  td::PtImPropagator prop(*sys.ham, ptim_options(), nullptr);
  std::vector<test::GoldenStep> out;
  for (int i = 0; i < kSteps; ++i) {
    prop.step(s);
    out.push_back(observe(s));
  }
  return out;
}

// Distributed trajectory on a pb x pg layout (pg == 1 is band-parallel).
// Full states are gathered per step and observed with the serial ruler.
std::vector<test::GoldenStep> run_distributed(test::TinySystem& sys,
                                              dist::ProcessGrid pgrid,
                                              dist::ExchangePattern pattern,
                                              bool gamma = false) {
  const int nranks = pgrid.resolve_pb(pgrid.pb * pgrid.pg) * pgrid.pg;
  const dist::BlockLayout bands(kBands, pgrid.pb);
  const td::TdState init = initial_state(sys.sphere->npw());
  std::vector<td::TdState> traj(static_cast<size_t>(kSteps));
  ptmpi::run_ranks(nranks, 2, [&](ptmpi::Comm& c) {
    auto h = std::make_unique<ham::Hamiltonian>(
        *sys.lattice, sys.atoms, *sys.sphere, *sys.wfc_grid, *sys.den_grid,
        ham::HamiltonianOptions{});
    h->set_exchange_gamma_real(gamma);
    dist::BandHamOptions bopt;
    bopt.pattern = pattern;
    if (pgrid.pg > 1) bopt.grid = pgrid;
    dist::BandDistributedHamiltonian bdh(c, *h, kBands, bopt);
    const int br = pgrid.pg > 1 ? pgrid.band_rank_of(c.rank()) : c.rank();
    td::DistTdState s = td::scatter_state(init, bands, br);
    td::DistPtImPropagator prop(bdh, ptim_options(), nullptr);
    for (int i = 0; i < kSteps; ++i) {
      prop.step(s);
      const td::TdState full = td::gather_state(bdh.comm(), s, bands);
      if (c.rank() == 0) traj[static_cast<size_t>(i)] = full;
    }
  });
  Observer observe(sys, gamma);
  std::vector<test::GoldenStep> out;
  for (const auto& s : traj) out.push_back(observe(s));
  return out;
}

void expect_matches_fixture(const std::vector<test::GoldenStep>& got,
                            const char* what) {
  const test::GoldenTrajectory ref = test::golden_load(kFixture);
  ASSERT_EQ(got.size(), ref.steps.size()) << what;
  for (size_t k = 0; k < got.size(); ++k) {
    EXPECT_NEAR(got[k].energy, ref.steps[k].energy, kTol)
        << what << " step " << k;
    EXPECT_NEAR(got[k].dipole, ref.steps[k].dipole, kTol)
        << what << " step " << k;
    EXPECT_NEAR(got[k].sigma_trace, ref.steps[k].sigma_trace, kTol)
        << what << " step " << k;
  }
}

}  // namespace

TEST(Golden, SerialMatchesFixture) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  const auto got = run_serial(sys);

  if (std::getenv("PTIM_GOLDEN_REGEN")) {
    test::GoldenTrajectory t;
    t.description =
        " PT-IM-ACE, TinySystem(ecut=3, box=8), nb=6, dt=0.5, tol=1e-8, "
        "10 steps, seeds 641/642 (see tests/test_golden.cpp)";
    t.steps = got;
    test::golden_save(kFixture, t);
    GTEST_SKIP() << "fixture regenerated at " << test::golden_path(kFixture);
  }
  expect_matches_fixture(got, "serial");
}

TEST(Golden, BandParallelMatchesFixture) {
  if (std::getenv("PTIM_GOLDEN_REGEN")) GTEST_SKIP();
  test::TinySystem sys = test::TinySystem::make(3.0);
  // Non-divisible band count (6 bands on 4 ranks), async ring.
  expect_matches_fixture(
      run_distributed(sys, dist::ProcessGrid{4, 1},
                      dist::ExchangePattern::kAsyncRing),
      "band-parallel p=4");
  expect_matches_fixture(
      run_distributed(sys, dist::ProcessGrid{3, 1},
                      dist::ExchangePattern::kRing),
      "band-parallel p=3 ring");
}

TEST(Golden, TwoDGridMatchesFixture) {
  if (std::getenv("PTIM_GOLDEN_REGEN")) GTEST_SKIP();
  test::TinySystem sys = test::TinySystem::make(3.0);
  // 2 x 2: bands AND the grid z/y dimensions are non-divisible (7-point
  // axes over 2 columns).
  expect_matches_fixture(
      run_distributed(sys, dist::ProcessGrid{2, 2},
                      dist::ExchangePattern::kAsyncRing),
      "2-D 2x2 async");
  // pb = 1, pg = 3: the pure grid-parallel column, bit-identical to the
  // serial operator by construction.
  expect_matches_fixture(
      run_distributed(sys, dist::ProcessGrid{1, 3},
                      dist::ExchangePattern::kBcast),
      "2-D 1x3 bcast");
}

// The Γ-point gamma_real flag on a genuinely COMPLEX propagated trajectory:
// the realness gate must detect the complex orbitals every step and fall
// back to the complex pipeline bitwise, so all three configurations still
// land on the same fixture. Any false-positive in the gate (filtering a
// complex field through the packed real path) would show up here as a
// fixture mismatch.
TEST(Golden, GammaRealFlagMatchesFixture) {
  if (std::getenv("PTIM_GOLDEN_REGEN")) GTEST_SKIP();
  test::TinySystem sys = test::TinySystem::make(3.0);
  expect_matches_fixture(run_serial(sys, /*gamma=*/true), "serial gamma");
  expect_matches_fixture(
      run_distributed(sys, dist::ProcessGrid{4, 1},
                      dist::ExchangePattern::kAsyncRing, /*gamma=*/true),
      "band-parallel p=4 gamma");
  expect_matches_fixture(
      run_distributed(sys, dist::ProcessGrid{2, 2},
                      dist::ExchangePattern::kRing, /*gamma=*/true),
      "2-D 2x2 ring gamma");
}
