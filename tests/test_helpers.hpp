#pragma once
// Shared fixtures: tiny silicon-like systems small enough for sub-second
// unit tests, random-matrix helpers, and the golden-trajectory fixture
// format every regression suite pins against (tests/golden/).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "grid/fft_grid.hpp"
#include "grid/gsphere.hpp"
#include "ham/hamiltonian.hpp"
#include "la/matrix.hpp"
#include "pseudo/atoms.hpp"
#include "pw/transforms.hpp"
#include "pw/wavefunction.hpp"

namespace ptim::test {

// A self-contained tiny periodic system: 2 Si atoms in a small cubic box.
struct TinySystem {
  std::unique_ptr<grid::Lattice> lattice;
  pseudo::AtomList atoms;
  std::unique_ptr<grid::GSphere> sphere;
  std::unique_ptr<grid::FftGrid> wfc_grid;
  std::unique_ptr<grid::FftGrid> den_grid;
  std::unique_ptr<ham::Hamiltonian> ham;

  static TinySystem make(real_t ecut = 3.0, real_t box = 8.0,
                         ham::HamiltonianOptions opt = {}) {
    TinySystem s;
    s.lattice = std::make_unique<grid::Lattice>(grid::Lattice::cubic(box));
    s.atoms.species = pseudo::Species::silicon_ah();
    s.atoms.positions = {{0.1 * box, 0.15 * box, 0.2 * box},
                         {0.6 * box, 0.55 * box, 0.65 * box}};
    s.sphere = std::make_unique<grid::GSphere>(*s.lattice, ecut);
    s.wfc_grid = std::make_unique<grid::FftGrid>(*s.lattice,
                                                 s.sphere->suggest_dims(1));
    s.den_grid = std::make_unique<grid::FftGrid>(*s.lattice,
                                                 s.sphere->suggest_dims(2));
    s.ham = std::make_unique<ham::Hamiltonian>(
        *s.lattice, s.atoms, *s.sphere, *s.wfc_grid, *s.den_grid, opt);
    return s;
  }
};

inline la::MatC random_matrix(size_t rows, size_t cols, unsigned seed) {
  Rng rng(seed);
  la::MatC m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform_cplx();
  return m;
}

inline la::MatC random_hermitian(size_t n, unsigned seed) {
  la::MatC a = random_matrix(n, n, seed);
  la::MatC h(n, n);
  for (size_t j = 0; j < n; ++j)
    for (size_t i = 0; i < n; ++i)
      h(i, j) = 0.5 * (a(i, j) + std::conj(a(j, i)));
  return h;
}

// Random Hermitian with eigenvalues in (0,1) — a physical occupation matrix.
inline la::MatC random_occupation_matrix(size_t n, unsigned seed) {
  la::MatC h = random_hermitian(n, seed);
  // Map spectrum into (0,1) via logistic of a scaled Hermitian: cheap —
  // shift/scale using Gershgorin bound.
  real_t bound = 0.0;
  for (size_t i = 0; i < n; ++i) {
    real_t row = 0.0;
    for (size_t j = 0; j < n; ++j) row += std::abs(h(i, j));
    bound = std::max(bound, row);
  }
  la::MatC occ(n, n);
  for (size_t j = 0; j < n; ++j)
    for (size_t i = 0; i < n; ++i)
      occ(i, j) = h(i, j) * (0.45 / std::max(bound, real_t(1.0)));
  for (size_t i = 0; i < n; ++i) occ(i, i) += 0.5;
  return occ;
}

// Orthonormal random orbitals on a sphere basis.
inline la::MatC random_orbitals(size_t npw, size_t nb, unsigned seed) {
  la::MatC phi = random_matrix(npw, nb, seed);
  pw::orthonormalize_lowdin(phi);
  return phi;
}

// Orthonormal Γ-point REAL orbitals: random real grid fields gathered to
// the sphere (conjugate-symmetric coefficients by construction), then
// Löwdin-orthonormalized — S is real symmetric for real fields, so S^{-1/2}
// mixes with real weights and the orbitals stay real in real space to
// rounding (~1e-16 relative imaginary dust, inside the gamma_real gate).
inline la::MatC random_real_orbitals(const pw::SphereGridMap& map, size_t nb,
                                     unsigned seed) {
  const size_t ng = map.grid().size();
  const size_t npw = map.sphere().npw();
  Rng rng(seed);
  la::MatC phi(npw, nb);
  std::vector<cplx> field(ng);
  for (size_t b = 0; b < nb; ++b) {
    for (auto& v : field) v = cplx(rng.uniform() - 0.5, 0.0);
    map.to_sphere(field.data(), phi.col(b));
  }
  pw::orthonormalize_lowdin(phi);
  return phi;
}

// ------------------------------------------------------ golden fixtures --
// Serialized per-step observables of a reference trajectory, pinned in
// tests/golden/ and replayed by regression suites (serial, band-parallel
// and 2-D band x grid configurations must all land within tolerance of the
// SAME file). Text format, one header line then one line per step with
// full-precision (%.17g) values:
//   # <free-form description>
//   step <k> energy <E> dipole <D> sigma_trace <T>
// PTIM_GOLDEN_DIR is injected by tests/CMakeLists.txt and points at the
// source-tree fixture directory, so ctest can run from any build dir.
// Regenerate with PTIM_GOLDEN_REGEN=1 (see test_golden.cpp).

struct GoldenStep {
  real_t energy = 0.0;
  real_t dipole = 0.0;
  real_t sigma_trace = 0.0;
};

struct GoldenTrajectory {
  std::string description;
  std::vector<GoldenStep> steps;
};

inline std::string golden_path(const std::string& name) {
#ifdef PTIM_GOLDEN_DIR
  return std::string(PTIM_GOLDEN_DIR) + "/" + name;
#else
  return "tests/golden/" + name;
#endif
}

inline GoldenTrajectory golden_load(const std::string& name) {
  const std::string path = golden_path(name);
  std::FILE* f = std::fopen(path.c_str(), "r");
  PTIM_CHECK_MSG(f != nullptr, "golden fixture missing: " << path);
  GoldenTrajectory t;
  char line[512];
  while (std::fgets(line, sizeof(line), f)) {
    if (line[0] == '#') {
      t.description += line + 1;
      continue;
    }
    int k = 0;
    double e = 0.0, d = 0.0, tr = 0.0;
    if (std::sscanf(line, "step %d energy %lf dipole %lf sigma_trace %lf",
                    &k, &e, &d, &tr) == 4) {
      PTIM_CHECK_MSG(k == static_cast<int>(t.steps.size()),
                     "golden fixture out of order: " << path);
      t.steps.push_back({e, d, tr});
    }
  }
  std::fclose(f);
  PTIM_CHECK_MSG(!t.steps.empty(), "golden fixture empty: " << path);
  return t;
}

inline void golden_save(const std::string& name, const GoldenTrajectory& t) {
  const std::string path = golden_path(name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  PTIM_CHECK_MSG(f != nullptr, "cannot write golden fixture: " << path);
  std::fprintf(f, "#%s\n", t.description.c_str());
  for (size_t k = 0; k < t.steps.size(); ++k)
    std::fprintf(f, "step %zu energy %.17g dipole %.17g sigma_trace %.17g\n",
                 k, t.steps[k].energy, t.steps[k].dipole,
                 t.steps[k].sigma_trace);
  std::fclose(f);
}

}  // namespace ptim::test
