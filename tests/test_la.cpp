// Linear algebra: gemm variants vs a reference triple loop, the two
// independent Hermitian eigensolvers cross-validated, Cholesky solves,
// least squares and the Anderson mixer.

#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/eig.hpp"
#include "la/lsq.hpp"
#include "la/matrix.hpp"
#include "la/mixer.hpp"
#include "la/util.hpp"
#include "test_helpers.hpp"

using namespace ptim;
using ptim::test::random_hermitian;
using ptim::test::random_matrix;

namespace {

la::MatC gemm_reference(char ta, char tb, const la::MatC& a,
                        const la::MatC& b) {
  auto elem = [](char t, const la::MatC& m, size_t i, size_t j) {
    if (t == 'N') return m(i, j);
    if (t == 'T') return m(j, i);
    return std::conj(m(j, i));
  };
  const size_t mr = (ta == 'N') ? a.rows() : a.cols();
  const size_t kk = (ta == 'N') ? a.cols() : a.rows();
  const size_t nc = (tb == 'N') ? b.cols() : b.rows();
  la::MatC c(mr, nc);
  for (size_t j = 0; j < nc; ++j)
    for (size_t i = 0; i < mr; ++i) {
      cplx acc = 0.0;
      for (size_t l = 0; l < kk; ++l)
        acc += elem(ta, a, i, l) * elem(tb, b, l, j);
      c(i, j) = acc;
    }
  return c;
}

}  // namespace

TEST(Matrix, BasicsAndIdentity) {
  la::MatC m = la::MatC::identity(4);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m(2, 2), cplx(1.0));
  EXPECT_EQ(m(2, 1), cplx(0.0));
  m(1, 3) = {2.0, -1.0};
  const la::MatC mh = m.conj_transpose();
  EXPECT_EQ(mh(3, 1), cplx(2.0, 1.0));
}

struct GemmCase {
  char ta, tb;
};
class GemmParam : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParam, MatchesReference) {
  const auto [ta, tb] = GetParam();
  const size_t m = 7, k = 5, n = 6;
  const la::MatC a = (ta == 'N') ? random_matrix(m, k, 1) : random_matrix(k, m, 1);
  const la::MatC b = (tb == 'N') ? random_matrix(k, n, 2) : random_matrix(n, k, 2);
  la::MatC c(m, n);
  la::gemm(ta, tb, 1.0, a, b, 0.0, c);
  const la::MatC ref = gemm_reference(ta, tb, a, b);
  EXPECT_LT(la::frob_diff(c, ref), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllOps, GemmParam,
                         ::testing::Values(GemmCase{'N', 'N'},
                                           GemmCase{'C', 'N'},
                                           GemmCase{'N', 'C'},
                                           GemmCase{'T', 'N'},
                                           GemmCase{'C', 'C'},
                                           GemmCase{'T', 'T'}));

TEST(Gemm, AlphaBetaAccumulate) {
  const la::MatC a = random_matrix(4, 3, 3);
  const la::MatC b = random_matrix(3, 4, 4);
  la::MatC c = random_matrix(4, 4, 5);
  const la::MatC c0 = c;
  la::gemm_nn(a, b, c, cplx(2.0), cplx(0.5));
  const la::MatC ab = gemm_reference('N', 'N', a, b);
  for (size_t j = 0; j < 4; ++j)
    for (size_t i = 0; i < 4; ++i)
      EXPECT_NEAR(std::abs(c(i, j) - (2.0 * ab(i, j) + 0.5 * c0(i, j))), 0.0,
                  1e-12);
}

class EigSize : public ::testing::TestWithParam<size_t> {};

TEST_P(EigSize, ReconstructionAndOrthonormality) {
  const size_t n = GetParam();
  const la::MatC a = random_hermitian(n, 100 + static_cast<unsigned>(n));
  const auto [w, v] = la::eig_herm(a);

  // Ascending eigenvalues.
  for (size_t i = 1; i < n; ++i) EXPECT_LE(w[i - 1], w[i] + 1e-12);

  // V^H V = I.
  la::MatC vhv(n, n);
  la::gemm_cn(v, v, vhv);
  EXPECT_LT(la::frob_diff(vhv, la::MatC::identity(n)), 1e-10 * n);

  // A V = V diag(w).
  la::MatC av(n, n);
  la::gemm_nn(a, v, av);
  for (size_t j = 0; j < n; ++j)
    for (size_t i = 0; i < n; ++i) av(i, j) -= w[j] * v(i, j);
  EXPECT_LT(la::frob_norm(av), 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSize,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64));

TEST(Eig, TridiagAgreesWithJacobi) {
  for (unsigned seed : {1u, 2u, 3u}) {
    const size_t n = 20;
    const la::MatC a = random_hermitian(n, seed);
    const auto r1 = la::eig_herm(a);
    const auto r2 = la::eig_herm_jacobi(a);
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(r1.w[i], r2.w[i], 1e-9);
  }
}

TEST(Eig, DegenerateSpectrum) {
  // diag(1,1,1,2) in a rotated basis.
  const size_t n = 4;
  la::MatC q = random_matrix(n, n, 9);
  la::MatC qq = q;
  // Orthonormalize columns by Gram-Schmidt via overlap eig (Loewdin-like).
  la::MatC s(n, n);
  la::gemm_cn(qq, qq, s);
  const auto es = la::eig_herm(s);
  la::MatC d(n, n);
  for (size_t j = 0; j < n; ++j)
    for (size_t i = 0; i < n; ++i)
      d(i, j) = es.V(i, j) / std::sqrt(es.w[j]);
  la::MatC qn(n, n);
  la::gemm_nn(qq, d, qn);

  la::MatC lam(n, n);
  lam(0, 0) = 1.0; lam(1, 1) = 1.0; lam(2, 2) = 1.0; lam(3, 3) = 2.0;
  la::MatC tmp(n, n), a(n, n);
  la::gemm_nn(qn, lam, tmp);
  la::gemm_nc(tmp, qn, a);
  la::hermitize(a);

  const auto r = la::eig_herm(a);
  EXPECT_NEAR(r.w[0], 1.0, 1e-10);
  EXPECT_NEAR(r.w[1], 1.0, 1e-10);
  EXPECT_NEAR(r.w[2], 1.0, 1e-10);
  EXPECT_NEAR(r.w[3], 2.0, 1e-10);
}

TEST(Eig, GeneralizedProblem) {
  const size_t n = 10;
  const la::MatC a = random_hermitian(n, 21);
  la::MatC b = random_hermitian(n, 22);
  for (size_t i = 0; i < n; ++i) b(i, i) += 4.0;  // make B positive definite

  const auto r = la::eig_herm_gen(a, b);
  // A x = w B x.
  la::MatC ax(n, n), bx(n, n);
  la::gemm_nn(a, r.V, ax);
  la::gemm_nn(b, r.V, bx);
  for (size_t j = 0; j < n; ++j)
    for (size_t i = 0; i < n; ++i) ax(i, j) -= r.w[j] * bx(i, j);
  EXPECT_LT(la::frob_norm(ax), 1e-9);
  // B-orthonormal: V^H B V = I.
  la::MatC vhbv(n, n);
  la::gemm_cn(r.V, bx, vhbv);
  EXPECT_LT(la::frob_diff(vhbv, la::MatC::identity(n)), 1e-9);
}

TEST(Cholesky, FactorAndSolves) {
  const size_t n = 12;
  la::MatC a = random_hermitian(n, 31);
  for (size_t i = 0; i < n; ++i) a(i, i) += 6.0;

  const la::MatC l = la::cholesky(a);
  la::MatC llh(n, n);
  la::gemm_nc(l, l, llh);
  EXPECT_LT(la::frob_diff(llh, a), 1e-10);

  // cholesky_solve: A X = B.
  const la::MatC b = random_matrix(n, 3, 32);
  la::MatC x = b;
  la::cholesky_solve(l, x);
  la::MatC ax(n, 3);
  la::gemm_nn(a, x, ax);
  EXPECT_LT(la::frob_diff(ax, b), 1e-9);

  // solve_upper_right: X L^H = B.
  la::MatC y = b.conj_transpose();  // 3 x n
  la::MatC rhs = y;
  la::solve_upper_right(l, y);
  la::MatC ylh(3, n);
  la::gemm('N', 'C', 1.0, y, l, 0.0, ylh);
  EXPECT_LT(la::frob_diff(ylh, rhs), 1e-9);
}

TEST(Cholesky, RejectsIndefinite) {
  la::MatC a = la::MatC::identity(3);
  a(2, 2) = -1.0;
  EXPECT_THROW(la::cholesky(a), Error);
}

TEST(Lsq, ExactAndOverdetermined) {
  // Exact square system.
  la::MatC a = random_matrix(5, 5, 41);
  for (size_t i = 0; i < 5; ++i) a(i, i) += 3.0;
  const la::MatC xref = random_matrix(5, 1, 42);
  std::vector<cplx> b(5);
  for (size_t i = 0; i < 5; ++i) {
    cplx acc = 0.0;
    for (size_t j = 0; j < 5; ++j) acc += a(i, j) * xref(j, 0);
    b[i] = acc;
  }
  const auto x = la::lsq_solve(a, b);
  for (size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(std::abs(x[i] - xref(i, 0)), 0.0, 1e-10);

  // Overdetermined: residual orthogonal to the column space.
  const la::MatC a2 = random_matrix(10, 3, 43);
  std::vector<cplx> b2(10);
  ptim::Rng rng(44);
  for (auto& v : b2) v = rng.uniform_cplx();
  const auto x2 = la::lsq_solve(a2, b2);
  std::vector<cplx> r = b2;
  for (size_t i = 0; i < 10; ++i)
    for (size_t j = 0; j < 3; ++j) r[i] -= a2(i, j) * x2[j];
  for (size_t j = 0; j < 3; ++j) {
    cplx proj = 0.0;
    for (size_t i = 0; i < 10; ++i) proj += std::conj(a2(i, j)) * r[i];
    EXPECT_NEAR(std::abs(proj), 0.0, 1e-10);
  }
}

TEST(Util, HermitizeCommutatorTrace) {
  la::MatC a = random_matrix(6, 6, 51);
  la::hermitize(a);
  EXPECT_LT(la::hermiticity_defect(a), 1e-14);

  const la::MatC h1 = random_hermitian(6, 52);
  const la::MatC h2 = random_hermitian(6, 53);
  const la::MatC c = la::commutator(h1, h2);
  // tr[A,B] = 0; [A,B] is anti-Hermitian for Hermitian A, B.
  EXPECT_NEAR(std::abs(la::trace(c)), 0.0, 1e-12);
  la::MatC ch = c.conj_transpose();
  for (size_t i = 0; i < c.size(); ++i) ch.data()[i] += c.data()[i];
  EXPECT_LT(la::frob_norm(ch), 1e-12);
}

TEST(Mixer, AcceleratesLinearFixedPoint) {
  // x = T(x) = M x + c with spectral radius < 1: Anderson should converge
  // much faster than plain iteration.
  const size_t n = 8;
  la::MatC m = random_hermitian(n, 61);
  real_t scale = 0.0;
  for (size_t i = 0; i < n; ++i) {
    real_t row = 0.0;
    for (size_t j = 0; j < n; ++j) row += std::abs(m(i, j));
    scale = std::max(scale, row);
  }
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] *= 0.9 / scale;
  std::vector<cplx> c(n);
  ptim::Rng rng(62);
  for (auto& v : c) v = rng.uniform_cplx();

  auto apply_t = [&](const std::vector<cplx>& x) {
    std::vector<cplx> y = c;
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j < n; ++j) y[i] += m(i, j) * x[j];
    return y;
  };

  la::AndersonMixer mixer(n, 8, 0.7);
  std::vector<cplx> x(n, cplx(0.0));
  real_t res = 1.0;
  int it = 0;
  for (; it < 50 && res > 1e-12; ++it) {
    const auto tx = apply_t(x);
    std::vector<cplx> f(n);
    res = 0.0;
    for (size_t i = 0; i < n; ++i) {
      f[i] = tx[i] - x[i];
      res += std::norm(f[i]);
    }
    res = std::sqrt(res);
    x = mixer.mix(x, f);
  }
  EXPECT_LT(res, 1e-10);
  EXPECT_LT(it, 25);  // plain damped iteration would need far more
}

TEST(Mixer, RealWrapperMatches) {
  la::AndersonMixerReal mixer(3, 4, 0.5);
  std::vector<real_t> x{1.0, 2.0, 3.0}, f{0.1, -0.2, 0.3};
  const auto next = mixer.mix(x, f);
  ASSERT_EQ(next.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(next[i], x[i] + 0.5 * f[i], 1e-14);
}
