// The obs tracing/metrics subsystem: name interning, span nesting and
// categories, ring wraparound, the zero-overhead-when-disabled pin,
// concurrent recording from HostAsync stream workers (the TSan CI job
// races this suite), the self-contained span wire format and the
// rank-merged Chrome trace (event-count deterministic across two golden
// 4-rank replays), and the StepReport JSONL metrics layer end to end
// through Simulation::run.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "backend/backend.hpp"
#include "backend/executor.hpp"
#include "common/timer.hpp"
#include "core/simulation.hpp"
#include "obs/obs.hpp"
#include "obs/step_report.hpp"
#include "obs/trace_export.hpp"
#include "ptmpi/comm.hpp"

using namespace ptim;

namespace {

// RAII tracing window: a failing test must not leak the enabled flag (or
// its spans) into the suites that run after it.
struct TraceGuard {
  TraceGuard() {
    obs::clear();
    obs::set_enabled(true);
  }
  ~TraceGuard() {
    obs::set_enabled(false);
    obs::clear();
  }
};

size_t count_named(const std::vector<obs::Span>& spans,
                   const std::string& name) {
  size_t n = 0;
  for (const auto& s : spans)
    if (obs::name_of(s.name_id) == name) ++n;
  return n;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

size_t count_substr(const std::string& hay, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

}  // namespace

// --- interning ------------------------------------------------------------

TEST(ObsInterner, IdsAreStableAndZeroIsMain) {
  EXPECT_EQ(obs::intern("main"), 0u);
  EXPECT_EQ(obs::name_of(0), "main");
  const uint32_t a = obs::intern("obs_test.alpha");
  EXPECT_EQ(obs::intern("obs_test.alpha"), a);  // same string, same id
  EXPECT_EQ(obs::name_of(a), "obs_test.alpha");
  EXPECT_NE(obs::intern("obs_test.beta"), a);
  EXPECT_GE(obs::interned_count(), 3u);
}

// --- span recording -------------------------------------------------------

TEST(ObsSpans, NestedSpansCarryTimesCategoriesAndTags) {
  TraceGuard trace;
  {
    OBS_SPAN("obs_test.outer", obs::Cat::kStep);
    {
      OBS_SPAN("obs_test.inner", obs::Cat::kComm);
    }
  }
  const std::vector<obs::Span> spans = obs::snapshot();
  const obs::Span* outer = nullptr;
  const obs::Span* inner = nullptr;
  for (const auto& s : spans) {
    if (obs::name_of(s.name_id) == "obs_test.outer") outer = &s;
    if (obs::name_of(s.name_id) == "obs_test.inner") inner = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // RAII scoping: the inner span lies inside the outer one.
  EXPECT_LE(outer->t0_ns, inner->t0_ns);
  EXPECT_LE(inner->t1_ns, outer->t1_ns);
  EXPECT_LE(inner->t0_ns, inner->t1_ns);
  EXPECT_EQ(outer->cat, obs::Cat::kStep);
  EXPECT_EQ(inner->cat, obs::Cat::kComm);
  EXPECT_EQ(outer->rank, -1);  // not a ptmpi rank thread
  EXPECT_EQ(outer->lane, 0u);  // the "main" lane
  EXPECT_STREQ(obs::cat_name(obs::Cat::kComm), "comm");
  EXPECT_STREQ(obs::cat_name(obs::Cat::kCompute), "compute");
}

TEST(ObsSpans, ScopedTimerFeedsBothProfileAndTrace) {
  TraceGuard trace;
  const uint32_t id = obs::intern("obs_test.timer");
  const long before = obs::profile_get(id).count;
  { ScopedTimer t("obs_test.timer"); }
  // The legacy string API accumulates into the obs profile slots...
  EXPECT_EQ(obs::profile_get(id).count, before + 1);
  // ...and doubles as a trace span while tracing is on.
  EXPECT_EQ(count_named(obs::snapshot(), "obs_test.timer"), 1u);
}

TEST(ObsSpans, RingWrapsKeepingNewestSpans) {
  TraceGuard trace;
  const size_t cap_before = obs::ring_capacity();
  obs::set_ring_capacity(16);  // applies to buffers allocated from now on
  std::thread recorder([] {
    for (int i = 0; i < 100; ++i) {
      OBS_SPAN("obs_test.wrap", obs::Cat::kCompute);
    }
  });
  recorder.join();
  obs::set_ring_capacity(cap_before);

  const std::vector<obs::Span> spans = obs::snapshot();
  EXPECT_EQ(count_named(spans, "obs_test.wrap"), 16u);
  EXPECT_GE(obs::dropped_spans(), 84u);
  // Oldest-first within the buffer: begin times must be non-decreasing.
  uint64_t prev = 0;
  for (const auto& s : spans)
    if (obs::name_of(s.name_id) == "obs_test.wrap") {
      EXPECT_GE(s.t0_ns, prev);
      prev = s.t0_ns;
    }
}

TEST(ObsSpans, DisabledTracingAllocatesNothing) {
  obs::set_enabled(false);
  obs::clear();
  const size_t bufs = obs::thread_buffer_count();
  // A fresh thread recording with tracing off must never allocate a ring
  // (the zero-overhead pin: an ObsSpan is one relaxed load and a branch).
  std::thread recorder([] {
    for (int i = 0; i < 10; ++i) {
      OBS_SPAN("obs_test.off", obs::Cat::kCompute);
      OBS_MARK("obs_test.off_mark", obs::Cat::kIo);
    }
  });
  recorder.join();
  EXPECT_EQ(obs::thread_buffer_count(), bufs);
  EXPECT_TRUE(obs::snapshot().empty());
}

TEST(ObsSpans, ConcurrentStreamWorkersRecordOnTheirOwnLanes) {
  TraceGuard trace;
  backend::Executor& ex = backend::shared_executor(backend::Kind::kHostAsync);
  std::vector<backend::Stream> streams;
  for (int i = 0; i < 4; ++i)
    streams.push_back(ex.create_stream("obs_test.stream" + std::to_string(i)));
  // 4 worker threads hammering their rings concurrently — the TSan CI job
  // races exactly this path.
  for (int iter = 0; iter < 200; ++iter)
    for (backend::Stream& s : streams)
      ex.launch(
          s, [] { OBS_SPAN("obs_test.task", obs::Cat::kCompute); },
          "obs_test.task");
  for (backend::Stream& s : streams) ex.synchronize(s);

  const std::vector<obs::Span> spans = obs::snapshot();
  EXPECT_EQ(count_named(spans, "obs_test.task"), 800u);
  // Every span carries its worker's lane: the interned stream name.
  std::set<std::string> lanes;
  for (const auto& s : spans)
    if (obs::name_of(s.name_id) == "obs_test.task")
      lanes.insert(obs::name_of(s.lane));
  EXPECT_EQ(lanes.size(), 4u);
  EXPECT_TRUE(lanes.count("obs_test.stream0"));
}

// --- wire format and rank merge -------------------------------------------

TEST(ObsExport, SerializeDeserializeRoundTrip) {
  std::vector<obs::Span> spans(2);
  spans[0].t0_ns = 100;
  spans[0].t1_ns = 250;
  spans[0].name_id = obs::intern("obs_test.ser");
  spans[0].lane = obs::intern("obs_test.ser_lane");
  spans[0].rank = 2;
  spans[0].cat = obs::Cat::kFft;
  spans[1].t0_ns = 300;
  spans[1].t1_ns = 300;
  spans[1].name_id = obs::intern("obs_test.ser_mark");
  spans[1].rank = -1;
  spans[1].cat = obs::Cat::kIo;

  std::vector<char> blob = obs::serialize_spans(spans);
  std::vector<obs::Span> out;
  obs::deserialize_spans(blob, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].t0_ns, 100u);
  EXPECT_EQ(out[0].t1_ns, 250u);
  EXPECT_EQ(obs::name_of(out[0].name_id), "obs_test.ser");
  EXPECT_EQ(obs::name_of(out[0].lane), "obs_test.ser_lane");
  EXPECT_EQ(out[0].rank, 2);
  EXPECT_EQ(out[0].cat, obs::Cat::kFft);
  EXPECT_EQ(out[1].rank, -1);

  // Truncation is a loud error, not a silently short trace.
  blob.pop_back();
  EXPECT_THROW(obs::deserialize_spans(blob, &out), std::runtime_error);
}

TEST(ObsExport, GatherMergesAllRankSpansOnRankZero) {
  ptmpi::run_ranks(4, 2, [](ptmpi::Comm& c) {
    std::vector<obs::Span> local(1);
    local[0].t0_ns = 10;
    local[0].t1_ns = 20;
    local[0].name_id = obs::intern("obs_test.gather");
    local[0].rank = c.rank();
    const std::vector<obs::Span> merged = obs::gather_spans(c, local);
    if (c.rank() == 0) {
      EXPECT_EQ(merged.size(), 4u);
      std::set<int> ranks;
      for (const auto& s : merged) {
        EXPECT_EQ(obs::name_of(s.name_id), "obs_test.gather");
        ranks.insert(s.rank);
      }
      EXPECT_EQ(ranks, (std::set<int>{0, 1, 2, 3}));
    } else {
      EXPECT_TRUE(merged.empty());
    }
  });
}

TEST(ObsExport, ChromeJsonNamesRankProcessesAndLanes) {
  std::vector<obs::Span> spans(2);
  spans[0].t0_ns = 1000;
  spans[0].t1_ns = 3500;
  spans[0].name_id = obs::intern("obs_test.chrome \"quoted\"");
  spans[0].lane = obs::intern("obs_test.chrome_lane");
  spans[0].rank = 1;
  spans[0].cat = obs::Cat::kComm;
  spans[1] = spans[0];
  spans[1].rank = 0;
  spans[1].cat = obs::Cat::kCompute;

  const std::string json = obs::chrome_trace_json(spans);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(count_substr(json, "\"ph\":\"X\""), 2u);
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 1\""), std::string::npos);
  EXPECT_NE(json.find("obs_test.chrome_lane"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);  // escaping
  EXPECT_NE(json.find("\"cat\":\"comm\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.5"), std::string::npos);  // ns -> us
}

// --- StepReport metrics ---------------------------------------------------

TEST(ObsMetrics, StepReportJsonlRoundTrips) {
  obs::StepReport r;
  r.job_id = 7;
  r.rank = 3;
  r.step = 42;
  r.seconds = 1.5;
  r.scf_iterations = 6;
  r.outer_iterations = 2;
  r.exchange_applications = 4;
  r.residual = 3.25e-8;
  r.converged = 0;
  r.ffts = 400;
  r.ring_bytes = 123456789012LL;
  r.alltoallv_bytes = 987;
  r.allreduce_bytes = 55;
  r.comm_seconds = 0.25;
  r.isdf_fit_seconds = 0.125;
  r.alloc_delta = 17;

  const std::string line = to_jsonl(r);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one line per record
  obs::StepReport p;
  ASSERT_TRUE(obs::from_jsonl(line, &p));
  EXPECT_EQ(p.job_id, 7);
  EXPECT_EQ(p.rank, 3);
  EXPECT_EQ(p.step, 42);
  EXPECT_EQ(p.seconds, 1.5);
  EXPECT_EQ(p.scf_iterations, 6);
  EXPECT_EQ(p.outer_iterations, 2);
  EXPECT_EQ(p.exchange_applications, 4);
  EXPECT_EQ(p.residual, 3.25e-8);
  EXPECT_EQ(p.converged, 0);
  EXPECT_EQ(p.ffts, 400);
  EXPECT_EQ(p.ring_bytes, 123456789012LL);
  EXPECT_EQ(p.alltoallv_bytes, 987);
  EXPECT_EQ(p.allreduce_bytes, 55);
  EXPECT_EQ(p.comm_seconds, 0.25);
  EXPECT_EQ(p.isdf_fit_seconds, 0.125);
  EXPECT_EQ(p.alloc_delta, 17);

  EXPECT_FALSE(obs::from_jsonl("not a json line", &p));
}

TEST(ObsMetrics, SamplerReportsDeltas) {
  obs::StepCounters t0;
  t0.ffts = 100;
  t0.alloc_count = 5;
  t0.comm.add("Sendrecv", 1000, 0.1);
  obs::StepCounters t1 = t0;
  t1.ffts = 160;
  t1.alloc_count = 9;
  t1.comm.add("Sendrecv", 2500, 0.3);
  t1.comm.add("Alltoallv", 700, 0.05);

  obs::StepSampler sampler;
  sampler.begin(t0);
  const obs::StepReport r = sampler.end(t1);
  EXPECT_EQ(r.ffts, 60);
  EXPECT_EQ(r.alloc_delta, 4);
  EXPECT_EQ(r.ring_bytes, 2500);  // Sendrecv delta
  EXPECT_EQ(r.alltoallv_bytes, 700);
  EXPECT_NEAR(r.comm_seconds, 0.35, 1e-12);
  EXPECT_GE(r.seconds, 0.0);
}

// --- end to end through Simulation::run -----------------------------------

TEST(ObsEndToEnd, SerialRunWritesOneReportPerStepAndATrace) {
  core::SystemSpec spec;
  spec.ecut = 1.5;
  spec.temperature_k = 8000.0;
  spec.scf.tol_rho = 5e-5;
  spec.scf.max_scf = 120;
  spec.scf.davidson_tol = 1e-6;
  spec.scf.max_outer_ace = 3;
  core::Simulation sim(spec);
  sim.prepare_ground_state();

  core::RunConfig cfg;
  cfg.steps = 2;
  cfg.dt = 1.0;
  cfg.variant = td::PtImVariant::kAce;
  cfg.tol = 1e-7;
  cfg.trace_path = "test_obs_serial_trace.json";
  cfg.metrics_path = "test_obs_serial_metrics.jsonl";
  std::remove(cfg.metrics_path.c_str());  // the sink appends
  (void)sim.run(cfg);

  std::ifstream f(cfg.metrics_path);
  ASSERT_TRUE(f.good());
  std::string line;
  long expect_step = 1;
  while (std::getline(f, line)) {
    obs::StepReport r;
    ASSERT_TRUE(obs::from_jsonl(line, &r)) << line;
    EXPECT_EQ(r.step, expect_step++);
    EXPECT_EQ(r.rank, -1);  // serial run
    EXPECT_EQ(r.job_id, -1);
    EXPECT_GT(r.ffts, 0);
    EXPECT_GT(r.scf_iterations, 0);
    EXPECT_EQ(r.converged, 1);
  }
  EXPECT_EQ(expect_step, cfg.steps + 1);

  const std::string trace = slurp(cfg.trace_path);
  EXPECT_GT(count_substr(trace, "\"ph\":\"X\""), 0u);
  EXPECT_NE(trace.find("td.ptim_step"), std::string::npos);
  // Tracing was scoped to the run: the global recorder is off and empty.
  EXPECT_FALSE(obs::enabled());
  EXPECT_TRUE(obs::snapshot().empty());
}

TEST(ObsEndToEnd, RankMergedTraceIsDeterministicAcrossGoldenReplays) {
  core::SystemSpec spec;
  spec.ecut = 1.5;
  spec.temperature_k = 8000.0;
  spec.scf.tol_rho = 5e-5;
  spec.scf.max_scf = 120;
  spec.scf.davidson_tol = 1e-6;
  spec.scf.max_outer_ace = 3;
  core::Simulation sim(spec);
  sim.prepare_ground_state();

  core::RunConfig cfg;
  cfg.steps = 2;
  cfg.dt = 1.0;
  cfg.variant = td::PtImVariant::kAce;
  cfg.tol = 1e-7;
  cfg.nranks = 4;
  cfg.ranks_per_node = 2;

  cfg.trace_path = "test_obs_dist_trace_a.json";
  (void)sim.run(cfg);
  cfg.trace_path = "test_obs_dist_trace_b.json";
  (void)sim.run(cfg);

  const std::string a = slurp("test_obs_dist_trace_a.json");
  const std::string b = slurp("test_obs_dist_trace_b.json");
  // All four ranks landed in ONE merged file...
  for (int r = 0; r < 4; ++r)
    EXPECT_NE(a.find("\"rank " + std::to_string(r) + "\""),
              std::string::npos);
  // ...with per-rank step spans and ring comm spans on their lanes.
  EXPECT_GT(count_substr(a, "td.dist_step"), 0u);
  EXPECT_GT(count_substr(a, "\"cat\":\"comm\""), 0u);
  EXPECT_GT(count_substr(a, "\"cat\":\"compute\""), 0u);
  // The trajectory is bit-exact run to run, so the span COUNT of the
  // merged trace is too (timestamps of course differ).
  const size_t na = count_substr(a, "\"ph\":\"X\"");
  EXPECT_GT(na, 0u);
  EXPECT_EQ(na, count_substr(b, "\"ph\":\"X\""));
}
