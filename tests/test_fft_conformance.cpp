// Cross-variant FFT conformance suite: one randomized property set
// (linearity, Parseval, impulse, round-trip, conjugate symmetry of
// real-input spectra, Bluestein odd-prime dims, width-1 tiles) replayed
// against EVERY engine variant — scalar/AVX2/AVX-512/NEON kernels x
// FP64/FP32 x serial/distributed x c2c/packed-r2c — plus the bitwise pins
// that make engine selection a pure performance knob:
//   * every vector ISA produces bit-identical transforms to the scalar
//     kernels (no FMA, -ffp-contract=off; see fft/simd.hpp),
//   * real-input spectra satisfy spec[-k] == conj(spec[k]) exactly,
//   * the distributed packed-real path filters real-even kernels like the
//     serial engine and moves HALF the Alltoallv bytes per field,
//   * concurrent callers (distinct plans or a shared plan) never race —
//     all tile scratch is per-thread and function-local (the TSan CI job
//     runs this suite via the dist label).
// CI runs the suite twice through `ctest -L fftconf`: once with
// PTIM_SIMD=scalar and once with the default best-available ISA.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fft/dist_fft.hpp"
#include "fft/fft.hpp"
#include "fft/simd.hpp"
#include "ptmpi/comm.hpp"

using namespace ptim;
using fft::simd::Isa;

namespace {

template <typename R>
std::vector<std::complex<R>> random_box(size_t n, unsigned seed) {
  Rng rng(seed);
  std::vector<std::complex<R>> v(n);
  for (auto& x : v)
    x = std::complex<R>(static_cast<R>(rng.uniform() - 0.5),
                        static_cast<R>(rng.uniform() - 0.5));
  return v;
}

template <typename R>
std::vector<R> random_real_box(size_t n, unsigned seed) {
  Rng rng(seed);
  std::vector<R> v(n);
  for (auto& x : v) x = static_cast<R>(rng.uniform() - 0.5);
  return v;
}

// Property tolerance per scalar type (absolute, on O(1) random data).
template <typename R>
constexpr double prop_tol() {
  return std::is_same_v<R, float> ? 2e-4 : 1e-10;
}

// Force an ISA for the current scope (exception-safe clear).
struct IsaGuard {
  explicit IsaGuard(Isa isa) { fft::simd::force_isa(isa); }
  ~IsaGuard() { fft::simd::clear_forced_isa(); }
};

constexpr std::array<Isa, 4> kAllIsas{Isa::kScalar, Isa::kAvx2, Isa::kAvx512,
                                      Isa::kNeon};

// A real, EVEN spectral filter on the dims box (K(-G) == K(G) under the
// modular index negation) — the shape class the exchange kernel belongs
// to, and the only class the PACKED distributed real spectra support.
template <typename R>
std::vector<R> real_even_kernel(std::array<size_t, 3> d) {
  std::vector<R> k(d[0] * d[1] * d[2]);
  size_t i = 0;
  for (size_t i2 = 0; i2 < d[2]; ++i2)
    for (size_t i1 = 0; i1 < d[1]; ++i1)
      for (size_t i0 = 0; i0 < d[0]; ++i0, ++i) {
        const size_t m0 = std::min(i0, d[0] - i0);
        const size_t m1 = std::min(i1, d[1] - i1);
        const size_t m2 = std::min(i2, d[2] - i2);
        k[i] = R(1) / static_cast<R>(1 + m0 * m0 + m1 * m1 + m2 * m2);
      }
  return k;
}

// ---------------------------------------------- per-variant property set --
// Every checker below drives the BATCHED engines (forward_batch and
// friends), because that is the path running through the dispatched SIMD
// tile kernels; the ISA under test is forced by the fixture.

template <typename R>
void check_roundtrip_c2c(std::array<size_t, 3> d, size_t nbatch,
                         unsigned seed) {
  fft::Fft3T<R> f(d[0], d[1], d[2]);
  const auto orig = random_box<R>(nbatch * f.size(), seed);
  auto x = orig;
  f.forward_batch(x.data(), nbatch);
  f.inverse_batch(x.data(), nbatch);
  for (size_t i = 0; i < x.size(); ++i)
    ASSERT_NEAR(std::abs(x[i] - orig[i]), 0.0, prop_tol<R>()) << "i=" << i;
}

template <typename R>
void check_linearity(std::array<size_t, 3> d, unsigned seed) {
  using C = std::complex<R>;
  fft::Fft3T<R> f(d[0], d[1], d[2]);
  const size_t ng = f.size();
  auto a = random_box<R>(ng, seed);
  auto b = random_box<R>(ng, seed + 1);
  const C alpha(R(0.3), R(-1.2));
  std::vector<C> c(ng);
  for (size_t i = 0; i < ng; ++i) c[i] = a[i] + alpha * b[i];
  f.forward_batch(a.data(), 1);
  f.forward_batch(b.data(), 1);
  f.forward_batch(c.data(), 1);
  for (size_t i = 0; i < ng; ++i)
    ASSERT_NEAR(std::abs(c[i] - (a[i] + alpha * b[i])), 0.0,
                prop_tol<R>() * static_cast<double>(ng))
        << "i=" << i;
}

template <typename R>
void check_parseval(std::array<size_t, 3> d, unsigned seed) {
  fft::Fft3T<R> f(d[0], d[1], d[2]);
  const size_t ng = f.size();
  auto x = random_box<R>(ng, seed);
  double ex = 0.0;
  for (size_t i = 0; i < ng; ++i) ex += std::norm(static_cast<cplx>(x[i]));
  f.forward_batch(x.data(), 1);
  double ey = 0.0;
  for (size_t i = 0; i < ng; ++i) ey += std::norm(static_cast<cplx>(x[i]));
  EXPECT_NEAR(ey, ex * static_cast<double>(ng),
              prop_tol<R>() * ex * static_cast<double>(ng));
}

template <typename R>
void check_impulse(std::array<size_t, 3> d) {
  using C = std::complex<R>;
  fft::Fft3T<R> f(d[0], d[1], d[2]);
  std::vector<C> x(f.size(), C(0));
  x[0] = C(1);
  f.forward_batch(x.data(), 1);
  for (size_t i = 0; i < f.size(); ++i)
    ASSERT_NEAR(std::abs(x[i] - C(1)), 0.0, prop_tol<R>()) << "i=" << i;
}

// Packed r2c: conjugate symmetry is BITWISE (the unscramble computes
// spec[k] and spec[-k] from the same mirrored sums), the spectra match the
// complex engine on real inputs at tolerance, and the r2c/c2r pair round
// trips — including an ODD field count (zero-padded trailing lane).
template <typename R>
void check_real_batch(std::array<size_t, 3> d, size_t nreal, unsigned seed) {
  using C = std::complex<R>;
  fft::Fft3T<R> f(d[0], d[1], d[2]);
  const size_t ng = f.size();
  const auto x = random_real_box<R>(nreal * ng, seed);
  std::vector<C> spec(nreal * ng);
  f.forward_batch_real(x.data(), spec.data(), nreal);

  for (size_t b = 0; b < nreal; ++b) {
    const C* s = spec.data() + b * ng;
    // Bitwise conjugate symmetry over the 3-D negated index.
    size_t i = 0;
    for (size_t i2 = 0; i2 < d[2]; ++i2)
      for (size_t i1 = 0; i1 < d[1]; ++i1)
        for (size_t i0 = 0; i0 < d[0]; ++i0, ++i) {
          const size_t ni = ((d[0] - i0) % d[0]) +
                            d[0] * (((d[1] - i1) % d[1]) +
                                    d[1] * ((d[2] - i2) % d[2]));
          ASSERT_EQ(s[ni], std::conj(s[i])) << "b=" << b << " i=" << i;
        }
    // Against the complex engine on the same (real) field.
    std::vector<C> z(ng);
    for (size_t j = 0; j < ng; ++j) z[j] = C(x[b * ng + j], R(0));
    f.forward_batch(z.data(), 1);
    for (size_t j = 0; j < ng; ++j)
      ASSERT_NEAR(std::abs(s[j] - z[j]), 0.0,
                  prop_tol<R>() * static_cast<double>(ng))
          << "b=" << b << " j=" << j;
  }

  std::vector<R> back(nreal * ng);
  f.inverse_batch_real(spec.data(), back.data(), nreal);
  for (size_t i = 0; i < back.size(); ++i)
    ASSERT_NEAR(static_cast<double>(std::abs(back[i] - x[i])), 0.0,
                prop_tol<R>())
        << "i=" << i;
}

// 1-D Γ-point pair: two real signals through one complex transform match
// two complex transforms, unpaired (null b) included, and round trip.
template <typename R>
void check_real_pair_1d(size_t n, unsigned seed) {
  using C = std::complex<R>;
  fft::Plan1DT<R> plan(n);
  const auto a = random_real_box<R>(n, seed);
  const auto b = random_real_box<R>(n, seed + 1);
  std::vector<C> fa(n), fb(n), ref(n);
  plan.forward_real_pair(a.data(), b.data(), fa.data(), fb.data());
  for (const auto* s : {&a, &b}) {
    std::vector<C> z(n);
    for (size_t j = 0; j < n; ++j) z[j] = C((*s)[j], R(0));
    plan.forward(z.data(), ref.data());
    const C* got = (s == &a) ? fa.data() : fb.data();
    for (size_t j = 0; j < n; ++j)
      ASSERT_NEAR(std::abs(got[j] - ref[j]), 0.0,
                  prop_tol<R>() * static_cast<double>(n))
          << "n=" << n << " j=" << j;
  }
  std::vector<R> ra(n), rb(n);
  plan.inverse_real_pair(fa.data(), fb.data(), ra.data(), rb.data());
  for (size_t j = 0; j < n; ++j) {
    ASSERT_NEAR(static_cast<double>(std::abs(ra[j] - a[j])), 0.0,
                prop_tol<R>());
    ASSERT_NEAR(static_cast<double>(std::abs(rb[j] - b[j])), 0.0,
                prop_tol<R>());
  }
  // Unpaired trailing signal: fb may be null.
  std::vector<C> fa2(n);
  plan.forward_real_pair(a.data(), nullptr, fa2.data(), nullptr);
  for (size_t j = 0; j < n; ++j)
    ASSERT_NEAR(std::abs(fa2[j] - fa[j]), 0.0,
                prop_tol<R>() * static_cast<double>(n));
}

}  // namespace

// ------------------------------------------------- ISA-parameterized run --

class FftConformance : public ::testing::TestWithParam<Isa> {
 protected:
  void SetUp() override {
    if (!fft::simd::available(GetParam()))
      GTEST_SKIP() << "ISA not available in this build/CPU: "
                   << fft::simd::isa_name(GetParam());
    fft::simd::force_isa(GetParam());
  }
  void TearDown() override { fft::simd::clear_forced_isa(); }
};

INSTANTIATE_TEST_SUITE_P(
    Isas, FftConformance,
    ::testing::Values(Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kNeon),
    [](const ::testing::TestParamInfo<Isa>& info) {
      return std::string(fft::simd::isa_name(info.param));
    });

TEST_P(FftConformance, RoundTripC2C) {
  check_roundtrip_c2c<double>({6, 5, 4}, 3, 1000);
  check_roundtrip_c2c<float>({6, 5, 4}, 3, 1001);
}

TEST_P(FftConformance, BluesteinOddPrimeDims) {
  // Every axis of {11, 13, 9} except the last runs the chirp-z fallback.
  check_roundtrip_c2c<double>({11, 13, 9}, 2, 1010);
  check_roundtrip_c2c<float>({11, 13, 9}, 2, 1011);
  check_real_batch<double>({11, 13, 9}, 3, 1012);
  check_real_pair_1d<double>(31, 1013);
  check_real_pair_1d<float>(13, 1014);
}

TEST_P(FftConformance, Linearity) {
  check_linearity<double>({6, 5, 4}, 1020);
  check_linearity<float>({6, 5, 4}, 1021);
}

TEST_P(FftConformance, Parseval) {
  check_parseval<double>({8, 5, 7}, 1030);
  check_parseval<float>({8, 5, 7}, 1031);
}

TEST_P(FftConformance, Impulse) {
  check_impulse<double>({6, 6, 3});
  check_impulse<float>({6, 6, 3});
}

TEST_P(FftConformance, RealBatchConjugateSymmetryAndRoundTrip) {
  // Odd field counts exercise the zero-padded trailing lane.
  check_real_batch<double>({6, 5, 4}, 5, 1040);
  check_real_batch<float>({6, 5, 4}, 5, 1041);
  check_real_batch<double>({4, 4, 4}, 1, 1042);
}

TEST_P(FftConformance, RealPair1D) {
  check_real_pair_1d<double>(24, 1050);
  check_real_pair_1d<float>(30, 1051);
}

TEST_P(FftConformance, Width1Tiles) {
  // {1, 1, n} boxes push vlen == 1 tiles through the kernels on axis 2,
  // and the single-array call must stay bit-identical to a width-1 batch.
  check_roundtrip_c2c<double>({1, 1, 30}, 2, 1060);
  check_roundtrip_c2c<float>({1, 1, 30}, 2, 1061);
  fft::Fft3 f(6, 5, 4);
  auto a = random_box<double>(f.size(), 1062);
  auto b = a;
  f.forward(a.data());
  f.forward_batch(b.data(), 1);
  for (size_t i = 0; i < f.size(); ++i) ASSERT_EQ(a[i], b[i]) << "i=" << i;
}

// ------------------------------------------------ bitwise scalar-vs-SIMD --

namespace {

// Forward + inverse of every available vector ISA must be bit-identical to
// the scalar kernels — c2c and packed r2c, FP64 and FP32 alike.
template <typename R>
void check_bitwise_vs_scalar(std::array<size_t, 3> d, size_t nbatch,
                             unsigned seed) {
  using C = std::complex<R>;
  fft::Fft3T<R> f(d[0], d[1], d[2]);
  const size_t ng = f.size();
  const auto input = random_box<R>(nbatch * ng, seed);
  const auto rinput = random_real_box<R>(nbatch * ng, seed + 1);

  std::vector<C> ref_fwd, ref_inv, ref_spec;
  std::vector<R> ref_real;
  {
    IsaGuard g(Isa::kScalar);
    ref_fwd = input;
    f.forward_batch(ref_fwd.data(), nbatch);
    ref_inv = ref_fwd;
    f.inverse_batch(ref_inv.data(), nbatch);
    ref_spec.resize(nbatch * ng);
    f.forward_batch_real(rinput.data(), ref_spec.data(), nbatch);
    ref_real.resize(nbatch * ng);
    f.inverse_batch_real(ref_spec.data(), ref_real.data(), nbatch);
  }

  for (const Isa isa : kAllIsas) {
    if (isa == Isa::kScalar || !fft::simd::available(isa)) continue;
    IsaGuard g(isa);
    auto fwd = input;
    f.forward_batch(fwd.data(), nbatch);
    auto inv = fwd;
    f.inverse_batch(inv.data(), nbatch);
    std::vector<C> spec(nbatch * ng);
    f.forward_batch_real(rinput.data(), spec.data(), nbatch);
    std::vector<R> real_back(nbatch * ng);
    f.inverse_batch_real(spec.data(), real_back.data(), nbatch);
    for (size_t i = 0; i < fwd.size(); ++i) {
      ASSERT_EQ(fwd[i], ref_fwd[i])
          << fft::simd::isa_name(isa) << " fwd i=" << i;
      ASSERT_EQ(inv[i], ref_inv[i])
          << fft::simd::isa_name(isa) << " inv i=" << i;
      ASSERT_EQ(spec[i], ref_spec[i])
          << fft::simd::isa_name(isa) << " spec i=" << i;
      ASSERT_EQ(real_back[i], ref_real[i])
          << fft::simd::isa_name(isa) << " real i=" << i;
    }
  }
}

}  // namespace

TEST(FftSimdBitwise, VectorIsasMatchScalarFp64) {
  check_bitwise_vs_scalar<double>({6, 5, 4}, 3, 2000);
  check_bitwise_vs_scalar<double>({11, 13, 9}, 2, 2001);  // Bluestein axes
  check_bitwise_vs_scalar<double>({16, 8, 4}, 1, 2002);   // pow-2 radix path
}

TEST(FftSimdBitwise, VectorIsasMatchScalarFp32) {
  check_bitwise_vs_scalar<float>({6, 5, 4}, 3, 2010);
  check_bitwise_vs_scalar<float>({11, 13, 9}, 2, 2011);
  check_bitwise_vs_scalar<float>({16, 8, 4}, 1, 2012);
}

TEST(FftSimdDispatch, SelectionAndForcing) {
  // The scalar table is always compiled and available; best_available()
  // and active_isa() return something this CPU can run; forcing an
  // unavailable ISA throws instead of silently misdispatching.
  EXPECT_TRUE(fft::simd::compiled(Isa::kScalar));
  EXPECT_TRUE(fft::simd::available(Isa::kScalar));
  EXPECT_TRUE(fft::simd::available(fft::simd::best_available()));
  EXPECT_TRUE(fft::simd::available(fft::simd::active_isa()));
  for (const Isa isa : kAllIsas) {
    if (!fft::simd::available(isa)) {
      EXPECT_THROW(fft::simd::force_isa(isa), Error);
    }
  }
}

// -------------------------------------------------- distributed variants --

namespace {

// This rank's z slab of `nfields` full boxes (real or complex elements).
template <typename T>
std::vector<T> slice_real_slab(const std::vector<T>& full,
                               const std::array<size_t, 3>& d,
                               const dist::BlockLayout& z, int r,
                               size_t nfields) {
  const size_t plane = d[0] * d[1];
  const size_t ng = plane * d[2];
  std::vector<T> out(nfields * plane * z.count(r));
  size_t w = 0;
  for (size_t b = 0; b < nfields; ++b)
    for (size_t zz = z.offset(r); zz < z.offset(r) + z.count(r); ++zz)
      for (size_t i = 0; i < plane; ++i)
        out[w++] = full[b * ng + zz * plane + i];
  return out;
}

// Distributed packed-real filter pipeline vs the serial engine: the packed
// pencil spectra carry TWO real fields per lane, so a REAL EVEN kernel
// multiply filters both exactly (the documented contract) — the full
// forward -> filter -> inverse chain must agree with the serial
// r2c -> filter -> c2r chain on every rank.
template <typename R>
void check_dist_real_filter(std::array<size_t, 3> d, int pg, size_t nfields,
                            unsigned seed) {
  using C = std::complex<R>;
  const size_t ng = d[0] * d[1] * d[2];
  const auto input = random_real_box<R>(nfields * ng, seed);
  const auto kernel = real_even_kernel<R>(d);

  fft::Fft3T<R> serial(d[0], d[1], d[2]);
  std::vector<C> spec(nfields * ng);
  serial.forward_batch_real(input.data(), spec.data(), nfields);
  for (size_t b = 0; b < nfields; ++b)
    for (size_t i = 0; i < ng; ++i) spec[b * ng + i] *= kernel[i];
  std::vector<R> ref(nfields * ng);
  serial.inverse_batch_real(spec.data(), ref.data(), nfields);

  ptmpi::run_ranks(pg, 2, [&](ptmpi::Comm& c) {
    fft::DistFft3T<R> f(d, c);
    const auto slab =
        slice_real_slab(input, d, f.zslabs(), c.rank(), nfields);
    const size_t nlanes = (nfields + 1) / 2;
    std::vector<C> pencil(nlanes * f.npencil());
    f.forward_batch_real(slab.data(), pencil.data(), nfields);
    for (size_t q = 0; q < nlanes; ++q)
      for (size_t i = 0; i < f.npencil(); ++i)
        pencil[q * f.npencil() + i] *= kernel[f.pencil_to_global(i)];
    std::vector<R> back(nfields * f.nreal());
    f.inverse_batch_real(pencil.data(), back.data(), nfields);
    const auto ref_slab =
        slice_real_slab(ref, d, f.zslabs(), c.rank(), nfields);
    ASSERT_EQ(back.size(), ref_slab.size());
    for (size_t i = 0; i < back.size(); ++i)
      ASSERT_NEAR(static_cast<double>(std::abs(back[i] - ref_slab[i])), 0.0,
                  prop_tol<R>())
          << "rank " << c.rank() << " i=" << i;
  });
}

}  // namespace

TEST(DistFftConformance, PackedRealFilterMatchesSerialFp64) {
  check_dist_real_filter<double>({6, 5, 4}, 3, 5, 3000);  // odd field count
  check_dist_real_filter<double>({4, 2, 3}, 5, 2, 3001);  // zero-row ranks
}

TEST(DistFftConformance, PackedRealFilterMatchesSerialFp32) {
  check_dist_real_filter<float>({6, 5, 4}, 3, 4, 3010);
}

TEST(DistFftConformance, PackedRealHalvesAlltoallvBytes) {
  // nfields real slabs ride ceil(nfields/2) complex lanes, so the pencil
  // transpose moves exactly HALF the bytes of the complex batch.
  const std::array<size_t, 3> d{6, 5, 4};
  const size_t nfields = 4;
  const size_t ng = d[0] * d[1] * d[2];
  const auto rin = random_real_box<double>(nfields * ng, 3020);
  const auto cin = random_box<double>(nfields * ng, 3021);
  ptmpi::run_ranks(3, 2, [&](ptmpi::Comm& c) {
    fft::DistFft3 f(d, c);
    const auto cslab = slice_real_slab(cin, d, f.zslabs(), c.rank(), nfields);
    std::vector<cplx> pencil(nfields * f.npencil());
    const auto b0 = c.stats().ops["Alltoallv"].bytes;
    f.forward(cslab.data(), pencil.data(), nfields);
    const auto cplx_bytes = c.stats().ops["Alltoallv"].bytes - b0;

    const auto rslab = slice_real_slab(rin, d, f.zslabs(), c.rank(), nfields);
    std::vector<cplx> rpencil((nfields / 2) * f.npencil());
    const auto b1 = c.stats().ops["Alltoallv"].bytes;
    f.forward_batch_real(rslab.data(), rpencil.data(), nfields);
    const auto real_bytes = c.stats().ops["Alltoallv"].bytes - b1;

    EXPECT_GT(real_bytes, 0u);
    EXPECT_EQ(2 * real_bytes, cplx_bytes) << "rank " << c.rank();
  });
}

// ------------------------------------------------------ concurrent plans --

namespace {

// Round-trip workload one thread runs on its own plan and buffers.
template <typename R>
void roundtrip_worker(const std::array<size_t, 3>& d, size_t nbatch,
                      unsigned seed, bool shared_plan,
                      const fft::Fft3T<R>* shared, double* max_err) {
  using C = std::complex<R>;
  fft::Fft3T<R> own(d[0], d[1], d[2]);
  const fft::Fft3T<R>& f = shared_plan ? *shared : own;
  const auto orig = random_box<R>(nbatch * f.size(), seed);
  std::vector<C> x;
  double err = 0.0;
  for (int rep = 0; rep < 4; ++rep) {
    x = orig;
    f.forward_batch(x.data(), nbatch);
    f.inverse_batch(x.data(), nbatch);
    for (size_t i = 0; i < x.size(); ++i)
      err = std::max(err, static_cast<double>(std::abs(x[i] - orig[i])));
  }
  *max_err = err;
}

}  // namespace

// Satellite of the scratch audit: ALL per-transform scratch of the serial
// engines (axis-pass tiles, Bluestein convolution buffers, packing lanes)
// is function-local — concurrent std::thread callers on DISTINCT plans and
// on one SHARED plan must both be race-free (the TSan CI job executes this
// suite) and exact. Only DistFft3T carries persistent mutable scratch,
// which its API contract pins to one call stream per instance.
TEST(FftConcurrency, DistinctPlansDontRace) {
  const int nthreads = 4;
  std::vector<double> errs(static_cast<size_t>(nthreads), 1.0);
  std::vector<std::thread> ts;
  const std::array<std::array<size_t, 3>, 4> dims{
      {{6, 5, 4}, {8, 6, 5}, {11, 13, 9}, {4, 4, 4}}};
  for (int t = 0; t < nthreads; ++t)
    ts.emplace_back(roundtrip_worker<double>, dims[static_cast<size_t>(t)], 2,
                    4000u + static_cast<unsigned>(t), false, nullptr,
                    &errs[static_cast<size_t>(t)]);
  for (auto& t : ts) t.join();
  for (int t = 0; t < nthreads; ++t)
    EXPECT_LT(errs[static_cast<size_t>(t)], 1e-10) << "thread " << t;
}

TEST(FftConcurrency, SharedPlanConcurrentCallers) {
  const int nthreads = 4;
  const std::array<size_t, 3> d{6, 5, 4};
  fft::Fft3 shared(d[0], d[1], d[2]);
  std::vector<double> errs(static_cast<size_t>(nthreads), 1.0);
  std::vector<std::thread> ts;
  for (int t = 0; t < nthreads; ++t)
    ts.emplace_back(roundtrip_worker<double>, d, 3,
                    4100u + static_cast<unsigned>(t), true, &shared,
                    &errs[static_cast<size_t>(t)]);
  for (auto& t : ts) t.join();
  for (int t = 0; t < nthreads; ++t)
    EXPECT_LT(errs[static_cast<size_t>(t)], 1e-10) << "thread " << t;
}
