// 2-D band x grid decomposition: Comm::split semantics (contexts,
// determinism, nesting, SHM), the distributed slab FFT and its pencil
// transpose (bitwise-identical to the serial engine, round trips on uneven
// and zero-row decompositions), and the slab-aware exchange — pinned
// bit-identical to the serial operator at pb = 1 and to the 1-D
// band-parallel operator at fixed pb, for all three circulation patterns
// x {FP64, FP32} x {sync, serial, async} backends on non-divisible band
// and grid counts. Also pins the pg-fold reduction of per-rank ring bytes.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <vector>

#include "backend/backend.hpp"
#include "common/rng.hpp"
#include "dist/exchange_dist.hpp"
#include "dist/rotate.hpp"
#include "dist/slab_exchange.hpp"
#include "fft/dist_fft.hpp"
#include "la/blas.hpp"
#include "la/util.hpp"
#include "ptmpi/comm.hpp"
#include "test_helpers.hpp"

using namespace ptim;

// ----------------------------------------------------------- Comm::split --

TEST(CommSplit, RowColumnLayout) {
  const dist::ProcessGrid pg{2, 3};
  ptmpi::run_ranks(6, 2, [&](ptmpi::Comm& c) {
    const int br = pg.band_rank_of(c.rank());
    const int gr = pg.grid_rank_of(c.rank());
    ptmpi::Comm band = c.split(/*color=*/gr, /*key=*/br);
    ptmpi::Comm grid = c.split(/*color=*/br, /*key=*/gr);
    EXPECT_EQ(band.size(), 2);
    EXPECT_EQ(grid.size(), 3);
    EXPECT_EQ(band.rank(), br);
    EXPECT_EQ(grid.rank(), gr);
    EXPECT_EQ(band.world_rank(), c.rank());
    EXPECT_EQ(grid.world_rank(), c.rank());
  });
}

TEST(CommSplit, KeyOrderingAndTies) {
  // Reversed keys reverse the ranks; equal keys fall back to parent order.
  ptmpi::run_ranks(5, 2, [&](ptmpi::Comm& c) {
    ptmpi::Comm rev = c.split(0, /*key=*/-c.rank());
    EXPECT_EQ(rev.rank(), c.size() - 1 - c.rank());
    ptmpi::Comm tie = c.split(0, /*key=*/7);
    EXPECT_EQ(tie.rank(), c.rank());
  });
}

TEST(CommSplit, MessageContextsAreIsolated) {
  // The same (peer, tag) is in flight on the parent and on a subcomm at
  // once; matching by context keeps the payloads apart.
  ptmpi::run_ranks(4, 2, [&](ptmpi::Comm& c) {
    ptmpi::Comm sub = c.split(c.rank() % 2, c.rank());  // {0,2} and {1,3}
    const int wpeer = c.rank() ^ 2;                     // world partner
    const int speer = sub.rank() ^ 1;                   // subcomm partner
    const int tag = 42;
    double wsend = 100.0 + c.rank(), wrecv = 0.0;
    double ssend = 200.0 + c.rank(), srecv = 0.0;
    // Post the world send first, then the subcomm exchange, then complete
    // the world receive: a context-blind matcher would cross the streams.
    ptmpi::Request rs = c.isend(wpeer, &wsend, sizeof(double), tag);
    sub.sendrecv(speer, &ssend, sizeof(double), speer, &srecv, sizeof(double),
                 tag);
    c.recv(wpeer, &wrecv, sizeof(double), tag);
    c.wait(rs);
    EXPECT_EQ(wrecv, 100.0 + wpeer);
    // The subcomm partner of rank r is world rank r ^ 2 as well — the same
    // peer, same tag, different context; only the payloads tell them apart.
    EXPECT_EQ(srecv, 200.0 + (c.rank() ^ 2));
  });
}

TEST(CommSplit, SubcommAllreduceDeterministicAndRankOrdered) {
  const int p = 6;
  const dist::ProcessGrid pg{2, 3};
  std::vector<std::vector<real_t>> results(p);
  ptmpi::run_ranks(p, 3, [&](ptmpi::Comm& c) {
    ptmpi::Comm band = c.split(pg.grid_rank_of(c.rank()),
                               pg.band_rank_of(c.rank()));
    // Contribution depends on the world rank so the reference is exact.
    std::vector<real_t> v(64);
    Rng rng(1000u + static_cast<unsigned>(c.rank()));
    for (auto& x : v) x = rng.uniform() - 0.5;
    band.allreduce_sum(v.data(), v.size());
    results[static_cast<size_t>(c.rank())] = v;
  });
  // Reference: sum in band-communicator rank order (band rank = world/3).
  for (int gr = 0; gr < 3; ++gr) {
    std::vector<real_t> ref(64, 0.0);
    for (int br = 0; br < 2; ++br) {
      std::vector<real_t> v(64);
      Rng rng(1000u + static_cast<unsigned>(br * 3 + gr));
      for (auto& x : v) x = rng.uniform() - 0.5;
      for (size_t i = 0; i < ref.size(); ++i) ref[i] += v[i];
    }
    for (int br = 0; br < 2; ++br)
      for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(results[static_cast<size_t>(br * 3 + gr)][i], ref[i])
            << "col " << gr << " row " << br << " i " << i;
  }
}

TEST(CommSplit, NestedSplitAndShmWindowsAreScoped) {
  // world -> rows -> pairs; the same window name on different communicators
  // must yield distinct storage, and reuse within one communicator must
  // yield the same storage.
  ptmpi::run_ranks(8, 8, [&](ptmpi::Comm& c) {
    ptmpi::Comm row = c.split(c.rank() / 4, c.rank());   // two rows of 4
    ptmpi::Comm pair = row.split(row.rank() / 2, row.rank());  // pairs
    EXPECT_EQ(row.size(), 4);
    EXPECT_EQ(pair.size(), 2);

    cplx* w_row = row.shm_allocate("win", 8);
    cplx* w_pair = pair.shm_allocate("win", 8);
    EXPECT_NE(w_row, w_pair);
    // Same communicator, same name: same window.
    EXPECT_EQ(row.shm_allocate("win", 8), w_row);

    if (row.rank() == 0) w_row[0] = cplx(static_cast<real_t>(c.rank()), 0.0);
    if (pair.rank() == 0) w_pair[1] = cplx(0.0, static_cast<real_t>(c.rank()));
    row.barrier();
    pair.barrier();
    // Row window written by the row leader (world rank 0 or 4).
    EXPECT_EQ(std::real(w_row[0]), static_cast<real_t>((c.rank() / 4) * 4));
    // Pair window written by the pair leader.
    EXPECT_EQ(std::imag(w_pair[1]),
              static_cast<real_t>((c.rank() / 2) * 2));
  });
}

TEST(CommSplit, RandomizedPartitionsMatchReference) {
  for (const unsigned seed : {7u, 8u, 9u}) {
    const int p = 7;
    Rng rng(seed);
    std::vector<int> colors(p), keys(p);
    for (int r = 0; r < p; ++r) {
      colors[static_cast<size_t>(r)] = static_cast<int>(rng.uniform() * 3);
      keys[static_cast<size_t>(r)] = static_cast<int>(rng.uniform() * 5);
    }
    // Reference ranks: stable (key, parent-rank) order within a color.
    std::map<int, std::vector<std::pair<int, int>>> by_color;
    for (int r = 0; r < p; ++r)
      by_color[colors[static_cast<size_t>(r)]].push_back(
          {keys[static_cast<size_t>(r)], r});
    for (auto& [col, v] : by_color) std::sort(v.begin(), v.end());

    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      const int col = colors[static_cast<size_t>(c.rank())];
      ptmpi::Comm sub =
          c.split(col, keys[static_cast<size_t>(c.rank())]);
      const auto& members = by_color[col];
      ASSERT_EQ(sub.size(), static_cast<int>(members.size()));
      const auto me = std::find_if(
          members.begin(), members.end(),
          [&](const auto& kv) { return kv.second == c.rank(); });
      EXPECT_EQ(sub.rank(), static_cast<int>(me - members.begin()));
      // A ring exchange around the subcomm proves the membership is live.
      const int next = (sub.rank() + 1) % sub.size();
      const int prev = (sub.rank() - 1 + sub.size()) % sub.size();
      int token = c.rank(), got = -1;
      sub.sendrecv(next, &token, sizeof(int), prev, &got, sizeof(int), 5);
      EXPECT_EQ(got, members[static_cast<size_t>(prev)].second);
    });
  }
}

// ------------------------------------------------------------- DistFft3 --

namespace {

template <typename R>
std::vector<std::complex<R>> random_box(size_t n, unsigned seed) {
  Rng rng(seed);
  std::vector<std::complex<R>> v(n);
  for (auto& x : v)
    x = std::complex<R>(static_cast<R>(rng.uniform() - 0.5),
                        static_cast<R>(rng.uniform() - 0.5));
  return v;
}

// Slice `full` (nbatch arrays over the whole box) into this rank's z slab.
template <typename C>
std::vector<C> slice_slab(const std::vector<C>& full,
                          const std::array<size_t, 3>& d,
                          const dist::BlockLayout& z, int r, size_t nbatch) {
  const size_t plane = d[0] * d[1];
  const size_t ng = plane * d[2];
  std::vector<C> out(nbatch * plane * z.count(r));
  size_t w = 0;
  for (size_t b = 0; b < nbatch; ++b)
    for (size_t zz = z.offset(r); zz < z.offset(r) + z.count(r); ++zz)
      for (size_t i = 0; i < plane; ++i)
        out[w++] = full[b * ng + zz * plane + i];
  return out;
}

// Slice into this rank's y pencil (full i0, owned i1 rows, full i2).
template <typename C>
std::vector<C> slice_pencil(const std::vector<C>& full,
                            const std::array<size_t, 3>& d,
                            const dist::BlockLayout& y, int r, size_t nbatch) {
  const size_t ng = d[0] * d[1] * d[2];
  std::vector<C> out(nbatch * d[0] * y.count(r) * d[2]);
  size_t w = 0;
  for (size_t b = 0; b < nbatch; ++b)
    for (size_t i2 = 0; i2 < d[2]; ++i2)
      for (size_t i1 = y.offset(r); i1 < y.offset(r) + y.count(r); ++i1)
        for (size_t i0 = 0; i0 < d[0]; ++i0)
          out[w++] = full[b * ng + i0 + d[0] * (i1 + d[1] * i2)];
  return out;
}

template <typename R>
void expect_bitwise(const std::vector<std::complex<R>>& a,
                    const std::vector<std::complex<R>>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << what << " element " << i;
}

// Forward + inverse through DistFft3 over pg ranks must be bitwise equal
// to the serial Fft3T at every decomposition, including zero-row ranks.
template <typename R>
void check_dist_fft_bitwise(std::array<size_t, 3> dims, int pg,
                            size_t nbatch, unsigned seed) {
  using C = std::complex<R>;
  const size_t ng = dims[0] * dims[1] * dims[2];
  const std::vector<C> input = random_box<R>(nbatch * ng, seed);

  // Serial reference: forward, then the scaled inverse of the spectrum.
  std::vector<C> fwd = input;
  fft::Fft3T<R> serial(dims[0], dims[1], dims[2]);
  serial.forward_batch(fwd.data(), nbatch);
  std::vector<C> inv = fwd;
  serial.inverse_batch(inv.data(), nbatch);

  ptmpi::run_ranks(pg, 2, [&](ptmpi::Comm& c) {
    fft::DistFft3T<R> f(dims, c);
    const auto slab =
        slice_slab(input, dims, f.zslabs(), c.rank(), nbatch);
    std::vector<C> pencil(nbatch * f.npencil());
    f.forward(slab.data(), pencil.data(), nbatch);
    expect_bitwise<R>(pencil,
                      slice_pencil(fwd, dims, f.yrows(), c.rank(), nbatch),
                      "forward pencil");

    std::vector<C> back(nbatch * f.nreal());
    f.inverse(pencil.data(), back.data(), nbatch);
    expect_bitwise<R>(back, slice_slab(inv, dims, f.zslabs(), c.rank(),
                                       nbatch),
                      "inverse slab");
  });
}

}  // namespace

TEST(DistFft3, BitwiseMatchesSerialFp64) {
  for (const int pg : {2, 3, 4})
    check_dist_fft_bitwise<double>({6, 5, 7}, pg, 1,
                                   11u + static_cast<unsigned>(pg));
}

TEST(DistFft3, BitwiseMatchesSerialFp32) {
  for (const int pg : {2, 3, 4})
    check_dist_fft_bitwise<float>({6, 5, 7}, pg, 1,
                                  21u + static_cast<unsigned>(pg));
}

TEST(DistFft3, BatchedTransposeSharesOneAlltoallv) {
  // Batched transforms are bitwise equal to singles AND pack the whole
  // batch into one Alltoallv per transpose.
  const std::array<size_t, 3> dims{4, 6, 5};
  const size_t ng = dims[0] * dims[1] * dims[2];
  const size_t nbatch = 3;
  const auto input = random_box<double>(nbatch * ng, 33u);
  check_dist_fft_bitwise<double>(dims, 3, nbatch, 33u);

  ptmpi::run_ranks(3, 2, [&](ptmpi::Comm& c) {
    fft::DistFft3 f(dims, c);
    const auto slab = slice_slab(input, dims, f.zslabs(), c.rank(), nbatch);
    std::vector<cplx> pen_batch(nbatch * f.npencil());
    const long long calls0 = c.stats().ops["Alltoallv"].calls;
    f.forward(slab.data(), pen_batch.data(), nbatch);
    EXPECT_EQ(c.stats().ops["Alltoallv"].calls, calls0 + 1);

    // Per-array singles agree bitwise with the batch.
    for (size_t b = 0; b < nbatch; ++b) {
      std::vector<cplx> one(f.nreal());
      std::copy(slab.begin() + static_cast<long>(b * f.nreal()),
                slab.begin() + static_cast<long>((b + 1) * f.nreal()),
                one.begin());
      std::vector<cplx> pen(f.npencil());
      f.forward(one.data(), pen.data(), 1);
      for (size_t i = 0; i < pen.size(); ++i)
        EXPECT_EQ(pen[i], pen_batch[b * f.npencil() + i]);
    }
  });
}

TEST(DistFft3, ZeroRowRanksRoundTrip) {
  // pg exceeds both nz and ny: several ranks own no z planes and/or no y
  // rows; their Alltoallv rows are empty but the transform must still be
  // exact (and bitwise serial).
  check_dist_fft_bitwise<double>({4, 2, 3}, 5, 1, 44u);
  check_dist_fft_bitwise<double>({4, 3, 2}, 6, 2, 45u);
  check_dist_fft_bitwise<float>({4, 2, 3}, 5, 1, 46u);
}

TEST(DistFft3, RandomizedUnevenDecompositions) {
  Rng rng(77u);
  for (int trial = 0; trial < 4; ++trial) {
    const std::array<size_t, 3> dims{
        2 + static_cast<size_t>(rng.uniform() * 4),
        2 + static_cast<size_t>(rng.uniform() * 4),
        2 + static_cast<size_t>(rng.uniform() * 4)};
    if (!fft::fft_size_ok(dims[0]) || !fft::fft_size_ok(dims[1]) ||
        !fft::fft_size_ok(dims[2]))
      continue;
    const int pg = 2 + static_cast<int>(rng.uniform() * 4);
    check_dist_fft_bitwise<double>(dims, pg,
                                   1 + static_cast<size_t>(trial % 2),
                                   100u + static_cast<unsigned>(trial));
  }
}

// ------------------------------------------------------- slab exchange --

namespace {

struct XEnv {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
};

// 2-D slab exchange over pb x pg ranks; returns one output block per band
// row (and asserts all grid columns of a row agree bitwise).
std::vector<la::MatC> run_slab_diag(const XEnv& e, dist::ProcessGrid pgrid,
                                    backend::Kind kind, Precision prec,
                                    dist::ExchangePattern pat,
                                    const la::MatC& src,
                                    const std::vector<real_t>& d,
                                    const la::MatC& tgt) {
  ham::ExchangeOptions opt;
  opt.precision = prec;
  opt.backend = kind;
  ham::ExchangeOperator xop(e.map, opt);
  const int nranks = pgrid.resolve_pb(pgrid.pb * pgrid.pg) * pgrid.pg;
  const dist::BlockLayout bands(src.cols(), pgrid.pb);
  const dist::BlockLayout tb(tgt.cols(), pgrid.pb);
  std::vector<la::MatC> blocks(static_cast<size_t>(nranks));
  ptmpi::run_ranks(nranks, 2, [&](ptmpi::Comm& c) {
    dist::GridContext gc(c, pgrid, e.map);
    const int br = pgrid.band_rank_of(c.rank());
    std::vector<real_t> d_local(
        d.begin() + static_cast<long>(bands.offset(br)),
        d.begin() + static_cast<long>(bands.offset(br) + bands.count(br)));
    blocks[static_cast<size_t>(c.rank())] = dist::exchange_apply_slab_local(
        gc, xop, dist::scatter_bands(src, bands, br), d_local,
        dist::scatter_bands(tgt, tb, br), bands, pat);
  });
  // Columns of one band row must agree bitwise; return column 0's blocks.
  std::vector<la::MatC> rows(static_cast<size_t>(pgrid.pb));
  for (int r = 0; r < nranks; ++r) {
    const int br = pgrid.band_rank_of(r);
    if (pgrid.grid_rank_of(r) == 0)
      rows[static_cast<size_t>(br)] = blocks[static_cast<size_t>(r)];
    else
      EXPECT_EQ(la::frob_diff(blocks[static_cast<size_t>(r)],
                              rows[static_cast<size_t>(br)]),
                0.0)
          << "column disagreement, world rank " << r;
  }
  return rows;
}

std::vector<la::MatC> run_slab_mixed(const XEnv& e, dist::ProcessGrid pgrid,
                                     backend::Kind kind, Precision prec,
                                     dist::ExchangePattern pat,
                                     const la::MatC& src,
                                     const la::MatC& theta,
                                     const la::MatC& tgt) {
  ham::ExchangeOptions opt;
  opt.precision = prec;
  opt.backend = kind;
  ham::ExchangeOperator xop(e.map, opt);
  const int nranks = pgrid.pb * pgrid.pg;
  const dist::BlockLayout bands(src.cols(), pgrid.pb);
  const dist::BlockLayout tb(tgt.cols(), pgrid.pb);
  std::vector<la::MatC> blocks(static_cast<size_t>(nranks));
  ptmpi::run_ranks(nranks, 2, [&](ptmpi::Comm& c) {
    dist::GridContext gc(c, pgrid, e.map);
    const int br = pgrid.band_rank_of(c.rank());
    blocks[static_cast<size_t>(c.rank())] =
        dist::exchange_apply_slab_mixed_local(
            gc, xop, dist::scatter_bands(src, bands, br),
            dist::scatter_bands(theta, bands, br),
            dist::scatter_bands(tgt, tb, br), bands, pat);
  });
  std::vector<la::MatC> rows(static_cast<size_t>(pgrid.pb));
  for (int r = 0; r < nranks; ++r) {
    const int br = pgrid.band_rank_of(r);
    if (pgrid.grid_rank_of(r) == 0)
      rows[static_cast<size_t>(br)] = blocks[static_cast<size_t>(r)];
    else
      EXPECT_EQ(la::frob_diff(blocks[static_cast<size_t>(r)],
                              rows[static_cast<size_t>(br)]),
                0.0);
  }
  return rows;
}

// 1-D band-parallel reference blocks.
std::vector<la::MatC> run_band_diag(const XEnv& e, backend::Kind kind,
                                    Precision prec, dist::ExchangePattern pat,
                                    int pb, const la::MatC& src,
                                    const std::vector<real_t>& d,
                                    const la::MatC& tgt) {
  ham::ExchangeOptions opt;
  opt.precision = prec;
  opt.backend = kind;
  ham::ExchangeOperator xop(e.map, opt);
  const dist::BlockLayout bands(src.cols(), pb);
  std::vector<la::MatC> blocks(static_cast<size_t>(pb));
  ptmpi::run_ranks(pb, 2, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    std::vector<real_t> d_local(
        d.begin() + static_cast<long>(bands.offset(me)),
        d.begin() + static_cast<long>(bands.offset(me) + bands.count(me)));
    blocks[static_cast<size_t>(me)] = dist::exchange_apply_distributed_local(
        c, xop, dist::scatter_bands(src, bands, me), d_local,
        dist::scatter_bands(tgt, bands, me), bands, pat);
  });
  return blocks;
}

}  // namespace

TEST(SlabExchange, Pb1MatchesSerialOperatorBitwise) {
  // pb = 1: the single band round visits every source in serial order, so
  // any pg must reproduce the SERIAL operator bit-for-bit — the anchor of
  // the 2-D correctness story. Swept over pattern x precision x backend.
  XEnv e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 5;
  const la::MatC src = test::random_orbitals(npw, nb, 510);
  const la::MatC tgt = test::random_orbitals(npw, 3, 511);
  const std::vector<real_t> d{1.0, 0.8, 0.45, 0.0, 0.1};

  for (const Precision prec :
       {Precision::kDouble, Precision::kSingle,
        Precision::kSingleCompensated}) {
    ham::ExchangeOptions sopt;
    sopt.precision = prec;
    ham::ExchangeOperator serial_op(e.map, sopt);
    la::MatC ref(npw, tgt.cols());
    serial_op.apply_diag(src, d, tgt, ref);

    for (const int pg : {2, 3}) {
      for (const auto pat :
           {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
            dist::ExchangePattern::kAsyncRing}) {
        for (const auto kind :
             {backend::Kind::kSync, backend::Kind::kHostSerial,
              backend::Kind::kHostAsync}) {
          const auto rows = run_slab_diag(e, dist::ProcessGrid{1, pg}, kind,
                                          prec, pat, src, d, tgt);
          EXPECT_EQ(la::frob_diff(rows[0], ref), 0.0)
              << "pg=" << pg << " pat=" << dist::pattern_name(pat)
              << " prec=" << precision_name(prec)
              << " backend=" << backend::kind_name(kind);
        }
      }
    }
  }
}

TEST(SlabExchange, TwoDMatchesBandParallelBitwise) {
  // Fixed pb = 2 with non-divisible band count (5) and non-divisible grid
  // dims: pg in {2, 3} must agree bitwise with the pg = 1 band-parallel
  // operator for every pattern, precision and backend.
  XEnv e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 5;
  const la::MatC src = test::random_orbitals(npw, nb, 520);
  const la::MatC tgt = test::random_orbitals(npw, nb, 521);
  const std::vector<real_t> d{1.0, 0.85, 0.6, 0.0, 0.2};

  for (const auto pat :
       {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
        dist::ExchangePattern::kAsyncRing}) {
    for (const Precision prec : {Precision::kDouble, Precision::kSingle}) {
      const auto ref = run_band_diag(e, backend::Kind::kSync, prec, pat, 2,
                                     src, d, tgt);
      for (const int pg : {2, 3}) {
        for (const auto kind :
             {backend::Kind::kSync, backend::Kind::kHostSerial,
              backend::Kind::kHostAsync}) {
          const auto rows = run_slab_diag(e, dist::ProcessGrid{2, pg}, kind,
                                          prec, pat, src, d, tgt);
          for (int br = 0; br < 2; ++br)
            EXPECT_EQ(la::frob_diff(rows[static_cast<size_t>(br)],
                                    ref[static_cast<size_t>(br)]),
                      0.0)
                << "pg=" << pg << " pat=" << dist::pattern_name(pat)
                << " prec=" << precision_name(prec)
                << " backend=" << backend::kind_name(kind) << " row=" << br;
        }
      }
    }
  }
}

TEST(SlabExchange, MixedWeightedPathMatchesBandParallel) {
  XEnv e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 5;
  const la::MatC src = test::random_orbitals(npw, nb, 530);
  const la::MatC sigma = test::random_occupation_matrix(nb, 531);
  la::MatC theta(npw, nb);
  la::gemm_nn(src, sigma, theta);
  const la::MatC tgt = test::random_orbitals(npw, 4, 532);

  // Serial reference for the pb = 1 anchor.
  ham::ExchangeOperator serial_op(e.map, {});
  la::MatC ref_serial(npw, tgt.cols());
  {
    la::MatC src_real;
    e.map.to_real_batch(src, src_real);
    la::MatC theta_real;
    e.map.to_real_batch(theta, theta_real);
    serial_op.apply_weighted_realspace(src_real.data(), theta_real.data(), nb,
                                       tgt, ref_serial, /*accumulate=*/false);
  }
  {
    const auto rows =
        run_slab_mixed(e, dist::ProcessGrid{1, 3}, backend::Kind::kSync,
                       Precision::kDouble, dist::ExchangePattern::kRing, src,
                       theta, tgt);
    EXPECT_EQ(la::frob_diff(rows[0], ref_serial), 0.0);
  }

  for (const auto pat :
       {dist::ExchangePattern::kBcast, dist::ExchangePattern::kAsyncRing}) {
    for (const Precision prec : {Precision::kDouble, Precision::kSingle}) {
      ham::ExchangeOptions opt;
      opt.precision = prec;
      ham::ExchangeOperator xop(e.map, opt);
      const dist::BlockLayout bands(nb, 2);
      const dist::BlockLayout tb(tgt.cols(), 2);
      std::vector<la::MatC> ref(2);
      ptmpi::run_ranks(2, 2, [&](ptmpi::Comm& c) {
        const int me = c.rank();
        ref[static_cast<size_t>(me)] =
            dist::exchange_apply_distributed_mixed_local(
                c, xop, dist::scatter_bands(src, bands, me),
                dist::scatter_bands(theta, bands, me),
                dist::scatter_bands(tgt, tb, me), bands, pat);
      });
      for (const auto kind :
           {backend::Kind::kSync, backend::Kind::kHostAsync}) {
        const auto rows = run_slab_mixed(e, dist::ProcessGrid{2, 2}, kind,
                                         prec, pat, src, theta, tgt);
        for (int br = 0; br < 2; ++br)
          EXPECT_EQ(la::frob_diff(rows[static_cast<size_t>(br)],
                                  ref[static_cast<size_t>(br)]),
                    0.0)
              << dist::pattern_name(pat) << " prec=" << precision_name(prec)
              << " backend=" << backend::kind_name(kind) << " row=" << br;
      }
    }
  }
}

TEST(SlabExchange, GridDimensionReducesRingBytes) {
  // At equal total ranks (4), pb=2 x pg=2 circulates z-slab portions
  // instead of whole-grid slabs: the per-rank ring payload (Sendrecv +
  // Wait + Bcast bytes) must shrink versus pb=4 x pg=1.
  XEnv e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 6;
  const la::MatC src = test::random_orbitals(npw, nb, 540);
  const la::MatC tgt = test::random_orbitals(npw, nb, 541);
  std::vector<real_t> d(nb, 0.5);

  auto ring_bytes = [](int world_rank) {
    long long b = 0;
    const auto& ops = ptmpi::last_run_stats()[static_cast<size_t>(world_rank)]
                          .ops;
    for (const char* op : {"Sendrecv", "Wait", "Bcast"}) {
      const auto it = ops.find(op);
      if (it != ops.end()) b += it->second.bytes;
    }
    return b;
  };

  for (const auto pat :
       {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
        dist::ExchangePattern::kAsyncRing}) {
    (void)run_band_diag(e, backend::Kind::kSync, Precision::kDouble, pat, 4,
                        src, d, tgt);
    const long long bytes_1d = ring_bytes(0);
    (void)run_slab_diag(e, dist::ProcessGrid{2, 2}, backend::Kind::kSync,
                        Precision::kDouble, pat, src, d, tgt);
    const long long bytes_2d = ring_bytes(0);
    EXPECT_LT(bytes_2d, bytes_1d) << dist::pattern_name(pat);
    EXPECT_GT(bytes_2d, 0) << dist::pattern_name(pat);
  }
}

TEST(SlabExchange, SlabFftTimerAccumulates) {
  // The slab-FFT seconds counter benches report must move when the
  // distributed transform runs.
  const std::array<size_t, 3> dims{4, 4, 4};
  ptmpi::run_ranks(2, 2, [&](ptmpi::Comm& c) {
    fft::DistFft3 f(dims, c);
    EXPECT_EQ(f.seconds(), 0.0);
    std::vector<cplx> slab(f.nreal(), cplx(1.0)), pen(f.npencil());
    f.forward(slab.data(), pen.data(), 1);
    EXPECT_GT(f.seconds(), 0.0);
    f.reset_seconds();
    EXPECT_EQ(f.seconds(), 0.0);
  });
}
