// Crash-safe ensemble campaigns: the persistent job queue round-trips
// specs exactly, a campaign killed at an arbitrary step resumes from its
// latest VALID checkpoint and replays the committed golden fixture —
// serial and band-distributed — landing bitwise on the uninterrupted
// endpoint, a corrupted/truncated newest checkpoint falls back to an older
// valid one (and a torn .tmp is never selected), multi-worker dispatch is
// bitwise per job, and a drifted-config resume is refused, not silently
// wrong.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/simulation.hpp"
#include "ham/density.hpp"
#include "io/checkpoint.hpp"
#include "io/job_queue.hpp"
#include "td/observables.hpp"
#include "td/ptim.hpp"
#include "test_helpers.hpp"

using namespace ptim;

namespace {

constexpr real_t kTol = 1e-10;
constexpr size_t kBands = 6;
const char* kFixture = "ptim_ace_10step.txt";

bool bitwise_equal(const la::MatC& a, const la::MatC& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0;
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<unsigned char> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

// Recursively delete a campaign directory (two levels: queue records +
// per-job checkpoint dirs). A fresh dir per test keeps runs independent.
void remove_tree(const std::string& path) {
  for (const std::string& name : io::list_dir(path))
    remove_tree(path + "/" + name);
  ::rmdir(path.c_str());
  std::remove(path.c_str());
}

// --- golden-trajectory scaffolding (mirrors tests/test_io.cpp) ------------

td::PtImOptions ptim_options() {
  td::PtImOptions opt;
  opt.dt = 0.5;
  opt.tol = 1e-8;
  opt.variant = td::PtImVariant::kAce;
  return opt;
}

td::TdState initial_state(size_t npw) {
  td::TdState s;
  s.phi = test::random_orbitals(npw, kBands, 641);
  s.sigma = test::random_occupation_matrix(kBands, 642);
  return s;
}

// The golden fixture's tiny system, shared by every campaign job Hamiltonian
// (grids and atoms are read-only under propagation; each job gets its OWN
// Hamiltonian instance from the factory below).
test::TinySystem& tiny() {
  static test::TinySystem* sys =
      new test::TinySystem(test::TinySystem::make(3.0));
  return *sys;
}

std::unique_ptr<ham::Hamiltonian> make_tiny_ham() {
  test::TinySystem& s = tiny();
  return std::make_unique<ham::Hamiltonian>(*s.lattice, s.atoms, *s.sphere,
                                            *s.wfc_grid, *s.den_grid,
                                            ham::HamiltonianOptions{});
}

// Host Simulation: supplies config_hash context only — campaign jobs carry
// explicit tiny-system states + the ham_factory, so no ground state and no
// dimensional match with the Simulation's own (8-atom) cell is needed.
core::Simulation& host_sim() {
  static core::Simulation* sim = [] {
    core::SystemSpec spec;
    spec.ecut = 1.5;
    return new core::Simulation(spec);
  }();
  return *sim;
}

core::RunConfig campaign_config(int steps, int every) {
  core::RunConfig cfg;
  cfg.steps = steps;
  cfg.dt = 0.5;
  cfg.tol = 1e-8;
  cfg.variant = td::PtImVariant::kAce;
  cfg.checkpoint_every = every;
  return cfg;
}

// The serial observation ruler of the golden harness, reshaped into
// measurement probes: a dedicated kExactDiag Hamiltonian so the
// propagator's exchange mutations cannot leak into the measured Fock
// energy. The energy probe mutates the shared observer Hamiltonian, so
// campaigns using it need nworkers == 1 (multi-worker tests use the pure
// probes only).
core::MeasurementSet golden_probes() {
  auto h = std::make_shared<ham::Hamiltonian>(
      *tiny().lattice, tiny().atoms, *tiny().sphere, *tiny().wfc_grid,
      *tiny().den_grid, ham::HamiltonianOptions{});
  h->set_exchange_mode(ham::ExchangeMode::kExactDiag);
  core::MeasurementSet m;
  m.add(
      "energy",
      [h](const core::MeasureContext& c) {
        h->set_density(*c.rho);
        return h->energy(*c.phi, *c.sigma, *c.rho).total();
      },
      /*needs_phi=*/true);
  grid::FftGrid* den_grid = tiny().den_grid.get();
  m.add("dipole_x", [den_grid](const core::MeasureContext& c) {
    return td::dipole(*c.rho, *den_grid, {1.0, 0.0, 0.0});
  });
  m.add("sigma_trace", core::probes::sigma_trace());
  return m;
}

void expect_series_match_fixture(const core::MeasurementSet& m, size_t count,
                                 const char* what) {
  const test::GoldenTrajectory ref = test::golden_load(kFixture);
  ASSERT_LE(count, ref.steps.size()) << what;
  const std::vector<real_t>& e = m.series("energy");
  const std::vector<real_t>& d = m.series("dipole_x");
  const std::vector<real_t>& t = m.series("sigma_trace");
  ASSERT_EQ(e.size(), count) << what;
  ASSERT_EQ(d.size(), count) << what;
  ASSERT_EQ(t.size(), count) << what;
  for (size_t k = 0; k < count; ++k) {
    EXPECT_NEAR(e[k], ref.steps[k].energy, kTol) << what << " fixture row "
                                                 << k;
    EXPECT_NEAR(d[k], ref.steps[k].dipole, kTol) << what << " fixture row "
                                                 << k;
    EXPECT_NEAR(t[k], ref.steps[k].sigma_trace, kTol)
        << what << " fixture row " << k;
  }
}

// Uninterrupted serial reference: fresh system + propagator, `steps` from
// the golden initial state (optionally kicked).
td::TdState run_serial_steps(int steps, grid::Vec3 kick = {0.0, 0.0, 0.0}) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  sys.ham->set_vector_potential(kick);
  td::TdState s = initial_state(sys.sphere->npw());
  td::PtImPropagator prop(*sys.ham, ptim_options(), nullptr);
  for (int i = 0; i < steps; ++i) prop.step(s);
  return s;
}

void expect_state_bitwise(const td::TdState& got, const td::TdState& want,
                          const char* what) {
  EXPECT_TRUE(bitwise_equal(got.phi, want.phi)) << what;
  EXPECT_TRUE(bitwise_equal(got.sigma, want.sigma)) << what;
  EXPECT_EQ(std::memcmp(&got.time, &want.time, sizeof(real_t)), 0) << what;
}

}  // namespace

// --- job queue persistence ------------------------------------------------

TEST(JobQueue, PersistsAndReloadsRecordsExactly) {
  const std::string dir = "test_campaign_queue";
  remove_tree(dir);

  io::JobSpec laser_spec;
  laser_spec.name = "pump";
  laser_spec.steps = 10;
  laser_spec.t_horizon = 5.0;
  // Values that are NOT exactly representable short decimals: %.17g must
  // round-trip them bit-for-bit.
  laser_spec.kick = {1e-3, -2.5e-4, 3.0 + 1e-13};
  laser_spec.has_laser = true;
  laser_spec.laser.e0 = 2.4e-2;
  laser_spec.laser.wavelength_nm = 800.0;
  laser_spec.laser.t_center = 1.25;
  laser_spec.laser.t_width = 0.4 + 1e-14;
  laser_spec.laser.polarization = {0.6, 0.0, 0.8};
  laser_spec.config_hash = 0xdeadbeefcafe1234ull;

  io::JobSpec kick_spec;
  kick_spec.name = "kick_x";
  kick_spec.steps = 4;
  kick_spec.t_horizon = 2.0;
  kick_spec.kick = {1e-3, 0.0, 0.0};
  kick_spec.config_hash = 42;

  {
    io::JobQueue q(dir);
    EXPECT_EQ(q.submit(laser_spec), 0);
    EXPECT_EQ(q.submit(kick_spec), 1);
    io::JobStatus st;
    st.state = io::JobState::kRunning;
    st.steps_done = 3;
    q.update_status(0, st);
    st.state = io::JobState::kFailed;
    st.steps_done = 0;
    st.error = "boom: solver diverged";
    q.update_status(1, st);
  }

  // A fresh queue over the same directory (a restarted process) sees every
  // record, with all trajectory-determining doubles bit-exact.
  io::JobQueue q(dir);
  ASSERT_EQ(q.size(), 2u);
  const io::JobSpec& s0 = q.record(0).spec;
  EXPECT_EQ(s0.name, "pump");
  EXPECT_EQ(s0.steps, 10);
  EXPECT_TRUE(s0.has_laser);
  const auto exact = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  };
  EXPECT_TRUE(exact(s0.t_horizon, laser_spec.t_horizon));
  for (int d = 0; d < 3; ++d) {
    EXPECT_TRUE(exact(s0.kick[d], laser_spec.kick[d]));
    EXPECT_TRUE(
        exact(s0.laser.polarization[d], laser_spec.laser.polarization[d]));
  }
  EXPECT_TRUE(exact(s0.laser.e0, laser_spec.laser.e0));
  EXPECT_TRUE(exact(s0.laser.t_width, laser_spec.laser.t_width));
  EXPECT_EQ(s0.config_hash, laser_spec.config_hash);
  EXPECT_EQ(q.record(0).status.state, io::JobState::kRunning);
  EXPECT_EQ(q.record(0).status.steps_done, 3u);
  EXPECT_EQ(q.record(1).status.state, io::JobState::kFailed);
  EXPECT_EQ(q.record(1).status.error, "boom: solver diverged");
  EXPECT_FALSE(q.record(1).spec.has_laser);
  EXPECT_TRUE(io::file_exists(q.job_dir(0)));

  // Atomic rewrites leave no staging files behind.
  for (const std::string& name : io::list_dir(dir))
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;

  // A spec without a status file is a submit torn between the two writes:
  // reload treats it as freshly pending, not as corruption.
  std::remove((dir + "/job_1.status").c_str());
  q.reload();
  EXPECT_EQ(q.record(1).status.state, io::JobState::kPending);
  EXPECT_EQ(q.record(1).status.steps_done, 0u);
  remove_tree(dir);
}

// --- serial kill + resume against the golden fixture ----------------------

TEST(Campaign, SerialKillAndResumeReplaysGoldenBitwise) {
  const std::string dir = "test_campaign_serial";
  remove_tree(dir);
  const core::RunConfig cfg = campaign_config(10, /*every=*/2);

  core::CampaignOptions opt;
  opt.dir = dir;
  opt.ham_factory = make_tiny_ham;
  opt.fault_hook = [](int, uint64_t done) {
    if (done == 7) throw core::CampaignKill("simulated kill after step 7");
  };
  {
    core::EnsembleCampaign camp(host_sim(), cfg, opt);
    camp.set_measurements(golden_probes());
    core::CampaignJob job;
    job.name = "golden";
    job.initial = initial_state(tiny().sphere->npw());
    EXPECT_EQ(camp.submit(job), 0);
    EXPECT_EQ(camp.pending(), 1u);
    EXPECT_THROW(camp.run(), core::CampaignKill);
    // The kill landed between checkpoints: the last persisted snapshot is
    // step 6, and the status file says so.
    EXPECT_EQ(camp.poll()[0].status.state, io::JobState::kRunning);
    EXPECT_EQ(camp.poll()[0].status.steps_done, 6u);
  }

  // A fresh campaign over the same directory — the restarted process. The
  // queue alone knows the job is in flight; run() resumes it from ckpt_6.
  core::CampaignOptions opt2 = opt;
  opt2.fault_hook = nullptr;
  core::EnsembleCampaign camp(host_sim(), cfg, opt2);
  camp.set_measurements(golden_probes());
  EXPECT_EQ(camp.pending(), 1u);
  camp.run();
  EXPECT_EQ(camp.pending(), 0u);
  EXPECT_EQ(camp.poll()[0].status.state, io::JobState::kDone);

  std::vector<core::CampaignResult> results = camp.collect();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].steps_done, 10u);
  // The restored + replayed series reproduce the committed fixture...
  expect_series_match_fixture(results[0].measurements, 10,
                              "serial kill+resume");
  // ...and the endpoint is bitwise the uninterrupted run's.
  expect_state_bitwise(results[0].final_state, run_serial_steps(10),
                       "serial kill+resume endpoint");
  remove_tree(dir);
}

// --- corrupted-checkpoint fallback ----------------------------------------

TEST(Campaign, CorruptNewestFallsBackToOlderValidCheckpoint) {
  const std::string dir = "test_campaign_corrupt";
  remove_tree(dir);
  const core::RunConfig cfg = campaign_config(6, /*every=*/2);

  core::CampaignOptions opt;
  opt.dir = dir;
  opt.ham_factory = make_tiny_ham;
  opt.fault_hook = [](int, uint64_t done) {
    if (done == 5) throw core::CampaignKill("simulated kill after step 5");
  };
  {
    core::EnsembleCampaign camp(host_sim(), cfg, opt);
    camp.set_measurements(golden_probes());
    core::CampaignJob job;
    job.name = "golden";
    job.initial = initial_state(tiny().sphere->npw());
    camp.submit(job);
    EXPECT_THROW(camp.run(), core::CampaignKill);
  }
  const std::string jd = dir + "/job_0";
  ASSERT_TRUE(io::file_exists(jd + "/ckpt_4.ckpt"));

  // Damage the chain the way real crashes do: the newest checkpoint
  // truncated mid-write, the one before it bit-flipped on disk, plus a
  // torn .tmp staging file that must never be considered at all.
  std::vector<unsigned char> bytes = slurp(jd + "/ckpt_4.ckpt");
  bytes.resize(bytes.size() / 2);
  spit(jd + "/ckpt_4.ckpt", bytes);
  bytes = slurp(jd + "/ckpt_2.ckpt");
  bytes[bytes.size() / 2] ^= 0x01;
  spit(jd + "/ckpt_2.ckpt", bytes);
  spit(jd + "/ckpt_9.ckpt.tmp", {0xde, 0xad, 0xbe, 0xef});

  // Resume: ckpt_4 and ckpt_2 are rejected, ckpt_0 (written at submit) is
  // the valid floor, and the whole trajectory replays from scratch.
  core::CampaignOptions opt2 = opt;
  opt2.fault_hook = nullptr;
  core::EnsembleCampaign camp(host_sim(), cfg, opt2);
  camp.set_measurements(golden_probes());
  EXPECT_EQ(camp.pending(), 1u);
  camp.run();

  std::vector<core::CampaignResult> results = camp.collect();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].steps_done, 6u);
  expect_series_match_fixture(results[0].measurements, 6,
                              "corrupt-fallback resume");
  expect_state_bitwise(results[0].final_state, run_serial_steps(6),
                       "corrupt-fallback endpoint");
  remove_tree(dir);
}

// --- distributed kill + resume --------------------------------------------

TEST(Campaign, DistributedKillAndResumeMatchesUninterruptedBitwise) {
  const std::string dir_ref = "test_campaign_dist_ref";
  const std::string dir = "test_campaign_dist";
  remove_tree(dir_ref);
  remove_tree(dir);
  core::RunConfig cfg = campaign_config(10, /*every=*/2);
  cfg.nranks = 4;  // band-parallel trajectory inside the worker group

  const auto launch = [&](const std::string& d,
                          core::EnsembleCampaign*& out_camp,
                          std::function<void(int, uint64_t)> fault) {
    core::CampaignOptions opt;
    opt.dir = d;
    opt.ham_factory = make_tiny_ham;
    opt.fault_hook = std::move(fault);
    out_camp = new core::EnsembleCampaign(host_sim(), cfg, opt);
    out_camp->set_measurements(golden_probes());
    core::CampaignJob job;
    job.name = "golden";
    job.initial = initial_state(tiny().sphere->npw());
    out_camp->submit(job);
  };

  // Uninterrupted distributed reference.
  core::EnsembleCampaign* ref = nullptr;
  launch(dir_ref, ref, nullptr);
  ref->run();
  std::vector<core::CampaignResult> ref_results = ref->collect();
  ASSERT_EQ(ref_results.size(), 1u);

  // Killed-at-step-7 campaign: the fault hook fires on EVERY rank of the
  // group, so the simulated crash unwinds the whole worker cleanly.
  core::EnsembleCampaign* killed = nullptr;
  launch(dir, killed, [](int, uint64_t done) {
    if (done == 7) throw core::CampaignKill("simulated kill after step 7");
  });
  EXPECT_THROW(killed->run(), core::CampaignKill);
  EXPECT_EQ(killed->poll()[0].status.steps_done, 6u);
  delete killed;

  // Restarted process: fresh campaign, resume, compare.
  core::EnsembleCampaign* resumed = nullptr;
  launch(dir, resumed, nullptr);
  // submit() above appended job 1 to the SAME directory; both jobs (the
  // interrupted 0 and the fresh 1) are runnable and both must finish.
  EXPECT_EQ(resumed->pending(), 2u);
  resumed->run();
  std::vector<core::CampaignResult> results = resumed->collect();
  ASSERT_EQ(results.size(), 2u);

  for (const core::CampaignResult& r : results) {
    EXPECT_EQ(r.steps_done, 10u);
    // Distributed series match the serial golden fixture at 1e-10...
    expect_series_match_fixture(
        r.measurements, 10,
        (r.id == 0 ? "dist kill+resume" : "dist fresh job"));
    // ...and the kill+resume endpoint is BITWISE the uninterrupted
    // distributed run's (same layout, same reduction order).
    expect_state_bitwise(r.final_state, ref_results[0].final_state,
                         "dist kill+resume endpoint");
  }
  delete resumed;
  delete ref;
  remove_tree(dir_ref);
  remove_tree(dir);
}

// --- multi-worker dispatch ------------------------------------------------

TEST(Campaign, MultiWorkerDispatchMatchesIndependentRunsBitwise) {
  const std::string dir = "test_campaign_workers";
  remove_tree(dir);
  const core::RunConfig cfg = campaign_config(4, /*every=*/0);  // final only

  core::CampaignOptions opt;
  opt.dir = dir;
  opt.nworkers = 2;  // two serial worker groups claim jobs off the cursor
  opt.ham_factory = make_tiny_ham;
  core::EnsembleCampaign camp(host_sim(), cfg, opt);
  // Concurrent workers: pure probes only (the energy probe mutates its
  // shared observer Hamiltonian).
  core::MeasurementSet probes;
  probes.add("sigma_trace", core::probes::sigma_trace());
  camp.set_measurements(probes);

  const std::vector<grid::Vec3> kicks = {
      {1e-3, 0.0, 0.0}, {2e-3, 0.0, 0.0}, {0.0, 1e-3, 0.0}};
  for (size_t k = 0; k < kicks.size(); ++k) {
    core::CampaignJob job;
    job.name = "kick_" + std::to_string(k);
    job.kick = kicks[k];
    job.initial = initial_state(tiny().sphere->npw());
    camp.submit(job);
  }
  EXPECT_EQ(camp.pending(), 3u);
  camp.run();
  EXPECT_EQ(camp.pending(), 0u);

  std::vector<core::CampaignResult> results = camp.collect();
  ASSERT_EQ(results.size(), 3u);
  for (size_t k = 0; k < kicks.size(); ++k) {
    EXPECT_EQ(results[k].id, static_cast<int>(k));
    EXPECT_EQ(results[k].name, "kick_" + std::to_string(k));
    EXPECT_EQ(results[k].measurements.series("sigma_trace").size(), 4u);
    expect_state_bitwise(results[k].final_state,
                         run_serial_steps(4, kicks[k]),
                         results[k].name.c_str());
  }
  remove_tree(dir);
}

// --- drifted-config resume is refused -------------------------------------

TEST(Campaign, DriftedConfigResumeIsRefusedNotSilentlyWrong) {
  const std::string dir = "test_campaign_drift";
  remove_tree(dir);
  const core::RunConfig cfg = campaign_config(2, /*every=*/0);

  core::CampaignOptions opt;
  opt.dir = dir;
  opt.ham_factory = make_tiny_ham;
  {
    core::EnsembleCampaign camp(host_sim(), cfg, opt);
    core::CampaignJob job;
    job.name = "golden";
    job.initial = initial_state(tiny().sphere->npw());
    camp.submit(job);  // persisted, never run
  }

  // Reopen under different physics (dt changed): the per-job config hash
  // rejects every checkpoint, so the job FAILS with a descriptive error
  // instead of propagating a subtly different trajectory.
  core::RunConfig drifted = cfg;
  drifted.dt = 1.0;
  core::EnsembleCampaign wrong(host_sim(), drifted, opt);
  EXPECT_EQ(wrong.pending(), 1u);
  wrong.run();
  EXPECT_EQ(wrong.poll()[0].status.state, io::JobState::kFailed);
  EXPECT_NE(wrong.poll()[0].status.error.find("no valid checkpoint"),
            std::string::npos)
      << wrong.poll()[0].status.error;

  // The checkpoint itself is intact — under the ORIGINAL config it loads.
  core::EnsembleCampaign orig(host_sim(), cfg, opt);
  const io::Checkpoint ck = io::load_checkpoint(
      dir + "/job_0/ckpt_0.ckpt", orig.queue().record(0).spec.config_hash);
  EXPECT_EQ(ck.step_index, 0u);
  remove_tree(dir);
}
