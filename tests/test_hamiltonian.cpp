// Assembled Hamiltonian: Hermiticity in every exchange mode, velocity-gauge
// kinetic term, energy assembly, and the ground-state SCF/Davidson stack.

#include <gtest/gtest.h>

#include <cmath>

#include "gs/davidson.hpp"
#include "gs/scf.hpp"
#include "ham/density.hpp"
#include "la/blas.hpp"
#include "la/util.hpp"
#include "test_helpers.hpp"

using namespace ptim;

namespace {

test::TinySystem make_sys(bool hybrid = true) {
  ham::HamiltonianOptions opt;
  opt.hybrid = hybrid;
  return test::TinySystem::make(3.0, 8.0, opt);
}

std::vector<real_t> uniform_density(const test::TinySystem& s, real_t nelec) {
  return std::vector<real_t>(s.den_grid->size(),
                             nelec / s.lattice->volume());
}

}  // namespace

TEST(Hamiltonian, SemilocalHermitian) {
  auto sys = make_sys(false);
  sys.ham->set_density(uniform_density(sys, 8.0));
  const size_t npw = sys.sphere->npw();
  const la::MatC phi = test::random_orbitals(npw, 5, 101);
  la::MatC hphi;
  sys.ham->apply_semilocal(phi, hphi);
  const la::MatC m = pw::overlap(phi, hphi);
  EXPECT_LT(la::hermiticity_defect(m), 1e-10);
}

TEST(Hamiltonian, HybridHermitianAllModes) {
  auto sys = make_sys(true);
  sys.ham->set_density(uniform_density(sys, 8.0));
  const size_t npw = sys.sphere->npw();
  const size_t nb = 4;
  const la::MatC phi = test::random_orbitals(npw, nb, 102);
  const la::MatC sigma = test::random_occupation_matrix(nb, 103);

  for (const auto mode :
       {ham::ExchangeMode::kExactNaive, ham::ExchangeMode::kExactDiag}) {
    sys.ham->set_exchange_mode(mode);
    sys.ham->set_exchange_source_mixed(phi, sigma);
    la::MatC hphi;
    sys.ham->apply(phi, hphi);
    const la::MatC m = pw::overlap(phi, hphi);
    EXPECT_LT(la::hermiticity_defect(m), 1e-10)
        << "mode=" << static_cast<int>(mode);
  }
}

TEST(Hamiltonian, ExactModesAgree) {
  auto sys = make_sys(true);
  sys.ham->set_density(uniform_density(sys, 8.0));
  const size_t npw = sys.sphere->npw();
  const size_t nb = 4;
  const la::MatC phi = test::random_orbitals(npw, nb, 104);
  const la::MatC sigma = test::random_occupation_matrix(nb, 105);

  la::MatC h_naive, h_diag;
  sys.ham->set_exchange_mode(ham::ExchangeMode::kExactNaive);
  sys.ham->set_exchange_source_mixed(phi, sigma);
  sys.ham->apply(phi, h_naive);
  sys.ham->set_exchange_mode(ham::ExchangeMode::kExactDiag);
  sys.ham->set_exchange_source_mixed(phi, sigma);
  sys.ham->apply(phi, h_diag);
  EXPECT_LT(la::frob_diff(h_naive, h_diag), 1e-10 * la::frob_norm(h_naive));
}

TEST(Hamiltonian, VelocityGaugeShiftsKinetic) {
  auto sys = make_sys(false);
  const grid::Vec3 a{0.2, 0.0, 0.0};
  sys.ham->set_vector_potential(a);
  const auto kin = sys.ham->kinetic_diag();
  for (size_t i = 0; i < sys.sphere->npw(); i += 7) {
    const auto g = sys.sphere->gvec(i);
    EXPECT_NEAR(kin[i], 0.5 * grid::norm2(g + a), 1e-12);
  }
  // A != 0 breaks the +G/-G degeneracy of the kinetic term.
  bool asymmetric = false;
  for (size_t i = 1; i < sys.sphere->npw(); ++i) {
    const auto f = sys.sphere->freqs()[i];
    if (f[0] != 0) {
      asymmetric = true;
      break;
    }
  }
  EXPECT_TRUE(asymmetric);
}

TEST(Hamiltonian, ExternalPotentialEntersApply) {
  auto sys = make_sys(false);
  sys.ham->set_density(uniform_density(sys, 8.0));
  const size_t npw = sys.sphere->npw();
  const la::MatC phi = test::random_orbitals(npw, 2, 106);
  la::MatC h0;
  sys.ham->apply(phi, h0);
  // Constant external potential shifts H by that constant.
  std::vector<real_t> vext(sys.den_grid->size(), 0.37);
  sys.ham->set_external_potential(vext);
  la::MatC h1;
  sys.ham->apply(phi, h1);
  for (size_t i = 0; i < h0.size(); ++i)
    EXPECT_NEAR(std::abs(h1.data()[i] - h0.data()[i] -
                         0.37 * phi.data()[i]),
                0.0, 1e-9);
}

TEST(Davidson, FindsLowestStatesOfKnownOperator) {
  // Diagonal operator on the sphere basis: H = diag(kinetic) — eigenvalues
  // are the sorted kinetic factors.
  auto sys = make_sys(false);
  const size_t npw = sys.sphere->npw();
  const auto kin = sys.ham->kinetic_diag();
  auto apply = [&](const la::MatC& in, la::MatC& out) {
    out.resize(in.rows(), in.cols());
    for (size_t b = 0; b < in.cols(); ++b)
      for (size_t i = 0; i < npw; ++i) out(i, b) = kin[i] * in(i, b);
  };
  const size_t nb = 4;
  const la::MatC x0 = test::random_orbitals(npw, nb, 107);
  gs::DavidsonOptions opt;
  opt.tol = 1e-7;
  const auto res = gs::davidson(apply, x0, kin, opt);
  ASSERT_TRUE(res.converged);
  std::vector<real_t> sorted_kin = kin;
  std::sort(sorted_kin.begin(), sorted_kin.end());
  for (size_t j = 0; j < nb; ++j)
    EXPECT_NEAR(res.eps[j], sorted_kin[j], 1e-7);
}

TEST(Davidson, ConvergesOnRealHamiltonian) {
  auto sys = make_sys(false);
  sys.ham->set_density(uniform_density(sys, 8.0));
  const size_t npw = sys.sphere->npw();
  auto apply = [&](const la::MatC& in, la::MatC& out) {
    sys.ham->apply(in, out);
  };
  const la::MatC x0 = test::random_orbitals(npw, 6, 108);
  gs::DavidsonOptions opt;
  opt.tol = 1e-6;
  opt.max_iter = 80;
  const auto res = gs::davidson(apply, x0, sys.ham->kinetic_diag(), opt);
  EXPECT_TRUE(res.converged);
  // Eigenvalues ascending and below the vacuum continuum.
  for (size_t j = 1; j < res.eps.size(); ++j)
    EXPECT_LE(res.eps[j - 1], res.eps[j] + 1e-10);
  EXPECT_LT(pw::orthonormality_defect(res.x), 1e-6);
}

TEST(GroundState, SemilocalScfConverges) {
  auto sys = make_sys(false);
  gs::ScfOptions opt;
  opt.nbands = 6;
  opt.nelec = 8.0;  // 2 Si atoms x 4 valence electrons
  opt.temperature_k = 300.0;
  opt.tol_rho = 1e-6;
  const auto res = gs::ground_state(*sys.ham, opt);
  EXPECT_TRUE(res.converged);
  // Density integrates to the electron count.
  EXPECT_NEAR(ham::integrate(res.rho, *sys.den_grid), 8.0, 1e-6);
  // Occupied states below mu, empties above.
  EXPECT_LT(res.eps[0], res.mu);
  EXPECT_GT(res.eps[5], res.mu);
  EXPECT_LT(pw::orthonormality_defect(res.phi), 1e-6);
  // Total energy is negative and finite.
  EXPECT_LT(res.energy.total(), 0.0);
  EXPECT_TRUE(std::isfinite(res.energy.total()));
}

TEST(GroundState, HybridLowersExchangeEnergy) {
  auto sys = make_sys(true);
  gs::ScfOptions opt;
  opt.nbands = 6;
  opt.nelec = 8.0;
  opt.temperature_k = 1000.0;
  opt.tol_rho = 1e-6;
  opt.max_outer_ace = 6;
  const auto res = gs::ground_state(*sys.ham, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.energy.fock, 0.0);
  EXPECT_GE(res.outer_iterations, 2);
  // ACE operator left in place for TD restarts.
  EXPECT_TRUE(sys.ham->ace().valid());
}

TEST(EnergyTerms, TotalIsSum) {
  ham::EnergyTerms e;
  e.kinetic = 1.0;
  e.local = -2.0;
  e.hartree = 0.5;
  e.xc = -0.7;
  e.fock = -0.1;
  e.nonlocal = 0.05;
  e.ewald = -3.0;
  EXPECT_NEAR(e.total(), 1.0 - 2.0 + 0.5 - 0.7 - 0.1 + 0.05 - 3.0, 1e-14);
}
