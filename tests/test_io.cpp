// Checkpoint/restart: binary round-trip bit-exactness, descriptive errors
// on corrupt / wrong-version / wrong-config files, and the serving-layer
// guarantee itself — a trajectory split mid-run at a checkpoint and resumed
// in a FRESH propagator replays the committed golden fixture at 1e-10,
// serially, band-parallel and on the 2-D band x grid layout, and lands on
// the bitwise-identical final state of the uninterrupted run.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "dist/band_ham.hpp"
#include "ham/density.hpp"
#include "io/checkpoint.hpp"
#include "td/observables.hpp"
#include "td/ptim.hpp"
#include "td/ptim_dist.hpp"
#include "test_helpers.hpp"

using namespace ptim;

namespace {

// --- generic helpers ------------------------------------------------------

void expect_error_containing(const std::function<void()>& op,
                             const std::string& needle) {
  try {
    op();
    FAIL() << "expected ptim::Error containing '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error message was: " << e.what();
  }
}

bool bitwise_equal(const la::MatC& a, const la::MatC& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0;
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<unsigned char> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

io::Checkpoint sample_checkpoint() {
  io::Checkpoint c;
  c.state.phi = test::random_matrix(40, 5, 101);
  c.state.sigma = test::random_hermitian(5, 102);
  c.state.time = 3.25;
  c.step_index = 7;
  c.config_hash = 0xdeadbeefcafe1234ull;
  c.avec = {1.5e-3, 0.0, -2.5e-4};
  return c;
}

// --- golden-trajectory scaffolding (mirrors tests/test_golden.cpp) --------

constexpr int kSteps = 10;
constexpr int kSplit = 4;  // checkpoint after step 4, resume steps 5..10
constexpr real_t kTol = 1e-10;
constexpr size_t kBands = 6;
const char* kFixture = "ptim_ace_10step.txt";

td::PtImOptions ptim_options() {
  td::PtImOptions opt;
  opt.dt = 0.5;
  opt.tol = 1e-8;
  opt.variant = td::PtImVariant::kAce;
  return opt;
}

td::TdState initial_state(size_t npw) {
  td::TdState s;
  s.phi = test::random_orbitals(npw, kBands, 641);
  s.sigma = test::random_occupation_matrix(kBands, 642);
  return s;
}

// Same serial observation ruler as the golden harness: a dedicated
// Hamiltonian so the propagators' exchange mutations cannot leak into the
// measured Fock energy.
struct Observer {
  explicit Observer(test::TinySystem& sys)
      : sys_(&sys),
        h_(*sys.lattice, sys.atoms, *sys.sphere, *sys.wfc_grid, *sys.den_grid,
           ham::HamiltonianOptions{}) {
    h_.set_exchange_mode(ham::ExchangeMode::kExactDiag);
  }

  test::GoldenStep operator()(const td::TdState& s) {
    const auto rho = ham::density_sigma(s.phi, s.sigma, h_.den_map());
    test::GoldenStep g;
    h_.set_density(rho);
    g.energy = h_.energy(s.phi, s.sigma, rho).total();
    g.dipole = td::dipole(rho, *sys_->den_grid, {1.0, 0.0, 0.0});
    g.sigma_trace = 0.0;
    for (size_t i = 0; i < s.sigma.rows(); ++i)
      g.sigma_trace += std::real(s.sigma(i, i));
    return g;
  }

  test::TinySystem* sys_;
  ham::Hamiltonian h_;
};

void expect_matches_fixture_rows(const std::vector<test::GoldenStep>& got,
                                 size_t first_row, const char* what) {
  const test::GoldenTrajectory ref = test::golden_load(kFixture);
  ASSERT_LE(first_row + got.size(), ref.steps.size()) << what;
  for (size_t k = 0; k < got.size(); ++k) {
    const size_t row = first_row + k;
    EXPECT_NEAR(got[k].energy, ref.steps[row].energy, kTol)
        << what << " fixture row " << row;
    EXPECT_NEAR(got[k].dipole, ref.steps[row].dipole, kTol)
        << what << " fixture row " << row;
    EXPECT_NEAR(got[k].sigma_trace, ref.steps[row].sigma_trace, kTol)
        << what << " fixture row " << row;
  }
}

// Serial golden run up to `steps`, returning the final state (observations
// optional). Fresh system + propagator per call.
td::TdState run_serial_steps(int steps,
                             std::vector<test::GoldenStep>* obs = nullptr,
                             const td::TdState* start = nullptr) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  Observer observe(sys);
  td::TdState s = start ? *start : initial_state(sys.sphere->npw());
  td::PtImPropagator prop(*sys.ham, ptim_options(), nullptr);
  for (int i = 0; i < steps; ++i) {
    prop.step(s);
    if (obs) obs->push_back(observe(s));
  }
  return s;
}

// Distributed continuation from `start` on a pb x pg layout, observing
// every step with the serial ruler.
std::vector<test::GoldenStep> run_distributed_from(
    const td::TdState& start, int steps, dist::ProcessGrid pgrid,
    dist::ExchangePattern pattern) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  const int nranks = pgrid.pb * pgrid.pg;
  const dist::BlockLayout bands(kBands, pgrid.pb);
  std::vector<td::TdState> traj(static_cast<size_t>(steps));
  ptmpi::run_ranks(nranks, 2, [&](ptmpi::Comm& c) {
    auto h = std::make_unique<ham::Hamiltonian>(
        *sys.lattice, sys.atoms, *sys.sphere, *sys.wfc_grid, *sys.den_grid,
        ham::HamiltonianOptions{});
    dist::BandHamOptions bopt;
    bopt.pattern = pattern;
    if (pgrid.pg > 1) bopt.grid = pgrid;
    dist::BandDistributedHamiltonian bdh(c, *h, kBands, bopt);
    const int br = pgrid.pg > 1 ? pgrid.band_rank_of(c.rank()) : c.rank();
    td::DistTdState s = td::scatter_state(start, bands, br);
    td::DistPtImPropagator prop(bdh, ptim_options(), nullptr);
    for (int i = 0; i < steps; ++i) {
      prop.step(s);
      const td::TdState full = td::gather_state(bdh.comm(), s, bands);
      if (c.rank() == 0) traj[static_cast<size_t>(i)] = full;
    }
  });
  Observer observe(sys);
  std::vector<test::GoldenStep> out;
  for (const auto& s : traj) out.push_back(observe(s));
  return out;
}

}  // namespace

// --- binary format --------------------------------------------------------

TEST(Checkpoint, RoundTripIsBitExact) {
  const std::string path = "test_io_roundtrip.ckpt";
  const io::Checkpoint c = sample_checkpoint();
  io::save_checkpoint(path, c);
  const io::Checkpoint r = io::load_checkpoint(path, c.config_hash);
  EXPECT_TRUE(bitwise_equal(r.state.phi, c.state.phi));
  EXPECT_TRUE(bitwise_equal(r.state.sigma, c.state.sigma));
  EXPECT_EQ(std::memcmp(&r.state.time, &c.state.time, sizeof(real_t)), 0);
  EXPECT_EQ(r.step_index, c.step_index);
  EXPECT_EQ(r.config_hash, c.config_hash);
  for (int d = 0; d < 3; ++d)
    EXPECT_EQ(std::memcmp(&r.avec[d], &c.avec[d], sizeof(real_t)), 0);
  std::remove(path.c_str());
}

TEST(Checkpoint, DescriptiveErrorsOnBadFiles) {
  const std::string path = "test_io_corrupt.ckpt";
  io::save_checkpoint(path, sample_checkpoint());
  const std::vector<unsigned char> good = slurp(path);

  expect_error_containing([&] { io::load_checkpoint("no_such_file.ckpt"); },
                          "missing");

  auto corrupted = good;
  corrupted[0] ^= 0xff;  // magic
  spit(path, corrupted);
  expect_error_containing([&] { io::load_checkpoint(path); }, "bad magic");

  corrupted = good;
  corrupted[8] += 1;  // version (first field after the 8-byte magic)
  spit(path, corrupted);
  expect_error_containing([&] { io::load_checkpoint(path); },
                          "unsupported checkpoint version");

  corrupted.assign(good.begin(), good.begin() + 40);  // mid-header cut
  spit(path, corrupted);
  expect_error_containing([&] { io::load_checkpoint(path); }, "truncated");

  corrupted = good;
  corrupted[good.size() / 2] ^= 0x01;  // one payload bit
  spit(path, corrupted);
  expect_error_containing([&] { io::load_checkpoint(path); },
                          "checksum mismatch");

  spit(path, good);
  (void)io::load_checkpoint(path);  // pristine bytes still load
  expect_error_containing(
      [&] { io::load_checkpoint(path, /*expected_config_hash=*/12345); },
      "different run configuration");
  std::remove(path.c_str());
}

// --- mid-trajectory split against the golden fixture ----------------------

TEST(CheckpointResume, SerialSplitReplaysGoldenAndFinalStateBitwise) {
  const std::string path = "test_io_split.ckpt";
  // Segment 1: steps 1..kSplit, then checkpoint.
  std::vector<test::GoldenStep> obs;
  const td::TdState at_split = run_serial_steps(kSplit, &obs);
  io::Checkpoint c;
  c.state = at_split;
  c.step_index = kSplit;
  c.config_hash = 977;
  io::save_checkpoint(path, c);

  // Segment 2: FRESH system + propagator resumed from the file.
  const io::Checkpoint r = io::load_checkpoint(path, c.config_hash);
  EXPECT_EQ(r.step_index, static_cast<uint64_t>(kSplit));
  const td::TdState resumed =
      run_serial_steps(kSteps - kSplit, &obs, &r.state);

  // The concatenated observations replay the committed fixture...
  expect_matches_fixture_rows(obs, 0, "serial split+resume");
  // ...and the resumed endpoint is bitwise the uninterrupted run's.
  const td::TdState uninterrupted = run_serial_steps(kSteps);
  EXPECT_TRUE(bitwise_equal(resumed.phi, uninterrupted.phi));
  EXPECT_TRUE(bitwise_equal(resumed.sigma, uninterrupted.sigma));
  EXPECT_EQ(std::memcmp(&resumed.time, &uninterrupted.time, sizeof(real_t)),
            0);
  std::remove(path.c_str());
}

TEST(CheckpointResume, DistributedResumeReplaysGolden) {
  const std::string path = "test_io_split_dist.ckpt";
  io::Checkpoint c;
  c.state = run_serial_steps(kSplit);
  c.step_index = kSplit;
  io::save_checkpoint(path, c);
  const io::Checkpoint r = io::load_checkpoint(path);

  // A serial segment resumed band-parallel (4 ranks, async ring)...
  expect_matches_fixture_rows(
      run_distributed_from(r.state, kSteps - kSplit, dist::ProcessGrid{4, 1},
                           dist::ExchangePattern::kAsyncRing),
      kSplit, "band-parallel resume p=4");
  // ...and on the 2-D 2x2 band x grid layout.
  expect_matches_fixture_rows(
      run_distributed_from(r.state, kSteps - kSplit, dist::ProcessGrid{2, 2},
                           dist::ExchangePattern::kAsyncRing),
      kSplit, "2-D 2x2 resume");
  std::remove(path.c_str());
}

// --- Simulation-level checkpoint API --------------------------------------

TEST(CheckpointResume, SimulationRunSplitIsBitExact) {
  core::SystemSpec spec;
  spec.ecut = 1.5;
  spec.temperature_k = 8000.0;
  spec.scf.tol_rho = 5e-5;
  spec.scf.max_scf = 120;
  spec.scf.davidson_tol = 1e-6;
  spec.scf.max_outer_ace = 3;
  core::Simulation sim(spec);
  sim.prepare_ground_state();

  core::RunConfig cfg;
  cfg.steps = 4;
  cfg.dt = 1.0;
  cfg.variant = td::PtImVariant::kAce;
  cfg.tol = 1e-7;
  // Split horizons must agree, so pin the envelope explicitly (RunConfig
  // documents this for split trajectories).
  cfg.t_horizon = cfg.steps * cfg.dt;

  const std::string path = "test_io_sim.ckpt";
  // Uninterrupted 4-step reference.
  const auto full = sim.run(cfg);

  // Segment 1: 2 steps, checkpoint through the Simulation API.
  core::RunConfig half = cfg;
  half.steps = 2;
  const auto seg1 = sim.run(half);
  io::save_checkpoint(path, sim.checkpoint(cfg, seg1.final_state, 2));

  // Segment 2: restore (config-hash checked) and finish the trajectory.
  const io::Checkpoint c = io::load_checkpoint(path, sim.config_hash(cfg));
  td::TdState s = sim.restore(c);
  const auto seg2 =
      sim.run(half, {}, &s, c.step_index);

  EXPECT_TRUE(bitwise_equal(seg2.final_state.phi, full.final_state.phi));
  EXPECT_TRUE(bitwise_equal(seg2.final_state.sigma, full.final_state.sigma));

  // A physics-relevant config change is a refused resume, not a silently
  // different trajectory.
  core::RunConfig other = cfg;
  other.dt = 2.0;
  EXPECT_NE(sim.config_hash(cfg), sim.config_hash(other));
  expect_error_containing(
      [&] { io::load_checkpoint(path, sim.config_hash(other)); },
      "different run configuration");
  // Layout/throughput knobs are trajectory-invariant and hash-neutral.
  core::RunConfig wider = cfg;
  wider.exchange_batch = 4;
  wider.nranks = 2;
  EXPECT_EQ(sim.config_hash(cfg), sim.config_hash(wider));
  std::remove(path.c_str());
}

// --- atomic save + format v2 hardening ------------------------------------

TEST(Checkpoint, AtomicSaveLeavesNoStagingAndPreservesOriginalOnFailure) {
  const std::string path = "test_io_atomic.ckpt";
  const io::Checkpoint c = sample_checkpoint();
  io::save_checkpoint(path, c);
  // The staging file was renamed away, not left behind.
  EXPECT_EQ(std::fopen((path + ".tmp").c_str(), "rb"), nullptr);

  // Force the NEXT save to fail before publication (the staging path is
  // unopenable): the established checkpoint must survive untouched.
  ASSERT_EQ(::mkdir((path + ".tmp").c_str(), 0777), 0);
  io::Checkpoint newer = sample_checkpoint();
  newer.step_index = 99;
  expect_error_containing([&] { io::save_checkpoint(path, newer); },
                          "cannot open checkpoint for writing");
  const io::Checkpoint r = io::load_checkpoint(path, c.config_hash);
  EXPECT_EQ(r.step_index, c.step_index);  // the OLD complete file
  // The failed save's own cleanup already removed the empty decoy dir
  // (std::remove handles both); make sure nothing is left either way.
  ::rmdir((path + ".tmp").c_str());
  std::remove(path.c_str());
}

TEST(Checkpoint, FormatV2RejectsTrailingBytesAndBadSentinel) {
  const std::string path = "test_io_v2.ckpt";
  io::Checkpoint c = sample_checkpoint();
  // Round-trip an opaque campaign metadata blob alongside the state.
  for (int i = 0; i < 257; ++i)
    c.campaign_meta.push_back(static_cast<uint8_t>(i * 7));
  io::save_checkpoint(path, c);
  const std::vector<unsigned char> good = slurp(path);
  {
    const io::Checkpoint r = io::load_checkpoint(path, c.config_hash);
    ASSERT_EQ(r.campaign_meta.size(), c.campaign_meta.size());
    EXPECT_EQ(std::memcmp(r.campaign_meta.data(), c.campaign_meta.data(),
                          c.campaign_meta.size()),
              0);
  }

  // Bytes after the checksum were never covered by it: reject, don't trust.
  auto corrupted = good;
  corrupted.push_back(0x00);
  spit(path, corrupted);
  expect_error_containing([&] { io::load_checkpoint(path); },
                          "trailing bytes");

  // A byte-swapped version field is an opposite-endianness writer, called
  // out as such instead of a generic corruption failure. The version u32
  // sits at offset 8, right after the magic.
  corrupted = good;
  std::swap(corrupted[8], corrupted[11]);
  std::swap(corrupted[9], corrupted[10]);
  spit(path, corrupted);
  expect_error_containing([&] { io::load_checkpoint(path); },
                          "opposite-endianness");

  // Same diagnosis when only the sentinel (offset 12) is byte-reversed.
  corrupted = good;
  std::swap(corrupted[12], corrupted[15]);
  std::swap(corrupted[13], corrupted[14]);
  spit(path, corrupted);
  expect_error_containing([&] { io::load_checkpoint(path); },
                          "opposite-endianness");

  // A sentinel that matches NEITHER byte order is plain header corruption.
  corrupted = good;
  corrupted[12] ^= 0xff;
  spit(path, corrupted);
  expect_error_containing([&] { io::load_checkpoint(path); },
                          "bad endianness sentinel");
  std::remove(path.c_str());
}

TEST(Checkpoint, VersionOneFilesStillLoad) {
  // Hand-built v1 image (no sentinel, no campaign metadata): the reader
  // keeps loading pre-campaign checkpoints unchanged.
  const io::Checkpoint c = sample_checkpoint();
  std::vector<unsigned char> out;
  const auto put = [&out](const void* p, size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    out.insert(out.end(), b, b + n);
  };
  put("PTIMCKPT", 8);
  const size_t hashed_from = out.size();
  const uint32_t version = 1;
  put(&version, sizeof(version));
  put(&c.config_hash, 8);
  put(&c.step_index, 8);
  put(&c.state.time, 8);
  for (int d = 0; d < 3; ++d) put(&c.avec[d], 8);
  const uint64_t npw = c.state.phi.rows();
  const uint64_t nb = c.state.phi.cols();
  put(&npw, 8);
  put(&nb, 8);
  put(c.state.phi.data(), npw * nb * sizeof(cplx));
  put(c.state.sigma.data(), nb * nb * sizeof(cplx));
  const uint64_t sum =
      io::fnv1a(out.data() + hashed_from, out.size() - hashed_from);
  put(&sum, 8);

  const std::string path = "test_io_v1.ckpt";
  spit(path, out);
  const io::Checkpoint r = io::load_checkpoint(path, c.config_hash);
  EXPECT_TRUE(bitwise_equal(r.state.phi, c.state.phi));
  EXPECT_TRUE(bitwise_equal(r.state.sigma, c.state.sigma));
  EXPECT_EQ(r.step_index, c.step_index);
  EXPECT_TRUE(r.campaign_meta.empty());
  std::remove(path.c_str());
}
