// Parameterized property sweeps across the configuration space: every
// PT-IM variant x temperature combination must preserve the same physical
// invariants, and the screened-exchange kernel must respond monotonically
// to its screening parameter.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "gs/scf.hpp"
#include "ham/density.hpp"
#include "la/blas.hpp"
#include "la/eig.hpp"
#include "pw/wavefunction.hpp"
#include "td/observables.hpp"
#include "td/ptim.hpp"
#include "test_helpers.hpp"

using namespace ptim;

namespace {

struct SharedGs {
  test::TinySystem sys;
  gs::ScfResult ground;
};

// One ground state per temperature, shared across all sweep cases.
SharedGs& gs_for(real_t temperature_k) {
  static std::map<long, SharedGs*> cache;
  const long key = std::lround(temperature_k);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto* e = new SharedGs{test::TinySystem::make(3.0), {}};
    gs::ScfOptions opt;
    opt.nbands = 6;
    opt.nelec = 8.0;
    opt.temperature_k = temperature_k;
    opt.tol_rho = 1e-7;
    e->ground = gs::ground_state(*e->sys.ham, opt);
    it = cache.emplace(key, e).first;
  }
  return *it->second;
}

}  // namespace

using SweepParam = std::tuple<td::PtImVariant, int /*kelvin*/>;

class PtImSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PtImSweep, StepInvariants) {
  const auto [variant, kelvin] = GetParam();
  auto& env = gs_for(static_cast<real_t>(kelvin));

  td::TdState s = td::TdState::from_occupations(env.ground.phi,
                                                env.ground.occ);
  const real_t tr0 = td::sigma_trace(s.sigma);
  const auto rho0 =
      ham::density_sigma(s.phi, s.sigma, env.sys.ham->den_map());
  env.sys.ham->set_density(rho0);
  const real_t e0 = env.sys.ham->energy(s.phi, s.sigma, rho0).total();

  td::PtImOptions opt;
  opt.dt = 1.5;
  opt.tol = 1e-8;
  opt.variant = variant;
  td::PtImPropagator prop(*env.sys.ham, opt, nullptr);
  const auto stats = prop.step(s);

  EXPECT_TRUE(stats.converged);
  EXPECT_LT(pw::orthonormality_defect(s.phi), 1e-9);
  EXPECT_LT(td::sigma_hermiticity_defect(s.sigma), 1e-11);
  EXPECT_NEAR(td::sigma_trace(s.sigma), tr0, 1e-7);
  // Eigen-occupations remain physical (within fixed-point tolerance).
  const auto eig = la::eig_herm(s.sigma);
  for (const real_t w : eig.w) {
    EXPECT_GT(w, -1e-6);
    EXPECT_LT(w, 1.0 + 1e-6);
  }
  // Field-free total energy conserved over the step.
  const auto rho1 =
      ham::density_sigma(s.phi, s.sigma, env.sys.ham->den_map());
  env.sys.ham->set_density(rho1);
  const real_t e1 = env.sys.ham->energy(s.phi, s.sigma, rho1).total();
  EXPECT_NEAR(e1, e0, 2e-5 * std::abs(e0));
}

INSTANTIATE_TEST_SUITE_P(
    VariantsByTemperature, PtImSweep,
    ::testing::Combine(::testing::Values(td::PtImVariant::kBaseline,
                                         td::PtImVariant::kDiag,
                                         td::PtImVariant::kAce),
                       ::testing::Values(0, 8000)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      const td::PtImVariant v = std::get<0>(info.param);
      const int t = std::get<1>(info.param);
      const char* vn = v == td::PtImVariant::kBaseline ? "Baseline"
                       : v == td::PtImVariant::kDiag   ? "Diag"
                                                       : "Ace";
      return std::string(vn) + "_" + std::to_string(t) + "K";
    });

class ScreeningSweep : public ::testing::TestWithParam<double> {};

TEST_P(ScreeningSweep, KernelWithinBareCoulombBound) {
  const real_t mu = GetParam();
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  ham::ExchangeOptions opt;
  opt.mu = mu;
  ham::ExchangeOperator xop(map, opt);
  const auto& g2 = sys.wfc_grid->g2();
  for (size_t i = 0; i < g2.size(); i += 23) {
    EXPECT_GE(xop.kernel()[i], 0.0);
    if (g2[i] > 1e-8) {
      EXPECT_LE(xop.kernel()[i], kFourPi / g2[i] * (1.0 + 1e-12));
    }
  }
  EXPECT_NEAR(xop.kernel()[0], kPi / (mu * mu), 1e-9 / (mu * mu));
}

INSTANTIATE_TEST_SUITE_P(MuValues, ScreeningSweep,
                         ::testing::Values(0.05, 0.106, 0.2, 0.5, 1.0));

TEST(Screening, ExchangeEnergyDecreasesWithMu) {
  // Stronger screening (larger mu) weakens the exchange interaction:
  // |E_x| must be monotone decreasing in mu.
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const la::MatC phi = test::random_orbitals(sys.sphere->npw(), 4, 777);
  const std::vector<real_t> d{1.0, 0.8, 0.5, 0.2};
  real_t prev = -1e9;
  for (const real_t mu : {0.05, 0.106, 0.3, 0.8, 2.0}) {
    ham::ExchangeOptions opt;
    opt.mu = mu;
    ham::ExchangeOperator xop(map, opt);
    const real_t ex = xop.energy_diag(phi, d);
    EXPECT_LT(ex, 0.0);
    EXPECT_GT(ex, prev);  // less negative as screening grows
    prev = ex;
  }
}

TEST(Screening, BareCoulombStrongerThanStronglyScreened) {
  // The inequality |E_x(bare)| > |E_x(screened)| requires the screening
  // length 1/mu to be well inside the cell; at the HSE06 mu = 0.106 and an
  // 8-bohr test box the Gamma-point G=0 regularizations dominate instead
  // (a finite-size effect, not a bug). Use strong screening here.
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const la::MatC phi = test::random_orbitals(sys.sphere->npw(), 3, 778);
  const std::vector<real_t> d{1.0, 0.6, 0.3};
  ham::ExchangeOptions screened;
  screened.mu = 0.8;  // screening length ~1.2 bohr << box
  ham::ExchangeOptions bare;
  bare.screened = false;
  const real_t e_s = ham::ExchangeOperator(map, screened).energy_diag(phi, d);
  const real_t e_b = ham::ExchangeOperator(map, bare).energy_diag(phi, d);
  EXPECT_LT(e_b, e_s);  // bare Coulomb binds more
}

class EcutSweep : public ::testing::TestWithParam<double> {};

TEST_P(EcutSweep, SphereGridConsistency) {
  // For any cutoff: the suggested grids hold the sphere, transforms round
  // trip, and npw grows with ecut^{3/2} within loose bounds.
  const real_t ecut = GetParam();
  const auto lat = grid::Lattice::cubic(8.0);
  const grid::GSphere sphere(lat, ecut);
  const grid::FftGrid g(lat, sphere.suggest_dims(1));
  pw::SphereGridMap map(sphere, g);
  la::MatC c = test::random_matrix(sphere.npw(), 2, 900);
  la::MatC real_space, back;
  map.to_real_batch(c, real_space);
  map.to_sphere_batch(real_space, back);
  EXPECT_LT(la::frob_diff(c, back), 1e-10);
  const real_t expected =
      lat.volume() * std::pow(2.0 * ecut, 1.5) / (6.0 * kPi * kPi);
  EXPECT_GT(static_cast<real_t>(sphere.npw()), 0.5 * expected);
  EXPECT_LT(static_cast<real_t>(sphere.npw()), 2.2 * expected);
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, EcutSweep,
                         ::testing::Values(1.0, 2.0, 3.0, 5.0, 8.0));
