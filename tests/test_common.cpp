// Units, RNG determinism, timers and error checks.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

using namespace ptim;

TEST(Units, TimeConversions) {
  // 50 attoseconds (the paper's PT-IM step) in atomic units.
  const real_t dt = units::as_to_au(50.0);
  EXPECT_NEAR(dt, 2.067, 1e-3);
  EXPECT_NEAR(units::fs_to_au(1.0) * units::au_time_fs, 1.0, 1e-12);
}

TEST(Units, PhotonEnergy380nm) {
  // 380 nm laser (paper Sec. VI): ~3.26 eV.
  const real_t w = units::photon_energy_ha(380.0);
  EXPECT_NEAR(w * units::hartree_in_ev, 3.2627, 1e-3);
}

TEST(Units, BoltzmannAt8000K) {
  // kT at the paper's 8000 K.
  EXPECT_NEAR(8000.0 * units::kboltz_ha_per_k, 0.02533, 1e-4);
}

TEST(Rng, DeterministicStreams) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  // Different seeds diverge.
  Rng a2(42), c2(43);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a2.next_u64() == c2.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const real_t u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMean) {
  Rng rng(11);
  real_t sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 5e-3);
}

TEST(Error, CheckMacroThrows) {
  EXPECT_THROW(PTIM_CHECK(1 == 2), Error);
  EXPECT_NO_THROW(PTIM_CHECK(1 == 1));
  try {
    PTIM_CHECK_MSG(false, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Profile, RegistryAccumulates) {
  auto& reg = ProfileRegistry::instance();
  reg.clear();
  { ScopedTimer t("unit.section"); }
  { ScopedTimer t("unit.section"); }
  const ProfileEntry e = reg.get("unit.section");
  EXPECT_EQ(e.count, 2);
  EXPECT_GE(e.seconds, 0.0);
  reg.clear();
  EXPECT_EQ(reg.get("unit.section").count, 0);
}
