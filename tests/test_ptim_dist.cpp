// Band-parallel PT-IM propagation: the distributed propagator must
// reproduce the serial td::PtImPropagator trajectory to 1e-10 over 10
// steps for every variant (Baseline / Diag / ACE) and every circulation
// pattern (Bcast / Ring / Async-Ring), including non-divisible band counts
// (7 bands on 2/3/4 ranks) and more ranks than bands. Also checks that the
// measured CommStats of the real propagator show the Table I pattern shift
// (no Bcast traffic under the rings).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "core/simulation.hpp"
#include "dist/band_ham.hpp"
#include "ham/density.hpp"
#include "la/blas.hpp"
#include "td/observables.hpp"
#include "td/ptim.hpp"
#include "td/ptim_dist.hpp"
#include "test_helpers.hpp"

using namespace ptim;

namespace {

constexpr int kSteps = 10;
constexpr real_t kTol = 1e-10;

td::PtImOptions ptim_options(td::PtImVariant variant) {
  td::PtImOptions opt;
  opt.dt = 0.5;
  opt.tol = 1e-7;
  opt.variant = variant;
  return opt;
}

td::TdState initial_state(size_t npw, size_t nb) {
  td::TdState s;
  s.phi = test::random_orbitals(npw, nb, 901);
  s.sigma = test::random_occupation_matrix(nb, 902);
  return s;
}

struct Trajectory {
  std::vector<real_t> dipole;  // after each step
  td::TdState final_state;
};

Trajectory serial_trajectory(test::TinySystem& sys, size_t nb,
                             td::PtImVariant variant) {
  Trajectory t;
  td::TdState s = initial_state(sys.sphere->npw(), nb);
  td::PtImPropagator prop(*sys.ham, ptim_options(variant), nullptr);
  for (int i = 0; i < kSteps; ++i) {
    prop.step(s);
    const auto rho = ham::density_sigma(s.phi, s.sigma, sys.ham->den_map());
    t.dipole.push_back(td::dipole(rho, *sys.den_grid, {1.0, 0.0, 0.0}));
  }
  t.final_state = std::move(s);
  return t;
}

Trajectory distributed_trajectory(test::TinySystem& sys, size_t nb,
                                  td::PtImVariant variant,
                                  dist::ExchangePattern pattern, int p,
                                  int steps = kSteps) {
  Trajectory t;
  t.dipole.assign(static_cast<size_t>(steps), 0.0);
  const td::TdState init = initial_state(sys.sphere->npw(), nb);
  const dist::BlockLayout bands(nb, p);
  ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
    auto h = std::make_unique<ham::Hamiltonian>(*sys.lattice, sys.atoms,
                                                *sys.sphere, *sys.wfc_grid,
                                                *sys.den_grid,
                                                ham::HamiltonianOptions{});
    dist::BandHamOptions bopt;
    bopt.pattern = pattern;
    bopt.overlap_shm = (pattern != dist::ExchangePattern::kBcast);
    dist::BandDistributedHamiltonian bdh(c, *h, nb, bopt);
    td::DistTdState s = td::scatter_state(init, bands, c.rank());
    td::DistPtImPropagator prop(bdh, ptim_options(variant), nullptr);
    for (int i = 0; i < steps; ++i) {
      prop.step(s);
      const auto rho = bdh.density(s.phi_local, s.sigma);
      if (c.rank() == 0)
        t.dipole[static_cast<size_t>(i)] =
            td::dipole(rho, *sys.den_grid, {1.0, 0.0, 0.0});
    }
    const td::TdState full = td::gather_state(c, s, bands);
    if (c.rank() == 0) t.final_state = full;
  });
  return t;
}

real_t total_energy(test::TinySystem& sys, const td::TdState& s) {
  const auto rho = ham::density_sigma(s.phi, s.sigma, sys.ham->den_map());
  sys.ham->set_density(rho);
  sys.ham->set_exchange_mode(ham::ExchangeMode::kExactDiag);
  return sys.ham->energy(s.phi, s.sigma, rho).total();
}

void expect_trajectories_match(test::TinySystem& sys, const Trajectory& ser,
                               const Trajectory& dst, const char* label) {
  for (int i = 0; i < kSteps; ++i)
    EXPECT_NEAR(ser.dipole[static_cast<size_t>(i)],
                dst.dipole[static_cast<size_t>(i)], kTol)
        << label << " dipole step " << i;
  EXPECT_LT(la::frob_diff(ser.final_state.sigma, dst.final_state.sigma), kTol)
      << label << " sigma";
  const real_t es = total_energy(sys, ser.final_state);
  const real_t ed = total_energy(sys, dst.final_state);
  EXPECT_NEAR(es, ed, kTol * std::max(real_t(1.0), std::abs(es)))
      << label << " energy";
}

}  // namespace

// ------------------------------------------------ trajectory regression ---

class PtImDistParam
    : public ::testing::TestWithParam<
          std::tuple<td::PtImVariant, dist::ExchangePattern, int>> {};

TEST_P(PtImDistParam, MatchesSerialTrajectory) {
  const auto [variant, pattern, p] = GetParam();
  test::TinySystem sys = test::TinySystem::make(3.0);
  const size_t nb = 7;  // not divisible by 2, 3 or 4

  // The serial reference depends only on the variant (fully deterministic);
  // compute it once and reuse it across the three pattern/rank cases.
  static std::map<int, Trajectory> cache;
  auto it = cache.find(static_cast<int>(variant));
  if (it == cache.end())
    it = cache.emplace(static_cast<int>(variant),
                       serial_trajectory(sys, nb, variant)).first;
  const Trajectory& ser = it->second;

  const Trajectory dst = distributed_trajectory(sys, nb, variant, pattern, p);
  expect_trajectories_match(sys, ser, dst,
                            dist::pattern_name(pattern));
}

// Every variant runs every pattern; rank counts 2/3/4 all appear for each
// variant (and 7 bands split unevenly on each of them).
INSTANTIATE_TEST_SUITE_P(
    VariantsPatternsRanks, PtImDistParam,
    ::testing::Values(
        std::make_tuple(td::PtImVariant::kBaseline,
                        dist::ExchangePattern::kBcast, 2),
        std::make_tuple(td::PtImVariant::kBaseline,
                        dist::ExchangePattern::kRing, 3),
        std::make_tuple(td::PtImVariant::kBaseline,
                        dist::ExchangePattern::kAsyncRing, 4),
        std::make_tuple(td::PtImVariant::kDiag,
                        dist::ExchangePattern::kBcast, 3),
        std::make_tuple(td::PtImVariant::kDiag,
                        dist::ExchangePattern::kRing, 4),
        std::make_tuple(td::PtImVariant::kDiag,
                        dist::ExchangePattern::kAsyncRing, 2),
        std::make_tuple(td::PtImVariant::kAce,
                        dist::ExchangePattern::kBcast, 4),
        std::make_tuple(td::PtImVariant::kAce,
                        dist::ExchangePattern::kRing, 2),
        std::make_tuple(td::PtImVariant::kAce,
                        dist::ExchangePattern::kAsyncRing, 3)));

TEST(PtImDist, RanksExceedBands) {
  // 3 bands on 5 ranks: two ranks own no bands at all and must still
  // participate in every collective.
  test::TinySystem sys = test::TinySystem::make(3.0);
  const size_t nb = 3;
  const Trajectory ser = serial_trajectory(sys, nb, td::PtImVariant::kDiag);
  const Trajectory dst = distributed_trajectory(
      sys, nb, td::PtImVariant::kDiag, dist::ExchangePattern::kAsyncRing, 5);
  expect_trajectories_match(sys, ser, dst, "ranks>bands");
}

// ------------------------------------------------ measured comm pattern ---

TEST(PtImDist, PropagatorCommStatsShowPatternShift) {
  // The Table I claim, measured on the real propagator: the ring variants
  // move the exchange bytes out of Bcast into Sendrecv (sync) or
  // Isend/Irecv+Wait (async); overlaps keep using Alltoallv + Allreduce.
  test::TinySystem sys = test::TinySystem::make(3.0);
  const size_t nb = 6;

  auto run = [&](dist::ExchangePattern pattern) {
    (void)distributed_trajectory(sys, nb, td::PtImVariant::kAce, pattern, 4,
                                 /*steps=*/2);
    return ptmpi::last_run_stats();
  };

  const auto s_bcast = run(dist::ExchangePattern::kBcast);
  EXPECT_GT(s_bcast[0].ops.at("Bcast").bytes, 0);
  EXPECT_EQ(s_bcast[0].ops.count("Sendrecv"), 0u);

  const auto s_ring = run(dist::ExchangePattern::kRing);
  EXPECT_EQ(s_ring[0].ops.count("Bcast"), 0u);
  EXPECT_GT(s_ring[0].ops.at("Sendrecv").bytes, 0);

  const auto s_async = run(dist::ExchangePattern::kAsyncRing);
  EXPECT_EQ(s_async[0].ops.count("Bcast"), 0u);
  EXPECT_EQ(s_async[0].ops.count("Sendrecv"), 0u);
  EXPECT_GT(s_async[0].ops.at("Wait").bytes, 0);

  // Structural ops shared by every pattern.
  for (const auto& stats : {s_ring, s_async}) {
    EXPECT_GT(stats[0].ops.at("Alltoallv").calls, 0);
    EXPECT_GT(stats[0].ops.at("Allreduce").calls, 0);
    EXPECT_GT(stats[0].ops.at("Allgatherv").calls, 0);
  }
}

// -------------------------------------------- core::Simulation threading ---

TEST(PtImDist, SimulationDistributedMatchesSerial) {
  // End-to-end through the user-facing driver: ground state, then three
  // PT-IM steps serial vs distributed (ACE + async ring, 3 ranks).
  core::SystemSpec spec;
  spec.ecut = 2.0;
  spec.temperature_k = 8000.0;
  spec.scf.tol_rho = 1e-8;
  core::Simulation sim(spec);
  sim.prepare_ground_state();

  td::PtImOptions opt;
  opt.dt = 0.5;
  opt.tol = 1e-7;
  opt.variant = td::PtImVariant::kAce;

  const int steps = 3;
  td::TdState s = sim.initial_state();
  auto prop = sim.make_ptim(opt);
  std::vector<real_t> dip_serial;
  for (int i = 0; i < steps; ++i) {
    prop->step(s);
    dip_serial.push_back(sim.dipole_x(s));
  }

  core::Simulation::DistRunOptions dopt;
  dopt.nranks = 3;
  dopt.ranks_per_node = 2;
  dopt.steps = steps;
  dopt.ptim = opt;
  dopt.band.pattern = dist::ExchangePattern::kAsyncRing;
  const auto res = sim.propagate_distributed(dopt);

  ASSERT_EQ(res.dipole.size(), static_cast<size_t>(steps));
  for (int i = 0; i < steps; ++i)
    EXPECT_NEAR(dip_serial[static_cast<size_t>(i)],
                res.dipole[static_cast<size_t>(i)], kTol)
        << "step " << i;
  EXPECT_LT(la::frob_diff(s.sigma, res.final_state.sigma), kTol);
  EXPECT_LT(la::frob_diff(s.phi, res.final_state.phi), 1e-8);
  ASSERT_EQ(res.comm.size(), 3u);
  EXPECT_GT(res.comm[0].ops.at("Wait").bytes, 0);
}

TEST(PtImDist, SingleRankIsExactlySerialShape) {
  // p = 1 must work (degenerate world) and agree with serial.
  test::TinySystem sys = test::TinySystem::make(3.0);
  const size_t nb = 4;
  const Trajectory ser = serial_trajectory(sys, nb, td::PtImVariant::kDiag);
  const Trajectory dst = distributed_trajectory(
      sys, nb, td::PtImVariant::kDiag, dist::ExchangePattern::kRing, 1);
  expect_trajectories_match(sys, ser, dst, "p=1");
}
