// The in-process MPI substitute: point-to-point semantics, collectives,
// nonblocking requests, shared-memory windows and statistics recording.

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "ptmpi/comm.hpp"

using namespace ptim;

TEST(Ptmpi, RankIdentity) {
  std::vector<int> seen(6, -1);
  ptmpi::run_ranks(6, 2, [&](ptmpi::Comm& c) {
    seen[static_cast<size_t>(c.rank())] = c.rank();
    EXPECT_EQ(c.size(), 6);
    EXPECT_EQ(c.node(), c.rank() / 2);
    EXPECT_EQ(c.node_rank(), c.rank() % 2);
  });
  for (int r = 0; r < 6; ++r) EXPECT_EQ(seen[static_cast<size_t>(r)], r);
}

TEST(Ptmpi, SendRecvPair) {
  ptmpi::run_ranks(2, 1, [](ptmpi::Comm& c) {
    if (c.rank() == 0) {
      const double x = 42.5;
      c.send(1, &x, sizeof(x), 7);
    } else {
      double y = 0.0;
      c.recv(0, &y, sizeof(y), 7);
      EXPECT_EQ(y, 42.5);
    }
  });
}

TEST(Ptmpi, TagMatching) {
  // Messages with different tags are matched independently of arrival order.
  ptmpi::run_ranks(2, 1, [](ptmpi::Comm& c) {
    if (c.rank() == 0) {
      const int a = 1, b = 2;
      c.send(1, &a, sizeof(a), /*tag=*/10);
      c.send(1, &b, sizeof(b), /*tag=*/20);
    } else {
      int b = 0, a = 0;
      c.recv(0, &b, sizeof(b), 20);  // out of order on purpose
      c.recv(0, &a, sizeof(a), 10);
      EXPECT_EQ(a, 1);
      EXPECT_EQ(b, 2);
    }
  });
}

TEST(Ptmpi, NonblockingRing) {
  const int p = 5;
  std::vector<int> results(p, -1);
  ptmpi::run_ranks(p, 1, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    const int next = (me + 1) % p;
    const int prev = (me - 1 + p) % p;
    int payload = me, incoming = -1;
    auto rr = c.irecv(prev, &incoming, sizeof(int), 0);
    auto rs = c.isend(next, &payload, sizeof(int), 0);
    c.wait(rs);
    c.wait(rr);
    results[static_cast<size_t>(me)] = incoming;
  });
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(results[static_cast<size_t>(r)], (r - 1 + p) % p);
}

TEST(Ptmpi, SendrecvRotatesRing) {
  const int p = 4;
  std::vector<int> results(p, -1);
  ptmpi::run_ranks(p, 1, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    int out_v = 100 + me, in_v = -1;
    c.sendrecv((me + 1) % p, &out_v, sizeof(int), (me - 1 + p) % p, &in_v,
               sizeof(int));
    results[static_cast<size_t>(me)] = in_v;
  });
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(results[static_cast<size_t>(r)], 100 + (r - 1 + p) % p);
}

TEST(Ptmpi, BcastFromEveryRoot) {
  const int p = 4;
  for (int root = 0; root < p; ++root) {
    std::vector<double> results(p, 0.0);
    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      double v = (c.rank() == root) ? 3.14 * (root + 1) : 0.0;
      c.bcast(&v, sizeof(v), root);
      results[static_cast<size_t>(c.rank())] = v;
    });
    for (int r = 0; r < p; ++r)
      EXPECT_EQ(results[static_cast<size_t>(r)], 3.14 * (root + 1));
  }
}

TEST(Ptmpi, AllreduceSums) {
  const int p = 6;
  std::vector<real_t> results(p, 0.0);
  ptmpi::run_ranks(p, 3, [&](ptmpi::Comm& c) {
    std::vector<real_t> v{static_cast<real_t>(c.rank() + 1), 2.0};
    c.allreduce_sum(v.data(), v.size());
    results[static_cast<size_t>(c.rank())] = v[0];
    EXPECT_NEAR(v[1], 2.0 * p, 1e-12);
  });
  const real_t expect = p * (p + 1) / 2.0;
  for (int r = 0; r < p; ++r)
    EXPECT_NEAR(results[static_cast<size_t>(r)], expect, 1e-12);
}

TEST(Ptmpi, AllreduceComplex) {
  ptmpi::run_ranks(3, 1, [](ptmpi::Comm& c) {
    cplx v{1.0, static_cast<real_t>(c.rank())};
    c.allreduce_sum(&v, 1);
    EXPECT_NEAR(std::abs(v - cplx(3.0, 3.0)), 0.0, 1e-12);
  });
}

TEST(Ptmpi, Allgatherv) {
  const int p = 4;
  ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
    // Rank r contributes r+1 elements of value r.
    std::vector<size_t> counts;
    for (int r = 0; r < p; ++r) counts.push_back(static_cast<size_t>(r + 1));
    std::vector<cplx> mine(static_cast<size_t>(c.rank() + 1),
                           cplx(c.rank(), 0.0));
    const size_t total = std::accumulate(counts.begin(), counts.end(),
                                         size_t{0});
    std::vector<cplx> all(total);
    c.allgatherv(mine.data(), mine.size(), all.data(), counts);
    size_t idx = 0;
    for (int r = 0; r < p; ++r)
      for (int k = 0; k <= r; ++k)
        EXPECT_NEAR(std::abs(all[idx++] - cplx(r, 0.0)), 0.0, 1e-14);
  });
}

TEST(Ptmpi, AlltoallvNonUniform) {
  const int p = 3;
  ptmpi::run_ranks(p, 1, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    // Rank s sends (s + d + 1) elements of value 10*s + d to rank d.
    std::vector<size_t> send_counts(p), recv_counts(p);
    size_t stotal = 0, rtotal = 0;
    for (int d = 0; d < p; ++d) {
      send_counts[static_cast<size_t>(d)] = static_cast<size_t>(me + d + 1);
      recv_counts[static_cast<size_t>(d)] = static_cast<size_t>(d + me + 1);
      stotal += send_counts[static_cast<size_t>(d)];
      rtotal += recv_counts[static_cast<size_t>(d)];
    }
    std::vector<cplx> send(stotal), recv(rtotal);
    size_t pos = 0;
    for (int d = 0; d < p; ++d)
      for (size_t k = 0; k < send_counts[static_cast<size_t>(d)]; ++k)
        send[pos++] = cplx(10.0 * me + d, 0.0);
    c.alltoallv(send.data(), send_counts, recv.data(), recv_counts);
    pos = 0;
    for (int s = 0; s < p; ++s)
      for (size_t k = 0; k < recv_counts[static_cast<size_t>(s)]; ++k)
        EXPECT_NEAR(std::abs(recv[pos++] - cplx(10.0 * s + me, 0.0)), 0.0,
                    1e-14);
  });
}

TEST(Ptmpi, ShmSharedWithinNode) {
  const int p = 4;  // 2 nodes x 2 ranks
  ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
    cplx* buf = c.shm_allocate("window", 4);
    c.barrier();
    if (c.node_rank() == 0) buf[0] = cplx(100.0 + c.node(), 0.0);
    c.barrier();
    // Both ranks of the node see the leader's write; nodes are isolated.
    EXPECT_NEAR(std::abs(buf[0] - cplx(100.0 + c.node(), 0.0)), 0.0, 1e-14);
  });
}

TEST(Ptmpi, StatsRecorded) {
  ptmpi::run_ranks(2, 1, [](ptmpi::Comm& c) {
    std::vector<cplx> v(100, cplx(1.0));
    c.allreduce_sum(v.data(), v.size());
    if (c.rank() == 0) {
      const double x = 1.0;
      c.send(1, &x, sizeof(x));
    } else {
      double y;
      c.recv(0, &y, sizeof(y));
    }
  });
  const auto& stats = ptmpi::last_run_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].ops.at("Allreduce").calls, 1);
  EXPECT_EQ(stats[0].ops.at("Allreduce").bytes,
            static_cast<long long>(100 * sizeof(cplx)));
  EXPECT_EQ(stats[0].ops.at("Send").calls, 1);
  EXPECT_EQ(stats[1].ops.at("Recv").calls, 1);
  EXPECT_GE(stats[0].total_seconds(), 0.0);
}

TEST(Ptmpi, ExceptionPropagates) {
  bool threw = false;
  try {
    ptmpi::run_ranks(2, 1, [](ptmpi::Comm& c) {
      if (c.rank() == 1) throw Error("rank 1 exploded");
      // Rank 0 must not deadlock: no communication here.
    });
  } catch (const Error& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("exploded"), std::string::npos);
  }
  EXPECT_TRUE(threw);
}
