// The in-process MPI substitute: point-to-point semantics, collectives,
// nonblocking requests, shared-memory windows and statistics recording —
// plus randomized stress tests (interleaved nonblocking traffic with mixed
// tags and sizes, degenerate alltoallv counts, shared-window reuse under
// contention) covering the paths the band-parallel propagator leans on.

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ptmpi/comm.hpp"

using namespace ptim;

TEST(Ptmpi, RankIdentity) {
  std::vector<int> seen(6, -1);
  ptmpi::run_ranks(6, 2, [&](ptmpi::Comm& c) {
    seen[static_cast<size_t>(c.rank())] = c.rank();
    EXPECT_EQ(c.size(), 6);
    EXPECT_EQ(c.node(), c.rank() / 2);
    EXPECT_EQ(c.node_rank(), c.rank() % 2);
  });
  for (int r = 0; r < 6; ++r) EXPECT_EQ(seen[static_cast<size_t>(r)], r);
}

TEST(Ptmpi, SendRecvPair) {
  ptmpi::run_ranks(2, 1, [](ptmpi::Comm& c) {
    if (c.rank() == 0) {
      const double x = 42.5;
      c.send(1, &x, sizeof(x), 7);
    } else {
      double y = 0.0;
      c.recv(0, &y, sizeof(y), 7);
      EXPECT_EQ(y, 42.5);
    }
  });
}

TEST(Ptmpi, TagMatching) {
  // Messages with different tags are matched independently of arrival order.
  ptmpi::run_ranks(2, 1, [](ptmpi::Comm& c) {
    if (c.rank() == 0) {
      const int a = 1, b = 2;
      c.send(1, &a, sizeof(a), /*tag=*/10);
      c.send(1, &b, sizeof(b), /*tag=*/20);
    } else {
      int b = 0, a = 0;
      c.recv(0, &b, sizeof(b), 20);  // out of order on purpose
      c.recv(0, &a, sizeof(a), 10);
      EXPECT_EQ(a, 1);
      EXPECT_EQ(b, 2);
    }
  });
}

TEST(Ptmpi, NonblockingRing) {
  const int p = 5;
  std::vector<int> results(p, -1);
  ptmpi::run_ranks(p, 1, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    const int next = (me + 1) % p;
    const int prev = (me - 1 + p) % p;
    int payload = me, incoming = -1;
    auto rr = c.irecv(prev, &incoming, sizeof(int), 0);
    auto rs = c.isend(next, &payload, sizeof(int), 0);
    c.wait(rs);
    c.wait(rr);
    results[static_cast<size_t>(me)] = incoming;
  });
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(results[static_cast<size_t>(r)], (r - 1 + p) % p);
}

TEST(Ptmpi, SendrecvRotatesRing) {
  const int p = 4;
  std::vector<int> results(p, -1);
  ptmpi::run_ranks(p, 1, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    int out_v = 100 + me, in_v = -1;
    c.sendrecv((me + 1) % p, &out_v, sizeof(int), (me - 1 + p) % p, &in_v,
               sizeof(int));
    results[static_cast<size_t>(me)] = in_v;
  });
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(results[static_cast<size_t>(r)], 100 + (r - 1 + p) % p);
}

TEST(Ptmpi, BcastFromEveryRoot) {
  const int p = 4;
  for (int root = 0; root < p; ++root) {
    std::vector<double> results(p, 0.0);
    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      double v = (c.rank() == root) ? 3.14 * (root + 1) : 0.0;
      c.bcast(&v, sizeof(v), root);
      results[static_cast<size_t>(c.rank())] = v;
    });
    for (int r = 0; r < p; ++r)
      EXPECT_EQ(results[static_cast<size_t>(r)], 3.14 * (root + 1));
  }
}

TEST(Ptmpi, AllreduceSums) {
  const int p = 6;
  std::vector<real_t> results(p, 0.0);
  ptmpi::run_ranks(p, 3, [&](ptmpi::Comm& c) {
    std::vector<real_t> v{static_cast<real_t>(c.rank() + 1), 2.0};
    c.allreduce_sum(v.data(), v.size());
    results[static_cast<size_t>(c.rank())] = v[0];
    EXPECT_NEAR(v[1], 2.0 * p, 1e-12);
  });
  const real_t expect = p * (p + 1) / 2.0;
  for (int r = 0; r < p; ++r)
    EXPECT_NEAR(results[static_cast<size_t>(r)], expect, 1e-12);
}

TEST(Ptmpi, AllreduceComplex) {
  ptmpi::run_ranks(3, 1, [](ptmpi::Comm& c) {
    cplx v{1.0, static_cast<real_t>(c.rank())};
    c.allreduce_sum(&v, 1);
    EXPECT_NEAR(std::abs(v - cplx(3.0, 3.0)), 0.0, 1e-12);
  });
}

TEST(Ptmpi, Allgatherv) {
  const int p = 4;
  ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
    // Rank r contributes r+1 elements of value r.
    std::vector<size_t> counts;
    for (int r = 0; r < p; ++r) counts.push_back(static_cast<size_t>(r + 1));
    std::vector<cplx> mine(static_cast<size_t>(c.rank() + 1),
                           cplx(c.rank(), 0.0));
    const size_t total = std::accumulate(counts.begin(), counts.end(),
                                         size_t{0});
    std::vector<cplx> all(total);
    c.allgatherv(mine.data(), mine.size(), all.data(), counts);
    size_t idx = 0;
    for (int r = 0; r < p; ++r)
      for (int k = 0; k <= r; ++k)
        EXPECT_NEAR(std::abs(all[idx++] - cplx(r, 0.0)), 0.0, 1e-14);
  });
}

TEST(Ptmpi, AlltoallvNonUniform) {
  const int p = 3;
  ptmpi::run_ranks(p, 1, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    // Rank s sends (s + d + 1) elements of value 10*s + d to rank d.
    std::vector<size_t> send_counts(p), recv_counts(p);
    size_t stotal = 0, rtotal = 0;
    for (int d = 0; d < p; ++d) {
      send_counts[static_cast<size_t>(d)] = static_cast<size_t>(me + d + 1);
      recv_counts[static_cast<size_t>(d)] = static_cast<size_t>(d + me + 1);
      stotal += send_counts[static_cast<size_t>(d)];
      rtotal += recv_counts[static_cast<size_t>(d)];
    }
    std::vector<cplx> send(stotal), recv(rtotal);
    size_t pos = 0;
    for (int d = 0; d < p; ++d)
      for (size_t k = 0; k < send_counts[static_cast<size_t>(d)]; ++k)
        send[pos++] = cplx(10.0 * me + d, 0.0);
    c.alltoallv(send.data(), send_counts, recv.data(), recv_counts);
    pos = 0;
    for (int s = 0; s < p; ++s)
      for (size_t k = 0; k < recv_counts[static_cast<size_t>(s)]; ++k)
        EXPECT_NEAR(std::abs(recv[pos++] - cplx(10.0 * s + me, 0.0)), 0.0,
                    1e-14);
  });
}

TEST(Ptmpi, ShmSharedWithinNode) {
  const int p = 4;  // 2 nodes x 2 ranks
  ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
    cplx* buf = c.shm_allocate("window", 4);
    c.barrier();
    if (c.node_rank() == 0) buf[0] = cplx(100.0 + c.node(), 0.0);
    c.barrier();
    // Both ranks of the node see the leader's write; nodes are isolated.
    EXPECT_NEAR(std::abs(buf[0] - cplx(100.0 + c.node(), 0.0)), 0.0, 1e-14);
  });
}

TEST(Ptmpi, StatsRecorded) {
  ptmpi::run_ranks(2, 1, [](ptmpi::Comm& c) {
    std::vector<cplx> v(100, cplx(1.0));
    c.allreduce_sum(v.data(), v.size());
    if (c.rank() == 0) {
      const double x = 1.0;
      c.send(1, &x, sizeof(x));
    } else {
      double y;
      c.recv(0, &y, sizeof(y));
    }
  });
  const auto& stats = ptmpi::last_run_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].ops.at("Allreduce").calls, 1);
  EXPECT_EQ(stats[0].ops.at("Allreduce").bytes,
            static_cast<long long>(100 * sizeof(cplx)));
  EXPECT_EQ(stats[0].ops.at("Send").calls, 1);
  EXPECT_EQ(stats[1].ops.at("Recv").calls, 1);
  EXPECT_GE(stats[0].total_seconds(), 0.0);
}

// ------------------------------------------------------- stress tests ---

namespace {

// A deterministic pseudo-random traffic plan: message m carries `size`
// bytes, each byte a function of (src, dst, tag, index).
struct PlannedMessage {
  int src, dst, tag;
  size_t size;
};

unsigned char payload_byte(const PlannedMessage& m, size_t i) {
  return static_cast<unsigned char>(
      (static_cast<size_t>(m.src) * 131 + static_cast<size_t>(m.dst) * 31 +
       static_cast<size_t>(m.tag) * 7 + i) &
      0xff);
}

// Up to `per_pair` messages for every ordered (src, dst) pair with distinct
// tags (ptmpi matches FIFO within a (source, tag) queue, so same-tag
// messages must stay ordered; distinct tags may be received in any order).
std::vector<PlannedMessage> make_plan(int p, int per_pair, unsigned seed) {
  Rng rng(seed);
  std::vector<PlannedMessage> plan;
  for (int s = 0; s < p; ++s)
    for (int d = 0; d < p; ++d) {
      if (s == d) continue;
      const int n = 1 + static_cast<int>(rng.next_u64() % per_pair);
      for (int k = 0; k < n; ++k) {
        PlannedMessage m;
        m.src = s;
        m.dst = d;
        m.tag = 100 + k;  // unique per (src, dst)
        m.size = rng.next_u64() % 2048;  // includes zero-byte messages
        plan.push_back(m);
      }
    }
  return plan;
}

}  // namespace

TEST(PtmpiStress, InterleavedIsendIrecvMixedTagsAndSizes) {
  const int p = 4;
  for (unsigned seed : {1u, 2u, 3u}) {
    const std::vector<PlannedMessage> plan = make_plan(p, 3, seed);
    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      const int me = c.rank();
      // My outbound and inbound slices, each shuffled with a rank-specific
      // deterministic rng so posting order differs from matching order.
      std::vector<size_t> outbound, inbound;
      for (size_t i = 0; i < plan.size(); ++i) {
        if (plan[i].src == me) outbound.push_back(i);
        if (plan[i].dst == me) inbound.push_back(i);
      }
      Rng rng(seed * 977 + static_cast<unsigned>(me));
      auto shuffle = [&](std::vector<size_t>& v) {
        for (size_t i = v.size(); i > 1; --i)
          std::swap(v[i - 1], v[rng.next_u64() % i]);
      };
      shuffle(outbound);
      shuffle(inbound);

      std::vector<std::vector<unsigned char>> sendbuf(outbound.size()),
          recvbuf(inbound.size());
      std::vector<ptmpi::Request> reqs;
      // Interleave: post an irecv, then an isend, then the next irecv, ...
      const size_t rounds = std::max(outbound.size(), inbound.size());
      for (size_t r = 0; r < rounds; ++r) {
        if (r < inbound.size()) {
          const PlannedMessage& m = plan[inbound[r]];
          recvbuf[r].assign(m.size, 0);
          reqs.push_back(c.irecv(m.src, recvbuf[r].data(), m.size, m.tag));
        }
        if (r < outbound.size()) {
          const PlannedMessage& m = plan[outbound[r]];
          sendbuf[r].resize(m.size);
          for (size_t i = 0; i < m.size; ++i)
            sendbuf[r][i] = payload_byte(m, i);
          reqs.push_back(c.isend(m.dst, sendbuf[r].data(), m.size, m.tag));
        }
      }
      for (auto& rq : reqs) c.wait(rq);
      // Verify every inbound payload byte-for-byte.
      for (size_t r = 0; r < inbound.size(); ++r) {
        const PlannedMessage& m = plan[inbound[r]];
        for (size_t i = 0; i < m.size; ++i)
          ASSERT_EQ(recvbuf[r][i], payload_byte(m, i))
              << "seed " << seed << " msg " << inbound[r] << " byte " << i;
      }
    });
  }
}

TEST(PtmpiStress, AlltoallvEmptyAndDegenerateCounts) {
  const int p = 4;
  // Rank 3 sends nothing to anyone; nobody sends to rank 0 except itself;
  // everything else follows a deterministic sparse pattern.
  ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    auto count = [](int s, int d) -> size_t {
      if (s == 3) return 0;                  // fully empty sender
      if (d == 0 && s != 0) return 0;        // starved receiver
      return static_cast<size_t>((s + 2 * d) % 3);  // sprinkled zeros
    };
    std::vector<size_t> send_counts(p), recv_counts(p);
    size_t stotal = 0, rtotal = 0;
    for (int d = 0; d < p; ++d) {
      send_counts[static_cast<size_t>(d)] = count(me, d);
      recv_counts[static_cast<size_t>(d)] = count(d, me);
      stotal += send_counts[static_cast<size_t>(d)];
      rtotal += recv_counts[static_cast<size_t>(d)];
    }
    std::vector<cplx> send(std::max<size_t>(stotal, 1)),
        recv(std::max<size_t>(rtotal, 1), cplx(-99.0, -99.0));
    size_t pos = 0;
    for (int d = 0; d < p; ++d)
      for (size_t k = 0; k < send_counts[static_cast<size_t>(d)]; ++k)
        send[pos++] = cplx(me, d);
    c.alltoallv(send.data(), send_counts, recv.data(), recv_counts);
    pos = 0;
    for (int s = 0; s < p; ++s)
      for (size_t k = 0; k < recv_counts[static_cast<size_t>(s)]; ++k)
        EXPECT_NEAR(std::abs(recv[pos++] - cplx(s, me)), 0.0, 1e-14);
    EXPECT_EQ(pos, rtotal);
  });
}

TEST(PtmpiStress, ShmWindowReductionUnderContention) {
  // Many rounds of node-shared reductions with varying window sizes and
  // alternating window names: every rank writes its own slot concurrently,
  // the node leader reduces, all node members check the same total. The
  // size change forces reallocation between rounds; the name alternation
  // exercises window identity.
  const int p = 6;
  const int rpn = 3;
  const int rounds = 25;
  ptmpi::run_ranks(p, rpn, [&](ptmpi::Comm& c) {
    for (int r = 0; r < rounds; ++r) {
      const size_t slots = static_cast<size_t>(rpn);
      const size_t width = 1 + static_cast<size_t>(r % 4);
      const std::string name = (r % 2 == 0) ? "win_even" : "win_odd";
      cplx* win = c.shm_allocate(name, slots * width);
      // Concurrent disjoint writes: rank slot * width.
      for (size_t k = 0; k < width; ++k)
        win[static_cast<size_t>(c.node_rank()) * width + k] =
            cplx(c.rank() + 1, static_cast<real_t>(r + k));
      c.barrier();
      // Leader reduces into slot 0.
      if (c.node_rank() == 0)
        for (int nr = 1; nr < rpn; ++nr)
          for (size_t k = 0; k < width; ++k)
            win[k] += win[static_cast<size_t>(nr) * width + k];
      c.barrier();
      // Expected: sum of (global rank + 1) over the node's ranks.
      real_t expect = 0.0;
      for (int nr = 0; nr < rpn; ++nr)
        expect += static_cast<real_t>(c.node() * rpn + nr + 1);
      for (size_t k = 0; k < width; ++k)
        EXPECT_NEAR(std::real(win[k]), expect, 1e-12)
            << "round " << r << " k " << k;
      c.barrier();  // nobody re-allocates while others still read
    }
  });
}

TEST(PtmpiStress, AllgathervRealAndZeroContributions) {
  const int p = 4;
  ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
    // Rank 2 contributes nothing (the empty band-block case).
    std::vector<size_t> counts;
    for (int r = 0; r < p; ++r)
      counts.push_back(r == 2 ? 0 : static_cast<size_t>(r + 1));
    const size_t mine = counts[static_cast<size_t>(c.rank())];
    std::vector<real_t> send(std::max<size_t>(mine, 1),
                             static_cast<real_t>(c.rank()) + 0.25);
    const size_t total =
        std::accumulate(counts.begin(), counts.end(), size_t{0});
    std::vector<real_t> all(total, -1.0);
    c.allgatherv(send.data(), mine, all.data(), counts);
    size_t idx = 0;
    for (int r = 0; r < p; ++r)
      for (size_t k = 0; k < counts[static_cast<size_t>(r)]; ++k)
        EXPECT_NEAR(all[idx++], static_cast<real_t>(r) + 0.25, 1e-14);
  });
}

TEST(PtmpiStress, DeterministicAllreduceBitIdentical) {
  // The property the distributed propagator relies on: repeated runs of the
  // same reduction produce bit-identical results on every rank regardless
  // of scheduling.
  const int p = 4;
  const size_t n = 257;
  std::vector<std::vector<real_t>> results(3);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<std::vector<real_t>> per_rank(p);
    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      Rng rng(1000 + static_cast<unsigned>(c.rank()));
      std::vector<real_t> v(n);
      for (auto& x : v) x = rng.uniform(-1.0, 1.0);
      c.allreduce_sum(v.data(), n);
      per_rank[static_cast<size_t>(c.rank())] = v;
    });
    for (int r = 1; r < p; ++r)
      ASSERT_EQ(per_rank[0], per_rank[static_cast<size_t>(r)]) << "trial "
                                                               << trial;
    results[static_cast<size_t>(trial)] = per_rank[0];
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

// ------------------------------------------------- FP32 typed overloads --

TEST(PtmpiF32, TypedSendRecvRoundTrip) {
  ptmpi::run_ranks(2, 1, [](ptmpi::Comm& c) {
    if (c.rank() == 0) {
      const std::vector<float> f{1.5f, -2.25f, 3.0f};
      const std::vector<cplxf> z{{1.0f, -1.0f}, {0.5f, 2.0f}};
      c.send(1, f.data(), f.size(), 1);
      c.send(1, z.data(), z.size(), 2);
    } else {
      std::vector<float> f(3);
      std::vector<cplxf> z(2);
      c.recv(0, f.data(), f.size(), 1);
      c.recv(0, z.data(), z.size(), 2);
      EXPECT_EQ(f[0], 1.5f);
      EXPECT_EQ(f[1], -2.25f);
      EXPECT_EQ(f[2], 3.0f);
      EXPECT_EQ(z[0], cplxf(1.0f, -1.0f));
      EXPECT_EQ(z[1], cplxf(0.5f, 2.0f));
    }
  });
  // Typed counts are elements: the recorded bytes reflect the FP32 width.
  const auto& st = ptmpi::last_run_stats()[0];
  EXPECT_EQ(st.ops.at("Send").bytes,
            static_cast<long long>(3 * sizeof(float) + 2 * sizeof(cplxf)));
}

TEST(PtmpiF32, TypedSendrecvRotatesRing) {
  const int p = 4;
  std::vector<cplxf> results(p);
  ptmpi::run_ranks(p, 1, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    cplxf out_v(100.0f + static_cast<float>(me), -1.0f), in_v(0.0f);
    c.sendrecv((me + 1) % p, &out_v, 1, (me - 1 + p) % p, &in_v, 1);
    results[static_cast<size_t>(me)] = in_v;
  });
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(results[static_cast<size_t>(r)],
              cplxf(100.0f + static_cast<float>((r - 1 + p) % p), -1.0f));
}

TEST(PtmpiF32, TypedBcastAndAllreduce) {
  const int p = 3;
  ptmpi::run_ranks(p, 1, [&](ptmpi::Comm& c) {
    std::vector<cplxf> v(4, cplxf(0.0f));
    if (c.rank() == 1)
      for (size_t i = 0; i < v.size(); ++i)
        v[i] = cplxf(static_cast<float>(i), 0.5f);
    c.bcast(v.data(), v.size(), /*root=*/1);
    for (size_t i = 0; i < v.size(); ++i)
      EXPECT_EQ(v[i], cplxf(static_cast<float>(i), 0.5f));

    float s = static_cast<float>(c.rank() + 1);
    c.allreduce_sum(&s, 1);
    EXPECT_EQ(s, static_cast<float>(p * (p + 1) / 2));

    cplxf z(1.0f, static_cast<float>(c.rank()));
    c.allreduce_sum(&z, 1);
    EXPECT_EQ(z, cplxf(3.0f, 3.0f));
  });
}

TEST(PtmpiF32, ZeroElementMessagesLegal) {
  // Zero-count typed traffic (empty band blocks) must be matched and
  // completed without touching any buffer.
  ptmpi::run_ranks(2, 1, [](ptmpi::Comm& c) {
    if (c.rank() == 0) {
      c.send(1, static_cast<const cplxf*>(nullptr), 0, 5);
      cplxf dummy;
      c.sendrecv(1, static_cast<const cplxf*>(nullptr), 0, 1, &dummy, 1, 6);
    } else {
      c.recv(0, static_cast<cplxf*>(nullptr), 0, 5);
      const cplxf payload(7.0f, -7.0f);
      c.sendrecv(0, &payload, 1, 0, static_cast<cplxf*>(nullptr), 0, 6);
    }
    float* none = nullptr;
    c.bcast(none, 0, 0);
    c.allreduce_sum(none, 0);
  });
}

namespace {

// Deterministic per-direction message size for the mixed-precision stress
// test: both endpoints of a pair can compute each other's outbound sizes
// without sharing rng state. Sprinkles zeros (~1 in 8).
size_t planned_count(unsigned seed, int src, int dst, int round, int width,
                     size_t cap) {
  const size_t h = static_cast<size_t>(seed) * 2654435761u +
                   static_cast<size_t>(src) * 97 +
                   static_cast<size_t>(dst) * 31 +
                   static_cast<size_t>(round) * 7 +
                   static_cast<size_t>(width);
  return (h % 8 == 0) ? 0 : h % cap;
}

}  // namespace

TEST(PtmpiStress, RandomizedMixedPrecisionTraffic) {
  // Interleaved FP64/FP32 messages with mixed tags and sizes (including
  // zero): the typed overloads share one mailbox, so nothing may be
  // reinterpreted across widths. XOR pairing makes every round a perfect
  // matching (peer(peer) == me for p a power of two) and cycles through all
  // p-1 distinct topologies; values are exactly representable so equality
  // checks are exact.
  const int p = 4;
  for (unsigned seed : {11u, 12u, 13u}) {
    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      const int me = c.rank();
      for (int round = 0; round < 9; ++round) {
        const int peer = me ^ (1 + round % (p - 1));
        const size_t n64 = planned_count(seed, me, peer, round, 64, 33);
        const size_t n32 = planned_count(seed, me, peer, round, 32, 65);
        const size_t m64 = planned_count(seed, peer, me, round, 64, 33);
        const size_t m32 = planned_count(seed, peer, me, round, 32, 65);
        std::vector<cplx> s64(n64), r64(m64, cplx(-1.0, -1.0));
        std::vector<cplxf> s32(n32), r32(m32, cplxf(-1.0f, -1.0f));
        for (size_t i = 0; i < n64; ++i)
          s64[i] = cplx(me * 1000 + round, static_cast<real_t>(i));
        for (size_t i = 0; i < n32; ++i)
          s32[i] = cplxf(static_cast<float>(me), static_cast<float>(i));
        // Both widths in flight between the same pair, distinct tags; the
        // FP64 leg goes through the raw-byte API, the FP32 leg through the
        // typed element-count overload.
        c.sendrecv(peer, s64.data(), n64 * sizeof(cplx), peer, r64.data(),
                   m64 * sizeof(cplx), /*tag=*/2 * round);
        c.sendrecv(peer, s32.data(), n32, peer, r32.data(), m32,
                   /*tag=*/2 * round + 1);
        for (size_t i = 0; i < m64; ++i)
          ASSERT_EQ(r64[i], cplx(peer * 1000 + round, static_cast<real_t>(i)))
              << "seed " << seed << " round " << round;
        for (size_t i = 0; i < m32; ++i)
          ASSERT_EQ(r32[i],
                    cplxf(static_cast<float>(peer), static_cast<float>(i)))
              << "seed " << seed << " round " << round;
      }
    });
  }
}

TEST(Ptmpi, ExceptionPropagates) {
  bool threw = false;
  try {
    ptmpi::run_ranks(2, 1, [](ptmpi::Comm& c) {
      if (c.rank() == 1) throw Error("rank 1 exploded");
      // Rank 0 must not deadlock: no communication here.
    });
  } catch (const Error& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("exploded"), std::string::npos);
  }
  EXPECT_TRUE(threw);
}

TEST(Ptmpi, FetchAddClaimsDisjointPartition) {
  // The MPI_Fetch_and_op(SUM) stand-in behind the campaign's idle-worker
  // job handoff: concurrent claimants must see strictly increasing previous
  // values, i.e. partition the index space with no gap and no double-claim.
  constexpr int kJobs = 23;
  std::vector<int> owner(kJobs, -1);
  std::mutex mu;
  ptmpi::run_ranks(4, 2, [&](ptmpi::Comm& c) {
    while (true) {
      const long idx = c.fetch_add("test.claim", 1);
      ASSERT_GE(idx, 0);
      if (idx >= kJobs) break;
      std::lock_guard<std::mutex> lock(mu);
      EXPECT_EQ(owner[static_cast<size_t>(idx)], -1)
          << "index " << idx << " claimed twice";
      owner[static_cast<size_t>(idx)] = c.rank();
    }
    // A split communicator scopes counters by its own context: the same
    // name starts from zero per subcommunicator, independent of the
    // world-level cursor above.
    ptmpi::Comm half = c.split(c.rank() / 2, c.rank() % 2);
    const long v = half.fetch_add("test.claim", 1);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 2);
  });
  for (int i = 0; i < kJobs; ++i)
    EXPECT_NE(owner[static_cast<size_t>(i)], -1) << "index " << i
                                                 << " never claimed";
}
