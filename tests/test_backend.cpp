// The device-execution subsystem: stream/event semantics of both host
// executors, the kernel registry, stage-kernel composition against the
// fused exchange apply (bit-identical by construction), and — centrally —
// bit-identity of the stream-pipelined (overlapped) ring exchange with the
// legacy synchronous path for all three circulation patterns in both
// precisions.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "backend/buffer.hpp"
#include "backend/executor.hpp"
#include "backend/kernels.hpp"
#include "common/timer.hpp"
#include "dist/circulate.hpp"
#include "dist/exchange_dist.hpp"
#include "dist/layout.hpp"
#include "dist/rotate.hpp"
#include "la/blas.hpp"
#include "la/util.hpp"
#include "test_helpers.hpp"

using namespace ptim;

// ---------------------------------------------------------- executors ----

TEST(HostSerial, LaunchesRunInlineAtEnqueue) {
  auto& ex = backend::shared_executor(backend::Kind::kHostSerial);
  backend::Stream s = ex.create_stream("t");
  int x = 0;
  ex.launch(s, [&] { x = 42; }, "test.set");
  EXPECT_EQ(x, 42);  // inline: visible before any synchronize
  backend::Event e = ex.record(s);
  ex.stream_wait_event(s, e);  // already signaled — must not block
  ex.synchronize(e);
  ex.synchronize(s);
  EXPECT_GE(ex.launch_count("test.set"), 1);
}

TEST(HostAsync, StreamIsInOrder) {
  auto& ex = backend::shared_executor(backend::Kind::kHostAsync);
  backend::Stream s = ex.create_stream("order");
  std::vector<int> seq;
  for (int i = 0; i < 200; ++i)
    ex.launch(s, [&seq, i] { seq.push_back(i); }, "test.seq");
  ex.synchronize(s);
  ASSERT_EQ(seq.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(seq[static_cast<size_t>(i)], i);
}

TEST(HostAsync, StreamsRunConcurrently) {
  // Stream A blocks on a promise that only a task on stream B fulfills —
  // enqueued AFTER A's task. Progress proves the two streams execute on
  // independent workers (a serialized executor would deadlock here).
  auto& ex = backend::shared_executor(backend::Kind::kHostAsync);
  backend::Stream a = ex.create_stream("a");
  backend::Stream b = ex.create_stream("b");
  std::promise<void> handoff;
  std::shared_future<void> fut = handoff.get_future().share();
  std::atomic<bool> ok{false};
  ex.launch(
      a,
      [fut, &ok] {
        ok = fut.wait_for(std::chrono::seconds(30)) ==
             std::future_status::ready;
      },
      "test.wait");
  ex.launch(b, [&handoff] { handoff.set_value(); }, "test.signal");
  ex.synchronize(a);
  ex.synchronize(b);
  EXPECT_TRUE(ok.load());
}

TEST(HostAsync, EventsOrderAcrossStreams) {
  auto& ex = backend::shared_executor(backend::Kind::kHostAsync);
  backend::Stream prod = ex.create_stream("prod");
  backend::Stream cons = ex.create_stream("cons");
  int x = 0;
  std::vector<int> seen;
  for (int i = 0; i < 50; ++i) {
    ex.launch(prod, [&x, i] { x = i; }, "test.produce");
    backend::Event e = ex.record(prod);
    ex.stream_wait_event(cons, e);
    // Without the event wait this read would race (TSan-visible) and could
    // observe stale values; with it, the producer's write happens-before.
    ex.launch(cons, [&x, &seen] { seen.push_back(x); }, "test.consume");
    backend::Event done = ex.record(cons);
    ex.stream_wait_event(prod, done);  // producer must not overtake reader
  }
  ex.synchronize(cons);
  ex.synchronize(prod);
  ASSERT_EQ(seen.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(HostAsync, HostSynchronizeOnEvent) {
  auto& ex = backend::shared_executor(backend::Kind::kHostAsync);
  backend::Stream s = ex.create_stream("evt");
  std::atomic<int> x{0};
  ex.launch(
      s,
      [&x] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        x = 7;
      },
      "test.slow");
  backend::Event e = ex.record(s);
  ex.synchronize(e);
  EXPECT_EQ(x.load(), 7);
  ex.synchronize(s);
}

TEST(HostAsync, TaskExceptionsRethrowOnSynchronize) {
  auto& ex = backend::shared_executor(backend::Kind::kHostAsync);
  backend::Stream s = ex.create_stream("err");
  ex.launch(s, [] { throw ptim::Error("kernel failed"); }, "test.throw");
  int after = 0;
  ex.launch(s, [&after] { after = 1; }, "test.after");
  EXPECT_THROW(ex.synchronize(s), ptim::Error);
  EXPECT_EQ(after, 1);  // the stream keeps draining past a failed task
  // The error is consumed; the stream remains usable.
  ex.launch(s, [&after] { after = 2; }, "test.after");
  ex.synchronize(s);
  EXPECT_EQ(after, 2);
}

TEST(Backend, DefaultKindAndNames) {
  EXPECT_STREQ(backend::kind_name(backend::Kind::kSync), "sync");
  EXPECT_STREQ(backend::kind_name(backend::Kind::kHostSerial), "serial");
  EXPECT_STREQ(backend::kind_name(backend::Kind::kHostAsync), "async");
  // Whatever PTIM_BACKEND selects, the executors for both non-sync kinds
  // must exist and agree on their kind tags.
  const backend::Kind def = backend::default_kind();
  EXPECT_TRUE(def == backend::Kind::kSync ||
              def == backend::Kind::kHostSerial ||
              def == backend::Kind::kHostAsync);
  EXPECT_EQ(backend::shared_executor(backend::Kind::kHostSerial).kind(),
            backend::Kind::kHostSerial);
  EXPECT_EQ(backend::shared_executor(backend::Kind::kHostAsync).kind(),
            backend::Kind::kHostAsync);
}

TEST(Buffer, CountsOnlyRealAllocations) {
  const long before = backend::buffer_alloc_count();
  backend::Buffer<cplx> b;
  EXPECT_EQ(backend::buffer_alloc_count(), before);
  b.ensure(128);
  EXPECT_EQ(backend::buffer_alloc_count(), before + 1);
  b.ensure(64);   // shrink request: no-op
  b.ensure(128);  // same size: no-op
  EXPECT_EQ(backend::buffer_alloc_count(), before + 1);
  b.ensure(256);  // growth: one more
  EXPECT_EQ(backend::buffer_alloc_count(), before + 2);
  EXPECT_EQ(b.size(), 256u);
}

// ------------------------------------------------------ kernel registry ----

TEST(KernelRegistry, ExchangeStagesRegisteredInBothPrecisions) {
  backend::register_exchange_kernels();
  auto& reg = backend::KernelRegistry::instance();
  for (const char* stage : {"pair_form", "fft_filter", "accumulate",
                            "accumulate_weighted", "apply_slab"}) {
    const auto ks = reg.stage(stage);
    ASSERT_EQ(ks.size(), 2u) << stage;
    EXPECT_TRUE(reg.has(std::string("xchg.") + stage + ".fp64"));
    EXPECT_TRUE(reg.has(std::string("xchg.") + stage + ".fp32"));
  }
  // The gather back to the sphere is FP64-only by design.
  ASSERT_EQ(reg.stage("gather").size(), 1u);
  EXPECT_TRUE(reg.has("xchg.gather.fp64"));
  EXPECT_FALSE(reg.has("xchg.gather.fp32"));
  // Registration is idempotent.
  const size_t n = reg.list().size();
  backend::register_exchange_kernels();
  EXPECT_EQ(reg.list().size(), n);
}

// ------------------------------------------- stage-kernel composition ----

namespace {

struct XEnv {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
};

// Rebuild ExchangeOperator::apply_diag out of individual stage-kernel
// launches on a backend stream. Must agree with the fused host apply bit
// for bit — the stages ARE the apply's building blocks.
template <typename CS>
la::MatC staged_apply_diag(backend::Executor& ex,
                           const ham::ExchangeOperator& xop,
                           const pw::SphereGridMap& map, const la::MatC& src,
                           const std::vector<real_t>& d, const la::MatC& tgt) {
  const size_t ng = map.grid().size();
  const size_t npw = map.sphere().npw();
  const size_t bs = xop.options().batch_size;
  backend::ExchangeKernels<CS> kernels(xop);
  backend::Stream s = ex.create_stream("staged_apply");

  la::Matrix<CS> src_real;
  map.to_real_batch(src, src_real);
  std::vector<size_t> active;
  for (size_t i = 0; i < src.cols(); ++i)
    if (d[i] != 0.0) active.push_back(i);

  la::MatC out(npw, tgt.cols(), cplx(0.0));
  std::vector<CS> tgt_real(ng), block(bs * ng);
  std::vector<cplx> acc(ng), gathered(npw);
  for (size_t j = 0; j < tgt.cols(); ++j) {
    map.to_real(tgt.col(j), tgt_real.data());
    std::fill(acc.begin(), acc.end(), cplx(0.0));
    for (size_t i0 = 0; i0 < active.size(); i0 += bs) {
      const size_t nb = std::min(bs, active.size() - i0);
      kernels.pair_form(ex, s, src_real.data(), active.data() + i0, nb,
                        tgt_real.data(), block.data());
      kernels.fft_filter(ex, s, block.data(), nb);
      kernels.accumulate(ex, s, src_real.data(), active.data() + i0, d.data(),
                         nb, block.data(), acc.data(), /*comp=*/nullptr);
    }
    kernels.gather(ex, s, acc.data(), gathered.data(), out.col(j));
    // Host reuses tgt_real/acc for the next target: rejoin per column.
    ex.synchronize(s);
  }
  return out;
}

}  // namespace

TEST(StageKernels, ComposeToFusedApplyFp64) {
  XEnv e;
  ham::ExchangeOperator xop(e.map, {});
  const size_t npw = e.sys.sphere->npw();
  const la::MatC src = test::random_orbitals(npw, 5, 910);
  const la::MatC tgt = test::random_orbitals(npw, 3, 911);
  const std::vector<real_t> d{1.0, 0.8, 0.5, 0.0, 0.1};

  la::MatC ref(npw, tgt.cols());
  xop.apply_diag(src, d, tgt, ref);

  for (const auto kind :
       {backend::Kind::kHostSerial, backend::Kind::kHostAsync}) {
    auto& ex = backend::shared_executor(kind);
    const la::MatC out =
        staged_apply_diag<cplx>(ex, xop, e.map, src, d, tgt);
    EXPECT_EQ(la::frob_diff(out, ref), 0.0) << backend::kind_name(kind);
  }
}

TEST(StageKernels, ComposeToFusedApplyFp32) {
  XEnv e;
  ham::ExchangeOptions opt;
  opt.precision = Precision::kSingle;
  ham::ExchangeOperator xop(e.map, opt);
  const size_t npw = e.sys.sphere->npw();
  const la::MatC src = test::random_orbitals(npw, 4, 920);
  const la::MatC tgt = test::random_orbitals(npw, 3, 921);
  const std::vector<real_t> d{1.0, 0.7, 0.3, 0.05};

  la::MatC ref(npw, tgt.cols());
  xop.apply_diag(src, d, tgt, ref);

  auto& ex = backend::shared_executor(backend::Kind::kHostAsync);
  const la::MatC out = staged_apply_diag<cplxf>(ex, xop, e.map, src, d, tgt);
  EXPECT_EQ(la::frob_diff(out, ref), 0.0);
}

// ------------------------------------- overlapped ring bit-identity ----

namespace {

// Distributed diag exchange under one backend kind; returns all rank
// blocks concatenated for exact comparison.
std::vector<la::MatC> run_dist_diag(const XEnv& e, backend::Kind kind,
                                    Precision prec, dist::ExchangePattern pat,
                                    int p, const la::MatC& src,
                                    const std::vector<real_t>& d,
                                    const la::MatC& tgt) {
  ham::ExchangeOptions opt;
  opt.precision = prec;
  opt.backend = kind;
  ham::ExchangeOperator xop(e.map, opt);
  std::vector<la::MatC> blocks(static_cast<size_t>(p));
  ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
    blocks[static_cast<size_t>(c.rank())] =
        dist::exchange_apply_distributed(c, xop, src, d, tgt, pat);
  });
  return blocks;
}

std::vector<la::MatC> run_dist_mixed(const XEnv& e, backend::Kind kind,
                                     Precision prec, dist::ExchangePattern pat,
                                     int p, const la::MatC& src,
                                     const la::MatC& theta,
                                     const la::MatC& tgt) {
  ham::ExchangeOptions opt;
  opt.precision = prec;
  opt.backend = kind;
  ham::ExchangeOperator xop(e.map, opt);
  const dist::BlockLayout bands(src.cols(), p);
  std::vector<la::MatC> blocks(static_cast<size_t>(p));
  ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    blocks[static_cast<size_t>(me)] =
        dist::exchange_apply_distributed_mixed_local(
            c, xop, dist::scatter_bands(src, bands, me),
            dist::scatter_bands(theta, bands, me),
            dist::scatter_bands(tgt, bands, me), bands, pat);
  });
  return blocks;
}

}  // namespace

TEST(OverlappedRing, BitIdenticalToSyncAllPatternsBothPrecisions) {
  XEnv e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 7;
  const la::MatC src = test::random_orbitals(npw, nb, 930);
  const la::MatC tgt = test::random_orbitals(npw, nb, 931);
  const std::vector<real_t> d{1.0, 0.9, 0.6, 0.4, 0.15, 0.05, 0.0};

  for (const int p : {3, 4}) {
    for (const auto pat :
         {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
          dist::ExchangePattern::kAsyncRing}) {
      for (const Precision prec : {Precision::kDouble, Precision::kSingle}) {
        const auto sync = run_dist_diag(e, backend::Kind::kSync, prec, pat, p,
                                        src, d, tgt);
        const auto serial = run_dist_diag(e, backend::Kind::kHostSerial, prec,
                                          pat, p, src, d, tgt);
        const auto async = run_dist_diag(e, backend::Kind::kHostAsync, prec,
                                         pat, p, src, d, tgt);
        for (int r = 0; r < p; ++r) {
          const auto ri = static_cast<size_t>(r);
          EXPECT_EQ(la::frob_diff(sync[ri], serial[ri]), 0.0)
              << "serial " << dist::pattern_name(pat) << " p=" << p
              << " prec=" << precision_name(prec) << " rank " << r;
          EXPECT_EQ(la::frob_diff(sync[ri], async[ri]), 0.0)
              << "async " << dist::pattern_name(pat) << " p=" << p
              << " prec=" << precision_name(prec) << " rank " << r;
        }
      }
    }
  }
}

TEST(OverlappedRing, MoreRanksThanBands) {
  // Zero-width slabs must flow through the pipelined engine unharmed.
  XEnv e;
  const size_t npw = e.sys.sphere->npw();
  const la::MatC src = test::random_orbitals(npw, 3, 940);
  const la::MatC tgt = test::random_orbitals(npw, 3, 941);
  const std::vector<real_t> d{1.0, 0.5, 0.2};
  const int p = 5;
  for (const auto pat :
       {dist::ExchangePattern::kRing, dist::ExchangePattern::kAsyncRing}) {
    const auto sync = run_dist_diag(e, backend::Kind::kSync,
                                    Precision::kDouble, pat, p, src, d, tgt);
    const auto async = run_dist_diag(e, backend::Kind::kHostAsync,
                                     Precision::kDouble, pat, p, src, d, tgt);
    for (int r = 0; r < p; ++r)
      EXPECT_EQ(la::frob_diff(sync[static_cast<size_t>(r)],
                              async[static_cast<size_t>(r)]),
                0.0)
          << dist::pattern_name(pat) << " rank " << r;
  }
}

TEST(OverlappedRing, MixedWeightedPathBitIdentical) {
  XEnv e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 5;
  const la::MatC src = test::random_orbitals(npw, nb, 950);
  const la::MatC sigma = test::random_occupation_matrix(nb, 951);
  la::MatC theta(npw, nb);
  la::gemm_nn(src, sigma, theta);
  const la::MatC tgt = test::random_orbitals(npw, nb, 952);
  const int p = 3;
  for (const auto pat :
       {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
        dist::ExchangePattern::kAsyncRing}) {
    for (const Precision prec : {Precision::kDouble, Precision::kSingle}) {
      const auto sync = run_dist_mixed(e, backend::Kind::kSync, prec, pat, p,
                                       src, theta, tgt);
      const auto async = run_dist_mixed(e, backend::Kind::kHostAsync, prec,
                                        pat, p, src, theta, tgt);
      for (int r = 0; r < p; ++r)
        EXPECT_EQ(la::frob_diff(sync[static_cast<size_t>(r)],
                                async[static_cast<size_t>(r)]),
                  0.0)
            << dist::pattern_name(pat) << " prec=" << precision_name(prec)
            << " rank " << r;
    }
  }
}

TEST(OverlappedRing, ApplySlabAndCommRoundLaunchCounts) {
  // The pipelined ring must launch exactly p apply-slab kernels and p-1
  // comm rounds per circulation on each rank.
  XEnv e;
  const size_t npw = e.sys.sphere->npw();
  const la::MatC src = test::random_orbitals(npw, 4, 960);
  const la::MatC tgt = test::random_orbitals(npw, 4, 961);
  const std::vector<real_t> d{1.0, 0.8, 0.5, 0.2};
  const int p = 4;
  auto& ex = backend::shared_executor(backend::Kind::kHostAsync);
  ex.reset_launch_stats();
  (void)run_dist_diag(e, backend::Kind::kHostAsync, Precision::kDouble,
                      dist::ExchangePattern::kAsyncRing, p, src, d, tgt);
  EXPECT_EQ(ex.launch_count("xchg.apply_slab.fp64"), p * p);  // p per rank
  EXPECT_EQ(ex.launch_count("xchg.apply_slab.fp32"), 0);
  EXPECT_EQ(ex.launch_count("xchg.comm_round"), p * (p - 1));  // p-1 per rank
  // FP32 slabs launch the fp32 apply kernel.
  ex.reset_launch_stats();
  (void)run_dist_diag(e, backend::Kind::kHostAsync, Precision::kSingle,
                      dist::ExchangePattern::kAsyncRing, p, src, d, tgt);
  EXPECT_EQ(ex.launch_count("xchg.apply_slab.fp32"), p * p);
}

TEST(OverlappedRing, ApplyExceptionDrainsAndPropagates) {
  // A throwing apply kernel must not hang peer ranks (the comm stream
  // still completes every transfer round) and must surface the error from
  // the circulation's synchronize, after all tasks referencing the
  // circulate frame have drained.
  auto& ex = backend::shared_executor(backend::Kind::kHostAsync);
  const size_t stride = 8;
  const dist::BlockLayout bands(4, 2);
  EXPECT_THROW(
      ptmpi::run_ranks(2, 1,
                       [&](ptmpi::Comm& c) {
                         std::vector<cplx> mine(
                             bands.count(c.rank()) * stride,
                             cplx(static_cast<real_t>(c.rank())));
                         dist::circulate_slabs(
                             c, bands, stride, mine,
                             dist::ExchangePattern::kAsyncRing,
                             [&](const cplx*, int origin) {
                               if (c.rank() == 0 && origin == 1)
                                 throw ptim::Error("apply kernel failed");
                             },
                             &ex);
                       }),
      ptim::Error);
}

// ----------------------------------------------------- wire model ----

TEST(WireModel, DelaysPointToPointDelivery) {
  ptmpi::set_wire_model(20e-3, 0.0);
  Timer t;
  ptmpi::run_ranks(2, 1, [&](ptmpi::Comm& c) {
    double x = 1.0;
    if (c.rank() == 0)
      c.send(1, &x, sizeof(x));
    else
      c.recv(0, &x, sizeof(x));
  });
  ptmpi::set_wire_model(0.0, 0.0);
  EXPECT_GE(t.seconds(), 15e-3);  // the recv waited out the wire time
}
