// Pseudopotential substrate: structure factors, AH form factor limits,
// local potential assembly, KB projector algebra and Ewald invariances.

#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/util.hpp"
#include "pseudo/atoms.hpp"
#include "pseudo/ewald.hpp"
#include "pseudo/kb.hpp"
#include "pseudo/local_pot.hpp"
#include "test_helpers.hpp"

using namespace ptim;

TEST(Atoms, SiliconSupercellCounts) {
  grid::Lattice lat = grid::Lattice::cubic(1.0);
  const auto a1 = pseudo::silicon_supercell(1, 1, 1, &lat);
  EXPECT_EQ(a1.natoms(), 8u);
  EXPECT_NEAR(a1.total_charge(), 32.0, 1e-12);
  const real_t alat = pseudo::silicon_alat_bohr();
  EXPECT_NEAR(lat.volume(), alat * alat * alat, 1e-9);

  const auto a2 = pseudo::silicon_supercell(2, 1, 3, &lat);
  EXPECT_EQ(a2.natoms(), 48u);
  EXPECT_NEAR(lat.volume(), 6.0 * alat * alat * alat, 1e-6);
}

TEST(Atoms, PaperSystemSizes) {
  // Paper Sec. VI says "48 atoms ... from 1x1x3 unit cells", but 8*3 = 24;
  // the smallest 48-atom supercell is 1x2x3 (noted in EXPERIMENTS.md).
  grid::Lattice lat = grid::Lattice::cubic(1.0);
  EXPECT_EQ(pseudo::silicon_supercell(1, 2, 3, &lat).natoms(), 48u);
  const size_t natom_3072 = pseudo::silicon_supercell(6, 8, 8, &lat).natoms();
  EXPECT_EQ(natom_3072, 3072u);
  const size_t nelec = 4 * natom_3072;
  EXPECT_EQ(nelec, 12288u);  // "3072 atoms (12288 electrons)"
  const size_t norb = nelec / 2 + natom_3072 / 2;
  EXPECT_EQ(norb, 7680u);
}

TEST(Atoms, StructureFactorLimits) {
  grid::Lattice lat = grid::Lattice::cubic(1.0);
  const auto atoms = pseudo::silicon_supercell(1, 1, 1, &lat);
  // S(0) = natoms.
  const cplx s0 = pseudo::structure_factor(atoms, {0.0, 0.0, 0.0});
  EXPECT_NEAR(std::abs(s0 - cplx(8.0)), 0.0, 1e-12);
  // S(-G) = conj(S(G)).
  const grid::Vec3 g = lat.gvec(1, 2, -1);
  const cplx sp = pseudo::structure_factor(atoms, g);
  const cplx sm = pseudo::structure_factor(atoms, {-g[0], -g[1], -g[2]});
  EXPECT_NEAR(std::abs(sm - std::conj(sp)), 0.0, 1e-10);
}

TEST(Species, AhFormFactorCoulombTail) {
  // For G -> large the Gaussian kills everything; for small G the Coulomb
  // -4 pi Z / (G^2 Omega) dominates.
  const auto si = pseudo::Species::silicon_ah();
  const real_t omega = 1000.0;
  const real_t g2 = 1e-4;
  const real_t v = si.vloc_g(g2, omega);
  EXPECT_NEAR(v, -kFourPi * 4.0 / g2 / omega, std::abs(v) * 0.01);
  EXPECT_NEAR(si.vloc_g(400.0, omega), 0.0, 1e-12);
  // G=0 regular part is finite.
  EXPECT_TRUE(std::isfinite(si.vloc_g0(omega)));
}

TEST(LocalPot, RealAndPeriodic) {
  auto sys = test::TinySystem::make(3.0);
  const auto v = pseudo::build_local_potential(sys.atoms, *sys.den_grid);
  EXPECT_EQ(v.size(), sys.den_grid->size());
  // Potential is attractive near the atoms (negative minimum).
  real_t vmin = 1e9, vmax = -1e9;
  for (const auto x : v) {
    vmin = std::min(vmin, x);
    vmax = std::max(vmax, x);
  }
  EXPECT_LT(vmin, -0.1);
  EXPECT_GT(vmax, vmin);
}

TEST(LocalPot, TranslationCovariance) {
  // Shifting all atoms by a lattice-commensurate grid shift permutes the
  // potential values.
  auto sys = test::TinySystem::make(3.0);
  const auto v0 = pseudo::build_local_potential(sys.atoms, *sys.den_grid);
  const auto dims = sys.den_grid->dims();
  const real_t box = 8.0;
  const real_t shift = box / static_cast<real_t>(dims[0]);
  pseudo::AtomList shifted = sys.atoms;
  for (auto& p : shifted.positions) p[0] += shift;
  const auto v1 = pseudo::build_local_potential(shifted, *sys.den_grid);
  // v1(i0, i1, i2) == v0(i0-1, i1, i2)
  for (size_t i2 = 0; i2 < dims[2]; i2 += 2)
    for (size_t i1 = 0; i1 < dims[1]; i1 += 2)
      for (size_t i0 = 0; i0 < dims[0]; i0 += 2) {
        const size_t prev = (i0 + dims[0] - 1) % dims[0];
        EXPECT_NEAR(v1[sys.den_grid->linear(i0, i1, i2)],
                    v0[sys.den_grid->linear(prev, i1, i2)], 1e-8);
      }
}

TEST(Kb, ProjectorHermitianAndRankBounded) {
  auto sys = test::TinySystem::make(3.0);
  pseudo::KbProjector kb(sys.atoms, *sys.sphere, 1.2, -0.5);
  EXPECT_EQ(kb.nproj(), sys.atoms.natoms());

  const size_t npw = sys.sphere->npw();
  const la::MatC phi = test::random_orbitals(npw, 4, 3);
  la::MatC vphi(npw, 4, cplx(0.0));
  kb.apply(phi, vphi);
  // <phi_a | V | phi_b> Hermitian.
  la::MatC m = pw::overlap(phi, vphi);
  EXPECT_LT(la::hermiticity_defect(m), 1e-10);
  // V_nl has rank <= natoms: applying to a vector orthogonal to all betas
  // gives ~0. Build one via projection.
  la::MatC x = test::random_matrix(npw, 1, 5);
  // Iterated Gram-Schmidt: the atom-centered Gaussians overlap, so a single
  // pass does not orthogonalize against their span.
  for (int pass = 0; pass < 8; ++pass)
    for (size_t a = 0; a < kb.nproj(); ++a) {
      const cplx p = la::dotc(npw, kb.beta().col(a), x.col(0)) /
                     la::dotc(npw, kb.beta().col(a), kb.beta().col(a));
      la::axpy(npw, -p, kb.beta().col(a), x.col(0));
    }
  la::MatC vx(npw, 1, cplx(0.0));
  kb.apply(x, vx);
  EXPECT_LT(la::frob_norm(vx), 1e-8 * la::frob_norm(x));
}

TEST(Ewald, EtaIndependence) {
  grid::Lattice lat = grid::Lattice::cubic(1.0);
  const auto atoms = pseudo::silicon_supercell(1, 1, 1, &lat);
  const real_t e1 = pseudo::ewald_energy(atoms, lat, 0.12);
  const real_t e2 = pseudo::ewald_energy(atoms, lat, 0.25);
  const real_t e3 = pseudo::ewald_energy(atoms, lat, 0.45);
  EXPECT_NEAR(e1, e2, 1e-6 * std::abs(e1));
  EXPECT_NEAR(e2, e3, 1e-6 * std::abs(e2));
}

TEST(Ewald, ExtensiveInSupercell) {
  grid::Lattice lat1 = grid::Lattice::cubic(1.0);
  const auto a1 = pseudo::silicon_supercell(1, 1, 1, &lat1);
  const real_t e1 = pseudo::ewald_energy(a1, lat1);
  grid::Lattice lat2 = grid::Lattice::cubic(1.0);
  const auto a2 = pseudo::silicon_supercell(1, 1, 2, &lat2);
  const real_t e2 = pseudo::ewald_energy(a2, lat2);
  EXPECT_NEAR(e2, 2.0 * e1, 1e-5 * std::abs(e2));
}

TEST(Ewald, NegativeForIonicCrystal) {
  grid::Lattice lat = grid::Lattice::cubic(1.0);
  const auto atoms = pseudo::silicon_supercell(1, 1, 1, &lat);
  EXPECT_LT(pseudo::ewald_energy(atoms, lat), 0.0);
}
