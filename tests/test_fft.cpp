// FFT engine: roundtrips over mixed-radix and Bluestein sizes, Parseval,
// known analytic transforms, linearity, the convolution theorem, and 3-D
// transforms — everything the Fock-exchange inner loop depends on.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"

using namespace ptim;

namespace {

std::vector<cplx> random_signal(size_t n, unsigned seed) {
  Rng rng(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) v = rng.uniform_cplx();
  return x;
}

std::vector<cplx> dft_reference(const std::vector<cplx>& x, int sign) {
  const size_t n = x.size();
  std::vector<cplx> out(n, cplx(0.0));
  for (size_t k = 0; k < n; ++k)
    for (size_t j = 0; j < n; ++j) {
      const real_t ang =
          sign * kTwoPi * static_cast<real_t>(j * k % n) / static_cast<real_t>(n);
      out[k] += x[j] * cplx{std::cos(ang), std::sin(ang)};
    }
  return out;
}

}  // namespace

class FftSize : public ::testing::TestWithParam<size_t> {};

TEST_P(FftSize, MatchesReferenceDft) {
  const size_t n = GetParam();
  const auto x = random_signal(n, 10 + static_cast<unsigned>(n));
  fft::Plan1D plan(n);
  std::vector<cplx> y(n);
  plan.forward(x.data(), y.data());
  const auto ref = dft_reference(x, -1);
  for (size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(y[k] - ref[k]), 0.0, 1e-9 * static_cast<real_t>(n))
        << "n=" << n << " k=" << k;
}

TEST_P(FftSize, RoundTrip) {
  const size_t n = GetParam();
  const auto x = random_signal(n, 20 + static_cast<unsigned>(n));
  fft::Plan1D plan(n);
  std::vector<cplx> y(n), z(n);
  plan.forward(x.data(), y.data());
  plan.inverse(y.data(), z.data());
  for (size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(z[k] - x[k]), 0.0, 1e-10 * static_cast<real_t>(n));
}

TEST_P(FftSize, Parseval) {
  const size_t n = GetParam();
  const auto x = random_signal(n, 30 + static_cast<unsigned>(n));
  fft::Plan1D plan(n);
  std::vector<cplx> y(n);
  plan.forward(x.data(), y.data());
  real_t ex = 0.0, ey = 0.0;
  for (size_t k = 0; k < n; ++k) {
    ex += std::norm(x[k]);
    ey += std::norm(y[k]);
  }
  EXPECT_NEAR(ey, ex * static_cast<real_t>(n), 1e-8 * ex * n);
}

// Mixed-radix {2,3,5,7} sizes plus primes (Bluestein) and awkward products.
INSTANTIATE_TEST_SUITE_P(Sizes, FftSize,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12,
                                           15, 16, 18, 20, 24, 25, 27, 30, 32,
                                           36, 45, 48, 60, 64, 11, 13, 17, 31,
                                           101, 121, 77));

TEST(Fft, DeltaIsConstant) {
  const size_t n = 24;
  std::vector<cplx> x(n, cplx(0.0)), y(n);
  x[0] = 1.0;
  fft::Plan1D plan(n);
  plan.forward(x.data(), y.data());
  for (size_t k = 0; k < n; ++k) EXPECT_NEAR(std::abs(y[k] - cplx(1.0)), 0.0, 1e-12);
}

TEST(Fft, SingleModeIsDelta) {
  const size_t n = 30, mode = 7;
  std::vector<cplx> x(n), y(n);
  for (size_t j = 0; j < n; ++j) {
    const real_t ang = kTwoPi * static_cast<real_t>(mode * j) / n;
    x[j] = cplx{std::cos(ang), std::sin(ang)};
  }
  fft::Plan1D plan(n);
  plan.forward(x.data(), y.data());
  for (size_t k = 0; k < n; ++k) {
    const real_t expect = (k == mode) ? static_cast<real_t>(n) : 0.0;
    EXPECT_NEAR(std::abs(y[k]), expect, 1e-9);
  }
}

TEST(Fft, Linearity) {
  const size_t n = 40;
  const auto a = random_signal(n, 1);
  const auto b = random_signal(n, 2);
  fft::Plan1D plan(n);
  std::vector<cplx> fa(n), fb(n), fc(n), c(n);
  const cplx alpha{0.3, -1.2};
  for (size_t i = 0; i < n; ++i) c[i] = a[i] + alpha * b[i];
  plan.forward(a.data(), fa.data());
  plan.forward(b.data(), fb.data());
  plan.forward(c.data(), fc.data());
  for (size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(fc[i] - (fa[i] + alpha * fb[i])), 0.0, 1e-10);
}

TEST(Fft, ConvolutionTheorem) {
  const size_t n = 36;
  const auto a = random_signal(n, 3);
  const auto b = random_signal(n, 4);
  // Direct circular convolution.
  std::vector<cplx> conv(n, cplx(0.0));
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) conv[(i + j) % n] += a[i] * b[j];
  // Spectral path.
  fft::Plan1D plan(n);
  std::vector<cplx> fa(n), fb(n), prod(n), back(n);
  plan.forward(a.data(), fa.data());
  plan.forward(b.data(), fb.data());
  for (size_t i = 0; i < n; ++i) prod[i] = fa[i] * fb[i];
  plan.inverse(prod.data(), back.data());
  for (size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(back[i] - conv[i]), 0.0, 1e-8);
}

TEST(Fft, InPlaceTransform) {
  const size_t n = 20;
  const auto x = random_signal(n, 5);
  fft::Plan1D plan(n);
  std::vector<cplx> y = x, ref(n);
  plan.forward(x.data(), ref.data());
  plan.forward(y.data(), y.data());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(y[i] - ref[i]), 0.0, 1e-11);
}

TEST(FftSizeHelpers, NextFftSize) {
  EXPECT_EQ(fft::next_fft_size(1), 1u);
  EXPECT_EQ(fft::next_fft_size(11), 12u);
  EXPECT_EQ(fft::next_fft_size(13), 14u);
  EXPECT_EQ(fft::next_fft_size(17), 18u);
  EXPECT_EQ(fft::next_fft_size(97), 98u);
  EXPECT_TRUE(fft::fft_size_ok(2 * 3 * 5 * 7));
  EXPECT_FALSE(fft::fft_size_ok(11));
}

TEST(Fft3, RoundTripAndParseval) {
  fft::Fft3 f(6, 5, 4);
  const size_t ng = f.size();
  auto x = random_signal(ng, 6);
  auto orig = x;
  f.forward(x.data());
  real_t ex = 0.0, ey = 0.0;
  for (size_t i = 0; i < ng; ++i) ey += std::norm(x[i]);
  for (size_t i = 0; i < ng; ++i) ex += std::norm(orig[i]);
  EXPECT_NEAR(ey, ex * static_cast<real_t>(ng), 1e-8 * ex * ng);
  f.inverse(x.data());
  for (size_t i = 0; i < ng; ++i)
    EXPECT_NEAR(std::abs(x[i] - orig[i]), 0.0, 1e-10);
}

// ------------------------------------------------------- batched FFTs ---

TEST(Fft1Batch, ManyMatchesScalarLines) {
  for (const size_t n : {size_t(8), size_t(12), size_t(30), size_t(13)}) {
    const size_t vlen = 5;
    fft::Plan1D plan(n);
    // Element-major tile: line l's element k at tile[k*vlen + l].
    std::vector<cplx> tile(n * vlen), tile_out(n * vlen);
    std::vector<std::vector<cplx>> lines(vlen);
    for (size_t l = 0; l < vlen; ++l) {
      lines[l] = random_signal(n, 500 + static_cast<unsigned>(n * vlen + l));
      for (size_t k = 0; k < n; ++k) tile[k * vlen + l] = lines[l][k];
    }
    plan.forward_many(tile.data(), tile_out.data(), vlen);
    for (size_t l = 0; l < vlen; ++l) {
      std::vector<cplx> ref(n);
      plan.forward(lines[l].data(), ref.data());
      for (size_t k = 0; k < n; ++k)
        EXPECT_NEAR(std::abs(tile_out[k * vlen + l] - ref[k]), 0.0, 1e-10)
            << "n=" << n << " l=" << l << " k=" << k;
    }
    // Scaled inverse round-trips the tile.
    std::vector<cplx> back(n * vlen);
    plan.inverse_many(tile_out.data(), back.data(), vlen);
    for (size_t i = 0; i < n * vlen; ++i)
      EXPECT_NEAR(std::abs(back[i] - tile[i]), 0.0, 1e-10);
  }
}

TEST(Fft3Batch, MatchesSingleTransforms) {
  fft::Fft3 f(6, 5, 4);
  const size_t ng = f.size();
  const size_t nbatch = 7;
  auto batch = random_signal(ng * nbatch, 40);
  auto singles = batch;
  f.forward_batch(batch.data(), nbatch);
  for (size_t b = 0; b < nbatch; ++b) f.forward(singles.data() + b * ng);
  for (size_t i = 0; i < ng * nbatch; ++i)
    EXPECT_NEAR(std::abs(batch[i] - singles[i]), 0.0, 1e-9)
        << "i=" << i;
  f.inverse_batch(batch.data(), nbatch);
  for (size_t b = 0; b < nbatch; ++b) f.inverse(singles.data() + b * ng);
  for (size_t i = 0; i < ng * nbatch; ++i)
    EXPECT_NEAR(std::abs(batch[i] - singles[i]), 0.0, 1e-10);
}

TEST(Fft3Batch, RoundTrip) {
  fft::Fft3 f(8, 6, 5);
  const size_t ng = f.size();
  // More arrays than the internal tile width to exercise partial tiles.
  const size_t nbatch = fft::Plan1D::kMaxTile + 3;
  const auto orig = random_signal(ng * nbatch, 41);
  auto x = orig;
  f.forward_batch(x.data(), nbatch);
  f.inverse_batch(x.data(), nbatch);
  for (size_t i = 0; i < ng * nbatch; ++i)
    EXPECT_NEAR(std::abs(x[i] - orig[i]), 0.0, 1e-10);
}

TEST(Fft3Batch, SingleArrayBatchEqualsPlainCall) {
  fft::Fft3 f(6, 6, 3);
  auto a = random_signal(f.size(), 42);
  auto b = a;
  f.forward_batch(a.data(), 1);
  f.forward(b.data());
  for (size_t i = 0; i < f.size(); ++i)
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-10);
}

TEST(Fft3Batch, ZeroBatchIsNoop) {
  fft::Fft3 f(4, 4, 4);
  f.forward_batch(nullptr, 0);
  f.inverse_batch(nullptr, 0);
}

// ----------------------------------------------- *_many misuse guards ---

TEST(Fft1Batch, ManyRejectsAliasedBuffers) {
  // in == out used to corrupt data silently; now it throws.
  fft::Plan1D plan(12);
  std::vector<cplx> buf(12 * 4);
  EXPECT_THROW(plan.forward_many(buf.data(), buf.data(), 4), Error);
  EXPECT_THROW(plan.inverse_many(buf.data(), buf.data(), 4), Error);
}

TEST(Fft1Batch, ManyRejectsOversizedTile) {
  fft::Plan1D plan(8);
  const size_t vlen = fft::Plan1D::kMaxTile + 1;
  std::vector<cplx> in(8 * vlen), out(8 * vlen);
  EXPECT_THROW(plan.forward_many(in.data(), out.data(), vlen), Error);
  EXPECT_THROW(plan.forward_many(in.data(), out.data(), 0), Error);
}

// ------------------------------------------------- float instantiation ---

namespace {

std::vector<cplxf> to_f32(const std::vector<cplx>& x) {
  std::vector<cplxf> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = static_cast<cplxf>(x[i]);
  return y;
}

}  // namespace

class FftSizeF32 : public ::testing::TestWithParam<size_t> {};

TEST_P(FftSizeF32, MatchesDoubleReference) {
  // The float plan agrees with the double transform of the same signal at
  // single-precision accuracy — mixed-radix and Bluestein sizes alike.
  const size_t n = GetParam();
  const auto x = random_signal(n, 70 + static_cast<unsigned>(n));
  fft::Plan1D plan64(n);
  fft::Plan1Df plan32(n);
  std::vector<cplx> ref(n);
  plan64.forward(x.data(), ref.data());
  const auto xf = to_f32(x);
  std::vector<cplxf> y(n);
  plan32.forward(xf.data(), y.data());
  real_t scale = 0.0;
  for (size_t k = 0; k < n; ++k) scale = std::max(scale, std::abs(ref[k]));
  for (size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(static_cast<cplx>(y[k]) - ref[k]), 0.0,
                2e-6 * std::max(scale, real_t(1.0)) *
                    std::sqrt(static_cast<real_t>(n)))
        << "n=" << n << " k=" << k;
}

TEST_P(FftSizeF32, RoundTrip) {
  const size_t n = GetParam();
  const auto xf = to_f32(random_signal(n, 80 + static_cast<unsigned>(n)));
  fft::Plan1Df plan(n);
  std::vector<cplxf> y(n), z(n);
  plan.forward(xf.data(), y.data());
  plan.inverse(y.data(), z.data());
  for (size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(z[k] - xf[k]), 0.0, 1e-5f * static_cast<float>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeF32,
                         ::testing::Values(1, 2, 6, 8, 16, 20, 30, 36, 48, 64,
                                           11, 13, 17, 31, 101, 77));

// Bluestein-sized (non-{2,3,5,7}) boxes through the batched 3-D engine, in
// both precisions: every axis of {11,13,9} except the last needs the
// chirp-z fallback inside forward_batch/inverse_batch.
TEST(Fft3Batch, BluesteinSizedGridDouble) {
  fft::Fft3 f(11, 13, 9);
  const size_t ng = f.size();
  const size_t nbatch = 5;
  auto batch = random_signal(ng * nbatch, 90);
  auto singles = batch;
  f.forward_batch(batch.data(), nbatch);
  for (size_t b = 0; b < nbatch; ++b) f.forward(singles.data() + b * ng);
  for (size_t i = 0; i < ng * nbatch; ++i)
    EXPECT_NEAR(std::abs(batch[i] - singles[i]), 0.0, 1e-8) << "i=" << i;
  const auto orig = random_signal(ng * nbatch, 91);
  auto x = orig;
  f.forward_batch(x.data(), nbatch);
  f.inverse_batch(x.data(), nbatch);
  for (size_t i = 0; i < ng * nbatch; ++i)
    EXPECT_NEAR(std::abs(x[i] - orig[i]), 0.0, 1e-9);
}

TEST(Fft3Batch, BluesteinSizedGridSingle) {
  fft::Fft3f f32(11, 13, 9);
  fft::Fft3 f64(11, 13, 9);
  const size_t ng = f32.size();
  const size_t nbatch = 3;
  const auto orig = random_signal(ng * nbatch, 92);
  auto ref = orig;
  f64.forward_batch(ref.data(), nbatch);
  auto x = to_f32(orig);
  f32.forward_batch(x.data(), nbatch);
  real_t scale = 0.0;
  for (size_t i = 0; i < ng * nbatch; ++i)
    scale = std::max(scale, std::abs(ref[i]));
  for (size_t i = 0; i < ng * nbatch; ++i)
    EXPECT_NEAR(std::abs(static_cast<cplx>(x[i]) - ref[i]), 0.0,
                1e-4 * std::max(scale, real_t(1.0)))
        << "i=" << i;
  // Scaled-inverse round trip at float accuracy.
  f32.inverse_batch(x.data(), nbatch);
  const auto origf = to_f32(orig);
  for (size_t i = 0; i < ng * nbatch; ++i)
    EXPECT_NEAR(std::abs(x[i] - origf[i]), 0.0, 2e-4f);
}

TEST(Fft3BatchF32, MatchesSingleTransforms) {
  fft::Fft3f f(6, 5, 4);
  const size_t ng = f.size();
  const size_t nbatch = 7;
  auto batch = to_f32(random_signal(ng * nbatch, 93));
  auto singles = batch;
  f.forward_batch(batch.data(), nbatch);
  for (size_t b = 0; b < nbatch; ++b) f.forward(singles.data() + b * ng);
  for (size_t i = 0; i < ng * nbatch; ++i)
    EXPECT_NEAR(std::abs(batch[i] - singles[i]), 0.0, 1e-4f) << "i=" << i;
}

TEST(Fft3, PlaneWaveIsDelta) {
  const size_t n0 = 6, n1 = 6, n2 = 3;
  fft::Fft3 f(n0, n1, n2);
  std::vector<cplx> x(f.size());
  const int m0 = 2, m1 = 1, m2 = 0;  // mode indices
  for (size_t i2 = 0; i2 < n2; ++i2)
    for (size_t i1 = 0; i1 < n1; ++i1)
      for (size_t i0 = 0; i0 < n0; ++i0) {
        const real_t ang = kTwoPi * (static_cast<real_t>(m0 * i0) / n0 +
                                     static_cast<real_t>(m1 * i1) / n1 +
                                     static_cast<real_t>(m2 * i2) / n2);
        x[i0 + n0 * (i1 + n1 * i2)] = cplx{std::cos(ang), std::sin(ang)};
      }
  f.forward(x.data());
  for (size_t i2 = 0; i2 < n2; ++i2)
    for (size_t i1 = 0; i1 < n1; ++i1)
      for (size_t i0 = 0; i0 < n0; ++i0) {
        const bool hit = (i0 == m0 && i1 == m1 && i2 == m2);
        const real_t expect = hit ? static_cast<real_t>(f.size()) : 0.0;
        EXPECT_NEAR(std::abs(x[i0 + n0 * (i1 + n1 * i2)]), expect, 1e-8);
      }
}
