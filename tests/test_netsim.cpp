// Performance model: internal consistency (complexity ordering, monotone
// scaling) plus shape agreement with the paper's published anchors within
// generous tolerances (absolute testbed numbers are not reproducible; who
// wins and by roughly what factor must be).

#include <gtest/gtest.h>

#include "netsim/experiments.hpp"

using namespace ptim;
using namespace ptim::netsim;

TEST(SystemSize, PaperAnchors) {
  const auto s = SystemSize::silicon(1536, 0.5);
  EXPECT_EQ(s.norbitals, 3840u);   // 1536*2 + 768 (paper Sec. VI)
  EXPECT_EQ(s.ng_wfc, 648000u);    // 60*90*120
  EXPECT_EQ(s.ng_den, 8u * 648000u);
  const auto a = SystemSize::silicon(3072, 0.5);
  EXPECT_EQ(a.norbitals, 7680u);
}

TEST(Model, VariantLadderMonotone) {
  // Each optimization must strictly reduce the step time, on both platforms.
  for (const auto& plat : {Platform::fugaku_arm(), Platform::gpu_a100()}) {
    const SystemSize sys = SystemSize::silicon(384);
    const size_t nodes = plat.topology == Topology::kTorus6D ? 240 : 24;
    double prev = 1e300;
    for (const Variant v : {Variant::kBaseline, Variant::kDiag, Variant::kAce,
                            Variant::kRing, Variant::kAsyncRing}) {
      const double t = predict_step(plat, sys, nodes, v).total();
      EXPECT_LT(t, prev) << plat.name << " " << variant_name(v);
      prev = t;
    }
  }
}

TEST(Model, Fig9SpeedupShape) {
  // Paper: Diag 12.86x/7.57x, ACE 3.3x/3.6x, Ring 1.13x/1.23x,
  // Async 1.14x/1.23x; overall 55.15x/41.44x. Allow +-40% per stage.
  {
    const auto rows = fig9_stepwise(Platform::fugaku_arm(), 384, 240);
    EXPECT_NEAR(rows[1].speedup_vs_prev, 12.86, 0.4 * 12.86);
    EXPECT_NEAR(rows[2].speedup_vs_prev, 3.3, 0.4 * 3.3);
    EXPECT_GT(rows[3].speedup_vs_prev, 1.02);
    EXPECT_GT(rows[4].speedup_vs_prev, 1.0);
    EXPECT_NEAR(rows[4].speedup_vs_baseline, 55.15, 0.4 * 55.15);
  }
  {
    const auto rows = fig9_stepwise(Platform::gpu_a100(), 384, 24);
    EXPECT_NEAR(rows[1].speedup_vs_prev, 7.57, 0.4 * 7.57);
    EXPECT_NEAR(rows[2].speedup_vs_prev, 3.6, 0.4 * 3.6);
    EXPECT_GT(rows[3].speedup_vs_prev, 1.05);
    EXPECT_NEAR(rows[4].speedup_vs_baseline, 41.44, 0.4 * 41.44);
  }
}

TEST(Model, Table1CommShape) {
  // ARM, 1536 atoms, 960 nodes: published Bcast 67.22 s, Sendrecv 30.1 s,
  // Wait 20.13 s, Allreduce 14.19 s, Alltoallv 9.04 s. Tolerance 30%.
  const auto rows = table1_comm(Platform::fugaku_arm(), 1536, 960);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_NEAR(rows[0].comm.bcast, 67.22, 0.3 * 67.22);
  EXPECT_NEAR(rows[1].comm.sendrecv, 30.1, 0.3 * 30.1);
  EXPECT_NEAR(rows[2].comm.wait, 20.13, 0.3 * 20.13);
  EXPECT_NEAR(rows[0].comm.allreduce, 14.19, 0.35 * 14.19);
  EXPECT_NEAR(rows[0].comm.alltoallv, 9.04, 0.4 * 9.04);
  // Ring variants must not broadcast; ACE must not sendrecv.
  EXPECT_EQ(rows[1].comm.bcast, 0.0);
  EXPECT_EQ(rows[0].comm.sendrecv, 0.0);
  // Total communication strictly decreases along ACE -> Ring -> Async.
  EXPECT_GT(rows[0].comm.total(), rows[1].comm.total());
  EXPECT_GT(rows[1].comm.total(), rows[2].comm.total());

  // GPU side: Bcast 64.85, Sendrecv 20.54, Wait 10.1.
  const auto g = table1_comm(Platform::gpu_a100(), 1536, 96);
  EXPECT_NEAR(g[0].comm.bcast, 64.85, 0.3 * 64.85);
  EXPECT_NEAR(g[1].comm.sendrecv, 20.54, 0.3 * 20.54);
  EXPECT_NEAR(g[2].comm.wait, 10.1, 0.3 * 10.1);
  // GPU comm ratio higher than ARM (paper Sec. VIII-D observation).
  EXPECT_GT(g[0].comm_ratio, rows[0].comm_ratio);
}

TEST(Model, Fig10StrongScalingShape) {
  // ARM: 768 atoms, 15 -> 480 nodes: parallel efficiency ~36.8%.
  const auto arm = fig10_strong(Platform::fugaku_arm(), 768,
                                {15, 30, 60, 120, 240, 480});
  EXPECT_NEAR(arm.back().parallel_efficiency, 0.368, 0.12);
  // Efficiency decreases monotonically; time decreases monotonically.
  for (size_t i = 1; i < arm.size(); ++i) {
    EXPECT_LT(arm[i].step_seconds, arm[i - 1].step_seconds);
    EXPECT_LE(arm[i].parallel_efficiency,
              arm[i - 1].parallel_efficiency + 1e-12);
  }
  // GPU: 1536 atoms, 12 -> 192 nodes: efficiency ~22.9%.
  const auto gpu =
      fig10_strong(Platform::gpu_a100(), 1536, {12, 24, 48, 96, 192});
  EXPECT_NEAR(gpu.back().parallel_efficiency, 0.229, 0.12);
  // ARM scales better than GPU (paper: bandwidth ratio + 6D torus).
  EXPECT_GT(arm.back().parallel_efficiency / 1.0,
            gpu.back().parallel_efficiency *
                (32.0 / 32.0) * 0.9);
}

TEST(Model, Fig11WeakScalingShape) {
  // GPU weak scaling, 10 orbitals/rank: paper anchors 11.40 s @192 atoms
  // and 429.3 s @3072 atoms. Allow a factor ~2 on absolutes; require the
  // paper's described trend: early doublings cost much less than the
  // theoretical 4x, later ones approach it.
  const auto rows = fig11_weak(Platform::gpu_a100(),
                               {48, 96, 192, 384, 768, 1536, 3072}, 10);
  const double t192 = rows[2].step_seconds;
  const double t3072 = rows[6].step_seconds;
  EXPECT_GT(t192, 11.40 / 2.5);
  EXPECT_LT(t192, 11.40 * 2.5);
  EXPECT_GT(t3072, 429.3 / 2.5);
  EXPECT_LT(t3072, 429.3 * 2.5);
  const double early_growth = rows[1].step_seconds / rows[0].step_seconds;
  const double late_growth = rows[6].step_seconds / rows[5].step_seconds;
  EXPECT_LT(early_growth, 3.0);   // well below fourfold
  EXPECT_GT(late_growth, early_growth);
  EXPECT_LT(late_growth, 4.3);
  // Measured stays below the ideal O(N^2) reference everywhere after t0.
  for (size_t i = 1; i < rows.size(); ++i)
    EXPECT_LT(rows[i].step_seconds, rows[i].ideal_n2_seconds);
}

TEST(Model, CommunicationGrowsWithNodes) {
  // Strong scaling: sendrecv + allreduce grow with node count (paper's
  // Sec. VIII-B observation: 1.5x / 1.4x from 15 -> 480 ARM nodes).
  const SystemSize sys = SystemSize::silicon(768);
  const auto p = Platform::fugaku_arm();
  const auto c15 = predict_step(p, sys, 15, Variant::kRing);
  const auto c480 = predict_step(p, sys, 480, Variant::kRing);
  EXPECT_GE(c480.comm.sendrecv, 0.95 * c15.comm.sendrecv);
  EXPECT_GE(c480.comm.allreduce, c15.comm.allreduce);
  // Comm ratio grows under strong scaling.
  EXPECT_GT(c480.comm_ratio(), c15.comm_ratio());
}

TEST(Model, MemoryFootprintScalesAsPaper) {
  // Proxy for Sec. IV-B3: per-rank wavefunction memory shrinks with p while
  // the replicated N^2 matrices do not — the SHM mechanism divides the
  // latter by ranks-per-node. Modeled here arithmetically.
  const SystemSize sys = SystemSize::silicon(768);
  const double n = static_cast<double>(sys.norbitals);
  const double npw = static_cast<double>(sys.npw);
  auto wf_bytes = [&](double ranks) { return 16.0 * npw * n / ranks; };
  const double sq_bytes = 3.0 * 16.0 * n * n;  // sigma, Phi^H Phi, Phi^H H Phi
  // Beyond some rank count the square matrices dominate (the paper's 168-
  // process observation for 768 atoms).
  double crossover = 0.0;
  for (double ranks = 8; ranks <= 8192; ranks *= 2) {
    if (sq_bytes > wf_bytes(ranks)) {
      crossover = ranks;
      break;
    }
  }
  EXPECT_GT(crossover, 16.0);
  EXPECT_LT(crossover, 2048.0);
  // SHM divides the square-matrix footprint by ranks/node.
  EXPECT_NEAR(sq_bytes / 4.0, sq_bytes * 0.25, 1e-9);
}

TEST(Model, Fig10RowGenerationInvariants) {
  // The row generator itself (not just the cost model): speedup and
  // parallel efficiency must satisfy their defining identities exactly,
  // the first row is the anchor, node counts are echoed verbatim, and
  // efficiency never exceeds 1 (strong scaling cannot be superlinear in
  // this model).
  const std::vector<size_t> nodes{15, 30, 60, 120, 240, 480};
  for (const auto& plat : {Platform::fugaku_arm(), Platform::gpu_a100()}) {
    const auto rows = fig10_strong(plat, 768, nodes);
    ASSERT_EQ(rows.size(), nodes.size());
    EXPECT_EQ(rows[0].speedup, 1.0);
    EXPECT_EQ(rows[0].parallel_efficiency, 1.0);
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].nodes, nodes[i]);
      EXPECT_GT(rows[i].step_seconds, 0.0);
      if (i > 0) {
        // Defining identities against row 0.
        EXPECT_NEAR(rows[i].speedup,
                    rows[0].step_seconds / rows[i].step_seconds, 1e-12);
        EXPECT_NEAR(rows[i].parallel_efficiency,
                    rows[i].speedup /
                        (static_cast<double>(nodes[i]) /
                         static_cast<double>(nodes[0])),
                    1e-12);
        // Monotone step time; efficiency bounded by 1.
        EXPECT_LT(rows[i].step_seconds, rows[i - 1].step_seconds);
        EXPECT_LE(rows[i].parallel_efficiency, 1.0 + 1e-12);
      }
    }
  }
}

TEST(Model, Fig11RowGenerationInvariants) {
  // Weak scaling rows: the ideal-N^2 reference is anchored at the FIRST
  // row (ideal == measured there) and scales exactly as (N/N0)^2; node
  // counts follow the paper's orbitals / ranks_per_node / orbitals_per_rank
  // prescription with the 1-node floor.
  const std::vector<size_t> atoms{48, 96, 192, 384, 768, 1536};
  for (const auto& plat : {Platform::fugaku_arm(), Platform::gpu_a100()}) {
    for (const size_t opr : {size_t{1}, size_t{10}}) {
      const auto rows = fig11_weak(plat, atoms, opr);
      ASSERT_EQ(rows.size(), atoms.size());
      EXPECT_EQ(rows[0].ideal_n2_seconds, rows[0].step_seconds);
      const double n0 =
          static_cast<double>(SystemSize::silicon(atoms[0]).norbitals);
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].natoms, atoms[i]);
        const SystemSize sys = SystemSize::silicon(atoms[i]);
        const size_t ranks = sys.norbitals / opr;
        const size_t want_nodes = std::max<size_t>(
            1, ranks / static_cast<size_t>(plat.ranks_per_node));
        EXPECT_EQ(rows[i].nodes, want_nodes);
        const double nn = static_cast<double>(sys.norbitals);
        EXPECT_NEAR(rows[i].ideal_n2_seconds,
                    rows[0].step_seconds * (nn / n0) * (nn / n0),
                    1e-9 * rows[i].ideal_n2_seconds);
        // Weak-scaling time grows with system size but stays sub-N^2
        // beyond the anchor (the distributed FFT + ring amortization).
        if (i > 0) {
          EXPECT_GT(rows[i].step_seconds, rows[i - 1].step_seconds);
          EXPECT_LT(rows[i].step_seconds, rows[i].ideal_n2_seconds);
        }
      }
    }
  }
}
